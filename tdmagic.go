// Package tdmagic translates pictures of hardware timing diagrams into
// formal specifications — strict partial orders (SPOs) over signal-edge
// events annotated with timing constraints — reproducing "TD-Magic: From
// Pictures of Timing Diagrams To Formal Specifications" (DAC 2023).
//
// The typical workflow is:
//
//	gen := tdmagic.NewGenerator(tdmagic.G1, 1)     // L-TD-G synthetic data
//	train, _ := gen.GenerateN(200)
//	pipe, _ := tdmagic.Train(rand.New(rand.NewSource(1)), train, tdmagic.DefaultTrainConfig())
//	spec, _, _ := pipe.Translate(img)              // bitmap -> SPO
//	fmt.Print(spec.SpecText())
//
// The extracted SPO can then drive runtime verification (Monitor, Check)
// or be exported to a temporal-logic formula (Formula).
//
// Everything is implemented on the Go standard library alone: the raster
// substrate, the constraint sampler behind the synthetic generator, the
// learned edge detector and OCR, the morphological line detection, and the
// semantic interpretation.
package tdmagic

import (
	"io"
	"math/rand"

	"tdmagic/internal/core"
	"tdmagic/internal/dataset"
	"tdmagic/internal/diagram"
	"tdmagic/internal/eval"
	"tdmagic/internal/imgproc"
	"tdmagic/internal/industrial"
	"tdmagic/internal/ltl"
	"tdmagic/internal/monitor"
	"tdmagic/internal/spo"
	"tdmagic/internal/sva"
	"tdmagic/internal/tdgen"
	"tdmagic/internal/tdl"
	"tdmagic/internal/trace"
	"tdmagic/internal/vcd"
)

// Formal-specification core (paper Definition 1).
type (
	// SPO is a strict partial order over timing-diagram events.
	SPO = spo.SPO
	// Node is one event: (signal, edge index, edge type, threshold).
	Node = spo.Node
	// Constraint is a timing-annotated order edge between two events.
	Constraint = spo.Constraint
	// EdgeType classifies a signal transition.
	EdgeType = spo.EdgeType
)

// Edge types.
const (
	RiseStep = spo.RiseStep
	FallStep = spo.FallStep
	RiseRamp = spo.RiseRamp
	FallRamp = spo.FallRamp
	Double   = spo.Double
)

// NoThreshold is the threshold of step-edge events.
const NoThreshold = spo.NoThreshold

// Pipeline is a trained TD-Magic instance (SED + OCR + LAD + SEI).
type Pipeline = core.Pipeline

// TrainConfig bundles the training parameters of the learned modules.
type TrainConfig = core.TrainConfig

// Report exposes a translation's intermediate detections.
type Report = core.Report

// Sample is one labelled timing diagram (picture plus ground truth).
type Sample = dataset.Sample

// Abstract timing-diagram model: build one directly to rasterise a
// hand-specified TD (see examples/datasheet).
type (
	// Diagram is a complete abstract timing diagram.
	Diagram = diagram.Diagram
	// Signal is one waveform with its transitions.
	Signal = diagram.Signal
	// Edge is one signal transition.
	Edge = diagram.Edge
	// Arrow is a timing-constraint annotation between two events.
	Arrow = diagram.Arrow
	// EventRef addresses an event by signal and edge index.
	EventRef = diagram.EventRef
	// Style controls rendering.
	Style = diagram.Style
	// SignalKind classifies a waveform.
	SignalKind = diagram.SignalKind
	// ThresholdMark is a decorative threshold annotation.
	ThresholdMark = diagram.ThresholdMark
)

// Signal kinds.
const (
	Digital    = diagram.Digital
	Ramp       = diagram.Ramp
	DoubleRamp = diagram.DoubleRamp
)

// DefaultStyle returns the rendering style used for the synthetic set.
func DefaultStyle() Style { return diagram.DefaultStyle() }

// ParseTD parses the compact textual timing-diagram language (see
// internal/tdl and cmd/tdrender) into a Diagram.
func ParseTD(text string) (*Diagram, error) { return tdl.Parse(text) }

// ParseSpec parses the textual SPO format produced by SPO.SpecText.
func ParseSpec(text string) (*SPO, error) { return spo.ParseSpec(text) }

// Generation modes of the synthetic data generator (paper Sec. VI.1).
const (
	G1 = tdgen.G1 // default two-signal mode
	G2 = tdgen.G2 // one big signal per picture
	G3 = tdgen.G3 // simplified constraints, ramp focus
)

// DefaultTrainConfig returns the training configuration used in the
// experiments, including the built-in signal-name lexicon.
func DefaultTrainConfig() TrainConfig {
	cfg := core.DefaultTrainConfig()
	cfg.NameLexicon = eval.NameLexicon()
	cfg.ValueLexicon = eval.ValueLexicon()
	return cfg
}

// Train fits a pipeline on labelled samples (typically from NewGenerator).
func Train(rng *rand.Rand, samples []*Sample, cfg TrainConfig) (*Pipeline, error) {
	return core.Train(rng, samples, cfg)
}

// LoadPipeline reads a pipeline saved with Pipeline.SaveFile.
func LoadPipeline(path string) (*Pipeline, error) { return core.LoadFile(path) }

// Generator produces synthetic labelled timing diagrams (L-TD-G).
type Generator = tdgen.Generator

// NewGenerator returns an L-TD-G generator for the given mode and seed.
func NewGenerator(mode tdgen.Mode, seed int64) *Generator {
	return tdgen.New(tdgen.DefaultConfig(mode), rand.New(rand.NewSource(seed)))
}

// NewSeededGenerator returns an L-TD-G generator whose samples draw from
// per-index rng streams: Generator.GenerateNWorkers fans generation over a
// worker pool and produces the identical sample set for any worker count.
func NewSeededGenerator(mode tdgen.Mode, seed int64) *Generator {
	return tdgen.NewSeeded(tdgen.DefaultConfig(mode), seed)
}

// IndustrialCorpus generates the 30-diagram extrapolation corpus with the
// paper's corpus statistics and corner cases.
func IndustrialCorpus(seed int64) ([]*Sample, error) { return industrial.Corpus(seed) }

// Image is a grayscale raster picture.
type Image = imgproc.Gray

// DecodePNG reads a PNG into an Image.
var DecodePNG = imgproc.DecodePNG

// Runtime verification (the use-case the paper's introduction motivates).
type (
	// Trace is a timed multi-signal waveform record.
	Trace = trace.Trace
	// MonitorSpec is an SPO plus admissible delay intervals.
	MonitorSpec = monitor.Spec
	// Bounds is an admissible delay interval.
	Bounds = monitor.Bounds
	// MonitorResult reports located events and violations.
	MonitorResult = monitor.Result
)

// Check verifies a trace against a specification.
func Check(spec *MonitorSpec, tr *Trace) (*MonitorResult, error) {
	return monitor.Check(spec, tr)
}

// SynthesizeTrace builds a specification-satisfying trace (for tests and
// template waveforms).
func SynthesizeTrace(spec *MonitorSpec, rampFrac float64) (*Trace, error) {
	return monitor.SynthesizeTrace(spec, rampFrac)
}

// ParseVCD reads a simulator Value Change Dump into a Trace, so extracted
// specifications can be checked against real simulation runs.
func ParseVCD(r io.Reader) (*Trace, error) { return vcd.Parse(r) }

// Formula exports an SPO to a metric-temporal-logic style textual formula.
func Formula(p *SPO, delays map[string]Bounds) (string, error) {
	return ltl.Formula(p, delays)
}

// SVAOptions controls SystemVerilog-assertion export.
type SVAOptions = sva.Options

// ExportSVA renders an SPO as SystemVerilog concurrent assertions.
func ExportSVA(p *SPO, delays map[string]Bounds, opts SVAOptions) (string, error) {
	return sva.Export(p, delays, opts)
}

// RenderOverlay draws a translation report on the analysed picture in the
// paper's Fig. 6/7 annotation style.
var RenderOverlay = core.RenderOverlay
