package tdmagic

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

// TestFacadeWorkflow exercises the documented public workflow end to end:
// generate synthetic data, train, translate, monitor, export.
func TestFacadeWorkflow(t *testing.T) {
	gen := NewGenerator(G1, 1)
	train, err := gen.GenerateN(30)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := Train(rand.New(rand.NewSource(1)), train, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	val, err := NewGenerator(G1, 99).GenerateN(3)
	if err != nil {
		t.Fatal(err)
	}
	var spec *SPO
	for _, s := range val {
		got, rep, err := pipe.Translate(s.Image)
		if err != nil {
			continue
		}
		if rep == nil {
			t.Fatal("no report")
		}
		if got.Validate() != nil {
			t.Fatal("invalid SPO from facade")
		}
		if spec == nil && len(got.Constraints) > 0 && got.TotalEqual(s.Truth) {
			spec = got
		}
	}
	if spec == nil {
		t.Skip("no totally-correct translation in the small validation set")
	}
	// Use the extracted SPO as a runtime-verification spec.
	delays := map[string]Bounds{}
	for _, c := range spec.Constraints {
		delays[c.Delay] = Bounds{Min: 0.5, Max: 5}
	}
	ms := &MonitorSpec{SPO: spec, Delays: delays}
	tr, err := SynthesizeTrace(ms, 0.1)
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	res, err := Check(ms, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Errorf("violations on satisfying trace: %v", res.Violations)
	}
	// Export to temporal logic.
	f, err := Formula(spec, delays)
	if err != nil || f == "" {
		t.Errorf("formula export failed: %q, %v", f, err)
	}
}

func TestIndustrialCorpusFacade(t *testing.T) {
	corpus, err := IndustrialCorpus(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != 30 {
		t.Fatalf("corpus size %d", len(corpus))
	}
}

func TestEdgeTypeConstants(t *testing.T) {
	if RiseStep.String() != "riseStep" || Double.String() != "double" {
		t.Error("edge type re-exports wrong")
	}
	if NoThreshold != "None" {
		t.Error("NoThreshold wrong")
	}
}

// TestTDLRoundtrip authors a diagram as text, renders it, translates the
// picture back, and compares against the parsed ground truth — the full
// author/render/extract loop.
func TestTDLRoundtrip(t *testing.T) {
	d, err := ParseTD(`
name roundtrip
signal CLK digital
  rise 0.15 0.19 *
  fall 0.55 0.59 *
signal OUT ramp
  rise 0.30 0.46 @90% *
arrow CLK.1 -> OUT.1 t_{PLH} row=0.3
arrow CLK.1 -> CLK.2 t_{W} row=0.7
`)
	if err != nil {
		t.Fatal(err)
	}
	sample, err := d.Render()
	if err != nil {
		t.Fatal(err)
	}
	train, err := NewGenerator(G1, 11).GenerateN(40)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := Train(rand.New(rand.NewSource(11)), train, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := pipe.Translate(sample.Image)
	if err != nil {
		t.Fatal(err)
	}
	if !got.TemplateEqual(sample.Truth) {
		t.Errorf("roundtrip not structurally correct:\ngot:\n%swant:\n%s",
			got.SpecText(), sample.Truth.SpecText())
	}
	// And the textual spec round-trips through ParseSpec.
	back, err := ParseSpec(got.SpecText())
	if err != nil {
		t.Fatal(err)
	}
	if !back.TotalEqual(got) {
		t.Error("SpecText/ParseSpec roundtrip mismatch")
	}
}

// TestFacadeSaveLoadAndExports exercises the persistence and export
// surfaces of the facade.
func TestFacadeSaveLoadAndExports(t *testing.T) {
	train, err := NewGenerator(G1, 21).GenerateN(12)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig()
	cfg.SEDTrain.Epochs = 4
	pipe, err := Train(rand.New(rand.NewSource(21)), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.gob")
	if err := pipe.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPipeline(path)
	if err != nil {
		t.Fatal(err)
	}
	s := train[0]
	got, rep, err := loaded.Translate(s.Image)
	if err != nil {
		t.Skipf("translation failed: %v", err)
	}
	// Overlay rendering.
	overlay := RenderOverlay(s.Image, rep)
	if overlay.Rect.Dx() != s.Image.W {
		t.Error("overlay size wrong")
	}
	// SVA export of whatever was extracted.
	src, err := ExportSVA(got, map[string]Bounds{}, SVAOptions{ModuleName: "m"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "module m(") {
		t.Errorf("SVA export wrong:\n%s", src)
	}
}

// TestFacadePNGRoundtrip checks the image I/O surface.
func TestFacadePNGRoundtrip(t *testing.T) {
	sample, err := NewGenerator(G1, 31).Generate()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sample.Image.EncodePNG(&buf); err != nil {
		t.Fatal(err)
	}
	img, err := DecodePNG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if img.W != sample.Image.W || img.H != sample.Image.H {
		t.Error("PNG roundtrip size mismatch")
	}
}
