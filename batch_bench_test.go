// Benchmarks for the corpus-scale batch engine (PR 7): cold and warm
// throughput of the streaming file-backed executor with the persistent
// content-addressed store, plus peak-heap sampling showing residency is
// bounded by the worker count, not the corpus size. BENCH_07.json records
// the measured numbers and the regression ceiling ci.sh enforces.
package tdmagic

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"tdmagic/internal/batch"
	"tdmagic/internal/store"
	"tdmagic/internal/tdgen"
)

// benchWriteCorpus renders n deterministic synthetic pictures as PNG files,
// the on-disk shape a corpus run consumes.
func benchWriteCorpus(b *testing.B, dir string, n int) {
	b.Helper()
	g := tdgen.NewSeeded(tdgen.DefaultConfig(tdgen.G1), 11)
	for i := 0; i < n; i++ {
		s, err := g.GenerateAt(i)
		if err != nil {
			b.Fatal(err)
		}
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("img-%04d.png", i)))
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Image.EncodePNG(f); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// peakHeap runs fn while sampling runtime.ReadMemStats and returns the
// largest HeapAlloc observed. The admission window in batch.Run bounds the
// pictures resident at once by the worker count, so this peak must stay
// flat as the corpus grows.
func peakHeap(fn func()) uint64 {
	stop := make(chan struct{})
	done := make(chan uint64, 1)
	go func() {
		var ms runtime.MemStats
		var peak uint64
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				done <- peak
				return
			case <-t.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()
	fn()
	close(stop)
	return <-done
}

// BenchmarkBatchEngineCold measures a first-time corpus run: every picture
// is decoded, translated and persisted into a fresh store. The two corpus
// sizes share one peak-heap metric each; near-equal peaks are the evidence
// that memory scales with workers, not corpus size.
func BenchmarkBatchEngineCold(b *testing.B) {
	pipe, _, _ := benchSetup(b)
	cfg := pipe.ConfigHash()
	for _, n := range []int{32, 128} {
		b.Run(fmt.Sprintf("corpus=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			benchWriteCorpus(b, dir, n)
			var peak uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				st, err := store.Open(b.TempDir())
				if err != nil {
					b.Fatal(err)
				}
				runtime.GC()
				b.StartTimer()
				p := peakHeap(func() {
					src, err := batch.Dir(dir)
					if err != nil {
						b.Fatal(err)
					}
					stats, err := batch.Run(context.Background(), pipe, src,
						batch.Options{Store: st, Config: cfg},
						func(r batch.Result) error { return r.Err })
					if err != nil {
						b.Fatal(err)
					}
					if stats.Misses != n {
						b.Fatalf("cold run: %d misses, want %d", stats.Misses, n)
					}
				})
				if p > peak {
					peak = p
				}
			}
			b.ReportMetric(float64(n), "pictures/op")
			b.ReportMetric(float64(peak)/(1<<20), "peak-heap-MB")
		})
	}
}

// BenchmarkBatchEngineWarm measures a re-run over a populated store: the
// alias index answers each file from its encoded-bytes hash, skipping PNG
// decode, pixel hashing and translation entirely.
func BenchmarkBatchEngineWarm(b *testing.B) {
	pipe, _, _ := benchSetup(b)
	cfg := pipe.ConfigHash()
	const n = 128
	dir := b.TempDir()
	benchWriteCorpus(b, dir, n)
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	src, err := batch.Dir(dir)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := batch.Run(context.Background(), pipe, src,
		batch.Options{Store: st, Config: cfg},
		func(r batch.Result) error { return r.Err }); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, err := batch.Dir(dir)
		if err != nil {
			b.Fatal(err)
		}
		stats, err := batch.Run(context.Background(), pipe, src,
			batch.Options{Store: st, Config: cfg},
			func(r batch.Result) error { return r.Err })
		if err != nil {
			b.Fatal(err)
		}
		if stats.Hits != n {
			b.Fatalf("warm run: %d hits, want %d", stats.Hits, n)
		}
	}
	b.ReportMetric(float64(n), "pictures/op")
}
