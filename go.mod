module tdmagic

go 1.22
