// Package diagram defines the abstract timing-diagram model shared by the
// synthetic generator (L-TD-G, internal/tdgen) and the industrial-style
// corpus (internal/industrial), together with the renderer that turns a
// model into a labelled dataset.Sample: a raster picture plus ground-truth
// edge boxes, text boxes, annotation lines, arrows and the reference SPO.
//
// Coordinates in the model are abstract: signal-edge x positions are
// fractions of the plot width, signal levels are fractions of the signal
// band height (0 = bottom, 1 = top), and arrow rows are fractions of the
// annotation band below the signals (0 = top of the band).
package diagram

import (
	"fmt"
	"math/rand"
	"sort"

	"tdmagic/internal/dataset"
	"tdmagic/internal/geom"
	"tdmagic/internal/render"
	"tdmagic/internal/spo"
)

// SignalKind classifies a waveform (paper Sec. III): digital (step edges),
// analog with ramp edges, or analog with double-ramp (bus-style) edges.
type SignalKind int

// Signal kinds.
const (
	Digital SignalKind = iota
	Ramp
	DoubleRamp
)

// String returns the kind name.
func (k SignalKind) String() string {
	switch k {
	case Digital:
		return "digital"
	case Ramp:
		return "ramp"
	case DoubleRamp:
		return "double"
	default:
		return fmt.Sprintf("SignalKind(%d)", int(k))
	}
}

// Edge is one signal transition.
type Edge struct {
	Type spo.EdgeType
	// X0 and X1 bound the transition horizontally (fractions of plot
	// width). Step edges are drawn at the centre of [X0, X1].
	X0, X1 float64
	// YLow and YHigh are the band-relative levels the transition moves
	// between.
	YLow, YHigh float64
	// Threshold is the event crossing level as a fraction from the bottom
	// of the edge (e.g. 0.9 for "90%"). Used by ramp and double edges.
	Threshold float64
	// ThresholdText is the printed threshold annotation ("90%"); empty
	// suppresses the text.
	ThresholdText string
	// HasEvent marks the edge as carrying an event (vertical annotation
	// line). Edges referenced by arrows must have it set.
	HasEvent bool
	// Thick draws the edge with the style's thick stroke — the paper's
	// Example 3 corner case where step edges are nearly as thick as
	// annotation lines.
	Thick bool
	// ExtraThresholds draws additional decorative threshold lines (the
	// dense-threshold corner case of paper Fig. 7); each entry is a
	// level fraction with its printed text.
	ExtraThresholds []ThresholdMark
}

// ThresholdMark is a decorative threshold annotation without an event.
type ThresholdMark struct {
	Level float64
	Text  string
}

// Signal is one waveform with its transitions, ordered left to right.
type Signal struct {
	Name      string // rich-markup name, e.g. "V_{INA}"
	Kind      SignalKind
	Edges     []Edge
	BoundHigh string // optional boundary-value text at the high level
	BoundLow  string // optional boundary-value text at the low level
}

// EventRef identifies an event by signal index and edge index (0-based).
type EventRef struct {
	Signal, Edge int
}

// Arrow is a timing-constraint annotation between two events.
type Arrow struct {
	From, To EventRef
	Label    string  // rich-markup timing parameter, e.g. "t_{D(on)}"
	Y        float64 // row within the annotation band (0 = top, 1 = bottom)
	// Outward draws the tails-outside style used for narrow spans
	// (paper Fig. 7's "6ns" annotation).
	Outward bool
}

// Style controls rendering.
type Style struct {
	Width, Height int
	LeftMargin    int // room for signal names
	RightMargin   int // room for boundary values
	TopMargin     int
	BottomMargin  int
	AnnotFrac     float64 // fraction of content height for the arrow band
	BandGap       int     // vertical gap between signal bands
	BandPad       int     // padding inside a band above/below the waveform
	Stroke        int     // waveform stroke width
	ThickStroke   int     // stroke for Edge.Thick
	LineStroke    int     // annotation-line stroke width
	ArrowStroke   int
	TextScale     int
	DashOn        int // dash pattern of annotation lines
	DashOff       int
	SolidVLines   bool // draw event lines solid instead of dashed
	ShowAxes      bool
	NoiseDots     int   // random ink specks (scanning artefacts)
	NoiseSeed     int64 // seed for the specks
}

// DefaultStyle returns the style used for the synthetic training set.
func DefaultStyle() Style {
	return Style{
		Width: 900, Height: 540,
		LeftMargin: 110, RightMargin: 70, TopMargin: 18, BottomMargin: 14,
		AnnotFrac: 0.30, BandGap: 10, BandPad: 14,
		Stroke: 3, ThickStroke: 7, LineStroke: 1, ArrowStroke: 2,
		TextScale: 2, DashOn: 4, DashOff: 4,
	}
}

// Diagram is a complete abstract timing diagram.
type Diagram struct {
	Name    string
	Signals []Signal
	Arrows  []Arrow
	Style   Style
}

// event is a resolved event during rendering.
type event struct {
	ref  EventRef
	x, y int // pixel position of the threshold crossing
}

// layout captures the pixel geometry of a render.
type layout struct {
	style    Style
	plotX0   int
	plotX1   int
	bandTop  []int
	bandBot  []int
	annotTop int
	annotBot int
}

func newLayout(d *Diagram) (*layout, error) {
	st := d.Style
	if st.Width <= 0 || st.Height <= 0 {
		return nil, fmt.Errorf("diagram: bad canvas size %dx%d", st.Width, st.Height)
	}
	if len(d.Signals) == 0 {
		return nil, fmt.Errorf("diagram: no signals")
	}
	l := &layout{style: st}
	l.plotX0 = st.LeftMargin
	l.plotX1 = st.Width - st.RightMargin - 1
	contentTop := st.TopMargin
	contentBot := st.Height - st.BottomMargin - 1
	contentH := contentBot - contentTop + 1
	annotH := int(float64(contentH) * st.AnnotFrac)
	l.annotBot = contentBot
	l.annotTop = contentBot - annotH + 1
	sigArea := contentH - annotH
	n := len(d.Signals)
	bandH := (sigArea - (n-1)*st.BandGap) / n
	if bandH < 3*st.BandPad {
		return nil, fmt.Errorf("diagram: %d signals do not fit in %d rows", n, sigArea)
	}
	for i := 0; i < n; i++ {
		top := contentTop + i*(bandH+st.BandGap)
		l.bandTop = append(l.bandTop, top)
		l.bandBot = append(l.bandBot, top+bandH-1)
	}
	return l, nil
}

// px maps an abstract x fraction to a pixel column.
func (l *layout) px(fx float64) int {
	return l.plotX0 + int(fx*float64(l.plotX1-l.plotX0)+0.5)
}

// py maps a band-relative level (0 bottom, 1 top) to a pixel row.
func (l *layout) py(band int, level float64) int {
	top := l.bandTop[band] + l.style.BandPad
	bot := l.bandBot[band] - l.style.BandPad
	return bot - int(level*float64(bot-top)+0.5)
}

// ay maps an annotation-band fraction (0 top, 1 bottom) to a pixel row.
func (l *layout) ay(f float64) int {
	pad := 4
	top := l.annotTop + pad
	bot := l.annotBot - pad
	return top + int(f*float64(bot-top)+0.5)
}

// Validate checks structural consistency of the diagram: edges ordered and
// inside [0,1], arrow references resolvable and event-carrying.
func (d *Diagram) Validate() error {
	for si, s := range d.Signals {
		prev := -1.0
		for ei, e := range s.Edges {
			if e.X0 < 0 || e.X1 > 1 || e.X0 >= e.X1 {
				return fmt.Errorf("diagram: signal %d edge %d: bad x extent [%v,%v]", si, ei, e.X0, e.X1)
			}
			if e.X0 < prev {
				return fmt.Errorf("diagram: signal %d edge %d overlaps previous", si, ei)
			}
			prev = e.X1
			if e.YLow >= e.YHigh {
				return fmt.Errorf("diagram: signal %d edge %d: YLow %v >= YHigh %v", si, ei, e.YLow, e.YHigh)
			}
		}
	}
	for ai, a := range d.Arrows {
		for _, r := range []EventRef{a.From, a.To} {
			if r.Signal < 0 || r.Signal >= len(d.Signals) {
				return fmt.Errorf("diagram: arrow %d references signal %d", ai, r.Signal)
			}
			if r.Edge < 0 || r.Edge >= len(d.Signals[r.Signal].Edges) {
				return fmt.Errorf("diagram: arrow %d references edge %d of signal %d", ai, r.Edge, r.Signal)
			}
			if !d.Signals[r.Signal].Edges[r.Edge].HasEvent {
				return fmt.Errorf("diagram: arrow %d references event-less edge %v", ai, r)
			}
		}
	}
	return nil
}

// eventPoint computes the pixel position of the event of edge (si, ei).
func (l *layout) eventPoint(d *Diagram, si, ei int) (x, y int) {
	e := d.Signals[si].Edges[ei]
	yLo := l.py(si, e.YLow)
	yHi := l.py(si, e.YHigh)
	switch e.Type {
	case spo.RiseStep, spo.FallStep:
		xc := l.px((e.X0 + e.X1) / 2)
		return xc, (yLo + yHi) / 2
	case spo.RiseRamp:
		t := e.Threshold
		x = l.px(e.X0 + t*(e.X1-e.X0))
		y = yLo - int(t*float64(yLo-yHi)+0.5)
		return x, y
	case spo.FallRamp:
		t := e.Threshold
		x = l.px(e.X0 + (1-t)*(e.X1-e.X0))
		y = yLo - int(t*float64(yLo-yHi)+0.5)
		return x, y
	default: // Double: crossing point at the centre
		xc := l.px((e.X0 + e.X1) / 2)
		return xc, (yLo + yHi) / 2
	}
}

// Render rasterises the diagram and returns the labelled sample.
func (d *Diagram) Render() (*dataset.Sample, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	l, err := newLayout(d)
	if err != nil {
		return nil, err
	}
	st := d.Style
	c := render.NewCanvas(st.Width, st.Height)
	out := &dataset.Sample{Name: d.Name}

	// 1. Waveforms, collecting ground-truth edge boxes.
	for si := range d.Signals {
		d.renderSignal(c, l, si, out)
	}

	// 2. Resolve events referenced by arrows.
	needed := map[EventRef]bool{}
	for _, a := range d.Arrows {
		needed[a.From] = true
		needed[a.To] = true
	}
	events := map[EventRef]event{}
	for ref := range needed {
		x, y := l.eventPoint(d, ref.Signal, ref.Edge)
		events[ref] = event{ref: ref, x: x, y: y}
	}

	// 3. Arrow rows and vertical-line extents. Each event's line runs from
	// its crossing point down past the lowest arrow that uses it.
	arrowY := make([]int, len(d.Arrows))
	lineBot := map[EventRef]int{}
	for i, a := range d.Arrows {
		arrowY[i] = l.ay(a.Y)
		for _, r := range []EventRef{a.From, a.To} {
			if yb := arrowY[i] + 8; yb > lineBot[r] {
				lineBot[r] = yb
			}
		}
	}

	// 4. Threshold lines (H-lines) and event lines (V-lines).
	for si := range d.Signals {
		for ei := range d.Signals[si].Edges {
			d.renderThresholds(c, l, si, ei, out)
		}
	}
	refs := make([]EventRef, 0, len(events))
	for r := range events {
		refs = append(refs, r)
	}
	sort.Slice(refs, func(i, j int) bool {
		if events[refs[i]].x != events[refs[j]].x {
			return events[refs[i]].x < events[refs[j]].x
		}
		return refs[i].Signal < refs[j].Signal
	})
	for _, r := range refs {
		ev := events[r]
		bot := lineBot[r]
		if bot <= ev.y {
			bot = ev.y + 20
		}
		if bot > st.Height-2 {
			bot = st.Height - 2
		}
		if st.SolidVLines {
			c.Line(geom.Pt{X: ev.x, Y: ev.y}, geom.Pt{X: ev.x, Y: bot}, st.LineStroke)
		} else {
			c.DashedLine(geom.Pt{X: ev.x, Y: ev.y}, geom.Pt{X: ev.x, Y: bot}, st.LineStroke, st.DashOn, st.DashOff)
		}
		out.VLines = append(out.VLines, geom.VSeg{X: ev.x, Y0: ev.y, Y1: bot})
	}

	// 5. Arrows with labels.
	for i, a := range d.Arrows {
		x0, x1 := events[a.From].x, events[a.To].x
		if x0 > x1 {
			x0, x1 = x1, x0
		}
		y := arrowY[i]
		if a.Outward {
			c.HArrowOutward(y, x0, x1, 30, st.ArrowStroke)
		} else {
			c.HArrow(y, x0, x1, st.ArrowStroke)
		}
		out.Arrows = append(out.Arrows, dataset.Arrow{Y: y, X0: x0, X1: x1, Label: a.Label})
		if a.Label != "" {
			_, th := c.MeasureText(a.Label, st.TextScale)
			box := c.TextCentered((x0+x1)/2, y-th-3, a.Label, st.TextScale)
			out.Texts = append(out.Texts, dataset.TextBox{Box: box, Text: a.Label, Role: dataset.RoleTimeConstraint})
		}
	}

	// 6. Signal names and boundary values.
	for si, s := range d.Signals {
		if s.Name != "" {
			_, th := c.MeasureText(s.Name, st.TextScale)
			yc := (l.bandTop[si] + l.bandBot[si]) / 2
			box := c.Text(6, yc-th/2, s.Name, st.TextScale)
			out.Texts = append(out.Texts, dataset.TextBox{Box: box, Text: s.Name, Role: dataset.RoleSignalName})
		}
		bx := l.plotX1 + 6
		if s.BoundHigh != "" {
			y := l.py(si, signalTopLevel(&d.Signals[si]))
			box := c.Text(bx, y-3, s.BoundHigh, st.TextScale)
			out.Texts = append(out.Texts, dataset.TextBox{Box: box, Text: s.BoundHigh, Role: dataset.RoleSignalValue})
		}
		if s.BoundLow != "" {
			y := l.py(si, signalBotLevel(&d.Signals[si]))
			box := c.Text(bx, y-3, s.BoundLow, st.TextScale)
			out.Texts = append(out.Texts, dataset.TextBox{Box: box, Text: s.BoundLow, Role: dataset.RoleSignalValue})
		}
	}

	// 7. Optional axes.
	if st.ShowAxes {
		ax := l.plotX0 - 8
		c.VArrow(ax, l.annotTop-4, st.TopMargin, st.LineStroke)
		c.Line(geom.Pt{X: ax, Y: l.annotTop - 4}, geom.Pt{X: l.plotX1, Y: l.annotTop - 4}, st.LineStroke)
		c.ArrowHead(geom.Pt{X: l.plotX1, Y: l.annotTop - 4}, 1, 0, 4, st.LineStroke)
	}

	// 8. Scanner noise.
	if st.NoiseDots > 0 {
		rng := rand.New(rand.NewSource(st.NoiseSeed))
		for i := 0; i < st.NoiseDots; i++ {
			c.SetPixel(rng.Intn(st.Width), rng.Intn(st.Height))
		}
	}

	out.Image = c.Gray()

	// 9. Ground-truth SPO: events in global left-to-right order.
	truth := &spo.SPO{}
	nodeIdx := map[EventRef]int{}
	for _, r := range refs {
		e := d.Signals[r.Signal].Edges[r.Edge]
		th := spo.NoThreshold
		if !e.Type.IsStep() && e.ThresholdText != "" {
			th = e.ThresholdText
		}
		nodeIdx[r] = truth.AddNode(spo.Node{
			Signal:    d.Signals[r.Signal].Name,
			EdgeIndex: r.Edge + 1,
			Type:      e.Type,
			Threshold: th,
		})
	}
	for _, a := range d.Arrows {
		if err := truth.AddConstraint(nodeIdx[a.From], nodeIdx[a.To], a.Label); err != nil {
			return nil, err
		}
	}
	out.Truth = truth
	return out, nil
}

// signalTopLevel returns the highest level any edge of s reaches.
func signalTopLevel(s *Signal) float64 {
	top := 0.0
	for _, e := range s.Edges {
		if e.YHigh > top {
			top = e.YHigh
		}
	}
	return top
}

// signalBotLevel returns the lowest level any edge of s reaches.
func signalBotLevel(s *Signal) float64 {
	if len(s.Edges) == 0 {
		return 0
	}
	bot := 1.0
	for _, e := range s.Edges {
		if e.YLow < bot {
			bot = e.YLow
		}
	}
	return bot
}

// renderSignal draws the waveform of signal si and records edge boxes.
func (d *Diagram) renderSignal(c *render.Canvas, l *layout, si int, out *dataset.Sample) {
	s := &d.Signals[si]
	st := d.Style
	if s.Kind == DoubleRamp {
		d.renderBusSignal(c, l, si, out)
		return
	}
	if len(s.Edges) == 0 {
		return
	}
	stroke := st.Stroke
	// Start plateau at the first edge's start level.
	cur := startLevel(s.Edges[0])
	curX := l.plotX0
	for ei := range s.Edges {
		e := &s.Edges[ei]
		str := stroke
		if e.Thick {
			str = st.ThickStroke
		}
		yLo := l.py(si, e.YLow)
		yHi := l.py(si, e.YHigh)
		switch e.Type {
		case spo.RiseStep, spo.FallStep:
			xc := l.px((e.X0 + e.X1) / 2)
			c.Line(geom.Pt{X: curX, Y: l.py(si, cur)}, geom.Pt{X: xc, Y: l.py(si, cur)}, stroke)
			c.Line(geom.Pt{X: xc, Y: yLo}, geom.Pt{X: xc, Y: yHi}, str)
			pad := str/2 + 1
			out.Edges = append(out.Edges, dataset.EdgeBox{
				Box:    geom.Rect{X0: xc - pad, Y0: yHi - 1, X1: xc + pad, Y1: yLo + 1},
				Type:   e.Type,
				Signal: si,
			})
			curX = xc
		case spo.RiseRamp:
			x0, x1 := l.px(e.X0), l.px(e.X1)
			c.Line(geom.Pt{X: curX, Y: l.py(si, cur)}, geom.Pt{X: x0, Y: l.py(si, cur)}, stroke)
			c.Line(geom.Pt{X: x0, Y: yLo}, geom.Pt{X: x1, Y: yHi}, str)
			out.Edges = append(out.Edges, dataset.EdgeBox{
				Box:    geom.Rect{X0: x0 - 1, Y0: yHi - 1, X1: x1 + 1, Y1: yLo + 1},
				Type:   e.Type,
				Signal: si,
			})
			curX = x1
		case spo.FallRamp:
			x0, x1 := l.px(e.X0), l.px(e.X1)
			c.Line(geom.Pt{X: curX, Y: l.py(si, cur)}, geom.Pt{X: x0, Y: l.py(si, cur)}, stroke)
			c.Line(geom.Pt{X: x0, Y: yHi}, geom.Pt{X: x1, Y: yLo}, str)
			out.Edges = append(out.Edges, dataset.EdgeBox{
				Box:    geom.Rect{X0: x0 - 1, Y0: yHi - 1, X1: x1 + 1, Y1: yLo + 1},
				Type:   e.Type,
				Signal: si,
			})
			curX = x1
		}
		cur = endLevel(*e)
	}
	// Trailing plateau.
	c.Line(geom.Pt{X: curX, Y: l.py(si, cur)}, geom.Pt{X: l.plotX1, Y: l.py(si, cur)}, stroke)
}

// renderBusSignal draws a two-rail bus waveform with X-shaped double edges.
func (d *Diagram) renderBusSignal(c *render.Canvas, l *layout, si int, out *dataset.Sample) {
	s := &d.Signals[si]
	st := d.Style
	stroke := st.Stroke
	if len(s.Edges) == 0 {
		return
	}
	curX := l.plotX0
	for ei := range s.Edges {
		e := &s.Edges[ei]
		x0, x1 := l.px(e.X0), l.px(e.X1)
		yLo := l.py(si, e.YLow)
		yHi := l.py(si, e.YHigh)
		// Rails up to the transition.
		c.Line(geom.Pt{X: curX, Y: yHi}, geom.Pt{X: x0, Y: yHi}, stroke)
		c.Line(geom.Pt{X: curX, Y: yLo}, geom.Pt{X: x0, Y: yLo}, stroke)
		// X crossing.
		str := stroke
		if e.Thick {
			str = st.ThickStroke
		}
		c.Line(geom.Pt{X: x0, Y: yHi}, geom.Pt{X: x1, Y: yLo}, str)
		c.Line(geom.Pt{X: x0, Y: yLo}, geom.Pt{X: x1, Y: yHi}, str)
		out.Edges = append(out.Edges, dataset.EdgeBox{
			Box:    geom.Rect{X0: x0 - 1, Y0: yHi - 1, X1: x1 + 1, Y1: yLo + 1},
			Type:   spo.Double,
			Signal: si,
		})
		curX = x1
	}
	last := s.Edges[len(s.Edges)-1]
	yHi := l.py(si, last.YHigh)
	yLo := l.py(si, last.YLow)
	c.Line(geom.Pt{X: curX, Y: yHi}, geom.Pt{X: l.plotX1, Y: yHi}, stroke)
	c.Line(geom.Pt{X: curX, Y: yLo}, geom.Pt{X: l.plotX1, Y: yLo}, stroke)
}

// renderThresholds draws the dashed threshold lines of edge (si, ei) with
// their texts, recording H-line and text ground truth.
func (d *Diagram) renderThresholds(c *render.Canvas, l *layout, si, ei int, out *dataset.Sample) {
	s := &d.Signals[si]
	e := &s.Edges[ei]
	st := d.Style
	// The event threshold label sits left of the line; decorative extra
	// thresholds label on the right, so stacked annotations do not collide
	// (datasheets stagger them the same way).
	draw := func(level float64, text string, rightSide bool) {
		y := l.py(si, e.YLow) - int(level*float64(l.py(si, e.YLow)-l.py(si, e.YHigh))+0.5)
		x0 := l.px(e.X0) - 20
		x1 := l.px(e.X1) + 20
		c.DashedLine(geom.Pt{X: x0, Y: y}, geom.Pt{X: x1, Y: y}, st.LineStroke, st.DashOn, st.DashOff)
		out.HLines = append(out.HLines, geom.HSeg{Y: y, X0: x0, X1: x1})
		if text != "" {
			scale := st.TextScale - 1
			if scale < 1 {
				scale = 1
			}
			w, th := c.MeasureText(text, scale)
			// A left-side label that would run into the margin (over the
			// y axis or the signal name) flips to the right side, as a
			// datasheet designer would place it.
			if !rightSide && x0-w-12 < st.LeftMargin-4 {
				rightSide = true
			}
			var box geom.Rect
			if rightSide {
				box = c.Text(x1+10, y-th/2, text, scale)
			} else {
				box = c.Text(x0-w-12, y-th/2, text, scale)
			}
			out.Texts = append(out.Texts, dataset.TextBox{Box: box, Text: text, Role: dataset.RoleSignalValue})
		}
	}
	if e.HasEvent && !e.Type.IsStep() && e.Threshold > 0 {
		draw(e.Threshold, e.ThresholdText, false)
	}
	for _, m := range e.ExtraThresholds {
		draw(m.Level, m.Text, true)
	}
}

// startLevel is the band level a signal holds before an edge fires.
func startLevel(e Edge) float64 {
	if e.Type.IsRise() {
		return e.YLow
	}
	return e.YHigh
}

// endLevel is the band level a signal holds after an edge fires.
func endLevel(e Edge) float64 {
	if e.Type.IsRise() {
		return e.YHigh
	}
	return e.YLow
}
