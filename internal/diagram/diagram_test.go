package diagram

import (
	"strings"
	"testing"

	"tdmagic/internal/dataset"
	"tdmagic/internal/geom"
	"tdmagic/internal/spo"
)

// fig4Left builds a diagram modelled on the paper's Fig. 4 (left):
// digital V_INA pulse driving a ramping V_OUTA, with t_D(on) / t_D(off).
func fig4Left() *Diagram {
	return &Diagram{
		Name: "fig4-left",
		Signals: []Signal{
			{
				Name: "V_{INA}",
				Kind: Digital,
				Edges: []Edge{
					{Type: spo.RiseStep, X0: 0.10, X1: 0.16, YLow: 0.1, YHigh: 0.9, HasEvent: true},
					{Type: spo.FallStep, X0: 0.55, X1: 0.61, YLow: 0.1, YHigh: 0.9, HasEvent: true},
				},
			},
			{
				Name:      "V_{OUTA}",
				Kind:      Ramp,
				BoundHigh: "V_{CC}",
				BoundLow:  "GND",
				Edges: []Edge{
					{Type: spo.RiseRamp, X0: 0.20, X1: 0.38, YLow: 0.1, YHigh: 0.9,
						Threshold: 0.9, ThresholdText: "90%", HasEvent: true},
					{Type: spo.FallRamp, X0: 0.65, X1: 0.85, YLow: 0.1, YHigh: 0.9,
						Threshold: 0.1, ThresholdText: "10%", HasEvent: true},
				},
			},
		},
		Arrows: []Arrow{
			{From: EventRef{0, 0}, To: EventRef{1, 0}, Label: "t_{D(on)}", Y: 0.3},
			{From: EventRef{0, 1}, To: EventRef{1, 1}, Label: "t_{D(off)}", Y: 0.7},
		},
		Style: DefaultStyle(),
	}
}

// fig4Right builds a diagram modelled on the paper's Fig. 4 (right):
// SI bus with double edges and SCK setup/hold.
func fig4Right() *Diagram {
	return &Diagram{
		Name: "fig4-right",
		Signals: []Signal{
			{
				Name: "SI",
				Kind: DoubleRamp,
				Edges: []Edge{
					{Type: spo.Double, X0: 0.15, X1: 0.22, YLow: 0.15, YHigh: 0.85,
						Threshold: 0.5, ThresholdText: "50%", HasEvent: true},
					{Type: spo.Double, X0: 0.70, X1: 0.77, YLow: 0.15, YHigh: 0.85,
						Threshold: 0.5, ThresholdText: "50%", HasEvent: true},
				},
			},
			{
				Name: "SCK",
				Kind: Ramp,
				Edges: []Edge{
					{Type: spo.RiseRamp, X0: 0.42, X1: 0.50, YLow: 0.15, YHigh: 0.85,
						Threshold: 0.5, ThresholdText: "50%", HasEvent: true},
				},
			},
		},
		Arrows: []Arrow{
			{From: EventRef{0, 0}, To: EventRef{1, 0}, Label: "t_{s}", Y: 0.35},
			{From: EventRef{1, 0}, To: EventRef{0, 1}, Label: "t_{h}", Y: 0.65},
		},
		Style: DefaultStyle(),
	}
}

func TestSignalKindString(t *testing.T) {
	if Digital.String() != "digital" || Ramp.String() != "ramp" || DoubleRamp.String() != "double" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(SignalKind(9).String(), "9") {
		t.Error("unknown kind formatting")
	}
}

func TestValidate(t *testing.T) {
	if err := fig4Left().Validate(); err != nil {
		t.Errorf("valid diagram rejected: %v", err)
	}
	d := fig4Left()
	d.Signals[0].Edges[0].X1 = 0.05 // X0 >= X1
	if d.Validate() == nil {
		t.Error("bad x extent accepted")
	}
	d = fig4Left()
	d.Signals[0].Edges[1].X0 = 0.12 // overlaps first edge
	if d.Validate() == nil {
		t.Error("overlapping edges accepted")
	}
	d = fig4Left()
	d.Signals[0].Edges[0].YLow = 0.95
	if d.Validate() == nil {
		t.Error("inverted levels accepted")
	}
	d = fig4Left()
	d.Arrows[0].To = EventRef{5, 0}
	if d.Validate() == nil {
		t.Error("dangling arrow accepted")
	}
	d = fig4Left()
	d.Arrows[0].To = EventRef{1, 7}
	if d.Validate() == nil {
		t.Error("dangling edge ref accepted")
	}
	d = fig4Left()
	d.Signals[1].Edges[0].HasEvent = false
	if d.Validate() == nil {
		t.Error("arrow to event-less edge accepted")
	}
}

func TestRenderErrors(t *testing.T) {
	d := &Diagram{Style: DefaultStyle()}
	if _, err := d.Render(); err == nil {
		t.Error("empty diagram rendered")
	}
	d = fig4Left()
	d.Style.Width = 0
	if _, err := d.Render(); err == nil {
		t.Error("zero-size canvas rendered")
	}
	d = fig4Left()
	d.Style.Height = 60 // signals cannot fit
	if _, err := d.Render(); err == nil {
		t.Error("impossible layout rendered")
	}
}

func TestRenderFig4LeftGroundTruth(t *testing.T) {
	s, err := fig4Left().Render()
	if err != nil {
		t.Fatal(err)
	}
	if s.Image == nil || s.Image.W != 900 || s.Image.H != 540 {
		t.Fatal("image missing or wrong size")
	}
	if len(s.Edges) != 4 {
		t.Fatalf("edge boxes = %d, want 4", len(s.Edges))
	}
	types := map[spo.EdgeType]int{}
	for _, e := range s.Edges {
		types[e.Type]++
		if e.Box.Empty() {
			t.Error("empty edge box")
		}
	}
	if types[spo.RiseStep] != 1 || types[spo.FallStep] != 1 || types[spo.RiseRamp] != 1 || types[spo.FallRamp] != 1 {
		t.Errorf("edge types = %v", types)
	}
	if len(s.VLines) != 4 {
		t.Errorf("vlines = %d, want 4", len(s.VLines))
	}
	if len(s.HLines) != 2 {
		t.Errorf("hlines = %d, want 2 (two thresholds)", len(s.HLines))
	}
	if len(s.Arrows) != 2 {
		t.Errorf("arrows = %d, want 2", len(s.Arrows))
	}
	// Texts: 2 names + 2 boundaries + 2 thresholds + 2 constraints = 8.
	if len(s.Texts) != 8 {
		t.Errorf("texts = %d, want 8", len(s.Texts))
	}
	roles := map[dataset.TextRole]int{}
	for _, tb := range s.Texts {
		roles[tb.Role]++
	}
	if roles[dataset.RoleSignalName] != 2 || roles[dataset.RoleSignalValue] != 4 || roles[dataset.RoleTimeConstraint] != 2 {
		t.Errorf("text roles = %v", roles)
	}
}

func TestRenderFig4LeftSPO(t *testing.T) {
	s, err := fig4Left().Render()
	if err != nil {
		t.Fatal(err)
	}
	p := s.Truth
	if err := p.Validate(); err != nil {
		t.Fatalf("ground-truth SPO invalid: %v", err)
	}
	if len(p.Nodes) != 4 || len(p.Constraints) != 2 {
		t.Fatalf("SPO has %d nodes, %d constraints", len(p.Nodes), len(p.Constraints))
	}
	// Paper Example 1 ordering: V_INA rise, V_OUTA 90%, V_INA fall, V_OUTA 10%.
	want := []spo.Node{
		{Signal: "V_{INA}", EdgeIndex: 1, Type: spo.RiseStep, Threshold: "None"},
		{Signal: "V_{OUTA}", EdgeIndex: 1, Type: spo.RiseRamp, Threshold: "90%"},
		{Signal: "V_{INA}", EdgeIndex: 2, Type: spo.FallStep, Threshold: "None"},
		{Signal: "V_{OUTA}", EdgeIndex: 2, Type: spo.FallRamp, Threshold: "10%"},
	}
	for i, n := range want {
		if p.Nodes[i] != n {
			t.Errorf("node %d = %v, want %v", i, p.Nodes[i], n)
		}
	}
	if p.Constraints[0].Delay != "t_{D(on)}" && p.Constraints[1].Delay != "t_{D(on)}" {
		t.Error("t_{D(on)} constraint missing")
	}
}

func TestRenderFig4RightSPO(t *testing.T) {
	s, err := fig4Right().Render()
	if err != nil {
		t.Fatal(err)
	}
	p := s.Truth
	if len(p.Nodes) != 3 || len(p.Constraints) != 2 {
		t.Fatalf("SPO has %d nodes, %d constraints", len(p.Nodes), len(p.Constraints))
	}
	// Example 2: SI double, SCK rise, SI double — chain n1 -> n2 -> n3.
	if p.Nodes[0].Type != spo.Double || p.Nodes[1].Type != spo.RiseRamp || p.Nodes[2].Type != spo.Double {
		t.Errorf("node types: %v %v %v", p.Nodes[0].Type, p.Nodes[1].Type, p.Nodes[2].Type)
	}
	if !p.Less(0, 2) {
		t.Error("transitive order n1 < n3 missing")
	}
}

func TestRenderEventGeometry(t *testing.T) {
	s, err := fig4Left().Render()
	if err != nil {
		t.Fatal(err)
	}
	// Each vline must start inside the edge box of its event (the crossing
	// point) and extend below every arrow row it serves.
	for _, v := range s.VLines {
		inBox := false
		for _, e := range s.Edges {
			if v.X >= e.Box.X0 && v.X <= e.Box.X1 && v.Y0 >= e.Box.Y0-3 && v.Y0 <= e.Box.Y1+3 {
				inBox = true
			}
		}
		if !inBox {
			t.Errorf("vline at x=%d starts outside every edge box", v.X)
		}
	}
	// Arrows connect two vline columns.
	for _, a := range s.Arrows {
		found0, found1 := false, false
		for _, v := range s.VLines {
			if v.X == a.X0 {
				found0 = true
			}
			if v.X == a.X1 {
				found1 = true
			}
		}
		if !found0 || !found1 {
			t.Errorf("arrow %+v endpoints not on vlines", a)
		}
		if a.Y < s.VLines[0].Y0 {
			t.Error("arrow above the waveforms")
		}
	}
}

func TestRenderThresholdCrossing(t *testing.T) {
	s, err := fig4Left().Render()
	if err != nil {
		t.Fatal(err)
	}
	// The 90% hline must cross the riseRamp vline near its top (high
	// threshold), i.e. the crossing y is in the upper half of the ramp box.
	var rampBox geom.Rect
	for _, e := range s.Edges {
		if e.Type == spo.RiseRamp {
			rampBox = e.Box
		}
	}
	crossed := false
	for _, h := range s.HLines {
		for _, v := range s.VLines {
			if p, ok := geom.CrossPoint(h, v); ok && p.In(rampBox) {
				if p.Y < rampBox.CenterY() {
					crossed = true
				}
			}
		}
	}
	if !crossed {
		t.Error("90% threshold crossing not in upper half of ramp box")
	}
}

func TestRenderInkMatchesLabels(t *testing.T) {
	s, err := fig4Left().Render()
	if err != nil {
		t.Fatal(err)
	}
	// Every labelled edge box must contain ink.
	for _, e := range s.Edges {
		ink := 0
		for y := e.Box.Y0; y <= e.Box.Y1; y++ {
			for x := e.Box.X0; x <= e.Box.X1; x++ {
				if s.Image.At(x, y) < 128 {
					ink++
				}
			}
		}
		if ink < e.Box.H() {
			t.Errorf("edge box %v nearly empty (%d ink px)", e.Box, ink)
		}
	}
	// Text boxes contain ink too.
	for _, tb := range s.Texts {
		ink := 0
		for y := tb.Box.Y0; y <= tb.Box.Y1; y++ {
			for x := tb.Box.X0; x <= tb.Box.X1; x++ {
				if s.Image.At(x, y) < 128 {
					ink++
				}
			}
		}
		if ink == 0 {
			t.Errorf("text box %q empty", tb.Text)
		}
	}
}

func TestRenderBusSignalRails(t *testing.T) {
	s, err := fig4Right().Render()
	if err != nil {
		t.Fatal(err)
	}
	// The SI band should have two horizontal rails: check ink at two rows
	// to the left of the first double edge.
	var si dataset.EdgeBox
	for _, e := range s.Edges {
		if e.Type == spo.Double {
			si = e
			break
		}
	}
	x := si.Box.X0 - 10
	top, bot := false, false
	for y := si.Box.Y0; y <= si.Box.Y1; y++ {
		if s.Image.At(x, y) < 128 {
			if y < si.Box.CenterY() {
				top = true
			} else {
				bot = true
			}
		}
	}
	if !top || !bot {
		t.Error("bus rails missing left of double edge")
	}
}

func TestRenderOptions(t *testing.T) {
	d := fig4Left()
	d.Style.ShowAxes = true
	d.Style.NoiseDots = 50
	d.Style.NoiseSeed = 7
	d.Style.SolidVLines = true
	s, err := d.Render()
	if err != nil {
		t.Fatal(err)
	}
	// Solid vlines: the column of the first vline should be fully inked
	// between Y0 and Y1.
	v := s.VLines[0]
	for y := v.Y0; y <= v.Y1; y++ {
		if s.Image.At(v.X, y) >= 128 {
			t.Errorf("solid vline broken at y=%d", y)
			break
		}
	}
}

func TestRenderDeterministic(t *testing.T) {
	a, err := fig4Left().Render()
	if err != nil {
		t.Fatal(err)
	}
	b, err := fig4Left().Render()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Image.Pix {
		if a.Image.Pix[i] != b.Image.Pix[i] {
			t.Fatal("render not deterministic")
		}
	}
}

func TestRenderExtraThresholds(t *testing.T) {
	d := fig4Right()
	d.Signals[1].Edges[0].ExtraThresholds = []ThresholdMark{
		{Level: 0.3, Text: "1V"},
		{Level: 0.7, Text: "2V"},
	}
	s, err := d.Render()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.HLines) != 5 { // 3 event thresholds + 2 extra
		t.Errorf("hlines = %d, want 5", len(s.HLines))
	}
}

func TestStartEndLevel(t *testing.T) {
	rise := Edge{Type: spo.RiseRamp, YLow: 0.1, YHigh: 0.9}
	fall := Edge{Type: spo.FallStep, YLow: 0.2, YHigh: 0.8}
	if startLevel(rise) != 0.1 || endLevel(rise) != 0.9 {
		t.Error("rise levels wrong")
	}
	if startLevel(fall) != 0.8 || endLevel(fall) != 0.2 {
		t.Error("fall levels wrong")
	}
}
