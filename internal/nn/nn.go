// Package nn implements the small supervised-learning substrate that stands
// in for the paper's deep models (YOLO5 for edge detection, PaddleOCR for
// text recognition): a dense multi-layer perceptron with ReLU hidden layers,
// a softmax cross-entropy head, Adam optimisation, minibatch training and
// gob serialisation.
//
// The networks here are orders of magnitude smaller than the paper's, but
// play the same role: they are trained purely on synthetic L-TD-G data and
// then asked to extrapolate to the industrial-style corpus.
//
// Two performance paths matter to the pipeline and are first-class here:
// training fans minibatch gradient computation out over a worker pool with a
// fixed-shape reduction (so the trained weights are bit-identical for any
// worker count), and inference offers Scratch-based variants
// (LogitsScratch, PredictScratch) that perform zero heap allocations per
// call.
package nn

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"

	"tdmagic/internal/parallel"
)

// Net is a feed-forward network with ReLU hidden activations and a linear
// output layer (softmax is applied by the loss / Predict).
type Net struct {
	Sizes   []int       // layer widths, len >= 2: input, hidden..., output
	Weights [][]float64 // Weights[l] is Sizes[l+1] x Sizes[l], row-major
	Biases  [][]float64 // Biases[l] has Sizes[l+1] entries
}

// NewNet creates a network with He-initialised weights drawn from rng.
func NewNet(rng *rand.Rand, sizes ...int) *Net {
	if len(sizes) < 2 {
		panic("nn: need at least input and output sizes")
	}
	n := &Net{Sizes: append([]int(nil), sizes...)}
	for l := 0; l+1 < len(sizes); l++ {
		in, out := sizes[l], sizes[l+1]
		w := make([]float64, in*out)
		std := math.Sqrt(2 / float64(in))
		for i := range w {
			w[i] = rng.NormFloat64() * std
		}
		n.Weights = append(n.Weights, w)
		n.Biases = append(n.Biases, make([]float64, out))
	}
	return n
}

// NumLayers returns the number of weight layers.
func (n *Net) NumLayers() int { return len(n.Weights) }

// InputSize returns the expected feature-vector length.
func (n *Net) InputSize() int { return n.Sizes[0] }

// OutputSize returns the number of classes.
func (n *Net) OutputSize() int { return n.Sizes[len(n.Sizes)-1] }

// Scratch holds the per-call working buffers of a forward/backward pass, so
// hot loops (classifier inference, training workers) reuse them instead of
// allocating activations per example. A Scratch belongs to one goroutine at
// a time; create one per worker with NewScratch.
type Scratch struct {
	acts   [][]float64 // acts[0] aliases the input; acts[l] has Sizes[l] entries
	deltas [][]float64 // deltas[l] has Sizes[l] entries (backprop only)
	probs  []float64   // softmax output, OutputSize entries
}

// NewScratch allocates working buffers matching the network's layer widths.
func (n *Net) NewScratch() *Scratch {
	sc := &Scratch{
		acts:   make([][]float64, len(n.Sizes)),
		deltas: make([][]float64, len(n.Sizes)),
		probs:  make([]float64, n.OutputSize()),
	}
	for l := 1; l < len(n.Sizes); l++ {
		sc.acts[l] = make([]float64, n.Sizes[l])
		sc.deltas[l] = make([]float64, n.Sizes[l])
	}
	return sc
}

// forward computes all layer activations into sc and returns the pre-softmax
// logits (owned by sc). sc.acts[0] aliases x.
func (n *Net) forward(sc *Scratch, x []float64) []float64 {
	sc.acts[0] = x
	for l := 0; l < len(n.Weights); l++ {
		in, out := n.Sizes[l], n.Sizes[l+1]
		a := sc.acts[l+1]
		w := n.Weights[l]
		prev := sc.acts[l]
		hidden := l+1 < len(n.Weights)
		for o := 0; o < out; o++ {
			sum := n.Biases[l][o]
			row := w[o*in : (o+1)*in]
			for i, v := range row {
				sum += v * prev[i]
			}
			if hidden && sum < 0 { // hidden layer: ReLU
				sum = 0
			}
			a[o] = sum
		}
	}
	return sc.acts[len(sc.acts)-1]
}

// Logits returns the pre-softmax output for input x.
func (n *Net) Logits(x []float64) []float64 {
	if len(x) != n.InputSize() {
		panic(fmt.Sprintf("nn: input size %d, want %d", len(x), n.InputSize()))
	}
	out := n.forward(n.NewScratch(), x)
	cp := make([]float64, len(out))
	copy(cp, out)
	return cp
}

// LogitsScratch computes the pre-softmax output into sc and returns the
// scratch-owned logits slice, valid until the next call with sc.
func (n *Net) LogitsScratch(sc *Scratch, x []float64) []float64 {
	if len(x) != n.InputSize() {
		panic(fmt.Sprintf("nn: input size %d, want %d", len(x), n.InputSize()))
	}
	return n.forward(sc, x)
}

// Softmax converts logits to a probability distribution in place-safe copy.
func Softmax(logits []float64) []float64 {
	return SoftmaxInto(make([]float64, len(logits)), logits)
}

// SoftmaxInto writes the probability distribution of logits into dst (which
// must have the same length) and returns dst. dst may alias logits.
func SoftmaxInto(dst, logits []float64) []float64 {
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	sum := 0.0
	for i, v := range logits {
		e := math.Exp(v - maxv)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
	return dst
}

// Predict returns the argmax class and its softmax probability.
func (n *Net) Predict(x []float64) (class int, prob float64) {
	return n.PredictScratch(n.NewScratch(), x)
}

// PredictScratch is Predict with caller-owned working buffers: it performs
// no heap allocation, making it the classifier call of the inference hot
// path (sed.Detect, batch translation).
func (n *Net) PredictScratch(sc *Scratch, x []float64) (class int, prob float64) {
	p := SoftmaxInto(sc.probs, n.LogitsScratch(sc, x))
	best := 0
	for i, v := range p {
		if v > p[best] {
			best = i
		}
	}
	return best, p[best]
}

// Sample is one labelled training example.
type Sample struct {
	X []float64
	Y int // class index
}

// TrainConfig controls Train.
type TrainConfig struct {
	Epochs    int     // passes over the data (default 30)
	BatchSize int     // minibatch size (default 32)
	LR        float64 // Adam step size (default 1e-3)
	L2        float64 // weight decay (default 0)
	Workers   int     // gradient workers (default GOMAXPROCS; results are worker-count independent)
	Verbose   io.Writer
}

func (c *TrainConfig) defaults() {
	if c.Epochs <= 0 {
		c.Epochs = 30
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LR <= 0 {
		c.LR = 1e-3
	}
}

// gradChunk is the fixed number of examples whose gradients are accumulated
// into one partial-sum buffer. The chunk layout depends only on the batch,
// never on the worker count, so the floating-point reduction tree — and
// therefore the trained weights — are bit-identical for any Workers value.
const gradChunk = 16

// gradTask is the per-chunk working state of a gradient worker.
type gradTask struct {
	gW, gB [][]float64
	sc     *Scratch
	loss   float64
}

func (n *Net) newGradTask() *gradTask {
	t := &gradTask{sc: n.NewScratch()}
	for l := range n.Weights {
		t.gW = append(t.gW, make([]float64, len(n.Weights[l])))
		t.gB = append(t.gB, make([]float64, len(n.Biases[l])))
	}
	return t
}

// Train fits the network to samples with Adam on softmax cross-entropy.
// It returns the mean training loss of the final epoch.
//
// Per-minibatch gradients are computed in parallel shards of gradChunk
// examples and reduced in fixed shard order; the result does not depend on
// cfg.Workers.
func (n *Net) Train(rng *rand.Rand, samples []Sample, cfg TrainConfig) (float64, error) {
	cfg.defaults()
	if len(samples) == 0 {
		return 0, errors.New("nn: no training samples")
	}
	for _, s := range samples {
		if len(s.X) != n.InputSize() {
			return 0, fmt.Errorf("nn: sample feature size %d, want %d", len(s.X), n.InputSize())
		}
		if s.Y < 0 || s.Y >= n.OutputSize() {
			return 0, fmt.Errorf("nn: label %d out of range [0,%d)", s.Y, n.OutputSize())
		}
	}

	// Adam state per parameter tensor.
	mW := make([][]float64, len(n.Weights))
	vW := make([][]float64, len(n.Weights))
	mB := make([][]float64, len(n.Biases))
	vB := make([][]float64, len(n.Biases))
	for l := range n.Weights {
		mW[l] = make([]float64, len(n.Weights[l]))
		vW[l] = make([]float64, len(n.Weights[l]))
		mB[l] = make([]float64, len(n.Biases[l]))
		vB[l] = make([]float64, len(n.Biases[l]))
	}
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	step := 0

	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}

	gW := make([][]float64, len(n.Weights))
	gB := make([][]float64, len(n.Biases))
	for l := range n.Weights {
		gW[l] = make([]float64, len(n.Weights[l]))
		gB[l] = make([]float64, len(n.Biases[l]))
	}

	workers := parallel.Resolve(cfg.Workers)
	maxChunks := (cfg.BatchSize + gradChunk - 1) / gradChunk
	if workers > maxChunks {
		workers = maxChunks
	}
	tasks := make([]*gradTask, maxChunks)
	for i := range tasks {
		tasks[i] = n.newGradTask()
	}

	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		totalLoss := 0.0
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch := idx[start:end]
			chunks := (len(batch) + gradChunk - 1) / gradChunk
			// Map: each chunk accumulates its examples' gradients into its
			// own buffers, in parallel.
			parallel.For(workers, chunks, func(c int) {
				t := tasks[c]
				for l := range t.gW {
					clearF(t.gW[l])
					clearF(t.gB[l])
				}
				t.loss = 0
				lo := c * gradChunk
				hi := lo + gradChunk
				if hi > len(batch) {
					hi = len(batch)
				}
				for _, si := range batch[lo:hi] {
					t.loss += n.backprop(t.sc, samples[si], t.gW, t.gB)
				}
			})
			// Reduce: fixed chunk order keeps float summation deterministic.
			for l := range gW {
				clearF(gW[l])
				clearF(gB[l])
			}
			for c := 0; c < chunks; c++ {
				t := tasks[c]
				totalLoss += t.loss
				for l := range gW {
					addF(gW[l], t.gW[l])
					addF(gB[l], t.gB[l])
				}
			}
			scale := 1 / float64(len(batch))
			step++
			bc1 := 1 - math.Pow(beta1, float64(step))
			bc2 := 1 - math.Pow(beta2, float64(step))
			for l := range n.Weights {
				adamUpdate(n.Weights[l], gW[l], mW[l], vW[l], scale, cfg.LR, cfg.L2, beta1, beta2, eps, bc1, bc2)
				adamUpdate(n.Biases[l], gB[l], mB[l], vB[l], scale, cfg.LR, 0, beta1, beta2, eps, bc1, bc2)
			}
		}
		lastLoss = totalLoss / float64(len(samples))
		if cfg.Verbose != nil {
			fmt.Fprintf(cfg.Verbose, "epoch %d: loss %.4f\n", epoch+1, lastLoss)
		}
	}
	return lastLoss, nil
}

func clearF(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

func addF(dst, src []float64) {
	for i := range dst {
		dst[i] += src[i]
	}
}

func adamUpdate(w, g, m, v []float64, scale, lr, l2, beta1, beta2, eps, bc1, bc2 float64) {
	for i := range w {
		grad := g[i]*scale + l2*w[i]
		m[i] = beta1*m[i] + (1-beta1)*grad
		v[i] = beta2*v[i] + (1-beta2)*grad*grad
		w[i] -= lr * (m[i] / bc1) / (math.Sqrt(v[i]/bc2) + eps)
	}
}

// backprop accumulates gradients for one sample and returns its loss. All
// intermediate state lives in sc, so concurrent workers each hold their own
// Scratch and share nothing but the (read-only) weights.
func (n *Net) backprop(sc *Scratch, s Sample, gW, gB [][]float64) float64 {
	logits := n.forward(sc, s.X)
	probs := SoftmaxInto(sc.probs, logits)
	loss := -math.Log(math.Max(probs[s.Y], 1e-12))

	// delta at output: softmax CE gradient.
	last := len(n.Sizes) - 1
	delta := sc.deltas[last]
	copy(delta, probs)
	delta[s.Y] -= 1

	for l := len(n.Weights) - 1; l >= 0; l-- {
		in, out := n.Sizes[l], n.Sizes[l+1]
		prev := sc.acts[l]
		w := n.Weights[l]
		for o := 0; o < out; o++ {
			d := delta[o]
			if d == 0 {
				continue
			}
			gB[l][o] += d
			row := gW[l][o*in : (o+1)*in]
			for i := 0; i < in; i++ {
				row[i] += d * prev[i]
			}
		}
		if l > 0 {
			nd := sc.deltas[l]
			for i := 0; i < in; i++ {
				nd[i] = 0
				if prev[i] <= 0 { // ReLU gate (prev is post-activation)
					continue
				}
				sum := 0.0
				for o := 0; o < out; o++ {
					sum += delta[o] * w[o*in+i]
				}
				nd[i] = sum
			}
			delta = nd
		}
	}
	return loss
}

// Accuracy returns the fraction of samples whose predicted class matches.
func (n *Net) Accuracy(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	sc := n.NewScratch()
	ok := 0
	for _, s := range samples {
		if c, _ := n.PredictScratch(sc, s.X); c == s.Y {
			ok++
		}
	}
	return float64(ok) / float64(len(samples))
}

// Save writes the network in gob format.
func (n *Net) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(n)
}

// Load reads a network previously written by Save.
func Load(r io.Reader) (*Net, error) {
	var n Net
	if err := gob.NewDecoder(r).Decode(&n); err != nil {
		return nil, fmt.Errorf("nn: load: %w", err)
	}
	if len(n.Sizes) < 2 || len(n.Weights) != len(n.Sizes)-1 {
		return nil, errors.New("nn: load: malformed network")
	}
	return &n, nil
}
