// Package nn implements the small supervised-learning substrate that stands
// in for the paper's deep models (YOLO5 for edge detection, PaddleOCR for
// text recognition): a dense multi-layer perceptron with ReLU hidden layers,
// a softmax cross-entropy head, Adam optimisation, minibatch training and
// gob serialisation.
//
// The networks here are orders of magnitude smaller than the paper's, but
// play the same role: they are trained purely on synthetic L-TD-G data and
// then asked to extrapolate to the industrial-style corpus.
package nn

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
)

// Net is a feed-forward network with ReLU hidden activations and a linear
// output layer (softmax is applied by the loss / Predict).
type Net struct {
	Sizes   []int       // layer widths, len >= 2: input, hidden..., output
	Weights [][]float64 // Weights[l] is Sizes[l+1] x Sizes[l], row-major
	Biases  [][]float64 // Biases[l] has Sizes[l+1] entries
}

// NewNet creates a network with He-initialised weights drawn from rng.
func NewNet(rng *rand.Rand, sizes ...int) *Net {
	if len(sizes) < 2 {
		panic("nn: need at least input and output sizes")
	}
	n := &Net{Sizes: append([]int(nil), sizes...)}
	for l := 0; l+1 < len(sizes); l++ {
		in, out := sizes[l], sizes[l+1]
		w := make([]float64, in*out)
		std := math.Sqrt(2 / float64(in))
		for i := range w {
			w[i] = rng.NormFloat64() * std
		}
		n.Weights = append(n.Weights, w)
		n.Biases = append(n.Biases, make([]float64, out))
	}
	return n
}

// NumLayers returns the number of weight layers.
func (n *Net) NumLayers() int { return len(n.Weights) }

// InputSize returns the expected feature-vector length.
func (n *Net) InputSize() int { return n.Sizes[0] }

// OutputSize returns the number of classes.
func (n *Net) OutputSize() int { return n.Sizes[len(n.Sizes)-1] }

// forward computes all layer activations. acts[0] is the input; the last
// entry is the pre-softmax logits.
func (n *Net) forward(x []float64) [][]float64 {
	acts := make([][]float64, len(n.Sizes))
	acts[0] = x
	for l := 0; l < len(n.Weights); l++ {
		in, out := n.Sizes[l], n.Sizes[l+1]
		a := make([]float64, out)
		w := n.Weights[l]
		for o := 0; o < out; o++ {
			sum := n.Biases[l][o]
			row := w[o*in : (o+1)*in]
			prev := acts[l]
			for i, v := range row {
				sum += v * prev[i]
			}
			if l+1 < len(n.Weights) { // hidden layer: ReLU
				if sum < 0 {
					sum = 0
				}
			}
			a[o] = sum
		}
		acts[l+1] = a
	}
	return acts
}

// Logits returns the pre-softmax output for input x.
func (n *Net) Logits(x []float64) []float64 {
	if len(x) != n.InputSize() {
		panic(fmt.Sprintf("nn: input size %d, want %d", len(x), n.InputSize()))
	}
	acts := n.forward(x)
	out := acts[len(acts)-1]
	cp := make([]float64, len(out))
	copy(cp, out)
	return cp
}

// Softmax converts logits to a probability distribution in place-safe copy.
func Softmax(logits []float64) []float64 {
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	out := make([]float64, len(logits))
	sum := 0.0
	for i, v := range logits {
		e := math.Exp(v - maxv)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Predict returns the argmax class and its softmax probability.
func (n *Net) Predict(x []float64) (class int, prob float64) {
	p := Softmax(n.Logits(x))
	best := 0
	for i, v := range p {
		if v > p[best] {
			best = i
		}
	}
	return best, p[best]
}

// Sample is one labelled training example.
type Sample struct {
	X []float64
	Y int // class index
}

// TrainConfig controls Train.
type TrainConfig struct {
	Epochs    int     // passes over the data (default 30)
	BatchSize int     // minibatch size (default 32)
	LR        float64 // Adam step size (default 1e-3)
	L2        float64 // weight decay (default 0)
	Verbose   io.Writer
}

func (c *TrainConfig) defaults() {
	if c.Epochs <= 0 {
		c.Epochs = 30
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LR <= 0 {
		c.LR = 1e-3
	}
}

// Train fits the network to samples with Adam on softmax cross-entropy.
// It returns the mean training loss of the final epoch.
func (n *Net) Train(rng *rand.Rand, samples []Sample, cfg TrainConfig) (float64, error) {
	cfg.defaults()
	if len(samples) == 0 {
		return 0, errors.New("nn: no training samples")
	}
	for _, s := range samples {
		if len(s.X) != n.InputSize() {
			return 0, fmt.Errorf("nn: sample feature size %d, want %d", len(s.X), n.InputSize())
		}
		if s.Y < 0 || s.Y >= n.OutputSize() {
			return 0, fmt.Errorf("nn: label %d out of range [0,%d)", s.Y, n.OutputSize())
		}
	}

	// Adam state per parameter tensor.
	mW := make([][]float64, len(n.Weights))
	vW := make([][]float64, len(n.Weights))
	mB := make([][]float64, len(n.Biases))
	vB := make([][]float64, len(n.Biases))
	for l := range n.Weights {
		mW[l] = make([]float64, len(n.Weights[l]))
		vW[l] = make([]float64, len(n.Weights[l]))
		mB[l] = make([]float64, len(n.Biases[l]))
		vB[l] = make([]float64, len(n.Biases[l]))
	}
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	step := 0

	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}

	gW := make([][]float64, len(n.Weights))
	gB := make([][]float64, len(n.Biases))
	for l := range n.Weights {
		gW[l] = make([]float64, len(n.Weights[l]))
		gB[l] = make([]float64, len(n.Biases[l]))
	}

	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		totalLoss := 0.0
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			for l := range gW {
				clearF(gW[l])
				clearF(gB[l])
			}
			batch := idx[start:end]
			for _, si := range batch {
				totalLoss += n.backprop(samples[si], gW, gB)
			}
			scale := 1 / float64(len(batch))
			step++
			bc1 := 1 - math.Pow(beta1, float64(step))
			bc2 := 1 - math.Pow(beta2, float64(step))
			for l := range n.Weights {
				adamUpdate(n.Weights[l], gW[l], mW[l], vW[l], scale, cfg.LR, cfg.L2, beta1, beta2, eps, bc1, bc2)
				adamUpdate(n.Biases[l], gB[l], mB[l], vB[l], scale, cfg.LR, 0, beta1, beta2, eps, bc1, bc2)
			}
		}
		lastLoss = totalLoss / float64(len(samples))
		if cfg.Verbose != nil {
			fmt.Fprintf(cfg.Verbose, "epoch %d: loss %.4f\n", epoch+1, lastLoss)
		}
	}
	return lastLoss, nil
}

func clearF(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

func adamUpdate(w, g, m, v []float64, scale, lr, l2, beta1, beta2, eps, bc1, bc2 float64) {
	for i := range w {
		grad := g[i]*scale + l2*w[i]
		m[i] = beta1*m[i] + (1-beta1)*grad
		v[i] = beta2*v[i] + (1-beta2)*grad*grad
		w[i] -= lr * (m[i] / bc1) / (math.Sqrt(v[i]/bc2) + eps)
	}
}

// backprop accumulates gradients for one sample and returns its loss.
func (n *Net) backprop(s Sample, gW, gB [][]float64) float64 {
	acts := n.forward(s.X)
	logits := acts[len(acts)-1]
	probs := Softmax(logits)
	loss := -math.Log(math.Max(probs[s.Y], 1e-12))

	// delta at output: softmax CE gradient.
	delta := make([]float64, len(probs))
	copy(delta, probs)
	delta[s.Y] -= 1

	for l := len(n.Weights) - 1; l >= 0; l-- {
		in, out := n.Sizes[l], n.Sizes[l+1]
		prev := acts[l]
		w := n.Weights[l]
		for o := 0; o < out; o++ {
			d := delta[o]
			if d == 0 {
				continue
			}
			gB[l][o] += d
			row := gW[l][o*in : (o+1)*in]
			for i := 0; i < in; i++ {
				row[i] += d * prev[i]
			}
		}
		if l > 0 {
			nd := make([]float64, in)
			for i := 0; i < in; i++ {
				if prev[i] <= 0 { // ReLU gate (prev is post-activation)
					continue
				}
				sum := 0.0
				for o := 0; o < out; o++ {
					sum += delta[o] * w[o*in+i]
				}
				nd[i] = sum
			}
			delta = nd
		}
	}
	return loss
}

// Accuracy returns the fraction of samples whose predicted class matches.
func (n *Net) Accuracy(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	ok := 0
	for _, s := range samples {
		if c, _ := n.Predict(s.X); c == s.Y {
			ok++
		}
	}
	return float64(ok) / float64(len(samples))
}

// Save writes the network in gob format.
func (n *Net) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(n)
}

// Load reads a network previously written by Save.
func Load(r io.Reader) (*Net, error) {
	var n Net
	if err := gob.NewDecoder(r).Decode(&n); err != nil {
		return nil, fmt.Errorf("nn: load: %w", err)
	}
	if len(n.Sizes) < 2 || len(n.Weights) != len(n.Sizes)-1 {
		return nil, errors.New("nn: load: malformed network")
	}
	return &n, nil
}
