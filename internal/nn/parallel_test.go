package nn

import (
	"math/rand"
	"reflect"
	"testing"
)

// trainSamples builds a small deterministic classification problem.
func trainSamples(rng *rand.Rand, n int) []Sample {
	centers := [][2]float64{{0, 0}, {3, 0}, {0, 3}}
	samples := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		c := rng.Intn(3)
		samples = append(samples, Sample{
			X: []float64{centers[c][0] + rng.NormFloat64()*0.3, centers[c][1] + rng.NormFloat64()*0.3},
			Y: c,
		})
	}
	return samples
}

// TestTrainWorkerCountInvariant pins the tentpole determinism guarantee:
// training with 1 worker and with 8 workers must produce bit-identical
// weights for the same seed.
func TestTrainWorkerCountInvariant(t *testing.T) {
	build := func(workers int) *Net {
		rng := rand.New(rand.NewSource(99))
		samples := trainSamples(rng, 130) // odd size: exercises ragged batches and chunks
		n := NewNet(rng, 2, 10, 3)
		if _, err := n.Train(rng, samples, TrainConfig{Epochs: 8, BatchSize: 48, Workers: workers}); err != nil {
			t.Fatal(err)
		}
		return n
	}
	base := build(1)
	for _, workers := range []int{2, 3, 8} {
		got := build(workers)
		if !reflect.DeepEqual(base.Weights, got.Weights) || !reflect.DeepEqual(base.Biases, got.Biases) {
			t.Fatalf("weights differ between Workers=1 and Workers=%d", workers)
		}
	}
}

// TestScratchPredictMatchesPredict checks the buffer-reusing inference path
// against the allocating one.
func TestScratchPredictMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := NewNet(rng, 6, 12, 4)
	sc := n.NewScratch()
	x := make([]float64, 6)
	for trial := 0; trial < 50; trial++ {
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		wc, wp := n.Predict(x)
		gc, gp := n.PredictScratch(sc, x)
		if wc != gc || wp != gp {
			t.Fatalf("PredictScratch (%d,%v) != Predict (%d,%v)", gc, gp, wc, wp)
		}
		a := n.Logits(x)
		b := n.LogitsScratch(sc, x)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("LogitsScratch differs from Logits")
			}
		}
	}
}

// TestPredictScratchZeroAlloc guards the inference hot path against
// allocation regressions.
func TestPredictScratchZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := NewNet(rng, 155, 48, 6)
	sc := n.NewScratch()
	x := make([]float64, 155)
	for i := range x {
		x[i] = rng.Float64()
	}
	if allocs := testing.AllocsPerRun(200, func() {
		n.PredictScratch(sc, x)
	}); allocs != 0 {
		t.Errorf("PredictScratch allocates %.1f times per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		n.LogitsScratch(sc, x)
	}); allocs != 0 {
		t.Errorf("LogitsScratch allocates %.1f times per call, want 0", allocs)
	}
}

// TestSoftmaxInto checks the in-place variant, including aliasing.
func TestSoftmaxInto(t *testing.T) {
	logits := []float64{1, 2, 3}
	want := Softmax(logits)
	got := SoftmaxInto(logits, logits) // aliased
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("aliased SoftmaxInto differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
}
