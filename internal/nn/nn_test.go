package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestNewNetShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := NewNet(rng, 4, 8, 3)
	if n.NumLayers() != 2 || n.InputSize() != 4 || n.OutputSize() != 3 {
		t.Fatalf("shape accessors wrong: %d %d %d", n.NumLayers(), n.InputSize(), n.OutputSize())
	}
	if len(n.Weights[0]) != 4*8 || len(n.Weights[1]) != 8*3 {
		t.Error("weight tensor sizes wrong")
	}
	if len(n.Biases[0]) != 8 || len(n.Biases[1]) != 3 {
		t.Error("bias sizes wrong")
	}
}

func TestNewNetPanicsOnTooFewLayers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewNet(rand.New(rand.NewSource(1)), 4)
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float64{1, 2, 3})
	sum := 0.0
	for _, v := range p {
		if v <= 0 || v >= 1 {
			t.Errorf("prob %v out of (0,1)", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("sum = %v", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Error("softmax not monotone")
	}
	// Large logits must not overflow.
	p = Softmax([]float64{1000, 1001})
	if math.IsNaN(p[0]) || math.IsNaN(p[1]) {
		t.Error("softmax overflowed")
	}
}

func TestLogitsSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	n := NewNet(rand.New(rand.NewSource(1)), 4, 2)
	n.Logits([]float64{1, 2})
}

func TestTrainXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := NewNet(rng, 2, 16, 2)
	var samples []Sample
	for i := 0; i < 200; i++ {
		a, b := rng.Intn(2), rng.Intn(2)
		x := []float64{float64(a), float64(b)}
		// jitter inputs slightly for robustness
		x[0] += rng.NormFloat64() * 0.05
		x[1] += rng.NormFloat64() * 0.05
		samples = append(samples, Sample{X: x, Y: a ^ b})
	}
	loss, err := n.Train(rng, samples, TrainConfig{Epochs: 120, BatchSize: 16, LR: 5e-3})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.2 {
		t.Errorf("final loss %v too high", loss)
	}
	if acc := n.Accuracy(samples); acc < 0.95 {
		t.Errorf("XOR accuracy = %v", acc)
	}
	// Check the four corners explicitly.
	for _, c := range []struct {
		x []float64
		y int
	}{
		{[]float64{0, 0}, 0}, {[]float64{1, 1}, 0},
		{[]float64{0, 1}, 1}, {[]float64{1, 0}, 1},
	} {
		if got, _ := n.Predict(c.x); got != c.y {
			t.Errorf("Predict(%v) = %d, want %d", c.x, got, c.y)
		}
	}
}

func TestTrainMulticlassBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	centers := [][2]float64{{0, 0}, {4, 0}, {0, 4}, {4, 4}}
	var samples []Sample
	for i := 0; i < 400; i++ {
		c := rng.Intn(4)
		samples = append(samples, Sample{
			X: []float64{centers[c][0] + rng.NormFloat64()*0.4, centers[c][1] + rng.NormFloat64()*0.4},
			Y: c,
		})
	}
	n := NewNet(rng, 2, 24, 4)
	if _, err := n.Train(rng, samples, TrainConfig{Epochs: 60, BatchSize: 32, LR: 5e-3}); err != nil {
		t.Fatal(err)
	}
	if acc := n.Accuracy(samples); acc < 0.97 {
		t.Errorf("blob accuracy = %v", acc)
	}
}

func TestTrainErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := NewNet(rng, 2, 4, 2)
	if _, err := n.Train(rng, nil, TrainConfig{}); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := n.Train(rng, []Sample{{X: []float64{1}, Y: 0}}, TrainConfig{}); err == nil {
		t.Error("wrong feature size accepted")
	}
	if _, err := n.Train(rng, []Sample{{X: []float64{1, 2}, Y: 5}}, TrainConfig{}); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestTrainWithL2AndVerbose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := NewNet(rng, 2, 8, 2)
	samples := []Sample{
		{X: []float64{0, 0}, Y: 0},
		{X: []float64{1, 1}, Y: 1},
	}
	var buf bytes.Buffer
	if _, err := n.Train(rng, samples, TrainConfig{Epochs: 3, L2: 1e-4, Verbose: &buf}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("verbose output empty")
	}
}

func TestAccuracyEmpty(t *testing.T) {
	n := NewNet(rand.New(rand.NewSource(1)), 2, 2)
	if n.Accuracy(nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := NewNet(rng, 3, 5, 2)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, -0.2, 0.8}
	a := n.Logits(x)
	b := m.Logits(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("loaded net differs")
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage accepted")
	}
	// Structurally invalid: encode a Net with mismatched layers.
	var buf bytes.Buffer
	bad := &Net{Sizes: []int{2, 3}, Weights: nil, Biases: nil}
	if err := bad.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Error("malformed net accepted")
	}
}

func TestDeterministicTraining(t *testing.T) {
	build := func() []float64 {
		rng := rand.New(rand.NewSource(123))
		n := NewNet(rng, 2, 6, 2)
		samples := []Sample{
			{X: []float64{0, 0}, Y: 0},
			{X: []float64{1, 0}, Y: 1},
			{X: []float64{0, 1}, Y: 1},
			{X: []float64{1, 1}, Y: 0},
		}
		if _, err := n.Train(rng, samples, TrainConfig{Epochs: 10, BatchSize: 2}); err != nil {
			t.Fatal(err)
		}
		return n.Logits([]float64{0.5, 0.5})
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("training not deterministic under fixed seed")
		}
	}
}

func TestGradientCheck(t *testing.T) {
	// Numerical gradient check of backprop on a tiny net.
	rng := rand.New(rand.NewSource(17))
	n := NewNet(rng, 3, 4, 2)
	s := Sample{X: []float64{0.2, -0.5, 0.9}, Y: 1}

	gW := [][]float64{make([]float64, len(n.Weights[0])), make([]float64, len(n.Weights[1]))}
	gB := [][]float64{make([]float64, len(n.Biases[0])), make([]float64, len(n.Biases[1]))}
	n.backprop(n.NewScratch(), s, gW, gB)

	loss := func() float64 {
		p := Softmax(n.Logits(s.X))
		return -math.Log(p[s.Y])
	}
	const h = 1e-6
	for l := range n.Weights {
		for i := 0; i < len(n.Weights[l]); i += 3 { // sample every 3rd param
			orig := n.Weights[l][i]
			n.Weights[l][i] = orig + h
			lp := loss()
			n.Weights[l][i] = orig - h
			lm := loss()
			n.Weights[l][i] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-gW[l][i]) > 1e-4*(1+math.Abs(num)) {
				t.Errorf("layer %d weight %d: numeric %v vs backprop %v", l, i, num, gW[l][i])
			}
		}
	}
}
