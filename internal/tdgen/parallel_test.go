package tdgen

import (
	"reflect"
	"testing"
)

// TestSeededWorkerCountInvariant pins the tentpole guarantee: a seeded
// generator produces the identical sample set for any worker count.
func TestSeededWorkerCountInvariant(t *testing.T) {
	const n = 12
	base, err := NewSeeded(DefaultConfig(G1), 42).GenerateNWorkers(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := NewSeeded(DefaultConfig(G1), 42).GenerateNWorkers(n, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: got %d samples", workers, len(got))
		}
		for i := range base {
			if base[i].Name != got[i].Name {
				t.Fatalf("workers=%d: sample %d name %q != %q", workers, i, got[i].Name, base[i].Name)
			}
			if !reflect.DeepEqual(base[i].Image.Pix, got[i].Image.Pix) {
				t.Fatalf("workers=%d: sample %d pixels differ", workers, i)
			}
			if !reflect.DeepEqual(base[i].Truth, got[i].Truth) {
				t.Fatalf("workers=%d: sample %d ground-truth SPO differs", workers, i)
			}
		}
	}
}

// TestSeededIndexIndependence checks that a sample's content depends only on
// its index, not on what was generated before it.
func TestSeededIndexIndependence(t *testing.T) {
	g1 := NewSeeded(DefaultConfig(G1), 7)
	all, err := g1.GenerateNWorkers(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NewSeeded(DefaultConfig(G1), 7).GenerateAt(3)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Name != all[3].Name || !reflect.DeepEqual(direct.Image.Pix, all[3].Image.Pix) {
		t.Error("GenerateAt(3) differs from the 4th sample of a sequential run")
	}
	// A second batch continues the index stream.
	next, err := g1.GenerateNWorkers(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	at5, err := NewSeeded(DefaultConfig(G1), 7).GenerateAt(5)
	if err != nil {
		t.Fatal(err)
	}
	if next[0].Name != at5.Name || !reflect.DeepEqual(next[0].Image.Pix, at5.Image.Pix) {
		t.Error("second batch does not continue the index stream")
	}
}

// TestGenerateAtPanicsOnSharedStream documents the seeded-only contract.
func TestGenerateAtPanicsOnSharedStream(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	g := New(DefaultConfig(G1), nil)
	g.GenerateAt(0) //nolint:errcheck // panics before returning
}
