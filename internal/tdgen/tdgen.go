// Package tdgen implements L-TD-G, the paper's synthetic labelled
// timing-diagram generator (Sec. IV).
//
// A generated TD is produced in three stages, following the paper:
//
//  1. Signal/edge selection — two stacked signals (Signal_1 rise-then-fall,
//     Signal_2 fall-then-rise), each with a randomly chosen kind, giving the
//     edge types of the four bounding boxes b11, b12, b21, b22.
//  2. Inter/intra-relation selection — one of the five supported
//     inter-relation cases ((1) b11<b21, (2) b12<b21, (3) b11<b21 ∧ b12<b22,
//     (4) b11<b22, (5) b12<b22), plus randomly annotated intra-relations
//     b_i1 < b_i2.
//  3. Constraint solving — the layout inequalities of Groups 1–3 are
//     assembled into a linear system and a concrete layout is drawn
//     uniformly from the feasible polytope with hit-and-run MCMC
//     (internal/polytope, replacing the anyHR library).
//
// The paper counts 18 layout variables; two of them are fixed by the
// equalities y_{1,1u} = y_{1,2u} and y_{2,1d} = y_{2,2d} (shared plateau
// levels), which this implementation eliminates by variable identification
// so that the sampled polytope is full-dimensional. Case 3 therefore samples
// 16 free dimensions, the single-inter-arrow cases 15.
package tdgen

import (
	"fmt"
	"math/rand"

	"tdmagic/internal/dataset"
	"tdmagic/internal/diagram"
	"tdmagic/internal/parallel"
	"tdmagic/internal/polytope"
	"tdmagic/internal/spo"
)

// Mode selects the generation regime of Sec. VI.1: G1 is the default
// two-signal mode, G2 renders one big signal per picture, and G3 uses
// simplified constraints with a special focus on ramp signals.
type Mode int

// Generation modes.
const (
	G1 Mode = iota + 1
	G2
	G3
)

// String returns the paper's group name.
func (m Mode) String() string {
	switch m {
	case G1:
		return "G1"
	case G2:
		return "G2"
	case G3:
		return "G3"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config holds the layout-ratio parameters of constraint Groups 1–3 and the
// rendering style.
type Config struct {
	Mode  Mode
	Style diagram.Style

	// Group 1 ratios: box height, bottom margin, top margin.
	RYh, RYd, RYu float64
	// Group 2 ratios: box width, left/intra/right margins, inter-signal
	// distance.
	RXw, RXl, RXm, RXr, RXi float64
	// Group 3: label clearance above an arrow and clearance below, as
	// fractions of the annotation band.
	L1, L2 float64

	// BurnIn is the number of hit-and-run warm-up steps per diagram.
	BurnIn int
}

// DefaultConfig returns the configuration used for the experiments.
func DefaultConfig(mode Mode) Config {
	c := Config{
		Mode:  mode,
		Style: diagram.DefaultStyle(),
		RYh:   0.40, RYd: 0.06, RYu: 0.06,
		RXw: 0.06, RXl: 0.04, RXm: 0.10, RXr: 0.04, RXi: 0.04,
		L1: 0.30, L2: 0.10,
		BurnIn: 64,
	}
	switch mode {
	case G2:
		// One big signal per picture.
		c.Style.AnnotFrac = 0.22
		c.RYh = 0.6
		c.RXw = 0.10
	case G3:
		// Simplified constraints, focus on ramp signals: wider boxes,
		// gentler slopes, generous margins.
		c.RXw = 0.12
		c.RXm = 0.14
		c.RYh = 0.5
	}
	return c
}

// Generator produces labelled synthetic timing diagrams.
//
// A generator built with New draws every sample from one shared random
// stream, so samples depend on generation order. A generator built with
// NewSeeded instead derives an independent child stream per sample index
// from the master seed, which makes each sample a self-contained unit of
// work: GenerateNWorkers produces the identical sample set for any worker
// count.
type Generator struct {
	cfg    Config
	rng    *rand.Rand // shared-stream mode (New)
	seed   int64      // per-sample-stream mode (NewSeeded)
	seeded bool
	n      int // serial for names / next sample index
}

// New returns a generator for the given config, drawing randomness from rng.
func New(cfg Config, rng *rand.Rand) *Generator {
	return &Generator{cfg: cfg, rng: rng}
}

// NewSeeded returns a generator whose i-th sample is drawn from its own
// random stream derived from (seed, i). Sample content then depends only on
// the seed and the sample index — not on how many samples were generated
// before it on this Generator, nor on how many workers GenerateNWorkers
// fans out over.
func NewSeeded(cfg Config, seed int64) *Generator {
	return &Generator{cfg: cfg, seed: seed, seeded: true}
}

// gen is the per-sample generation context: one random stream plus the
// config. In seeded mode each sample gets a fresh gen, so concurrent
// workers share nothing mutable.
type gen struct {
	cfg Config
	rng *rand.Rand
}

// signal-name and timing-parameter pools, mirroring common datasheet
// vocabulary.
var (
	signalNamePool = []string{
		"V_{INA}", "V_{OUTA}", "V_{INB}", "V_{OUTB}", "SI", "SO", "SCK",
		"CLK", "EN", "CS", "RST", "V_{CC}", "DATA", "STCP", "SHCP", "MR",
		"TXD", "RXD", "INH", "OUT", "IN",
	}
	delayPool = []string{
		"t_{1}", "t_{2}", "t_{3}", "t_{s}", "t_{h}", "t_{D(on)}",
		"t_{D(off)}", "t_{r}", "t_{f}", "t_{W}", "t_{su}", "t_{PLH}",
		"t_{PHL}", "t_{REC}", "t_{THL}", "t_{TLH}",
	}
	riseThresholds = []struct {
		frac float64
		text string
	}{{0.9, "90%"}, {0.8, "80%"}, {0.5, "50%"}, {0.7, "70%"}}
	fallThresholds = []struct {
		frac float64
		text string
	}{{0.1, "10%"}, {0.2, "20%"}, {0.5, "50%"}, {0.3, "30%"}}
)

// pickKind draws a signal kind with the class balance that produces the
// paper's Table I label mix (ramps dominate, doubles are rare).
func (g *gen) pickKind() diagram.SignalKind {
	switch r := g.rng.Float64(); {
	case r < 0.776:
		return diagram.Ramp
	case r < 0.934:
		return diagram.Digital
	default:
		return diagram.DoubleRamp
	}
}

// pickKindG3 focuses on ramp and double signals (Group G3).
func (g *gen) pickKindG3() diagram.SignalKind {
	if g.rng.Float64() < 0.7 {
		return diagram.Ramp
	}
	return diagram.DoubleRamp
}

// layoutVars names the sampled dimensions.
type layoutVars struct {
	x11l, x11r, x12l, x12r int
	x21l, x21r, x22l, x22r int
	y11d, y1u, y12d        int
	y21u, y2d, y22u        int
	ya                     []int // arrow rows (annotation-band fractions)
}

// Generate produces one labelled timing diagram. Layouts whose event
// columns nearly coincide are re-drawn: two events on the same vertical
// line would merge into a single annotation line, which a designer avoids.
func (g *Generator) Generate() (*dataset.Sample, error) {
	i := g.n
	g.n++
	return g.generateAt(i)
}

// GenerateAt produces the sample with index i (0-based) of a seeded
// generator's stream, independently of any other sample. It panics on a
// generator built with New, whose samples share one random stream.
func (g *Generator) GenerateAt(i int) (*dataset.Sample, error) {
	if !g.seeded {
		panic("tdgen: GenerateAt requires a NewSeeded generator")
	}
	return g.generateAt(i)
}

// generateAt builds sample i using the appropriate random stream: the
// per-index child stream in seeded mode, the shared stream otherwise.
func (g *Generator) generateAt(i int) (*dataset.Sample, error) {
	rng := g.rng
	if g.seeded {
		rng = rand.New(rand.NewSource(parallel.Seed(g.seed, int64(i))))
	}
	return (&gen{cfg: g.cfg, rng: rng}).generate(i + 1)
}

// generate builds one sample with the given name serial, retrying layouts
// whose event columns nearly coincide.
func (g *gen) generate(serial int) (*dataset.Sample, error) {
	const retries = 24
	var last *dataset.Sample
	var err error
	for attempt := 0; attempt < retries; attempt++ {
		switch g.cfg.Mode {
		case G2:
			last, err = g.generateSingle(fmt.Sprintf("g2-%05d", serial), false)
		case G3:
			if g.rng.Float64() < 0.4 {
				last, err = g.generateSingle(fmt.Sprintf("g3-%05d", serial), true)
			} else {
				last, err = g.generatePair(fmt.Sprintf("g3-%05d", serial), true)
			}
		default:
			last, err = g.generatePair(fmt.Sprintf("g1-%05d", serial), false)
		}
		if err != nil {
			return nil, err
		}
		if eventColumnsSeparated(last, 8) {
			return last, nil
		}
	}
	return last, nil
}

// eventColumnsSeparated reports whether every pair of event lines is at
// least minDX pixels apart.
func eventColumnsSeparated(s *dataset.Sample, minDX int) bool {
	for i := 0; i < len(s.VLines); i++ {
		for j := i + 1; j < len(s.VLines); j++ {
			dx := s.VLines[i].X - s.VLines[j].X
			if dx < 0 {
				dx = -dx
			}
			if dx < minDX {
				return false
			}
		}
	}
	return true
}

// GenerateN produces n labelled diagrams.
func (g *Generator) GenerateN(n int) ([]*dataset.Sample, error) {
	return g.GenerateNWorkers(n, 1)
}

// GenerateNWorkers produces n labelled diagrams, fanning the work out over
// workers goroutines (<= 0 means GOMAXPROCS). On a seeded generator the
// output is identical for any worker count, because each sample draws from
// its own index-derived random stream; a shared-stream generator (New)
// falls back to sequential generation to preserve its stream order.
func (g *Generator) GenerateNWorkers(n, workers int) ([]*dataset.Sample, error) {
	out := make([]*dataset.Sample, n)
	if !g.seeded {
		for i := 0; i < n; i++ {
			s, err := g.Generate()
			if err != nil {
				return nil, fmt.Errorf("tdgen: sample %d: %w", i, err)
			}
			out[i] = s
		}
		return out, nil
	}
	base := g.n
	g.n += n
	err := parallel.ForErr(workers, n, func(i int) error {
		s, err := g.generateAt(base + i)
		if err != nil {
			return fmt.Errorf("tdgen: sample %d: %w", base+i, err)
		}
		out[i] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// interCase describes one of the five supported inter-relation orders.
type interCase struct {
	// pairs of (signal-1 box, signal-2 box) indices (0 or 1) that are
	// related; each pair receives an inter-relation arrow.
	pairs [][2]int
}

var interCases = []interCase{
	{pairs: [][2]int{{0, 0}}},         // (1) b11 < b21
	{pairs: [][2]int{{1, 0}}},         // (2) b12 < b21
	{pairs: [][2]int{{0, 0}, {1, 1}}}, // (3) b11 < b21 and b12 < b22
	{pairs: [][2]int{{0, 1}}},         // (4) b11 < b22
	{pairs: [][2]int{{1, 1}}},         // (5) b12 < b22
}

// generatePair builds the default two-signal TD (modes G1/G3).
func (g *gen) generatePair(name string, rampFocus bool) (*dataset.Sample, error) {
	cfg := g.cfg
	caseIdx := g.rng.Intn(len(interCases))
	ic := interCases[caseIdx]
	intra1 := g.rng.Float64() < 0.5
	intra2 := g.rng.Float64() < 0.5
	if len(ic.pairs) == 0 && !intra1 && !intra2 {
		intra1 = true
	}
	nArrows := len(ic.pairs)
	nIntra := 0
	if intra1 {
		nIntra++
	}
	if intra2 {
		nIntra++
	}

	// Assemble the constraint system. Variables 0..13 as in layoutVars,
	// then one annotation-row variable per inter arrow.
	v := layoutVars{
		x11l: 0, x11r: 1, x12l: 2, x12r: 3,
		x21l: 4, x21r: 5, x22l: 6, x22r: 7,
		y11d: 8, y1u: 9, y12d: 10,
		y21u: 11, y2d: 12, y22u: 13,
	}
	dim := 14
	for i := 0; i < nArrows; i++ {
		v.ya = append(v.ya, dim)
		dim++
	}
	sys := polytope.NewSystem(dim)

	// Group 2: x-constraints for both signals (bounds, ordering, widths,
	// margins).
	addXChain := func(l1, r1, l2, r2 int) {
		sys.AddGE(map[int]float64{l1: 1}, cfg.RXl)   // 2.3(1) left margin
		sys.AddDiffGE(r1, l1, cfg.RXw)               // 2.2(1) width
		sys.AddDiffGE(l2, r1, cfg.RXm)               // 2.3(2) intra margin
		sys.AddDiffGE(r2, l2, cfg.RXw)               // 2.2(2) width
		sys.AddLE(map[int]float64{r2: 1}, 1-cfg.RXr) // 2.3(3) right margin
	}
	addXChain(v.x11l, v.x11r, v.x12l, v.x12r)
	addXChain(v.x21l, v.x21r, v.x22l, v.x22r)
	// 2.4 inter-relation distances for the selected case.
	s1r := []int{v.x11r, v.x12r}
	s2l := []int{v.x21l, v.x22l}
	for _, p := range ic.pairs {
		sys.AddDiffGE(s2l[p[1]], s1r[p[0]], cfg.RXi)
	}

	// Group 1: y-constraints. Signal 1 shares its top plateau (y1u);
	// Signal 2 shares its bottom plateau (y2d).
	sys.AddGE(map[int]float64{v.y11d: 1}, cfg.RYd)   // 1.3(1)
	sys.AddGE(map[int]float64{v.y12d: 1}, cfg.RYd)   // 1.3(2)
	sys.AddLE(map[int]float64{v.y1u: 1}, 1-cfg.RYu)  // 1.3(3)
	sys.AddDiffGE(v.y1u, v.y11d, cfg.RYh)            // 1.2(1)
	sys.AddDiffGE(v.y1u, v.y12d, cfg.RYh)            // 1.2(2)
	sys.AddLE(map[int]float64{v.y21u: 1}, 1-cfg.RYu) // 1.4(1)
	sys.AddLE(map[int]float64{v.y22u: 1}, 1-cfg.RYu) // 1.4(2)
	sys.AddGE(map[int]float64{v.y2d: 1}, cfg.RYd)    // 1.4(3)
	sys.AddDiffGE(v.y21u, v.y2d, cfg.RYh)
	sys.AddDiffGE(v.y22u, v.y2d, cfg.RYh)

	// Group 3: annotation rows of the inter-relation arrows (fractions of
	// the annotation band, 0 = top). Each needs label clearance above
	// (3.2/3.3 — l1 is a function of the text height) and clearance below.
	eps := 0.04 + 0.04*g.rng.Float64() // the sampled ε of Sec. IV
	for _, ya := range v.ya {
		sys.AddGE(map[int]float64{ya: 1}, cfg.L1)
		sys.AddLE(map[int]float64{ya: 1}, 1-cfg.L2)
	}
	if len(v.ya) == 2 {
		sys.AddDiffGE(v.ya[1], v.ya[0], cfg.L1+eps) // 3.4 overlap avoidance
	}

	sampler, err := polytope.NewSampler(sys, g.rng)
	if err != nil {
		return nil, fmt.Errorf("tdgen: constraint system: %w", err)
	}
	sampler.Thin = 4
	for i := 0; i < cfg.BurnIn; i++ {
		_ = sampler.Next()
	}
	x := sampler.Next()

	// Build the diagram from the sampled layout.
	kind1, kind2 := g.pickKind(), g.pickKind()
	if rampFocus {
		kind1, kind2 = g.pickKindG3(), g.pickKindG3()
	}
	names := g.pickNames(2)
	delays := g.pickDelays(nArrows + nIntra)

	sig1 := g.buildSignal(names[0], kind1, true,
		[4]float64{x[v.x11l], x[v.x11r], x[v.x12l], x[v.x12r]},
		[3]float64{x[v.y11d], x[v.y1u], x[v.y12d]})
	sig2 := g.buildSignal(names[1], kind2, false,
		[4]float64{x[v.x21l], x[v.x21r], x[v.x22l], x[v.x22r]},
		[3]float64{x[v.y21u], x[v.y2d], x[v.y22u]})

	d := &diagram.Diagram{
		Name:    name,
		Signals: []diagram.Signal{sig1, sig2},
		Style:   cfg.Style,
	}
	di := 0
	for k, p := range ic.pairs {
		d.Arrows = append(d.Arrows, diagram.Arrow{
			From:  diagram.EventRef{Signal: 0, Edge: p[0]},
			To:    diagram.EventRef{Signal: 1, Edge: p[1]},
			Label: delays[di],
			Y:     x[v.ya[k]],
		})
		di++
	}
	// Intra-relation arrows go above or below the inter rows (Sec. IV:
	// "above or below these two pseudo-rectangles").
	intraRows := g.intraRows(x, v, nIntra)
	ri := 0
	if intra1 {
		d.Arrows = append(d.Arrows, diagram.Arrow{
			From:  diagram.EventRef{Signal: 0, Edge: 0},
			To:    diagram.EventRef{Signal: 0, Edge: 1},
			Label: delays[di], Y: intraRows[ri],
		})
		di++
		ri++
	}
	if intra2 {
		d.Arrows = append(d.Arrows, diagram.Arrow{
			From:  diagram.EventRef{Signal: 1, Edge: 0},
			To:    diagram.EventRef{Signal: 1, Edge: 1},
			Label: delays[di], Y: intraRows[ri],
		})
		ri++
	}
	g.markEvents(d)
	g.decorate(d)
	d.Style.AnnotFrac = annotFrac(len(d.Arrows))
	return d.Render()
}

// intraRows chooses annotation rows for intra arrows that avoid the
// sampled inter rows.
func (g *gen) intraRows(x []float64, v layoutVars, n int) []float64 {
	used := make([]float64, 0, len(v.ya))
	for _, ya := range v.ya {
		used = append(used, x[ya])
	}
	var rows []float64
	candidates := []float64{0.08, 0.5, 0.92, 0.3, 0.7}
	for _, c := range candidates {
		if len(rows) == n {
			break
		}
		ok := true
		for _, u := range append(used, rows...) {
			if absF(c-u) < 0.22 {
				ok = false
				break
			}
		}
		if ok {
			rows = append(rows, c)
		}
	}
	for len(rows) < n { // fallback: stack at the bottom
		rows = append(rows, 0.95)
	}
	return rows
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// annotFrac sizes the annotation band for the number of arrow rows.
func annotFrac(nArrows int) float64 {
	f := 0.16 + 0.07*float64(nArrows)
	if f > 0.44 {
		f = 0.44
	}
	return f
}

// buildSignal converts sampled box coordinates into a diagram signal.
// riseFirst selects the rise-then-fall (Signal_1) or fall-then-rise
// (Signal_2) pattern. ys holds, for riseFirst, {y11d, y1u, y12d}; otherwise
// {y21u, y2d, y22u}.
func (g *gen) buildSignal(name string, kind diagram.SignalKind, riseFirst bool, xs [4]float64, ys [3]float64) diagram.Signal {
	s := diagram.Signal{Name: name, Kind: kind}
	mk := func(t spo.EdgeType, x0, x1, lo, hi float64) diagram.Edge {
		e := diagram.Edge{Type: t, X0: x0, X1: x1, YLow: lo, YHigh: hi}
		if t == spo.RiseRamp {
			th := riseThresholds[g.rng.Intn(len(riseThresholds))]
			e.Threshold, e.ThresholdText = th.frac, th.text
		}
		if t == spo.FallRamp {
			th := fallThresholds[g.rng.Intn(len(fallThresholds))]
			e.Threshold, e.ThresholdText = th.frac, th.text
		}
		if t == spo.Double {
			e.Threshold, e.ThresholdText = 0.5, "50%"
		}
		return e
	}
	var riseT, fallT spo.EdgeType
	switch kind {
	case diagram.Digital:
		riseT, fallT = spo.RiseStep, spo.FallStep
	case diagram.Ramp:
		riseT, fallT = spo.RiseRamp, spo.FallRamp
	default:
		riseT, fallT = spo.Double, spo.Double
	}
	if kind == diagram.DoubleRamp {
		// Bus signals keep common rails; use the first box's levels.
		lo, hi := minF(ys[0], ys[1]), maxF(ys[0], ys[1])
		if hi-lo < 0.2 {
			lo, hi = 0.15, 0.85
		}
		s.Edges = []diagram.Edge{
			mk(spo.Double, xs[0], xs[1], lo, hi),
			mk(spo.Double, xs[2], xs[3], lo, hi),
		}
		return s
	}
	if riseFirst {
		s.Edges = []diagram.Edge{
			mk(riseT, xs[0], xs[1], ys[0], ys[1]),
			mk(fallT, xs[2], xs[3], ys[2], ys[1]),
		}
	} else {
		s.Edges = []diagram.Edge{
			mk(fallT, xs[0], xs[1], ys[1], ys[0]),
			mk(riseT, xs[2], xs[3], ys[1], ys[2]),
		}
	}
	return s
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// markEvents sets HasEvent on every edge referenced by an arrow.
func (g *gen) markEvents(d *diagram.Diagram) {
	for _, a := range d.Arrows {
		for _, r := range []diagram.EventRef{a.From, a.To} {
			d.Signals[r.Signal].Edges[r.Edge].HasEvent = true
		}
	}
}

// decorate adds the optional features of Sec. IV ("Other Features") — axes
// and boundary values — and varies the drawing style so the trained models
// see the stroke widths, text sizes and canvas shapes found in real
// datasheets ("maximise the diversity of their shapes").
func (g *gen) decorate(d *diagram.Diagram) {
	d.Style.ShowAxes = g.rng.Float64() < 0.5
	if g.rng.Float64() < 0.4 {
		si := g.rng.Intn(len(d.Signals))
		d.Signals[si].BoundHigh = "V_{CC}"
		d.Signals[si].BoundLow = "GND"
	}
	d.Style.Stroke = 2 + g.rng.Intn(3)
	d.Style.Width = 820 + g.rng.Intn(180)
	d.Style.Height = 500 + g.rng.Intn(120)
	if g.rng.Float64() < 0.25 {
		d.Style.TextScale = 3
		d.Style.LeftMargin = 150
	}
	if g.rng.Float64() < 0.2 {
		d.Style.LineStroke = 2
	}
}

// generateSingle builds a one-big-signal TD (mode G2, and part of G3).
func (g *gen) generateSingle(name string, rampFocus bool) (*dataset.Sample, error) {
	cfg := g.cfg
	sys := polytope.NewSystem(7)
	const (
		xl0, xr0, xl1, xr1 = 0, 1, 2, 3
		yd0, yu, yd1       = 4, 5, 6
	)
	sys.AddGE(map[int]float64{xl0: 1}, cfg.RXl)
	sys.AddDiffGE(xr0, xl0, cfg.RXw)
	sys.AddDiffGE(xl1, xr0, cfg.RXm)
	sys.AddDiffGE(xr1, xl1, cfg.RXw)
	sys.AddLE(map[int]float64{xr1: 1}, 1-cfg.RXr)
	sys.AddGE(map[int]float64{yd0: 1}, cfg.RYd)
	sys.AddGE(map[int]float64{yd1: 1}, cfg.RYd)
	sys.AddLE(map[int]float64{yu: 1}, 1-cfg.RYu)
	sys.AddDiffGE(yu, yd0, cfg.RYh)
	sys.AddDiffGE(yu, yd1, cfg.RYh)

	sampler, err := polytope.NewSampler(sys, g.rng)
	if err != nil {
		return nil, fmt.Errorf("tdgen: single-signal system: %w", err)
	}
	sampler.Thin = 4
	for i := 0; i < cfg.BurnIn; i++ {
		_ = sampler.Next()
	}
	x := sampler.Next()

	kind := g.pickKind()
	if rampFocus {
		kind = g.pickKindG3()
	}
	sig := g.buildSignal(g.pickNames(1)[0], kind, true,
		[4]float64{x[xl0], x[xr0], x[xl1], x[xr1]},
		[3]float64{x[yd0], x[yu], x[yd1]})
	d := &diagram.Diagram{
		Name:    name,
		Signals: []diagram.Signal{sig},
		Arrows: []diagram.Arrow{{
			From:  diagram.EventRef{Signal: 0, Edge: 0},
			To:    diagram.EventRef{Signal: 0, Edge: 1},
			Label: g.pickDelays(1)[0],
			Y:     0.4,
		}},
		Style: cfg.Style,
	}
	g.markEvents(d)
	g.decorate(d)
	d.Style.AnnotFrac = annotFrac(1)
	return d.Render()
}

// pickNames draws n distinct signal names.
func (g *gen) pickNames(n int) []string {
	perm := g.rng.Perm(len(signalNamePool))
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = signalNamePool[perm[i]]
	}
	return out
}

// pickDelays draws n distinct timing-parameter labels.
func (g *gen) pickDelays(n int) []string {
	perm := g.rng.Perm(len(delayPool))
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = delayPool[perm[i]]
	}
	return out
}
