package tdgen

import (
	"math/rand"
	"testing"

	"tdmagic/internal/dataset"
	"tdmagic/internal/spo"
)

func TestModeString(t *testing.T) {
	if G1.String() != "G1" || G2.String() != "G2" || G3.String() != "G3" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode empty")
	}
}

func TestGenerateG1Basics(t *testing.T) {
	g := New(DefaultConfig(G1), rand.New(rand.NewSource(1)))
	for i := 0; i < 10; i++ {
		s, err := g.Generate()
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if s.Image == nil || s.Image.W == 0 {
			t.Fatal("no image")
		}
		if len(s.Edges) != 4 {
			t.Errorf("sample %d: %d edge boxes, want 4 (two signals, two edges)", i, len(s.Edges))
		}
		if len(s.Arrows) == 0 {
			t.Errorf("sample %d: no arrows", i)
		}
		if s.Truth == nil || len(s.Truth.Constraints) != len(s.Arrows) {
			t.Errorf("sample %d: SPO constraints %d != arrows %d", i, len(s.Truth.Constraints), len(s.Arrows))
		}
		if err := s.Truth.Validate(); err != nil {
			t.Errorf("sample %d: invalid ground-truth SPO: %v", i, err)
		}
	}
}

func TestGenerateG2SingleSignal(t *testing.T) {
	g := New(DefaultConfig(G2), rand.New(rand.NewSource(2)))
	for i := 0; i < 5; i++ {
		s, err := g.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Edges) != 2 {
			t.Errorf("G2 sample has %d edges, want 2", len(s.Edges))
		}
		sigs := map[int]bool{}
		for _, e := range s.Edges {
			sigs[e.Signal] = true
		}
		if len(sigs) != 1 {
			t.Error("G2 sample has more than one signal")
		}
	}
}

func TestGenerateG3RampFocus(t *testing.T) {
	g := New(DefaultConfig(G3), rand.New(rand.NewSource(3)))
	counts := map[spo.EdgeType]int{}
	for i := 0; i < 30; i++ {
		s, err := g.Generate()
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range s.Edges {
			counts[e.Type]++
		}
	}
	steps := counts[spo.RiseStep] + counts[spo.FallStep]
	ramps := counts[spo.RiseRamp] + counts[spo.FallRamp] + counts[spo.Double]
	if steps > 0 {
		t.Errorf("G3 produced %d step edges; should focus on ramps", steps)
	}
	if ramps == 0 {
		t.Error("G3 produced no ramp edges")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	mk := func() *dataset.Sample {
		g := New(DefaultConfig(G1), rand.New(rand.NewSource(42)))
		s, err := g.Generate()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	if a.Name != b.Name || len(a.Edges) != len(b.Edges) {
		t.Fatal("structure differs under same seed")
	}
	for i := range a.Image.Pix {
		if a.Image.Pix[i] != b.Image.Pix[i] {
			t.Fatal("pixels differ under same seed")
		}
	}
}

func TestGenerateNCount(t *testing.T) {
	g := New(DefaultConfig(G1), rand.New(rand.NewSource(5)))
	samples, err := g.GenerateN(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 7 {
		t.Fatalf("got %d samples", len(samples))
	}
	names := map[string]bool{}
	for _, s := range samples {
		if names[s.Name] {
			t.Errorf("duplicate name %s", s.Name)
		}
		names[s.Name] = true
	}
}

func TestEdgeTypeDistribution(t *testing.T) {
	// The G1 kind weights should make ramps dominate, doubles rare
	// (paper Table I: 388/388/79/79/66).
	g := New(DefaultConfig(G1), rand.New(rand.NewSource(7)))
	samples, err := g.GenerateN(60)
	if err != nil {
		t.Fatal(err)
	}
	counts := dataset.CountEdgeTypes(samples)
	total := 0
	for _, c := range counts {
		total += c
	}
	ramps := float64(counts[spo.RiseRamp]+counts[spo.FallRamp]) / float64(total)
	if ramps < 0.5 {
		t.Errorf("ramp fraction %v, want > 0.5", ramps)
	}
	if counts[spo.Double] == 0 {
		t.Error("no double edges in 60 samples")
	}
	// Paired types appear in equal numbers per signal construction.
	if counts[spo.RiseRamp] != counts[spo.FallRamp] {
		t.Errorf("rise/fall ramp imbalance: %d vs %d", counts[spo.RiseRamp], counts[spo.FallRamp])
	}
}

func TestInterCaseCoverage(t *testing.T) {
	// All five inter-relation cases should occur across many samples:
	// identified by the SPO constraint pattern between the two signals.
	g := New(DefaultConfig(G1), rand.New(rand.NewSource(11)))
	seenCounts := map[int]bool{}
	for i := 0; i < 50; i++ {
		s, err := g.Generate()
		if err != nil {
			t.Fatal(err)
		}
		inter := 0
		for _, c := range s.Truth.Constraints {
			if s.Truth.Nodes[c.Src].Signal != s.Truth.Nodes[c.Dst].Signal {
				inter++
			}
		}
		seenCounts[inter] = true
	}
	if !seenCounts[1] || !seenCounts[2] {
		t.Errorf("inter-arrow counts seen: %v, want both 1 and 2", seenCounts)
	}
}

func TestArrowsLeftToRight(t *testing.T) {
	g := New(DefaultConfig(G1), rand.New(rand.NewSource(13)))
	for i := 0; i < 20; i++ {
		s, err := g.Generate()
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range s.Arrows {
			if a.X0 >= a.X1 {
				t.Errorf("arrow not left-to-right: %+v", a)
			}
		}
		// Constraint sources precede destinations in global node order
		// (nodes are sorted left to right).
		for _, c := range s.Truth.Constraints {
			if c.Src >= c.Dst {
				t.Errorf("constraint not ordered: %+v", c)
			}
		}
	}
}

func TestDistinctLabelsPerDiagram(t *testing.T) {
	g := New(DefaultConfig(G1), rand.New(rand.NewSource(17)))
	for i := 0; i < 15; i++ {
		s, err := g.Generate()
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, a := range s.Arrows {
			if seen[a.Label] {
				t.Errorf("duplicate delay label %q in one diagram", a.Label)
			}
			seen[a.Label] = true
		}
	}
}

func TestTextRolesPresent(t *testing.T) {
	g := New(DefaultConfig(G1), rand.New(rand.NewSource(19)))
	samples, err := g.GenerateN(10)
	if err != nil {
		t.Fatal(err)
	}
	roles := map[dataset.TextRole]int{}
	for _, s := range samples {
		for _, tb := range s.Texts {
			roles[tb.Role]++
		}
	}
	if roles[dataset.RoleSignalName] == 0 || roles[dataset.RoleTimeConstraint] == 0 {
		t.Errorf("roles missing: %v", roles)
	}
}

func TestVLinesMatchEvents(t *testing.T) {
	g := New(DefaultConfig(G1), rand.New(rand.NewSource(23)))
	for i := 0; i < 10; i++ {
		s, err := g.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if len(s.VLines) != len(s.Truth.Nodes) {
			t.Errorf("vlines %d != SPO nodes %d", len(s.VLines), len(s.Truth.Nodes))
		}
	}
}
