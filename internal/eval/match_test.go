package eval

import (
	"math/rand"
	"testing"

	"tdmagic/internal/dataset"
	"tdmagic/internal/geom"
)

// TestMatchPermutationInvariance shuffles detections and ground truth in
// every matcher and asserts tp/fp/fn never move. The scenarios deliberately
// contain contested candidates (two detections admissible for the same
// ground truth and vice versa), which is exactly where the old
// first-unused-candidate greedy depended on input order.
func TestMatchPermutationInvariance(t *testing.T) {
	vDets := []geom.VSeg{
		{X: 10, Y0: 0, Y1: 40},
		{X: 13, Y0: 0, Y1: 40},
		{X: 14, Y0: 5, Y1: 35},
		{X: 60, Y0: 0, Y1: 40},
		{X: 200, Y0: 0, Y1: 10},
	}
	vGts := []geom.VSeg{
		{X: 10, Y0: 0, Y1: 40},
		{X: 14, Y0: 0, Y1: 40},
		{X: 62, Y0: 0, Y1: 40},
		{X: 120, Y0: 0, Y1: 40},
	}
	hDets := []geom.HSeg{
		{Y: 20, X0: 0, X1: 100},
		{Y: 22, X0: 0, X1: 100},
		{Y: 23, X0: 10, X1: 90},
		{Y: 80, X0: 0, X1: 100},
	}
	hGts := []geom.HSeg{
		{Y: 20, X0: 0, X1: 100},
		{Y: 24, X0: 0, X1: 100},
		{Y: 83, X0: 0, X1: 100},
	}
	aDets := []dataset.Arrow{
		{Y: 10, X0: 5, X1: 50},
		{Y: 12, X0: 6, X1: 52},
		{Y: 13, X0: 8, X1: 54},
		{Y: 90, X0: 5, X1: 50},
	}
	aGts := []dataset.Arrow{
		{Y: 11, X0: 5, X1: 50},
		{Y: 14, X0: 9, X1: 55},
		{Y: 60, X0: 5, X1: 50},
	}

	type counts struct{ tp, fp, fn int }
	baseV := counts{}
	baseV.tp, baseV.fp, baseV.fn = matchVLines(vDets, vGts)
	baseH := counts{}
	baseH.tp, baseH.fp, baseH.fn = matchHLines(hDets, hGts)
	baseA := counts{}
	baseA.tp, baseA.fp, baseA.fn = matchArrows(aDets, aGts)

	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		v := append([]geom.VSeg(nil), vDets...)
		vg := append([]geom.VSeg(nil), vGts...)
		rng.Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
		rng.Shuffle(len(vg), func(i, j int) { vg[i], vg[j] = vg[j], vg[i] })
		var got counts
		got.tp, got.fp, got.fn = matchVLines(v, vg)
		if got != baseV {
			t.Fatalf("trial %d: matchVLines = %+v under permutation, want %+v", trial, got, baseV)
		}

		h := append([]geom.HSeg(nil), hDets...)
		hg := append([]geom.HSeg(nil), hGts...)
		rng.Shuffle(len(h), func(i, j int) { h[i], h[j] = h[j], h[i] })
		rng.Shuffle(len(hg), func(i, j int) { hg[i], hg[j] = hg[j], hg[i] })
		got.tp, got.fp, got.fn = matchHLines(h, hg)
		if got != baseH {
			t.Fatalf("trial %d: matchHLines = %+v under permutation, want %+v", trial, got, baseH)
		}

		a := append([]dataset.Arrow(nil), aDets...)
		ag := append([]dataset.Arrow(nil), aGts...)
		rng.Shuffle(len(a), func(i, j int) { a[i], a[j] = a[j], a[i] })
		rng.Shuffle(len(ag), func(i, j int) { ag[i], ag[j] = ag[j], ag[i] })
		got.tp, got.fp, got.fn = matchArrows(a, ag)
		if got != baseA {
			t.Fatalf("trial %d: matchArrows = %+v under permutation, want %+v", trial, got, baseA)
		}
	}
}

// TestMatchNearestWins pins the nearest-candidate semantics: a detection
// binds to the closest admissible ground truth, so a contested pair
// resolves to two matches where the first-unused greedy could strand one.
func TestMatchNearestWins(t *testing.T) {
	// det A (X=10) is admissible for both gts; det B (X=14) only for the
	// one at X=14. Binding A to the nearer gt (X=10) leaves X=14 for B:
	// 2 tp regardless of the order the slices arrive in.
	dets := []geom.VSeg{
		{X: 10, Y0: 0, Y1: 40},
		{X: 14, Y0: 0, Y1: 40},
	}
	gts := []geom.VSeg{
		{X: 14, Y0: 0, Y1: 40}, // listed first: the old greedy bound A here
		{X: 10, Y0: 0, Y1: 40},
	}
	tp, fp, fn := matchVLines(dets, gts)
	if tp != 2 || fp != 0 || fn != 0 {
		t.Errorf("matchVLines = %d/%d/%d, want 2/0/0", tp, fp, fn)
	}

	hDets := []geom.HSeg{{Y: 10, X0: 0, X1: 100}, {Y: 14, X0: 0, X1: 100}}
	hGts := []geom.HSeg{{Y: 14, X0: 0, X1: 100}, {Y: 10, X0: 0, X1: 100}}
	tp, fp, fn = matchHLines(hDets, hGts)
	if tp != 2 || fp != 0 || fn != 0 {
		t.Errorf("matchHLines = %d/%d/%d, want 2/0/0", tp, fp, fn)
	}

	aDets := []dataset.Arrow{{Y: 10, X0: 0, X1: 50}, {Y: 14, X0: 0, X1: 50}}
	aGts := []dataset.Arrow{{Y: 14, X0: 0, X1: 50}, {Y: 10, X0: 0, X1: 50}}
	tp, fp, fn = matchArrows(aDets, aGts)
	if tp != 2 || fp != 0 || fn != 0 {
		t.Errorf("matchArrows = %d/%d/%d, want 2/0/0", tp, fp, fn)
	}
}

// TestMatchShortSegmentThreshold pins the half-overlap threshold on short
// segments: overlap >= g.Len()/2 truncates to 0 for a length-1 ground
// truth, so a detection with zero overlap (merely within the 4-px axis
// gate) used to count as a true positive.
func TestMatchShortSegmentThreshold(t *testing.T) {
	// Length-1 ground truth at (X=10, Y=5); detection in a nearby column
	// but spanning disjoint rows: no overlap, must not match.
	gts := []geom.VSeg{{X: 10, Y0: 5, Y1: 5}}
	dets := []geom.VSeg{{X: 12, Y0: 10, Y1: 20}}
	if tp, fp, fn := matchVLines(dets, gts); tp != 0 || fp != 1 || fn != 1 {
		t.Errorf("zero-overlap short segment: %d/%d/%d, want 0/1/1", tp, fp, fn)
	}
	// Covering the single row does match.
	dets = []geom.VSeg{{X: 12, Y0: 0, Y1: 20}}
	if tp, fp, fn := matchVLines(dets, gts); tp != 1 || fp != 0 || fn != 0 {
		t.Errorf("covered short segment: %d/%d/%d, want 1/0/0", tp, fp, fn)
	}

	hGts := []geom.HSeg{{Y: 5, X0: 10, X1: 10}}
	hDets := []geom.HSeg{{Y: 7, X0: 20, X1: 40}}
	if tp, fp, fn := matchHLines(hDets, hGts); tp != 0 || fp != 1 || fn != 1 {
		t.Errorf("zero-overlap short H segment: %d/%d/%d, want 0/1/1", tp, fp, fn)
	}

	// Odd length: 2*overlap >= len rounds the threshold up, not down. A
	// length-5 ground truth needs overlap >= 3; overlap 2 must miss.
	gts = []geom.VSeg{{X: 10, Y0: 0, Y1: 4}}
	dets = []geom.VSeg{{X: 10, Y0: 3, Y1: 10}}
	if tp, _, _ := matchVLines(dets, gts); tp != 0 {
		t.Errorf("overlap 2 of length 5 matched; want miss (threshold rounds up)")
	}
	dets = []geom.VSeg{{X: 10, Y0: 2, Y1: 10}}
	if tp, _, _ := matchVLines(dets, gts); tp != 1 {
		t.Errorf("overlap 3 of length 5 missed; want match")
	}
}
