package eval

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"tdmagic/internal/batch"
	"tdmagic/internal/core"
	"tdmagic/internal/dataset"
	"tdmagic/internal/detect"
	"tdmagic/internal/geom"
	"tdmagic/internal/imgproc"
	"tdmagic/internal/lad"
	"tdmagic/internal/store"
)

// Corpus is a streaming view of a labelled sample set: N samples,
// materialised one at a time by At. The executor-backed table runners pull
// samples through it lazily, so an on-disk corpus is never resident in
// full — at most O(workers) samples are loaded at once.
type Corpus struct {
	N  int
	At func(i int) (*dataset.Sample, error)
}

// SliceCorpus wraps an in-memory sample list.
func SliceCorpus(samples []*dataset.Sample) Corpus {
	return Corpus{N: len(samples), At: func(i int) (*dataset.Sample, error) { return samples[i], nil }}
}

// DirCorpus enumerates a directory of <name>.png / <name>.json sample
// pairs (dataset.Save layout) without loading any of them; samples stream
// in sorted-name order as the batch engine asks for them.
func DirCorpus(dir string) (Corpus, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return Corpus{}, fmt.Errorf("eval: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".png") {
			names = append(names, strings.TrimSuffix(e.Name(), ".png"))
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return Corpus{}, fmt.Errorf("eval: no samples in %s", dir)
	}
	return Corpus{
		N:  len(names),
		At: func(i int) (*dataset.Sample, error) { return dataset.Load(dir, names[i]) },
	}, nil
}

// RunOpts configures the executor-backed evaluation runners.
type RunOpts struct {
	// Workers fans translation out (<= 0 means GOMAXPROCS).
	Workers int
	// Timeout is the optional per-picture deadline.
	Timeout time.Duration
	// Store, when non-nil, is a persistent result cache keyed on the
	// pipeline's ConfigHash: a re-run of the same evaluation recomputes
	// only what the store does not already hold.
	Store *store.Store
}

// sampleHold parks each in-flight sample between its Load (on an executor
// worker) and its ordered emit, where scoring consumes and releases it.
// The executor's admission window bounds its size by the worker count.
type sampleHold struct {
	mu sync.Mutex
	m  map[int]*dataset.Sample
}

func newSampleHold() *sampleHold { return &sampleHold{m: make(map[int]*dataset.Sample)} }

func (h *sampleHold) put(i int, s *dataset.Sample) {
	h.mu.Lock()
	h.m[i] = s
	h.mu.Unlock()
}

func (h *sampleHold) pop(i int) *dataset.Sample {
	h.mu.Lock()
	s := h.m[i]
	delete(h.m, i)
	h.mu.Unlock()
	return s
}

// source adapts the corpus to a batch source, parking each loaded sample
// in hold for the emit-side scorer.
func (c Corpus) source(hold *sampleHold) batch.Source {
	return batch.Func(c.N, func(i int) batch.Item {
		return batch.Item{
			Name: fmt.Sprintf("sample-%05d", i),
			Load: func() (*imgproc.Gray, error) {
				s, err := c.At(i)
				if err != nil {
					return nil, err
				}
				hold.put(i, s)
				return s.Image, nil
			},
		}
	})
}

// batchOptions translates RunOpts for the executor; scoring consumers need
// the perception report, so store artifacts are persisted with it.
func (o RunOpts) batchOptions(pipe *core.Pipeline, persistReport bool) batch.Options {
	opts := batch.Options{Workers: o.Workers, Timeout: o.Timeout, PersistReport: persistReport}
	if o.Store != nil {
		opts.Store = o.Store
		opts.Config = pipe.ConfigHash()
	}
	return opts
}

// OverallRun is Overall on a streaming corpus: translation fans out over
// the batch engine (cache-aware when a store is attached) while scoring
// accumulates at the ordered emit, so the metrics are bit-identical to the
// sequential path for any worker count.
func OverallRun(pipe *core.Pipeline, c Corpus, opts RunOpts) (*OverallResult, error) {
	res := &OverallResult{Total: c.N}
	var partials []float64
	hold := newSampleHold()
	_, err := batch.Run(context.Background(), pipe, c.source(hold), opts.batchOptions(pipe, false),
		func(r batch.Result) error {
			s := hold.pop(r.Index)
			if s == nil {
				// Load failed before parking the sample; surface the error
				// as this item's outcome under its positional name.
				s = &dataset.Sample{Name: r.Name}
			}
			out := SampleOutcome{Name: s.Name}
			if r.Err != nil {
				out.Err = r.Err
				partials = append(partials, 0)
				res.PerSample = append(res.PerSample, out)
				return nil
			}
			out.Got = r.SPO
			out.Template = r.SPO.TemplateEqual(s.Truth)
			out.Total = r.SPO.TotalEqual(s.Truth)
			out.Recall = r.SPO.ConstraintRecall(s.Truth)
			if out.Template {
				res.TemplateLevel++
			} else {
				partials = append(partials, out.Recall)
			}
			if out.Total {
				res.TotallyOK++
			}
			res.PerSample = append(res.PerSample, out)
			return nil
		})
	if err != nil {
		return nil, err
	}
	if len(partials) > 0 {
		sum := 0.0
		for _, v := range partials {
			sum += v
		}
		res.PartialRecall = sum / float64(len(partials))
	}
	sort.Slice(res.PerSample, func(i, j int) bool { return res.PerSample[i].Name < res.PerSample[j].Name })
	return res, nil
}

// TableIIRun is TableII on a streaming corpus. Detections and tallies
// accumulate in input order at the emit callback, so the matching — which
// is already input-order independent — sees exactly the sequence the
// sequential path builds.
func TableIIRun(pipe *core.Pipeline, c Corpus, opts RunOpts) (*TableIIResult, error) {
	var dets []detect.Detection
	var gts []detect.GroundTruth
	type tally struct{ tp, fp, fn int }
	var vT, hT, aT tally
	hold := newSampleHold()

	_, err := batch.Run(context.Background(), pipe, c.source(hold), opts.batchOptions(pipe, true),
		func(r batch.Result) error {
			s := hold.pop(r.Index)
			if s == nil {
				return fmt.Errorf("eval: sample %d failed to load: %w", r.Index, r.Err)
			}
			i := r.Index
			var outV []geom.VSeg
			var outH []geom.HSeg
			var outA []dataset.Arrow
			if r.Err == nil && r.Rep != nil && r.Rep.SEI != nil {
				outV, outH, outA = r.Rep.SEI.VLines, r.Rep.SEI.HLines, r.Rep.SEI.Arrows
			}
			if r.Rep != nil {
				for _, d := range r.Rep.Edges {
					dets = append(dets, detect.Detection{Box: d.Box, Class: int(d.Type), Score: d.Score, Image: i})
				}
			}
			for _, g := range s.Edges {
				gts = append(gts, detect.GroundTruth{Box: g.Box, Class: int(g.Type), Image: i})
			}
			tp, fp, fn := matchVLines(outV, s.VLines)
			vT.tp += tp
			vT.fp += fp
			vT.fn += fn
			tp, fp, fn = matchHLines(outH, s.HLines)
			hT.tp += tp
			hT.fp += fp
			hT.fn += fn
			tp, fp, fn = matchArrows(outA, s.Arrows)
			aT.tp += tp
			aT.fp += fp
			aT.fn += fn
			return nil
		})
	if err != nil {
		return nil, err
	}

	res := &TableIIResult{}
	for _, et := range edgeClassOrder {
		var d []detect.Detection
		var g []detect.GroundTruth
		for _, x := range dets {
			if x.Class == int(et) {
				d = append(d, x)
			}
		}
		for _, x := range gts {
			if x.Class == int(et) {
				g = append(g, x)
			}
		}
		m := detect.Match(d, g, 0.5)
		p, r := m.PR()
		res.Rows = append(res.Rows, TableIIRow{Name: et.String(), Number: len(g), P: p, R: r})
	}
	pr := func(t tally) (float64, float64) {
		p, r := 1.0, 1.0
		if t.tp+t.fp > 0 {
			p = float64(t.tp) / float64(t.tp+t.fp)
		}
		if t.tp+t.fn > 0 {
			r = float64(t.tp) / float64(t.tp+t.fn)
		}
		return p, r
	}
	p, r := pr(vT)
	res.Rows = append(res.Rows, TableIIRow{Name: "V-line", Number: vT.tp + vT.fn, P: p, R: r})
	p, r = pr(hT)
	res.Rows = append(res.Rows, TableIIRow{Name: "H-line", Number: hT.tp + hT.fn, P: p, R: r})
	p, r = pr(aT)
	res.Rows = append(res.Rows, TableIIRow{Name: "arrow", Number: aT.tp + aT.fn, P: p, R: r})
	return res, nil
}

// TableIIIRun is TableIII on a streaming corpus: pure OCR scoring, one
// sample resident at a time.
func TableIIIRun(pipe *core.Pipeline, c Corpus) (*OCRValResult, error) {
	correct := map[dataset.TextRole]int{}
	total := map[dataset.TextRole]int{}
	for i := 0; i < c.N; i++ {
		s, err := c.At(i)
		if err != nil {
			return nil, fmt.Errorf("eval: sample %d: %w", i, err)
		}
		bw := imgproc.Threshold(s.Image, imgproc.OtsuThreshold(s.Image))
		lines := lad.DetectBinary(bw, pipe.LADCfg)
		results := pipe.OCR.ReadAll(bw, lines, pipe.OCRCfg)
		for _, gt := range s.Texts {
			total[gt.Role]++
			for _, r := range results {
				if r.Box.IoU(gt.Box) >= 0.3 && r.Text == gt.Text {
					correct[gt.Role]++
					break
				}
			}
		}
	}
	res := &OCRValResult{Accuracy: map[dataset.TextRole]float64{}, Counts: total}
	for role, n := range total {
		if n > 0 {
			res.Accuracy[role] = float64(correct[role]) / float64(n)
		}
	}
	return res, nil
}
