package eval

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

func sweepTestOptions() SweepOptions {
	return SweepOptions{
		Seed:       1,
		Severities: []int{2, 5},
		OpNames:    []string{"saltpepper", "crop"},
		Timeout:    time.Minute,
	}
}

func TestRobustnessSweepDeterministic(t *testing.T) {
	pipe, val := setup(t)
	val = val[:4]
	a, err := RobustnessSweep(pipe, val, nil, sweepTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RobustnessSweep(pipe, val, nil, sweepTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two sweeps with the same seed differ:\n%+v\n%+v", a, b)
	}
	var ja, jb bytes.Buffer
	if err := a.WriteJSON(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Fatal("sweep JSON is not byte-identical across runs")
	}
}

// TestSweepCleanMatchesDirectPath pins the acceptance criterion that the
// severity-0 baseline equals the existing clean evaluation: the same
// pictures translated through the plain Translate path must yield the
// same template/total fractions the sweep's Clean cell reports.
func TestSweepCleanMatchesDirectPath(t *testing.T) {
	pipe, val := setup(t)
	val = val[:4]
	res, err := RobustnessSweep(pipe, val, nil, sweepTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	ds := res.Datasets[0]
	var tmpl, total int
	for _, s := range val {
		got, _, err := pipe.Translate(s.Image)
		if err != nil {
			continue
		}
		if got.TemplateEqual(s.Truth) {
			tmpl++
		}
		if got.TotalEqual(s.Truth) {
			total++
		}
	}
	n := float64(len(val))
	if ds.Clean.Template != float64(tmpl)/n || ds.Clean.Total != float64(total)/n {
		t.Errorf("clean cell (template %.3f total %.3f) != direct path (%.3f %.3f)",
			ds.Clean.Template, ds.Clean.Total, float64(tmpl)/n, float64(total)/n)
	}
	if ds.Clean.Errors != 0 {
		t.Errorf("clean baseline reported %d errors", ds.Clean.Errors)
	}
}

func TestSweepGridShape(t *testing.T) {
	pipe, val := setup(t)
	val = val[:2]
	opts := sweepTestOptions()
	res, err := RobustnessSweep(pipe, val, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) != 1 {
		t.Fatalf("datasets = %d, want 1 (no corpus passed)", len(res.Datasets))
	}
	ds := res.Datasets[0]
	wantCells := len(opts.OpNames) * len(opts.Severities)
	if len(ds.Cells) != wantCells {
		t.Errorf("cells = %d, want %d", len(ds.Cells), wantCells)
	}
	if len(ds.Summary) != len(opts.OpNames) {
		t.Errorf("summaries = %d, want %d", len(ds.Summary), len(opts.OpNames))
	}
	for _, c := range ds.Cells {
		if c.N != len(val) {
			t.Errorf("cell %s/%d evaluated %d pictures, want %d", c.Op, c.Severity, c.N, len(val))
		}
	}
}

func TestSweepRejectsUnknownOp(t *testing.T) {
	pipe, val := setup(t)
	opts := sweepTestOptions()
	opts.OpNames = []string{"nonsense"}
	if _, err := RobustnessSweep(pipe, val[:1], nil, opts); err == nil {
		t.Fatal("unknown operator accepted")
	}
}
