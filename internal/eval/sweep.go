package eval

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"tdmagic/internal/batch"
	"tdmagic/internal/core"
	"tdmagic/internal/corrupt"
	"tdmagic/internal/dataset"
	"tdmagic/internal/imgproc"
)

// SweepOptions configures the corruption-robustness sweep.
type SweepOptions struct {
	// Seed drives every corruption operator; the whole sweep is a pure
	// function of (pipeline, samples, options), so two runs with the
	// same seed produce byte-identical JSON.
	Seed int64
	// Severities are the degradation levels per operator (default 1–5).
	Severities []int
	// OpNames selects operators from the corrupt registry (default all).
	OpNames []string
	// Workers fans each cell's batch translation out (<= 0 GOMAXPROCS).
	Workers int
	// Timeout is the per-picture deadline inside a cell; pathological
	// corrupted pictures surface as structured per-item errors instead
	// of stalling the sweep. Zero selects a generous default.
	Timeout time.Duration
}

// DefaultSweepOptions returns the configuration used by tdeval.
func DefaultSweepOptions() SweepOptions {
	return SweepOptions{Seed: 1, Timeout: 30 * time.Second}
}

// SweepCell is one (operator, severity) grid point on one dataset.
type SweepCell struct {
	Op       string
	Severity int
	N        int // pictures evaluated
	// EdgeRecall is the fraction of ground-truth edges recovered
	// (IoU >= 0.5, type match); TextAcc the fraction of ground-truth
	// texts read exactly (IoU >= 0.3). Template and Total are the
	// fractions of structurally / totally correct SPOs.
	EdgeRecall float64
	TextAcc    float64
	Template   float64
	Total      float64
	// Errors counts pictures whose translation failed outright
	// (deadline, panic, degenerate refusal under Strict); Diags the
	// structured diagnostics accumulated across the cell's reports.
	Errors int
	Diags  int
}

// OpSummary condenses one operator's damage on a dataset, ImageNet-C
// style: mean accuracy across severities and the drop against clean.
type OpSummary struct {
	Op           string
	MeanTemplate float64
	TemplateDrop float64 // clean Template minus MeanTemplate
	MeanEdgeR    float64
	EdgeRDrop    float64
}

// SweepDataset is the full grid over one picture set.
type SweepDataset struct {
	Name    string
	Clean   SweepCell // severity-0 baseline, identical to the clean path
	Cells   []SweepCell
	Summary []OpSummary
}

// SweepResult is the complete robustness sweep.
type SweepResult struct {
	Seed     int64
	Datasets []SweepDataset
}

// sweepOps resolves the selected operators.
func sweepOps(opts SweepOptions) ([]corrupt.Op, error) {
	if len(opts.OpNames) == 0 {
		return corrupt.Ops(), nil
	}
	ops := make([]corrupt.Op, 0, len(opts.OpNames))
	for _, name := range opts.OpNames {
		op, ok := corrupt.ByName(name)
		if !ok {
			return nil, fmt.Errorf("eval: unknown corruption operator %q", name)
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// cellSeed derives the deterministic per-picture corruption seed.
func cellSeed(seed int64, opIdx, severity, item int) int64 {
	return seed*1_000_003 + int64(opIdx)*101_159 + int64(severity)*10_007 + int64(item)
}

// RobustnessSweep runs the corruption-type × severity grid over both
// picture sets (either may be nil) and returns the full result. The
// severity-0 baseline translates the untouched pictures, so its metrics
// are bit-identical to the clean evaluation path.
func RobustnessSweep(pipe *core.Pipeline, synth, corpus []*dataset.Sample, opts SweepOptions) (*SweepResult, error) {
	if opts.Timeout == 0 {
		opts.Timeout = DefaultSweepOptions().Timeout
	}
	if len(opts.Severities) == 0 {
		opts.Severities = []int{1, 2, 3, 4, 5}
	}
	ops, err := sweepOps(opts)
	if err != nil {
		return nil, err
	}
	res := &SweepResult{Seed: opts.Seed}
	for _, set := range []struct {
		name    string
		samples []*dataset.Sample
	}{{"synthetic", synth}, {"industrial", corpus}} {
		if len(set.samples) == 0 {
			continue
		}
		ds := SweepDataset{Name: set.name}
		ds.Clean = sweepCell(pipe, set.samples, corrupt.Op{Name: "none"}, 0, 0, opts)
		for opIdx, op := range ops {
			var sum OpSummary
			sum.Op = op.Name
			for _, sev := range opts.Severities {
				cell := sweepCell(pipe, set.samples, op, sev, opIdx, opts)
				ds.Cells = append(ds.Cells, cell)
				sum.MeanTemplate += cell.Template
				sum.MeanEdgeR += cell.EdgeRecall
			}
			n := float64(len(opts.Severities))
			sum.MeanTemplate /= n
			sum.MeanEdgeR /= n
			sum.TemplateDrop = ds.Clean.Template - sum.MeanTemplate
			sum.EdgeRDrop = ds.Clean.EdgeRecall - sum.MeanEdgeR
			ds.Summary = append(ds.Summary, sum)
		}
		res.Datasets = append(res.Datasets, ds)
	}
	return res, nil
}

// sweepCell runs one (op, severity) grid point through the streaming
// batch executor: each picture is corrupted lazily on a worker when its
// turn comes and released right after scoring, so a cell holds O(workers)
// corrupted copies instead of the full severity set. Corruption seeds
// derive from (seed, op, severity, item), so the grid is bit-identical to
// the historical materialise-then-translate path for any worker count.
func sweepCell(pipe *core.Pipeline, samples []*dataset.Sample, op corrupt.Op, sev, opIdx int, opts SweepOptions) SweepCell {
	cell := SweepCell{Op: op.Name, Severity: sev, N: len(samples)}
	src := batch.Func(len(samples), func(i int) batch.Item {
		s := samples[i]
		return batch.Item{
			Name: s.Name,
			Load: func() (*imgproc.Gray, error) {
				if sev == 0 {
					return s.Image, nil // untouched: bit-identical to the clean path
				}
				return op.Fn(s.Image, sev, cellSeed(opts.Seed, opIdx, sev, i)), nil
			},
		}
	})

	var tmpl, total int
	var edgesFound, edgesAll, textsOK, textsAll int
	// The source cannot fail and the scorer never aborts, so Run's error
	// is nil by construction.
	_, _ = batch.Run(context.Background(), pipe, src,
		batch.Options{Workers: opts.Workers, Timeout: opts.Timeout},
		func(r batch.Result) error {
			s := samples[r.Index]
			var dx, dy int
			if sev > 0 && op.Offset != nil {
				dx, dy = op.Offset(sev, s.Image.W, s.Image.H)
			}
			if r.Rep != nil {
				cell.Diags += len(r.Rep.Diags)
				for _, gt := range s.Edges {
					gtBox := gt.Box.Translate(dx, dy)
					for _, d := range r.Rep.Edges {
						if d.Box.IoU(gtBox) >= 0.5 && d.Type == gt.Type {
							edgesFound++
							break
						}
					}
				}
				for _, gt := range s.Texts {
					gtBox := gt.Box.Translate(dx, dy)
					for _, t := range r.Rep.Texts {
						if t.Box.IoU(gtBox) >= 0.3 && t.Text == gt.Text {
							textsOK++
							break
						}
					}
				}
			}
			edgesAll += len(s.Edges)
			textsAll += len(s.Texts)
			if r.Err != nil {
				cell.Errors++
				return nil
			}
			if r.SPO.TemplateEqual(s.Truth) {
				tmpl++
			}
			if r.SPO.TotalEqual(s.Truth) {
				total++
			}
			return nil
		})
	if cell.N > 0 {
		cell.Template = float64(tmpl) / float64(cell.N)
		cell.Total = float64(total) / float64(cell.N)
	}
	if edgesAll > 0 {
		cell.EdgeRecall = float64(edgesFound) / float64(edgesAll)
	}
	if textsAll > 0 {
		cell.TextAcc = float64(textsOK) / float64(textsAll)
	}
	return cell
}

// WriteJSON emits the sweep as deterministic, indented JSON (BENCH_03
// format): no timestamps, no map iteration — two identical runs produce
// identical bytes.
func (r *SweepResult) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Print writes the sweep as tables, one per dataset.
func (r *SweepResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Robustness sweep (corruption type x severity; extension beyond the paper)\n")
	for _, ds := range r.Datasets {
		fmt.Fprintf(w, "\n[%s] %d pictures\n", ds.Name, ds.Clean.N)
		fmt.Fprintf(w, "%-12s %4s %8s %8s %10s %8s %7s %7s\n",
			"op", "sev", "edge-R", "text", "template", "total", "errs", "diags")
		printCell := func(c SweepCell) {
			fmt.Fprintf(w, "%-12s %4d %8.3f %8.3f %10.3f %8.3f %7d %7d\n",
				c.Op, c.Severity, c.EdgeRecall, c.TextAcc, c.Template, c.Total, c.Errors, c.Diags)
		}
		printCell(ds.Clean)
		for _, c := range ds.Cells {
			printCell(c)
		}
		fmt.Fprintf(w, "corruption-error summary (mean over severities, drop vs clean):\n")
		for _, s := range ds.Summary {
			fmt.Fprintf(w, "  %-12s template %5.3f (drop %+5.3f)  edge-R %5.3f (drop %+5.3f)\n",
				s.Op, s.MeanTemplate, -s.TemplateDrop, s.MeanEdgeR, -s.EdgeRDrop)
		}
	}
}
