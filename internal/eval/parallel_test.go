package eval

import (
	"reflect"
	"testing"

	"tdmagic/internal/imgproc"
)

// smallOpts is a fast training mix for the determinism regressions.
func smallOpts(workers int) Options {
	opts := DefaultOptions()
	opts.TrainG1, opts.TrainG2, opts.TrainG3 = 10, 4, 4
	opts.Validation = 4
	opts.Workers = workers
	return opts
}

// TestGenTrainingSetWorkerCountInvariant pins the tentpole guarantee at the
// eval layer: the synthetic mix is identical for any worker count.
func TestGenTrainingSetWorkerCountInvariant(t *testing.T) {
	base, err := GenTrainingSet(smallOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := GenTrainingSet(smallOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != len(got) {
		t.Fatalf("sample counts differ: %d vs %d", len(base), len(got))
	}
	for i := range base {
		if base[i].Name != got[i].Name {
			t.Fatalf("sample %d name %q != %q", i, got[i].Name, base[i].Name)
		}
		if !reflect.DeepEqual(base[i].Image.Pix, got[i].Image.Pix) {
			t.Fatalf("sample %d pixels differ between worker counts", i)
		}
	}
}

// TestTrainPipelineWorkerCountInvariant trains the full pipeline twice and
// requires bit-identical SED weights: generation, featurisation and gradient
// reduction must all be worker-count invariant end to end.
func TestTrainPipelineWorkerCountInvariant(t *testing.T) {
	base, err := TrainPipeline(smallOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := TrainPipeline(smallOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.SED.Net.Weights, got.SED.Net.Weights) {
		t.Error("SED weights differ between workers=1 and workers=8")
	}
	if !reflect.DeepEqual(base.SED.Net.Biases, got.SED.Net.Biases) {
		t.Error("SED biases differ between workers=1 and workers=8")
	}
	// The sequentially trained OCR templates see the same samples, so they
	// must agree too.
	if !reflect.DeepEqual(base.OCR.Templates, got.OCR.Templates) {
		t.Error("OCR templates differ between worker counts")
	}
	// And the trained pipelines must translate validation pictures to the
	// same SPOs regardless of TranslateAll's worker count.
	val, err := GenValidationSet(smallOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	imgs := make([]*imgproc.Gray, len(val))
	for i, s := range val {
		imgs[i] = s.Image
	}
	seq := base.TranslateAll(imgs, 1)
	par := got.TranslateAll(imgs, 8)
	for i := range seq {
		if (seq[i].Err == nil) != (par[i].Err == nil) {
			t.Fatalf("%s: error mismatch %v vs %v", val[i].Name, seq[i].Err, par[i].Err)
		}
		if seq[i].Err == nil && !seq[i].SPO.TotalEqual(par[i].SPO) {
			t.Errorf("%s: TranslateAll SPO differs between workers=1 and workers=8", val[i].Name)
		}
	}
}
