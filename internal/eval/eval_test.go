package eval

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"tdmagic/internal/core"
	"tdmagic/internal/dataset"
)

// Small, shared pipeline so the suite trains once.
var (
	testOnce sync.Once
	testPipe *core.Pipeline
	testVal  []*dataset.Sample
	testErr  error
)

func testOptions() Options {
	opts := DefaultOptions()
	opts.TrainG1, opts.TrainG2, opts.TrainG3 = 24, 10, 8
	opts.Validation = 8
	return opts
}

func setup(t *testing.T) (*core.Pipeline, []*dataset.Sample) {
	t.Helper()
	testOnce.Do(func() {
		opts := testOptions()
		testPipe, testErr = TrainPipeline(opts)
		if testErr != nil {
			return
		}
		testVal, testErr = GenValidationSet(opts)
	})
	if testErr != nil {
		t.Fatal(testErr)
	}
	return testPipe, testVal
}

func TestGenTrainingSetMix(t *testing.T) {
	opts := testOptions()
	train, err := GenTrainingSet(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(train) != 24+10+8 {
		t.Fatalf("training set size %d", len(train))
	}
	modes := map[byte]int{}
	for _, s := range train {
		modes[s.Name[1]]++ // g1-/g2-/g3- prefix
	}
	if modes['1'] != 24 || modes['2'] != 10 || modes['3'] != 8 {
		t.Errorf("mode mix = %v", modes)
	}
}

func TestNameLexiconCopy(t *testing.T) {
	a := NameLexicon()
	a[0] = "MUTATED"
	if NameLexicon()[0] == "MUTATED" {
		t.Error("NameLexicon exposes internal slice")
	}
}

func TestTableIShape(t *testing.T) {
	pipe, val := setup(t)
	res := TableI(pipe, val)
	if len(res.Rows) != 6 { // all + 5 classes
		t.Fatalf("rows = %d", len(res.Rows))
	}
	all := res.Rows[0]
	if all.Class != -1 || all.Labels == 0 {
		t.Errorf("aggregate row = %+v", all)
	}
	if all.P < 0.9 || all.R < 0.9 {
		t.Errorf("synthetic validation P=%.3f R=%.3f, want both >= 0.9", all.P, all.R)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	out := buf.String()
	for _, want := range []string{"TABLE I", "riseRamp", "double", "mAP@.5:.95"} {
		if !strings.Contains(out, want) {
			t.Errorf("printout missing %q", want)
		}
	}
}

func TestOCRSyntheticHigh(t *testing.T) {
	pipe, val := setup(t)
	res := OCRSynthetic(pipe, val)
	for role, acc := range res.Accuracy {
		if acc < 0.8 {
			t.Errorf("synthetic OCR accuracy for %v = %.3f, want >= 0.8", role, acc)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf, "title")
	if !strings.Contains(buf.String(), "Signal Name") {
		t.Error("printout missing role")
	}
}

func TestCorpusStatsMatchPaper(t *testing.T) {
	res, corpus, err := CorpusStats(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != 30 || res.Stats.Signals != 59 {
		t.Errorf("corpus stats: %d TDs, %d signals", len(corpus), res.Stats.Signals)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "signals per TD") {
		t.Error("stats printout wrong")
	}
}

func TestTableIIAndOverall(t *testing.T) {
	pipe, _ := setup(t)
	_, corpus, err := CorpusStats(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	t2 := TableII(pipe, corpus)
	if len(t2.Rows) != 8 { // 5 edges + V-line + H-line + arrow
		t.Fatalf("Table II rows = %d", len(t2.Rows))
	}
	names := map[string]bool{}
	for _, r := range t2.Rows {
		names[r.Name] = true
		if r.P < 0 || r.P > 1 || r.R < 0 || r.R > 1 {
			t.Errorf("row %s out of range: %+v", r.Name, r)
		}
	}
	for _, want := range []string{"riseRamp", "V-line", "H-line", "arrow"} {
		if !names[want] {
			t.Errorf("Table II missing row %s", want)
		}
	}
	var buf bytes.Buffer
	t2.Print(&buf)
	if !strings.Contains(buf.String(), "TABLE II") {
		t.Error("Table II printout wrong")
	}

	overall := Overall(pipe, corpus)
	if overall.Total != 30 {
		t.Fatalf("overall total = %d", overall.Total)
	}
	if overall.TotallyOK > overall.TemplateLevel {
		t.Error("totally correct exceeds template-level")
	}
	// With the small test-scale training the rates are below the headline
	// run, but structure extraction must still work on a majority.
	if overall.TemplateLevel < 12 {
		t.Errorf("template-level = %d/30, want >= 12 even at test scale", overall.TemplateLevel)
	}
	buf.Reset()
	overall.Print(&buf, true)
	out := buf.String()
	if !strings.Contains(out, "template-level") || !strings.Contains(out, "ind-01") {
		t.Error("overall printout wrong")
	}
}

func TestTableIIIRoles(t *testing.T) {
	pipe, _ := setup(t)
	_, corpus, err := CorpusStats(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	res := TableIII(pipe, corpus)
	if res.Counts[dataset.RoleSignalName] != 59 {
		t.Errorf("signal-name count = %d, want 59", res.Counts[dataset.RoleSignalName])
	}
	for role, acc := range res.Accuracy {
		if acc < 0.5 {
			t.Errorf("extrapolation OCR %v = %.3f suspiciously low", role, acc)
		}
	}
}

func TestMatchHelpers(t *testing.T) {
	// matchArrows tolerances.
	det := []dataset.Arrow{{Y: 10, X0: 5, X1: 50}}
	gt := []dataset.Arrow{{Y: 12, X0: 7, X1: 48}}
	tp, fp, fn := matchArrows(det, gt)
	if tp != 1 || fp != 0 || fn != 0 {
		t.Errorf("matchArrows = %d/%d/%d", tp, fp, fn)
	}
	tp, fp, fn = matchArrows(det, []dataset.Arrow{{Y: 30, X0: 7, X1: 48}})
	if tp != 0 || fp != 1 || fn != 1 {
		t.Errorf("matchArrows far = %d/%d/%d", tp, fp, fn)
	}
}

func TestOverlap1D(t *testing.T) {
	if overlap1D(0, 10, 5, 20) != 6 {
		t.Error("overlap wrong")
	}
	if overlap1D(0, 4, 5, 9) != 0 {
		t.Error("disjoint overlap nonzero")
	}
}

func TestIndent(t *testing.T) {
	if got := indent("a\nb\n", "  "); got != "  a\n  b\n" {
		t.Errorf("indent = %q", got)
	}
	if got := indent("a", "."); got != ".a\n" {
		t.Errorf("indent no-newline = %q", got)
	}
}

func TestNoiseRobustness(t *testing.T) {
	pipe, _ := setup(t)
	res, err := NoiseRobustness(pipe, 500, 6, []int{0, 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	clean, noisy := res.Points[0], res.Points[1]
	if clean.EdgeRecall < 0.8 {
		t.Errorf("clean edge recall = %.3f", clean.EdgeRecall)
	}
	if noisy.EdgeRecall > clean.EdgeRecall+1e-9 {
		t.Errorf("noise should not improve recall: %.3f vs %.3f", noisy.EdgeRecall, clean.EdgeRecall)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Noise robustness") {
		t.Error("printout wrong")
	}
}

func TestScaleRobustness(t *testing.T) {
	pipe, _ := setup(t)
	_, corpus, err := CorpusStats(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	res := ScaleRobustness(pipe, corpus[:8], []float64{1.0, 0.7})
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Points[0].TemplateLevel < res.Points[1].TemplateLevel {
		t.Logf("note: downscaling unexpectedly improved template level: %+v", res.Points)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Resolution robustness") {
		t.Error("printout wrong")
	}
}
