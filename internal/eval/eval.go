// Package eval implements the paper's experimental evaluation (Sec. VI):
// training-set preparation, the synthetic-validation experiments (Table I
// and the OCR validation), the extrapolation experiments on the industrial
// corpus (Tables II and III), and the overall-performance measurement
// (template-level / totally-correct SPO extraction). Each experiment
// returns a typed result and can print itself in the paper's table format.
package eval

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"tdmagic/internal/core"
	"tdmagic/internal/dataset"
	"tdmagic/internal/detect"
	"tdmagic/internal/geom"
	"tdmagic/internal/imgproc"
	"tdmagic/internal/industrial"
	"tdmagic/internal/lad"
	"tdmagic/internal/spo"
	"tdmagic/internal/tdgen"
)

// Options configures an evaluation run. The paper trains on 8000/4000/3000
// pictures; the defaults here scale that mix down (same 8:4:3 ratio) so a
// full run finishes in seconds. Raising the counts approaches the paper's
// regime.
type Options struct {
	Seed       int64
	TrainG1    int
	TrainG2    int
	TrainG3    int
	Validation int // held-out synthetic pictures for Table I / OCR val
	CorpusSeed int64
	// Lexicon enables the SEI signal-name dictionary.
	Lexicon bool
	// Workers fans sample generation and training over this many
	// goroutines (<= 0 means GOMAXPROCS). Results are bit-identical for
	// any worker count: every sample draws from its own index-derived
	// rng stream and gradients reduce in a fixed order.
	Workers int
}

// DefaultOptions returns the configuration used by cmd/tdeval and the
// benchmarks.
func DefaultOptions() Options {
	return Options{
		Seed:       1,
		TrainG1:    64,
		TrainG2:    32,
		TrainG3:    24,
		Validation: 40,
		CorpusSeed: 1,
		Lexicon:    true,
	}
}

// nameLexicon is the "prepared database for common signal names" of the
// paper, shared by the evaluation and the CLI.
var nameLexicon = []string{
	"V_{INA}", "V_{OUTA}", "V_{INB}", "V_{OUTB}", "SI", "SO", "SCK", "CLK",
	"EN", "CS", "RST", "RESET", "V_{CC}", "V_{IO}", "DATA", "STCP", "SHCP",
	"MR", "TXD", "RXD", "INH", "OUT", "IN", "Q_{7S}", "V_{BAT}", "WAKE",
	"NRES", "D_{IN}", "D_{OUT}",
}

// NameLexicon returns a copy of the built-in signal-name dictionary.
func NameLexicon() []string { return append([]string(nil), nameLexicon...) }

// valueLexicon covers the common signal-value annotation styles (the
// paper's "empirical study on the style of annotating signal values").
var valueLexicon = []string{
	"10%", "20%", "30%", "40%", "50%", "60%", "70%", "80%", "90%",
	"1V", "2V", "5V", "GND", "V_{CC}",
}

// ValueLexicon returns a copy of the built-in signal-value dictionary.
func ValueLexicon() []string { return append([]string(nil), valueLexicon...) }

// GenTrainingSet produces the G1+G2+G3 synthetic mix.
func GenTrainingSet(opts Options) ([]*dataset.Sample, error) {
	var out []*dataset.Sample
	for _, part := range []struct {
		mode tdgen.Mode
		n    int
	}{{tdgen.G1, opts.TrainG1}, {tdgen.G2, opts.TrainG2}, {tdgen.G3, opts.TrainG3}} {
		if part.n == 0 {
			continue
		}
		g := tdgen.NewSeeded(tdgen.DefaultConfig(part.mode), opts.Seed+int64(part.mode))
		samples, err := g.GenerateNWorkers(part.n, opts.Workers)
		if err != nil {
			return nil, err
		}
		out = append(out, samples...)
	}
	return out, nil
}

// GenValidationSet produces held-out synthetic pictures (G1 mode, disjoint
// seed stream).
func GenValidationSet(opts Options) ([]*dataset.Sample, error) {
	g := tdgen.NewSeeded(tdgen.DefaultConfig(tdgen.G1), opts.Seed+1000)
	return g.GenerateNWorkers(opts.Validation, opts.Workers)
}

// TrainPipeline trains the full pipeline on the synthetic mix.
func TrainPipeline(opts Options) (*core.Pipeline, error) {
	train, err := GenTrainingSet(opts)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultTrainConfig()
	if opts.Lexicon {
		cfg.NameLexicon = nameLexicon
		cfg.ValueLexicon = valueLexicon
	}
	cfg.Workers = opts.Workers
	return core.Train(rand.New(rand.NewSource(opts.Seed)), train, cfg)
}

// edgeClassNames maps detection class ids (= spo.EdgeType) to Table I row
// names, in the paper's order.
var edgeClassOrder = []spo.EdgeType{spo.RiseRamp, spo.FallRamp, spo.RiseStep, spo.FallStep, spo.Double}

// TableIResult holds experiment E1.
type TableIResult struct {
	Rows []detect.ClassReport
}

// TableI runs the edge-detection validation experiment on synthetic data
// (paper Table I).
func TableI(pipe *core.Pipeline, val []*dataset.Sample) *TableIResult {
	var dets []detect.Detection
	var gts []detect.GroundTruth
	for i, s := range val {
		lines := lad.Detect(s.Image, pipe.LADCfg)
		for _, d := range pipe.SED.Detect(s.Image, lines) {
			dets = append(dets, detect.Detection{Box: d.Box, Class: int(d.Type), Score: d.Score, Image: i})
		}
		for _, g := range s.Edges {
			gts = append(gts, detect.GroundTruth{Box: g.Box, Class: int(g.Type), Image: i})
		}
	}
	classes := make([]int, len(edgeClassOrder))
	for i, et := range edgeClassOrder {
		classes[i] = int(et)
	}
	return &TableIResult{Rows: detect.Report(dets, gts, classes)}
}

// Print writes the result in the paper's Table I format.
func (r *TableIResult) Print(w io.Writer) {
	fmt.Fprintf(w, "TABLE I: Validation Accuracy of Edge Detection.\n")
	fmt.Fprintf(w, "%-10s %7s %8s %8s %8s %12s\n", "Class", "Labels", "P", "R", "mAP@.5", "mAP@.5:.95")
	for _, row := range r.Rows {
		name := "all"
		if row.Class >= 0 {
			name = spo.EdgeType(row.Class).String()
		}
		fmt.Fprintf(w, "%-10s %7d %8.4f %8.4f %8.3f %12.3f\n",
			name, row.Labels, row.P, row.R, row.MAP50, row.MAP5095)
	}
}

// OCRValResult holds experiment E2: OCR accuracy on held-out synthetic
// pictures, split by text role.
type OCRValResult struct {
	Accuracy map[dataset.TextRole]float64
	Counts   map[dataset.TextRole]int
}

// OCRSynthetic measures exact-string OCR accuracy on synthetic validation
// pictures (the paper reports 1.0 for both PaddleOCR tasks).
func OCRSynthetic(pipe *core.Pipeline, val []*dataset.Sample) *OCRValResult {
	return ocrAccuracy(pipe, val)
}

// ocrAccuracy scores exact-match text recognition against ground truth.
func ocrAccuracy(pipe *core.Pipeline, samples []*dataset.Sample) *OCRValResult {
	correct := map[dataset.TextRole]int{}
	total := map[dataset.TextRole]int{}
	for _, s := range samples {
		bw := imgproc.Threshold(s.Image, imgproc.OtsuThreshold(s.Image))
		lines := lad.DetectBinary(bw, pipe.LADCfg)
		results := pipe.OCR.ReadAll(bw, lines, pipe.OCRCfg)
		for _, gt := range s.Texts {
			total[gt.Role]++
			for _, r := range results {
				if r.Box.IoU(gt.Box) >= 0.3 && r.Text == gt.Text {
					correct[gt.Role]++
					break
				}
			}
		}
	}
	res := &OCRValResult{Accuracy: map[dataset.TextRole]float64{}, Counts: total}
	for role, n := range total {
		if n > 0 {
			res.Accuracy[role] = float64(correct[role]) / float64(n)
		}
	}
	return res
}

// Print writes the OCR result as a Table III style row set.
func (r *OCRValResult) Print(w io.Writer, title string) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-18s %8s %8s\n", "Metrics", "Count", "Accuracy")
	roles := []dataset.TextRole{dataset.RoleSignalName, dataset.RoleSignalValue, dataset.RoleTimeConstraint}
	for _, role := range roles {
		fmt.Fprintf(w, "%-18s %8d %8.3f\n", role, r.Counts[role], r.Accuracy[role])
	}
}

// StatsResult holds experiment E3: corpus basic statistics.
type StatsResult struct {
	Stats industrial.Stats
}

// CorpusStats generates the extrapolation corpus and tallies Sec. VI.1's
// statistics.
func CorpusStats(opts Options) (*StatsResult, []*dataset.Sample, error) {
	corpus, err := industrial.Corpus(opts.CorpusSeed)
	if err != nil {
		return nil, nil, err
	}
	return &StatsResult{Stats: industrial.ComputeStats(corpus)}, corpus, nil
}

// Print writes the statistics the way Sec. VI.1 reports them.
func (r *StatsResult) Print(w io.Writer) {
	st := r.Stats
	fmt.Fprintf(w, "Extrapolation corpus basic statistics (Sec. VI.1)\n")
	fmt.Fprintf(w, "TDs: %d (size %.0f±%.0f x %.0f±%.0f)\n", st.TDs, st.MeanW, st.StdW, st.MeanH, st.StdH)
	fmt.Fprintf(w, "signals per TD: ")
	for n := 1; n <= 3; n++ {
		fmt.Fprintf(w, "%d:%d (%.1f%%) ", n, st.SignalHist[n], 100*float64(st.SignalHist[n])/float64(st.TDs))
	}
	fmt.Fprintf(w, "\nsignals: %d; edges per signal: ", st.Signals)
	for n := 1; n <= 4; n++ {
		fmt.Fprintf(w, "%d:%d (%.1f%%) ", n, st.EdgeHist[n], 100*float64(st.EdgeHist[n])/float64(st.Signals))
	}
	fmt.Fprintf(w, "\ntiming constraints: %d\n", st.Constraints)
}

// TableIIRow is one class row of Table II.
type TableIIRow struct {
	Name   string
	Number int
	P, R   float64
}

// TableIIResult holds experiment E4.
type TableIIResult struct {
	Rows []TableIIRow
}

// TableII runs the object-detection extrapolation experiment: the trained
// pipeline's edges, V-lines, H-lines and arrows scored against the
// industrial corpus ground truth. It is a compatibility wrapper over the
// streaming TableIIRun, whose scoring accumulates at the ordered emit and
// is therefore bit-identical to the historical sequential loop.
func TableII(pipe *core.Pipeline, corpus []*dataset.Sample) *TableIIResult {
	// The in-memory corpus can neither fail to load nor abort the run, so
	// the runner's error path is unreachable here.
	res, err := TableIIRun(pipe, SliceCorpus(corpus), RunOpts{})
	if err != nil {
		panic(err)
	}
	return res
}

// Print writes Table II in the paper's format.
func (r *TableIIResult) Print(w io.Writer) {
	fmt.Fprintf(w, "TABLE II: Object Detection Accuracy in Extrapolation.\n")
	fmt.Fprintf(w, "%-10s %7s %8s %8s\n", "Metrics", "number", "P", "R")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %7d %8.3f %8.3f\n", row.Name, row.Number, row.P, row.R)
	}
}

// matchCand is one admissible detection/ground-truth pairing, ranked for
// the order-independent greedy assignment in assignNearest. Cost is the
// primary rank (smaller is closer); overlap breaks cost ties (larger is
// better); dKey/gKey are the pair's full geometry, so the final sort order
// depends only on coordinates, never on input order.
type matchCand struct {
	cost    int
	overlap int
	dKey    [3]int
	gKey    [3]int
	d, g    int
}

// assignNearest performs a globally ranked greedy one-to-one assignment:
// candidate pairs are sorted nearest-first (with purely geometric
// tie-breaking) and consumed in that order, each binding one unused
// detection to one unused ground truth. Because the ranking ignores slice
// positions, tp/fp/fn are invariant under any permutation of the
// detections and the ground truth.
func assignNearest(nDets, nGts int, cands []matchCand) (tp, fp, fn int) {
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.cost != b.cost {
			return a.cost < b.cost
		}
		if a.overlap != b.overlap {
			return a.overlap > b.overlap
		}
		if a.dKey != b.dKey {
			return lessKey(a.dKey, b.dKey)
		}
		return lessKey(a.gKey, b.gKey)
	})
	usedD := make([]bool, nDets)
	usedG := make([]bool, nGts)
	for _, c := range cands {
		if usedD[c.d] || usedG[c.g] {
			continue
		}
		usedD[c.d], usedG[c.g] = true, true
		tp++
	}
	return tp, nDets - tp, nGts - tp
}

func lessKey(a, b [3]int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// segSpanMatch reports whether a detection within axis distance dist of a
// ground-truth segment of length gLen covers at least half of it. The
// half-length threshold is computed without integer division: requiring
// overlap >= gLen/2 would truncate to 0 for a length-1 ground truth and
// admit an adjacent, zero-overlap detection.
func segSpanMatch(dist, overlap, gLen int) bool {
	return dist <= 4 && 2*overlap >= gLen
}

// matchVLines matches detected event lines to ground truth by column
// proximity and span overlap, binding each detection to the nearest unused
// candidate (by column distance, then overlap).
func matchVLines(dets, gts []geom.VSeg) (tp, fp, fn int) {
	var cands []matchCand
	for di, d := range dets {
		for gi, g := range gts {
			dist := geom.Abs(d.X - g.X)
			ov := overlap1D(d.Y0, d.Y1, g.Y0, g.Y1)
			if !segSpanMatch(dist, ov, g.Len()) {
				continue
			}
			cands = append(cands, matchCand{
				cost: dist, overlap: ov,
				dKey: [3]int{d.X, d.Y0, d.Y1},
				gKey: [3]int{g.X, g.Y0, g.Y1},
				d:    di, g: gi,
			})
		}
	}
	return assignNearest(len(dets), len(gts), cands)
}

// matchHLines matches threshold lines by row proximity and span overlap,
// binding each detection to the nearest unused candidate.
func matchHLines(dets, gts []geom.HSeg) (tp, fp, fn int) {
	var cands []matchCand
	for di, d := range dets {
		for gi, g := range gts {
			dist := geom.Abs(d.Y - g.Y)
			ov := overlap1D(d.X0, d.X1, g.X0, g.X1)
			if !segSpanMatch(dist, ov, g.Len()) {
				continue
			}
			cands = append(cands, matchCand{
				cost: dist, overlap: ov,
				dKey: [3]int{d.Y, d.X0, d.X1},
				gKey: [3]int{g.Y, g.X0, g.X1},
				d:    di, g: gi,
			})
		}
	}
	return assignNearest(len(dets), len(gts), cands)
}

// matchArrows matches arrows by row and endpoint proximity, binding each
// detection to the unused candidate with the smallest total displacement.
func matchArrows(dets []dataset.Arrow, gts []dataset.Arrow) (tp, fp, fn int) {
	var cands []matchCand
	for di, d := range dets {
		for gi, g := range gts {
			dy, dx0, dx1 := geom.Abs(d.Y-g.Y), geom.Abs(d.X0-g.X0), geom.Abs(d.X1-g.X1)
			if dy > 5 || dx0 > 6 || dx1 > 6 {
				continue
			}
			cands = append(cands, matchCand{
				cost: dy + dx0 + dx1,
				dKey: [3]int{d.Y, d.X0, d.X1},
				gKey: [3]int{g.Y, g.X0, g.X1},
				d:    di, g: gi,
			})
		}
	}
	return assignNearest(len(dets), len(gts), cands)
}

func overlap1D(a0, a1, b0, b1 int) int {
	lo := a0
	if b0 > lo {
		lo = b0
	}
	hi := a1
	if b1 < hi {
		hi = b1
	}
	if hi < lo {
		return 0
	}
	return hi - lo + 1
}

// TableIII runs the OCR extrapolation experiment (paper Table III).
func TableIII(pipe *core.Pipeline, corpus []*dataset.Sample) *OCRValResult {
	return ocrAccuracy(pipe, corpus)
}

// OverallResult holds experiment E6: Sec. VI.3's overall performance.
type OverallResult struct {
	Total         int
	TemplateLevel int // structurally correct SPOs
	TotallyOK     int // structurally and textually correct
	// PartialRecall is the mean fraction of ground-truth constraints
	// recovered on the structurally incorrect diagrams.
	PartialRecall float64
	// PerSample lists each diagram's outcome for inspection.
	PerSample []SampleOutcome
}

// SampleOutcome is one diagram's result.
type SampleOutcome struct {
	Name     string
	Template bool
	Total    bool
	Recall   float64
	Err      error
	Got      *spo.SPO
}

// Overall runs the full pipeline over the corpus and scores SPO extraction
// at the template and total level. It is a compatibility wrapper over the
// streaming OverallRun; results are bit-identical to the historical
// sequential loop for any worker count.
func Overall(pipe *core.Pipeline, corpus []*dataset.Sample) *OverallResult {
	// The in-memory corpus can neither fail to load nor abort the run, so
	// the runner's error path is unreachable here.
	res, err := OverallRun(pipe, SliceCorpus(corpus), RunOpts{})
	if err != nil {
		panic(err)
	}
	return res
}

// Print writes the overall-performance summary (Sec. VI.3 numbers).
func (r *OverallResult) Print(w io.Writer, verbose bool) {
	fmt.Fprintf(w, "Overall performance (Sec. VI.3)\n")
	fmt.Fprintf(w, "template-level correct SPOs: %d/%d (%.1f%%)\n",
		r.TemplateLevel, r.Total, 100*float64(r.TemplateLevel)/float64(r.Total))
	fmt.Fprintf(w, "totally correct SPOs:        %d/%d (%.1f%%)\n",
		r.TotallyOK, r.Total, 100*float64(r.TotallyOK)/float64(r.Total))
	fmt.Fprintf(w, "mean constraint recall on structurally incorrect TDs: %.2f\n", r.PartialRecall)
	if verbose {
		for _, s := range r.PerSample {
			status := "partial"
			switch {
			case s.Err != nil:
				status = "error: " + s.Err.Error()
			case s.Total:
				status = "total"
			case s.Template:
				status = "template"
			}
			fmt.Fprintf(w, "  %-8s %-9s recall %.2f\n", s.Name, status, s.Recall)
			if s.Got != nil && !s.Total {
				fmt.Fprint(w, indent(s.Got.SpecText(), "    "))
			}
		}
	}
}

func indent(s, prefix string) string {
	out := ""
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out += prefix + s[start:i+1]
			start = i + 1
		}
	}
	if start < len(s) {
		out += prefix + s[start:] + "\n"
	}
	return out
}
