package eval

import (
	"fmt"
	"io"
	"math/rand"

	"tdmagic/internal/core"
	"tdmagic/internal/dataset"
	"tdmagic/internal/tdgen"
)

// RobustnessPoint is one level of a degradation sweep.
type RobustnessPoint struct {
	NoiseDots     int
	TemplateLevel float64 // fraction of structurally correct SPOs
	TotallyOK     float64 // fraction of totally correct SPOs
	EdgeRecall    float64 // fraction of ground-truth edges detected
}

// RobustnessResult holds the noise-degradation experiment (an extension
// beyond the paper's evaluation: the paper's pictures are clean PDF
// renders; scans are not).
type RobustnessResult struct {
	Points []RobustnessPoint
}

// NoiseRobustness sweeps scanner-noise levels over freshly generated
// synthetic diagrams and measures how SPO extraction degrades. n diagrams
// are generated per level with the given seed stream.
func NoiseRobustness(pipe *core.Pipeline, seed int64, n int, noiseLevels []int) (*RobustnessResult, error) {
	res := &RobustnessResult{}
	for _, dots := range noiseLevels {
		cfg := tdgen.DefaultConfig(tdgen.G1)
		g := tdgen.New(cfg, rand.New(rand.NewSource(seed)))
		samples, err := g.GenerateN(n)
		if err != nil {
			return nil, err
		}
		var tmpl, total int
		var edgesFound, edgesAll int
		for i, s := range samples {
			noisy := s
			if dots > 0 {
				// Re-render the same diagram with noise by overlaying
				// specks on a copy of the picture: equivalent to the
				// renderer's NoiseDots and much cheaper than re-running
				// layout sampling.
				img := s.Image.Clone()
				rng := rand.New(rand.NewSource(seed + int64(i)))
				for k := 0; k < dots; k++ {
					img.Set(rng.Intn(img.W), rng.Intn(img.H), 0)
				}
				cp := *s
				cp.Image = img
				noisy = &cp
			}
			got, rep, err := pipe.Translate(noisy.Image)
			edgesAll += len(s.Edges)
			if rep != nil {
				for _, gt := range s.Edges {
					for _, d := range rep.Edges {
						if d.Box.IoU(gt.Box) >= 0.5 && d.Type == gt.Type {
							edgesFound++
							break
						}
					}
				}
			}
			if err != nil {
				continue
			}
			if got.TemplateEqual(s.Truth) {
				tmpl++
			}
			if got.TotalEqual(s.Truth) {
				total++
			}
		}
		pt := RobustnessPoint{NoiseDots: dots}
		if n > 0 {
			pt.TemplateLevel = float64(tmpl) / float64(n)
			pt.TotallyOK = float64(total) / float64(n)
		}
		if edgesAll > 0 {
			pt.EdgeRecall = float64(edgesFound) / float64(edgesAll)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Print writes the sweep as a table.
func (r *RobustnessResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Noise robustness (extension; specks of ink added per picture)\n")
	fmt.Fprintf(w, "%8s %10s %12s %10s\n", "noise", "edge-R", "template", "total")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%8d %10.3f %12.3f %10.3f\n", p.NoiseDots, p.EdgeRecall, p.TemplateLevel, p.TotallyOK)
	}
}

// ScaleRobustness re-translates the industrial corpus at different image
// scales (nearest-neighbour resampling) and measures how SPO extraction
// degrades: the morphology and proposal parameters are tuned in pixels, so
// resolution shifts are a genuine stressor (datasheets render at many
// dpi).
func ScaleRobustness(pipe *core.Pipeline, corpus []*dataset.Sample, scales []float64) *ScaleResult {
	res := &ScaleResult{}
	for _, sc := range scales {
		var tmpl int
		for _, s := range corpus {
			img := s.Image
			if sc != 1.0 {
				img = img.ScaleTo(int(float64(img.W)*sc+0.5), int(float64(img.H)*sc+0.5))
			}
			got, _, err := pipe.Translate(img)
			if err != nil {
				continue
			}
			if got.TemplateEqual(s.Truth) {
				tmpl++
			}
		}
		res.Points = append(res.Points, ScalePoint{
			Scale:         sc,
			TemplateLevel: float64(tmpl) / float64(len(corpus)),
		})
	}
	return res
}

// ScalePoint is one level of the resolution sweep.
type ScalePoint struct {
	Scale         float64
	TemplateLevel float64
}

// ScaleResult holds the resolution-robustness experiment.
type ScaleResult struct {
	Points []ScalePoint
}

// Print writes the sweep as a table.
func (r *ScaleResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Resolution robustness (extension; corpus rescaled before translation)\n")
	fmt.Fprintf(w, "%8s %12s\n", "scale", "template")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%8.2f %12.3f\n", p.Scale, p.TemplateLevel)
	}
}
