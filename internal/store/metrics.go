package store

import "tdmagic/internal/metrics"

// Metrics counts artifact-level store traffic. The serve LRU in front
// of the store has its own hit-ratio gauge; these counters close the
// second-level blind spot — every batch, job and serve path that
// shares one *Store reports through the same four series.
type Metrics struct {
	Hits    *metrics.Counter // artifact Get found a complete entry
	Misses  *metrics.Counter // artifact Get found nothing readable
	Writes  *metrics.Counter // artifact Put committed
	Corrupt *metrics.Counter // stored artifact failed the caller's validation
}

// NewMetrics registers the tdstore_* counters on reg.
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		Hits:    reg.Counter("tdstore_hits_total", "Artifact reads served from the persistent store."),
		Misses:  reg.Counter("tdstore_misses_total", "Artifact reads that found no readable entry."),
		Writes:  reg.Counter("tdstore_writes_total", "Artifacts committed to the persistent store."),
		Corrupt: reg.Counter("tdstore_corrupt_total", "Stored artifacts rejected by caller validation (recomputed and healed)."),
	}
}

// SetMetrics attaches counters to the store. Call before concurrent
// use; a store without metrics counts nothing. Alias-index traffic is
// deliberately not counted — aliases are a decode shortcut, not a
// result cache, and counting them would distort the hit ratio.
func (s *Store) SetMetrics(m *Metrics) { s.m = m }

// NoteCorrupt is called by readers that validated a Get result and
// found it undecodable or semantically invalid. The store cannot judge
// artifact contents itself (it stores opaque bytes), so corruption is
// caller-reported; the caller then recomputes and Put heals the entry.
func (s *Store) NoteCorrupt() {
	if s != nil && s.m != nil && s.m.Corrupt != nil {
		s.m.Corrupt.Inc()
	}
}

func (m *Metrics) hit() {
	if m != nil && m.Hits != nil {
		m.Hits.Inc()
	}
}

func (m *Metrics) miss() {
	if m != nil && m.Misses != nil {
		m.Misses.Inc()
	}
}

func (m *Metrics) write() {
	if m != nil && m.Writes != nil {
		m.Writes.Inc()
	}
}
