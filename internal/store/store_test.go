package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"tdmagic/internal/imgproc"
)

func h(b byte) Hash {
	var x Hash
	x[0] = b
	x[31] = b ^ 0xff
	return x
}

func TestHashHexRoundTrip(t *testing.T) {
	x := HashBytes([]byte("timing diagram"))
	got, err := ParseHex(x.Hex())
	if err != nil {
		t.Fatal(err)
	}
	if got != x {
		t.Fatalf("round trip %s != %s", got.Hex(), x.Hex())
	}
	if _, err := ParseHex("zz"); err == nil {
		t.Error("ParseHex accepted garbage")
	}
	if !(Hash{}).IsZero() || x.IsZero() {
		t.Error("IsZero wrong")
	}
}

func TestHashImageMatchesServeScheme(t *testing.T) {
	img := imgproc.NewGray(3, 2)
	img.Pix = []byte{1, 2, 3, 4, 5, 6}
	a := HashImage(img)
	img2 := imgproc.NewGray(3, 2)
	img2.Pix = []byte{1, 2, 3, 4, 5, 6}
	if HashImage(img2) != a {
		t.Error("equal pixels, different hash")
	}
	// Dimensions are part of the key: 3x2 and 2x3 share bytes but not hash.
	img3 := imgproc.NewGray(2, 3)
	img3.Pix = []byte{1, 2, 3, 4, 5, 6}
	if HashImage(img3) == a {
		t.Error("transposed dims collide")
	}
	img2.Pix[5] = 7
	if HashImage(img2) == a {
		t.Error("pixel flip did not change hash")
	}
}

func TestPutGetRemove(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg, input := h(1), h(2)
	if _, ok := s.Get(cfg, input); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put(cfg, input, []byte(`{"spec":"x"}`)); err != nil {
		t.Fatal(err)
	}
	data, ok := s.Get(cfg, input)
	if !ok || string(data) != `{"spec":"x"}` {
		t.Fatalf("get = %q, %v", data, ok)
	}
	if !s.Has(cfg, input) {
		t.Error("Has = false after Put")
	}
	// Overwrite replaces content atomically.
	if err := s.Put(cfg, input, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if data, _ := s.Get(cfg, input); string(data) != "v2" {
		t.Errorf("overwrite read back %q", data)
	}
	if err := s.Remove(cfg, input); err != nil {
		t.Fatal(err)
	}
	if s.Has(cfg, input) {
		t.Error("Has = true after Remove")
	}
	if err := s.Remove(cfg, input); err != nil {
		t.Errorf("double remove: %v", err)
	}
}

func TestKeysAreIndependent(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(h(1), h(2), []byte("a")); err != nil {
		t.Fatal(err)
	}
	// Same input under a different config is a distinct artifact.
	if _, ok := s.Get(h(9), h(2)); ok {
		t.Error("config hash not part of the key")
	}
	if _, ok := s.Get(h(1), h(9)); ok {
		t.Error("input hash not part of the key")
	}
	n, err := s.Count(h(1))
	if err != nil || n != 1 {
		t.Errorf("Count = %d, %v", n, err)
	}
	if n, _ := s.Count(h(9)); n != 0 {
		t.Errorf("Count(empty cfg) = %d", n)
	}
}

func TestAliasIndex(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	raw, input := h(3), h(4)
	if _, ok := s.GetAlias(raw); ok {
		t.Fatal("alias hit on empty store")
	}
	if err := s.PutAlias(raw, input); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetAlias(raw)
	if !ok || got != input {
		t.Fatalf("GetAlias = %s, %v", got.Hex(), ok)
	}
}

func TestOpenClearsStaleTmp(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "tmp", "put-crashed")
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale tmp file survived reopen")
	}
}

func TestCorruptAliasIsMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	raw := h(5)
	if err := s.PutAlias(raw, h(6)); err != nil {
		t.Fatal(err)
	}
	// An externally truncated alias file degrades to a miss, not an error.
	if err := os.WriteFile(s.aliasPath(raw), []byte("not-hex"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetAlias(raw); ok {
		t.Error("corrupt alias resolved")
	}
}

// TestFaultHookAbortsWrites pins the fault-injection seam: a hook
// failing "put" operations makes Put error without committing anything,
// while alias writes stay unaffected — and clearing the hook heals the
// store with no residue from the failed attempts.
func TestFaultHookAbortsWrites(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	FaultHook = func(op, path string) error {
		if op == "put" {
			return errors.New("injected disk-full")
		}
		return nil
	}
	defer func() { FaultHook = nil }()

	cfg, input := HashBytes([]byte("cfg")), HashBytes([]byte("input"))
	if err := s.Put(cfg, input, []byte("artifact")); err == nil {
		t.Fatal("Put succeeded under an injected write fault")
	}
	if s.Has(cfg, input) {
		t.Fatal("failed Put left a committed artifact")
	}
	raw := HashBytes([]byte("raw"))
	if err := s.PutAlias(raw, input); err != nil {
		t.Fatalf("alias write hit the put-only fault: %v", err)
	}

	FaultHook = nil
	if err := s.Put(cfg, input, []byte("artifact")); err != nil {
		t.Fatalf("Put after clearing the fault: %v", err)
	}
	if got, ok := s.Get(cfg, input); !ok || string(got) != "artifact" {
		t.Fatalf("healed store Get = %q, %v", got, ok)
	}
}

// TestProbeWritable pins the readiness probe: writable store probes
// clean and leaves no residue; a store whose staging area is gone fails.
func TestProbeWritable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ProbeWritable(); err != nil {
		t.Fatalf("fresh store not writable: %v", err)
	}
	left, err := os.ReadDir(filepath.Join(dir, "tmp"))
	if err != nil || len(left) != 0 {
		t.Fatalf("probe left residue: %v, %v", left, err)
	}
	if err := os.RemoveAll(filepath.Join(dir, "tmp")); err != nil {
		t.Fatal(err)
	}
	if err := s.ProbeWritable(); err == nil {
		t.Fatal("store without a staging area probed writable")
	}
}
