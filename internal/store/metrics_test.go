package store

import (
	"bytes"
	"strings"
	"testing"

	"tdmagic/internal/metrics"
)

func TestStoreMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics(reg)
	s.SetMetrics(m)

	cfg := HashBytes([]byte("cfg"))
	input := HashBytes([]byte("input"))
	if _, ok := s.Get(cfg, input); ok {
		t.Fatal("empty store hit")
	}
	if err := s.Put(cfg, input, []byte("artifact")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(cfg, input); !ok {
		t.Fatal("stored artifact missed")
	}
	s.NoteCorrupt()
	// Alias traffic must not count: aliases are a decode shortcut.
	if err := s.PutAlias(HashBytes([]byte("raw")), input); err != nil {
		t.Fatal(err)
	}
	s.GetAlias(HashBytes([]byte("raw")))

	for _, tc := range []struct {
		c    *metrics.Counter
		want int64
		name string
	}{
		{m.Hits, 1, "hits"},
		{m.Misses, 1, "misses"},
		{m.Writes, 1, "writes"},
		{m.Corrupt, 1, "corrupt"},
	} {
		if tc.c.Value() != tc.want {
			t.Errorf("%s = %d, want %d", tc.name, tc.c.Value(), tc.want)
		}
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"tdstore_hits_total 1",
		"tdstore_misses_total 1",
		"tdstore_writes_total 1",
		"tdstore_corrupt_total 1",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, buf.String())
		}
	}
}

func TestStoreWithoutMetrics(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := HashBytes([]byte("c"))
	input := HashBytes([]byte("i"))
	s.Get(cfg, input)
	if err := s.Put(cfg, input, []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.NoteCorrupt()
	var nilStore *Store
	nilStore.NoteCorrupt() // nil-safe for callers holding an optional store
}
