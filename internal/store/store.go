// Package store implements the persistent content-addressed artifact
// store behind the corpus-scale batch engine. Results are keyed by
// (config hash × input hash): the config hash covers every pipeline knob
// and model weight that can change a translation's output (computed by
// core.Pipeline.ConfigHash), and the input hash is the SHA-256 of the
// decoded picture's dimensions and raw pixels — the same scheme as the
// tdserve LRU, so two uploads of one diagram through different PNG
// encoders share an artifact.
//
// On-disk layout under the store root:
//
//	tmp/                          staging area for atomic writes
//	alias/<xx>/<raw>.key          SHA-256(encoded bytes) -> input-hash hex
//	obj/<cfg>/<xx>/<input>.json   the artifact body
//
// where <xx> is the first two hex digits of the hash that follows — a
// fan-out shard so a 15k-item corpus does not put every file in one
// directory. Every write lands in tmp/ first and is renamed into place,
// so a reader never observes a partial artifact and an interrupted corpus
// run leaves only complete entries: the re-run resumes by translating
// exactly the missing keys. Stale tmp files from a crash are cleared the
// next time the store is opened.
//
// The alias index is a decode-skipping shortcut for file-backed sources:
// it maps the hash of a file's encoded bytes to the canonical pixel-level
// input hash, so a warm re-run over an unchanged directory resolves each
// picture to its artifact without PNG-decoding or pixel-hashing it.
// Aliases are config-independent (bytes -> pixels involves no model), so
// all configurations share one index.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tdmagic/internal/imgproc"
)

// Hash is a SHA-256 content address.
type Hash [sha256.Size]byte

// Hex returns the lowercase hex form of the hash.
func (h Hash) Hex() string { return hex.EncodeToString(h[:]) }

// IsZero reports whether the hash is the (invalid) zero value.
func (h Hash) IsZero() bool { return h == Hash{} }

// ParseHex decodes a 64-digit hex hash.
func ParseHex(s string) (Hash, error) {
	var h Hash
	b, err := hex.DecodeString(strings.TrimSpace(s))
	if err != nil || len(b) != sha256.Size {
		return h, fmt.Errorf("store: invalid hash %q", s)
	}
	copy(h[:], b)
	return h, nil
}

// HashBytes hashes a raw byte string (e.g. a PNG file's encoded bytes,
// for the alias index).
func HashBytes(b []byte) Hash { return sha256.Sum256(b) }

// HashImage computes the canonical input hash of a decoded picture:
// SHA-256 over (width, height, raw pixels), the same key the tdserve LRU
// uses, so the persistent store and the in-memory cache address content
// identically.
func HashImage(img *imgproc.Gray) Hash {
	h := sha256.New()
	var dims [16]byte
	binary.LittleEndian.PutUint64(dims[0:8], uint64(img.W))
	binary.LittleEndian.PutUint64(dims[8:16], uint64(img.H))
	h.Write(dims[:])
	h.Write(img.Pix)
	var k Hash
	h.Sum(k[:0])
	return k
}

// Store is a content-addressed artifact store rooted at one directory.
// All methods are safe for concurrent use from any number of goroutines
// or processes sharing the root: writes are atomic renames, and a
// concurrent Put of the same key simply replaces the file with identical
// content.
type Store struct {
	root string
	m    *Metrics // optional, attached by SetMetrics; nil counts nothing
}

// Open prepares (creating if necessary) a store rooted at dir and clears
// any staging files left behind by a crashed writer.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"tmp", "alias", "obj"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	// A crash between create and rename strands a tmp file; none are live
	// across opens, so clear them all rather than leaking disk.
	if stale, err := os.ReadDir(filepath.Join(dir, "tmp")); err == nil {
		for _, e := range stale {
			_ = os.Remove(filepath.Join(dir, "tmp", e.Name()))
		}
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// objPath returns the artifact path for one (config, input) key.
func (s *Store) objPath(cfg, input Hash) string {
	ih := input.Hex()
	return filepath.Join(s.root, "obj", cfg.Hex(), ih[:2], ih+".json")
}

// aliasPath returns the alias-index path for one raw-bytes hash.
func (s *Store) aliasPath(raw Hash) string {
	rh := raw.Hex()
	return filepath.Join(s.root, "alias", rh[:2], rh+".key")
}

// FaultHook, when non-nil, is consulted before every atomic write
// commits, with the operation kind ("put", "alias") and the destination
// path; a non-nil return aborts the write with that error. It is a
// build-tag-free fault-injection seam for the robustness tests (full
// disk, read-only store) and must only be set while no writer is running.
var FaultHook func(op, path string) error

// ProbeWritable verifies the store can still take writes by staging and
// removing a probe file in the tmp/ area — the readiness signal a load
// balancer should see before routing corpus traffic at a replica.
func (s *Store) ProbeWritable() error {
	f, err := os.CreateTemp(filepath.Join(s.root, "tmp"), "probe-*")
	if err != nil {
		return fmt.Errorf("store: not writable: %w", err)
	}
	name := f.Name()
	_, werr := f.Write([]byte("probe"))
	cerr := f.Close()
	os.Remove(name)
	if werr != nil {
		return fmt.Errorf("store: not writable: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("store: not writable: %w", cerr)
	}
	return nil
}

// Get returns the artifact stored under (cfg, input). Any read failure —
// missing, unreadable, truncated by an external actor — reports a miss;
// the caller recomputes and the next Put heals the entry.
func (s *Store) Get(cfg, input Hash) ([]byte, bool) {
	data, err := os.ReadFile(s.objPath(cfg, input))
	if err != nil {
		s.m.miss()
		return nil, false
	}
	s.m.hit()
	return data, true
}

// Has reports whether an artifact exists under (cfg, input).
func (s *Store) Has(cfg, input Hash) bool {
	_, err := os.Stat(s.objPath(cfg, input))
	return err == nil
}

// Put stores data under (cfg, input) atomically: the bytes are staged in
// tmp/ and renamed into place, so a concurrent or crashed reader never
// sees a partial artifact.
func (s *Store) Put(cfg, input Hash, data []byte) error {
	if err := s.writeAtomic("put", s.objPath(cfg, input), data); err != nil {
		return err
	}
	s.m.write()
	return nil
}

// Remove deletes the artifact under (cfg, input); missing entries are not
// an error. The crash-resume tests use it to truncate a store mid-run.
func (s *Store) Remove(cfg, input Hash) error {
	err := os.Remove(s.objPath(cfg, input))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// GetAlias resolves the hash of a file's encoded bytes to the canonical
// input hash recorded by a previous run, or reports a miss.
func (s *Store) GetAlias(raw Hash) (Hash, bool) {
	data, err := os.ReadFile(s.aliasPath(raw))
	if err != nil {
		return Hash{}, false
	}
	h, err := ParseHex(string(data))
	if err != nil {
		return Hash{}, false
	}
	return h, true
}

// PutAlias records raw -> input in the alias index, atomically.
func (s *Store) PutAlias(raw, input Hash) error {
	return s.writeAtomic("alias", s.aliasPath(raw), []byte(input.Hex()+"\n"))
}

// Count returns the number of artifacts stored under one config hash.
func (s *Store) Count(cfg Hash) (int, error) {
	n := 0
	dir := filepath.Join(s.root, "obj", cfg.Hex())
	shards, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	for _, sh := range shards {
		entries, err := os.ReadDir(filepath.Join(dir, sh.Name()))
		if err != nil {
			return 0, err
		}
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".json") {
				n++
			}
		}
	}
	return n, nil
}

// writeAtomic stages data in tmp/ and renames it to path, creating the
// destination shard directory on demand.
func (s *Store) writeAtomic(op, path string, data []byte) error {
	if FaultHook != nil {
		if err := FaultHook(op, path); err != nil {
			return fmt.Errorf("store: %s %s: %w", op, path, err)
		}
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	f, err := os.CreateTemp(filepath.Join(s.root, "tmp"), "put-*")
	if err != nil {
		return fmt.Errorf("store: stage: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: stage write: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: stage close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: commit: %w", err)
	}
	return nil
}
