package sva

import (
	"strings"
	"testing"

	"tdmagic/internal/monitor"
	"tdmagic/internal/spo"
)

func example1() *spo.SPO {
	p := &spo.SPO{}
	n1 := p.AddNode(spo.Node{Signal: "V_{INA}", EdgeIndex: 1, Type: spo.RiseStep})
	n2 := p.AddNode(spo.Node{Signal: "V_{OUTA}", EdgeIndex: 1, Type: spo.RiseRamp, Threshold: "90%"})
	n3 := p.AddNode(spo.Node{Signal: "V_{INA}", EdgeIndex: 2, Type: spo.FallStep})
	n4 := p.AddNode(spo.Node{Signal: "V_{OUTA}", EdgeIndex: 2, Type: spo.FallRamp, Threshold: "10%"})
	_ = p.AddConstraint(n1, n2, "t_{D(on)}")
	_ = p.AddConstraint(n3, n4, "t_{D(off)}")
	return p
}

func TestExportExample1(t *testing.T) {
	src, err := Export(example1(), map[string]monitor.Bounds{
		"t_{D(on)}":  {Min: 2, Max: 40},
		"t_{D(off)}": {Min: 2, Max: 40},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"property p_t_D_on",
		"@(posedge clk) $rose(V_INA) |-> ##[2:40] $rose(V_OUTA_90pct);",
		"$fell(V_INA) |-> ##[2:40] $fell(V_OUTA_10pct);",
		"assert_t_D_on: assert property (p_t_D_on);",
		"wire V_OUTA_90pct;",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q in:\n%s", want, src)
		}
	}
}

func TestExportUnboundedWindow(t *testing.T) {
	src, err := Export(example1(), map[string]monitor.Bounds{
		"t_{D(on)}": {Min: 3}, // no max
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "##[3:$]") {
		t.Errorf("min-only window missing:\n%s", src)
	}
}

func TestExportNoBounds(t *testing.T) {
	src, err := Export(example1(), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(src, "##[1:$]") != 2 {
		t.Errorf("expected two unbounded windows:\n%s", src)
	}
}

func TestExportModule(t *testing.T) {
	src, err := Export(example1(), nil, Options{ModuleName: "td_checker", Clock: "sclk"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"module td_checker(input logic sclk",
		"input logic V_INA",
		"input logic V_OUTA_90pct",
		"endmodule",
		"@(posedge sclk)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q in:\n%s", want, src)
		}
	}
}

func TestExportCyclesPerUnit(t *testing.T) {
	src, err := Export(example1(), map[string]monitor.Bounds{
		"t_{D(on)}": {Min: 1, Max: 2},
	}, Options{CyclesPerUnit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "##[10:20]") {
		t.Errorf("cycle scaling missing:\n%s", src)
	}
}

func TestExportInvalidSPO(t *testing.T) {
	p := &spo.SPO{}
	a := p.AddNode(spo.Node{Signal: "X", EdgeIndex: 1, Type: spo.RiseStep})
	p.Constraints = append(p.Constraints, spo.Constraint{Src: a, Dst: a})
	if _, err := Export(p, nil, Options{}); err == nil {
		t.Error("invalid SPO accepted")
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"V_{INA}":    "V_INA",
		"t_{D(on)}":  "t_D_on",
		"90%":        "90pct",
		"6ns":        "6ns",
		"t_{su(D)}":  "t_su_D",
		"__weird__%": "weird_pct",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDoubleEventUsesRose(t *testing.T) {
	p := &spo.SPO{}
	n1 := p.AddNode(spo.Node{Signal: "SI", EdgeIndex: 1, Type: spo.Double, Threshold: "50%"})
	n2 := p.AddNode(spo.Node{Signal: "SCK", EdgeIndex: 1, Type: spo.RiseRamp, Threshold: "50%"})
	_ = p.AddConstraint(n1, n2, "t_{s}")
	src, err := Export(p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "$rose(SI_50pct)") {
		t.Errorf("double event expr wrong:\n%s", src)
	}
}
