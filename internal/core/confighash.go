package core

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math"
	"sort"

	"tdmagic/internal/ocr"
	"tdmagic/internal/store"
)

// configHashVersion versions the digest schema itself: any change to the
// set or encoding of hashed fields must bump it, so artifacts written by
// an older binary are never misread as current.
const configHashVersion = "tdmagic-config-v1"

// ConfigHash returns the deterministic digest of everything about this
// pipeline that can influence a translation's output: every LAD, SED, OCR
// and SEI knob, the Strict mode, the SED network weights, the OCR glyph
// templates, and both SEI lexicons. Two pipelines with equal ConfigHash
// produce bit-identical SPOs for identical inputs, which is what lets the
// content-addressed result store (internal/store, key = config hash ×
// input hash) answer for a translation without running it.
//
// Deliberately excluded: Metrics (observability only) and IntraWorkers
// (translation output is bit-identical for any worker count — pinned by
// TestIntraWorkersInvariance — so keying on it would only split the
// cache).
func (p *Pipeline) ConfigHash() store.Hash {
	h := sha256.New()
	w := &digestWriter{h: h}
	w.str("version", configHashVersion)
	w.bool("strict", p.Strict)

	w.str("section", "lad")
	w.u64("threshold", uint64(p.LADCfg.Threshold))
	w.i64("vbridge", int64(p.LADCfg.VBridge))
	w.i64("vminlen", int64(p.LADCfg.VMinLen))
	w.i64("hbridge", int64(p.LADCfg.HBridge))
	w.i64("hminlen", int64(p.LADCfg.HMinLen))
	w.i64("maxthick", int64(p.LADCfg.MaxThick))

	w.str("section", "sed")
	if p.SED != nil {
		cfg := p.SED.Cfg
		w.i64("minplateaurun", int64(cfg.MinPlateauRun))
		w.i64("minheight", int64(cfg.MinHeight))
		w.i64("minarea", int64(cfg.MinArea))
		w.i64("bridgegap", int64(cfg.BridgeGap))
		w.f64("scorethreshold", cfg.ScoreThreshold)
		w.i64("maxproposals", int64(cfg.MaxProposals))
		if net := p.SED.Net; net != nil {
			w.str("section", "sednet")
			w.i64("layers", int64(len(net.Sizes)))
			for _, sz := range net.Sizes {
				w.i64("size", int64(sz))
			}
			for _, layer := range net.Weights {
				w.f64s("weights", layer)
			}
			for _, layer := range net.Biases {
				w.f64s("biases", layer)
			}
		}
	}

	w.str("section", "ocr")
	w.i64("minglyphh", int64(p.OCRCfg.MinGlyphH))
	w.i64("maxglyphh", int64(p.OCRCfg.MaxGlyphH))
	w.i64("joindx", int64(p.OCRCfg.JoinDX))
	w.f64("minconf", p.OCRCfg.MinConf)
	if p.OCR != nil {
		runes := make([]rune, 0, len(p.OCR.Templates))
		for r := range p.OCR.Templates {
			runes = append(runes, r)
		}
		sort.Slice(runes, func(i, j int) bool { return runes[i] < runes[j] })
		w.i64("templates", int64(len(runes)))
		for _, r := range runes {
			t := p.OCR.Templates[r]
			w.i64("rune", int64(r))
			w.f64s("grid", t.Grid)
			w.f64("aspect", t.Aspect)
			w.i64("count", int64(t.Count))
		}
	}

	w.str("section", "sei")
	w.i64("expand", int64(p.SEICfg.Expand))
	w.i64("ytol", int64(p.SEICfg.YTol))
	w.f64("fullspanfrac", p.SEICfg.FullSpanFrac)
	w.i64("toptol", int64(p.SEICfg.TopTol))
	w.i64("outwardmaxtail", int64(p.SEICfg.OutwardMaxTail))
	w.lexicon("namelexicon", p.SEICfg.NameLexicon)
	w.lexicon("valuelexicon", p.SEICfg.ValueLexicon)

	var out store.Hash
	h.Sum(out[:0])
	return out
}

// digestWriter serialises labelled fields into a hash with fixed-width
// little-endian encodings and length-prefixed strings, so the digest is
// identical across architectures and two adjacent fields can never alias
// each other's bytes.
type digestWriter struct {
	h   hash.Hash
	buf [8]byte
}

func (w *digestWriter) str(label, v string) {
	w.raw(label)
	binary.LittleEndian.PutUint64(w.buf[:], uint64(len(v)))
	w.h.Write(w.buf[:])
	w.h.Write([]byte(v))
}

func (w *digestWriter) raw(label string) {
	binary.LittleEndian.PutUint64(w.buf[:], uint64(len(label)))
	w.h.Write(w.buf[:])
	w.h.Write([]byte(label))
}

func (w *digestWriter) u64(label string, v uint64) {
	w.raw(label)
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.h.Write(w.buf[:])
}

func (w *digestWriter) i64(label string, v int64) { w.u64(label, uint64(v)) }

func (w *digestWriter) f64(label string, v float64) { w.u64(label, math.Float64bits(v)) }

func (w *digestWriter) f64s(label string, vs []float64) {
	w.u64(label, uint64(len(vs)))
	for _, v := range vs {
		binary.LittleEndian.PutUint64(w.buf[:], math.Float64bits(v))
		w.h.Write(w.buf[:])
	}
}

func (w *digestWriter) bool(label string, v bool) {
	if v {
		w.u64(label, 1)
	} else {
		w.u64(label, 0)
	}
}

func (w *digestWriter) lexicon(label string, lex *ocr.Lexicon) {
	if lex == nil {
		w.u64(label, 0)
		return
	}
	w.u64(label, 1)
	w.f64("maxratio", lex.MaxRatio)
	w.i64("entries", int64(len(lex.Entries)))
	for _, e := range lex.Entries {
		w.str("entry", e)
	}
}
