package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"tdmagic/internal/lad"
	"tdmagic/internal/nn"
	"tdmagic/internal/ocr"
	"tdmagic/internal/sed"
	"tdmagic/internal/sei"
)

// pipelineGob is the serialised form of a trained pipeline.
type pipelineGob struct {
	SEDNet       *nn.Net
	SEDCfg       sed.Config
	OCRModel     map[rune]*ocr.Template
	LADCfg       lad.Config
	OCRCfg       ocr.DetectConfig
	SEICfg       seiConfigGob
	NameLexicon  []string
	ValueLexicon []string
}

// seiConfigGob mirrors sei.Config without the lexicon pointer.
type seiConfigGob struct {
	Expand         int
	YTol           int
	FullSpanFrac   float64
	TopTol         int
	OutwardMaxTail int
}

// Save writes the trained pipeline in gob format.
func (p *Pipeline) Save(w io.Writer) error {
	g := pipelineGob{
		SEDNet:   p.SED.Net,
		SEDCfg:   p.SED.Cfg,
		OCRModel: p.OCR.Templates,
		LADCfg:   p.LADCfg,
		OCRCfg:   p.OCRCfg,
		SEICfg: seiConfigGob{
			Expand:         p.SEICfg.Expand,
			YTol:           p.SEICfg.YTol,
			FullSpanFrac:   p.SEICfg.FullSpanFrac,
			TopTol:         p.SEICfg.TopTol,
			OutwardMaxTail: p.SEICfg.OutwardMaxTail,
		},
	}
	if p.SEICfg.NameLexicon != nil {
		g.NameLexicon = p.SEICfg.NameLexicon.Entries
	}
	if p.SEICfg.ValueLexicon != nil {
		g.ValueLexicon = p.SEICfg.ValueLexicon.Entries
	}
	return gob.NewEncoder(w).Encode(g)
}

// Load reads a pipeline previously written by Save.
func Load(r io.Reader) (*Pipeline, error) {
	var g pipelineGob
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("core: load pipeline: %w", err)
	}
	if g.SEDNet == nil || len(g.OCRModel) == 0 {
		return nil, fmt.Errorf("core: load pipeline: missing models")
	}
	seiCfg := sei.Config{
		Expand:         g.SEICfg.Expand,
		YTol:           g.SEICfg.YTol,
		FullSpanFrac:   g.SEICfg.FullSpanFrac,
		TopTol:         g.SEICfg.TopTol,
		OutwardMaxTail: g.SEICfg.OutwardMaxTail,
	}
	if len(g.NameLexicon) > 0 {
		seiCfg.NameLexicon = ocr.NewLexicon(g.NameLexicon)
	}
	if len(g.ValueLexicon) > 0 {
		seiCfg.ValueLexicon = ocr.NewLexicon(g.ValueLexicon)
	}
	return &Pipeline{
		SED:    &sed.Model{Net: g.SEDNet, Cfg: g.SEDCfg},
		OCR:    &ocr.Model{Templates: g.OCRModel},
		LADCfg: g.LADCfg,
		OCRCfg: g.OCRCfg,
		SEICfg: seiCfg,
	}, nil
}

// SaveFile writes the pipeline to a file path.
func (p *Pipeline) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return p.Save(f)
}

// LoadFile reads a pipeline from a file path.
func LoadFile(path string) (*Pipeline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
