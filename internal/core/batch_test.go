package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"tdmagic/internal/imgproc"
)

// TestBatchPanicRecovery injects a panic into one item of a batch and
// checks the failure is isolated: the poisoned picture reports the panic
// (with a stack) in its BatchResult.Err while every other picture still
// translates normally and results stay in input order.
func TestBatchPanicRecovery(t *testing.T) {
	pipe, val := trainSmall(t)
	imgs := make([]*imgproc.Gray, len(val))
	for i, s := range val {
		imgs[i] = s.Image
	}
	const poisoned = 2
	batchHook = func(index int) {
		if index == poisoned {
			panic("injected stage failure")
		}
	}
	defer func() { batchHook = nil }()

	results := pipe.TranslateAll(imgs, 3)
	if len(results) != len(imgs) {
		t.Fatalf("got %d results for %d pictures", len(results), len(imgs))
	}
	for i, r := range results {
		if r.Index != i {
			t.Errorf("result %d carries index %d", i, r.Index)
		}
		if i == poisoned {
			if r.Err == nil {
				t.Fatal("poisoned item reported no error")
			}
			if !strings.Contains(r.Err.Error(), "injected stage failure") {
				t.Errorf("panic value missing from error: %v", r.Err)
			}
			if !strings.Contains(r.Err.Error(), "batch_test.go") {
				t.Errorf("stack trace missing from error: %.120s", r.Err.Error())
			}
			if r.SPO != nil || r.Rep != nil {
				t.Error("poisoned item returned partial outputs alongside the panic")
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("healthy item %d failed: %v", i, r.Err)
		}
		if r.SPO == nil || r.Rep == nil {
			t.Errorf("healthy item %d missing outputs", i)
		}
	}
}

// TestBatchPerItemTimeout stalls one item past the per-picture deadline
// and checks it surfaces context.DeadlineExceeded without delaying or
// failing its neighbours.
func TestBatchPerItemTimeout(t *testing.T) {
	pipe, val := trainSmall(t)
	imgs := make([]*imgproc.Gray, 3)
	for i := range imgs {
		imgs[i] = val[i].Image
	}
	// The deadline applies to every item, so it must be generous enough
	// that healthy translations finish inside it even under -race, while
	// the stalled item sleeps safely past it.
	const timeout = 5 * time.Second
	const stalled = 1
	batchHook = func(index int) {
		if index == stalled {
			time.Sleep(timeout + 500*time.Millisecond)
		}
	}
	defer func() { batchHook = nil }()

	results := pipe.TranslateAllCtx(context.Background(), imgs,
		BatchOptions{Workers: 3, Timeout: timeout})
	if !errors.Is(results[stalled].Err, context.DeadlineExceeded) {
		t.Errorf("stalled item err = %v, want deadline exceeded", results[stalled].Err)
	}
	for i, r := range results {
		if i == stalled {
			continue
		}
		if r.Err != nil {
			t.Errorf("item %d caught the neighbour's deadline: %v", i, r.Err)
		}
	}
}

// TestBatchCtxCancellation cancels the batch-wide context up front; every
// item must report the cancellation rather than run.
func TestBatchCtxCancellation(t *testing.T) {
	pipe, val := trainSmall(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := pipe.TranslateAllCtx(ctx, []*imgproc.Gray{val[0].Image}, BatchOptions{Workers: 1})
	if !errors.Is(results[0].Err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", results[0].Err)
	}
}
