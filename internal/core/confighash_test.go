package core

import (
	"math/rand"
	"testing"

	"tdmagic/internal/lad"
	"tdmagic/internal/metrics"
	"tdmagic/internal/nn"
	"tdmagic/internal/ocr"
	"tdmagic/internal/sed"
	"tdmagic/internal/sei"
	"tdmagic/internal/store"
)

// hashPipe deterministically constructs a fully-populated pipeline, so two
// calls yield identical configuration and mutations can be applied to a
// fresh copy.
func hashPipe() *Pipeline {
	net := nn.NewNet(rand.New(rand.NewSource(7)), 6, 4, 2)
	return &Pipeline{
		SED: &sed.Model{
			Net: net,
			Cfg: sed.Config{
				MinPlateauRun:  3,
				MinHeight:      8,
				MinArea:        40,
				BridgeGap:      2,
				ScoreThreshold: 0.5,
				MaxProposals:   64,
			},
		},
		OCR: &ocr.Model{
			Templates: map[rune]*ocr.Template{
				'a': {Grid: []float64{0.1, 0.2, 0.3, 0.4}, Aspect: 0.8, Count: 3},
				'b': {Grid: []float64{0.5, 0.6, 0.7, 0.8}, Aspect: 1.1, Count: 2},
			},
		},
		LADCfg: lad.Config{Threshold: 128, VBridge: 2, VMinLen: 12, HBridge: 3, HMinLen: 14, MaxThick: 4},
		OCRCfg: ocr.DetectConfig{MinGlyphH: 5, MaxGlyphH: 40, JoinDX: 6, MinConf: 0.3},
		SEICfg: sei.Config{
			Expand:         2,
			YTol:           4,
			FullSpanFrac:   0.9,
			TopTol:         6,
			OutwardMaxTail: 10,
			NameLexicon:    &ocr.Lexicon{Entries: []string{"clk", "data"}, MaxRatio: 0.34},
			ValueLexicon:   &ocr.Lexicon{Entries: []string{"0x00"}, MaxRatio: 0.34},
		},
	}
}

// TestConfigHashKnobSensitivity flips every knob that can influence a
// translation's output, one at a time, and requires each flip to move the
// hash: a stale artifact must never answer for a changed configuration.
func TestConfigHashKnobSensitivity(t *testing.T) {
	base := hashPipe().ConfigHash()
	if hashPipe().ConfigHash() != base {
		t.Fatal("ConfigHash not deterministic for identical configuration")
	}

	muts := map[string]func(p *Pipeline){
		"strict":             func(p *Pipeline) { p.Strict = !p.Strict },
		"lad.threshold":      func(p *Pipeline) { p.LADCfg.Threshold++ },
		"lad.vbridge":        func(p *Pipeline) { p.LADCfg.VBridge++ },
		"lad.vminlen":        func(p *Pipeline) { p.LADCfg.VMinLen++ },
		"lad.hbridge":        func(p *Pipeline) { p.LADCfg.HBridge++ },
		"lad.hminlen":        func(p *Pipeline) { p.LADCfg.HMinLen++ },
		"lad.maxthick":       func(p *Pipeline) { p.LADCfg.MaxThick++ },
		"sed.minplateaurun":  func(p *Pipeline) { p.SED.Cfg.MinPlateauRun++ },
		"sed.minheight":      func(p *Pipeline) { p.SED.Cfg.MinHeight++ },
		"sed.minarea":        func(p *Pipeline) { p.SED.Cfg.MinArea++ },
		"sed.bridgegap":      func(p *Pipeline) { p.SED.Cfg.BridgeGap++ },
		"sed.scorethreshold": func(p *Pipeline) { p.SED.Cfg.ScoreThreshold += 1e-12 },
		"sed.maxproposals":   func(p *Pipeline) { p.SED.Cfg.MaxProposals++ },
		"sed.weight":         func(p *Pipeline) { p.SED.Net.Weights[0][0] += 1e-15 },
		"sed.bias":           func(p *Pipeline) { p.SED.Net.Biases[1][0] += 1e-15 },
		"sed.layersizes":     func(p *Pipeline) { p.SED.Net.Sizes[1]++ },
		"ocr.minglyphh":      func(p *Pipeline) { p.OCRCfg.MinGlyphH++ },
		"ocr.maxglyphh":      func(p *Pipeline) { p.OCRCfg.MaxGlyphH++ },
		"ocr.joindx":         func(p *Pipeline) { p.OCRCfg.JoinDX++ },
		"ocr.minconf":        func(p *Pipeline) { p.OCRCfg.MinConf += 1e-12 },
		"ocr.template.grid":  func(p *Pipeline) { p.OCR.Templates['a'].Grid[2] += 1e-12 },
		"ocr.template.aspect": func(p *Pipeline) {
			p.OCR.Templates['b'].Aspect += 1e-12
		},
		"ocr.template.count": func(p *Pipeline) { p.OCR.Templates['b'].Count++ },
		"ocr.template.added": func(p *Pipeline) {
			p.OCR.Templates['c'] = &ocr.Template{Grid: []float64{1}, Aspect: 1, Count: 1}
		},
		"sei.expand":         func(p *Pipeline) { p.SEICfg.Expand++ },
		"sei.ytol":           func(p *Pipeline) { p.SEICfg.YTol++ },
		"sei.fullspanfrac":   func(p *Pipeline) { p.SEICfg.FullSpanFrac += 1e-12 },
		"sei.toptol":         func(p *Pipeline) { p.SEICfg.TopTol++ },
		"sei.outwardmaxtail": func(p *Pipeline) { p.SEICfg.OutwardMaxTail++ },
		"sei.namelexicon.entry": func(p *Pipeline) {
			p.SEICfg.NameLexicon.Entries[0] = "CLK"
		},
		"sei.namelexicon.maxratio": func(p *Pipeline) {
			p.SEICfg.NameLexicon.MaxRatio += 1e-12
		},
		"sei.valuelexicon.entry": func(p *Pipeline) {
			p.SEICfg.ValueLexicon.Entries = append(p.SEICfg.ValueLexicon.Entries, "0x01")
		},
		"sei.namelexicon.dropped": func(p *Pipeline) { p.SEICfg.NameLexicon = nil },
	}

	seen := map[store.Hash]string{base: "base"}
	for name, mut := range muts {
		p := hashPipe()
		mut(p)
		got := p.ConfigHash()
		if got == base {
			t.Errorf("%s: knob flip did not change the config hash", name)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("%s: hash collides with %s", name, prev)
		}
		seen[got] = name
	}
}

// TestConfigHashIgnoresNonSemanticFields pins the exclusions: observability
// and parallelism settings never change what a translation produces, so
// they must not split the cache.
func TestConfigHashIgnoresNonSemanticFields(t *testing.T) {
	base := hashPipe().ConfigHash()

	p := hashPipe()
	p.IntraWorkers = 7
	if p.ConfigHash() != base {
		t.Error("IntraWorkers changed the config hash")
	}

	p = hashPipe()
	p.Metrics = NewPipelineMetrics(metrics.NewRegistry())
	if p.ConfigHash() != base {
		t.Error("Metrics changed the config hash")
	}

	// Worker knobs inside stage configs are parallelism-only too.
	p = hashPipe()
	p.LADCfg.Workers = 9
	p.SED.Cfg.Workers = 9
	p.OCRCfg.Workers = 9
	if p.ConfigHash() != base {
		t.Error("stage Workers knobs changed the config hash")
	}
}
