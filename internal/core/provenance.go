package core

import (
	"fmt"

	"tdmagic/internal/geom"
	"tdmagic/internal/spo"
)

// NodeEvidence is one SPO node's provenance resolved to pixel rectangles:
// the regions of the input picture that produced the node. Nil fields mean
// the corresponding evidence was absent (a step edge has no threshold
// line; a synthesized S<n> signal name has no name text).
type NodeEvidence struct {
	EdgeBox       *geom.Rect `json:"edge_box,omitempty"`
	VLine         *geom.Rect `json:"vline,omitempty"`
	HLine         *geom.Rect `json:"hline,omitempty"`
	NameText      *geom.Rect `json:"name_text,omitempty"`
	ThresholdText *geom.Rect `json:"threshold_text,omitempty"`
}

// ConstraintEvidence is one SPO constraint's provenance resolved to pixel
// rectangles: the two anchoring vertical lines, the arrow shaft contours,
// and the timing-parameter text.
type ConstraintEvidence struct {
	SrcVLine  *geom.Rect  `json:"src_vline,omitempty"`
	DstVLine  *geom.Rect  `json:"dst_vline,omitempty"`
	Shaft     []geom.Rect `json:"shaft,omitempty"`
	LabelText *geom.Rect  `json:"label_text,omitempty"`
}

// ResolveProvenance maps the provenance indices an SPO carries back to the
// pixel rectangles of the perception report that produced it. It is the
// inverse direction of the pipeline: given a node or constraint in the
// formal specification, it answers "which detected boxes and contours is
// this claim based on?". An index outside the report's detector output is
// an internal-consistency error, never silently skipped — the provenance
// contract is that every non-negative ID resolves.
func ResolveProvenance(rep *Report, p *spo.SPO) ([]NodeEvidence, []ConstraintEvidence, error) {
	if rep == nil || p == nil {
		return nil, nil, fmt.Errorf("core: resolve provenance: nil report or SPO")
	}
	if len(p.NodeProv) != len(p.Nodes) {
		return nil, nil, fmt.Errorf("core: resolve provenance: %d nodes but %d provenance entries",
			len(p.Nodes), len(p.NodeProv))
	}
	if len(p.ConstraintProv) != len(p.Constraints) {
		return nil, nil, fmt.Errorf("core: resolve provenance: %d constraints but %d provenance entries",
			len(p.Constraints), len(p.ConstraintProv))
	}
	vline := func(i int) (*geom.Rect, error) {
		if i < 0 {
			return nil, nil
		}
		if rep.Lines == nil || i >= len(rep.Lines.V) {
			return nil, fmt.Errorf("vline index %d out of range", i)
		}
		r := rep.Lines.V[i].Seg.Rect()
		return &r, nil
	}
	hline := func(i int) (*geom.Rect, error) {
		if i < 0 {
			return nil, nil
		}
		if rep.Lines == nil || i >= len(rep.Lines.H) {
			return nil, fmt.Errorf("hline index %d out of range", i)
		}
		r := rep.Lines.H[i].Seg.Rect()
		return &r, nil
	}
	text := func(i int) (*geom.Rect, error) {
		if i < 0 {
			return nil, nil
		}
		if i >= len(rep.Texts) {
			return nil, fmt.Errorf("text index %d out of range", i)
		}
		r := rep.Texts[i].Box
		return &r, nil
	}

	nodes := make([]NodeEvidence, len(p.NodeProv))
	for ni, np := range p.NodeProv {
		var ev NodeEvidence
		var err error
		if np.EdgeBox >= 0 {
			if np.EdgeBox >= len(rep.Edges) {
				return nil, nil, fmt.Errorf("core: node %d: edge box index %d out of range", ni, np.EdgeBox)
			}
			r := rep.Edges[np.EdgeBox].Box
			ev.EdgeBox = &r
		}
		if ev.VLine, err = vline(np.VLine); err == nil {
			if ev.HLine, err = hline(np.HLine); err == nil {
				if ev.NameText, err = text(np.NameText); err == nil {
					ev.ThresholdText, err = text(np.ThresholdText)
				}
			}
		}
		if err != nil {
			return nil, nil, fmt.Errorf("core: node %d: %w", ni, err)
		}
		nodes[ni] = ev
	}

	cons := make([]ConstraintEvidence, len(p.ConstraintProv))
	for ci, cp := range p.ConstraintProv {
		var ev ConstraintEvidence
		var err error
		if ev.SrcVLine, err = vline(cp.SrcVLine); err == nil {
			if ev.DstVLine, err = vline(cp.DstVLine); err == nil {
				ev.LabelText, err = text(cp.LabelText)
			}
		}
		if err != nil {
			return nil, nil, fmt.Errorf("core: constraint %d: %w", ci, err)
		}
		for _, hi := range cp.HLines {
			r, err := hline(hi)
			if err != nil {
				return nil, nil, fmt.Errorf("core: constraint %d: %w", ci, err)
			}
			if r != nil {
				ev.Shaft = append(ev.Shaft, *r)
			}
		}
		cons[ci] = ev
	}
	return nodes, cons, nil
}
