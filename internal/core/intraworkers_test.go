package core

import (
	"runtime"
	"testing"
)

// TestIntraWorkersInvariance pins the IntraWorkers contract: the perception
// kernels are tiled, not approximated, so the serialised specification of
// every validation picture must be byte-identical for any worker count.
// Under `go test -race` this also exercises the concurrent V/H contour
// extraction and the tiled binarisation/labelling for data races.
func TestIntraWorkersInvariance(t *testing.T) {
	pipe, val := trainSmall(t)

	type ref struct {
		text  string
		diags int
		err   bool
	}
	base := make([]ref, len(val))
	pipe.IntraWorkers = 0
	for i, s := range val {
		got, rep, err := pipe.Translate(s.Image)
		base[i] = ref{err: err != nil}
		if err == nil {
			base[i].text = got.SpecText()
			base[i].diags = len(rep.Diags)
		}
	}

	defer func() { pipe.IntraWorkers = 0 }()
	for _, workers := range []int{1, 2, 7, runtime.GOMAXPROCS(0), -1} {
		pipe.IntraWorkers = workers
		for i, s := range val {
			got, rep, err := pipe.Translate(s.Image)
			if (err != nil) != base[i].err {
				t.Fatalf("workers=%d sample %d: err=%v, sequential err=%v", workers, i, err, base[i].err)
			}
			if err != nil {
				continue
			}
			if text := got.SpecText(); text != base[i].text {
				t.Errorf("workers=%d sample %d: serialised SPO differs from sequential:\n%s\n-- sequential --\n%s",
					workers, i, text, base[i].text)
			}
			if len(rep.Diags) != base[i].diags {
				t.Errorf("workers=%d sample %d: %d diags, sequential %d", workers, i, len(rep.Diags), base[i].diags)
			}
		}
	}
}
