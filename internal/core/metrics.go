package core

import (
	"context"
	"errors"
	"time"

	"tdmagic/internal/diag"
	"tdmagic/internal/metrics"
)

// PipelineMetrics bundles the translation-level counters every execution
// surface shares. The CLI, the batch path (TranslateAllCtx) and the
// tdserve worker pool all record into the same bundle, so "translations
// per second" or "p99 translate latency" mean the same thing whether they
// come from a tdeval run or a serving /metrics scrape.
//
// All fields are recorded atomically; a single bundle may be attached to a
// pipeline shared by many goroutines.
type PipelineMetrics struct {
	// Translations counts completed TranslateContext calls, successful or
	// not.
	Translations *metrics.Counter
	// Failures counts translations that returned an error (in graceful
	// mode that is almost always a context error; in strict mode it also
	// covers degraded inputs and interpretations).
	Failures *metrics.Counter
	// Timeouts counts translations cancelled by a deadline, a subset of
	// Failures.
	Timeouts *metrics.Counter
	// Panics counts batch items recovered from a panic (batch path only;
	// a direct TranslateContext call propagates panics).
	Panics *metrics.Counter
	// Diagnostics counts degradation diagnostics across all translations.
	Diagnostics *metrics.Counter
	// Latency is the wall-clock distribution of TranslateContext calls.
	Latency *metrics.Histogram
	// StageBinarize/StageLAD/StageSED/StageOCR/StageSEI are the per-stage
	// wall-clock distributions, exposed as one tdmagic_stage_seconds
	// histogram vector labelled
	// stage="binarize"|"lad"|"sed"|"ocr"|"sei". SED and OCR overlap, so
	// their sums can exceed tdmagic_translate_seconds.
	StageBinarize *metrics.Histogram
	StageLAD      *metrics.Histogram
	StageSED      *metrics.Histogram
	StageOCR      *metrics.Histogram
	StageSEI      *metrics.Histogram
	// IntraWorkers exports the pipeline's resolved intra-image worker
	// count, so a scrape can tell whether a deployment runs the kernels
	// tiled or sequentially.
	IntraWorkers *metrics.Gauge
}

// NewPipelineMetrics registers the translation metric bundle on reg under
// the tdmagic_ prefix and returns it.
func NewPipelineMetrics(reg *metrics.Registry) *PipelineMetrics {
	return &PipelineMetrics{
		Translations:  reg.Counter("tdmagic_translations_total", "completed translations"),
		Failures:      reg.Counter("tdmagic_translate_failures_total", "translations that returned an error"),
		Timeouts:      reg.Counter("tdmagic_translate_timeouts_total", "translations cancelled by a deadline"),
		Panics:        reg.Counter("tdmagic_translate_panics_total", "batch items recovered from a panic"),
		Diagnostics:   reg.Counter("tdmagic_translate_diags_total", "degradation diagnostics emitted"),
		Latency:       reg.Histogram("tdmagic_translate_seconds", "translation wall-clock latency", nil),
		StageBinarize: stageHistogram(reg, "binarize"),
		StageLAD:      stageHistogram(reg, "lad"),
		StageSED:      stageHistogram(reg, "sed"),
		StageOCR:      stageHistogram(reg, "ocr"),
		StageSEI:      stageHistogram(reg, "sei"),
		IntraWorkers:  reg.Gauge("tdmagic_intra_workers", "resolved intra-image worker count"),
	}
}

// stageHistogram registers one series of the tdmagic_stage_seconds vector.
func stageHistogram(reg *metrics.Registry, stage string) *metrics.Histogram {
	return reg.LabeledHistogram("tdmagic_stage_seconds", `stage="`+stage+`"`,
		"per-stage wall-clock latency", nil)
}

// observe records one finished translation. ref — the request ID when
// the translation ran under a trace, "" otherwise — becomes the latency
// histogram's bucket exemplar, linking a latency spike back to the
// flight-recorder entry that explains it.
func (m *PipelineMetrics) observe(d time.Duration, rep *Report, err error, ref string) {
	m.Translations.Inc()
	m.Latency.ObserveExemplar(d.Seconds(), ref)
	if err != nil {
		m.Failures.Inc()
		if errors.Is(err, context.DeadlineExceeded) {
			m.Timeouts.Inc()
		}
	}
	if rep != nil {
		m.Diagnostics.Add(int64(len(rep.Diags)))
	}
}

// observeBatchPanic records a recovered batch-item panic. The deferred
// observation in TranslateContext still ran while the panic unwound, but
// with a nil error — the recovery path is the only place that knows the
// item actually failed.
func (m *PipelineMetrics) observeBatchPanic() {
	m.Panics.Inc()
	m.Failures.Inc()
}

// diagStageError reports whether ds contains an error-severity diagnostic
// from the given stage; serving uses it to map refused inputs to client
// errors.
func diagStageError(ds []diag.Diagnostic, stage string) bool {
	for _, d := range ds {
		if d.Stage == stage && d.Severity == diag.Error {
			return true
		}
	}
	return false
}

// InputRefused reports whether rep records an up-front input refusal
// (nil/degenerate/oversized/uniform picture). In graceful mode such a
// translation "succeeds" with an empty SPO; a serving layer wants to
// surface it as a 4xx instead.
func InputRefused(rep *Report) bool {
	return rep != nil && diagStageError(rep.Diags, diag.StageInput)
}
