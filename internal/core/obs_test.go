package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"tdmagic/internal/metrics"
	"tdmagic/internal/obs"
)

// TestTraceSpans pins the trace a translation records: one root span with
// all four stage spans nested under it, each stage's interval contained in
// the root's. Durations are not summed against the parent because SED and
// OCR deliberately overlap.
func TestTraceSpans(t *testing.T) {
	pipe, val := trainSmall(t)
	tr := obs.NewTrace("test-req")
	ctx := obs.ContextWithTrace(context.Background(), tr)
	if _, _, err := pipe.TranslateContext(ctx, val[0].Image); err != nil {
		t.Fatal(err)
	}
	e := tr.Export()
	root := e.Span("translate")
	if root == nil {
		t.Fatal("no translate root span")
	}
	if root.Parent != 0 {
		t.Errorf("root span has parent %d", root.Parent)
	}
	for _, stage := range []string{"lad", "sed", "ocr", "sei"} {
		sp := e.Span(stage)
		if sp == nil {
			t.Errorf("missing %s span", stage)
			continue
		}
		if sp.Parent != root.ID {
			t.Errorf("%s span parent = %d, want root %d", stage, sp.Parent, root.ID)
		}
		if sp.StartNS < root.StartNS || sp.StartNS+sp.DurNS > root.StartNS+root.DurNS {
			t.Errorf("%s span [%d,%d] escapes root [%d,%d]",
				stage, sp.StartNS, sp.StartNS+sp.DurNS, root.StartNS, root.StartNS+root.DurNS)
		}
	}
	// Stage attributes carry the detector counts.
	var attrs []string
	for _, a := range e.Span("lad").Attrs {
		attrs = append(attrs, a.Key)
	}
	if !strings.Contains(strings.Join(attrs, ","), "v_contours") {
		t.Errorf("lad span missing contour-count attrs: %v", attrs)
	}
}

// TestDisabledTracingZeroAllocOnHotPath is the AllocsPerRun guard of the
// zero-alloc-when-disabled contract: it runs the exact obs call sequence
// the Translate hot path performs — root StartSpan, conditional context
// wrap, one nil-guarded span per stage with attribute records — on a
// context with no trace attached, and requires zero allocations. core's
// instrumentation uses explicit `if sp != nil` blocks instead of deferred
// closures precisely to keep this at zero; an allocating pattern slipped
// into the sequence fails here.
func TestDisabledTracingZeroAllocOnHotPath(t *testing.T) {
	ctx := context.Background()
	stages := [...]string{"lad", "sed", "ocr", "sei"}
	allocs := testing.AllocsPerRun(1000, func() {
		root := obs.StartSpan(ctx, "translate")
		if root != nil {
			ctx = obs.ContextWithSpan(ctx, root)
		}
		for _, stage := range stages {
			sp := obs.StartSpan(ctx, stage)
			if sp != nil {
				sp.Int("boxes", 0).Bool("error", false)
				sp.End()
			}
		}
		if root != nil {
			root.Int("diags", 0).Bool("error", false)
			root.End()
		}
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocated %.1f times per translation, want 0", allocs)
	}
}

// TestConcurrentTracedTranslations runs per-request traces against one
// shared Pipeline from many goroutines — the tdserve shape — and checks
// every trace collected its own complete span set. Chiefly meaningful
// under the race detector (ci.sh runs the suite with -race).
func TestConcurrentTracedTranslations(t *testing.T) {
	pipe, val := trainSmall(t)
	const workers = 4
	traces := make([]*obs.Trace, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr := obs.NewTrace(fmt.Sprintf("req-%d", w))
			traces[w] = tr
			ctx := obs.ContextWithTrace(context.Background(), tr)
			if _, _, err := pipe.TranslateContext(ctx, val[w%len(val)].Image); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	for w, tr := range traces {
		e := tr.Export()
		for _, stage := range []string{"translate", "lad", "sed", "ocr", "sei"} {
			if e.Span(stage) == nil {
				t.Errorf("worker %d trace missing %s span", w, stage)
			}
		}
	}
}

// TestProvenanceResolves pins the provenance contract on fixed-seed
// pictures: the SPO carries one provenance entry per node and constraint,
// every non-negative ID resolves to a box or contour that actually exists
// in the detector output, and the provenance survives a JSON round-trip.
func TestProvenanceResolves(t *testing.T) {
	pipe, val := trainSmall(t)
	resolvedNodes := 0
	for _, s := range val {
		got, rep, err := pipe.Translate(s.Image)
		if err != nil {
			continue
		}
		if len(got.NodeProv) != len(got.Nodes) {
			t.Fatalf("%s: %d nodes but %d provenance entries", s.Name, len(got.Nodes), len(got.NodeProv))
		}
		if len(got.ConstraintProv) != len(got.Constraints) {
			t.Fatalf("%s: %d constraints but %d provenance entries",
				s.Name, len(got.Constraints), len(got.ConstraintProv))
		}
		nodes, cons, err := ResolveProvenance(rep, got)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		for ni, ev := range nodes {
			if ev.EdgeBox == nil {
				continue
			}
			resolvedNodes++
			found := false
			for _, d := range rep.Edges {
				if d.Box == *ev.EdgeBox {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: node %d edge-box evidence %v is not a detector box", s.Name, ni, *ev.EdgeBox)
			}
			if ev.VLine == nil {
				t.Errorf("%s: node %d has an edge box but no event line", s.Name, ni)
			}
		}
		for ci, ev := range cons {
			if ev.SrcVLine == nil || ev.DstVLine == nil {
				t.Errorf("%s: constraint %d missing anchor vline evidence", s.Name, ci)
			}
		}
		// Provenance must survive the SPO's JSON serialization.
		data, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		back := got.Clone()
		back.NodeProv, back.ConstraintProv = nil, nil
		if err := json.Unmarshal(data, back); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back.NodeProv, got.NodeProv) ||
			!reflect.DeepEqual(back.ConstraintProv, got.ConstraintProv) {
			t.Errorf("%s: provenance did not survive JSON round-trip", s.Name)
		}
	}
	if resolvedNodes == 0 {
		t.Error("no node resolved to an edge box across the validation set")
	}
}

// TestStageMetrics checks the tdmagic_stage_seconds histogram vector
// records one observation per stage per translation.
func TestStageMetrics(t *testing.T) {
	pipe, val := trainSmall(t)
	reg := metrics.NewRegistry()
	m := NewPipelineMetrics(reg)
	withMetrics := *pipe
	withMetrics.Metrics = m
	if _, _, err := withMetrics.Translate(val[0].Image); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, stage := range []string{"lad", "sed", "ocr", "sei"} {
		want := fmt.Sprintf(`tdmagic_stage_seconds_count{stage=%q} 1`, stage)
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}
