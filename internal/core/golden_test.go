package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tdmagic/internal/imgproc"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden TranslateAll fixture")

// goldenPath is the recorded fixed-seed end-to-end output. It was captured
// on the reference []bool Binary implementation; the bit-packed kernels must
// reproduce it exactly (ISSUE 2 acceptance: repacking changes no output).
const goldenPath = "testdata/translate_all_golden.txt"

// goldenString renders the batch results of the fixed trainSmall validation
// set in a canonical text form: one block per picture with the SPO spec text
// (or the error), exactly as produced by TranslateAll.
func goldenString(results []BatchResult, names []string) string {
	var b strings.Builder
	for i, r := range results {
		fmt.Fprintf(&b, "== %s\n", names[i])
		if r.Err != nil {
			fmt.Fprintf(&b, "ERR %v\n", r.Err)
			continue
		}
		b.WriteString(r.SPO.SpecText())
	}
	return b.String()
}

// TestTranslateAllGolden pins the full fixed-seed pipeline output: training
// on 40 seed-100 pictures, translating the 6 seed-300 validation pictures.
// Any semantic drift in binarisation, morphology, proposal, OCR or SEI shows
// up as a diff against the recorded fixture.
func TestTranslateAllGolden(t *testing.T) {
	pipe, val := trainSmall(t)
	imgs := make([]*imgproc.Gray, len(val))
	names := make([]string, len(val))
	for i, s := range val {
		imgs[i] = s.Image
		names[i] = s.Name
	}
	got := goldenString(pipe.TranslateAll(imgs, 0), names)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated (%d bytes)", len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden fixture missing (run with -update to record): %v", err)
	}
	if got != string(want) {
		t.Errorf("TranslateAll output drifted from golden fixture:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
