package core

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"tdmagic/internal/dataset"
	"tdmagic/internal/geom"
	"tdmagic/internal/imgproc"
	"tdmagic/internal/ocr"
	"tdmagic/internal/sed"
	"tdmagic/internal/spo"
	"tdmagic/internal/tdgen"
)

// trainSmall trains a small pipeline once per test binary.
var smallPipe *Pipeline

func trainSmall(t *testing.T) (*Pipeline, []*dataset.Sample) {
	t.Helper()
	g := tdgen.New(tdgen.DefaultConfig(tdgen.G1), rand.New(rand.NewSource(300)))
	val, err := g.GenerateN(6)
	if err != nil {
		t.Fatal(err)
	}
	if smallPipe != nil {
		return smallPipe, val
	}
	gt := tdgen.New(tdgen.DefaultConfig(tdgen.G1), rand.New(rand.NewSource(100)))
	train, err := gt.GenerateN(40)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := Train(rand.New(rand.NewSource(1)), train, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	smallPipe = pipe
	return pipe, val
}

func TestTrainRequiresSamples(t *testing.T) {
	if _, err := Train(rand.New(rand.NewSource(1)), nil, DefaultTrainConfig()); err == nil {
		t.Error("empty training set accepted")
	}
}

func TestTranslateEndToEnd(t *testing.T) {
	pipe, val := trainSmall(t)
	okTemplate := 0
	for _, s := range val {
		got, rep, err := pipe.Translate(s.Image)
		if err != nil {
			t.Logf("%s: %v", s.Name, err)
			continue
		}
		if rep == nil || rep.Lines == nil {
			t.Fatal("report missing")
		}
		if err := got.Validate(); err != nil {
			t.Errorf("%s: emitted invalid SPO: %v", s.Name, err)
		}
		if got.TemplateEqual(s.Truth) {
			okTemplate++
		}
	}
	if okTemplate < 4 {
		t.Errorf("template-level success %d/6 on synthetic validation", okTemplate)
	}
}

func TestTranslateWithOracleEdges(t *testing.T) {
	pipe, val := trainSmall(t)
	ok := 0
	for _, s := range val {
		got, _, err := pipe.TranslateWithEdges(s.Image, OracleEdges(s))
		if err != nil {
			continue
		}
		if got.TemplateEqual(s.Truth) {
			ok++
		}
	}
	if ok < 5 {
		t.Errorf("oracle template-level success %d/6", ok)
	}
}

func TestOracleEdges(t *testing.T) {
	_, val := trainSmall(t)
	s := val[0]
	dets := OracleEdges(s)
	if len(dets) != len(s.Edges) {
		t.Fatalf("oracle edges %d != %d", len(dets), len(s.Edges))
	}
	for i, d := range dets {
		if d.Box != s.Edges[i].Box || d.Type != s.Edges[i].Type || d.Score != 1 {
			t.Error("oracle edge mismatch")
		}
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	pipe, val := trainSmall(t)
	var buf bytes.Buffer
	if err := pipe.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Same translation result on a sample.
	s := val[0]
	a, _, errA := pipe.Translate(s.Image)
	b, _, errB := loaded.Translate(s.Image)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("error mismatch: %v vs %v", errA, errB)
	}
	if errA == nil && !a.TotalEqual(b) {
		t.Error("loaded pipeline translates differently")
	}
}

func TestSaveLoadLexicon(t *testing.T) {
	g := tdgen.New(tdgen.DefaultConfig(tdgen.G1), rand.New(rand.NewSource(100)))
	train, err := g.GenerateN(6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig()
	cfg.SEDTrain.Epochs = 2
	cfg.NameLexicon = []string{"CLK", "EN"}
	pipe, err := Train(rand.New(rand.NewSource(1)), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pipe.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.SEICfg.NameLexicon == nil || len(loaded.SEICfg.NameLexicon.Entries) != 2 {
		t.Error("lexicon not round-tripped")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("junk accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	pipe, _ := trainSmall(t)
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := pipe.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRenderOverlay(t *testing.T) {
	pipe, val := trainSmall(t)
	s := val[0]
	_, rep, err := pipe.Translate(s.Image)
	if err != nil {
		t.Skip("translation failed on this sample")
	}
	overlay := RenderOverlay(s.Image, rep)
	if overlay.Rect.Dx() != s.Image.W || overlay.Rect.Dy() != s.Image.H {
		t.Fatalf("overlay size %v", overlay.Rect)
	}
	// Overlay must contain coloured pixels where detections were drawn.
	coloured := 0
	for y := 0; y < s.Image.H; y++ {
		for x := 0; x < s.Image.W; x++ {
			c := overlay.RGBAAt(x, y)
			if c.R != c.G || c.G != c.B {
				coloured++
			}
		}
	}
	if coloured == 0 {
		t.Error("overlay has no coloured annotation pixels")
	}
	// Nil report: plain grayscale copy, no panic.
	plain := RenderOverlay(s.Image, nil)
	if plain.RGBAAt(0, 0).A != 255 {
		t.Error("plain overlay alpha wrong")
	}
}

func TestTranslateAllMatchesSequential(t *testing.T) {
	pipe, val := trainSmall(t)
	imgs := make([]*imgproc.Gray, len(val))
	for i, s := range val {
		imgs[i] = s.Image
	}
	batch := pipe.TranslateAll(imgs, 3)
	if len(batch) != len(val) {
		t.Fatalf("batch size %d", len(batch))
	}
	for i, r := range batch {
		if r.Index != i {
			t.Errorf("result %d has index %d", i, r.Index)
		}
		seq, _, seqErr := pipe.Translate(imgs[i])
		if (r.Err == nil) != (seqErr == nil) {
			t.Errorf("sample %d: err mismatch %v vs %v", i, r.Err, seqErr)
			continue
		}
		if r.Err == nil && !r.SPO.TotalEqual(seq) {
			t.Errorf("sample %d: concurrent result differs from sequential", i)
		}
	}
	// Degenerate worker counts.
	if got := pipe.TranslateAll(imgs[:1], 0); len(got) != 1 {
		t.Error("workers=0 wrong")
	}
	if got := pipe.TranslateAll(nil, 4); len(got) != 0 {
		t.Error("empty batch wrong")
	}
}

func TestDropTextOverlaps(t *testing.T) {
	texts := []ocr.Result{
		{Box: geom.Rect{X0: 100, Y0: 100, X1: 130, Y1: 115}, Text: "CLK"},
	}
	dets := []sed.Detection{
		// High IoU with the text box: dropped.
		{Box: geom.Rect{X0: 101, Y0: 101, X1: 129, Y1: 114}, Type: spo.RiseRamp},
		// Inside the text box expanded by 2 px but low IoU: dropped.
		{Box: geom.Rect{X0: 124, Y0: 102, X1: 131, Y1: 112}, Type: spo.Double},
		// Far away: kept.
		{Box: geom.Rect{X0: 300, Y0: 100, X1: 320, Y1: 140}, Type: spo.FallStep},
		// Adjacent but outside the expanded box with negligible IoU: kept.
		{Box: geom.Rect{X0: 133, Y0: 100, X1: 160, Y1: 140}, Type: spo.RiseStep},
	}
	got := dropTextOverlaps(append([]sed.Detection(nil), dets...), texts)
	if len(got) != 2 {
		t.Fatalf("kept %d detections, want 2: %v", len(got), got)
	}
	if got[0].Type != spo.FallStep || got[1].Type != spo.RiseStep {
		t.Errorf("wrong detections kept: %v", got)
	}
	// Degenerate inputs pass through untouched.
	if out := dropTextOverlaps(nil, texts); len(out) != 0 {
		t.Error("nil dets not passed through")
	}
	keep := []sed.Detection{dets[0]}
	if out := dropTextOverlaps(keep, nil); len(out) != 1 {
		t.Error("no-text case must keep everything")
	}
}
