package core

import (
	"image"
	"image/color"

	"tdmagic/internal/geom"
	"tdmagic/internal/imgproc"
)

// Overlay colours, matching the paper's Sec. VI examples: detected edge
// boxes in grey, V-lines in blue (like the recognised texts), H-lines in
// red, arrows in green.
var (
	overlayEdge  = color.RGBA{R: 128, G: 128, B: 128, A: 255}
	overlayText  = color.RGBA{R: 40, G: 80, B: 220, A: 255}
	overlayVLine = color.RGBA{R: 40, G: 80, B: 220, A: 255}
	overlayHLine = color.RGBA{R: 220, G: 40, B: 40, A: 255}
	overlayArrow = color.RGBA{R: 30, G: 160, B: 60, A: 255}
)

// RenderOverlay draws a translation report on top of the analysed picture,
// in the colour scheme of the paper's extrapolation examples (Figs. 6-7):
// detected edge boxes, text boxes, classified V-/H-lines and arrows.
func RenderOverlay(img *imgproc.Gray, rep *Report) *image.RGBA {
	w, h := img.W, img.H
	out := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g := img.At(x, y)
			out.SetRGBA(x, y, color.RGBA{R: g, G: g, B: g, A: 255})
		}
	}
	if rep == nil {
		return out
	}
	for _, d := range rep.Edges {
		drawRect(out, d.Box, overlayEdge)
	}
	for _, t := range rep.Texts {
		drawRect(out, t.Box.Expand(1, 1), overlayText)
	}
	if rep.SEI != nil {
		for _, v := range rep.SEI.VLines {
			drawVSeg(out, v, overlayVLine)
		}
		for _, hl := range rep.SEI.HLines {
			drawHSeg(out, hl, overlayHLine)
		}
		for _, a := range rep.SEI.Arrows {
			drawHSeg(out, geom.HSeg{Y: a.Y, X0: a.X0, X1: a.X1}, overlayArrow)
			drawVSeg(out, geom.VSeg{X: a.X0, Y0: a.Y - 4, Y1: a.Y + 4}, overlayArrow)
			drawVSeg(out, geom.VSeg{X: a.X1, Y0: a.Y - 4, Y1: a.Y + 4}, overlayArrow)
		}
	}
	return out
}

func drawRect(img *image.RGBA, r geom.Rect, c color.RGBA) {
	for x := r.X0; x <= r.X1; x++ {
		setPx(img, x, r.Y0, c)
		setPx(img, x, r.Y1, c)
	}
	for y := r.Y0; y <= r.Y1; y++ {
		setPx(img, r.X0, y, c)
		setPx(img, r.X1, y, c)
	}
}

func drawVSeg(img *image.RGBA, s geom.VSeg, c color.RGBA) {
	for y := s.Y0; y <= s.Y1; y++ {
		setPx(img, s.X, y, c)
	}
}

func drawHSeg(img *image.RGBA, s geom.HSeg, c color.RGBA) {
	for x := s.X0; x <= s.X1; x++ {
		setPx(img, x, s.Y, c)
	}
}

func setPx(img *image.RGBA, x, y int, c color.RGBA) {
	if image.Pt(x, y).In(img.Rect) {
		img.SetRGBA(x, y, c)
	}
}
