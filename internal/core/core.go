// Package core wires the TD-Magic pipeline together: binarisation, LAD
// contour detection, SED edge detection, OCR text reading, and SEI semantic
// interpretation, turning a bitmap timing diagram into its SPO formal
// specification (paper Fig. 2).
package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"tdmagic/internal/dataset"
	"tdmagic/internal/diag"
	"tdmagic/internal/geom"
	"tdmagic/internal/imgproc"
	"tdmagic/internal/lad"
	"tdmagic/internal/obs"
	"tdmagic/internal/ocr"
	"tdmagic/internal/parallel"
	"tdmagic/internal/sed"
	"tdmagic/internal/sei"
	"tdmagic/internal/spo"
)

// Pipeline is a trained TD-Magic instance.
//
// A Pipeline is safe for concurrent use: once trained (or loaded), every
// translation entry point — Translate, TranslateContext, TranslateAll,
// TranslateAllCtx, TranslateWithEdges, Analyze — only reads the model
// state, and the per-call scratch buffers in the SED and OCR models are
// pooled per goroutine (sync.Pool), so one shared instance serves any
// number of concurrent callers. This is the contract the tdserve worker
// pool and the batch path rely on; TestConcurrentTranslateShared pins it
// under the race detector. The mutable knobs (Strict, Metrics,
// IntraWorkers) must be set before the pipeline is shared.
type Pipeline struct {
	SED    *sed.Model
	OCR    *ocr.Model
	LADCfg lad.Config
	OCRCfg ocr.DetectConfig
	SEICfg sei.Config
	// Strict restores fail-fast behaviour: degenerate inputs and
	// non-partial-order interpretations return errors instead of partial
	// results with diagnostics. The oracle experiments set it so
	// structural failures stay visible as failures.
	Strict bool
	// Metrics, when non-nil, records every translation's outcome and
	// latency. The same bundle is shared by the CLI, the batch path and
	// tdserve, so their counters are directly comparable. Set it before
	// the pipeline is shared between goroutines; recording itself is
	// atomic and concurrency-safe.
	Metrics *PipelineMetrics
	// IntraWorkers tiles the perception kernels (binarisation, morphology
	// smears, component labelling) across goroutines *within* one picture:
	// 0 or 1 translates sequentially, < 0 uses every core, > 1 uses that
	// many goroutines. Output is bit-identical for any value. Interactive
	// single-image callers should set it negative to saturate the machine;
	// batch surfaces that already run one picture per worker (tdserve,
	// tdeval, TranslateAll) should leave it at 0 — inner and outer
	// parallelism multiply. Like the other knobs it must be set before the
	// pipeline is shared.
	IntraWorkers int
}

// intraWorkers resolves the IntraWorkers knob to a concrete worker count.
func (p *Pipeline) intraWorkers() int {
	if p.IntraWorkers == 0 {
		return 1
	}
	return parallel.Resolve(p.IntraWorkers)
}

// Report exposes every intermediate result of a translation, for
// evaluation, debugging and rendering.
type Report struct {
	Lines *lad.Result
	Edges []sed.Detection
	Texts []ocr.Result
	SEI   *sei.Output
	// Diags records every degradation the translation worked around:
	// refused degenerate inputs, repaired interpretations, suspicious
	// stage outputs. Empty on a clean run.
	Diags []diag.Diagnostic
}

// MaxPixels bounds the accepted picture area (width x height). Larger
// inputs are refused up front: the morphology and proposal stages are
// sized for document scans, and an adversarially huge bitmap must not be
// able to stall a batch or exhaust memory.
const MaxPixels = 1 << 26 // 67 Mpx, ~8192 x 8192

// minDimension is the smallest width/height that can plausibly contain a
// timing diagram; anything thinner is refused as degenerate.
const minDimension = 8

// validateInput screens a picture before any stage runs. It returns nil
// when the picture is translatable, otherwise the diagnostics explaining
// the refusal.
func validateInput(img *imgproc.Gray) []diag.Diagnostic {
	switch {
	case img == nil:
		return []diag.Diagnostic{diag.New(diag.StageInput, diag.Error, "nil image")}
	case img.W <= 0 || img.H <= 0:
		return []diag.Diagnostic{diag.New(diag.StageInput, diag.Error, "empty %dx%d image", img.W, img.H)}
	case img.W < minDimension || img.H < minDimension:
		return []diag.Diagnostic{diag.New(diag.StageInput, diag.Error,
			"degenerate %dx%d image: both dimensions must be at least %d", img.W, img.H, minDimension)}
	case img.W*img.H > MaxPixels:
		return []diag.Diagnostic{diag.New(diag.StageInput, diag.Error,
			"oversized %dx%d image exceeds the %d-pixel limit", img.W, img.H, MaxPixels)}
	}
	// A uniform picture (all paper or all ink) has no contrast to
	// binarise; Otsu would split noise-free nothing.
	uniform := true
	for _, v := range img.Pix {
		if v != img.Pix[0] {
			uniform = false
			break
		}
	}
	if uniform {
		return []diag.Diagnostic{diag.New(diag.StageInput, diag.Error,
			"uniform image (every pixel %d): no ink/paper contrast", img.Pix[0])}
	}
	return nil
}

// TrainConfig bundles the training knobs of both learned modules.
type TrainConfig struct {
	SEDCfg       sed.Config
	SEDTrain     sed.TrainConfig
	OCRCfg       ocr.DetectConfig
	LADCfg       lad.Config
	SEICfg       sei.Config
	NameLexicon  []string // optional signal-name dictionary for SEI
	ValueLexicon []string // optional signal-value dictionary for SEI
	// Workers fans the data-parallel training stages (per-picture
	// featurisation, minibatch gradients) out over this many goroutines
	// (<= 0 means GOMAXPROCS). The trained pipeline is bit-identical for
	// any worker count.
	Workers int
}

// DefaultTrainConfig returns the configuration used in the experiments.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		SEDCfg:   sed.DefaultConfig(),
		SEDTrain: sed.DefaultTrainConfig(),
		OCRCfg:   ocr.DefaultDetectConfig(),
		LADCfg:   lad.DefaultConfig(),
		SEICfg:   sei.DefaultConfig(),
	}
}

// Train fits a pipeline on labelled synthetic samples: the SED classifier
// is trained from scratch, and the OCR glyph templates are refined from the
// samples' text crops. Each sample is binarised exactly once (in parallel)
// and the packed image is shared between the two trainers — SED and OCR
// previously each ran their own Otsu pass over every picture.
func Train(rng *rand.Rand, samples []*dataset.Sample, cfg TrainConfig) (*Pipeline, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: no training samples")
	}
	if cfg.SEDTrain.Workers == 0 {
		cfg.SEDTrain.Workers = cfg.Workers
	}
	bws := make([]*imgproc.Binary, len(samples))
	parallel.For(cfg.Workers, len(samples), func(i int) {
		img := samples[i].Image
		bws[i] = imgproc.Threshold(img, imgproc.OtsuThreshold(img))
	})
	sedModel, err := sed.Train(rng, samples, bws, cfg.SEDCfg, cfg.SEDTrain)
	if err != nil {
		return nil, fmt.Errorf("core: SED training: %w", err)
	}
	ocrModel := ocr.NewFontModel()
	ocrModel.Train(samples, bws)
	seiCfg := cfg.SEICfg
	if len(cfg.NameLexicon) > 0 {
		seiCfg.NameLexicon = ocr.NewLexicon(cfg.NameLexicon)
	}
	if len(cfg.ValueLexicon) > 0 {
		seiCfg.ValueLexicon = ocr.NewLexicon(cfg.ValueLexicon)
	}
	return &Pipeline{
		SED:    sedModel,
		OCR:    ocrModel,
		LADCfg: cfg.LADCfg,
		OCRCfg: cfg.OCRCfg,
		SEICfg: seiCfg,
	}, nil
}

// Translate converts a timing-diagram picture into its SPO. Unless
// p.Strict is set, a degenerate input or a repaired interpretation
// returns a best-effort (possibly empty) SPO with the degradations
// recorded in Report.Diags rather than an error.
func (p *Pipeline) Translate(img *imgproc.Gray) (*spo.SPO, *Report, error) {
	return p.TranslateContext(context.Background(), img)
}

// TranslateContext is Translate under a context: the perception stages
// check ctx cooperatively, so a deadline or cancellation stops the
// translation within one stage pass and surfaces as ctx's error.
func (p *Pipeline) TranslateContext(ctx context.Context, img *imgproc.Gray) (out *spo.SPO, rep *Report, err error) {
	if p.Metrics != nil {
		p.Metrics.IntraWorkers.Set(int64(p.intraWorkers()))
		ref := obs.RequestIDFrom(ctx) // "" when tracing is disabled: plain observe
		start := time.Now()
		defer func() {
			p.Metrics.observe(time.Since(start), rep, err, ref)
		}()
	}
	return p.translateContext(ctx, img)
}

// translateContext is TranslateContext without the metrics wrapper. When
// ctx carries an obs trace (or span) it records a "translate" root span
// with the four stage spans nested under it; with no trace attached the
// instrumentation is allocation-free (sp stays nil and every obs call
// no-ops). The explicit `if sp != nil` blocks — rather than deferred
// closures — are what keep the disabled path at zero allocations.
func (p *Pipeline) translateContext(ctx context.Context, img *imgproc.Gray) (*spo.SPO, *Report, error) {
	sp := obs.StartSpan(ctx, "translate")
	if ds := validateInput(img); ds != nil {
		if sp != nil {
			sp.Bool("refused", true).Int("diags", int64(len(ds)))
			sp.End()
		}
		rep := &Report{Diags: ds}
		if p.Strict {
			return nil, rep, fmt.Errorf("core: %s", ds[0].Message)
		}
		return &spo.SPO{}, rep, nil
	}
	if sp != nil {
		sp.Int("width", int64(img.W)).Int("height", int64(img.H))
		ctx = obs.ContextWithSpan(ctx, sp)
	}
	rep, err := p.analyzeStagesCtx(ctx, img, true)
	if err != nil {
		if sp != nil {
			sp.Bool("error", true)
			sp.End()
		}
		return nil, rep, err
	}
	out, rep, err := p.interpret(ctx, img, rep, rep.Edges)
	if sp != nil {
		sp.Int("diags", int64(len(rep.Diags))).Bool("error", err != nil)
		sp.End()
	}
	return out, rep, err
}

// TranslateWithEdges runs LAD + OCR + SEI with externally supplied edge
// boxes (e.g. ground truth, for oracle experiments and ablations).
func (p *Pipeline) TranslateWithEdges(img *imgproc.Gray, edges []sed.Detection) (*spo.SPO, *Report, error) {
	if ds := validateInput(img); ds != nil {
		rep := &Report{Diags: ds}
		if p.Strict {
			return nil, rep, fmt.Errorf("core: %s", ds[0].Message)
		}
		return &spo.SPO{}, rep, nil
	}
	// The supplied edges replace SED's output wholesale, so the detector
	// stage is skipped entirely.
	rep, err := p.analyzeStagesCtx(context.Background(), img, false)
	if err != nil {
		return nil, rep, err
	}
	rep.Edges = edges
	return p.interpret(context.Background(), img, rep, edges)
}

// interpret runs SEI over a perception report and threads the semantic
// diagnostics onto it.
func (p *Pipeline) interpret(ctx context.Context, img *imgproc.Gray, rep *Report, edges []sed.Detection) (*spo.SPO, *Report, error) {
	sp := obs.StartSpan(ctx, "sei")
	t0 := time.Now()
	cfg := p.SEICfg
	cfg.Strict = p.Strict
	out, err := sei.Interpret(sei.Input{
		Width:  img.W,
		Height: img.H,
		Edges:  edges,
		Lines:  rep.Lines,
		Texts:  rep.Texts,
	}, cfg)
	if p.Metrics != nil {
		p.Metrics.StageSEI.Observe(time.Since(t0).Seconds())
	}
	if err != nil {
		if sp != nil {
			sp.Bool("error", true)
			sp.End()
		}
		return nil, rep, err
	}
	if sp != nil {
		sp.Int("events", int64(len(out.Events))).
			Int("nodes", int64(len(out.SPO.Nodes))).
			Int("constraints", int64(len(out.SPO.Constraints))).
			Int("diags", int64(len(out.Diags)))
		sp.End()
	}
	rep.SEI = out
	rep.Diags = append(rep.Diags, out.Diags...)
	return out.SPO, rep, nil
}

// Analyze runs only the perception stages (binarisation, LAD, SED, OCR) on
// img, without semantic interpretation. It is the unit the perception
// micro-benchmarks measure and is also useful for debugging tools that want
// the intermediate report without an SPO.
func (p *Pipeline) Analyze(img *imgproc.Gray) *Report {
	rep, _ := p.analyzeStagesCtx(context.Background(), img, true)
	return rep
}

// analyzeStagesCtx binarises the picture, runs LAD, then SED and OCR
// concurrently. The picture is binarised exactly once here in core — its
// own "binarize" span and stage metric, tiled over intraWorkers goroutines
// — and both LAD and the downstream stages read the shared packed image
// (and the contour result) without mutating either, so they are free to
// overlap; the text/edge cross-check runs after the join and the report is
// bit-identical to the sequential order. Edge detections that coincide
// with recognised text are discarded: a glyph like the signal name "X" is
// itself a small double-ramp shape, and only the cross-check against OCR
// separates the two readings.
//
// Every stage checks ctx cooperatively; the first stage error (only ever
// a context error) aborts the translation.
func (p *Pipeline) analyzeStagesCtx(ctx context.Context, img *imgproc.Gray, runSED bool) (*Report, error) {
	w := p.intraWorkers()
	spBin := obs.StartSpan(ctx, "binarize")
	t0 := time.Now()
	thr := p.LADCfg.Threshold
	if thr == 0 {
		thr = imgproc.OtsuThresholdW(img, w)
	}
	bw := imgproc.ThresholdW(img, thr, w)
	if p.Metrics != nil {
		p.Metrics.StageBinarize.Observe(time.Since(t0).Seconds())
	}
	if spBin != nil {
		spBin.Int("threshold", int64(thr))
		spBin.End()
	}
	if err := ctx.Err(); err != nil {
		return &Report{}, err
	}
	spLAD := obs.StartSpan(ctx, "lad")
	t0 = time.Now()
	ladCfg := p.LADCfg
	ladCfg.Workers = w
	lines, err := lad.DetectBinaryCtx(ctx, bw, ladCfg)
	if p.Metrics != nil {
		p.Metrics.StageLAD.Observe(time.Since(t0).Seconds())
	}
	if err != nil {
		if spLAD != nil {
			spLAD.Bool("error", true)
			spLAD.End()
		}
		return &Report{}, err
	}
	if spLAD != nil {
		spLAD.Int("v_contours", int64(len(lines.V))).Int("h_contours", int64(len(lines.H)))
		spLAD.End()
	}
	rep := &Report{Lines: lines}
	if frac := float64(lines.BW.Count()) / float64(img.W*img.H); frac > 0.5 {
		rep.Diags = append(rep.Diags, diag.New(diag.StageLAD, diag.Warning,
			"%.0f%% of the picture binarised to ink: saturated or inverted scan", 100*frac))
	}
	runSED = runSED && p.SED != nil
	var edges []sed.Detection
	var sedErr error
	var wg sync.WaitGroup
	if runSED {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// SED runs concurrently with OCR; its span is a sibling of
			// OCR's under the same parent, recorded goroutine-safely.
			sp := obs.StartSpan(ctx, "sed")
			t0 := time.Now()
			edges, sedErr = p.SED.DetectCtxW(ctx, img, lines, w)
			if p.Metrics != nil {
				p.Metrics.StageSED.Observe(time.Since(t0).Seconds())
			}
			if sp != nil {
				sp.Int("edge_boxes", int64(len(edges))).Bool("error", sedErr != nil)
				sp.End()
			}
		}()
	}
	if p.OCR != nil {
		sp := obs.StartSpan(ctx, "ocr")
		t0 := time.Now()
		ocrCfg := p.OCRCfg
		ocrCfg.Workers = w
		texts, ocrErr := p.OCR.ReadAllCtx(ctx, lines.BW, lines, ocrCfg)
		if p.Metrics != nil {
			p.Metrics.StageOCR.Observe(time.Since(t0).Seconds())
		}
		if sp != nil {
			sp.Int("text_boxes", int64(len(texts))).Bool("error", ocrErr != nil)
			sp.End()
		}
		if ocrErr != nil {
			if runSED {
				wg.Wait()
			}
			return rep, ocrErr
		}
		rep.Texts = texts
	}
	if runSED {
		wg.Wait()
		if sedErr != nil {
			return rep, sedErr
		}
		rep.Edges = dropTextOverlaps(edges, rep.Texts)
	}
	return rep, nil
}

// dropTextOverlaps filters edge detections that coincide with recognised
// text: IoU >= 0.4 with a text box, or containment in the text box expanded
// by 2 px. The expanded boxes are computed once up front rather than inside
// the O(edges × texts) scan. Filtering is in place; the returned slice
// reuses dets' backing array.
func dropTextOverlaps(dets []sed.Detection, texts []ocr.Result) []sed.Detection {
	if len(dets) == 0 || len(texts) == 0 {
		return dets
	}
	expanded := make([]geom.Rect, len(texts))
	for i, t := range texts {
		expanded[i] = t.Box.Expand(2, 2)
	}
	kept := dets[:0]
	for _, d := range dets {
		isText := false
		for i, t := range texts {
			if d.Box.IoU(t.Box) >= 0.4 || expanded[i].Contains(d.Box) {
				isText = true
				break
			}
		}
		if !isText {
			kept = append(kept, d)
		}
	}
	return kept
}

// OracleEdges converts ground-truth edge boxes into detections, for oracle
// experiments.
func OracleEdges(s *dataset.Sample) []sed.Detection {
	dets := make([]sed.Detection, 0, len(s.Edges))
	for _, e := range s.Edges {
		dets = append(dets, sed.Detection{Box: e.Box, Type: e.Type, Score: 1})
	}
	return dets
}
