// Package core wires the TD-Magic pipeline together: binarisation, LAD
// contour detection, SED edge detection, OCR text reading, and SEI semantic
// interpretation, turning a bitmap timing diagram into its SPO formal
// specification (paper Fig. 2).
package core

import (
	"fmt"
	"math/rand"
	"sync"

	"tdmagic/internal/dataset"
	"tdmagic/internal/geom"
	"tdmagic/internal/imgproc"
	"tdmagic/internal/lad"
	"tdmagic/internal/ocr"
	"tdmagic/internal/parallel"
	"tdmagic/internal/sed"
	"tdmagic/internal/sei"
	"tdmagic/internal/spo"
)

// Pipeline is a trained TD-Magic instance.
type Pipeline struct {
	SED    *sed.Model
	OCR    *ocr.Model
	LADCfg lad.Config
	OCRCfg ocr.DetectConfig
	SEICfg sei.Config
}

// Report exposes every intermediate result of a translation, for
// evaluation, debugging and rendering.
type Report struct {
	Lines *lad.Result
	Edges []sed.Detection
	Texts []ocr.Result
	SEI   *sei.Output
}

// TrainConfig bundles the training knobs of both learned modules.
type TrainConfig struct {
	SEDCfg       sed.Config
	SEDTrain     sed.TrainConfig
	OCRCfg       ocr.DetectConfig
	LADCfg       lad.Config
	SEICfg       sei.Config
	NameLexicon  []string // optional signal-name dictionary for SEI
	ValueLexicon []string // optional signal-value dictionary for SEI
	// Workers fans the data-parallel training stages (per-picture
	// featurisation, minibatch gradients) out over this many goroutines
	// (<= 0 means GOMAXPROCS). The trained pipeline is bit-identical for
	// any worker count.
	Workers int
}

// DefaultTrainConfig returns the configuration used in the experiments.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		SEDCfg:   sed.DefaultConfig(),
		SEDTrain: sed.DefaultTrainConfig(),
		OCRCfg:   ocr.DefaultDetectConfig(),
		LADCfg:   lad.DefaultConfig(),
		SEICfg:   sei.DefaultConfig(),
	}
}

// Train fits a pipeline on labelled synthetic samples: the SED classifier
// is trained from scratch, and the OCR glyph templates are refined from the
// samples' text crops. Each sample is binarised exactly once (in parallel)
// and the packed image is shared between the two trainers — SED and OCR
// previously each ran their own Otsu pass over every picture.
func Train(rng *rand.Rand, samples []*dataset.Sample, cfg TrainConfig) (*Pipeline, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: no training samples")
	}
	if cfg.SEDTrain.Workers == 0 {
		cfg.SEDTrain.Workers = cfg.Workers
	}
	bws := make([]*imgproc.Binary, len(samples))
	parallel.For(cfg.Workers, len(samples), func(i int) {
		img := samples[i].Image
		bws[i] = imgproc.Threshold(img, imgproc.OtsuThreshold(img))
	})
	sedModel, err := sed.Train(rng, samples, bws, cfg.SEDCfg, cfg.SEDTrain)
	if err != nil {
		return nil, fmt.Errorf("core: SED training: %w", err)
	}
	ocrModel := ocr.NewFontModel()
	ocrModel.Train(samples, bws)
	seiCfg := cfg.SEICfg
	if len(cfg.NameLexicon) > 0 {
		seiCfg.NameLexicon = ocr.NewLexicon(cfg.NameLexicon)
	}
	if len(cfg.ValueLexicon) > 0 {
		seiCfg.ValueLexicon = ocr.NewLexicon(cfg.ValueLexicon)
	}
	return &Pipeline{
		SED:    sedModel,
		OCR:    ocrModel,
		LADCfg: cfg.LADCfg,
		OCRCfg: cfg.OCRCfg,
		SEICfg: seiCfg,
	}, nil
}

// Translate converts a timing-diagram picture into its SPO.
func (p *Pipeline) Translate(img *imgproc.Gray) (*spo.SPO, *Report, error) {
	rep := p.analyze(img)
	out, err := sei.Interpret(sei.Input{
		Width:  img.W,
		Height: img.H,
		Edges:  rep.Edges,
		Lines:  rep.Lines,
		Texts:  rep.Texts,
	}, p.SEICfg)
	if err != nil {
		return nil, rep, err
	}
	rep.SEI = out
	return out.SPO, rep, nil
}

// TranslateWithEdges runs LAD + OCR + SEI with externally supplied edge
// boxes (e.g. ground truth, for oracle experiments and ablations).
func (p *Pipeline) TranslateWithEdges(img *imgproc.Gray, edges []sed.Detection) (*spo.SPO, *Report, error) {
	// The supplied edges replace SED's output wholesale, so the detector
	// stage is skipped entirely.
	rep := p.analyzeStages(img, false)
	rep.Edges = edges
	out, err := sei.Interpret(sei.Input{
		Width:  img.W,
		Height: img.H,
		Edges:  edges,
		Lines:  rep.Lines,
		Texts:  rep.Texts,
	}, p.SEICfg)
	if err != nil {
		return nil, rep, err
	}
	rep.SEI = out
	return out.SPO, rep, nil
}

// Analyze runs only the perception stages (binarisation, LAD, SED, OCR) on
// img, without semantic interpretation. It is the unit the perception
// micro-benchmarks measure and is also useful for debugging tools that want
// the intermediate report without an SPO.
func (p *Pipeline) Analyze(img *imgproc.Gray) *Report { return p.analyze(img) }

// analyze runs the perception stages shared by every translation mode.
// Edge detections that coincide with recognised text are discarded: a
// glyph like the signal name "X" is itself a small double-ramp shape, and
// only the cross-check against OCR separates the two readings.
func (p *Pipeline) analyze(img *imgproc.Gray) *Report {
	return p.analyzeStages(img, true)
}

// analyzeStages runs LAD, then SED and OCR concurrently. The picture is
// binarised once inside lad.Detect and both downstream stages read the
// shared packed image (and the contour result) without mutating either, so
// they are free to overlap; the text/edge cross-check runs after the join
// and the report is bit-identical to the sequential order.
func (p *Pipeline) analyzeStages(img *imgproc.Gray, runSED bool) *Report {
	lines := lad.Detect(img, p.LADCfg)
	rep := &Report{Lines: lines}
	runSED = runSED && p.SED != nil
	var edges []sed.Detection
	var wg sync.WaitGroup
	if runSED {
		wg.Add(1)
		go func() {
			defer wg.Done()
			edges = p.SED.Detect(img, lines)
		}()
	}
	if p.OCR != nil {
		rep.Texts = p.OCR.ReadAll(lines.BW, lines, p.OCRCfg)
	}
	if runSED {
		wg.Wait()
		rep.Edges = dropTextOverlaps(edges, rep.Texts)
	}
	return rep
}

// dropTextOverlaps filters edge detections that coincide with recognised
// text: IoU >= 0.4 with a text box, or containment in the text box expanded
// by 2 px. The expanded boxes are computed once up front rather than inside
// the O(edges × texts) scan. Filtering is in place; the returned slice
// reuses dets' backing array.
func dropTextOverlaps(dets []sed.Detection, texts []ocr.Result) []sed.Detection {
	if len(dets) == 0 || len(texts) == 0 {
		return dets
	}
	expanded := make([]geom.Rect, len(texts))
	for i, t := range texts {
		expanded[i] = t.Box.Expand(2, 2)
	}
	kept := dets[:0]
	for _, d := range dets {
		isText := false
		for i, t := range texts {
			if d.Box.IoU(t.Box) >= 0.4 || expanded[i].Contains(d.Box) {
				isText = true
				break
			}
		}
		if !isText {
			kept = append(kept, d)
		}
	}
	return kept
}

// OracleEdges converts ground-truth edge boxes into detections, for oracle
// experiments.
func OracleEdges(s *dataset.Sample) []sed.Detection {
	dets := make([]sed.Detection, 0, len(s.Edges))
	for _, e := range s.Edges {
		dets = append(dets, sed.Detection{Box: e.Box, Type: e.Type, Score: 1})
	}
	return dets
}
