package core

import (
	"strings"
	"testing"

	"tdmagic/internal/diag"
	"tdmagic/internal/imgproc"
)

// degenerateInputs is the pathological-input corpus: each must be
// refused by validation with a structured diagnostic — before any
// perception stage runs — so even a bare untrained pipeline survives.
func degenerateInputs() map[string]*imgproc.Gray {
	white := imgproc.NewGray(64, 64)
	for i := range white.Pix {
		white.Pix[i] = 255
	}
	return map[string]*imgproc.Gray{
		"nil":       nil,
		"0x0":       imgproc.NewGray(0, 0),
		"1x1":       imgproc.NewGray(1, 1),
		"row":       imgproc.NewGray(256, 1),
		"col":       imgproc.NewGray(1, 256),
		"all-white": white,
		"all-black": imgproc.NewGray(64, 64),
	}
}

func TestTranslateDegenerateGraceful(t *testing.T) {
	// Validation short-circuits before the learned stages, so an
	// untrained pipeline demonstrates no stage is ever reached.
	pipe := &Pipeline{}
	for name, img := range degenerateInputs() {
		t.Run(name, func(t *testing.T) {
			got, rep, err := pipe.Translate(img)
			if err != nil {
				t.Fatalf("graceful mode returned error: %v", err)
			}
			if got == nil || len(got.Nodes) != 0 {
				t.Errorf("expected empty SPO, got %+v", got)
			}
			if rep == nil || len(rep.Diags) == 0 {
				t.Fatal("no diagnostics on the report")
			}
			d := rep.Diags[0]
			if d.Stage != diag.StageInput || d.Severity != diag.Error {
				t.Errorf("diag = %+v, want input-stage error", d)
			}
		})
	}
}

func TestTranslateDegenerateStrict(t *testing.T) {
	pipe := &Pipeline{Strict: true}
	for name, img := range degenerateInputs() {
		t.Run(name, func(t *testing.T) {
			_, rep, err := pipe.Translate(img)
			if err == nil {
				t.Fatal("strict mode accepted degenerate input")
			}
			if !strings.HasPrefix(err.Error(), "core: ") {
				t.Errorf("error %q lacks the core: prefix", err)
			}
			if rep == nil || len(rep.Diags) == 0 {
				t.Error("strict refusal carries no diagnostics")
			}
		})
	}
}

func TestTranslateOversized(t *testing.T) {
	// A pixel buffer over MaxPixels must be refused without allocating
	// stage buffers. (MaxPixels/8+1) x 8 keeps the test's own allocation
	// to ~64 MiB while exercising the area check.
	w := MaxPixels/8 + 1
	img := &imgproc.Gray{W: w, H: 8, Pix: make([]uint8, w*8)}
	pipe := &Pipeline{}
	_, rep, err := pipe.Translate(img)
	if err != nil {
		t.Fatalf("graceful mode returned error: %v", err)
	}
	if len(rep.Diags) == 0 || !strings.Contains(rep.Diags[0].Message, "oversized") {
		t.Errorf("diags = %+v, want oversized refusal", rep.Diags)
	}
}

func TestBatchDegenerateMix(t *testing.T) {
	// Degenerate pictures inside a batch must not poison their
	// neighbours, trained pipeline or not.
	pipe, val := trainSmall(t)
	imgs := []*imgproc.Gray{val[0].Image, imgproc.NewGray(2, 2), val[1].Image, nil}
	results := pipe.TranslateAll(imgs, 2)
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Errorf("healthy picture %d failed: %v", i, results[i].Err)
		}
	}
	for _, i := range []int{1, 3} {
		r := results[i]
		if r.Err != nil {
			t.Errorf("degenerate picture %d hard-failed in graceful mode: %v", i, r.Err)
		}
		if r.Rep == nil || len(r.Rep.Diags) == 0 {
			t.Errorf("degenerate picture %d carries no diagnostics", i)
		}
	}
}
