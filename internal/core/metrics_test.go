package core

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"tdmagic/internal/imgproc"
	"tdmagic/internal/metrics"
)

// TestPipelineMetricsRecording verifies the shared metric bundle sees every
// translation surface: direct Translate calls, batch items, recovered
// panics and deadline cancellations all land in the same counters.
func TestPipelineMetricsRecording(t *testing.T) {
	pipe, val := trainSmall(t)
	reg := metrics.NewRegistry()
	pipe.Metrics = NewPipelineMetrics(reg)
	defer func() { pipe.Metrics = nil }()

	// Two direct translations.
	for _, s := range val[:2] {
		if _, _, err := pipe.Translate(s.Image); err != nil {
			t.Fatal(err)
		}
	}
	if got := pipe.Metrics.Translations.Value(); got != 2 {
		t.Errorf("translations = %d, want 2", got)
	}
	if got := pipe.Metrics.Latency.Count(); got != 2 {
		t.Errorf("latency count = %d, want 2", got)
	}

	// A batch over the same pictures adds to the same counters.
	imgs := []*imgproc.Gray{val[0].Image, val[1].Image}
	pipe.TranslateAll(imgs, 2)
	if got := pipe.Metrics.Translations.Value(); got != 4 {
		t.Errorf("translations after batch = %d, want 4", got)
	}

	// A recovered batch panic counts as panic + failure.
	batchHook = func(index int) { panic("boom") }
	res := pipe.TranslateAllCtx(context.Background(), imgs[:1], BatchOptions{Workers: 1})
	batchHook = nil
	if res[0].Err == nil {
		t.Fatal("panic not surfaced")
	}
	if got := pipe.Metrics.Panics.Value(); got != 1 {
		t.Errorf("panics = %d, want 1", got)
	}
	if got := pipe.Metrics.Failures.Value(); got != 1 {
		t.Errorf("failures = %d, want 1", got)
	}

	// A stalled item past its deadline counts as timeout + failure.
	batchHook = func(index int) { time.Sleep(50 * time.Millisecond) }
	res = pipe.TranslateAllCtx(context.Background(), imgs[:1],
		BatchOptions{Workers: 1, Timeout: time.Millisecond})
	batchHook = nil
	if res[0].Err == nil {
		t.Fatal("deadline not surfaced")
	}
	if got := pipe.Metrics.Timeouts.Value(); got != 1 {
		t.Errorf("timeouts = %d, want 1", got)
	}

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"tdmagic_translations_total",
		"tdmagic_translate_seconds_bucket",
		"tdmagic_translate_panics_total 1",
		"tdmagic_translate_timeouts_total 1",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestInputRefused distinguishes refused inputs from clean reports.
func TestInputRefused(t *testing.T) {
	pipe, val := trainSmall(t)
	_, rep, err := pipe.Translate(imgproc.NewGray(2, 2))
	if err != nil {
		t.Fatalf("graceful mode returned error: %v", err)
	}
	if !InputRefused(rep) {
		t.Error("degenerate input not flagged as refused")
	}
	_, rep, err = pipe.Translate(val[0].Image)
	if err != nil {
		t.Fatal(err)
	}
	if InputRefused(rep) {
		t.Error("clean translation flagged as refused")
	}
}
