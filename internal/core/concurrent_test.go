package core

import (
	"sync"
	"testing"

	"tdmagic/internal/spo"
)

// TestConcurrentTranslateShared pins the serving precondition: one trained
// Pipeline instance must serve many goroutines calling Translate at once.
// Under `go test -race` this exercises the sync.Pool inference scratch in
// sed and ocr (per-goroutine buffer reuse) and the stage-concurrent
// SED ∥ OCR analyze path, and the results must be identical to a
// sequential run of the same pictures.
func TestConcurrentTranslateShared(t *testing.T) {
	pipe, val := trainSmall(t)

	// Sequential reference, one result per picture.
	type ref struct {
		spo *spo.SPO
		err error
	}
	refs := make([]ref, len(val))
	for i, s := range val {
		got, _, err := pipe.Translate(s.Image)
		refs[i] = ref{got, err}
	}

	const goroutines = 8
	const rounds = 3
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Stagger the picture order per goroutine so different
				// goroutines hit the same model on different inputs
				// simultaneously.
				for k := 0; k < len(val); k++ {
					i := (k + g) % len(val)
					got, rep, err := pipe.Translate(val[i].Image)
					if (err == nil) != (refs[i].err == nil) {
						t.Errorf("goroutine %d sample %d: err %v, sequential %v", g, i, err, refs[i].err)
						continue
					}
					if err != nil {
						continue
					}
					if rep == nil || rep.Lines == nil {
						t.Errorf("goroutine %d sample %d: missing report", g, i)
						continue
					}
					if !got.TotalEqual(refs[i].spo) {
						t.Errorf("goroutine %d sample %d: concurrent result differs from sequential", g, i)
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
