// Verification orchestration: the shared picture → spec → runtime
// verification path behind both `tdmagic -verify` and tdserve's
// POST /v1/verify. The caller supplies a compiled monitor.Spec (usually
// from a translated SPO plus datasheet delay bounds) and a VCD dump; the
// dump is streamed through the incremental monitor, never materialized,
// so verification memory is bounded by the spec, not the dump.
package core

import (
	"context"
	"io"
	"time"

	"tdmagic/internal/ltl"
	"tdmagic/internal/metrics"
	"tdmagic/internal/monitor"
	"tdmagic/internal/obs"
	"tdmagic/internal/sva"
	"tdmagic/internal/vcd"
)

// VerifyMetrics bundles the tdverify_* series shared by every verification
// surface: verdict counts by outcome, streamed trace bytes, and the
// end-to-end monitor latency distribution.
type VerifyMetrics struct {
	VerdictPass *metrics.Counter
	VerdictFail *metrics.Counter
	TraceBytes  *metrics.Counter
	Latency     *metrics.Histogram
}

// NewVerifyMetrics registers the verification metric bundle on reg under
// the tdverify_ prefix and returns it.
func NewVerifyMetrics(reg *metrics.Registry) *VerifyMetrics {
	return &VerifyMetrics{
		VerdictPass: reg.LabeledCounter("tdverify_verdicts_total", `outcome="pass"`, "constraint verdicts by outcome"),
		VerdictFail: reg.LabeledCounter("tdverify_verdicts_total", `outcome="violation"`, "constraint verdicts by outcome"),
		TraceBytes:  reg.Counter("tdverify_trace_bytes_total", "VCD bytes streamed through the monitor"),
		Latency:     reg.Histogram("tdverify_check_seconds", "wall-clock verification latency (compile+parse+check)", nil),
	}
}

// VerifyOutcome is the complete result of one verification run.
type VerifyOutcome struct {
	// Result is the whole-run outcome, identical to monitor.Check over the
	// materialized trace.
	Result *monitor.Result
	// Verdicts holds every constraint's verdict in constraint order (the
	// same verdicts streamed to emit, re-ordered).
	Verdicts []monitor.Verdict
	// LTL and SVA are the compiled property texts for the specification.
	LTL string
	SVA string
	// TraceBytes counts the VCD bytes consumed.
	TraceBytes int64
}

// CompileProperties renders the specification's LTL formula and SVA
// property text — the compiled forms the verify endpoints return next to
// the runtime verdicts.
func CompileProperties(ctx context.Context, spec *monitor.Spec) (ltlText, svaText string, err error) {
	sp := obs.StartSpan(ctx, "verify.compile")
	defer sp.End()
	if ltlText, err = ltl.Formula(spec.SPO, spec.Delays); err != nil {
		return "", "", err
	}
	if svaText, err = sva.Export(spec.SPO, spec.Delays, sva.Options{}); err != nil {
		return "", "", err
	}
	return ltlText, svaText, nil
}

// Verify compiles the specification's property texts and streams the VCD
// document through the incremental monitor. emit, if non-nil, receives
// each constraint verdict as soon as it is final — before the dump has
// finished parsing when the endpoints resolve early. The context is
// checked between decode events, so deadlines cut long dumps off. m may
// be nil.
func Verify(ctx context.Context, spec *monitor.Spec, dump io.Reader, emit func(monitor.Verdict), m *VerifyMetrics) (*VerifyOutcome, error) {
	sp := obs.StartSpan(ctx, "verify")
	defer sp.End()
	ctx = obs.ContextWithSpan(ctx, sp)
	ltlText, svaText, err := CompileProperties(ctx, spec)
	if err != nil {
		return nil, err
	}
	out, err := VerifyStream(ctx, spec, dump, emit, m)
	if err != nil {
		return nil, err
	}
	out.LTL, out.SVA = ltlText, svaText
	return out, nil
}

// VerifyStream runs only the parse+check stage of Verify: the dump streams
// through the incremental monitor under the context's deadline. The
// returned outcome has empty LTL/SVA — callers that already compiled the
// properties (to write a response header before streaming verdicts) use
// this entry point.
func VerifyStream(ctx context.Context, spec *monitor.Spec, dump io.Reader, emit func(monitor.Verdict), m *VerifyMetrics) (*VerifyOutcome, error) {
	start := time.Now()
	out := &VerifyOutcome{}
	spk := obs.StartSpan(ctx, "verify.check")
	checker, err := monitor.NewStream(spec, emit)
	if err != nil {
		spk.End()
		return nil, err
	}
	sink := &ctxSink{ctx: ctx, s: checker, sp: spk}
	dec := vcd.NewDecoder(dump, sink)
	sink.bytes = dec.Bytes
	err = dec.Run()
	out.TraceBytes = dec.Bytes()
	if m != nil {
		m.TraceBytes.Add(out.TraceBytes)
	}
	if err != nil {
		spk.End()
		return nil, err
	}
	if out.Result, err = checker.Finish(); err != nil {
		spk.End()
		return nil, err
	}
	spk.Int("trace_bytes", out.TraceBytes).
		Int("resident", int64(checker.MaxResident())).
		Int("violations", int64(len(out.Result.Violations)))
	spk.End()

	out.Verdicts = monitor.ResultVerdicts(spec, out.Result)
	if m != nil {
		for _, v := range out.Verdicts {
			if v.Pass {
				m.VerdictPass.Inc()
			} else {
				m.VerdictFail.Inc()
			}
		}
		m.Latency.ObserveExemplar(time.Since(start).Seconds(), obs.RequestIDFrom(ctx))
	}
	return out, nil
}

// VerifyProgressInterval is the decode-event stride between progress
// span events on a traced verification: every this many value changes,
// the "verify.check" span gains a "progress" event carrying the event
// count and the dump byte offset, so a long check's advance is visible
// in the flight recorder while it runs.
const VerifyProgressInterval = 8192

// ctxSink forwards decoder events to the stream checker, surfacing
// context cancellation between events so a request deadline terminates
// the decode of an arbitrarily long dump, and — when the check runs
// under a trace — recording periodic progress events with byte offsets.
type ctxSink struct {
	ctx   context.Context
	s     *monitor.StreamChecker
	sp    *obs.Span    // "verify.check"; nil when tracing is disabled
	bytes func() int64 // decoder byte offset, wired after construction
	n     int
}

func (c *ctxSink) Declare(name string, binary bool) int {
	return c.s.Declare(name, binary)
}

func (c *ctxSink) Change(h int, t, v float64) error {
	if c.n++; c.n&1023 == 0 {
		if err := c.ctx.Err(); err != nil {
			return err
		}
		// The nil guard keeps the untraced path free of the variadic
		// argument allocation Event would otherwise force.
		if c.sp != nil && c.n%VerifyProgressInterval == 0 {
			c.sp.Event("progress", obs.I("events", int64(c.n)), obs.I("bytes", c.bytes()))
		}
	}
	return c.s.Change(h, t, v)
}
