package core

import (
	"runtime"
	"sync"

	"tdmagic/internal/imgproc"
	"tdmagic/internal/spo"
)

// BatchResult is one picture's outcome in a batch translation.
type BatchResult struct {
	Index int
	SPO   *spo.SPO
	Rep   *Report
	Err   error
}

// TranslateAll translates many pictures concurrently, fanning the work out
// over workers goroutines (default: GOMAXPROCS). The pipeline is
// read-only during translation, so a single trained instance serves all
// workers. Results are returned in input order.
func (p *Pipeline) TranslateAll(imgs []*imgproc.Gray, workers int) []BatchResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(imgs) {
		workers = len(imgs)
	}
	results := make([]BatchResult, len(imgs))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				s, rep, err := p.Translate(imgs[i])
				results[i] = BatchResult{Index: i, SPO: s, Rep: rep, Err: err}
			}
		}()
	}
	for i := range imgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}
