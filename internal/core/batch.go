package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"tdmagic/internal/imgproc"
	"tdmagic/internal/spo"
)

// BatchResult is one picture's outcome in a batch translation.
type BatchResult struct {
	Index int
	SPO   *spo.SPO
	Rep   *Report
	Err   error
}

// BatchOptions configures a batch translation.
type BatchOptions struct {
	// Workers is the fan-out width (<= 0 means GOMAXPROCS).
	Workers int
	// Timeout is the per-picture deadline; a translation that exceeds it
	// is cancelled cooperatively and returns context.DeadlineExceeded in
	// its BatchResult.Err. Zero means no deadline.
	Timeout time.Duration
}

// batchHook, when non-nil, runs at the start of every item translation.
// It exists purely as a fault-injection seam for the panic-recovery
// regression tests.
var batchHook func(index int)

// TranslateAll translates many pictures concurrently, fanning the work out
// over workers goroutines (default: GOMAXPROCS). The pipeline is
// read-only during translation, so a single trained instance serves all
// workers. Results are returned in input order.
func (p *Pipeline) TranslateAll(imgs []*imgproc.Gray, workers int) []BatchResult {
	return p.TranslateAllCtx(context.Background(), imgs, BatchOptions{Workers: workers})
}

// TranslateAllCtx is TranslateAll with per-item fault isolation: a panic
// inside one picture's translation is recovered into that picture's
// BatchResult.Err (with the stack), and opts.Timeout bounds each
// picture's wall-clock via cooperative cancellation in the perception
// stages — one pathological picture can neither hang nor kill the batch.
// Cancelling ctx stops the whole batch; unstarted items report ctx's
// error.
func (p *Pipeline) TranslateAllCtx(ctx context.Context, imgs []*imgproc.Gray, opts BatchOptions) []BatchResult {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(imgs) {
		workers = len(imgs)
	}
	results := make([]BatchResult, len(imgs))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = p.translateItem(ctx, i, imgs[i], opts.Timeout)
			}
		}()
	}
	for i := range imgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// translateItem runs one batch item under its deadline and panic guard.
func (p *Pipeline) translateItem(ctx context.Context, i int, img *imgproc.Gray, timeout time.Duration) (res BatchResult) {
	res = BatchResult{Index: i}
	defer func() {
		if r := recover(); r != nil {
			res.SPO, res.Rep = nil, nil
			res.Err = fmt.Errorf("core: translate panicked: %v\n%s", r, debug.Stack())
			if p.Metrics != nil {
				p.Metrics.observeBatchPanic()
			}
		}
	}()
	itemCtx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		itemCtx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if batchHook != nil {
		batchHook(i)
	}
	res.SPO, res.Rep, res.Err = p.TranslateContext(itemCtx, img)
	return res
}
