package diag

import (
	"encoding/json"
	"testing"

	"tdmagic/internal/geom"
)

func TestSeverityText(t *testing.T) {
	for sev, want := range map[Severity]string{Info: "info", Warning: "warning", Error: "error"} {
		if sev.String() != want {
			t.Errorf("%d.String() = %q, want %q", sev, sev.String(), want)
		}
		b, err := json.Marshal(sev)
		if err != nil || string(b) != `"`+want+`"` {
			t.Errorf("marshal %v = %s (%v)", sev, b, err)
		}
		var back Severity
		if err := json.Unmarshal(b, &back); err != nil || back != sev {
			t.Errorf("unmarshal %s = %v (%v), want %v", b, back, err, sev)
		}
	}
	var s Severity
	if err := s.UnmarshalText([]byte("catastrophic")); err == nil {
		t.Error("unknown severity accepted")
	}
}

func TestConstructors(t *testing.T) {
	d := New(StageOCR, Warning, "confidence %0.2f below floor", 0.25)
	if d.Stage != StageOCR || d.Severity != Warning || d.HasLocation {
		t.Errorf("New produced %+v", d)
	}
	if d.Message != "confidence 0.25 below floor" {
		t.Errorf("message = %q", d.Message)
	}
	loc := geom.Rect{X0: 1, Y0: 2, X1: 3, Y1: 4}
	a := At(StageSEI, Error, loc, "bad arrow")
	if !a.HasLocation || a.Location != loc {
		t.Errorf("At produced %+v", a)
	}
}

func TestWorst(t *testing.T) {
	if Worst(nil) != Info {
		t.Error("Worst(nil) != Info")
	}
	ds := []Diagnostic{
		New(StageLAD, Info, "a"),
		New(StageSEI, Error, "b"),
		New(StageOCR, Warning, "c"),
	}
	if Worst(ds) != Error {
		t.Errorf("Worst = %v, want Error", Worst(ds))
	}
}
