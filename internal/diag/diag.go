// Package diag defines the structured diagnostics the pipeline emits when
// it degrades gracefully instead of failing hard: every stage that has to
// drop, repair or refuse part of its input records what happened, at which
// severity, and where in the picture. Diagnostics ride on core.Report so
// batch evaluation, the CLI and the robustness sweep can all see exactly
// how a translation was compromised without losing the partial result.
package diag

import (
	"fmt"

	"tdmagic/internal/geom"
)

// Severity grades a diagnostic.
type Severity int

const (
	// Info records a benign observation (e.g. an empty stage output).
	Info Severity = iota
	// Warning marks a degradation the pipeline worked around; the result
	// is best-effort but structurally valid.
	Warning
	// Error marks a failure that made part of the result unusable (the
	// rest of the translation still completed).
	Error
)

// String returns the lowercase severity name.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// MarshalText encodes the severity as its name, keeping JSON reports
// readable and byte-stable.
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText decodes a severity name, so JSON diagnostics round-trip
// (the tdserve client payloads rely on this).
func (s *Severity) UnmarshalText(text []byte) error {
	switch string(text) {
	case "info":
		*s = Info
	case "warning":
		*s = Warning
	case "error":
		*s = Error
	default:
		return fmt.Errorf("diag: unknown severity %q", text)
	}
	return nil
}

// Pipeline stage names used in diagnostics.
const (
	StageInput = "input" // up-front picture validation
	StageLAD   = "lad"   // line-and-arrow detection
	StageSED   = "sed"   // signal-edge detection
	StageOCR   = "ocr"   // text reading
	StageSEI   = "sei"   // semantic interpretation
	StageBatch = "batch" // batch-level recovery (panic, deadline)
)

// Diagnostic is one structured degradation record.
type Diagnostic struct {
	// Stage names the pipeline stage that emitted the record (the Stage*
	// constants).
	Stage string
	// Severity grades how much of the result was compromised.
	Severity Severity
	// Message is a human-readable description of the degradation.
	Message string
	// Location is the affected picture region, when one is known; the
	// zero rectangle means the whole picture.
	Location geom.Rect
	// HasLocation distinguishes a deliberate (0,0,0,0) region from "no
	// location recorded".
	HasLocation bool
}

// String renders the diagnostic as "stage/severity: message [@rect]".
func (d Diagnostic) String() string {
	if d.HasLocation {
		return fmt.Sprintf("%s/%s: %s @%v", d.Stage, d.Severity, d.Message, d.Location)
	}
	return fmt.Sprintf("%s/%s: %s", d.Stage, d.Severity, d.Message)
}

// New builds a diagnostic without a location.
func New(stage string, sev Severity, format string, args ...any) Diagnostic {
	return Diagnostic{Stage: stage, Severity: sev, Message: fmt.Sprintf(format, args...)}
}

// At builds a diagnostic anchored to a picture region.
func At(stage string, sev Severity, loc geom.Rect, format string, args ...any) Diagnostic {
	return Diagnostic{Stage: stage, Severity: sev, Message: fmt.Sprintf(format, args...), Location: loc, HasLocation: true}
}

// Worst returns the highest severity present, or Info for an empty slice.
func Worst(ds []Diagnostic) Severity {
	worst := Info
	for _, d := range ds {
		if d.Severity > worst {
			worst = d.Severity
		}
	}
	return worst
}
