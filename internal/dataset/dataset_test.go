package dataset

import (
	"testing"

	"tdmagic/internal/geom"
	"tdmagic/internal/imgproc"
	"tdmagic/internal/spo"
)

func mkSample(name string) *Sample {
	img := imgproc.NewGray(40, 30)
	img.Set(5, 5, 0)
	truth := &spo.SPO{}
	a := truth.AddNode(spo.Node{Signal: "X", EdgeIndex: 1, Type: spo.RiseStep})
	b := truth.AddNode(spo.Node{Signal: "Y", EdgeIndex: 1, Type: spo.RiseRamp, Threshold: "90%"})
	_ = truth.AddConstraint(a, b, "t_{1}")
	return &Sample{
		Name:   name,
		Image:  img,
		Edges:  []EdgeBox{{Box: geom.Rect{X0: 1, Y0: 2, X1: 5, Y1: 9}, Type: spo.RiseStep, Signal: 0}},
		Texts:  []TextBox{{Box: geom.Rect{X0: 0, Y0: 0, X1: 9, Y1: 5}, Text: "t_{1}", Role: RoleTimeConstraint}},
		VLines: []geom.VSeg{{X: 3, Y0: 2, Y1: 20}},
		HLines: []geom.HSeg{{Y: 6, X0: 0, X1: 12}},
		Arrows: []Arrow{{Y: 15, X0: 3, X1: 30, Label: "t_{1}"}},
		Truth:  truth,
	}
}

func TestTextRoleString(t *testing.T) {
	if RoleSignalName.String() != "Signal Name" ||
		RoleSignalValue.String() != "Signal Value" ||
		RoleTimeConstraint.String() != "Time Constraint" {
		t.Error("role names wrong")
	}
	if TextRole(9).String() == "" {
		t.Error("unknown role empty")
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := mkSample("test-01")
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir, "test-01")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != s.Name {
		t.Error("name lost")
	}
	if got.Image.W != 40 || got.Image.At(5, 5) != 0 {
		t.Error("image lost")
	}
	if len(got.Edges) != 1 || got.Edges[0] != s.Edges[0] {
		t.Error("edges lost")
	}
	if len(got.Texts) != 1 || got.Texts[0] != s.Texts[0] {
		t.Error("texts lost")
	}
	if len(got.VLines) != 1 || len(got.HLines) != 1 || len(got.Arrows) != 1 {
		t.Error("lines/arrows lost")
	}
	if !got.Truth.TotalEqual(s.Truth) {
		t.Error("SPO lost")
	}
}

func TestSaveRequiresName(t *testing.T) {
	s := mkSample("")
	if err := s.Save(t.TempDir()); err == nil {
		t.Error("nameless save accepted")
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load(t.TempDir(), "nope"); err == nil {
		t.Error("missing sample loaded")
	}
}

func TestSplit(t *testing.T) {
	samples := make([]*Sample, 10)
	for i := range samples {
		samples[i] = mkSample("s")
	}
	train, val := Split(samples, 2)
	if len(val) != 2 || len(train) != 8 {
		t.Errorf("split = %d/%d", len(train), len(val))
	}
	train, val = Split(samples, 0)
	if len(val) != 0 || len(train) != 10 {
		t.Error("zero-val split wrong")
	}
	train, val = Split(samples, 20)
	if len(train) != 0 || len(val) != 10 {
		t.Error("oversized val split wrong")
	}
	train, val = Split(nil, 3)
	if train != nil && len(train) != 0 {
		t.Error("empty split wrong")
	}
	_ = val
}

func TestCountEdgeTypes(t *testing.T) {
	s := mkSample("a")
	s.Edges = append(s.Edges, EdgeBox{Type: spo.FallRamp}, EdgeBox{Type: spo.RiseStep})
	counts := CountEdgeTypes([]*Sample{s})
	if counts[spo.RiseStep] != 2 || counts[spo.FallRamp] != 1 {
		t.Errorf("counts = %v", counts)
	}
}
