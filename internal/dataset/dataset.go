// Package dataset defines the labelled-sample model shared by the synthetic
// generator (L-TD-G), the industrial-style corpus, the trainers and the
// evaluation harness: a rendered timing-diagram image together with its
// ground truth — typed edge boxes, role-tagged text boxes, annotation lines,
// arrows, and the reference SPO.
package dataset

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"tdmagic/internal/geom"
	"tdmagic/internal/imgproc"
	"tdmagic/internal/spo"
)

// EdgeBox is a ground-truth signal-edge bounding box (what SED must find).
type EdgeBox struct {
	Box    geom.Rect
	Type   spo.EdgeType
	Signal int // index of the signal the edge belongs to
}

// TextRole classifies a text annotation, following the three categories the
// paper scores separately in Table III.
type TextRole int

// Text roles. Thresholds and boundary values both annotate signal levels and
// are scored as signal values.
const (
	RoleSignalName TextRole = iota
	RoleSignalValue
	RoleTimeConstraint
)

// String returns the Table III row name of the role.
func (r TextRole) String() string {
	switch r {
	case RoleSignalName:
		return "Signal Name"
	case RoleSignalValue:
		return "Signal Value"
	case RoleTimeConstraint:
		return "Time Constraint"
	default:
		return fmt.Sprintf("TextRole(%d)", int(r))
	}
}

// TextBox is a ground-truth text annotation (what OCR must read). Text uses
// the internal/font rich markup, e.g. "t_{D(on)}".
type TextBox struct {
	Box  geom.Rect
	Text string
	Role TextRole
}

// Arrow is a ground-truth double-headed timing-constraint arrow between two
// vertical annotation lines.
type Arrow struct {
	Y      int // row of the arrow shaft
	X0, X1 int // columns of the two vertical lines it connects
	Label  string
}

// Sample is one labelled timing diagram.
type Sample struct {
	Name   string
	Image  *imgproc.Gray
	Edges  []EdgeBox
	Texts  []TextBox
	VLines []geom.VSeg // event annotation lines
	HLines []geom.HSeg // threshold annotation lines
	Arrows []Arrow
	Truth  *spo.SPO
}

// sampleJSON is the serialised label form (the image is stored as PNG
// alongside).
type sampleJSON struct {
	Name   string
	Edges  []EdgeBox
	Texts  []TextBox
	VLines []geom.VSeg
	HLines []geom.HSeg
	Arrows []Arrow
	Truth  *spo.SPO
}

// Save writes the sample to dir as <name>.png and <name>.json.
func (s *Sample) Save(dir string) error {
	if s.Name == "" {
		return fmt.Errorf("dataset: sample has no name")
	}
	var buf bytes.Buffer
	if err := s.Image.EncodePNG(&buf); err != nil {
		return fmt.Errorf("dataset: encode %s: %w", s.Name, err)
	}
	if err := os.WriteFile(filepath.Join(dir, s.Name+".png"), buf.Bytes(), 0o644); err != nil {
		return err
	}
	js, err := json.MarshalIndent(sampleJSON{
		Name: s.Name, Edges: s.Edges, Texts: s.Texts,
		VLines: s.VLines, HLines: s.HLines, Arrows: s.Arrows, Truth: s.Truth,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, s.Name+".json"), js, 0o644)
}

// Load reads a sample previously written by Save.
func Load(dir, name string) (*Sample, error) {
	png, err := os.Open(filepath.Join(dir, name+".png"))
	if err != nil {
		return nil, err
	}
	defer png.Close()
	img, err := imgproc.DecodePNG(png)
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", name, err)
	}
	js, err := os.ReadFile(filepath.Join(dir, name+".json"))
	if err != nil {
		return nil, err
	}
	var meta sampleJSON
	if err := json.Unmarshal(js, &meta); err != nil {
		return nil, fmt.Errorf("dataset: %s labels: %w", name, err)
	}
	return &Sample{
		Name: meta.Name, Image: img, Edges: meta.Edges, Texts: meta.Texts,
		VLines: meta.VLines, HLines: meta.HLines, Arrows: meta.Arrows, Truth: meta.Truth,
	}, nil
}

// Split partitions samples into train and validation sets, taking every
// k-th sample (k = len/nVal) for validation until nVal is reached.
func Split(samples []*Sample, nVal int) (train, val []*Sample) {
	if nVal <= 0 || len(samples) == 0 {
		return samples, nil
	}
	if nVal >= len(samples) {
		return nil, samples
	}
	stride := len(samples) / nVal
	if stride < 1 {
		stride = 1
	}
	for i, s := range samples {
		if len(val) < nVal && i%stride == stride-1 {
			val = append(val, s)
		} else {
			train = append(train, s)
		}
	}
	return train, val
}

// CountEdgeTypes tallies ground-truth edge boxes by type across samples.
func CountEdgeTypes(samples []*Sample) map[spo.EdgeType]int {
	counts := make(map[spo.EdgeType]int)
	for _, s := range samples {
		for _, e := range s.Edges {
			counts[e.Type]++
		}
	}
	return counts
}
