// Package trace models timed multi-signal traces — the waveforms a
// simulator or scope produces — and extracts the edge/threshold-crossing
// events that SPO specifications talk about. Together with internal/monitor
// it realises the use the paper's introduction motivates: once a timing
// diagram has been translated to a formal specification, the specification
// can drive runtime verification of real executions.
package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Point is one sample of a signal: value V at time T.
type Point struct {
	T, V float64
}

// Signal is a piecewise-linear waveform, samples sorted by time.
type Signal struct {
	Name   string
	Points []Point
}

// Append adds a sample; times must be non-decreasing.
func (s *Signal) Append(t, v float64) error {
	if n := len(s.Points); n > 0 && t < s.Points[n-1].T {
		return fmt.Errorf("trace: time %v before previous sample %v", t, s.Points[n-1].T)
	}
	s.Points = append(s.Points, Point{T: t, V: v})
	return nil
}

// Value returns the linearly interpolated value at time t. Outside the
// sampled range the nearest sample's value is held.
func (s *Signal) Value(t float64) float64 {
	n := len(s.Points)
	if n == 0 {
		return 0
	}
	if t <= s.Points[0].T {
		return s.Points[0].V
	}
	if t >= s.Points[n-1].T {
		return s.Points[n-1].V
	}
	i := sort.Search(n, func(i int) bool { return s.Points[i].T >= t })
	a, b := s.Points[i-1], s.Points[i]
	if b.T == a.T {
		return b.V
	}
	f := (t - a.T) / (b.T - a.T)
	return a.V + f*(b.V-a.V)
}

// Range returns the minimum and maximum sampled value.
func (s *Signal) Range() (lo, hi float64) {
	if len(s.Points) == 0 {
		return 0, 0
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, p := range s.Points {
		if p.V < lo {
			lo = p.V
		}
		if p.V > hi {
			hi = p.V
		}
	}
	return lo, hi
}

// Crossing is one threshold crossing of a signal.
type Crossing struct {
	T      float64
	Rising bool // value increasing through the level
}

// Crossings returns every time the signal crosses level, with direction,
// computed on the piecewise-linear interpolation. A segment counts when it
// reaches or passes the level from strictly below (rising) or strictly
// above (falling): closed on the arriving side, open on the departing side,
// so a monotone transition yields exactly one crossing no matter how many
// samples subdivide it — including a sample landing exactly on the level
// mid-rise or mid-fall.
func (s *Signal) Crossings(level float64) []Crossing {
	var out []Crossing
	for i := 1; i < len(s.Points); i++ {
		a, b := s.Points[i-1], s.Points[i]
		if a.V == b.V {
			continue
		}
		rising := b.V > a.V
		if rising {
			if !(a.V < level && level <= b.V) {
				continue
			}
		} else {
			if !(b.V <= level && level < a.V) {
				continue
			}
		}
		t := a.T + (level-a.V)/(b.V-a.V)*(b.T-a.T)
		out = append(out, Crossing{T: t, Rising: rising})
	}
	return out
}

// Edge is a maximal monotone transition of a signal.
type Edge struct {
	T0, T1 float64 // transition time span
	V0, V1 float64 // start and end values
	Rising bool
}

// CrossTime returns the time the edge crosses the given absolute level.
func (e Edge) CrossTime(level float64) (float64, bool) {
	lo, hi := e.V0, e.V1
	if lo > hi {
		lo, hi = hi, lo
	}
	if level < lo || level > hi || e.V0 == e.V1 {
		return 0, false
	}
	f := (level - e.V0) / (e.V1 - e.V0)
	return e.T0 + f*(e.T1-e.T0), true
}

// Edges extracts the significant transitions of the signal: maximal
// monotone runs whose swing exceeds minSwingFrac of the signal's value
// range. This is the trace-side analogue of the edge boxes SED detects in
// pictures.
func (s *Signal) Edges(minSwingFrac float64) []Edge {
	lo, hi := s.Range()
	swing := (hi - lo) * minSwingFrac
	if swing <= 0 {
		return nil
	}
	var out []Edge
	n := len(s.Points)
	i := 1
	for i < n {
		// Skip flat segments.
		for i < n && s.Points[i].V == s.Points[i-1].V {
			i++
		}
		if i >= n {
			break
		}
		rising := s.Points[i].V > s.Points[i-1].V
		start := i - 1
		for i < n && s.Points[i].V != s.Points[i-1].V &&
			(s.Points[i].V > s.Points[i-1].V) == rising {
			i++
		}
		e := Edge{
			T0: s.Points[start].T, T1: s.Points[i-1].T,
			V0: s.Points[start].V, V1: s.Points[i-1].V,
			Rising: rising,
		}
		if math.Abs(e.V1-e.V0) >= swing {
			out = append(out, e)
		}
	}
	return out
}

// Trace is a set of named signals observed together.
type Trace struct {
	Signals []*Signal
}

// Signal returns the named signal, or nil.
func (tr *Trace) Signal(name string) *Signal {
	for _, s := range tr.Signals {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Add creates (or returns) the named signal.
func (tr *Trace) Add(name string) *Signal {
	if s := tr.Signal(name); s != nil {
		return s
	}
	s := &Signal{Name: name}
	tr.Signals = append(tr.Signals, s)
	return s
}

// ErrNoSignal is returned when a referenced signal is absent from a trace.
var ErrNoSignal = errors.New("trace: no such signal")
