package trace

import (
	"math"
	"testing"
)

func mkSignal(t *testing.T, name string, pts ...Point) *Signal {
	t.Helper()
	s := &Signal{Name: name}
	for _, p := range pts {
		if err := s.Append(p.T, p.V); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestAppendOrdering(t *testing.T) {
	s := &Signal{Name: "X"}
	if err := s.Append(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(0.5, 1); err == nil {
		t.Error("out-of-order append accepted")
	}
	if err := s.Append(1, 1); err != nil {
		t.Error("equal-time append should be allowed")
	}
}

func TestValueInterpolation(t *testing.T) {
	s := mkSignal(t, "X", Point{0, 0}, Point{2, 1})
	if got := s.Value(1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Value(1) = %v", got)
	}
	if s.Value(-1) != 0 || s.Value(5) != 1 {
		t.Error("extrapolation should hold endpoints")
	}
	empty := &Signal{}
	if empty.Value(0) != 0 {
		t.Error("empty signal value")
	}
}

func TestRange(t *testing.T) {
	s := mkSignal(t, "X", Point{0, 2}, Point{1, -3}, Point{2, 7})
	lo, hi := s.Range()
	if lo != -3 || hi != 7 {
		t.Errorf("range = %v, %v", lo, hi)
	}
	lo, hi = (&Signal{}).Range()
	if lo != 0 || hi != 0 {
		t.Error("empty range")
	}
}

func TestCrossings(t *testing.T) {
	// 0 -> 1 -> 0 pulse.
	s := mkSignal(t, "X", Point{0, 0}, Point{1, 0}, Point{2, 1}, Point{3, 1}, Point{4, 0})
	cr := s.Crossings(0.5)
	if len(cr) != 2 {
		t.Fatalf("crossings = %d, want 2: %v", len(cr), cr)
	}
	if !cr[0].Rising || math.Abs(cr[0].T-1.5) > 1e-12 {
		t.Errorf("first crossing = %+v", cr[0])
	}
	if cr[1].Rising || math.Abs(cr[1].T-3.5) > 1e-12 {
		t.Errorf("second crossing = %+v", cr[1])
	}
}

func TestCrossingsOnLevelSampleCountsOnce(t *testing.T) {
	// A sample landing exactly on the threshold mid-rise must not split the
	// transition into two crossings (the segment arriving at the level and
	// the segment departing from it used to both count).
	rise := mkSignal(t, "X", Point{0, 0}, Point{1, 0.5}, Point{2, 1})
	cr := rise.Crossings(0.5)
	if len(cr) != 1 || !cr[0].Rising || math.Abs(cr[0].T-1) > 1e-12 {
		t.Errorf("on-level mid-rise crossings = %+v, want one rising at t=1", cr)
	}
	fall := mkSignal(t, "X", Point{0, 1}, Point{1, 0.5}, Point{2, 0})
	cr = fall.Crossings(0.5)
	if len(cr) != 1 || cr[0].Rising || math.Abs(cr[0].T-1) > 1e-12 {
		t.Errorf("on-level mid-fall crossings = %+v, want one falling at t=1", cr)
	}
	// Many on-level samples inside one monotone transition still count once.
	stair := mkSignal(t, "X", Point{0, 0}, Point{1, 0.5}, Point{2, 0.5}, Point{3, 1})
	if cr := stair.Crossings(0.5); len(cr) != 1 {
		t.Errorf("plateau-at-level crossings = %+v, want one", cr)
	}
	// A touch (reach the level and retreat) counts exactly once, on arrival.
	touch := mkSignal(t, "X", Point{0, 0}, Point{1, 0.5}, Point{2, 0})
	if cr := touch.Crossings(0.5); len(cr) != 1 || !cr[0].Rising {
		t.Errorf("touch crossings = %+v, want one rising", cr)
	}
}

func TestCrossingsFlatSegments(t *testing.T) {
	s := mkSignal(t, "X", Point{0, 0.5}, Point{1, 0.5})
	if len(s.Crossings(0.5)) != 0 {
		t.Error("flat signal should not cross")
	}
}

func TestEdgeCrossTime(t *testing.T) {
	e := Edge{T0: 0, T1: 2, V0: 0, V1: 1, Rising: true}
	tm, ok := e.CrossTime(0.25)
	if !ok || math.Abs(tm-0.5) > 1e-12 {
		t.Errorf("CrossTime = %v, %v", tm, ok)
	}
	if _, ok := e.CrossTime(2); ok {
		t.Error("out-of-range level crossed")
	}
	flat := Edge{T0: 0, T1: 1, V0: 1, V1: 1}
	if _, ok := flat.CrossTime(1); ok {
		t.Error("flat edge crossed")
	}
}

func TestEdges(t *testing.T) {
	// Pulse with small noise bump (filtered by swing) and two real edges.
	s := mkSignal(t, "X",
		Point{0, 0}, Point{1, 0}, Point{1.2, 0.05}, Point{1.4, 0}, // noise
		Point{2, 0}, Point{3, 1}, // rise
		Point{4, 1}, Point{5, 0}, // fall
		Point{6, 0})
	edges := s.Edges(0.5)
	if len(edges) != 2 {
		t.Fatalf("edges = %d, want 2: %+v", len(edges), edges)
	}
	if !edges[0].Rising || edges[0].T0 != 2 || edges[0].T1 != 3 {
		t.Errorf("rise edge = %+v", edges[0])
	}
	if edges[1].Rising || edges[1].T0 != 4 || edges[1].T1 != 5 {
		t.Errorf("fall edge = %+v", edges[1])
	}
}

func TestEdgesMonotoneRuns(t *testing.T) {
	// A staircase up counts as one edge (monotone run).
	s := mkSignal(t, "X", Point{0, 0}, Point{1, 0.4}, Point{2, 0.8}, Point{3, 1})
	edges := s.Edges(0.5)
	if len(edges) != 1 || edges[0].V0 != 0 || edges[0].V1 != 1 {
		t.Errorf("edges = %+v", edges)
	}
}

func TestEdgesDegenerate(t *testing.T) {
	if len((&Signal{}).Edges(0.5)) != 0 {
		t.Error("empty signal has edges")
	}
	flat := mkSignal(t, "X", Point{0, 1}, Point{5, 1})
	if len(flat.Edges(0.5)) != 0 {
		t.Error("flat signal has edges")
	}
}

func TestTraceAddSignal(t *testing.T) {
	tr := &Trace{}
	a := tr.Add("X")
	b := tr.Add("X")
	if a != b {
		t.Error("Add should return the existing signal")
	}
	if tr.Signal("Y") != nil {
		t.Error("missing signal should be nil")
	}
	tr.Add("Y")
	if len(tr.Signals) != 2 {
		t.Error("signal count wrong")
	}
}
