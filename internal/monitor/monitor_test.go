package monitor

import (
	"strings"
	"testing"

	"tdmagic/internal/spo"
	"tdmagic/internal/trace"
)

// example1Spec builds the paper's Example 1 SPO with delay bounds.
func example1Spec() *Spec {
	p := &spo.SPO{}
	n1 := p.AddNode(spo.Node{Signal: "VINA", EdgeIndex: 1, Type: spo.RiseStep})
	n2 := p.AddNode(spo.Node{Signal: "VOUTA", EdgeIndex: 1, Type: spo.RiseRamp, Threshold: "90%"})
	n3 := p.AddNode(spo.Node{Signal: "VINA", EdgeIndex: 2, Type: spo.FallStep})
	n4 := p.AddNode(spo.Node{Signal: "VOUTA", EdgeIndex: 2, Type: spo.FallRamp, Threshold: "10%"})
	_ = p.AddConstraint(n1, n2, "tDon")
	_ = p.AddConstraint(n3, n4, "tDoff")
	return &Spec{
		SPO: p,
		Delays: map[string]Bounds{
			"tDon":  {Min: 0.5, Max: 3},
			"tDoff": {Min: 0.5, Max: 3},
		},
	}
}

func TestBoundsContains(t *testing.T) {
	b := Bounds{Min: 1, Max: 2}
	if b.Contains(0.5) || !b.Contains(1) || !b.Contains(2) || b.Contains(2.5) {
		t.Error("bounded Contains wrong")
	}
	u := Bounds{Min: 1}
	if !u.Contains(100) || u.Contains(0.5) {
		t.Error("unbounded Contains wrong")
	}
}

func TestSynthesizeAndCheckSatisfies(t *testing.T) {
	spec := example1Spec()
	tr, err := SynthesizeTrace(spec, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(spec, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		for _, v := range res.Violations {
			t.Errorf("violation: %v", v)
		}
	}
	for i, tm := range res.EventTimes {
		if tm < 0 {
			t.Errorf("event %d unresolved", i)
		}
	}
	// Order of resolved events must respect the partial order.
	if !(res.EventTimes[0] < res.EventTimes[1]) {
		t.Error("event order wrong")
	}
}

func TestCheckDetectsDelayViolation(t *testing.T) {
	spec := example1Spec()
	tr, err := SynthesizeTrace(spec, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Tighten the bound below the synthesised midpoint delay.
	spec.Delays["tDon"] = Bounds{Min: 0.1, Max: 0.2}
	res, err := Check(spec, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("violation not detected")
	}
	found := false
	for _, v := range res.Violations {
		if v.Constraint.Delay == "tDon" && strings.Contains(v.Reason, "outside") {
			found = true
		}
	}
	if !found {
		t.Errorf("wrong violations: %v", res.Violations)
	}
}

func TestCheckDetectsMissingSignal(t *testing.T) {
	spec := example1Spec()
	tr := &trace.Trace{} // empty
	res, err := Check(spec, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Error("missing signals accepted")
	}
}

func TestCheckDetectsMissingEdge(t *testing.T) {
	spec := example1Spec()
	tr, err := SynthesizeTrace(spec, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate VINA so its second edge is gone.
	sig := tr.Signal("VINA")
	for i, p := range sig.Points {
		if p.T > 1.5 {
			sig.Points = sig.Points[:i]
			break
		}
	}
	res, err := Check(spec, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Error("missing edge accepted")
	}
}

func TestCheckWrongDirection(t *testing.T) {
	p := &spo.SPO{}
	a := p.AddNode(spo.Node{Signal: "X", EdgeIndex: 1, Type: spo.FallStep})
	b := p.AddNode(spo.Node{Signal: "Y", EdgeIndex: 1, Type: spo.RiseStep})
	_ = p.AddConstraint(a, b, "t")
	spec := &Spec{SPO: p}
	// Build a trace where X rises instead of falling.
	tr := &trace.Trace{}
	x := tr.Add("X")
	_ = x.Append(0, 0)
	_ = x.Append(1, 1)
	y := tr.Add("Y")
	_ = y.Append(0, 0)
	_ = y.Append(2, 1)
	res, err := Check(spec, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Error("direction mismatch accepted")
	}
}

func TestCheckOrderViolation(t *testing.T) {
	p := &spo.SPO{}
	a := p.AddNode(spo.Node{Signal: "X", EdgeIndex: 1, Type: spo.RiseStep})
	b := p.AddNode(spo.Node{Signal: "Y", EdgeIndex: 1, Type: spo.RiseStep})
	_ = p.AddConstraint(a, b, "t")
	spec := &Spec{SPO: p}
	tr := &trace.Trace{}
	x := tr.Add("X")
	_ = x.Append(0, 0)
	_ = x.Append(5, 0)
	_ = x.Append(6, 1)
	y := tr.Add("Y") // Y rises before X: order violated
	_ = y.Append(0, 0)
	_ = y.Append(1, 1)
	res, err := Check(spec, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Error("order violation accepted")
	}
}

func TestCheckInvalidSpec(t *testing.T) {
	p := &spo.SPO{}
	a := p.AddNode(spo.Node{Signal: "X", EdgeIndex: 1, Type: spo.RiseStep})
	p.Constraints = append(p.Constraints, spo.Constraint{Src: a, Dst: a, Delay: "t"})
	if _, err := Check(&Spec{SPO: p}, &trace.Trace{}); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := Check(&Spec{}, &trace.Trace{}); err == nil {
		t.Error("nil SPO accepted")
	}
}

func TestThresholdFracParsing(t *testing.T) {
	spec := &Spec{ThresholdFracs: map[string]float64{"Vth": 0.42}}
	cases := []struct {
		th   string
		want float64
	}{
		{"", 0.5},
		{spo.NoThreshold, 0.5},
		{"90%", 0.9},
		{"5%", 0.05},
		{"Vth", 0.42},
	}
	for _, c := range cases {
		got, err := thresholdFrac(spec, spo.Node{Threshold: c.th})
		if err != nil || got != c.want {
			t.Errorf("thresholdFrac(%q) = %v, %v", c.th, got, err)
		}
	}
	if _, err := thresholdFrac(spec, spo.Node{Threshold: "2V"}); err == nil {
		t.Error("unparseable threshold accepted")
	}
}

func TestParsePercent(t *testing.T) {
	if v, ok := parsePercent("90%"); !ok || v != 0.9 {
		t.Error("90% parse failed")
	}
	for _, bad := range []string{"", "%", "9a%", "90"} {
		if _, ok := parsePercent(bad); ok {
			t.Errorf("parsePercent(%q) accepted", bad)
		}
	}
}

func TestSynthesizeRejectsSparseEdgeIndices(t *testing.T) {
	p := &spo.SPO{}
	a := p.AddNode(spo.Node{Signal: "X", EdgeIndex: 2, Type: spo.RiseStep}) // edge 1 missing
	b := p.AddNode(spo.Node{Signal: "Y", EdgeIndex: 1, Type: spo.RiseStep})
	_ = p.AddConstraint(a, b, "t")
	if _, err := SynthesizeTrace(&Spec{SPO: p}, 0); err == nil {
		t.Error("sparse edge indices accepted")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Constraint: spo.Constraint{Src: 0, Dst: 1, Delay: "t_{s}"}, Reason: "boom"}
	s := v.String()
	if !strings.Contains(s, "n1") || !strings.Contains(s, "boom") {
		t.Errorf("violation string = %q", s)
	}
}
