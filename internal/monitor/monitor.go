// Package monitor checks timed traces against SPO specifications extracted
// from timing diagrams: runtime verification with a TD as the formal spec,
// the application the paper's introduction motivates ("enables the use of
// model checking, runtime verification and testing tools with TDs as formal
// specifications").
//
// A specification is an SPO plus, for each timing parameter appearing on
// its constraints, an admissible delay interval (in datasheets these live
// in the electrical-characteristics tables next to the diagram). A trace
// satisfies the specification when every event can be located in the trace
// and every constraint's measured delay is positive and inside its bounds.
package monitor

import (
	"fmt"
	"math"
	"sort"

	"tdmagic/internal/spo"
	"tdmagic/internal/trace"
)

// Bounds is an admissible delay interval. Max <= 0 means unbounded above.
// The JSON form is the wire format of verification requests.
type Bounds struct {
	Min float64 `json:"min"`
	Max float64 `json:"max,omitempty"`
}

// Contains reports whether dt satisfies the bounds.
func (b Bounds) Contains(dt float64) bool {
	if dt < b.Min {
		return false
	}
	return b.Max <= 0 || dt <= b.Max
}

// Spec is a monitorable specification.
type Spec struct {
	SPO *spo.SPO
	// Delays maps a constraint's timing-parameter label to its bounds.
	// Constraints whose label is absent are checked for ordering only.
	Delays map[string]Bounds
	// MinSwingFrac tunes trace edge extraction (default 0.5).
	MinSwingFrac float64
	// ThresholdFracs maps a node threshold text (e.g. "90%") to the level
	// fraction; standard percent strings parse automatically.
	ThresholdFracs map[string]float64
}

// Violation describes one failed check.
type Violation struct {
	Constraint spo.Constraint
	Measured   float64 // seconds between the two events (NaN-free; 0 if unresolved)
	Reason     string
}

func (v Violation) String() string {
	return fmt.Sprintf("constraint n%d -> n%d (%s): %s", v.Constraint.Src+1, v.Constraint.Dst+1, v.Constraint.Delay, v.Reason)
}

// Result is the outcome of checking one trace.
type Result struct {
	EventTimes []float64 // per SPO node; NaN-free, -1 when unresolved
	Violations []Violation
}

// OK reports whether the trace satisfied the specification.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

// Check locates every SPO event in the trace and verifies all constraints.
// It is implemented on top of StreamChecker — the whole trace is replayed
// through the incremental monitor — so batch and streaming verification
// cannot disagree.
func Check(spec *Spec, tr *trace.Trace) (*Result, error) {
	c, err := NewStream(spec, nil)
	if err != nil {
		return nil, err
	}
	for _, sig := range tr.Signals {
		h := c.Declare(sig.Name, false)
		for _, p := range sig.Points {
			if err := c.Change(h, p.T, p.V); err != nil {
				return nil, err
			}
		}
	}
	return c.Finish()
}

// thresholdFrac resolves a node's crossing level as a fraction of the
// signal range: 0.5 for step/eventless nodes, the parsed percentage for
// "NN%" thresholds, or a spec-supplied mapping.
func thresholdFrac(spec *Spec, n spo.Node) (float64, error) {
	th := n.Threshold
	if th == "" || th == spo.NoThreshold {
		return 0.5, nil
	}
	if spec.ThresholdFracs != nil {
		if f, ok := spec.ThresholdFracs[th]; ok {
			return f, nil
		}
	}
	if f, ok := parsePercent(th); ok {
		return f, nil
	}
	return 0, fmt.Errorf("unparseable threshold %q", th)
}

// parsePercent parses "90%" into 0.9.
func parsePercent(s string) (float64, bool) {
	if len(s) < 2 || s[len(s)-1] != '%' {
		return 0, false
	}
	v := 0.0
	for _, ch := range s[:len(s)-1] {
		if ch < '0' || ch > '9' {
			return 0, false
		}
		v = v*10 + float64(ch-'0')
	}
	return v / 100, true
}

// SynthesizeTrace builds a piecewise-linear trace that satisfies the
// specification, with each constrained delay set to the midpoint of its
// bounds (or Min when unbounded). It is useful for testing monitors and as
// a template-waveform generator. rampFrac is the fraction of the unit step
// spent ramping (0 = ideal steps).
func SynthesizeTrace(spec *Spec, rampFrac float64) (*trace.Trace, error) {
	p := spec.SPO
	if err := p.Validate(); err != nil {
		return nil, err
	}
	order, err := p.TopoOrder()
	if err != nil {
		return nil, err
	}
	// Assign event times respecting every constraint (t(dst) >= t(src)+d)
	// and keeping consecutive events of the same signal apart, by relaxing
	// both requirements to a fixed point.
	times := make([]float64, len(p.Nodes))
	const slack = 1.0
	for i := range times {
		times[i] = slack
	}
	in := make([][]spo.Constraint, len(p.Nodes))
	for _, c := range p.Constraints {
		in[c.Dst] = append(in[c.Dst], c)
	}
	sigOrder := map[string][]int{}
	for i, n := range p.Nodes {
		sigOrder[n.Signal] = append(sigOrder[n.Signal], i)
	}
	for _, idx := range sigOrder {
		sort.Slice(idx, func(a, b int) bool {
			return p.Nodes[idx[a]].EdgeIndex < p.Nodes[idx[b]].EdgeIndex
		})
	}
	for iter := 0; iter < len(p.Nodes)+3; iter++ {
		changed := false
		for _, v := range order {
			for _, c := range in[v] {
				d := slack
				if b, ok := spec.Delays[c.Delay]; ok {
					if b.Max > 0 {
						d = (b.Min + b.Max) / 2
					} else {
						d = b.Min + slack
					}
				}
				if t := times[c.Src] + d; t > times[v] {
					times[v] = t
					changed = true
				}
			}
		}
		for _, idx := range sigOrder {
			for k := 1; k < len(idx); k++ {
				if t := times[idx[k-1]] + slack; t > times[idx[k]] {
					times[idx[k]] = t
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	// Build waveforms: each signal toggles through its events.
	tr := &trace.Trace{}
	type ev struct {
		t    float64
		node spo.Node
	}
	bySignal := map[string][]ev{}
	for i, n := range p.Nodes {
		bySignal[n.Signal] = append(bySignal[n.Signal], ev{t: times[i], node: n})
	}
	ramp := rampFrac
	if ramp < 0 {
		ramp = 0
	}
	for name, evs := range bySignal {
		sort.Slice(evs, func(i, j int) bool { return evs[i].t < evs[j].t })
		// Each signal's events must cover its edges consecutively so the
		// trace edge index matches the specification's EdgeIndex.
		for k, e := range evs {
			if e.node.EdgeIndex != k+1 {
				return nil, fmt.Errorf("monitor: signal %q event %d has edge index %d; synthesis needs consecutive indices",
					name, k+1, e.node.EdgeIndex)
			}
		}
		sig := tr.Add(name)
		// Start at the complement of the first event's direction.
		level := 0.0
		if !evs[0].node.Type.IsRise() && evs[0].node.Type != spo.Double {
			level = 1
		}
		if err := sig.Append(0, level); err != nil {
			return nil, err
		}
		for k, e := range evs {
			target := 1 - level
			// Clamp the ramp half-width to half the gap towards each
			// neighbouring event (and to the first event's distance from
			// t=0) so adjacent ramps never overlap, whatever rampFrac is.
			half := 0.05 + ramp/2
			if k > 0 {
				half = math.Min(half, (e.t-evs[k-1].t)/2)
			} else {
				half = math.Min(half, e.t)
			}
			if k+1 < len(evs) {
				half = math.Min(half, (evs[k+1].t-e.t)/2)
			} else {
				half = math.Min(half, 1) // tail point lands at e.t+2
			}
			if err := sig.Append(e.t-half, level); err != nil {
				return nil, fmt.Errorf("monitor: synthesise %q: %w", name, err)
			}
			if err := sig.Append(e.t+half, target); err != nil {
				return nil, err
			}
			level = target
		}
		last := evs[len(evs)-1].t
		if err := sig.Append(last+2, level); err != nil {
			return nil, err
		}
	}
	return tr, nil
}
