package monitor

import (
	"fmt"
	"math"

	"tdmagic/internal/spo"
	"tdmagic/internal/trace"
)

// Verdict is the outcome of one SPO constraint, emitted by a StreamChecker
// as soon as it is final. SrcTime/DstTime are the located event times (-1
// when unresolved) — on a violation they are the counterexample
// timestamps. Measured is DstTime-SrcTime when both events resolved.
type Verdict struct {
	Index    int     `json:"index"`
	Delay    string  `json:"delay,omitempty"`
	Pass     bool    `json:"pass"`
	Measured float64 `json:"measured"`
	SrcTime  float64 `json:"src_time"`
	DstTime  float64 `json:"dst_time"`
	Reason   string  `json:"reason,omitempty"`
}

// buildVerdict evaluates one constraint from its endpoint event times,
// reproducing Check's reason strings exactly.
func buildVerdict(spec *Spec, idx int, c spo.Constraint, t0, t1 float64) Verdict {
	v := Verdict{Index: idx, Delay: c.Delay, SrcTime: t0, DstTime: t1}
	if t0 < 0 || t1 < 0 {
		v.Reason = "unresolved endpoint event"
		return v
	}
	dt := t1 - t0
	v.Measured = dt
	if dt <= 0 {
		v.Reason = fmt.Sprintf("order violated: measured %.4g <= 0", dt)
		return v
	}
	if b, ok := spec.Delays[c.Delay]; ok && !b.Contains(dt) {
		v.Reason = fmt.Sprintf("delay %.4g outside [%.4g, %.4g]", dt, b.Min, b.Max)
		return v
	}
	v.Pass = true
	return v
}

// ResultVerdicts derives the per-constraint verdicts implied by a
// whole-trace Result, in constraint order. A StreamChecker over the same
// data emits exactly these verdicts (possibly in resolution order).
func ResultVerdicts(spec *Spec, res *Result) []Verdict {
	out := make([]Verdict, len(spec.SPO.Constraints))
	for i, c := range spec.SPO.Constraints {
		out[i] = buildVerdict(spec, i, c, res.EventTimes[c.Src], res.EventTimes[c.Dst])
	}
	return out
}

// nodeState tracks one SPO event. firm means the outcome can no longer
// change; resolved means an event time was located.
type nodeState struct {
	firm     bool
	resolved bool
	t        float64
	err      error
}

func (n *nodeState) time() float64 {
	if n.resolved {
		return n.t
	}
	return -1
}

// sigState is the per-signal incremental state: the running value range,
// the previous sample, the open monotone run, and — for analog signals —
// the retained candidate edges. Binary (1-bit digital) signals retire every
// run as it closes: their value range is final the moment both rails have
// been seen, so edge indices and threshold levels are firm immediately and
// nothing needs to be buffered.
type sigState struct {
	name   string
	binary bool
	nodes  []int // SPO node indices referencing this signal

	lo, hi       float64
	any          bool
	prevT, prevV float64

	open     bool
	rT0, rV0 float64
	rT1, rV1 float64
	rising   bool

	runs   []trace.Edge // retained closed candidate runs (analog path)
	closed int          // closed qualifying runs (binary path)
}

func (s *sigState) rangeVals() (float64, float64) {
	if !s.any {
		return 0, 0
	}
	return s.lo, s.hi
}

// StreamChecker checks a specification against a trace delivered as a
// stream of value changes (e.g. straight from a vcd.Decoder), without
// materializing the trace. It emits each constraint's Verdict as soon as
// both endpoint events are firm, and Finish returns a Result identical to
// whole-trace Check — Check itself is implemented on top of StreamChecker,
// so the two can never drift.
//
// Memory is bounded by the retained state, not the dump length: binary
// signals keep O(1) state (resolved prefixes retire immediately), analog
// signals keep one trace.Edge per candidate monotone run, with runs below
// the current swing threshold pruned as they close (the swing only grows
// as the observed range widens, so they can never qualify later).
type StreamChecker struct {
	spec  *Spec
	swing float64
	emit  func(Verdict)

	sigs   []*sigState
	byName map[string]int

	nodes   []nodeState
	emitted []bool

	resident    int
	maxResident int

	finished bool
	result   *Result
}

// NewStream validates the specification and prepares a streaming check.
// emit, if non-nil, receives each constraint verdict once, as soon as it
// is final (some arrive mid-stream, the rest during Finish).
func NewStream(spec *Spec, emit func(Verdict)) (*StreamChecker, error) {
	if spec.SPO == nil {
		return nil, fmt.Errorf("monitor: nil SPO")
	}
	if err := spec.SPO.Validate(); err != nil {
		return nil, fmt.Errorf("monitor: invalid specification: %w", err)
	}
	swing := spec.MinSwingFrac
	if swing <= 0 {
		swing = 0.5
	}
	return &StreamChecker{
		spec:    spec,
		swing:   swing,
		emit:    emit,
		byName:  map[string]int{},
		nodes:   make([]nodeState, len(spec.SPO.Nodes)),
		emitted: make([]bool, len(spec.SPO.Constraints)),
	}, nil
}

// Declare registers a signal and returns its handle. binary marks 1-bit
// digital signals whose values can only be 0 or 1 — these take the eager,
// constant-memory path. Re-declaring a name returns the existing handle;
// a non-binary re-declaration before any data demotes the signal to the
// analog path.
func (c *StreamChecker) Declare(name string, binary bool) int {
	if h, ok := c.byName[name]; ok {
		s := c.sigs[h]
		if !binary && s.binary && !s.any {
			s.binary = false
		}
		return h
	}
	s := &sigState{name: name, binary: binary}
	for i, n := range c.spec.SPO.Nodes {
		if n.Signal == name {
			s.nodes = append(s.nodes, i)
		}
	}
	c.sigs = append(c.sigs, s)
	c.byName[name] = len(c.sigs) - 1
	c.resident++
	if c.resident > c.maxResident {
		c.maxResident = c.resident
	}
	return len(c.sigs) - 1
}

// Change feeds one sample. Times must be non-decreasing per handle;
// samples for different handles may interleave in any order.
func (c *StreamChecker) Change(h int, t, v float64) error {
	s := c.sigs[h]
	if s.binary && v != 0 && v != 1 {
		return fmt.Errorf("monitor: binary signal %q got value %v", s.name, v)
	}
	if !s.any {
		s.any = true
		s.lo, s.hi = v, v
		s.prevT, s.prevV = t, v
		return nil
	}
	if v < s.lo {
		s.lo = v
	}
	if v > s.hi {
		s.hi = v
	}
	switch {
	case v == s.prevV: // flat segment closes any open run
		if s.open {
			c.closeRun(s)
		}
	case !s.open:
		s.open = true
		s.rT0, s.rV0 = s.prevT, s.prevV
		s.rT1, s.rV1 = t, v
		s.rising = v > s.prevV
	case (v > s.prevV) == s.rising: // extend the monotone run
		s.rT1, s.rV1 = t, v
	default: // reversal: close and reopen from the previous sample
		c.closeRun(s)
		s.open = true
		s.rT0, s.rV0 = s.prevT, s.prevV
		s.rT1, s.rV1 = t, v
		s.rising = v > s.prevV
	}
	s.prevT, s.prevV = t, v
	return nil
}

// closeRun finalizes the open monotone run. Binary signals resolve any
// node waiting on this edge immediately and retire the run; analog signals
// retain it unless it is already below the swing threshold.
func (c *StreamChecker) closeRun(s *sigState) {
	e := trace.Edge{T0: s.rT0, T1: s.rT1, V0: s.rV0, V1: s.rV1, Rising: s.rising}
	s.open = false
	if s.binary && c.swing <= 1 {
		// A binary run always swings the full 0..1 range, so it qualifies
		// as an edge, and the range is final once both rails were seen —
		// which any closed run guarantees.
		s.closed++
		for _, i := range s.nodes {
			if c.spec.SPO.Nodes[i].EdgeIndex == s.closed && !c.nodes[i].firm {
				t, err := nodeEventFromEdge(c.spec, c.spec.SPO.Nodes[i], e, s.lo, s.hi)
				c.setNode(i, t, err)
			}
		}
		return
	}
	if math.Abs(e.V1-e.V0) >= (s.hi-s.lo)*c.swing {
		s.runs = append(s.runs, e)
		c.resident++
		if c.resident > c.maxResident {
			c.maxResident = c.resident
		}
	}
}

func (c *StreamChecker) setNode(i int, t float64, err error) {
	st := &c.nodes[i]
	st.firm = true
	if err != nil {
		st.err = err
	} else {
		st.resolved, st.t = true, t
	}
	c.emitReady(i)
}

// emitReady streams the verdicts of every constraint incident to node i
// whose other endpoint is also firm.
func (c *StreamChecker) emitReady(i int) {
	for k, con := range c.spec.SPO.Constraints {
		if c.emitted[k] || (con.Src != i && con.Dst != i) {
			continue
		}
		a, b := &c.nodes[con.Src], &c.nodes[con.Dst]
		if !a.firm || !b.firm {
			continue
		}
		c.emitted[k] = true
		if c.emit != nil {
			c.emit(buildVerdict(c.spec, k, con, a.time(), b.time()))
		}
	}
}

// MaxResident returns the peak retained state: declared signals plus
// buffered candidate edges. For digital dumps this stays constant however
// long the dump runs — the bound the verify service relies on.
func (c *StreamChecker) MaxResident() int { return c.maxResident }

// Finish flushes trailing runs, resolves every remaining event, emits all
// outstanding verdicts (in constraint order) and returns the final Result,
// identical to Check over the materialized trace.
func (c *StreamChecker) Finish() (*Result, error) {
	if c.finished {
		return c.result, nil
	}
	c.finished = true
	for _, s := range c.sigs {
		if s.open {
			c.closeRun(s)
		}
	}
	res := &Result{EventTimes: make([]float64, len(c.spec.SPO.Nodes))}
	for i := range res.EventTimes {
		res.EventTimes[i] = -1
	}
	for i, n := range c.spec.SPO.Nodes {
		st := &c.nodes[i]
		if !st.firm {
			t, err := c.finishNode(n)
			st.firm = true
			if err != nil {
				st.err = err
			} else {
				st.resolved, st.t = true, t
			}
		}
		if st.err != nil {
			res.Violations = append(res.Violations, Violation{
				Constraint: spo.Constraint{Src: i, Dst: i},
				Reason:     fmt.Sprintf("event %s not found: %v", n, st.err),
			})
			continue
		}
		res.EventTimes[i] = st.t
	}
	for k, con := range c.spec.SPO.Constraints {
		v := buildVerdict(c.spec, k, con, res.EventTimes[con.Src], res.EventTimes[con.Dst])
		if !c.emitted[k] {
			c.emitted[k] = true
			if c.emit != nil {
				c.emit(v)
			}
		}
		if !v.Pass {
			res.Violations = append(res.Violations, Violation{
				Constraint: con, Measured: v.Measured, Reason: v.Reason,
			})
		}
	}
	c.result = res
	return res, nil
}

// finishNode locates an event not resolved mid-stream, replicating the
// whole-trace eventTime lookup over the retained runs.
func (c *StreamChecker) finishNode(n spo.Node) (float64, error) {
	h, ok := c.byName[n.Signal]
	if !ok {
		return 0, fmt.Errorf("%w: %q", trace.ErrNoSignal, n.Signal)
	}
	s := c.sigs[h]
	if s.binary && c.swing <= 1 {
		// Every qualifying edge resolved its nodes as it closed; anything
		// left wants an edge the dump never produced.
		return 0, fmt.Errorf("signal %q has %d edges, event wants edge %d", n.Signal, s.closed, n.EdgeIndex)
	}
	lo, hi := s.rangeVals()
	sw := (hi - lo) * c.swing
	var edges []trace.Edge
	if sw > 0 {
		for _, e := range s.runs {
			if math.Abs(e.V1-e.V0) >= sw {
				edges = append(edges, e)
			}
		}
	}
	if n.EdgeIndex < 1 || n.EdgeIndex > len(edges) {
		return 0, fmt.Errorf("signal %q has %d edges, event wants edge %d", n.Signal, len(edges), n.EdgeIndex)
	}
	return nodeEventFromEdge(c.spec, n, edges[n.EdgeIndex-1], lo, hi)
}

// nodeEventFromEdge resolves a node's event time on its located edge: the
// direction must match, and the threshold level (a fraction of the signal
// range) must be crossed.
func nodeEventFromEdge(spec *Spec, n spo.Node, e trace.Edge, lo, hi float64) (float64, error) {
	if n.Type.IsRise() && !e.Rising && n.Type != spo.Double {
		return 0, fmt.Errorf("edge %d of %q falls, event expects a rise", n.EdgeIndex, n.Signal)
	}
	if !n.Type.IsRise() && e.Rising && n.Type != spo.Double {
		return 0, fmt.Errorf("edge %d of %q rises, event expects a fall", n.EdgeIndex, n.Signal)
	}
	frac, err := thresholdFrac(spec, n)
	if err != nil {
		return 0, err
	}
	level := lo + frac*(hi-lo)
	t, ok := e.CrossTime(level)
	if !ok {
		return 0, fmt.Errorf("edge %d of %q does not cross level %.3g", n.EdgeIndex, n.Signal, level)
	}
	return t, nil
}
