package monitor

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"tdmagic/internal/spo"
	"tdmagic/internal/trace"
)

func TestSynthesizeTraceRampFracs(t *testing.T) {
	// The doc comment allows any ramp fraction of the unit step; before the
	// gap clamp, rampFrac >= ~0.9 made consecutive appends overlap the
	// event spacing and synthesis failed with "time before previous sample".
	for _, ramp := range []float64{0, 0.5, 1.0} {
		spec := example1Spec()
		tr, err := SynthesizeTrace(spec, ramp)
		if err != nil {
			t.Fatalf("rampFrac %v: %v", ramp, err)
		}
		res, err := Check(spec, tr)
		if err != nil {
			t.Fatalf("rampFrac %v: %v", ramp, err)
		}
		if !res.OK() {
			t.Errorf("rampFrac %v: violations %v", ramp, res.Violations)
		}
	}
}

// oracleCheck is the pre-streaming whole-trace checker, kept verbatim as an
// independent oracle: Check (now a replay through StreamChecker) must agree
// with it on every trace.
func oracleCheck(spec *Spec, tr *trace.Trace) *Result {
	swing := spec.MinSwingFrac
	if swing <= 0 {
		swing = 0.5
	}
	eventTime := func(n spo.Node) (float64, error) {
		sig := tr.Signal(n.Signal)
		if sig == nil {
			return 0, fmt.Errorf("%w: %q", trace.ErrNoSignal, n.Signal)
		}
		edges := sig.Edges(swing)
		if n.EdgeIndex < 1 || n.EdgeIndex > len(edges) {
			return 0, fmt.Errorf("signal %q has %d edges, event wants edge %d", n.Signal, len(edges), n.EdgeIndex)
		}
		e := edges[n.EdgeIndex-1]
		if n.Type.IsRise() && !e.Rising && n.Type != spo.Double {
			return 0, fmt.Errorf("edge %d of %q falls, event expects a rise", n.EdgeIndex, n.Signal)
		}
		if !n.Type.IsRise() && e.Rising && n.Type != spo.Double {
			return 0, fmt.Errorf("edge %d of %q rises, event expects a fall", n.EdgeIndex, n.Signal)
		}
		frac, err := thresholdFrac(spec, n)
		if err != nil {
			return 0, err
		}
		lo, hi := sig.Range()
		level := lo + frac*(hi-lo)
		t, ok := e.CrossTime(level)
		if !ok {
			return 0, fmt.Errorf("edge %d of %q does not cross level %.3g", n.EdgeIndex, n.Signal, level)
		}
		return t, nil
	}
	res := &Result{EventTimes: make([]float64, len(spec.SPO.Nodes))}
	for i := range res.EventTimes {
		res.EventTimes[i] = -1
	}
	for i, n := range spec.SPO.Nodes {
		tm, err := eventTime(n)
		if err != nil {
			res.Violations = append(res.Violations, Violation{
				Constraint: spo.Constraint{Src: i, Dst: i},
				Reason:     fmt.Sprintf("event %s not found: %v", n, err),
			})
			continue
		}
		res.EventTimes[i] = tm
	}
	for _, c := range spec.SPO.Constraints {
		t0, t1 := res.EventTimes[c.Src], res.EventTimes[c.Dst]
		if t0 < 0 || t1 < 0 {
			res.Violations = append(res.Violations, Violation{Constraint: c, Reason: "unresolved endpoint event"})
			continue
		}
		dt := t1 - t0
		if dt <= 0 {
			res.Violations = append(res.Violations, Violation{
				Constraint: c, Measured: dt,
				Reason: fmt.Sprintf("order violated: measured %.4g <= 0", dt),
			})
			continue
		}
		if b, ok := spec.Delays[c.Delay]; ok && !b.Contains(dt) {
			res.Violations = append(res.Violations, Violation{
				Constraint: c, Measured: dt,
				Reason: fmt.Sprintf("delay %.4g outside [%.4g, %.4g]", dt, b.Min, b.Max),
			})
		}
	}
	return res
}

// randomTrace builds a trace with plateaus, reversals, repeated values and
// equal-time samples — the corner cases of monotone-run extraction.
func randomTrace(rng *rand.Rand, names []string) *trace.Trace {
	tr := &trace.Trace{}
	levels := []float64{0, 0.2, 0.5, 0.8, 1, 1.3}
	for _, name := range names {
		sig := tr.Add(name)
		tm := 0.0
		n := 2 + rng.Intn(20)
		for i := 0; i < n; i++ {
			if rng.Intn(4) > 0 {
				tm += rng.Float64() * 2
			} // else: equal-time sample
			_ = sig.Append(tm, levels[rng.Intn(len(levels))])
		}
	}
	return tr
}

func randomSpec(rng *rand.Rand, names []string) *Spec {
	p := &spo.SPO{}
	types := []spo.EdgeType{spo.RiseStep, spo.FallStep, spo.RiseRamp, spo.FallRamp, spo.Double}
	ths := []string{"", "90%", "10%", spo.NoThreshold}
	nn := 2 + rng.Intn(4)
	for i := 0; i < nn; i++ {
		p.AddNode(spo.Node{
			Signal:    names[rng.Intn(len(names))],
			EdgeIndex: 1 + rng.Intn(4),
			Type:      types[rng.Intn(len(types))],
			Threshold: ths[rng.Intn(len(ths))],
		})
	}
	for i := 1; i < nn; i++ {
		if rng.Intn(2) == 0 {
			_ = p.AddConstraint(rng.Intn(i), i, fmt.Sprintf("t%d", i))
		}
	}
	return &Spec{
		SPO: p,
		Delays: map[string]Bounds{
			"t1": {Min: 0.1, Max: 2}, "t2": {Min: 0.5}, "t3": {Min: 0, Max: 0.5},
		},
	}
}

func TestCheckMatchesOracleOnRandomTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	names := []string{"A", "B", "C"}
	for iter := 0; iter < 500; iter++ {
		spec := randomSpec(rng, names)
		tr := randomTrace(rng, names[:1+rng.Intn(len(names))])
		want := oracleCheck(spec, tr)
		got, err := Check(spec, tr)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if !reflect.DeepEqual(violationsComparable(got), violationsComparable(want)) ||
			!reflect.DeepEqual(got.EventTimes, want.EventTimes) {
			t.Fatalf("iter %d: stream result diverged\n got %+v\nwant %+v", iter, got, want)
		}
	}
}

// violationsComparable renders violations to strings so wrapped errors
// compare by message.
func violationsComparable(r *Result) []string {
	var out []string
	for _, v := range r.Violations {
		out = append(out, fmt.Sprintf("%+v|%v|%s", v.Constraint, v.Measured, v.Reason))
	}
	return out
}

// feedBinary replays a trace of 0/1 step signals through a StreamChecker
// with the binary fast path enabled.
func feedBinary(t *testing.T, c *StreamChecker, tr *trace.Trace) {
	t.Helper()
	for _, sig := range tr.Signals {
		h := c.Declare(sig.Name, true)
		for _, p := range sig.Points {
			if err := c.Change(h, p.T, p.V); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestStreamBinaryPathMatchesCheck(t *testing.T) {
	// Synthesized step traces are pure 0/1: the eager binary path must give
	// byte-identical verdicts to the whole-trace Check.
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 100; iter++ {
		p := &spo.SPO{}
		names := []string{"X", "Y"}
		nn := 2 + rng.Intn(3)
		edge := map[string]int{}
		for i := 0; i < nn; i++ {
			name := names[rng.Intn(2)]
			edge[name]++
			typ := spo.RiseStep
			if edge[name]%2 == 0 {
				typ = spo.FallStep
			}
			p.AddNode(spo.Node{Signal: name, EdgeIndex: edge[name], Type: typ})
		}
		for i := 1; i < nn; i++ {
			_ = p.AddConstraint(i-1, i, fmt.Sprintf("t%d", i))
		}
		spec := &Spec{SPO: p, Delays: map[string]Bounds{"t1": {Min: 0.1, Max: 5}}}
		tr, err := SynthesizeTrace(spec, 0)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		want, err := Check(spec, tr)
		if err != nil {
			t.Fatal(err)
		}
		var streamed []Verdict
		c, err := NewStream(spec, func(v Verdict) { streamed = append(streamed, v) })
		if err != nil {
			t.Fatal(err)
		}
		feedBinary(t, c, tr)
		got, err := c.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.EventTimes, want.EventTimes) ||
			!reflect.DeepEqual(violationsComparable(got), violationsComparable(want)) {
			t.Fatalf("iter %d: binary stream diverged\n got %+v\nwant %+v", iter, got, want)
		}
		// Streamed verdicts, ordered by constraint, must be byte-identical
		// to the verdicts implied by the whole-trace result.
		byIndex := make([]Verdict, len(streamed))
		for _, v := range streamed {
			byIndex[v.Index] = v
		}
		a, _ := json.Marshal(byIndex)
		b, _ := json.Marshal(ResultVerdicts(spec, want))
		if string(a) != string(b) {
			t.Fatalf("iter %d: verdicts diverged\n got %s\nwant %s", iter, a, b)
		}
	}
}

func TestStreamEmitsVerdictsEagerly(t *testing.T) {
	p := &spo.SPO{}
	a := p.AddNode(spo.Node{Signal: "X", EdgeIndex: 1, Type: spo.RiseStep})
	b := p.AddNode(spo.Node{Signal: "Y", EdgeIndex: 1, Type: spo.RiseStep})
	_ = p.AddConstraint(a, b, "t")
	spec := &Spec{SPO: p, Delays: map[string]Bounds{"t": {Min: 1, Max: 5}}}

	var got []Verdict
	c, err := NewStream(spec, func(v Verdict) { got = append(got, v) })
	if err != nil {
		t.Fatal(err)
	}
	x := c.Declare("X", true)
	y := c.Declare("Y", true)
	feed := func(h int, t0, v float64) {
		if err := c.Change(h, t0, v); err != nil {
			t.Fatal(err)
		}
	}
	feed(x, 0, 0)
	feed(x, 1, 0)
	feed(x, 1, 1) // X rise at t=1 (run still open)
	feed(y, 0, 0)
	feed(y, 3, 0)
	feed(y, 3, 1) // Y rise at t=3 (open)
	if len(got) != 0 {
		t.Fatalf("verdict before runs closed: %+v", got)
	}
	feed(x, 5, 1) // closes X's rise
	feed(y, 5, 1) // closes Y's rise: both endpoints firm, verdict must stream NOW
	if len(got) != 1 {
		t.Fatalf("verdicts after both edges closed = %+v", got)
	}
	v := got[0]
	if !v.Pass || v.Measured != 2 || v.SrcTime != 1 || v.DstTime != 3 {
		t.Errorf("eager verdict = %+v", v)
	}
	res, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || len(got) != 1 {
		t.Errorf("finish re-emitted or failed: %+v %+v", res, got)
	}
}

func TestStreamBoundedMemoryOnLongDigitalDumps(t *testing.T) {
	resident := func(toggles int) int {
		p := &spo.SPO{}
		a := p.AddNode(spo.Node{Signal: "X", EdgeIndex: 1, Type: spo.RiseStep})
		b := p.AddNode(spo.Node{Signal: "X", EdgeIndex: 2, Type: spo.FallStep})
		_ = p.AddConstraint(a, b, "t")
		c, err := NewStream(&Spec{SPO: p}, nil)
		if err != nil {
			t.Fatal(err)
		}
		h := c.Declare("X", true)
		v := 0.0
		for i := 0; i < toggles; i++ {
			tm := float64(i + 1)
			if err := c.Change(h, tm, v); err != nil {
				t.Fatal(err)
			}
			v = 1 - v
			if err := c.Change(h, tm, v); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.Finish(); err != nil {
			t.Fatal(err)
		}
		return c.MaxResident()
	}
	small, large := resident(100), resident(10000)
	if small != large {
		t.Errorf("resident set grew with dump length: %d -> %d", small, large)
	}
	if large > 8 {
		t.Errorf("binary resident set = %d, want O(signals)", large)
	}
}

func TestStreamRejectsNonBinaryValueOnBinarySignal(t *testing.T) {
	spec := example1Spec()
	c, err := NewStream(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := c.Declare("VINA", true)
	if err := c.Change(h, 0, 0.7); err == nil {
		t.Error("non-binary value accepted on binary signal")
	}
}

func TestStreamAnalogPruningKeepsEdges(t *testing.T) {
	// An analog signal with noise below the swing threshold must prune the
	// noise runs yet keep the real edges — and still match Check.
	tr := &trace.Trace{}
	sig := tr.Add("V")
	tm := 0.0
	app := func(v float64) { tm += 0.5; _ = sig.Append(tm, v) }
	_ = sig.Append(0, 0)
	app(1)                    // the real rise establishes the range first
	for i := 0; i < 50; i++ { // then noise: 1 <-> 0.95, below the swing
		app(0.95)
		app(1)
	}
	spec := &Spec{SPO: &spo.SPO{}}
	spec.SPO.AddNode(spo.Node{Signal: "V", EdgeIndex: 1, Type: spo.RiseRamp, Threshold: "90%"})
	res, err := Check(spec, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("violations: %v", res.Violations)
	}
	want := oracleCheck(spec, tr)
	if !reflect.DeepEqual(res.EventTimes, want.EventTimes) {
		t.Errorf("event times = %v, want %v", res.EventTimes, want.EventTimes)
	}
	// The noise runs closed below the final swing must not be resident.
	c, err := NewStream(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := c.Declare("V", false)
	for _, p := range sig.Points {
		if err := c.Change(h, p.T, p.V); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	if c.MaxResident() > 6 {
		t.Errorf("noise runs retained: resident = %d", c.MaxResident())
	}
}

func TestResultVerdictsShape(t *testing.T) {
	spec := example1Spec()
	tr, err := SynthesizeTrace(spec, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(spec, tr)
	if err != nil {
		t.Fatal(err)
	}
	vs := ResultVerdicts(spec, res)
	if len(vs) != len(spec.SPO.Constraints) {
		t.Fatalf("verdicts = %d", len(vs))
	}
	for i, v := range vs {
		if !v.Pass || v.Index != i || v.Measured <= 0 {
			t.Errorf("verdict %d = %+v", i, v)
		}
		if math.Abs(v.Measured-(v.DstTime-v.SrcTime)) > 1e-12 {
			t.Errorf("measured mismatch: %+v", v)
		}
	}
}
