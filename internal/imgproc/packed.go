package imgproc

import (
	"math/bits"

	"tdmagic/internal/geom"
)

// Word-level accessors of the packed Binary representation. The per-pixel
// At/Set API stays as the compatibility surface; the pipeline's inner loops
// (SED feature extraction, OCR glyph sampling, LAD density probes) go
// through these instead, trading one bounds-checked load per pixel for one
// popcount per 64 pixels.

// Row returns the packed words of row y (shared, not a copy). The caller
// must not disturb the padding-bit invariant.
func (b *Binary) Row(y int) []uint64 {
	return b.Words[y*b.Stride : (y+1)*b.Stride]
}

// clipRow clips a column range to the image and reports whether anything
// remains.
func (b *Binary) clipRow(y int, x0, x1 int) (int, int, bool) {
	if y < 0 || y >= b.H {
		return 0, 0, false
	}
	if x0 < 0 {
		x0 = 0
	}
	if x1 >= b.W {
		x1 = b.W - 1
	}
	if x0 > x1 {
		return 0, 0, false
	}
	return x0, x1, true
}

// RowCount returns the number of set pixels in row y between columns x0 and
// x1 inclusive (clipped to the image; out-of-range rows count zero).
func (b *Binary) RowCount(y, x0, x1 int) int {
	x0, x1, ok := b.clipRow(y, x0, x1)
	if !ok {
		return 0
	}
	row := b.Row(y)
	w0, w1 := x0>>6, x1>>6
	m0 := ^uint64(0) << (uint(x0) & 63)
	m1 := ^uint64(0) >> (63 - uint(x1)&63)
	if w0 == w1 {
		return bits.OnesCount64(row[w0] & m0 & m1)
	}
	n := bits.OnesCount64(row[w0]&m0) + bits.OnesCount64(row[w1]&m1)
	for j := w0 + 1; j < w1; j++ {
		n += bits.OnesCount64(row[j])
	}
	return n
}

// RowAny reports whether any pixel is set in row y between columns x0 and x1
// inclusive (clipped; out-of-range rows are empty).
func (b *Binary) RowAny(y, x0, x1 int) bool {
	x0, x1, ok := b.clipRow(y, x0, x1)
	if !ok {
		return false
	}
	row := b.Row(y)
	w0, w1 := x0>>6, x1>>6
	m0 := ^uint64(0) << (uint(x0) & 63)
	m1 := ^uint64(0) >> (63 - uint(x1)&63)
	if w0 == w1 {
		return row[w0]&m0&m1 != 0
	}
	if row[w0]&m0 != 0 || row[w1]&m1 != 0 {
		return true
	}
	for j := w0 + 1; j < w1; j++ {
		if row[j] != 0 {
			return true
		}
	}
	return false
}

// RowSpan returns the first and last set column of row y within [x0, x1]
// (clipped). ok is false when the range contains no ink.
func (b *Binary) RowSpan(y, x0, x1 int) (first, last int, ok bool) {
	x0, x1, valid := b.clipRow(y, x0, x1)
	if !valid {
		return 0, 0, false
	}
	row := b.Row(y)
	w0, w1 := x0>>6, x1>>6
	m0 := ^uint64(0) << (uint(x0) & 63)
	m1 := ^uint64(0) >> (63 - uint(x1)&63)
	first = -1
	for j := w0; j <= w1; j++ {
		w := row[j]
		if j == w0 {
			w &= m0
		}
		if j == w1 {
			w &= m1
		}
		if w != 0 {
			first = j<<6 + bits.TrailingZeros64(w)
			break
		}
	}
	if first < 0 {
		return 0, 0, false
	}
	for j := w1; j >= w0; j-- {
		w := row[j]
		if j == w0 {
			w &= m0
		}
		if j == w1 {
			w &= m1
		}
		if w != 0 {
			return first, j<<6 + 63 - bits.LeadingZeros64(w), true
		}
	}
	return 0, 0, false // unreachable: first >= 0 implies a non-empty word
}

// CountRect returns the number of set pixels inside r (clipped to the
// image).
func (b *Binary) CountRect(r geom.Rect) int {
	r = r.Clip(b.Bounds())
	if r.Empty() {
		return 0
	}
	w0, w1 := r.X0>>6, r.X1>>6
	m0 := ^uint64(0) << (uint(r.X0) & 63)
	m1 := ^uint64(0) >> (63 - uint(r.X1)&63)
	n := 0
	if w0 == w1 {
		m := m0 & m1
		for y := r.Y0; y <= r.Y1; y++ {
			n += bits.OnesCount64(b.Words[y*b.Stride+w0] & m)
		}
		return n
	}
	for y := r.Y0; y <= r.Y1; y++ {
		row := b.Words[y*b.Stride : (y+1)*b.Stride]
		n += bits.OnesCount64(row[w0]&m0) + bits.OnesCount64(row[w1]&m1)
		for j := w0 + 1; j < w1; j++ {
			n += bits.OnesCount64(row[j])
		}
	}
	return n
}

// nextSet returns the first set column >= x in the packed row, or w (the
// row width) when none remains.
func nextSet(row []uint64, x, w int) int {
	if x >= w {
		return w
	}
	wi := x >> 6
	word := row[wi] & (^uint64(0) << (uint(x) & 63))
	for word == 0 {
		wi++
		if wi >= len(row) {
			return w
		}
		word = row[wi]
	}
	n := wi<<6 + bits.TrailingZeros64(word)
	if n > w {
		return w
	}
	return n
}

// nextClear returns the first clear column >= x in the packed row, or w when
// the row is solid to its end. Padding bits are zero, so the scan terminates
// at the row border without extra guards.
func nextClear(row []uint64, x, w int) int {
	if x >= w {
		return w
	}
	wi := x >> 6
	word := ^row[wi] & (^uint64(0) << (uint(x) & 63))
	for word == 0 {
		wi++
		if wi >= len(row) {
			return w
		}
		word = ^row[wi]
	}
	n := wi<<6 + bits.TrailingZeros64(word)
	if n > w {
		return w
	}
	return n
}
