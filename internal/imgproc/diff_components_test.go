package imgproc

import (
	"image"
	"image/color"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"tdmagic/internal/geom"
)

// Differential tests of the run-based union-find component labelling and the
// banked Otsu histogram against their obvious per-pixel references, on random
// and adversarial images, plus worker-count invariance for every *W kernel.

// testWorkerCounts exercises the sequential path, an even split, a count
// that does not divide typical image heights, and "every core".
var testWorkerCounts = []int{1, 2, 7, -1}

// refComponents is the per-pixel BFS reference for 8-connected component
// labelling, returning each component's points sorted row-major.
func refComponents(s *shadowBin, minArea int) []Component {
	visited := make([]bool, len(s.pix))
	var comps []Component
	for start := range s.pix {
		if !s.pix[start] || visited[start] {
			continue
		}
		queue := []int{start}
		visited[start] = true
		var pts []geom.Pt
		box := geom.Rect{X0: s.w, Y0: s.h, X1: -1, Y1: -1}
		for len(queue) > 0 {
			i := queue[0]
			queue = queue[1:]
			x, y := i%s.w, i/s.w
			pts = append(pts, geom.Pt{X: x, Y: y})
			if x < box.X0 {
				box.X0 = x
			}
			if x > box.X1 {
				box.X1 = x
			}
			if y < box.Y0 {
				box.Y0 = y
			}
			if y > box.Y1 {
				box.Y1 = y
			}
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nx, ny := x+dx, y+dy
					if nx < 0 || ny < 0 || nx >= s.w || ny >= s.h {
						continue
					}
					j := ny*s.w + nx
					if s.pix[j] && !visited[j] {
						visited[j] = true
						queue = append(queue, j)
					}
				}
			}
		}
		if len(pts) < minArea {
			continue
		}
		sort.Slice(pts, func(a, b int) bool {
			if pts[a].Y != pts[b].Y {
				return pts[a].Y < pts[b].Y
			}
			return pts[a].X < pts[b].X
		})
		comps = append(comps, Component{Box: box, Area: len(pts), Points: pts})
	}
	return comps
}

// canonicalize orders components by a total key so two correct labellings
// compare equal even where the production (Y0, X0) sort leaves ties.
func canonicalize(comps []Component) {
	sort.Slice(comps, func(i, j int) bool {
		a, b := comps[i], comps[j]
		if a.Box != b.Box {
			if a.Box.Y0 != b.Box.Y0 {
				return a.Box.Y0 < b.Box.Y0
			}
			if a.Box.X0 != b.Box.X0 {
				return a.Box.X0 < b.Box.X0
			}
			if a.Box.Y1 != b.Box.Y1 {
				return a.Box.Y1 < b.Box.Y1
			}
			return a.Box.X1 < b.Box.X1
		}
		return a.Points[0].Y*1<<20+a.Points[0].X < b.Points[0].Y*1<<20+b.Points[0].X
	})
}

func checkComponents(t *testing.T, name string, got, want []Component) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d components, want %d", name, len(got), len(want))
	}
	canonicalize(got)
	canonicalize(want)
	for i := range got {
		if got[i].Box != want[i].Box || got[i].Area != want[i].Area {
			t.Fatalf("%s: component %d box=%+v area=%d, want box=%+v area=%d",
				name, i, got[i].Box, got[i].Area, want[i].Box, want[i].Area)
		}
		if !reflect.DeepEqual(got[i].Points, want[i].Points) {
			t.Fatalf("%s: component %d points differ (%d vs %d pts)",
				name, i, len(got[i].Points), len(want[i].Points))
		}
	}
}

func TestDiffComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, w := range testWidths {
		for _, density := range []int{1, 2, 3} {
			b, s := randomPair(rng, w, 19, density)
			for _, minArea := range []int{1, 2, 8} {
				want := refComponents(s, minArea)
				for _, workers := range testWorkerCounts {
					got := ComponentsW(b, minArea, workers)
					checkComponents(t, "ComponentsW", got, want)
					regs := RegionsW(b, minArea, workers)
					if len(regs) != len(want) {
						t.Fatalf("RegionsW(workers=%d): %d regions, want %d", workers, len(regs), len(want))
					}
				}
			}
		}
	}
}

// adversarialImages are shapes that stress the word-packing edge cases: the
// degenerate 1-pixel-wide column, solid ink, blank paper, a checkerboard
// (maximal component count under 8-connectivity is 1: diagonals connect),
// and isolated single-pixel columns.
func adversarialImages() map[string]*Binary {
	out := map[string]*Binary{}

	thin := NewBinary(1, 40)
	for y := 0; y < 40; y += 3 {
		thin.Set(0, y, true)
		if y+1 < 40 {
			thin.Set(0, y+1, true)
		}
	}
	out["1px-wide"] = thin

	ink := NewBinary(129, 17)
	ink.Fill(true)
	out["all-ink"] = ink

	out["all-blank"] = NewBinary(130, 9)

	check := NewBinary(67, 12)
	for y := 0; y < 12; y++ {
		for x := (y & 1); x < 67; x += 2 {
			check.Set(x, y, true)
		}
	}
	out["checkerboard"] = check

	stripes := NewBinary(191, 8)
	for x := 0; x < 191; x += 3 {
		for y := 0; y < 8; y++ {
			stripes.Set(x, y, true)
		}
	}
	out["stripes"] = stripes

	return out
}

func toShadow(b *Binary) *shadowBin {
	s := newShadow(b.W, b.H)
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			s.pix[y*s.w+x] = b.At(x, y)
		}
	}
	return s
}

func TestDiffComponentsAdversarial(t *testing.T) {
	for name, b := range adversarialImages() {
		s := toShadow(b)
		for _, minArea := range []int{1, 3} {
			want := refComponents(s, minArea)
			for _, workers := range testWorkerCounts {
				got := ComponentsW(b, minArea, workers)
				checkComponents(t, name, got, want)
			}
		}
		// ColProfile on the same shapes, against the per-pixel count.
		cp := ColProfile(b)
		for x := 0; x < b.W; x++ {
			n := 0
			for y := 0; y < b.H; y++ {
				if s.at(x, y) {
					n++
				}
			}
			if cp[x] != n {
				t.Fatalf("%s: ColProfile[%d]=%d want %d", name, x, cp[x], n)
			}
		}
	}
}

// TestDiffFromImage pins the typed fast paths of FromImage to the generic
// color.GrayModel conversion, including non-zero bounds origins.
func TestDiffFromImage(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	bounds := image.Rect(3, 5, 3+61, 5+17)

	gray := image.NewGray(bounds)
	for i := range gray.Pix {
		gray.Pix[i] = uint8(rng.Intn(256))
	}
	rgba := image.NewRGBA(bounds)
	for i := range rgba.Pix {
		rgba.Pix[i] = uint8(rng.Intn(256))
	}
	for i := 3; i < len(rgba.Pix); i += 4 {
		rgba.Pix[i] = 255 // opaque, like any decoded picture
	}

	for name, img := range map[string]image.Image{"gray": gray, "rgba": rgba} {
		got := FromImage(img)
		b := img.Bounds()
		for y := 0; y < got.H; y++ {
			for x := 0; x < got.W; x++ {
				want := color.GrayModel.Convert(img.At(b.Min.X+x, b.Min.Y+y)).(color.Gray).Y
				if got.Pix[y*got.W+x] != want {
					t.Fatalf("%s: FromImage(%d,%d)=%d want %d", name, x, y, got.Pix[y*got.W+x], want)
				}
			}
		}
	}
}

// refOtsu is the textbook single-histogram Otsu scan, structured exactly like
// the original implementation so the banked version must match bit for bit.
func refOtsu(g *Gray) uint8 {
	total := len(g.Pix)
	if total == 0 {
		return 128
	}
	var hist [256]int
	for _, v := range g.Pix {
		hist[v]++
	}
	var sum float64
	for i, n := range hist {
		sum += float64(i) * float64(n)
	}
	var sumB, wB float64
	bestVar, best := -1.0, 128
	for tt := 0; tt < 256; tt++ {
		wB += float64(hist[tt])
		if wB == 0 {
			continue
		}
		wF := float64(total) - wB
		if wF == 0 {
			break
		}
		sumB += float64(tt) * float64(hist[tt])
		mB := sumB / wB
		mF := (sum - sumB) / wF
		v := wB * wF * (mB - mF) * (mB - mF)
		if v > bestVar {
			bestVar = v
			best = tt
		}
	}
	return uint8(geom.Clamp(best+1, 1, 255))
}

func grayCases(rng *rand.Rand) map[string]*Gray {
	out := map[string]*Gray{}

	uni := NewGray(131, 41)
	for i := range uni.Pix {
		uni.Pix[i] = uint8(rng.Intn(256))
	}
	out["uniform-random"] = uni

	// Document-like bimodal: mostly paper with ink strokes.
	doc := NewGray(320, 200)
	for i := range doc.Pix {
		if rng.Intn(10) == 0 {
			doc.Pix[i] = uint8(rng.Intn(60))
		} else {
			doc.Pix[i] = uint8(200 + rng.Intn(56))
		}
	}
	out["document"] = doc

	// Pure black/white saturates the register-counted chunk paths.
	bw := NewGray(257, 77)
	for i := range bw.Pix {
		if rng.Intn(5) == 0 {
			bw.Pix[i] = 0
		} else {
			bw.Pix[i] = 255
		}
	}
	out["black-white"] = bw

	// Nearly uniform: one dissenting pixel, ragged length.
	near := NewGray(63, 5)
	for i := range near.Pix {
		near.Pix[i] = 180
	}
	near.Pix[len(near.Pix)-1] = 20
	out["near-uniform"] = near

	return out
}

func TestDiffOtsu(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for name, g := range grayCases(rng) {
		want := refOtsu(g)
		for _, workers := range testWorkerCounts {
			if got := OtsuThresholdW(g, workers); got != want {
				t.Fatalf("%s: OtsuThresholdW(workers=%d)=%d want %d", name, workers, got, want)
			}
		}
	}
}

func TestDiffThresholdWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for name, g := range grayCases(rng) {
		thr := OtsuThreshold(g)
		base := ThresholdW(g, thr, 1)
		for _, workers := range testWorkerCounts[1:] {
			got := ThresholdW(g, thr, workers)
			if !reflect.DeepEqual(got.Words, base.Words) {
				t.Fatalf("%s: ThresholdW(workers=%d) differs from sequential", name, workers)
			}
		}
		// And against the per-pixel definition.
		for y := 0; y < g.H; y++ {
			for x := 0; x < g.W; x++ {
				want := g.Pix[y*g.W+x] < thr
				if base.At(x, y) != want {
					t.Fatalf("%s: Threshold(%d,%d)=%v want %v", name, x, y, base.At(x, y), want)
				}
			}
		}
	}
}
