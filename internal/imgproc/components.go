package imgproc

import (
	"sort"

	"tdmagic/internal/geom"
)

// Component is a maximal set of 8-connected ink pixels.
type Component struct {
	Box    geom.Rect // bounding box of the component
	Area   int       // number of pixels in the component
	Points []geom.Pt // member pixels, row-major order
}

// Components labels b with 8-connectivity and returns every connected
// component of set pixels, sorted top-to-bottom then left-to-right by
// bounding-box origin. Components with fewer than minArea pixels are dropped.
func Components(b *Binary, minArea int) []Component {
	labels := make([]int32, b.W*b.H)
	for i := range labels {
		labels[i] = -1
	}
	var comps []Component
	// Iterative BFS flood fill to stay stack-safe on large blobs.
	queue := make([]geom.Pt, 0, 256)
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			idx := y*b.W + x
			if !b.Pix[idx] || labels[idx] >= 0 {
				continue
			}
			id := int32(len(comps))
			labels[idx] = id
			queue = queue[:0]
			queue = append(queue, geom.Pt{X: x, Y: y})
			comp := Component{Box: geom.Rect{X0: x, Y0: y, X1: x, Y1: y}}
			for len(queue) > 0 {
				p := queue[len(queue)-1]
				queue = queue[:len(queue)-1]
				comp.Points = append(comp.Points, p)
				comp.Area++
				comp.Box = comp.Box.Union(geom.Rect{X0: p.X, Y0: p.Y, X1: p.X, Y1: p.Y})
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						if dx == 0 && dy == 0 {
							continue
						}
						nx, ny := p.X+dx, p.Y+dy
						if nx < 0 || ny < 0 || nx >= b.W || ny >= b.H {
							continue
						}
						nidx := ny*b.W + nx
						if b.Pix[nidx] && labels[nidx] < 0 {
							labels[nidx] = id
							queue = append(queue, geom.Pt{X: nx, Y: ny})
						}
					}
				}
			}
			if comp.Area >= minArea {
				comps = append(comps, comp)
			}
		}
	}
	sort.Slice(comps, func(i, j int) bool {
		if comps[i].Box.Y0 != comps[j].Box.Y0 {
			return comps[i].Box.Y0 < comps[j].Box.Y0
		}
		return comps[i].Box.X0 < comps[j].Box.X0
	})
	return comps
}

// Mask returns a Binary of the component's bounding-box size with exactly the
// component's pixels set (coordinates relative to Box).
func (c Component) Mask() *Binary {
	m := NewBinary(c.Box.W(), c.Box.H())
	for _, p := range c.Points {
		m.Set(p.X-c.Box.X0, p.Y-c.Box.Y0, true)
	}
	return m
}

// RowProfile returns, for each row of b, the number of set pixels.
func RowProfile(b *Binary) []int {
	prof := make([]int, b.H)
	for y := 0; y < b.H; y++ {
		n := 0
		row := b.Pix[y*b.W : (y+1)*b.W]
		for _, v := range row {
			if v {
				n++
			}
		}
		prof[y] = n
	}
	return prof
}

// ColProfile returns, for each column of b, the number of set pixels.
func ColProfile(b *Binary) []int {
	prof := make([]int, b.W)
	for y := 0; y < b.H; y++ {
		row := b.Pix[y*b.W : (y+1)*b.W]
		for x, v := range row {
			if v {
				prof[x]++
			}
		}
	}
	return prof
}

// HRuns returns every maximal horizontal run of set pixels in b that is at
// least minLen pixels long.
func HRuns(b *Binary, minLen int) []geom.HSeg {
	var runs []geom.HSeg
	for y := 0; y < b.H; y++ {
		row := b.Pix[y*b.W : (y+1)*b.W]
		start := -1
		for x := 0; x <= b.W; x++ {
			set := x < b.W && row[x]
			if set && start < 0 {
				start = x
			} else if !set && start >= 0 {
				if x-start >= minLen {
					runs = append(runs, geom.HSeg{Y: y, X0: start, X1: x - 1})
				}
				start = -1
			}
		}
	}
	return runs
}

// VRuns returns every maximal vertical run of set pixels in b that is at
// least minLen pixels long.
func VRuns(b *Binary, minLen int) []geom.VSeg {
	var runs []geom.VSeg
	for x := 0; x < b.W; x++ {
		start := -1
		for y := 0; y <= b.H; y++ {
			set := y < b.H && b.Pix[y*b.W+x]
			if set && start < 0 {
				start = y
			} else if !set && start >= 0 {
				if y-start >= minLen {
					runs = append(runs, geom.VSeg{X: x, Y0: start, Y1: y - 1})
				}
				start = -1
			}
		}
	}
	return runs
}
