package imgproc

import (
	"math/bits"
	"sort"

	"tdmagic/internal/geom"
	"tdmagic/internal/parallel"
)

// Component is a maximal set of 8-connected ink pixels.
type Component struct {
	Box    geom.Rect // bounding box of the component
	Area   int       // number of pixels in the component
	Points []geom.Pt // member pixels, row-major order
}

// hrun is a maximal horizontal run of set pixels, the labelling unit of the
// connected-component pass. Runs are stored in global row-major order
// ((y, x0) ascending), so a run's slice index doubles as its discovery rank.
type hrun struct {
	y      int32
	x0, x1 int32 // inclusive column range
}

// Region is a connected component reduced to its aggregate geometry. The
// pipeline's consumers (contour extraction, edge proposals, text regions)
// only need the bounding box and pixel count, so the labelling pass can skip
// materialising the member-pixel list entirely.
type Region struct {
	Box  geom.Rect
	Area int
}

// Components labels b with 8-connectivity and returns every connected
// component of set pixels, sorted top-to-bottom then left-to-right by
// bounding-box origin. Components with fewer than minArea pixels are dropped.
func Components(b *Binary, minArea int) []Component {
	return ComponentsW(b, minArea, 1)
}

// Regions is RegionsW with a single worker.
func Regions(b *Binary, minArea int) []Region {
	return RegionsW(b, minArea, 1)
}

// RegionsW labels b like ComponentsW but returns only each component's
// bounding box and area, skipping the per-pixel Points materialisation —
// the fast path for callers that never look at individual member pixels.
// Ordering and filtering are identical to ComponentsW.
func RegionsW(b *Binary, minArea, workers int) []Region {
	runs, _, parent := labelRuns(b, workers)
	if runs == nil {
		return nil
	}
	accs, _ := accumulate(runs, parent)
	regs := make([]Region, 0, len(accs))
	for _, a := range accs {
		if int(a.area) >= minArea {
			regs = append(regs, Region{Box: a.box, Area: int(a.area)})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Box.Y0 != regs[j].Box.Y0 {
			return regs[i].Box.Y0 < regs[j].Box.Y0
		}
		return regs[i].Box.X0 < regs[j].Box.X0
	})
	return regs
}

// ComponentsW is Components fanned out over workers goroutines (<= 1 runs
// sequentially, inline). The image rows are split into bands: each band
// extracts its runs with trailing-zero word scans and unions vertically
// adjacent runs locally, then a sequential stitch pass merges runs across
// the band boundaries in index order. Union-by-minimum-index keeps every
// set's root at the component's first run in row-major order, so component
// discovery order — and therefore the sorted output — is bit-identical for
// any worker count, and identical to the historical per-pixel flood fill.
func ComponentsW(b *Binary, minArea, workers int) []Component {
	runs, _, parent := labelRuns(b, workers)
	if runs == nil {
		return nil
	}
	accs, compOf := accumulate(runs, parent)

	// Materialise the kept components, Points in row-major order.
	kept := make([]int32, len(accs))
	var comps []Component
	for ci, a := range accs {
		if int(a.area) >= minArea {
			kept[ci] = int32(len(comps))
			comps = append(comps, Component{
				Box:    a.box,
				Area:   int(a.area),
				Points: make([]geom.Pt, 0, a.area),
			})
		} else {
			kept[ci] = -1
		}
	}
	for i := range runs {
		ki := kept[compOf[i]]
		if ki < 0 {
			continue
		}
		pts := comps[ki].Points
		y := int(runs[i].y)
		for x := int(runs[i].x0); x <= int(runs[i].x1); x++ {
			pts = append(pts, geom.Pt{X: x, Y: y})
		}
		comps[ki].Points = pts
	}

	sort.Slice(comps, func(i, j int) bool {
		if comps[i].Box.Y0 != comps[j].Box.Y0 {
			return comps[i].Box.Y0 < comps[j].Box.Y0
		}
		return comps[i].Box.X0 < comps[j].Box.X0
	})
	return comps
}

// labelRuns extracts the maximal horizontal runs of b in row-major order and
// unions 8-connected runs, banded over workers goroutines. It returns nil
// runs when the image is blank or degenerate.
func labelRuns(b *Binary, workers int) (runs []hrun, rowOff []int32, parent []int32) {
	if b.W <= 0 || b.H <= 0 {
		return nil, nil, nil
	}
	workers = parallel.Resolve(workers)

	// Band partition: at least a few rows per band so the stitch pass stays
	// negligible; one band per worker is enough (runs scale with rows).
	nb := workers
	if nb > b.H {
		nb = b.H
	}
	if nb < 1 {
		nb = 1
	}
	bandStart := func(i int) int { return i * b.H / nb }

	// Pass 1: per-band run extraction, plus per-row run counts so the bands
	// can be concatenated into one row-major slice with O(1) row lookup.
	bandRuns := make([][]hrun, nb)
	rowOff = make([]int32, b.H+1)
	parallel.For(workers, nb, func(bi int) {
		y0, y1 := bandStart(bi), bandStart(bi+1)
		rs := make([]hrun, 0, 4*(y1-y0))
		for y := y0; y < y1; y++ {
			row := b.Row(y)
			n := int32(0)
			x := nextSet(row, 0, b.W)
			for x < b.W {
				end := nextClear(row, x+1, b.W)
				rs = append(rs, hrun{y: int32(y), x0: int32(x), x1: int32(end - 1)})
				n++
				x = nextSet(row, end+1, b.W)
			}
			rowOff[y+1] = n // per-row count; prefix-summed below
		}
		bandRuns[bi] = rs
	})
	for y := 0; y < b.H; y++ {
		rowOff[y+1] += rowOff[y]
	}
	nRuns := int(rowOff[b.H])
	if nRuns == 0 {
		return nil, nil, nil
	}
	runs = make([]hrun, nRuns)
	parent = make([]int32, nRuns)
	parallel.For(workers, nb, func(bi int) {
		off := rowOff[bandStart(bi)]
		copy(runs[off:], bandRuns[bi])
		for i := range bandRuns[bi] {
			parent[int(off)+i] = off + int32(i)
		}
	})

	// Pass 2: union vertically adjacent runs. Each band unions the row pairs
	// strictly inside it — those touch only run indices in the band's range,
	// so the bands are data-independent — and the boundary row pairs are
	// stitched sequentially afterwards, in band order.
	parallel.For(workers, nb, func(bi int) {
		for y := bandStart(bi) + 1; y < bandStart(bi+1); y++ {
			unionRows(runs, parent, rowOff, y)
		}
	})
	for bi := 1; bi < nb; bi++ {
		unionRows(runs, parent, rowOff, bandStart(bi))
	}
	return runs, rowOff, parent
}

// compAcc is the per-component aggregate built by accumulate.
type compAcc struct {
	box  geom.Rect
	area int32
}

// accumulate resolves every run's root and folds area and bounding box per
// component. Union-by-min guarantees root(i) <= i, so one ascending sweep
// sees every root before its members; components come out in discovery
// order (row-major order of each component's first run).
func accumulate(runs []hrun, parent []int32) ([]compAcc, []int32) {
	compOf := make([]int32, len(runs))
	var accs []compAcc
	for i := range runs {
		r := findRoot(parent, int32(i))
		var ci int32
		if int(r) == i {
			ci = int32(len(accs))
			accs = append(accs, compAcc{box: geom.Rect{
				X0: int(runs[i].x0), Y0: int(runs[i].y),
				X1: int(runs[i].x1), Y1: int(runs[i].y),
			}})
		} else {
			ci = compOf[r]
			a := &accs[ci]
			if int(runs[i].x0) < a.box.X0 {
				a.box.X0 = int(runs[i].x0)
			}
			if int(runs[i].x1) > a.box.X1 {
				a.box.X1 = int(runs[i].x1)
			}
			a.box.Y1 = int(runs[i].y) // runs arrive in ascending y
		}
		compOf[i] = ci
		accs[ci].area += runs[i].x1 - runs[i].x0 + 1
	}
	return accs, compOf
}

// unionRows unions every 8-connected run pair between row y-1 and row y with
// a linear merge of the two sorted run lists.
func unionRows(runs []hrun, parent []int32, rowOff []int32, y int) {
	i, iEnd := rowOff[y-1], rowOff[y]
	j, jEnd := rowOff[y], rowOff[y+1]
	for i < iEnd && j < jEnd {
		// 8-connectivity: the run above touches [x0-1, x1+1] of the run below.
		if runs[i].x1+1 >= runs[j].x0 && runs[i].x0 <= runs[j].x1+1 {
			union(parent, i, j)
		}
		if runs[i].x1 < runs[j].x1 {
			i++
		} else {
			j++
		}
	}
}

// findRoot returns the set root with path halving.
func findRoot(parent []int32, i int32) int32 {
	for parent[i] != i {
		parent[i] = parent[parent[i]]
		i = parent[i]
	}
	return i
}

// union merges the sets of a and b, keeping the smaller root index — so a
// set's root is always its first run in row-major order.
func union(parent []int32, a, b int32) {
	ra, rb := findRoot(parent, a), findRoot(parent, b)
	if ra == rb {
		return
	}
	if ra < rb {
		parent[rb] = ra
	} else {
		parent[ra] = rb
	}
}

// Mask returns a Binary of the component's bounding-box size with exactly the
// component's pixels set (coordinates relative to Box).
func (c Component) Mask() *Binary {
	m := NewBinary(c.Box.W(), c.Box.H())
	for _, p := range c.Points {
		m.Set(p.X-c.Box.X0, p.Y-c.Box.Y0, true)
	}
	return m
}

// RowProfile returns, for each row of b, the number of set pixels.
func RowProfile(b *Binary) []int {
	prof := make([]int, b.H)
	for y := 0; y < b.H; y++ {
		n := 0
		for _, w := range b.Row(y) {
			n += bits.OnesCount64(w)
		}
		prof[y] = n
	}
	return prof
}

// ColProfile returns, for each column of b, the number of set pixels.
//
// Columns are counted 64 at a time without transposing: per word column a
// bit-sliced adder (8 carry planes, one bit per column each) accumulates up
// to 255 rows, and the planes are unpacked into the profile per chunk. The
// cost is a handful of word operations per row instead of one popcount-loop
// iteration per set pixel, which keeps dense images (solid plateaus, filled
// glyphs) as cheap as sparse ones.
func ColProfile(b *Binary) []int {
	prof := make([]int, b.W)
	for wi := 0; wi < b.Stride; wi++ {
		base := wi << 6
		width := 64
		if base+width > b.W {
			width = b.W - base
		}
		var c0, c1, c2, c3, c4, c5, c6, c7 uint64
		rows := 0
		flush := func() {
			for l := 0; l < width; l++ {
				prof[base+l] += int(c0>>l&1) | int(c1>>l&1)<<1 | int(c2>>l&1)<<2 |
					int(c3>>l&1)<<3 | int(c4>>l&1)<<4 | int(c5>>l&1)<<5 |
					int(c6>>l&1)<<6 | int(c7>>l&1)<<7
			}
			c0, c1, c2, c3, c4, c5, c6, c7 = 0, 0, 0, 0, 0, 0, 0, 0
			rows = 0
		}
		for y := 0; y < b.H; y++ {
			// Ripple-carry add of one bit per column; the carry chain
			// almost always dies after one or two planes.
			c := b.Words[y*b.Stride+wi]
			c, c0 = c&c0, c^c0
			if c != 0 {
				c, c1 = c&c1, c^c1
				if c != 0 {
					c, c2 = c&c2, c^c2
					if c != 0 {
						c, c3 = c&c3, c^c3
						if c != 0 {
							c, c4 = c&c4, c^c4
							if c != 0 {
								c, c5 = c&c5, c^c5
								if c != 0 {
									c, c6 = c&c6, c^c6
									c7 ^= c // rows < 256: no carry out
								}
							}
						}
					}
				}
			}
			if rows++; rows == 255 {
				flush()
			}
		}
		if rows > 0 {
			flush()
		}
	}
	return prof
}

// HRuns returns every maximal horizontal run of set pixels in b that is at
// least minLen pixels long.
func HRuns(b *Binary, minLen int) []geom.HSeg {
	var runs []geom.HSeg
	for y := 0; y < b.H; y++ {
		row := b.Row(y)
		x := nextSet(row, 0, b.W)
		for x < b.W {
			end := nextClear(row, x+1, b.W)
			if end-x >= minLen {
				runs = append(runs, geom.HSeg{Y: y, X0: x, X1: end - 1})
			}
			x = nextSet(row, end+1, b.W)
		}
	}
	return runs
}

// VRuns returns every maximal vertical run of set pixels in b that is at
// least minLen pixels long.
//
// Columns are processed 64 at a time: per word-column the run starts are
// `row &^ prevRow` and the run ends `prevRow &^ row`, so a single pass down
// the image tracks all 64 lanes in parallel.
func VRuns(b *Binary, minLen int) []geom.VSeg {
	var runs []geom.VSeg
	var start [64]int32
	for wi := 0; wi < b.Stride; wi++ {
		blockBase := len(runs)
		var prev uint64
		for y := 0; y < b.H; y++ {
			w := b.Words[y*b.Stride+wi]
			starts := w &^ prev
			for starts != 0 {
				start[bits.TrailingZeros64(starts)] = int32(y)
				starts &= starts - 1
			}
			ends := prev &^ w
			for ends != 0 {
				l := bits.TrailingZeros64(ends)
				ends &= ends - 1
				if y-int(start[l]) >= minLen {
					runs = append(runs, geom.VSeg{X: wi<<6 + l, Y0: int(start[l]), Y1: y - 1})
				}
			}
			prev = w
		}
		for prev != 0 {
			l := bits.TrailingZeros64(prev)
			prev &= prev - 1
			if b.H-int(start[l]) >= minLen {
				runs = append(runs, geom.VSeg{X: wi<<6 + l, Y0: int(start[l]), Y1: b.H - 1})
			}
		}
		// Lanes finished in arbitrary order within the block; restore the
		// column-major (x, then y) ordering of the per-pixel reference.
		block := runs[blockBase:]
		sort.Slice(block, func(i, j int) bool {
			if block[i].X != block[j].X {
				return block[i].X < block[j].X
			}
			return block[i].Y0 < block[j].Y0
		})
	}
	return runs
}
