package imgproc

import (
	"math/bits"
	"sort"

	"tdmagic/internal/geom"
)

// Component is a maximal set of 8-connected ink pixels.
type Component struct {
	Box    geom.Rect // bounding box of the component
	Area   int       // number of pixels in the component
	Points []geom.Pt // member pixels, row-major order
}

// Components labels b with 8-connectivity and returns every connected
// component of set pixels, sorted top-to-bottom then left-to-right by
// bounding-box origin. Components with fewer than minArea pixels are dropped.
//
// The scan for unvisited seed pixels walks the packed words (a trailing-zero
// scan skips blank stretches 64 pixels at a time); the flood fill itself is
// per-pixel.
func Components(b *Binary, minArea int) []Component {
	labels := make([]int32, b.W*b.H)
	for i := range labels {
		labels[i] = -1
	}
	var comps []Component
	// Iterative BFS flood fill to stay stack-safe on large blobs.
	queue := make([]geom.Pt, 0, 256)
	for y := 0; y < b.H; y++ {
		row := b.Row(y)
		for wi, w := range row {
			for w != 0 {
				x := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				idx := y*b.W + x
				if labels[idx] >= 0 {
					continue
				}
				id := int32(len(comps))
				labels[idx] = id
				queue = queue[:0]
				queue = append(queue, geom.Pt{X: x, Y: y})
				comp := Component{Box: geom.Rect{X0: x, Y0: y, X1: x, Y1: y}}
				for len(queue) > 0 {
					p := queue[len(queue)-1]
					queue = queue[:len(queue)-1]
					comp.Points = append(comp.Points, p)
					comp.Area++
					comp.Box = comp.Box.Union(geom.Rect{X0: p.X, Y0: p.Y, X1: p.X, Y1: p.Y})
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							if dx == 0 && dy == 0 {
								continue
							}
							nx, ny := p.X+dx, p.Y+dy
							if !b.At(nx, ny) {
								continue
							}
							nidx := ny*b.W + nx
							if labels[nidx] < 0 {
								labels[nidx] = id
								queue = append(queue, geom.Pt{X: nx, Y: ny})
							}
						}
					}
				}
				if comp.Area >= minArea {
					comps = append(comps, comp)
				}
			}
		}
	}
	sort.Slice(comps, func(i, j int) bool {
		if comps[i].Box.Y0 != comps[j].Box.Y0 {
			return comps[i].Box.Y0 < comps[j].Box.Y0
		}
		return comps[i].Box.X0 < comps[j].Box.X0
	})
	return comps
}

// Mask returns a Binary of the component's bounding-box size with exactly the
// component's pixels set (coordinates relative to Box).
func (c Component) Mask() *Binary {
	m := NewBinary(c.Box.W(), c.Box.H())
	for _, p := range c.Points {
		m.Set(p.X-c.Box.X0, p.Y-c.Box.Y0, true)
	}
	return m
}

// RowProfile returns, for each row of b, the number of set pixels.
func RowProfile(b *Binary) []int {
	prof := make([]int, b.H)
	for y := 0; y < b.H; y++ {
		n := 0
		for _, w := range b.Row(y) {
			n += bits.OnesCount64(w)
		}
		prof[y] = n
	}
	return prof
}

// ColProfile returns, for each column of b, the number of set pixels.
func ColProfile(b *Binary) []int {
	prof := make([]int, b.W)
	for y := 0; y < b.H; y++ {
		for wi, w := range b.Row(y) {
			base := wi << 6
			for w != 0 {
				prof[base+bits.TrailingZeros64(w)]++
				w &= w - 1
			}
		}
	}
	return prof
}

// HRuns returns every maximal horizontal run of set pixels in b that is at
// least minLen pixels long.
func HRuns(b *Binary, minLen int) []geom.HSeg {
	var runs []geom.HSeg
	for y := 0; y < b.H; y++ {
		row := b.Row(y)
		x := nextSet(row, 0, b.W)
		for x < b.W {
			end := nextClear(row, x+1, b.W)
			if end-x >= minLen {
				runs = append(runs, geom.HSeg{Y: y, X0: x, X1: end - 1})
			}
			x = nextSet(row, end+1, b.W)
		}
	}
	return runs
}

// VRuns returns every maximal vertical run of set pixels in b that is at
// least minLen pixels long.
//
// Columns are processed 64 at a time: per word-column the run starts are
// `row &^ prevRow` and the run ends `prevRow &^ row`, so a single pass down
// the image tracks all 64 lanes in parallel.
func VRuns(b *Binary, minLen int) []geom.VSeg {
	var runs []geom.VSeg
	var start [64]int32
	for wi := 0; wi < b.Stride; wi++ {
		blockBase := len(runs)
		var prev uint64
		for y := 0; y < b.H; y++ {
			w := b.Words[y*b.Stride+wi]
			starts := w &^ prev
			for starts != 0 {
				start[bits.TrailingZeros64(starts)] = int32(y)
				starts &= starts - 1
			}
			ends := prev &^ w
			for ends != 0 {
				l := bits.TrailingZeros64(ends)
				ends &= ends - 1
				if y-int(start[l]) >= minLen {
					runs = append(runs, geom.VSeg{X: wi<<6 + l, Y0: int(start[l]), Y1: y - 1})
				}
			}
			prev = w
		}
		for prev != 0 {
			l := bits.TrailingZeros64(prev)
			prev &= prev - 1
			if b.H-int(start[l]) >= minLen {
				runs = append(runs, geom.VSeg{X: wi<<6 + l, Y0: int(start[l]), Y1: b.H - 1})
			}
		}
		// Lanes finished in arbitrary order within the block; restore the
		// column-major (x, then y) ordering of the per-pixel reference.
		block := runs[blockBase:]
		sort.Slice(block, func(i, j int) bool {
			if block[i].X != block[j].X {
				return block[i].X < block[j].X
			}
			return block[i].Y0 < block[j].Y0
		})
	}
	return runs
}
