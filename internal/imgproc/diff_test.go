package imgproc

import (
	"math/rand"
	"testing"

	"tdmagic/internal/geom"
)

// Differential tests of the bit-packed Binary against a plain []bool shadow
// image: every word-parallel kernel must agree with the obvious per-pixel
// reference on randomized images, including widths that are not multiples
// of 64 (the padding-bit edge cases).

// shadowBin is the unpacked reference representation.
type shadowBin struct {
	w, h int
	pix  []bool
}

func newShadow(w, h int) *shadowBin {
	return &shadowBin{w: w, h: h, pix: make([]bool, w*h)}
}

func (s *shadowBin) at(x, y int) bool {
	if x < 0 || y < 0 || x >= s.w || y >= s.h {
		return false
	}
	return s.pix[y*s.w+x]
}

// randomPair builds a packed Binary and its shadow with identical random
// content. density is the probability numerator out of 4.
func randomPair(rng *rand.Rand, w, h, density int) (*Binary, *shadowBin) {
	b := NewBinary(w, h)
	s := newShadow(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := rng.Intn(4) < density
			b.Set(x, y, v)
			s.pix[y*s.w+x] = v
		}
	}
	return b, s
}

func checkAgainstShadow(t *testing.T, b *Binary, s *shadowBin) {
	t.Helper()
	for y := 0; y < s.h; y++ {
		for x := 0; x < s.w; x++ {
			if b.At(x, y) != s.at(x, y) {
				t.Fatalf("pixel (%d,%d): packed=%v shadow=%v", x, y, b.At(x, y), s.at(x, y))
			}
		}
	}
	// Padding bits must stay clear: Count relies on the invariant.
	n := 0
	for _, v := range s.pix {
		if v {
			n++
		}
	}
	if b.Count() != n {
		t.Fatalf("Count=%d shadow=%d (padding bits dirty?)", b.Count(), n)
	}
}

// testWidths exercises word boundaries: sub-word, exactly one word, one bit
// over, and multi-word with a ragged tail.
var testWidths = []int{1, 57, 63, 64, 65, 129}

func TestDiffSetAtCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, w := range testWidths {
		b, s := randomPair(rng, w, 17, 2)
		checkAgainstShadow(t, b, s)
		// Random clears must agree too (Set false path).
		for i := 0; i < 50; i++ {
			x, y := rng.Intn(w), rng.Intn(17)
			b.Set(x, y, false)
			s.pix[y*s.w+x] = false
		}
		checkAgainstShadow(t, b, s)
	}
}

func TestDiffOrAndNot(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, w := range testWidths {
		a, sa := randomPair(rng, w, 13, 2)
		b, sb := randomPair(rng, w, 13, 2)
		or := a.Clone()
		or.Or(b)
		an := a.Clone()
		an.AndNot(b)
		for i := range sa.pix {
			orRef := sa.pix[i] || sb.pix[i]
			anRef := sa.pix[i] && !sb.pix[i]
			y, x := i/w, i%w
			if or.At(x, y) != orRef {
				t.Fatalf("w=%d Or(%d,%d)=%v want %v", w, x, y, or.At(x, y), orRef)
			}
			if an.At(x, y) != anRef {
				t.Fatalf("w=%d AndNot(%d,%d)=%v want %v", w, x, y, an.At(x, y), anRef)
			}
		}
	}
}

func TestDiffClearRect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, w := range testWidths {
		for trial := 0; trial < 20; trial++ {
			b, s := randomPair(rng, w, 15, 3)
			r := geom.Rect{
				X0: rng.Intn(w+10) - 5, Y0: rng.Intn(20) - 5,
				X1: rng.Intn(w+10) - 5, Y1: rng.Intn(20) - 5,
			}
			b.ClearRect(r)
			for y := 0; y < s.h; y++ {
				for x := 0; x < s.w; x++ {
					if x >= r.X0 && x <= r.X1 && y >= r.Y0 && y <= r.Y1 {
						s.pix[y*s.w+x] = false
					}
				}
			}
			checkAgainstShadow(t, b, s)
		}
	}
}

func TestDiffCrop(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, w := range testWidths {
		b, s := randomPair(rng, w, 21, 2)
		for trial := 0; trial < 10; trial++ {
			x0, y0 := rng.Intn(w), rng.Intn(21)
			x1, y1 := x0+rng.Intn(w-x0), y0+rng.Intn(21-y0)
			c := b.Crop(geom.Rect{X0: x0, Y0: y0, X1: x1, Y1: y1})
			for y := 0; y <= y1-y0; y++ {
				for x := 0; x <= x1-x0; x++ {
					if c.At(x, y) != s.at(x0+x, y0+y) {
						t.Fatalf("w=%d crop(%d,%d,%d,%d) at (%d,%d) wrong", w, x0, y0, x1, y1, x, y)
					}
				}
			}
			if cnt := c.Count(); cnt < 0 || cnt > (x1-x0+1)*(y1-y0+1) {
				t.Fatalf("crop count %d out of range (padding bits dirty)", cnt)
			}
		}
	}
}

func TestDiffThresholdToGray(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, w := range testWidths {
		g := NewGray(w, 9)
		for i := range g.Pix {
			g.Pix[i] = uint8(rng.Intn(256))
		}
		// Thresholds on both sides of the 128 boundary exercise both MSB
		// branches of the SWAR compare, plus the degenerate extremes.
		for _, thr := range []uint8{0, 1, 100, 127, 128, 129, 200, 255} {
			bt := Threshold(g, thr)
			for y := 0; y < 9; y++ {
				for x := 0; x < w; x++ {
					want := g.Pix[y*w+x] < thr
					if bt.At(x, y) != want {
						t.Fatalf("w=%d thr=%d Threshold(%d,%d)=%v want %v", w, thr, x, y, bt.At(x, y), want)
					}
				}
			}
		}
		b := Threshold(g, 128)
		back := b.ToGray()
		for i := range back.Pix {
			want := uint8(255)
			if g.Pix[i] < 128 {
				want = 0
			}
			if back.Pix[i] != want {
				t.Fatalf("w=%d ToGray[%d]=%d want %d", w, i, back.Pix[i], want)
			}
		}
	}
}

func TestDiffProfiles(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, w := range testWidths {
		b, s := randomPair(rng, w, 11, 2)
		rp := RowProfile(b)
		cp := ColProfile(b)
		for y := 0; y < s.h; y++ {
			want := 0
			for x := 0; x < s.w; x++ {
				if s.at(x, y) {
					want++
				}
			}
			if rp[y] != want {
				t.Fatalf("w=%d RowProfile[%d]=%d want %d", w, y, rp[y], want)
			}
		}
		for x := 0; x < s.w; x++ {
			want := 0
			for y := 0; y < s.h; y++ {
				if s.at(x, y) {
					want++
				}
			}
			if cp[x] != want {
				t.Fatalf("w=%d ColProfile[%d]=%d want %d", w, x, cp[x], want)
			}
		}
	}
}

// refHRuns is the per-pixel reference for HRuns.
func refHRuns(s *shadowBin, minLen int) []geom.HSeg {
	var runs []geom.HSeg
	for y := 0; y < s.h; y++ {
		x := 0
		for x < s.w {
			if !s.at(x, y) {
				x++
				continue
			}
			start := x
			for x < s.w && s.at(x, y) {
				x++
			}
			if x-start >= minLen {
				runs = append(runs, geom.HSeg{Y: y, X0: start, X1: x - 1})
			}
		}
	}
	return runs
}

// refVRuns is the per-pixel reference for VRuns, in column-major order.
func refVRuns(s *shadowBin, minLen int) []geom.VSeg {
	var runs []geom.VSeg
	for x := 0; x < s.w; x++ {
		y := 0
		for y < s.h {
			if !s.at(x, y) {
				y++
				continue
			}
			start := y
			for y < s.h && s.at(x, y) {
				y++
			}
			if y-start >= minLen {
				runs = append(runs, geom.VSeg{X: x, Y0: start, Y1: y - 1})
			}
		}
	}
	return runs
}

func TestDiffRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, w := range testWidths {
		for _, minLen := range []int{1, 2, 4} {
			b, s := randomPair(rng, w, 19, 3)
			hr := HRuns(b, minLen)
			hrRef := refHRuns(s, minLen)
			if len(hr) != len(hrRef) {
				t.Fatalf("w=%d minLen=%d HRuns count %d want %d", w, minLen, len(hr), len(hrRef))
			}
			for i := range hr {
				if hr[i] != hrRef[i] {
					t.Fatalf("w=%d HRuns[%d]=%v want %v", w, i, hr[i], hrRef[i])
				}
			}
			vr := VRuns(b, minLen)
			vrRef := refVRuns(s, minLen)
			if len(vr) != len(vrRef) {
				t.Fatalf("w=%d minLen=%d VRuns count %d want %d", w, minLen, len(vr), len(vrRef))
			}
			for i := range vr {
				if vr[i] != vrRef[i] {
					t.Fatalf("w=%d VRuns[%d]=%v want %v", w, i, vr[i], vrRef[i])
				}
			}
		}
	}
}

func TestDiffRowAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, w := range testWidths {
		b, s := randomPair(rng, w, 9, 2)
		for trial := 0; trial < 200; trial++ {
			y := rng.Intn(13) - 2
			x0 := rng.Intn(w+8) - 4
			x1 := rng.Intn(w+8) - 4
			cnt, any := 0, false
			first, last := -1, -1
			for x := x0; x <= x1; x++ {
				if s.at(x, y) {
					cnt++
					any = true
					if first < 0 {
						first = x
					}
					last = x
				}
			}
			if got := b.RowCount(y, x0, x1); got != cnt {
				t.Fatalf("w=%d RowCount(%d,%d,%d)=%d want %d", w, y, x0, x1, got, cnt)
			}
			if got := b.RowAny(y, x0, x1); got != any {
				t.Fatalf("w=%d RowAny(%d,%d,%d)=%v want %v", w, y, x0, x1, got, any)
			}
			gf, gl, ok := b.RowSpan(y, x0, x1)
			if ok != any || (ok && (gf != first || gl != last)) {
				t.Fatalf("w=%d RowSpan(%d,%d,%d)=(%d,%d,%v) want (%d,%d,%v)",
					w, y, x0, x1, gf, gl, ok, first, last, any)
			}
		}
		for trial := 0; trial < 50; trial++ {
			r := geom.Rect{
				X0: rng.Intn(w+8) - 4, Y0: rng.Intn(13) - 2,
				X1: rng.Intn(w+8) - 4, Y1: rng.Intn(13) - 2,
			}
			want := 0
			for y := r.Y0; y <= r.Y1; y++ {
				for x := r.X0; x <= r.X1; x++ {
					if s.at(x, y) {
						want++
					}
				}
			}
			if got := b.CountRect(r); got != want {
				t.Fatalf("w=%d CountRect(%+v)=%d want %d", w, r, got, want)
			}
		}
	}
}

func TestDiffFill(t *testing.T) {
	for _, w := range testWidths {
		b := NewBinary(w, 5)
		b.Fill(true)
		if b.Count() != w*5 {
			t.Fatalf("w=%d Fill(true) count=%d want %d", w, b.Count(), w*5)
		}
		b.Fill(false)
		if b.Count() != 0 {
			t.Fatalf("w=%d Fill(false) count=%d", w, b.Count())
		}
	}
}
