// Package imgproc provides the raster substrate of the TD-Magic pipeline:
// grayscale and binary image types, thresholding, connected-component
// labelling, row/column profiles, cropping and nearest-neighbour scaling.
//
// Timing-diagram pictures are dark ink on light paper. The pipeline works on
// the inverse binary image ("imgBW" in the paper): a pixel is set (true) when
// it carries ink. All algorithms in this package follow that convention.
package imgproc

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"

	"tdmagic/internal/geom"
)

// Gray is a dense 8-bit grayscale image. 0 is black, 255 is white.
type Gray struct {
	W, H int
	Pix  []uint8 // row-major, len = W*H
}

// NewGray returns a Gray of the given size filled with white (255).
func NewGray(w, h int) *Gray {
	g := &Gray{W: w, H: h, Pix: make([]uint8, w*h)}
	for i := range g.Pix {
		g.Pix[i] = 255
	}
	return g
}

// At returns the pixel at (x, y); out-of-bounds reads return white.
func (g *Gray) At(x, y int) uint8 {
	if x < 0 || y < 0 || x >= g.W || y >= g.H {
		return 255
	}
	return g.Pix[y*g.W+x]
}

// Set writes the pixel at (x, y); out-of-bounds writes are ignored.
func (g *Gray) Set(x, y int, v uint8) {
	if x < 0 || y < 0 || x >= g.W || y >= g.H {
		return
	}
	g.Pix[y*g.W+x] = v
}

// Bounds returns the image rectangle in geom coordinates.
func (g *Gray) Bounds() geom.Rect { return geom.Rect{X0: 0, Y0: 0, X1: g.W - 1, Y1: g.H - 1} }

// Clone returns a deep copy of g.
func (g *Gray) Clone() *Gray {
	c := &Gray{W: g.W, H: g.H, Pix: make([]uint8, len(g.Pix))}
	copy(c.Pix, g.Pix)
	return c
}

// Crop returns a copy of the region r of g (clipped to the image).
func (g *Gray) Crop(r geom.Rect) *Gray {
	r = r.Clip(g.Bounds())
	if r.Empty() {
		return NewGray(0, 0)
	}
	out := NewGray(r.W(), r.H())
	for y := 0; y < out.H; y++ {
		src := (r.Y0+y)*g.W + r.X0
		copy(out.Pix[y*out.W:(y+1)*out.W], g.Pix[src:src+out.W])
	}
	return out
}

// ScaleTo returns g resampled to w×h using nearest-neighbour interpolation.
func (g *Gray) ScaleTo(w, h int) *Gray {
	out := NewGray(w, h)
	if g.W == 0 || g.H == 0 || w == 0 || h == 0 {
		return out
	}
	for y := 0; y < h; y++ {
		sy := y * g.H / h
		for x := 0; x < w; x++ {
			sx := x * g.W / w
			out.Pix[y*w+x] = g.Pix[sy*g.W+sx]
		}
	}
	return out
}

// ToImage converts g to a stdlib *image.Gray.
func (g *Gray) ToImage() *image.Gray {
	img := image.NewGray(image.Rect(0, 0, g.W, g.H))
	for y := 0; y < g.H; y++ {
		copy(img.Pix[y*img.Stride:y*img.Stride+g.W], g.Pix[y*g.W:(y+1)*g.W])
	}
	return img
}

// FromImage converts any stdlib image to a Gray using the luminance of each
// pixel.
func FromImage(img image.Image) *Gray {
	b := img.Bounds()
	g := NewGray(b.Dx(), b.Dy())
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			c := color.GrayModel.Convert(img.At(b.Min.X+x, b.Min.Y+y)).(color.Gray)
			g.Pix[y*g.W+x] = c.Y
		}
	}
	return g
}

// EncodePNG writes g as a PNG to w.
func (g *Gray) EncodePNG(w io.Writer) error { return png.Encode(w, g.ToImage()) }

// DecodePNG reads a PNG from r and converts it to a Gray.
func DecodePNG(r io.Reader) (*Gray, error) {
	img, err := png.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("imgproc: decode png: %w", err)
	}
	return FromImage(img), nil
}

// Binary is a dense 1-bit image. Set pixels (true) carry ink.
type Binary struct {
	W, H int
	Pix  []bool // row-major, len = W*H
}

// NewBinary returns an all-clear Binary of the given size.
func NewBinary(w, h int) *Binary {
	return &Binary{W: w, H: h, Pix: make([]bool, w*h)}
}

// At returns the pixel at (x, y); out-of-bounds reads return false.
func (b *Binary) At(x, y int) bool {
	if x < 0 || y < 0 || x >= b.W || y >= b.H {
		return false
	}
	return b.Pix[y*b.W+x]
}

// Set writes the pixel at (x, y); out-of-bounds writes are ignored.
func (b *Binary) Set(x, y int, v bool) {
	if x < 0 || y < 0 || x >= b.W || y >= b.H {
		return
	}
	b.Pix[y*b.W+x] = v
}

// Bounds returns the image rectangle in geom coordinates.
func (b *Binary) Bounds() geom.Rect { return geom.Rect{X0: 0, Y0: 0, X1: b.W - 1, Y1: b.H - 1} }

// Clone returns a deep copy of b.
func (b *Binary) Clone() *Binary {
	c := &Binary{W: b.W, H: b.H, Pix: make([]bool, len(b.Pix))}
	copy(c.Pix, b.Pix)
	return c
}

// Count returns the number of set pixels.
func (b *Binary) Count() int {
	n := 0
	for _, v := range b.Pix {
		if v {
			n++
		}
	}
	return n
}

// Crop returns a copy of the region r of b (clipped to the image).
func (b *Binary) Crop(r geom.Rect) *Binary {
	r = r.Clip(b.Bounds())
	if r.Empty() {
		return NewBinary(0, 0)
	}
	out := NewBinary(r.W(), r.H())
	for y := 0; y < out.H; y++ {
		src := (r.Y0+y)*b.W + r.X0
		copy(out.Pix[y*out.W:(y+1)*out.W], b.Pix[src:src+out.W])
	}
	return out
}

// Or sets every pixel of b that is set in o. Both images must have equal size.
func (b *Binary) Or(o *Binary) {
	if b.W != o.W || b.H != o.H {
		panic("imgproc: Or on mismatched sizes")
	}
	for i, v := range o.Pix {
		if v {
			b.Pix[i] = true
		}
	}
}

// AndNot clears every pixel of b that is set in o.
func (b *Binary) AndNot(o *Binary) {
	if b.W != o.W || b.H != o.H {
		panic("imgproc: AndNot on mismatched sizes")
	}
	for i, v := range o.Pix {
		if v {
			b.Pix[i] = false
		}
	}
}

// ClearRect clears every pixel inside r.
func (b *Binary) ClearRect(r geom.Rect) {
	r = r.Clip(b.Bounds())
	for y := r.Y0; y <= r.Y1; y++ {
		for x := r.X0; x <= r.X1; x++ {
			b.Pix[y*b.W+x] = false
		}
	}
}

// ToGray converts b to a Gray image: set pixels become black (0), clear
// pixels white (255).
func (b *Binary) ToGray() *Gray {
	g := NewGray(b.W, b.H)
	for i, v := range b.Pix {
		if v {
			g.Pix[i] = 0
		}
	}
	return g
}

// Threshold converts g to an inverse binary image: a pixel is set when its
// gray value is strictly below thr (i.e. the pixel carries ink).
func Threshold(g *Gray, thr uint8) *Binary {
	b := NewBinary(g.W, g.H)
	for i, v := range g.Pix {
		if v < thr {
			b.Pix[i] = true
		}
	}
	return b
}

// OtsuThreshold computes the Otsu threshold of g: the gray level that
// maximises the between-class variance of the ink/paper split. It returns a
// value suitable to pass to Threshold.
func OtsuThreshold(g *Gray) uint8 {
	var hist [256]int
	for _, v := range g.Pix {
		hist[v]++
	}
	total := len(g.Pix)
	if total == 0 {
		return 128
	}
	var sum float64
	for i, n := range hist {
		sum += float64(i) * float64(n)
	}
	var sumB, wB float64
	bestVar, best := -1.0, 128
	for t := 0; t < 256; t++ {
		wB += float64(hist[t])
		if wB == 0 {
			continue
		}
		wF := float64(total) - wB
		if wF == 0 {
			break
		}
		sumB += float64(t) * float64(hist[t])
		mB := sumB / wB
		mF := (sum - sumB) / wF
		v := wB * wF * (mB - mF) * (mB - mF)
		if v > bestVar {
			bestVar = v
			best = t
		}
	}
	// Threshold() uses "strictly below", so split just above the class
	// boundary.
	return uint8(geom.Clamp(best+1, 1, 255))
}
