// Package imgproc provides the raster substrate of the TD-Magic pipeline:
// grayscale and binary image types, thresholding, connected-component
// labelling, row/column profiles, cropping and nearest-neighbour scaling.
//
// Timing-diagram pictures are dark ink on light paper. The pipeline works on
// the inverse binary image ("imgBW" in the paper): a pixel is set (true) when
// it carries ink. All algorithms in this package follow that convention.
package imgproc

import (
	"encoding/binary"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math/bits"

	"tdmagic/internal/geom"
	"tdmagic/internal/parallel"
)

// Gray is a dense 8-bit grayscale image. 0 is black, 255 is white.
type Gray struct {
	W, H int
	Pix  []uint8 // row-major, len = W*H
}

// NewGray returns a Gray of the given size filled with white (255).
func NewGray(w, h int) *Gray {
	g := newGrayNoFill(w, h)
	for i := range g.Pix {
		g.Pix[i] = 255
	}
	return g
}

// newGrayNoFill returns a zero-valued Gray for callers that overwrite every
// pixel before the image escapes.
func newGrayNoFill(w, h int) *Gray {
	return &Gray{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x, y); out-of-bounds reads return white.
func (g *Gray) At(x, y int) uint8 {
	if x < 0 || y < 0 || x >= g.W || y >= g.H {
		return 255
	}
	return g.Pix[y*g.W+x]
}

// Set writes the pixel at (x, y); out-of-bounds writes are ignored.
func (g *Gray) Set(x, y int, v uint8) {
	if x < 0 || y < 0 || x >= g.W || y >= g.H {
		return
	}
	g.Pix[y*g.W+x] = v
}

// Bounds returns the image rectangle in geom coordinates.
func (g *Gray) Bounds() geom.Rect { return geom.Rect{X0: 0, Y0: 0, X1: g.W - 1, Y1: g.H - 1} }

// Clone returns a deep copy of g.
func (g *Gray) Clone() *Gray {
	c := &Gray{W: g.W, H: g.H, Pix: make([]uint8, len(g.Pix))}
	copy(c.Pix, g.Pix)
	return c
}

// Crop returns a copy of the region r of g (clipped to the image).
func (g *Gray) Crop(r geom.Rect) *Gray {
	r = r.Clip(g.Bounds())
	if r.Empty() {
		return NewGray(0, 0)
	}
	out := newGrayNoFill(r.W(), r.H())
	for y := 0; y < out.H; y++ {
		src := (r.Y0+y)*g.W + r.X0
		copy(out.Pix[y*out.W:(y+1)*out.W], g.Pix[src:src+out.W])
	}
	return out
}

// ScaleTo returns g resampled to w×h using nearest-neighbour interpolation.
func (g *Gray) ScaleTo(w, h int) *Gray {
	if g.W == 0 || g.H == 0 || w == 0 || h == 0 {
		return NewGray(w, h)
	}
	out := newGrayNoFill(w, h)
	for y := 0; y < h; y++ {
		sy := y * g.H / h
		for x := 0; x < w; x++ {
			sx := x * g.W / w
			out.Pix[y*w+x] = g.Pix[sy*g.W+sx]
		}
	}
	return out
}

// ToImage converts g to a stdlib *image.Gray.
func (g *Gray) ToImage() *image.Gray {
	img := image.NewGray(image.Rect(0, 0, g.W, g.H))
	for y := 0; y < g.H; y++ {
		copy(img.Pix[y*img.Stride:y*img.Stride+g.W], g.Pix[y*g.W:(y+1)*g.W])
	}
	return img
}

// FromImage converts any stdlib image to a Gray using the luminance of each
// pixel.
func FromImage(img image.Image) *Gray {
	b := img.Bounds()
	g := newGrayNoFill(b.Dx(), b.Dy())
	switch src := img.(type) {
	case *image.Gray:
		// Already 8-bit gray (the common PNG case): copy rows directly
		// instead of round-tripping every pixel through the color
		// interfaces — same bytes, an order of magnitude cheaper.
		for y := 0; y < g.H; y++ {
			copy(g.Pix[y*g.W:(y+1)*g.W], src.Pix[src.PixOffset(b.Min.X, b.Min.Y+y):])
		}
	case *image.RGBA:
		// The same luma weights color.GrayModel uses (JFIF, 16-bit
		// fixed point), applied straight to the raw RGBA bytes.
		for y := 0; y < g.H; y++ {
			row := src.Pix[src.PixOffset(b.Min.X, b.Min.Y+y):]
			for x := 0; x < g.W; x++ {
				// Match color.GrayModel bit for bit: it works on 16-bit
				// channels (v | v<<8, i.e. v*0x101) and shifts the JFIF
				// weighted sum down by 24.
				r := uint32(row[x*4]) * 0x101
				gg := uint32(row[x*4+1]) * 0x101
				bb := uint32(row[x*4+2]) * 0x101
				g.Pix[y*g.W+x] = uint8((19595*r + 38470*gg + 7471*bb + 1<<15) >> 24)
			}
		}
	default:
		for y := 0; y < g.H; y++ {
			for x := 0; x < g.W; x++ {
				c := color.GrayModel.Convert(img.At(b.Min.X+x, b.Min.Y+y)).(color.Gray)
				g.Pix[y*g.W+x] = c.Y
			}
		}
	}
	return g
}

// EncodePNG writes g as a PNG to w.
func (g *Gray) EncodePNG(w io.Writer) error { return png.Encode(w, g.ToImage()) }

// DecodePNG reads a PNG from r and converts it to a Gray.
func DecodePNG(r io.Reader) (*Gray, error) {
	img, err := png.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("imgproc: decode png: %w", err)
	}
	return FromImage(img), nil
}

// Binary is a dense 1-bit image, bit-packed into 64-pixel words. Set pixels
// (true, bit 1) carry ink.
//
// Rows are stored row-major with a per-row word stride: pixel (x, y) lives
// in bit x%64 of Words[y*Stride + x/64]. The padding bits of each row (bit
// positions >= W in the last word) are kept zero by every operation — the
// word kernels (Count, Or, profiles, morphology) rely on that invariant, so
// code writing Words directly must preserve it (Set does).
type Binary struct {
	W, H   int
	Stride int      // words per row, (W+63)/64
	Words  []uint64 // packed rows, len = H*Stride
}

// NewBinary returns an all-clear Binary of the given size.
func NewBinary(w, h int) *Binary {
	stride := (w + 63) / 64
	return &Binary{W: w, H: h, Stride: stride, Words: make([]uint64, h*stride)}
}

// At returns the pixel at (x, y); out-of-bounds reads return false.
func (b *Binary) At(x, y int) bool {
	if x < 0 || y < 0 || x >= b.W || y >= b.H {
		return false
	}
	return b.Words[y*b.Stride+x>>6]>>(uint(x)&63)&1 != 0
}

// Set writes the pixel at (x, y); out-of-bounds writes are ignored.
func (b *Binary) Set(x, y int, v bool) {
	if x < 0 || y < 0 || x >= b.W || y >= b.H {
		return
	}
	if v {
		b.Words[y*b.Stride+x>>6] |= 1 << (uint(x) & 63)
	} else {
		b.Words[y*b.Stride+x>>6] &^= 1 << (uint(x) & 63)
	}
}

// Bounds returns the image rectangle in geom coordinates.
func (b *Binary) Bounds() geom.Rect { return geom.Rect{X0: 0, Y0: 0, X1: b.W - 1, Y1: b.H - 1} }

// Clone returns a deep copy of b.
func (b *Binary) Clone() *Binary {
	c := &Binary{W: b.W, H: b.H, Stride: b.Stride, Words: make([]uint64, len(b.Words))}
	copy(c.Words, b.Words)
	return c
}

// Fill sets every pixel of b to v.
func (b *Binary) Fill(v bool) {
	if !v {
		for i := range b.Words {
			b.Words[i] = 0
		}
		return
	}
	for i := range b.Words {
		b.Words[i] = ^uint64(0)
	}
	b.maskPadding()
}

// maskPadding zeroes the padding bits of every row, restoring the packing
// invariant after whole-word writes.
func (b *Binary) maskPadding() {
	tail := uint(b.W) & 63
	if tail == 0 || b.Stride == 0 {
		return
	}
	mask := uint64(1)<<tail - 1
	for y := 0; y < b.H; y++ {
		b.Words[y*b.Stride+b.Stride-1] &= mask
	}
}

// Count returns the number of set pixels.
func (b *Binary) Count() int {
	n := 0
	for _, w := range b.Words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Crop returns a copy of the region r of b (clipped to the image).
func (b *Binary) Crop(r geom.Rect) *Binary {
	r = r.Clip(b.Bounds())
	if r.Empty() {
		return NewBinary(0, 0)
	}
	out := NewBinary(r.W(), r.H())
	off := uint(r.X0) & 63
	w0 := r.X0 >> 6
	if off == 0 {
		// Word-aligned crop: each output row is a straight copy of a
		// source row slice.
		n := out.Stride
		if w0+n > b.Stride {
			n = b.Stride - w0
		}
		for y := 0; y < out.H; y++ {
			copy(out.Words[y*out.Stride:y*out.Stride+n], b.Words[(r.Y0+y)*b.Stride+w0:])
		}
		out.maskPadding()
		return out
	}
	// Unaligned: shift-merge adjacent source words. The bounds regimes are
	// hoisted out of the word loop; trailing output words past the source
	// row stay at their freshly allocated zero.
	full := b.Stride - w0 - 1 // j with both src[w0+j] and src[w0+j+1] in range
	if full > out.Stride {
		full = out.Stride
	}
	for y := 0; y < out.H; y++ {
		src := b.Words[(r.Y0+y)*b.Stride : (r.Y0+y+1)*b.Stride]
		dst := out.Words[y*out.Stride : (y+1)*out.Stride]
		for j := 0; j < full; j++ {
			dst[j] = src[w0+j]>>off | src[w0+j+1]<<(64-off)
		}
		if full < out.Stride {
			dst[full] = src[b.Stride-1] >> off
		}
	}
	out.maskPadding()
	return out
}

// Or sets every pixel of b that is set in o. Both images must have equal size.
func (b *Binary) Or(o *Binary) {
	if b.W != o.W || b.H != o.H {
		panic("imgproc: Or on mismatched sizes")
	}
	for i, w := range o.Words {
		b.Words[i] |= w
	}
}

// AndNot clears every pixel of b that is set in o.
func (b *Binary) AndNot(o *Binary) {
	if b.W != o.W || b.H != o.H {
		panic("imgproc: AndNot on mismatched sizes")
	}
	for i, w := range o.Words {
		b.Words[i] &^= w
	}
}

// ClearRect clears every pixel inside r.
func (b *Binary) ClearRect(r geom.Rect) {
	r = r.Clip(b.Bounds())
	if r.Empty() {
		return
	}
	w0, w1 := r.X0>>6, r.X1>>6
	m0 := ^uint64(0) << (uint(r.X0) & 63)    // bits >= X0 within word w0
	m1 := ^uint64(0) >> (63 - uint(r.X1)&63) // bits <= X1 within word w1
	for y := r.Y0; y <= r.Y1; y++ {
		row := b.Words[y*b.Stride : (y+1)*b.Stride]
		if w0 == w1 {
			row[w0] &^= m0 & m1
			continue
		}
		row[w0] &^= m0
		for j := w0 + 1; j < w1; j++ {
			row[j] = 0
		}
		row[w1] &^= m1
	}
}

// ToGray converts b to a Gray image: set pixels become black (0), clear
// pixels white (255).
func (b *Binary) ToGray() *Gray {
	g := NewGray(b.W, b.H)
	for y := 0; y < b.H; y++ {
		row := b.Words[y*b.Stride : (y+1)*b.Stride]
		out := g.Pix[y*g.W : (y+1)*g.W]
		for wi, w := range row {
			for w != 0 {
				out[wi<<6+bits.TrailingZeros64(w)] = 0
				w &= w - 1
			}
		}
	}
	return g
}

// Threshold converts g to an inverse binary image: a pixel is set when its
// gray value is strictly below thr (i.e. the pixel carries ink). The packed
// words are written directly, one 64-pixel word at a time.
func Threshold(g *Gray, thr uint8) *Binary {
	return ThresholdW(g, thr, 1)
}

// ThresholdW is Threshold with the rows fanned out over workers. The rows
// are independent, so the result is identical for any worker count.
func ThresholdW(g *Gray, thr uint8, workers int) *Binary {
	b := NewBinary(g.W, g.H)
	workers = parallel.Resolve(workers)
	if workers <= 1 || g.H < 64 {
		thresholdRows(g, b, thr, 0, g.H)
		return b
	}
	if workers > g.H {
		workers = g.H
	}
	parallel.For(workers, workers, func(i int) {
		thresholdRows(g, b, thr, i*g.H/workers, (i+1)*g.H/workers)
	})
	return b
}

// thresholdRows binarizes rows [y0, y1) of g into b.
func thresholdRows(g *Gray, b *Binary, thr uint8, y0, y1 int) {
	const (
		ones uint64 = 0x0101010101010101
		hi   uint64 = 0x8080808080808080
		// mm gathers the per-byte MSBs of a masked word into bits 56..63:
		// every product term 2^(8i+7) · 2^(49-7j) lands on a distinct bit
		// position mod 64, so the multiply is carry-free and exact.
		mm uint64 = 0x0002040810204081
	)
	t7 := uint64(thr&0x7f) * ones
	// sel is all-ones when thr >= 128, folding the two MSB cases of the
	// compare into one branchless expression: pixels with MSB clear are
	// then automatically below thr, pixels with MSB set compare low bits.
	var sel uint64
	if thr >= 128 {
		sel = ^uint64(0)
	}
	nsel := ^sel
	t32 := uint32(thr)
	for y := y0; y < y1; y++ {
		src := g.Pix[y*g.W : (y+1)*g.W]
		row := b.Words[y*b.Stride : (y+1)*b.Stride]
		x, wi := 0, 0
		for ; x+64 <= len(src); x, wi = x+64, wi+1 {
			var w uint64
			for k := 0; k < 64; k += 8 {
				// SWAR compare of 8 pixels at once: (v|0x80)-t7 has its
				// byte MSB clear exactly when (v&0x7f) < (thr&0x7f), and
				// the v MSBs resolve the 128 boundary.
				x8 := binary.LittleEndian.Uint64(src[x+k:])
				if x8 == ^uint64(0) {
					// All-white chunk: 255 is never below a uint8
					// threshold, so these 8 pixels contribute no ink.
					continue
				}
				loLT := ^((x8 | hi) - t7) & hi
				lt := (loLT & (x8 ^ nsel)) | (sel & hi & ^x8)
				w |= (lt * mm) >> 56 << uint(k)
			}
			row[wi] = w
		}
		if x < len(src) {
			// Ragged tail: branchless per-pixel pack,
			// (v - thr) >> 31 is 1 exactly when v < thr.
			var w uint64
			for i, v := range src[x:] {
				w |= uint64((uint32(v)-t32)>>31) << uint(i)
			}
			row[wi] = w
		}
	}
}

// OtsuThreshold computes the Otsu threshold of g: the gray level that
// maximises the between-class variance of the ink/paper split. It returns a
// value suitable to pass to Threshold.
func OtsuThreshold(g *Gray) uint8 {
	return OtsuThresholdW(g, 1)
}

// histogram8 accumulates the gray histogram of pix into eight interleaved
// counter banks, one per byte lane of a 64-bit read. Document images are
// dominated by a single background value, so a single [256] array serializes
// on store-forwarding of one hot bucket; giving every lane its own bank
// keeps eight increment chains in flight. The banks are summed by the
// caller, so the combined counts are exactly the plain histogram.
func histogram8(pix []uint8, h *[8][256]uint32) {
	// Uniform all-white and all-black chunks — the overwhelming majority in
	// a document scan — are tallied in registers and folded into the banks
	// afterwards, skipping the memory increments entirely.
	var white, black uint32
	i, n := 0, len(pix)
	for ; i+8 <= n; i += 8 {
		x8 := binary.LittleEndian.Uint64(pix[i:])
		if x8 == ^uint64(0) {
			white++
			continue
		}
		if x8 == 0 {
			black++
			continue
		}
		h[0][uint8(x8)]++
		h[1][uint8(x8>>8)]++
		h[2][uint8(x8>>16)]++
		h[3][uint8(x8>>24)]++
		h[4][uint8(x8>>32)]++
		h[5][uint8(x8>>40)]++
		h[6][uint8(x8>>48)]++
		h[7][uint8(x8>>56)]++
	}
	for ; i < n; i++ {
		h[0][pix[i]]++
	}
	h[0][255] += 8 * white
	h[0][0] += 8 * black
}

// OtsuThresholdW is OtsuThreshold with the histogram pass fanned out over
// workers. Partial histograms are summed with integer addition, so the
// result is identical for any worker count.
func OtsuThresholdW(g *Gray, workers int) uint8 {
	total := len(g.Pix)
	if total == 0 {
		return 128
	}
	workers = parallel.Resolve(workers)
	if total < 1<<16 {
		workers = 1
	} else if workers > 8 {
		workers = 8
	}
	parts := make([][8][256]uint32, workers)
	parallel.For(workers, workers, func(i int) {
		histogram8(g.Pix[i*total/workers:(i+1)*total/workers], &parts[i])
	})
	var hist [256]int
	for p := range parts {
		for bank := 0; bank < 8; bank++ {
			for v := 0; v < 256; v++ {
				hist[v] += int(parts[p][bank][v])
			}
		}
	}
	var sum float64
	for i, n := range hist {
		sum += float64(i) * float64(n)
	}
	var sumB, wB float64
	bestVar, best := -1.0, 128
	for t := 0; t < 256; t++ {
		wB += float64(hist[t])
		if wB == 0 {
			continue
		}
		wF := float64(total) - wB
		if wF == 0 {
			break
		}
		sumB += float64(t) * float64(hist[t])
		mB := sumB / wB
		mF := (sum - sumB) / wF
		v := wB * wF * (mB - mF) * (mB - mF)
		if v > bestVar {
			bestVar = v
			best = t
		}
	}
	// Threshold() uses "strictly below", so split just above the class
	// boundary.
	return uint8(geom.Clamp(best+1, 1, 255))
}
