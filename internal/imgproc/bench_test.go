package imgproc

import (
	"testing"

	"tdmagic/internal/geom"
)

// benchBinary builds a deterministic 900×540 test image shaped like a timing
// diagram: long horizontal plateau runs, dashed vertical lines and scattered
// glyph-sized blobs, at roughly the ink density of the generated pictures.
func benchBinary(w, h int) *Binary {
	b := NewBinary(w, h)
	// Plateaus: long horizontal runs every 60 rows.
	for y := 30; y < h; y += 60 {
		for x := 20; x < w-20; x++ {
			b.Set(x, y, true)
			b.Set(x, y+1, true)
		}
	}
	// Dashed vertical annotation lines (4 on / 4 off).
	for x := 100; x < w; x += 160 {
		for y := 0; y < h; y++ {
			if y%8 < 4 {
				b.Set(x, y, true)
			}
		}
	}
	// Glyph-ish blobs.
	s := uint64(12345)
	for i := 0; i < 400; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		x := int((s >> 33) % uint64(w-8))
		y := int((s >> 13) % uint64(h-10))
		for dy := 0; dy < 9; dy++ {
			for dx := 0; dx < 7; dx++ {
				if (dx+dy)%2 == 0 {
					b.Set(x+dx, y+dy, true)
				}
			}
		}
	}
	return b
}

// benchGray is benchBinary rendered to grayscale, for Threshold benchmarks.
func benchGray(w, h int) *Gray { return benchBinary(w, h).ToGray() }

// BenchmarkBinaryOps measures the dense word-level kernels of Binary on a
// diagram-shaped 900×540 image (widths deliberately not a multiple of 64).
func BenchmarkBinaryOps(b *testing.B) {
	const w, h = 900, 540
	img := benchBinary(w, h)
	other := benchBinary(w, h)
	gray := benchGray(w, h)
	b.Run("Count", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = img.Count()
		}
	})
	b.Run("Or", func(b *testing.B) {
		dst := img.Clone()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst.Or(other)
		}
	})
	b.Run("AndNot", func(b *testing.B) {
		dst := img.Clone()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst.AndNot(other)
		}
	})
	b.Run("ClearRect", func(b *testing.B) {
		dst := img.Clone()
		r := geom.Rect{X0: 101, Y0: 50, X1: 797, Y1: 489}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst.ClearRect(r)
		}
	})
	b.Run("Crop", func(b *testing.B) {
		r := geom.Rect{X0: 33, Y0: 17, X1: 700, Y1: 500}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = img.Crop(r)
		}
	})
	b.Run("Threshold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = Threshold(gray, 128)
		}
	})
	b.Run("Otsu", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = OtsuThreshold(gray)
		}
	})
	b.Run("RowProfile", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = RowProfile(img)
		}
	})
	b.Run("ColProfile", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = ColProfile(img)
		}
	})
	b.Run("HRuns", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = HRuns(img, 26)
		}
	})
	b.Run("VRuns", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = VRuns(img, 24)
		}
	})
	b.Run("Components", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = Components(img, 4)
		}
	})
}
