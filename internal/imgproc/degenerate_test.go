package imgproc

import (
	"fmt"
	"testing"
)

// degenerateImages covers the pathological shapes the perception stack
// must survive: empty, single-pixel, single-row/column, and uniform
// all-white / all-black canvases.
func degenerateImages() map[string]*Gray {
	white := NewGray(32, 32)
	for i := range white.Pix {
		white.Pix[i] = 255
	}
	black := NewGray(32, 32) // NewGray zero-fills: all ink
	return map[string]*Gray{
		"0x0":       NewGray(0, 0),
		"1x1":       NewGray(1, 1),
		"row":       NewGray(64, 1),
		"col":       NewGray(1, 64),
		"all-white": white,
		"all-black": black,
	}
}

func TestThresholdDegenerate(t *testing.T) {
	for name, img := range degenerateImages() {
		t.Run(name, func(t *testing.T) {
			bw := Threshold(img, 128)
			if bw.W != img.W || bw.H != img.H {
				t.Errorf("binary %dx%d != input %dx%d", bw.W, bw.H, img.W, img.H)
			}
			// Count must be consistent with the pixel data, not garbage
			// from out-of-bounds word reads.
			want := 0
			for y := 0; y < img.H; y++ {
				for x := 0; x < img.W; x++ {
					if img.At(x, y) < 128 {
						want++
					}
				}
			}
			if got := bw.Count(); got != want {
				t.Errorf("Count() = %d, want %d", got, want)
			}
		})
	}
}

func TestOtsuThresholdDegenerate(t *testing.T) {
	for name, img := range degenerateImages() {
		t.Run(name, func(t *testing.T) {
			thr := OtsuThreshold(img) // must not panic or divide by zero
			_ = Threshold(img, thr)
		})
	}
}

func TestComponentsDegenerate(t *testing.T) {
	for name, img := range degenerateImages() {
		t.Run(name, func(t *testing.T) {
			bw := Threshold(img, 128)
			_ = Components(bw, 1)
		})
	}
}

func TestScaleToDegenerate(t *testing.T) {
	src := NewGray(16, 16)
	for _, dims := range [][2]int{{0, 0}, {1, 1}, {1, 32}, {32, 1}} {
		got := src.ScaleTo(dims[0], dims[1])
		if got.W != dims[0] || got.H != dims[1] {
			t.Errorf("ScaleTo(%v) = %dx%d", fmt.Sprint(dims), got.W, got.H)
		}
	}
}
