package imgproc

import (
	"bytes"
	"image"
	"image/color"
	"testing"
	"testing/quick"

	"tdmagic/internal/geom"
)

func TestGrayBasics(t *testing.T) {
	g := NewGray(4, 3)
	for _, v := range g.Pix {
		if v != 255 {
			t.Fatal("new gray not white")
		}
	}
	g.Set(2, 1, 7)
	if g.At(2, 1) != 7 {
		t.Error("Set/At roundtrip failed")
	}
	if g.At(-1, 0) != 255 || g.At(4, 0) != 255 || g.At(0, 3) != 255 {
		t.Error("out-of-bounds At should be white")
	}
	g.Set(-1, -1, 0) // must not panic
	if got := g.Bounds(); got != (geom.Rect{X0: 0, Y0: 0, X1: 3, Y1: 2}) {
		t.Errorf("Bounds = %v", got)
	}
}

func TestGrayCloneIndependent(t *testing.T) {
	g := NewGray(2, 2)
	c := g.Clone()
	c.Set(0, 0, 0)
	if g.At(0, 0) != 255 {
		t.Error("Clone shares pixels")
	}
}

func TestGrayCrop(t *testing.T) {
	g := NewGray(10, 10)
	g.Set(5, 5, 1)
	g.Set(6, 6, 2)
	c := g.Crop(geom.Rect{X0: 5, Y0: 5, X1: 7, Y1: 7})
	if c.W != 3 || c.H != 3 {
		t.Fatalf("crop size %dx%d", c.W, c.H)
	}
	if c.At(0, 0) != 1 || c.At(1, 1) != 2 {
		t.Error("crop content wrong")
	}
	// Crop clipped outside bounds
	c2 := g.Crop(geom.Rect{X0: 8, Y0: 8, X1: 20, Y1: 20})
	if c2.W != 2 || c2.H != 2 {
		t.Errorf("clipped crop size %dx%d", c2.W, c2.H)
	}
	c3 := g.Crop(geom.Rect{X0: 30, Y0: 30, X1: 40, Y1: 40})
	if c3.W != 0 || c3.H != 0 {
		t.Error("fully outside crop should be empty")
	}
}

func TestGrayScaleTo(t *testing.T) {
	g := NewGray(2, 2)
	g.Set(0, 0, 0)
	g.Set(1, 1, 0)
	s := g.ScaleTo(4, 4)
	if s.At(0, 0) != 0 || s.At(1, 1) != 0 || s.At(3, 3) != 0 {
		t.Error("upscale content wrong")
	}
	if s.At(3, 0) != 255 {
		t.Error("upscale should keep white corner")
	}
	d := s.ScaleTo(2, 2)
	if d.At(0, 0) != 0 || d.At(1, 1) != 0 {
		t.Error("downscale content wrong")
	}
	z := g.ScaleTo(0, 5)
	if z.W != 0 || z.H != 5 {
		t.Error("zero-width scale")
	}
}

func TestPNGRoundtrip(t *testing.T) {
	g := NewGray(8, 5)
	g.Set(3, 2, 42)
	g.Set(7, 4, 0)
	var buf bytes.Buffer
	if err := g.EncodePNG(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := DecodePNG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.W != 8 || d.H != 5 || d.At(3, 2) != 42 || d.At(7, 4) != 0 || d.At(0, 0) != 255 {
		t.Error("PNG roundtrip mismatch")
	}
}

func TestDecodePNGError(t *testing.T) {
	if _, err := DecodePNG(bytes.NewReader([]byte("not a png"))); err == nil {
		t.Error("expected decode error")
	}
}

func TestBinaryBasics(t *testing.T) {
	b := NewBinary(4, 4)
	b.Set(1, 2, true)
	if !b.At(1, 2) || b.At(0, 0) {
		t.Error("Set/At failed")
	}
	if b.At(-1, 0) || b.At(4, 0) {
		t.Error("out-of-bounds At should be false")
	}
	if b.Count() != 1 {
		t.Errorf("Count = %d", b.Count())
	}
	c := b.Clone()
	c.Set(0, 0, true)
	if b.At(0, 0) {
		t.Error("Clone shares pixels")
	}
}

func TestBinaryOrAndNotClear(t *testing.T) {
	a := NewBinary(3, 3)
	b := NewBinary(3, 3)
	a.Set(0, 0, true)
	b.Set(1, 1, true)
	b.Set(0, 0, true)
	a.Or(b)
	if !a.At(1, 1) || !a.At(0, 0) {
		t.Error("Or failed")
	}
	a.AndNot(b)
	if a.At(0, 0) || a.At(1, 1) {
		t.Error("AndNot failed")
	}
	a.Set(2, 2, true)
	a.Set(0, 2, true)
	a.ClearRect(geom.Rect{X0: 2, Y0: 2, X1: 5, Y1: 5})
	if a.At(2, 2) || !a.At(0, 2) {
		t.Error("ClearRect failed")
	}
}

func TestBinaryMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on size mismatch")
		}
	}()
	a := NewBinary(2, 2)
	b := NewBinary(3, 3)
	a.Or(b)
}

func TestThreshold(t *testing.T) {
	g := NewGray(3, 1)
	g.Set(0, 0, 0)   // ink
	g.Set(1, 0, 100) // ink
	g.Set(2, 0, 200) // paper
	b := Threshold(g, 128)
	if !b.At(0, 0) || !b.At(1, 0) || b.At(2, 0) {
		t.Error("threshold wrong")
	}
}

func TestOtsuThreshold(t *testing.T) {
	// Clean bimodal image: ink at 10, paper at 240.
	g := NewGray(20, 20)
	for y := 0; y < 20; y++ {
		for x := 0; x < 20; x++ {
			if x < 5 {
				g.Set(x, y, 10)
			} else {
				g.Set(x, y, 240)
			}
		}
	}
	thr := OtsuThreshold(g)
	if thr <= 10 || thr > 240 {
		t.Errorf("Otsu threshold %d outside (10,240]", thr)
	}
	b := Threshold(g, thr)
	if b.Count() != 5*20 {
		t.Errorf("Otsu binarisation kept %d ink pixels, want 100", b.Count())
	}
	// Degenerate: empty image must not divide by zero.
	if got := OtsuThreshold(NewGray(0, 0)); got != 128 {
		t.Errorf("empty-image Otsu = %d", got)
	}
	// Uniform image.
	u := NewGray(4, 4)
	_ = OtsuThreshold(u) // must not panic
}

func TestBinaryToGrayRoundtrip(t *testing.T) {
	b := NewBinary(3, 2)
	b.Set(1, 0, true)
	g := b.ToGray()
	if g.At(1, 0) != 0 || g.At(0, 0) != 255 {
		t.Error("ToGray wrong")
	}
	b2 := Threshold(g, 128)
	for i := range b.Words {
		if b.Words[i] != b2.Words[i] {
			t.Fatal("Binary->Gray->Binary roundtrip mismatch")
		}
	}
}

func TestBinaryCrop(t *testing.T) {
	b := NewBinary(10, 10)
	b.Set(4, 4, true)
	c := b.Crop(geom.Rect{X0: 3, Y0: 3, X1: 5, Y1: 5})
	if c.W != 3 || !c.At(1, 1) {
		t.Error("binary crop wrong")
	}
}

func TestComponentsSimple(t *testing.T) {
	b := NewBinary(10, 10)
	// Two blobs: one 2x2 at (1,1), one single pixel at (8,8).
	b.Set(1, 1, true)
	b.Set(2, 1, true)
	b.Set(1, 2, true)
	b.Set(2, 2, true)
	b.Set(8, 8, true)
	comps := Components(b, 1)
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	if comps[0].Area != 4 || comps[0].Box != (geom.Rect{X0: 1, Y0: 1, X1: 2, Y1: 2}) {
		t.Errorf("comp0 = %+v", comps[0])
	}
	if comps[1].Area != 1 {
		t.Errorf("comp1 area = %d", comps[1].Area)
	}
	// minArea filter
	comps = Components(b, 2)
	if len(comps) != 1 {
		t.Errorf("minArea filter kept %d", len(comps))
	}
}

func TestComponentsDiagonalConnectivity(t *testing.T) {
	b := NewBinary(4, 4)
	b.Set(0, 0, true)
	b.Set(1, 1, true)
	b.Set(2, 2, true)
	comps := Components(b, 1)
	if len(comps) != 1 {
		t.Fatalf("8-connectivity should join diagonal pixels, got %d comps", len(comps))
	}
	if comps[0].Area != 3 {
		t.Errorf("area = %d", comps[0].Area)
	}
}

func TestComponentsLargeBlobNoStackOverflow(t *testing.T) {
	b := NewBinary(300, 300)
	b.Fill(true)
	comps := Components(b, 1)
	if len(comps) != 1 || comps[0].Area != 300*300 {
		t.Error("full-image component wrong")
	}
}

func TestComponentMask(t *testing.T) {
	b := NewBinary(10, 10)
	b.Set(5, 5, true)
	b.Set(6, 5, true)
	b.Set(6, 6, true)
	comps := Components(b, 1)
	if len(comps) != 1 {
		t.Fatal("want 1 component")
	}
	m := comps[0].Mask()
	if m.W != 2 || m.H != 2 {
		t.Fatalf("mask size %dx%d", m.W, m.H)
	}
	if !m.At(0, 0) || !m.At(1, 0) || !m.At(1, 1) || m.At(0, 1) {
		t.Error("mask content wrong")
	}
}

func TestProfiles(t *testing.T) {
	b := NewBinary(4, 3)
	b.Set(0, 0, true)
	b.Set(1, 0, true)
	b.Set(3, 2, true)
	rp := RowProfile(b)
	if rp[0] != 2 || rp[1] != 0 || rp[2] != 1 {
		t.Errorf("RowProfile = %v", rp)
	}
	cp := ColProfile(b)
	if cp[0] != 1 || cp[1] != 1 || cp[2] != 0 || cp[3] != 1 {
		t.Errorf("ColProfile = %v", cp)
	}
}

func TestHRunsVRuns(t *testing.T) {
	b := NewBinary(10, 5)
	for x := 2; x <= 7; x++ {
		b.Set(x, 1, true)
	}
	for y := 0; y <= 4; y++ {
		b.Set(9, y, true)
	}
	b.Set(0, 3, true) // single pixel, below min lengths
	hr := HRuns(b, 3)
	if len(hr) != 1 || hr[0] != (geom.HSeg{Y: 1, X0: 2, X1: 7}) {
		t.Errorf("HRuns = %v", hr)
	}
	vr := VRuns(b, 3)
	if len(vr) != 1 || vr[0] != (geom.VSeg{X: 9, Y0: 0, Y1: 4}) {
		t.Errorf("VRuns = %v", vr)
	}
	// Runs reaching image border must be closed properly.
	hr = HRuns(b, 1)
	found := false
	for _, r := range hr {
		if r.Y == 0 && r.X0 == 9 && r.X1 == 9 {
			found = true
		}
	}
	if !found {
		t.Error("border-adjacent run missed")
	}
}

// Property: total set pixels equals sum of component areas (minArea=1).
func TestComponentsAreaProperty(t *testing.T) {
	f := func(seed int64) bool {
		b := NewBinary(30, 30)
		s := seed
		for y := 0; y < b.H; y++ {
			for x := 0; x < b.W; x++ {
				s = s*6364136223846793005 + 1442695040888963407
				if (s>>33)%3 == 0 {
					b.Set(x, y, true)
				}
			}
		}
		total := 0
		for _, c := range Components(b, 1) {
			total += c.Area
		}
		return total == b.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: row profile sums equal column profile sums equal Count.
func TestProfileSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		b := NewBinary(17, 23)
		s := seed
		for y := 0; y < b.H; y++ {
			for x := 0; x < b.W; x++ {
				s = s*2862933555777941757 + 3037000493
				if (s>>40)&1 == 1 {
					b.Set(x, y, true)
				}
			}
		}
		sr, sc := 0, 0
		for _, v := range RowProfile(b) {
			sr += v
		}
		for _, v := range ColProfile(b) {
			sc += v
		}
		return sr == b.Count() && sc == b.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFromImageColor(t *testing.T) {
	rgba := image.NewRGBA(image.Rect(2, 3, 6, 7)) // non-zero origin
	rgba.Set(2, 3, color.RGBA{R: 255, G: 255, B: 255, A: 255})
	rgba.Set(3, 3, color.RGBA{A: 255}) // black
	rgba.Set(4, 3, color.RGBA{R: 255, A: 255})
	g := FromImage(rgba)
	if g.W != 4 || g.H != 4 {
		t.Fatalf("size %dx%d", g.W, g.H)
	}
	if g.At(0, 0) != 255 {
		t.Error("white pixel wrong")
	}
	if g.At(1, 0) != 0 {
		t.Error("black pixel wrong")
	}
	// Pure red converts to its luminance, strictly between black and white.
	if v := g.At(2, 0); v == 0 || v == 255 {
		t.Errorf("red luminance = %d", v)
	}
}
