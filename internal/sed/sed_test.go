package sed

import (
	"math/rand"
	"testing"

	"tdmagic/internal/dataset"
	"tdmagic/internal/detect"
	"tdmagic/internal/geom"
	"tdmagic/internal/imgproc"
	"tdmagic/internal/lad"
	"tdmagic/internal/spo"
	"tdmagic/internal/tdgen"
)

// genSamples produces n deterministic synthetic samples.
func genSamples(t *testing.T, mode tdgen.Mode, seed int64, n int) []*dataset.Sample {
	t.Helper()
	g := tdgen.New(tdgen.DefaultConfig(mode), rand.New(rand.NewSource(seed)))
	samples, err := g.GenerateN(n)
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

func TestProposeCoversGroundTruth(t *testing.T) {
	samples := genSamples(t, tdgen.G1, 31, 8)
	totalGT, covered := 0, 0
	for _, s := range samples {
		bw := imgproc.Threshold(s.Image, imgproc.OtsuThreshold(s.Image))
		lines := lad.DetectBinary(bw, lad.DefaultConfig())
		props := Propose(bw, lines, DefaultConfig())
		for _, gt := range s.Edges {
			totalGT++
			for _, p := range props {
				if p.IoU(gt.Box) >= 0.5 {
					covered++
					break
				}
			}
		}
	}
	frac := float64(covered) / float64(totalGT)
	if frac < 0.9 {
		t.Errorf("proposals cover %.2f of ground truth (%d/%d), want >= 0.9", frac, covered, totalGT)
	}
}

func TestFeaturesShapeAndRange(t *testing.T) {
	s := genSamples(t, tdgen.G1, 5, 1)[0]
	bw := imgproc.Threshold(s.Image, 128)
	for _, gt := range s.Edges {
		f := Features(bw, gt.Box, s.Image.W, s.Image.H)
		if len(f) != FeatureSize {
			t.Fatalf("feature size %d, want %d", len(f), FeatureSize)
		}
		for i, v := range f {
			if v < -0.5 || v > 4 {
				t.Errorf("feature %d = %v out of range", i, v)
			}
		}
	}
}

func TestFeaturesDistinguishRiseFall(t *testing.T) {
	// Rise and fall ramps of the same shape must differ in context
	// features (plateau positions).
	s := genSamples(t, tdgen.G1, 5, 1)[0]
	bw := imgproc.Threshold(s.Image, 128)
	var rise, fall []float64
	for _, gt := range s.Edges {
		switch gt.Type {
		case spo.RiseRamp, spo.RiseStep:
			rise = Features(bw, gt.Box, s.Image.W, s.Image.H)
		case spo.FallRamp, spo.FallStep:
			fall = Features(bw, gt.Box, s.Image.W, s.Image.H)
		}
	}
	if rise == nil || fall == nil {
		t.Skip("sample lacks rise/fall pair")
	}
	diff := 0.0
	for i := range rise {
		d := rise[i] - fall[i]
		diff += d * d
	}
	if diff < 0.01 {
		t.Errorf("rise/fall features nearly identical (%.4f)", diff)
	}
}

func TestTrainAndDetectSynthetic(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	trainSet := genSamples(t, tdgen.G1, 100, 40)
	valSet := genSamples(t, tdgen.G1, 200, 8)
	rng := rand.New(rand.NewSource(1))
	tc := DefaultTrainConfig()
	model, err := Train(rng, trainSet, nil, DefaultConfig(), tc)
	if err != nil {
		t.Fatal(err)
	}
	var dets []detect.Detection
	var gts []detect.GroundTruth
	for i, s := range valSet {
		lines := lad.Detect(s.Image, lad.DefaultConfig())
		for _, d := range model.Detect(s.Image, lines) {
			dets = append(dets, detect.Detection{Box: d.Box, Class: int(d.Type), Score: d.Score, Image: i})
		}
		for _, g := range s.Edges {
			gts = append(gts, detect.GroundTruth{Box: g.Box, Class: int(g.Type), Image: i})
		}
	}
	m := detect.Match(dets, gts, 0.5)
	p, r := m.PR()
	if p < 0.85 || r < 0.85 {
		t.Errorf("validation P=%.3f R=%.3f (TP=%d FP=%d FN=%d), want both >= 0.85",
			p, r, m.TP, m.FP, m.FN)
	}
}

func TestTrainNoSamples(t *testing.T) {
	if _, err := Train(rand.New(rand.NewSource(1)), nil, nil, DefaultConfig(), DefaultTrainConfig()); err == nil {
		t.Error("training on empty set should fail")
	}
}

func TestSortDetections(t *testing.T) {
	dets := []Detection{
		{Box: geom.Rect{X0: 50, Y0: 100, X1: 60, Y1: 120}},
		{Box: geom.Rect{X0: 10, Y0: 10, X1: 20, Y1: 30}},
		{Box: geom.Rect{X0: 5, Y0: 100, X1: 15, Y1: 120}},
	}
	SortDetections(dets)
	if dets[0].Box.Y0 != 10 || dets[1].Box.X0 != 5 || dets[2].Box.X0 != 50 {
		t.Errorf("sort order wrong: %v", dets)
	}
}

func TestPartition(t *testing.T) {
	dets := []Detection{
		{Box: geom.Rect{X0: 10, Y0: 10, X1: 20, Y1: 50}},
		{Box: geom.Rect{X0: 100, Y0: 15, X1: 110, Y1: 55}},
		{Box: geom.Rect{X0: 50, Y0: 200, X1: 60, Y1: 250}},
	}
	SortDetections(dets)
	groups := Partition(dets)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	if len(groups[0]) != 2 || len(groups[1]) != 1 {
		t.Errorf("group sizes: %d, %d", len(groups[0]), len(groups[1]))
	}
	if groups[0][0].Box.X0 != 10 {
		t.Error("within-group x order wrong")
	}
	if Partition(nil) != nil {
		t.Error("empty partition should be nil")
	}
}

func TestPartitionMatchesSignals(t *testing.T) {
	// Ground-truth boxes of a two-signal diagram partition into exactly
	// two groups matching the signal assignment.
	samples := genSamples(t, tdgen.G1, 77, 5)
	for _, s := range samples {
		var dets []Detection
		for _, gt := range s.Edges {
			dets = append(dets, Detection{Box: gt.Box, Type: gt.Type, Score: 1})
		}
		SortDetections(dets)
		groups := Partition(dets)
		sigs := map[int]bool{}
		for _, gt := range s.Edges {
			sigs[gt.Signal] = true
		}
		if len(groups) != len(sigs) {
			t.Errorf("%s: %d groups, want %d signals", s.Name, len(groups), len(sigs))
		}
	}
}

func TestTightBox(t *testing.T) {
	bw := imgproc.NewBinary(20, 20)
	bw.Set(5, 5, true)
	bw.Set(8, 9, true)
	got := tightBox(bw, geom.Rect{X0: 0, Y0: 0, X1: 19, Y1: 19})
	if got != (geom.Rect{X0: 5, Y0: 5, X1: 8, Y1: 9}) {
		t.Errorf("tightBox = %v", got)
	}
	// Empty region returns the original box.
	empty := geom.Rect{X0: 15, Y0: 15, X1: 18, Y1: 18}
	if got := tightBox(bw, empty); got != empty {
		t.Errorf("empty tightBox = %v", got)
	}
}

func TestInkFrac(t *testing.T) {
	bw := imgproc.NewBinary(10, 10)
	for x := 0; x < 5; x++ {
		bw.Set(x, 0, true)
	}
	if got := inkFrac(bw, geom.Rect{X0: 0, Y0: 0, X1: 9, Y1: 0}); got != 0.5 {
		t.Errorf("inkFrac = %v", got)
	}
	if inkFrac(bw, geom.Rect{X0: -10, Y0: -10, X1: -5, Y1: -5}) != 0 {
		t.Error("out-of-bounds inkFrac not 0")
	}
}
