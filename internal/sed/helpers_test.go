package sed

import (
	"testing"

	"tdmagic/internal/geom"
	"tdmagic/internal/imgproc"
	"tdmagic/internal/lad"
	"tdmagic/internal/render"
)

func TestMergeBoxes(t *testing.T) {
	boxes := []geom.Rect{
		{X0: 0, Y0: 0, X1: 10, Y1: 10},
		{X0: 15, Y0: 0, X1: 25, Y1: 10}, // gap 4 <= 8
		{X0: 100, Y0: 0, X1: 110, Y1: 10},
	}
	areas := []int{50, 50, 30}
	got, gotAreas := mergeBoxes(boxes, areas, 8)
	if len(got) != 2 {
		t.Fatalf("merged to %d boxes: %v", len(got), got)
	}
	if got[0] != (geom.Rect{X0: 0, Y0: 0, X1: 25, Y1: 10}) {
		t.Errorf("merged box = %v", got[0])
	}
	if gotAreas[0] != 100 || gotAreas[1] != 30 {
		t.Errorf("areas = %v", gotAreas)
	}
}

func TestMergeBoxesChain(t *testing.T) {
	// A-B far apart, C in between bridges both: all three must merge.
	boxes := []geom.Rect{
		{X0: 0, Y0: 0, X1: 10, Y1: 10},
		{X0: 40, Y0: 0, X1: 50, Y1: 10},
		{X0: 18, Y0: 0, X1: 32, Y1: 10},
	}
	areas := []int{1, 1, 1}
	got, _ := mergeBoxes(boxes, areas, 8)
	if len(got) != 1 {
		t.Fatalf("chain merged to %d boxes", len(got))
	}
}

func TestStitchDiagonalJoinsSparsePieces(t *testing.T) {
	// Two sparse diagonal pieces offset like a cut ramp.
	boxes := []geom.Rect{
		{X0: 100, Y0: 50, X1: 160, Y1: 80},
		{X0: 180, Y0: 82, X1: 240, Y1: 110},
	}
	areas := []int{120, 120} // density ~0.06: sparse strokes
	got, _ := stitchDiagonal(boxes, areas)
	if len(got) != 1 {
		t.Fatalf("sparse diagonal pieces not stitched: %v", got)
	}
}

func TestStitchDiagonalLeavesTextAlone(t *testing.T) {
	// Two dense glyph-like boxes on the same row.
	boxes := []geom.Rect{
		{X0: 100, Y0: 50, X1: 110, Y1: 64},
		{X0: 120, Y0: 50, X1: 130, Y1: 64},
	}
	areas := []int{90, 90} // density ~0.5: text
	got, _ := stitchDiagonal(boxes, areas)
	if len(got) != 2 {
		t.Fatalf("text fragments were stitched: %v", got)
	}
	// Same-row sparse pieces also stay apart (centres align).
	boxes = []geom.Rect{
		{X0: 100, Y0: 50, X1: 160, Y1: 80},
		{X0: 180, Y0: 50, X1: 240, Y1: 80},
	}
	areas = []int{100, 100}
	got, _ = stitchDiagonal(boxes, areas)
	if len(got) != 2 {
		t.Fatalf("same-row pieces were stitched: %v", got)
	}
}

func TestLineResidueDetection(t *testing.T) {
	lines := &lad.Result{
		V: []lad.VContour{{Seg: geom.VSeg{X: 50, Y0: 10, Y1: 200}, Density: 0.5}},
		H: []lad.HContour{{Seg: geom.HSeg{Y: 80, X0: 10, X1: 300}, Density: 0.5}},
	}
	// Narrow sliver on the dashed vline column.
	if !lineResidue(geom.Rect{X0: 48, Y0: 100, X1: 52, Y1: 115}, lines) {
		t.Error("vline residue not detected")
	}
	// Short flat sliver on the dashed hline row.
	if !lineResidue(geom.Rect{X0: 120, Y0: 78, X1: 140, Y1: 82}, lines) {
		t.Error("hline residue not detected")
	}
	// A tall step-like component is not residue.
	if lineResidue(geom.Rect{X0: 48, Y0: 50, X1: 52, Y1: 180}, lines) {
		t.Error("tall component misjudged as residue")
	}
	// A component away from any line is not residue.
	if lineResidue(geom.Rect{X0: 200, Y0: 100, X1: 204, Y1: 115}, lines) {
		t.Error("distant component misjudged as residue")
	}
}

func TestCleanupErasesLongSolidVLine(t *testing.T) {
	// A long solid annotation line crossing a plateau: the isolated parts
	// must be erased, the plateau crossing preserved, and a short solid
	// step edge left untouched.
	c := render.NewCanvas(200, 400)
	c.Line(geom.Pt{X: 100, Y: 10}, geom.Pt{X: 100, Y: 390}, 2)  // long solid vline
	c.Line(geom.Pt{X: 20, Y: 200}, geom.Pt{X: 180, Y: 200}, 3)  // plateau
	c.Line(geom.Pt{X: 160, Y: 100}, geom.Pt{X: 160, Y: 160}, 3) // step edge (short)
	bw := c.Ink()
	lines := lad.DetectBinary(bw, lad.DefaultConfig())
	work := cleanup(bw, lines, DefaultConfig())
	if work.At(100, 50) || work.At(100, 350) {
		t.Error("isolated stretches of the solid vline survived cleanup")
	}
	for y := 110; y <= 150; y++ {
		if !work.At(160, y) {
			t.Fatalf("short step edge erased at y=%d", y)
		}
	}
}

func TestPartitionSingleGroupTallOverlap(t *testing.T) {
	dets := []Detection{
		{Box: geom.Rect{X0: 10, Y0: 10, X1: 20, Y1: 100}},
		{Box: geom.Rect{X0: 50, Y0: 90, X1: 60, Y1: 180}}, // overlaps first vertically
	}
	SortDetections(dets)
	if groups := Partition(dets); len(groups) != 1 {
		t.Errorf("overlapping spans split into %d groups", len(groups))
	}
}

func TestInkCentroidY(t *testing.T) {
	bw := imgproc.NewBinary(10, 10)
	// Ink only in the top row of the probe region.
	bw.Set(2, 0, true)
	top := inkCentroidY(bw, geom.Rect{X0: 0, Y0: 0, X1: 9, Y1: 9})
	if top != 0 {
		t.Errorf("top centroid = %v", top)
	}
	bw2 := imgproc.NewBinary(10, 10)
	bw2.Set(2, 9, true)
	bot := inkCentroidY(bw2, geom.Rect{X0: 0, Y0: 0, X1: 9, Y1: 9})
	if bot != 1 {
		t.Errorf("bottom centroid = %v", bot)
	}
	// Empty and degenerate regions.
	if inkCentroidY(bw, geom.Rect{X0: 5, Y0: 5, X1: 8, Y1: 8}) != 0.5 {
		t.Error("empty centroid not 0.5")
	}
	if inkCentroidY(bw, geom.Rect{X0: 0, Y0: 0, X1: 9, Y1: 0}) != 0.5 {
		t.Error("single-row centroid not 0.5")
	}
}
