package sed

import (
	"math/rand"
	"reflect"
	"testing"

	"tdmagic/internal/imgproc"
	"tdmagic/internal/tdgen"
)

// TestFeaturesIntoMatchesFeatures pins the buffer-reusing variant to the
// allocating one.
func TestFeaturesIntoMatchesFeatures(t *testing.T) {
	s := genSamples(t, tdgen.G1, 11, 1)[0]
	bw := imgproc.Threshold(s.Image, 128)
	buf := make([]float64, 0, FeatureSize)
	for _, gt := range s.Edges {
		want := Features(bw, gt.Box, s.Image.W, s.Image.H)
		buf = FeaturesInto(buf, bw, gt.Box, s.Image.W, s.Image.H)
		if !reflect.DeepEqual(want, buf) {
			t.Fatalf("FeaturesInto differs from Features for box %v", gt.Box)
		}
	}
}

// TestFeaturesIntoZeroAlloc guards the inference hot path: featurising into
// a pre-sized buffer must not allocate.
func TestFeaturesIntoZeroAlloc(t *testing.T) {
	s := genSamples(t, tdgen.G1, 11, 1)[0]
	if len(s.Edges) == 0 {
		t.Skip("sample has no edges")
	}
	bw := imgproc.Threshold(s.Image, 128)
	box := s.Edges[0].Box
	buf := make([]float64, FeatureSize)
	allocs := testing.AllocsPerRun(100, func() {
		buf = FeaturesInto(buf, bw, box, s.Image.W, s.Image.H)
	})
	if allocs != 0 {
		t.Errorf("FeaturesInto allocates %v times per call, want 0", allocs)
	}
}

// TestTrainWorkerCountInvariant pins the tentpole guarantee at the sed
// layer: the trained model is bit-identical for any worker count.
func TestTrainWorkerCountInvariant(t *testing.T) {
	samples := genSamples(t, tdgen.G1, 21, 10)
	cfg := DefaultConfig()
	tc := DefaultTrainConfig()
	tc.Epochs = 4
	train := func(workers int) *Model {
		tc.Workers = workers
		m, err := Train(rand.New(rand.NewSource(5)), samples, nil, cfg, tc)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	base := train(1)
	for _, workers := range []int{3, 8} {
		got := train(workers)
		if !reflect.DeepEqual(base.Net.Weights, got.Net.Weights) {
			t.Errorf("workers=%d: weights differ from workers=1", workers)
		}
		if !reflect.DeepEqual(base.Net.Biases, got.Net.Biases) {
			t.Errorf("workers=%d: biases differ from workers=1", workers)
		}
	}
}
