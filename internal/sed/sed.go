// Package sed implements the paper's SED (signal-edge detector) module.
//
// The paper trains a YOLO5 network on synthetic L-TD-G pictures to emit
// typed edge bounding boxes. This implementation keeps the same contract and
// training regime with a two-stage detector built from scratch:
//
//  1. Proposal — the waveform is stripped of annotation structure (dashed
//     lines via LAD, long horizontal runs = plateaus/rails/arrow shafts) and
//     the remaining ink components become candidate boxes.
//  2. Classification — a small MLP (internal/nn), trained purely on
//     synthetic data, labels each candidate as one of the five edge types
//     or background (text, arrow heads, leftovers).
//
// Like the paper's SED, the module finally sorts detections top-to-bottom
// then left-to-right and partitions them per signal.
package sed

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"tdmagic/internal/dataset"
	"tdmagic/internal/geom"
	"tdmagic/internal/imgproc"
	"tdmagic/internal/lad"
	"tdmagic/internal/nn"
	"tdmagic/internal/parallel"
	"tdmagic/internal/spo"
)

// background is the classifier label for non-edge candidates.
const background = int(spo.NumEdgeTypes)

// Config controls proposal generation and detection.
type Config struct {
	// MinPlateauRun is the horizontal run length treated as plateau /
	// rail / shaft ink and erased before component analysis.
	MinPlateauRun int
	// MinHeight and MinArea filter tiny candidate components.
	MinHeight int
	MinArea   int
	// BridgeGap merges candidate components whose boxes, expanded by this
	// many pixels, intersect — re-joining edge strokes that were nicked
	// where an erased annotation line crossed them.
	BridgeGap int
	// ScoreThreshold drops low-confidence classifications.
	ScoreThreshold float64
	// MaxProposals bounds the candidate components entering the O(n²)
	// merge passes; beyond it the smallest components are discarded
	// (deterministically). Clean pictures produce tens of candidates, so
	// the cap only engages on pathological inputs — dense speckle noise
	// can shatter into tens of thousands of single-pixel components and
	// turn proposal merging quadratic. <= 0 selects DefaultMaxProposals.
	MaxProposals int
	// Workers tiles the component labelling inside one picture: 0 or 1
	// runs sequentially, < 0 uses every core. The proposals are
	// bit-identical for any value. Not serialised with the model; the
	// pipeline sets it per call from its IntraWorkers knob.
	Workers int
}

// DefaultMaxProposals is the proposal cap used when Config.MaxProposals
// is unset (also by models deserialised from before the field existed).
const DefaultMaxProposals = 4000

// DefaultConfig returns parameters tuned for the generated 900×540 pictures.
func DefaultConfig() Config {
	return Config{
		MinPlateauRun:  26,
		MinHeight:      12,
		MinArea:        14,
		BridgeGap:      11,
		ScoreThreshold: 0.5,
	}
}

// Detection is one typed edge box.
type Detection struct {
	Box   geom.Rect
	Type  spo.EdgeType
	Score float64
}

// Model is a trained edge classifier.
type Model struct {
	Net *nn.Net
	Cfg Config

	// scratch pools per-goroutine inference buffers so Detect performs no
	// transient allocation in its classify loop, including when many
	// goroutines translate pictures concurrently (core.TranslateAll).
	scratch sync.Pool
}

// detectScratch is the reusable working state of one Detect call.
type detectScratch struct {
	feat []float64
	nn   *nn.Scratch
}

func (m *Model) getScratch() *detectScratch {
	if sc, ok := m.scratch.Get().(*detectScratch); ok {
		return sc
	}
	return &detectScratch{feat: make([]float64, FeatureSize), nn: m.Net.NewScratch()}
}

// cleanup returns the proposal working image: bw minus dashed annotation
// structure and long horizontal runs.
//
// Annotation lines are erased only where they are *locally* dashed: a solid
// step edge that shares its column with the dashed event line below it (the
// paper's Example 3 geometry) keeps its solid stretch while the dashes are
// removed. A solid-drawn annotation line therefore survives cleanup and can
// genuinely confuse the detector, exactly the failure mode the paper
// reports.
func cleanup(bw *imgproc.Binary, lines *lad.Result, cfg Config) *imgproc.Binary {
	work := bw.Clone()
	const win, localSolid = 5, 0.9
	// Long solid vertical contours are annotation lines drawn solid (an
	// industrial style): erase the stretches where the line runs alone,
	// keeping crossings with waveform ink. Short solid verticals are step
	// edges and stay. A thin step edge sharing its column with a long solid
	// line is erased with it — the paper's Example 3 failure, preserved by
	// design.
	for _, v := range lines.V {
		if lad.Dashed(v.Density) || v.Seg.Len() < bw.H*35/100 {
			continue
		}
		for y := v.Seg.Y0; y <= v.Seg.Y1; y++ {
			alone := true
			for dy := -1; dy <= 1; dy++ {
				if bw.RowAny(y+dy, v.Seg.X-8, v.Seg.X-3) || bw.RowAny(y+dy, v.Seg.X+3, v.Seg.X+8) {
					alone = false
					break
				}
			}
			if alone {
				work.ClearRect(geom.Rect{X0: v.Seg.X - 2, Y0: y, X1: v.Seg.X + 2, Y1: y})
			}
		}
	}
	for _, v := range lines.V {
		if !lad.Dashed(v.Density) {
			continue
		}
		// Probe each row's 3-column band once, then answer every sliding
		// window from the prefix sum.
		y0, y1 := v.Seg.Y0, v.Seg.Y1
		pre := make([]int, y1-y0+2)
		for i, yy := 0, y0; yy <= y1; i, yy = i+1, yy+1 {
			hit := 0
			if bw.RowAny(yy, v.Seg.X-1, v.Seg.X+1) {
				hit = 1
			}
			pre[i+1] = pre[i] + hit
		}
		for y := y0; y <= y1; y++ {
			lo, hi := y-win, y+win
			if lo < y0 {
				lo = y0
			}
			if hi > y1 {
				hi = y1
			}
			hits := pre[hi-y0+1] - pre[lo-y0]
			if float64(hits)/float64(hi-lo+1) < localSolid {
				work.ClearRect(geom.Rect{X0: v.Seg.X - 2, Y0: y, X1: v.Seg.X + 2, Y1: y})
			}
		}
	}
	for _, h := range lines.H {
		if !lad.Dashed(h.Density) {
			continue
		}
		// OR the 3-row band word-wise once, then answer every sliding
		// window from the prefix sum of the per-column occupancy.
		acc := make([]uint64, bw.Stride)
		for dy := -1; dy <= 1; dy++ {
			if yy := h.Seg.Y + dy; yy >= 0 && yy < bw.H {
				row := bw.Row(yy)
				for j := range acc {
					acc[j] |= row[j]
				}
			}
		}
		x0, x1 := h.Seg.X0, h.Seg.X1
		pre := make([]int, x1-x0+2)
		for i, xx := 0, x0; xx <= x1; i, xx = i+1, xx+1 {
			hit := 0
			if acc[xx>>6]>>(uint(xx)&63)&1 != 0 {
				hit = 1
			}
			pre[i+1] = pre[i] + hit
		}
		for x := x0; x <= x1; x++ {
			lo, hi := x-win, x+win
			if lo < x0 {
				lo = x0
			}
			if hi > x1 {
				hi = x1
			}
			hits := pre[hi-x0+1] - pre[lo-x0]
			if float64(hits)/float64(hi-lo+1) < localSolid {
				work.ClearRect(geom.Rect{X0: x, Y0: h.Seg.Y - 2, X1: x, Y1: h.Seg.Y + 2})
			}
		}
	}
	for _, run := range imgproc.HRuns(work, cfg.MinPlateauRun) {
		work.ClearRect(run.Rect())
	}
	return work
}

// Propose returns candidate edge boxes from the working image.
func Propose(bw *imgproc.Binary, lines *lad.Result, cfg Config) []geom.Rect {
	work := cleanup(bw, lines, cfg)
	w := cfg.Workers
	if w == 0 {
		w = 1
	}
	comps := imgproc.RegionsW(work, 4, w)
	boxes := make([]geom.Rect, 0, len(comps))
	areas := make([]int, 0, len(comps))
	for _, c := range comps {
		if lineResidue(c.Box, lines) {
			continue
		}
		boxes = append(boxes, c.Box)
		areas = append(areas, c.Area)
	}
	boxes, areas = capProposals(boxes, areas, cfg.MaxProposals)
	boxes, areas = mergeBoxes(boxes, areas, cfg.BridgeGap)
	boxes, areas = stitchDiagonal(boxes, areas)
	var out []geom.Rect
	for i, b := range boxes {
		if b.H() < cfg.MinHeight || areas[i] < cfg.MinArea {
			continue
		}
		out = append(out, tightBox(work, b).Expand(1, 1).Clip(work.Bounds()))
	}
	return out
}

// capProposals enforces Config.MaxProposals: when a degraded picture
// shatters into more candidate components than the cap, only the largest
// survive (ties broken by original order), keeping the quadratic merge
// passes bounded. The kept boxes stay in their original order, so below
// the cap the function is the identity and the clean path is unchanged.
func capProposals(boxes []geom.Rect, areas []int, max int) ([]geom.Rect, []int) {
	if max <= 0 {
		max = DefaultMaxProposals
	}
	if len(boxes) <= max {
		return boxes, areas
	}
	idx := make([]int, len(boxes))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return areas[idx[a]] > areas[idx[b]] })
	keep := idx[:max]
	sort.Ints(keep)
	outB := make([]geom.Rect, len(keep))
	outA := make([]int, len(keep))
	for i, k := range keep {
		outB[i] = boxes[k]
		outA[i] = areas[k]
	}
	return outB, outA
}

// stitchDiagonal re-joins the pieces of a gentle ramp that a crossing
// annotation line cut apart: the gap grows with 1/slope, so plain
// proximity merging cannot close it. Two boxes are stitched when they are
// horizontally close, vertically adjacent, and offset like a diagonal
// continuation (same-row text fragments have matching centres and are left
// alone).
func stitchDiagonal(boxes []geom.Rect, areas []int) ([]geom.Rect, []int) {
	for {
		merged := false
		for i := 0; i < len(boxes); i++ {
			for j := i + 1; j < len(boxes); j++ {
				a, b := boxes[i], boxes[j]
				if a.X0 > b.X0 {
					a, b = b, a
				}
				gapX := b.X0 - a.X1
				if gapX < 1 || gapX > 34 {
					continue
				}
				if b.Y0-a.Y1 > 10 || a.Y0-b.Y1 > 10 {
					continue // vertically apart
				}
				if geom.Abs(a.CenterY()-b.CenterY()) < 8 {
					continue // same-row structure (text), not a ramp cut
				}
				// Both pieces must look like stroke segments: tall enough
				// and sparse (a diagonal stroke fills little of its box,
				// while text blocks and arrow heads are dense).
				if a.H() < 6 || b.H() < 6 {
					continue
				}
				if float64(areas[i]) > 0.3*float64(boxes[i].Area()) ||
					float64(areas[j]) > 0.3*float64(boxes[j].Area()) {
					continue
				}
				boxes[i] = boxes[i].Union(boxes[j])
				areas[i] += areas[j]
				boxes = append(boxes[:j], boxes[j+1:]...)
				areas = append(areas[:j], areas[j+1:]...)
				merged = true
				j--
			}
		}
		if !merged {
			return boxes, areas
		}
	}
}

// lineResidue reports whether a small component is left-over ink of a
// dashed annotation line (locally solid where it crossed another stroke):
// a narrow, short sliver sitting on a dashed contour's column or row.
func lineResidue(box geom.Rect, lines *lad.Result) bool {
	if box.W() <= 5 && box.H() <= 24 {
		for _, v := range lines.V {
			if lad.Dashed(v.Density) && geom.Abs(box.CenterX()-v.Seg.X) <= 3 &&
				box.Y0 >= v.Seg.Y0-3 && box.Y1 <= v.Seg.Y1+3 {
				return true
			}
		}
	}
	if box.H() <= 5 && box.W() <= 24 {
		for _, h := range lines.H {
			if lad.Dashed(h.Density) && geom.Abs(box.CenterY()-h.Seg.Y) <= 3 &&
				box.X0 >= h.Seg.X0-3 && box.X1 <= h.Seg.X1+3 {
				return true
			}
		}
	}
	return false
}

// mergeBoxes repeatedly unions boxes whose gap-expanded extents intersect,
// until stable. Areas are summed on merge.
func mergeBoxes(boxes []geom.Rect, areas []int, gap int) ([]geom.Rect, []int) {
	for {
		merged := false
		for i := 0; i < len(boxes); i++ {
			for j := i + 1; j < len(boxes); j++ {
				if boxes[i].Expand(gap, gap).Overlaps(boxes[j]) {
					boxes[i] = boxes[i].Union(boxes[j])
					areas[i] += areas[j]
					boxes = append(boxes[:j], boxes[j+1:]...)
					areas = append(areas[:j], areas[j+1:]...)
					merged = true
					j--
				}
			}
		}
		if !merged {
			return boxes, areas
		}
	}
}

// tightBox shrinks a candidate box to the raw ink it contains.
func tightBox(bw *imgproc.Binary, box geom.Rect) geom.Rect {
	box = box.Clip(bw.Bounds())
	out := geom.Rect{X0: box.X1 + 1, Y0: box.Y1 + 1, X1: box.X0 - 1, Y1: box.Y0 - 1}
	for y := box.Y0; y <= box.Y1; y++ {
		if first, last, ok := bw.RowSpan(y, box.X0, box.X1); ok {
			out = out.Union(geom.Rect{X0: first, Y0: y, X1: last, Y1: y})
		}
	}
	if out.Empty() {
		return box
	}
	return out
}

// FeatureSize is the classifier input dimension.
const FeatureSize = gridN*gridN + 4 + 8 + 3

const gridN = 12

// Features extracts the classifier input for a candidate box: a 12×12
// occupancy grid of the box ink, four geometry features, and eight context
// features describing where the surrounding waveform ink sits (the plateau
// positions disambiguate rise from fall).
func Features(bw *imgproc.Binary, box geom.Rect, imgW, imgH int) []float64 {
	return FeaturesInto(make([]float64, 0, FeatureSize), bw, box, imgW, imgH)
}

// FeaturesInto is Features writing into dst's backing array (dst needs
// capacity FeatureSize to stay allocation-free). It returns the filled
// slice, the hot-path variant used by Detect and training workers.
func FeaturesInto(dst []float64, bw *imgproc.Binary, box geom.Rect, imgW, imgH int) []float64 {
	f := dst[:0]
	w, h := box.W(), box.H()
	// Occupancy grid.
	for gy := 0; gy < gridN; gy++ {
		for gx := 0; gx < gridN; gx++ {
			x0 := box.X0 + gx*w/gridN
			x1 := box.X0 + (gx+1)*w/gridN - 1
			y0 := box.Y0 + gy*h/gridN
			y1 := box.Y0 + (gy+1)*h/gridN - 1
			if x1 < x0 {
				x1 = x0
			}
			if y1 < y0 {
				y1 = y0
			}
			f = append(f, inkFrac(bw, geom.Rect{X0: x0, Y0: y0, X1: x1, Y1: y1}))
		}
	}
	// Geometry.
	aspect := float64(w) / float64(h)
	if aspect > 4 {
		aspect = 4
	}
	f = append(f,
		aspect,
		float64(h)/float64(imgH),
		float64(w)/float64(imgW),
		inkFrac(bw, box),
	)
	// Context strips: a strip one-third of the box width (min 8 px) to the
	// left and right, split into top/bottom halves; plus strips above and
	// below, split left/right.
	sw := w / 3
	if sw < 8 {
		sw = 8
	}
	sh := h / 3
	if sh < 8 {
		sh = 8
	}
	midY := box.CenterY()
	midX := box.CenterX()
	f = append(f,
		inkFrac(bw, geom.Rect{X0: box.X0 - sw, Y0: box.Y0, X1: box.X0 - 1, Y1: midY}),     // left-top
		inkFrac(bw, geom.Rect{X0: box.X0 - sw, Y0: midY + 1, X1: box.X0 - 1, Y1: box.Y1}), // left-bottom
		inkFrac(bw, geom.Rect{X0: box.X1 + 1, Y0: box.Y0, X1: box.X1 + sw, Y1: midY}),     // right-top
		inkFrac(bw, geom.Rect{X0: box.X1 + 1, Y0: midY + 1, X1: box.X1 + sw, Y1: box.Y1}), // right-bottom
		inkFrac(bw, geom.Rect{X0: box.X0, Y0: box.Y0 - sh, X1: midX, Y1: box.Y0 - 1}),     // above-left
		inkFrac(bw, geom.Rect{X0: midX + 1, Y0: box.Y0 - sh, X1: box.X1, Y1: box.Y0 - 1}), // above-right
		inkFrac(bw, geom.Rect{X0: box.X0, Y0: box.Y1 + 1, X1: midX, Y1: box.Y1 + sh}),     // below-left
		inkFrac(bw, geom.Rect{X0: midX + 1, Y0: box.Y1 + 1, X1: box.X1, Y1: box.Y1 + sh}), // below-right
	)
	// Directional cue: the normalised vertical centroid of the waveform
	// ink entering from the left and leaving to the right. A falling edge
	// enters high (near 0) and leaves low (near 1); a rising edge the
	// opposite. Decisive for step edges whose occupancy grid is a plain
	// vertical bar.
	// The strips extend a few rows beyond the box: proposal boxes are ink-
	// tight, so the adjoining plateau stroke can sit just outside them.
	leftC := inkCentroidY(bw, geom.Rect{X0: box.X0 - sw, Y0: box.Y0 - 4, X1: box.X0 - 1, Y1: box.Y1 + 4})
	rightC := inkCentroidY(bw, geom.Rect{X0: box.X1 + 1, Y0: box.Y0 - 4, X1: box.X1 + sw, Y1: box.Y1 + 4})
	f = append(f, leftC, rightC, leftC-rightC+0.5)
	return f
}

// inkCentroidY returns the mean row of the ink in r, normalised to [0, 1]
// within r (0 = top). Empty regions report 0.5.
func inkCentroidY(bw *imgproc.Binary, r geom.Rect) float64 {
	r = r.Clip(bw.Bounds())
	if r.Empty() || r.H() <= 1 {
		return 0.5
	}
	sum, n := 0, 0
	for y := r.Y0; y <= r.Y1; y++ {
		c := bw.RowCount(y, r.X0, r.X1)
		sum += c * (y - r.Y0)
		n += c
	}
	if n == 0 {
		return 0.5
	}
	return float64(sum) / float64(n) / float64(r.H()-1)
}

// inkFrac returns the fraction of set pixels in r (clipped to the image).
func inkFrac(bw *imgproc.Binary, r geom.Rect) float64 {
	r = r.Clip(bw.Bounds())
	if r.Empty() {
		return 0
	}
	return float64(bw.CountRect(r)) / float64(r.Area())
}

// TrainConfig controls model training.
type TrainConfig struct {
	Hidden    int
	Epochs    int
	BatchSize int
	LR        float64
	// Workers fans the per-sample featurisation and the minibatch gradient
	// computation out over a worker pool (<= 0 means GOMAXPROCS). The
	// trained model is identical for any worker count.
	Workers int
}

// DefaultTrainConfig mirrors the paper's 30-epoch regime at a small scale.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Hidden: 48, Epochs: 30, BatchSize: 64, LR: 3e-3}
}

// exampleSet extracts the training examples of one labelled picture:
// binarise, detect lines, propose candidates, featurise. This per-sample
// stage is independent across samples and runs on the worker pool. A
// pre-binarised image may be supplied to avoid repeating the Otsu pass
// (core.Train shares one binarisation between SED and OCR); bw == nil
// computes it here.
func exampleSet(s *dataset.Sample, bw *imgproc.Binary, cfg Config) []nn.Sample {
	var out []nn.Sample
	if bw == nil {
		bw = imgproc.Threshold(s.Image, imgproc.OtsuThreshold(s.Image))
	}
	lines := lad.DetectBinary(bw, lad.DefaultConfig())
	props := Propose(bw, lines, cfg)
	for _, p := range props {
		label := background
		bestIoU := 0.0
		for _, gt := range s.Edges {
			if iou := p.IoU(gt.Box); iou > bestIoU {
				bestIoU = iou
				if iou >= 0.5 {
					label = int(gt.Type)
				}
			}
		}
		if bestIoU >= 0.2 && label == background {
			continue // ambiguous: skip
		}
		out = append(out, nn.Sample{X: Features(bw, p, s.Image.W, s.Image.H), Y: label})
	}
	for _, gt := range s.Edges {
		out = append(out, nn.Sample{X: Features(bw, gt.Box, s.Image.W, s.Image.H), Y: int(gt.Type)})
	}
	return out
}

// Train fits an edge classifier on labelled samples. Positives come from
// matched proposals and from the ground-truth boxes themselves; unmatched
// proposals become background examples.
//
// The binarise→LAD→propose→featurise stage runs per sample on tc.Workers
// goroutines; examples are collected in input order, so the resulting model
// does not depend on the worker count.
//
// bws optionally carries the samples' pre-binarised images (parallel to
// samples); nil binarises internally.
func Train(rng *rand.Rand, samples []*dataset.Sample, bws []*imgproc.Binary, cfg Config, tc TrainConfig) (*Model, error) {
	perSample := make([][]nn.Sample, len(samples))
	parallel.For(tc.Workers, len(samples), func(i int) {
		var bw *imgproc.Binary
		if bws != nil {
			bw = bws[i]
		}
		perSample[i] = exampleSet(samples[i], bw, cfg)
	})
	total := 0
	for _, ex := range perSample {
		total += len(ex)
	}
	train := make([]nn.Sample, 0, total)
	for _, ex := range perSample {
		train = append(train, ex...)
	}
	if len(train) == 0 {
		return nil, fmt.Errorf("sed: no training examples from %d samples", len(samples))
	}
	net := nn.NewNet(rng, FeatureSize, tc.Hidden, background+1)
	if _, err := net.Train(rng, train, nn.TrainConfig{
		Epochs: tc.Epochs, BatchSize: tc.BatchSize, LR: tc.LR, Workers: tc.Workers,
	}); err != nil {
		return nil, err
	}
	return &Model{Net: net, Cfg: cfg}, nil
}

// Detect runs the full detector on a picture: propose, classify, filter.
// The classify loop reuses pooled feature and activation buffers, so it
// performs no transient allocation per candidate.
func (m *Model) Detect(img *imgproc.Gray, lines *lad.Result) []Detection {
	dets, _ := m.DetectCtx(context.Background(), img, lines)
	return dets
}

// DetectCtx is Detect with cooperative cancellation: the context is
// checked before proposal generation and along the classify loop, so a
// pathological picture cannot run past its deadline by more than one
// proposal pass (itself bounded by Config.MaxProposals).
func (m *Model) DetectCtx(ctx context.Context, img *imgproc.Gray, lines *lad.Result) ([]Detection, error) {
	return m.DetectCtxW(ctx, img, lines, m.Cfg.Workers)
}

// DetectCtxW is DetectCtx with the intra-picture component labelling tiled
// over workers goroutines (0 or 1 sequential, < 0 every core). Detections
// are bit-identical for any worker count.
func (m *Model) DetectCtxW(ctx context.Context, img *imgproc.Gray, lines *lad.Result, workers int) ([]Detection, error) {
	bw := lines.BW
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := m.Cfg
	cfg.Workers = workers
	props := Propose(bw, lines, cfg)
	sc := m.getScratch()
	defer m.scratch.Put(sc)
	var dets []Detection
	for i, p := range props {
		if i&63 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		sc.feat = FeaturesInto(sc.feat, bw, p, img.W, img.H)
		class, prob := m.Net.PredictScratch(sc.nn, sc.feat)
		if class == background || prob < m.Cfg.ScoreThreshold {
			continue
		}
		dets = append(dets, Detection{Box: p, Type: spo.EdgeType(class), Score: prob})
	}
	SortDetections(dets)
	return dets, nil
}

// SortDetections orders detections top-to-bottom then left-to-right, the
// L_B ordering of the paper.
func SortDetections(dets []Detection) {
	sort.Slice(dets, func(i, j int) bool {
		if dets[i].Box.Y0 != dets[j].Box.Y0 {
			return dets[i].Box.Y0 < dets[j].Box.Y0
		}
		return dets[i].Box.X0 < dets[j].Box.X0
	})
}

// Partition splits sorted detections into per-signal groups by clustering
// their vertical extents: two boxes belong to the same signal when their
// vertical spans overlap.
func Partition(dets []Detection) [][]Detection {
	if len(dets) == 0 {
		return nil
	}
	type group struct {
		y0, y1 int
		dets   []Detection
	}
	var groups []*group
	for _, d := range dets {
		placed := false
		for _, g := range groups {
			if d.Box.Y0 <= g.y1 && d.Box.Y1 >= g.y0 {
				g.dets = append(g.dets, d)
				if d.Box.Y0 < g.y0 {
					g.y0 = d.Box.Y0
				}
				if d.Box.Y1 > g.y1 {
					g.y1 = d.Box.Y1
				}
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, &group{y0: d.Box.Y0, y1: d.Box.Y1, dets: []Detection{d}})
		}
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].y0 < groups[j].y0 })
	out := make([][]Detection, len(groups))
	for i, g := range groups {
		sort.Slice(g.dets, func(a, b int) bool { return g.dets[a].Box.X0 < g.dets[b].Box.X0 })
		out[i] = g.dets
	}
	return out
}
