package ocr

import (
	"math/rand"
	"testing"

	"tdmagic/internal/geom"
	"tdmagic/internal/imgproc"
	"tdmagic/internal/lad"
	"tdmagic/internal/render"
	"tdmagic/internal/tdgen"
)

// renderText draws s at the given scale and returns the binary image and
// the text box.
func renderText(s string, scale int) (*imgproc.Binary, geom.Rect) {
	c := render.NewCanvas(600, 80)
	box := c.Text(10, 10, s, scale)
	return c.Ink(), box
}

func TestNewFontModelCoversCharset(t *testing.T) {
	m := NewFontModel()
	for _, ch := range charset {
		if m.Templates[ch] == nil {
			t.Errorf("no template for %q", ch)
		}
	}
	if len(m.Charset()) != len(m.Templates) {
		t.Error("Charset length mismatch")
	}
}

func TestRecognizePlainStrings(t *testing.T) {
	m := NewFontModel()
	for _, s := range []string{"GND", "SCK", "CLK", "90%", "50%", "6ns", "RST", "DATA"} {
		for _, scale := range []int{2, 3} {
			bw, box := renderText(s, scale)
			got, conf := m.RecognizeLine(bw, box)
			if got != s {
				t.Errorf("RecognizeLine(%q, scale %d) = %q (conf %.2f)", s, scale, got, conf)
			}
			if conf < 0.5 {
				t.Errorf("%q: low confidence %v", s, conf)
			}
		}
	}
}

func TestRecognizeSubscriptMarkup(t *testing.T) {
	m := NewFontModel()
	for _, s := range []string{"t_{s}", "t_{h}", "V_{INA}", "t_{D(on)}", "t_{PHL}", "V_{CC}"} {
		bw, box := renderText(s, 3)
		got, _ := m.RecognizeLine(bw, box)
		if got != s {
			t.Errorf("RecognizeLine(%q) = %q", s, got)
		}
	}
}

func TestRecognizeEmptyBox(t *testing.T) {
	m := NewFontModel()
	bw := imgproc.NewBinary(50, 50)
	got, conf := m.RecognizeLine(bw, geom.Rect{X0: 0, Y0: 0, X1: 49, Y1: 49})
	if got != "" || conf != 0 {
		t.Errorf("empty box = %q, %v", got, conf)
	}
}

func TestTrainImprovesAlignment(t *testing.T) {
	g := tdgen.New(tdgen.DefaultConfig(tdgen.G1), rand.New(rand.NewSource(41)))
	samples, err := g.GenerateN(6)
	if err != nil {
		t.Fatal(err)
	}
	m := NewFontModel()
	aligned := m.Train(samples, nil)
	if aligned == 0 {
		t.Error("no text boxes aligned during training")
	}
	// After training, templates for common characters have multiple crops.
	if tpl := m.Templates['t']; tpl == nil || tpl.Count < 2 {
		t.Error("'t' template not refined from data")
	}
}

func TestDetectRegionsOnGenerated(t *testing.T) {
	g := tdgen.New(tdgen.DefaultConfig(tdgen.G1), rand.New(rand.NewSource(43)))
	samples, err := g.GenerateN(5)
	if err != nil {
		t.Fatal(err)
	}
	total, found := 0, 0
	for _, s := range samples {
		bw := imgproc.Threshold(s.Image, imgproc.OtsuThreshold(s.Image))
		lines := lad.DetectBinary(bw, lad.DefaultConfig())
		regions := DetectRegions(bw, lines, DefaultDetectConfig())
		for _, gt := range s.Texts {
			total++
			for _, r := range regions {
				if r.IoU(gt.Box) >= 0.4 {
					found++
					break
				}
			}
		}
	}
	frac := float64(found) / float64(total)
	if frac < 0.85 {
		t.Errorf("text detection found %.2f of boxes (%d/%d), want >= 0.85", frac, found, total)
	}
}

func TestReadAllEndToEnd(t *testing.T) {
	g := tdgen.New(tdgen.DefaultConfig(tdgen.G1), rand.New(rand.NewSource(47)))
	train, err := g.GenerateN(8)
	if err != nil {
		t.Fatal(err)
	}
	val, err := g.GenerateN(4)
	if err != nil {
		t.Fatal(err)
	}
	m := NewFontModel()
	m.Train(train, nil)
	total, correct := 0, 0
	for _, s := range val {
		bw := imgproc.Threshold(s.Image, imgproc.OtsuThreshold(s.Image))
		lines := lad.DetectBinary(bw, lad.DefaultConfig())
		results := m.ReadAll(bw, lines, DefaultDetectConfig())
		for _, gt := range s.Texts {
			total++
			for _, r := range results {
				if r.Box.IoU(gt.Box) >= 0.3 && r.Text == gt.Text {
					correct++
					break
				}
			}
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.8 {
		t.Errorf("end-to-end OCR accuracy %.2f (%d/%d), want >= 0.8", acc, correct, total)
	}
}

func TestPlainChars(t *testing.T) {
	got := plainChars("t_{D(on)}")
	if string(got) != "tD(on)" {
		t.Errorf("plainChars = %q", string(got))
	}
	if len(plainChars("")) != 0 {
		t.Error("empty plainChars")
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"abc", "ab", 1},
		{"kitten", "sitting", 3},
		{"", "abc", 3},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b); got != c.want {
			t.Errorf("editDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLexiconCorrect(t *testing.T) {
	lex := NewLexicon([]string{"V_{INA}", "t_{D(on)}", "GND"})
	if got := lex.Correct("V_{1NA}"); got != "V_{INA}" {
		t.Errorf("Correct = %q", got)
	}
	if got := lex.Correct("GN0"); got != "GND" {
		t.Errorf("Correct = %q", got)
	}
	// Distant strings pass through unchanged.
	if got := lex.Correct("zzzzzzzz"); got != "zzzzzzzz" {
		t.Errorf("Correct mangled distant string: %q", got)
	}
	// Nil and empty lexicons are no-ops.
	var nilLex *Lexicon
	if nilLex.Correct("x") != "x" {
		t.Error("nil lexicon changed string")
	}
	if NewLexicon(nil).Correct("x") != "x" {
		t.Error("empty lexicon changed string")
	}
	if lex.Correct("") != "" {
		t.Error("empty string mangled")
	}
}

func TestSegmentGlyphsCount(t *testing.T) {
	bw, box := renderText("ABC", 2)
	glyphs := segmentBoxes(bw, box)
	if len(glyphs) != 3 {
		t.Errorf("segmented %d glyphs, want 3", len(glyphs))
	}
	bw2, box2 := renderText("t_{D(on)}", 3)
	glyphs2 := segmentBoxes(bw2, box2)
	if len(glyphs2) != 6 { // t D ( o n )
		t.Errorf("segmented %d glyphs, want 6", len(glyphs2))
	}
}

func TestSegmentGlyphsOutOfBounds(t *testing.T) {
	bw := imgproc.NewBinary(10, 10)
	if g := segmentBoxes(bw, geom.Rect{X0: 100, Y0: 100, X1: 120, Y1: 120}); g != nil {
		t.Error("out-of-bounds segmentation returned glyphs")
	}
}
