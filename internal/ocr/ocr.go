// Package ocr implements the paper's OCR module: text detection (finding
// the annotation text boxes in a timing-diagram picture) and text
// recognition (reading each box back into the rich-markup string it was
// typeset from, subscripts included).
//
// The paper trains PaddleOCR's detector and recogniser on synthetic L-TD-G
// crops. This implementation keeps the same contract with a template-based
// recogniser: glyph templates start from the built-in font (the prior) and
// are refined from labelled synthetic crops by Train, so recognition
// quality genuinely depends on the training data. Subscript markup
// ("t_{D(on)}") is reconstructed geometrically from glyph size and baseline
// offset, the same cues a human reader uses.
package ocr

import (
	"context"
	"sort"
	"strings"
	"sync"

	"tdmagic/internal/dataset"
	"tdmagic/internal/font"
	"tdmagic/internal/geom"
	"tdmagic/internal/imgproc"
	"tdmagic/internal/lad"
)

// Grid dimensions of the normalised glyph representation.
const (
	gridW = 10
	gridH = 14
)

// Template is the learned appearance of one character.
type Template struct {
	Grid   []float64 // gridW×gridH mean occupancy of the tight glyph box
	Aspect float64   // tight-box width / height
	Count  int       // number of training crops merged in
}

// Model is a trained glyph recogniser.
type Model struct {
	Templates map[rune]*Template

	// grids pools the occupancy-grid buffer reused across the glyphs of a
	// recognition call, keeping the classifier inner loop allocation-light
	// even under concurrent batch translation.
	grids sync.Pool
}

func (m *Model) getGrid() []float64 {
	if g, ok := m.grids.Get().(*[]float64); ok {
		return *g
	}
	return make([]float64, gridW*gridH)
}

func (m *Model) putGrid(g []float64) { m.grids.Put(&g) }

// Charset returns the characters the model can emit.
func (m *Model) Charset() []rune {
	out := make([]rune, 0, len(m.Templates))
	for r := range m.Templates {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// charset is the vocabulary of datasheet annotations.
const charset = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789%()/"

// NewFontModel builds the prior model by rendering every charset glyph from
// the built-in font.
func NewFontModel() *Model {
	m := &Model{Templates: make(map[rune]*Template)}
	for _, ch := range charset {
		b := imgproc.NewBinary(font.GlyphW*4, font.GlyphH*4)
		font.DrawGlyph(func(x, y int) { b.Set(x, y, true) }, 0, 0, ch, 4)
		box := inkBox(b, b.Bounds())
		if box.Empty() {
			continue
		}
		m.Templates[ch] = &Template{
			Grid:   sampleGrid(b, box),
			Aspect: float64(box.W()) / float64(box.H()),
			Count:  1,
		}
	}
	return m
}

// inkBox returns the tight bounding box of ink within r.
func inkBox(bw *imgproc.Binary, r geom.Rect) geom.Rect {
	r = r.Clip(bw.Bounds())
	out := geom.Rect{X0: r.X1 + 1, Y0: r.Y1 + 1, X1: r.X0 - 1, Y1: r.Y0 - 1}
	for y := r.Y0; y <= r.Y1; y++ {
		if first, last, ok := bw.RowSpan(y, r.X0, r.X1); ok {
			out = out.Union(geom.Rect{X0: first, Y0: y, X1: last, Y1: y})
		}
	}
	return out
}

// sampleGrid resamples the ink of box into a gridW×gridH occupancy grid.
func sampleGrid(bw *imgproc.Binary, box geom.Rect) []float64 {
	return sampleGridInto(make([]float64, gridW*gridH), bw, box)
}

// sampleGridInto is sampleGrid writing into g (length gridW*gridH), the
// buffer-reusing variant of the recognition hot path.
func sampleGridInto(g []float64, bw *imgproc.Binary, box geom.Rect) []float64 {
	w, h := box.W(), box.H()
	for gy := 0; gy < gridH; gy++ {
		for gx := 0; gx < gridW; gx++ {
			x0 := box.X0 + gx*w/gridW
			x1 := box.X0 + (gx+1)*w/gridW - 1
			y0 := box.Y0 + gy*h/gridH
			y1 := box.Y0 + (gy+1)*h/gridH - 1
			if x1 < x0 {
				x1 = x0
			}
			if y1 < y0 {
				y1 = y0
			}
			// tot is the unclipped cell area: out-of-image pixels count
			// toward the denominator but never hold ink, exactly like the
			// per-pixel probe whose At() is false out of bounds.
			n := bw.CountRect(geom.Rect{X0: x0, Y0: y0, X1: x1, Y1: y1})
			tot := (x1 - x0 + 1) * (y1 - y0 + 1)
			g[gy*gridW+gx] = float64(n) / float64(tot)
		}
	}
	return g
}

// segmentBoxes splits the ink inside a text box into per-character tight
// boxes using the column projection: runs of inked columns separated by
// blank columns.
func segmentBoxes(bw *imgproc.Binary, box geom.Rect) []geom.Rect {
	box = box.Clip(bw.Bounds())
	if box.Empty() {
		return nil
	}
	// OR every row of the box word-wise, then read the column occupancy out
	// of the accumulated words.
	acc := make([]uint64, bw.Stride)
	for y := box.Y0; y <= box.Y1; y++ {
		row := bw.Row(y)
		for j := range acc {
			acc[j] |= row[j]
		}
	}
	colInk := make([]bool, box.W())
	for x := box.X0; x <= box.X1; x++ {
		colInk[x-box.X0] = acc[x>>6]>>(uint(x)&63)&1 != 0
	}
	var boxes []geom.Rect
	start := -1
	for i := 0; i <= len(colInk); i++ {
		inked := i < len(colInk) && colInk[i]
		if inked && start < 0 {
			start = i
		} else if !inked && start >= 0 {
			sub := geom.Rect{X0: box.X0 + start, Y0: box.Y0, X1: box.X0 + i - 1, Y1: box.Y1}
			tight := inkBox(bw, sub)
			if !tight.Empty() {
				boxes = append(boxes, tight)
			}
			start = -1
		}
	}
	return boxes
}

// classifyGrid returns the best-matching character for an occupancy grid
// with the given aspect ratio, and a confidence in (0, 1] (1 = perfect
// template match).
func (m *Model) classifyGrid(grid []float64, aspect float64) (rune, float64) {
	best := rune(0)
	bestDist := 1e18
	for ch, t := range m.Templates {
		ar := aspect / t.Aspect
		if ar < 1 {
			ar = 1 / ar
		}
		pen := 0.35 * (ar - 1) // aspect mismatch penalty
		if pen > bestDist {
			// The distance term is non-negative, so this template cannot
			// win or tie; skipping it never changes the result.
			continue
		}
		d, ok := gridDistBounded(grid, t.Grid, pen, bestDist)
		if !ok {
			continue
		}
		// Break exact ties by rune so the winner does not depend on map
		// iteration order: degraded glyphs (empty or shattered grids)
		// routinely tie several templates, and the result must be
		// deterministic run to run.
		if d < bestDist || (d == bestDist && (best == 0 || ch < best)) {
			bestDist = d
			best = ch
		}
	}
	conf := 1 / (1 + bestDist*2.2)
	return best, conf
}

func gridDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s / float64(len(a))
}

// gridDistBounded computes gridDist(a, b) + pen, aborting early (ok=false)
// once the partial distance provably exceeds limit. The partial sum is
// monotone and the final comparison uses the same arithmetic as the caller,
// so an abort can only happen when the full distance would lose strictly —
// ties are never dropped and the classification result is bit-identical to
// the unbounded scan.
func gridDistBounded(a, b []float64, pen, limit float64) (float64, bool) {
	n := float64(len(a))
	s := 0.0
	for i := 0; i < len(a); {
		e := i + 32
		if e > len(a) {
			e = len(a)
		}
		for ; i < e; i++ {
			d := a[i] - b[i]
			if d < 0 {
				d = -d
			}
			s += d
		}
		if e < len(a) && s/n+pen > limit {
			return 0, false
		}
	}
	return s/n + pen, true
}

// Result is one recognised text box.
type Result struct {
	Box  geom.Rect
	Text string
	Conf float64
}

// readGlyph is one recognised character with its confidence and geometry.
type readGlyph struct {
	ch   rune
	conf float64
	box  geom.Rect
}

// readGlyphs segments and classifies every glyph in a text box. One pooled
// grid buffer serves all glyphs of the call, so the classifier loop does
// not allocate per character.
func (m *Model) readGlyphs(bw *imgproc.Binary, box geom.Rect) []readGlyph {
	boxes := segmentBoxes(bw, box)
	if len(boxes) == 0 {
		return nil
	}
	grid := m.getGrid()
	defer m.putGrid(grid)
	out := make([]readGlyph, 0, len(boxes))
	for _, gb := range boxes {
		sampleGridInto(grid, bw, gb)
		ch, conf := m.classifyGrid(grid, float64(gb.W())/float64(gb.H()))
		out = append(out, readGlyph{ch: ch, conf: conf, box: gb})
	}
	return out
}

// assemble reconstructs the rich string of a glyph sequence, inferring
// subscript markup from glyph size and baseline offset, and returns the
// mean confidence.
func assemble(glyphs []readGlyph) (string, float64) {
	if len(glyphs) == 0 {
		return "", 0
	}
	lineTop, lineBot := glyphs[0].box.Y0, glyphs[0].box.Y1
	for _, g := range glyphs {
		if g.box.Y0 < lineTop {
			lineTop = g.box.Y0
		}
		if g.box.Y1 > lineBot {
			lineBot = g.box.Y1
		}
	}
	lineH := lineBot - lineTop + 1
	var b strings.Builder
	inSub := false
	total := 0.0
	for _, g := range glyphs {
		total += g.conf
		topOff := float64(g.box.Y0-lineTop) / float64(lineH)
		relH := float64(g.box.H()) / float64(lineH)
		sub := topOff > 0.34 && relH < 0.72
		switch {
		case sub && !inSub:
			b.WriteString("_{")
			inSub = true
		case !sub && inSub:
			b.WriteString("}")
			inSub = false
		}
		b.WriteRune(g.ch)
	}
	if inSub {
		b.WriteString("}")
	}
	return b.String(), total / float64(len(glyphs))
}

// RecognizeLine reads the text inside box, reconstructing subscript markup
// from glyph geometry. It returns the rich string and the mean glyph
// confidence.
func (m *Model) RecognizeLine(bw *imgproc.Binary, box geom.Rect) (string, float64) {
	return assemble(m.readGlyphs(bw, box))
}

// Train refines the model's templates from labelled synthetic samples: each
// ground-truth text box is segmented, and when the glyph count matches the
// markup's character count the observed grids are merged into the
// corresponding templates (the same alignment trick CTC-style recognisers
// exploit, applicable here because the typesetting is known).
//
// bws optionally carries the samples' pre-binarised images (parallel to
// samples), sharing one Otsu pass with the other training stages; nil
// binarises internally.
func (m *Model) Train(samples []*dataset.Sample, bws []*imgproc.Binary) int {
	aligned := 0
	grid := m.getGrid()
	defer m.putGrid(grid)
	for si, s := range samples {
		bw := (*imgproc.Binary)(nil)
		if bws != nil {
			bw = bws[si]
		}
		if bw == nil {
			bw = imgproc.Threshold(s.Image, imgproc.OtsuThreshold(s.Image))
		}
		for _, tb := range s.Texts {
			chars := plainChars(tb.Text)
			boxes := segmentBoxes(bw, tb.Box)
			if len(chars) == 0 || len(boxes) != len(chars) {
				continue
			}
			aligned++
			for i, gb := range boxes {
				sampleGridInto(grid, bw, gb)
				aspect := float64(gb.W()) / float64(gb.H())
				ch := chars[i]
				t := m.Templates[ch]
				if t == nil {
					t = &Template{Grid: make([]float64, gridW*gridH), Aspect: aspect}
					m.Templates[ch] = t
				}
				n := float64(t.Count)
				for j := range t.Grid {
					t.Grid[j] = (t.Grid[j]*n + grid[j]) / (n + 1)
				}
				t.Aspect = (t.Aspect*n + aspect) / (n + 1)
				t.Count++
			}
		}
	}
	return aligned
}

// plainChars strips the subscript markup of a rich string, returning the
// visible characters in order.
func plainChars(s string) []rune {
	var out []rune
	for _, sp := range font.ParseRich(s) {
		out = append(out, []rune(sp.Text)...)
	}
	return out
}

// DetectConfig controls text-region detection.
type DetectConfig struct {
	// MaxGlyphH / MinGlyphH bound plausible glyph heights in pixels.
	MinGlyphH, MaxGlyphH int
	// JoinDX is the horizontal gap within which neighbouring glyph
	// components are clustered into one line.
	JoinDX int
	// MinConf drops clusters whose recognition confidence is below this
	// (arrow heads and stroke leftovers match no template well).
	MinConf float64
	// Workers tiles the component labelling inside one picture: 0 or 1
	// runs sequentially, < 0 uses every core. The detected boxes are
	// bit-identical for any value.
	Workers int
}

// DefaultDetectConfig returns parameters for the generated pictures.
func DefaultDetectConfig() DetectConfig {
	return DetectConfig{MinGlyphH: 4, MaxGlyphH: 40, JoinDX: 9, MinConf: 0.42}
}

// DetectRegions finds candidate text boxes: ink components that remain
// after removing line structure, clustered into horizontal lines.
//
// A LAD horizontal contour can cover both a genuine annotation line and a
// row of text that the morphological closing merged into it; blanket
// erasure would cut the glyphs in half. Each contour column is therefore
// erased only where its neighbourhood above and below is empty — true for
// line stretches, false inside a text block.
func DetectRegions(bw *imgproc.Binary, lines *lad.Result, cfg DetectConfig) []geom.Rect {
	work := bw.Clone()
	for _, v := range lines.V {
		work.ClearRect(geom.Rect{X0: v.Seg.X - 2, Y0: v.Seg.Y0, X1: v.Seg.X + 2, Y1: v.Seg.Y1})
	}
	for _, h := range lines.H {
		for x := h.Seg.X0; x <= h.Seg.X1; x++ {
			neighbours := bw.CountRect(geom.Rect{X0: x - 3, Y0: h.Seg.Y - 6, X1: x + 3, Y1: h.Seg.Y - 2}) +
				bw.CountRect(geom.Rect{X0: x - 3, Y0: h.Seg.Y + 2, X1: x + 3, Y1: h.Seg.Y + 6})
			if neighbours <= 1 {
				work.ClearRect(geom.Rect{X0: x, Y0: h.Seg.Y - 2, X1: x, Y1: h.Seg.Y + 2})
			}
		}
	}
	for _, run := range imgproc.HRuns(work, 24) {
		work.ClearRect(run.Rect())
	}
	for _, run := range imgproc.VRuns(work, 24) {
		work.ClearRect(run.Rect())
	}
	w := cfg.Workers
	if w == 0 {
		w = 1
	}
	comps := imgproc.RegionsW(work, 2, w)
	var boxes []geom.Rect
	for _, c := range comps {
		if c.Box.H() < cfg.MinGlyphH || c.Box.H() > cfg.MaxGlyphH || c.Box.W() > 3*cfg.MaxGlyphH {
			continue
		}
		boxes = append(boxes, c.Box)
	}
	// Cluster into lines: merge boxes that are horizontally close and
	// vertically overlapping.
	for {
		merged := false
		for i := 0; i < len(boxes); i++ {
			for j := i + 1; j < len(boxes); j++ {
				a, b := boxes[i], boxes[j]
				if a.Expand(cfg.JoinDX, 0).Overlaps(b) && vOverlap(a, b) {
					boxes[i] = a.Union(b)
					boxes = append(boxes[:j], boxes[j+1:]...)
					merged = true
					j--
				}
			}
		}
		if !merged {
			break
		}
	}
	// Lines must contain some substance.
	var out []geom.Rect
	for _, b := range boxes {
		if b.W() >= 4 && b.H() >= cfg.MinGlyphH {
			out = append(out, b)
		}
	}
	return out
}

// vOverlap reports whether two boxes overlap vertically (sharing a line).
func vOverlap(a, b geom.Rect) bool {
	return a.Y0 <= b.Y1 && b.Y0 <= a.Y1
}

// ReadAll detects and recognises every text box in a picture. Leading and
// trailing glyphs that match no template (arrow heads or stroke debris that
// joined the cluster) are trimmed before the cluster-level confidence
// filter, so a long label next to an arrow head survives while pure-debris
// clusters are dropped.
func (m *Model) ReadAll(bw *imgproc.Binary, lines *lad.Result, cfg DetectConfig) []Result {
	out, _ := m.ReadAllCtx(context.Background(), bw, lines, cfg)
	return out
}

// ReadAllCtx is ReadAll with cooperative cancellation: the context is
// checked before region detection and between text boxes, so a
// pathological picture cannot run past its deadline by more than one
// region's recognition.
func (m *Model) ReadAllCtx(ctx context.Context, bw *imgproc.Binary, lines *lad.Result, cfg DetectConfig) ([]Result, error) {
	const glyphTrimConf = 0.36
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var out []Result
	for _, box := range DetectRegions(bw, lines, cfg) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		glyphs := m.readGlyphs(bw, box)
		for len(glyphs) > 0 && glyphs[0].conf < glyphTrimConf {
			glyphs = glyphs[1:]
		}
		for len(glyphs) > 0 && glyphs[len(glyphs)-1].conf < glyphTrimConf {
			glyphs = glyphs[:len(glyphs)-1]
		}
		text, conf := assemble(glyphs)
		if text == "" || conf < cfg.MinConf {
			continue
		}
		tight := glyphs[0].box
		for _, g := range glyphs {
			tight = tight.Union(g.box)
		}
		out = append(out, Result{Box: tight, Text: text, Conf: conf})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Box.Y0 != out[j].Box.Y0 {
			return out[i].Box.Y0 < out[j].Box.Y0
		}
		return out[i].Box.X0 < out[j].Box.X0
	})
	return out, nil
}

// Lexicon post-processing: snap recognised strings to the nearest known
// vocabulary entry when the edit distance is small relative to the length.
type Lexicon struct {
	Entries []string
	// MaxRatio is the maximum edit-distance / length ratio to accept a
	// correction.
	MaxRatio float64
}

// NewLexicon builds a lexicon from vocabulary entries.
func NewLexicon(entries []string) *Lexicon {
	return &Lexicon{Entries: entries, MaxRatio: 0.34}
}

// Correct returns the closest lexicon entry if it is close enough,
// otherwise s unchanged.
func (l *Lexicon) Correct(s string) string {
	if l == nil || len(l.Entries) == 0 {
		return s
	}
	best, bestDist := "", 1<<30
	for _, e := range l.Entries {
		d := editDistance(s, e)
		if d < bestDist {
			best, bestDist = e, d
		}
	}
	n := len([]rune(s))
	if n == 0 {
		return s
	}
	if float64(bestDist)/float64(n) <= l.MaxRatio {
		return best
	}
	return s
}

// editDistance is the Levenshtein distance between two strings.
func editDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
