package ocr

import (
	"math"
	"math/rand"
	"testing"
)

// TestGridDistBounded pins the early-abort distance to the unbounded
// reference: with a generous limit the values must be identical, and an
// abort may only ever happen when the full distance would lose strictly.
func TestGridDistBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(200)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.Float64()
			b[i] = rng.Float64()
		}
		pen := rng.Float64() * 0.5
		want := gridDist(a, b) + pen

		if got, ok := gridDistBounded(a, b, pen, math.Inf(1)); !ok || got != want {
			t.Fatalf("n=%d unbounded: got (%v,%v) want (%v,true)", n, got, ok, want)
		}
		// A limit at exactly the true distance must not abort: ties survive.
		if got, ok := gridDistBounded(a, b, pen, want); !ok || got != want {
			t.Fatalf("n=%d tie limit: got (%v,%v) want (%v,true)", n, got, ok, want)
		}
		// Any abort against a random limit must be a strict loss.
		limit := rng.Float64() * want * 1.5
		got, ok := gridDistBounded(a, b, pen, limit)
		if ok && got != want {
			t.Fatalf("n=%d kept but wrong value: got %v want %v", n, got, want)
		}
		if !ok && want <= limit {
			t.Fatalf("n=%d aborted although %v <= limit %v", n, want, limit)
		}
	}
}
