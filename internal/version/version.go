// Package version reports the build's identity — module version, VCS
// revision and dirty flag — read from the metadata the Go toolchain
// embeds in every binary. All six CLIs answer -version from here and
// tdserve exposes the same answer on GET /version, so "which build is
// this?" has one consistent answer across every surface.
package version

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Info is the build identity of the running binary.
type Info struct {
	// Version is the main module's version ("(devel)" for a plain
	// `go build` outside a released module).
	Version string `json:"version"`
	// Revision is the VCS commit hash, when the build had VCS metadata.
	Revision string `json:"revision,omitempty"`
	// Dirty reports uncommitted changes at build time.
	Dirty bool `json:"dirty,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

// Get reads the build metadata. It never fails: a binary built without
// build info (e.g. a bare test binary) reports "unknown".
func Get() Info {
	info := Info{Version: "unknown", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}

// String renders the identity as a one-line human answer to -version.
func (i Info) String() string {
	s := i.Version
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " " + rev
		if i.Dirty {
			s += "+dirty"
		}
	}
	return fmt.Sprintf("%s (%s)", s, i.GoVersion)
}
