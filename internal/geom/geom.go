// Package geom provides the small planar-geometry vocabulary shared by every
// stage of the TD-Magic pipeline: integer points, axis-aligned rectangles
// (bounding boxes), segments, and the intersection / IoU predicates used for
// feature association and detection scoring.
//
// Coordinates follow raster conventions: x grows rightwards, y grows
// downwards, and rectangles are half-open neither — both bounds are
// inclusive, matching how bounding boxes are reported by detectors.
package geom

import "fmt"

// Pt is an integer point in raster coordinates.
type Pt struct {
	X, Y int
}

// Add returns the component-wise sum of p and q.
func (p Pt) Add(q Pt) Pt { return Pt{p.X + q.X, p.Y + q.Y} }

// Sub returns the component-wise difference of p and q.
func (p Pt) Sub(q Pt) Pt { return Pt{p.X - q.X, p.Y - q.Y} }

// In reports whether p lies inside r (inclusive bounds).
func (p Pt) In(r Rect) bool {
	return r.X0 <= p.X && p.X <= r.X1 && r.Y0 <= p.Y && p.Y <= r.Y1
}

func (p Pt) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Rect is an axis-aligned rectangle with inclusive integer bounds.
// A Rect with X1 < X0 or Y1 < Y0 is empty.
type Rect struct {
	X0, Y0, X1, Y1 int
}

// RectFromPts returns the smallest Rect containing both p and q.
func RectFromPts(p, q Pt) Rect {
	return Rect{min(p.X, q.X), min(p.Y, q.Y), max(p.X, q.X), max(p.Y, q.Y)}
}

// Empty reports whether r contains no points.
func (r Rect) Empty() bool { return r.X1 < r.X0 || r.Y1 < r.Y0 }

// W returns the width of r in pixels (inclusive bounds), 0 if empty.
func (r Rect) W() int {
	if r.Empty() {
		return 0
	}
	return r.X1 - r.X0 + 1
}

// H returns the height of r in pixels (inclusive bounds), 0 if empty.
func (r Rect) H() int {
	if r.Empty() {
		return 0
	}
	return r.Y1 - r.Y0 + 1
}

// Area returns the number of pixels covered by r.
func (r Rect) Area() int { return r.W() * r.H() }

// Center returns the integer centre of r (rounded towards the origin corner).
func (r Rect) Center() Pt { return Pt{(r.X0 + r.X1) / 2, (r.Y0 + r.Y1) / 2} }

// CenterX returns the x coordinate of the centre of r.
func (r Rect) CenterX() int { return (r.X0 + r.X1) / 2 }

// CenterY returns the y coordinate of the centre of r.
func (r Rect) CenterY() int { return (r.Y0 + r.Y1) / 2 }

// Intersect returns the intersection of r and s; the result is empty when
// they do not overlap.
func (r Rect) Intersect(s Rect) Rect {
	return Rect{max(r.X0, s.X0), max(r.Y0, s.Y0), min(r.X1, s.X1), min(r.Y1, s.Y1)}
}

// Overlaps reports whether r and s share at least one pixel.
func (r Rect) Overlaps(s Rect) bool { return !r.Intersect(s).Empty() }

// Union returns the smallest Rect containing both r and s. The union of an
// empty rect with s is s.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{min(r.X0, s.X0), min(r.Y0, s.Y0), max(r.X1, s.X1), max(r.Y1, s.Y1)}
}

// Contains reports whether s lies entirely within r.
func (r Rect) Contains(s Rect) bool {
	if s.Empty() {
		return true
	}
	return r.X0 <= s.X0 && s.X1 <= r.X1 && r.Y0 <= s.Y0 && s.Y1 <= r.Y1
}

// Expand grows r by dx horizontally and dy vertically on every side.
// Negative values shrink the rect; the result may become empty.
func (r Rect) Expand(dx, dy int) Rect {
	return Rect{r.X0 - dx, r.Y0 - dy, r.X1 + dx, r.Y1 + dy}
}

// Translate shifts r by (dx, dy).
func (r Rect) Translate(dx, dy int) Rect {
	return Rect{r.X0 + dx, r.Y0 + dy, r.X1 + dx, r.Y1 + dy}
}

// Clip restricts r to the bounds rectangle.
func (r Rect) Clip(bounds Rect) Rect { return r.Intersect(bounds) }

// IoU returns the intersection-over-union of r and s in [0, 1].
// Two empty rectangles have IoU 0.
func (r Rect) IoU(s Rect) float64 {
	inter := r.Intersect(s)
	if inter.Empty() {
		return 0
	}
	ia := inter.Area()
	ua := r.Area() + s.Area() - ia
	if ua <= 0 {
		return 0
	}
	return float64(ia) / float64(ua)
}

func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d..%d,%d]", r.X0, r.Y0, r.X1, r.Y1)
}

// HSeg is a horizontal segment at row Y spanning columns [X0, X1].
type HSeg struct {
	Y, X0, X1 int
}

// Rect returns the 1-pixel-tall bounding rectangle of s.
func (s HSeg) Rect() Rect { return Rect{s.X0, s.Y, s.X1, s.Y} }

// Len returns the length of s in pixels.
func (s HSeg) Len() int { return s.X1 - s.X0 + 1 }

// VSeg is a vertical segment at column X spanning rows [Y0, Y1].
type VSeg struct {
	X, Y0, Y1 int
}

// Rect returns the 1-pixel-wide bounding rectangle of s.
func (s VSeg) Rect() Rect { return Rect{s.X, s.Y0, s.X, s.Y1} }

// Len returns the length of s in pixels.
func (s VSeg) Len() int { return s.Y1 - s.Y0 + 1 }

// CrossPoint returns the intersection point of a horizontal and a vertical
// segment and whether they actually cross (or touch).
func CrossPoint(h HSeg, v VSeg) (Pt, bool) {
	if v.X < h.X0 || v.X > h.X1 || h.Y < v.Y0 || h.Y > v.Y1 {
		return Pt{}, false
	}
	return Pt{v.X, h.Y}, true
}

// Abs returns the absolute value of x.
func Abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Clamp limits v to the range [lo, hi].
func Clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClampF limits v to the range [lo, hi].
func ClampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
