package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPtAddSub(t *testing.T) {
	p := Pt{3, -2}
	q := Pt{-1, 5}
	if got := p.Add(q); got != (Pt{2, 3}) {
		t.Errorf("Add = %v, want (2,3)", got)
	}
	if got := p.Sub(q); got != (Pt{4, -7}) {
		t.Errorf("Sub = %v, want (4,-7)", got)
	}
}

func TestPtIn(t *testing.T) {
	r := Rect{0, 0, 10, 5}
	cases := []struct {
		p    Pt
		want bool
	}{
		{Pt{0, 0}, true},
		{Pt{10, 5}, true},
		{Pt{5, 3}, true},
		{Pt{-1, 3}, false},
		{Pt{11, 3}, false},
		{Pt{5, 6}, false},
	}
	for _, c := range cases {
		if got := c.p.In(r); got != c.want {
			t.Errorf("%v.In(%v) = %v, want %v", c.p, r, got, c.want)
		}
	}
}

func TestRectFromPts(t *testing.T) {
	r := RectFromPts(Pt{5, 1}, Pt{2, 7})
	if r != (Rect{2, 1, 5, 7}) {
		t.Errorf("RectFromPts = %v", r)
	}
}

func TestRectEmptyAndDims(t *testing.T) {
	r := Rect{2, 3, 5, 4}
	if r.Empty() {
		t.Fatal("non-empty rect reported empty")
	}
	if r.W() != 4 || r.H() != 2 || r.Area() != 8 {
		t.Errorf("W/H/Area = %d/%d/%d, want 4/2/8", r.W(), r.H(), r.Area())
	}
	e := Rect{5, 3, 2, 4}
	if !e.Empty() {
		t.Fatal("inverted rect not empty")
	}
	if e.W() != 0 || e.H() != 0 || e.Area() != 0 {
		t.Errorf("empty rect dims nonzero: %d %d %d", e.W(), e.H(), e.Area())
	}
}

func TestRectCenter(t *testing.T) {
	r := Rect{0, 0, 10, 4}
	if c := r.Center(); c != (Pt{5, 2}) {
		t.Errorf("Center = %v", c)
	}
	if r.CenterX() != 5 || r.CenterY() != 2 {
		t.Errorf("CenterX/Y = %d/%d", r.CenterX(), r.CenterY())
	}
}

func TestRectIntersect(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 15, 15}
	got := a.Intersect(b)
	if got != (Rect{5, 5, 10, 10}) {
		t.Errorf("Intersect = %v", got)
	}
	c := Rect{20, 20, 30, 30}
	if !a.Intersect(c).Empty() {
		t.Error("disjoint rects intersect")
	}
	if !a.Overlaps(b) || a.Overlaps(c) {
		t.Error("Overlaps wrong")
	}
}

func TestRectTouchingOverlap(t *testing.T) {
	// Inclusive bounds: rects sharing exactly one edge column overlap.
	a := Rect{0, 0, 5, 5}
	b := Rect{5, 0, 9, 5}
	if !a.Overlaps(b) {
		t.Error("edge-sharing rects should overlap under inclusive bounds")
	}
}

func TestRectUnion(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{5, 5, 7, 9}
	if got := a.Union(b); got != (Rect{0, 0, 7, 9}) {
		t.Errorf("Union = %v", got)
	}
	empty := Rect{1, 1, 0, 0}
	if got := empty.Union(b); got != b {
		t.Errorf("empty.Union(b) = %v, want %v", got, b)
	}
	if got := b.Union(empty); got != b {
		t.Errorf("b.Union(empty) = %v, want %v", got, b)
	}
}

func TestRectContains(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	if !a.Contains(Rect{2, 2, 8, 8}) {
		t.Error("inner rect not contained")
	}
	if a.Contains(Rect{2, 2, 11, 8}) {
		t.Error("overflowing rect contained")
	}
	if !a.Contains(Rect{5, 5, 4, 4}) {
		t.Error("empty rect should be contained in anything")
	}
}

func TestRectExpandTranslateClip(t *testing.T) {
	r := Rect{5, 5, 10, 10}
	if got := r.Expand(2, 3); got != (Rect{3, 2, 12, 13}) {
		t.Errorf("Expand = %v", got)
	}
	if got := r.Translate(-5, 1); got != (Rect{0, 6, 5, 11}) {
		t.Errorf("Translate = %v", got)
	}
	if got := r.Clip(Rect{0, 0, 7, 7}); got != (Rect{5, 5, 7, 7}) {
		t.Errorf("Clip = %v", got)
	}
}

func TestIoU(t *testing.T) {
	a := Rect{0, 0, 9, 9} // 100 px
	if got := a.IoU(a); got != 1 {
		t.Errorf("self IoU = %v", got)
	}
	b := Rect{5, 0, 14, 9} // overlap 50, union 150
	if got := a.IoU(b); got < 0.333 || got > 0.334 {
		t.Errorf("IoU = %v, want ~1/3", got)
	}
	if got := a.IoU(Rect{100, 100, 110, 110}); got != 0 {
		t.Errorf("disjoint IoU = %v", got)
	}
}

func TestIoUProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randRect := func() Rect {
		x, y := rng.Intn(50), rng.Intn(50)
		return Rect{x, y, x + rng.Intn(30), y + rng.Intn(30)}
	}
	f := func() bool {
		a, b := randRect(), randRect()
		iou := a.IoU(b)
		if iou < 0 || iou > 1 {
			return false
		}
		// symmetry
		if iou != b.IoU(a) {
			return false
		}
		return true
	}
	for i := 0; i < 500; i++ {
		if !f() {
			t.Fatal("IoU property violated")
		}
	}
}

func TestSegments(t *testing.T) {
	h := HSeg{Y: 5, X0: 2, X1: 9}
	if h.Len() != 8 {
		t.Errorf("HSeg.Len = %d", h.Len())
	}
	if h.Rect() != (Rect{2, 5, 9, 5}) {
		t.Errorf("HSeg.Rect = %v", h.Rect())
	}
	v := VSeg{X: 4, Y0: 0, Y1: 9}
	if v.Len() != 10 {
		t.Errorf("VSeg.Len = %d", v.Len())
	}
	if v.Rect() != (Rect{4, 0, 4, 9}) {
		t.Errorf("VSeg.Rect = %v", v.Rect())
	}
}

func TestCrossPoint(t *testing.T) {
	h := HSeg{Y: 5, X0: 0, X1: 10}
	v := VSeg{X: 4, Y0: 0, Y1: 9}
	p, ok := CrossPoint(h, v)
	if !ok || p != (Pt{4, 5}) {
		t.Errorf("CrossPoint = %v %v", p, ok)
	}
	// touching at an endpoint counts as crossing
	v2 := VSeg{X: 10, Y0: 5, Y1: 9}
	if _, ok := CrossPoint(h, v2); !ok {
		t.Error("endpoint touch should cross")
	}
	v3 := VSeg{X: 11, Y0: 0, Y1: 9}
	if _, ok := CrossPoint(h, v3); ok {
		t.Error("x out of span should not cross")
	}
	v4 := VSeg{X: 4, Y0: 6, Y1: 9}
	if _, ok := CrossPoint(h, v4); ok {
		t.Error("y out of span should not cross")
	}
}

func TestAbsClamp(t *testing.T) {
	if Abs(-4) != 4 || Abs(4) != 4 || Abs(0) != 0 {
		t.Error("Abs wrong")
	}
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp wrong")
	}
	if ClampF(5, 0, 3) != 3 || ClampF(-1, 0, 3) != 0 || ClampF(2, 0, 3) != 2 {
		t.Error("ClampF wrong")
	}
}

// Property: Intersect is commutative and contained in both operands.
func TestIntersectProperty(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh uint8) bool {
		a := Rect{int(ax), int(ay), int(ax) + int(aw%40), int(ay) + int(ah%40)}
		b := Rect{int(bx), int(by), int(bx) + int(bw%40), int(by) + int(bh%40)}
		i1 := a.Intersect(b)
		i2 := b.Intersect(a)
		if i1 != i2 {
			return false
		}
		if !i1.Empty() && (!a.Contains(i1) || !b.Contains(i1)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Union contains both operands.
func TestUnionProperty(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh uint8) bool {
		a := Rect{int(ax), int(ay), int(ax) + int(aw%40), int(ay) + int(ah%40)}
		b := Rect{int(bx), int(by), int(bx) + int(bw%40), int(by) + int(bh%40)}
		u := a.Union(b)
		return u.Contains(a) && u.Contains(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStrings(t *testing.T) {
	if s := (Pt{1, 2}).String(); s != "(1,2)" {
		t.Errorf("Pt.String = %q", s)
	}
	if s := (Rect{1, 2, 3, 4}).String(); s != "[1,2..3,4]" {
		t.Errorf("Rect.String = %q", s)
	}
}
