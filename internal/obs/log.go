package obs

import (
	"io"
	"log/slog"
)

// Structured logging: one log/slog configuration shared by every
// execution surface, so a tdserve access-log line and a tdmagic warning
// carry the same field names and the same request-ID correlation key.

// RequestIDKey is the slog attribute key correlating log lines with
// traces and the X-Request-ID header.
const RequestIDKey = "request_id"

// NewLogger returns a JSON-lines slog.Logger writing to w at the given
// level. JSON lines are the exposition every log shipper understands;
// pass os.Stderr in the CLIs so stdout stays parseable output.
func NewLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// WithRequestID returns l with the request-ID correlation attribute
// attached, so every line logged through it can be joined against the
// request's trace and response headers. Nil-safe: a nil logger stays
// nil.
func WithRequestID(l *slog.Logger, id string) *slog.Logger {
	if l == nil {
		return nil
	}
	return l.With(slog.String(RequestIDKey, id))
}
