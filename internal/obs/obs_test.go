package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var tr *Trace
	sp := tr.Start("x")
	if sp != nil {
		t.Fatal("nil trace produced a span")
	}
	// Every span method must no-op on nil.
	sp.Int("k", 1).Bool("b", true)
	sp.StartChild("c").End()
	sp.End()
	if tr.Export() != nil {
		t.Error("nil trace exported non-nil")
	}
	if tr.RequestID() != "" {
		t.Error("nil trace has a request ID")
	}
	ctx := context.Background()
	if ContextWithTrace(ctx, nil) != ctx {
		t.Error("ContextWithTrace(nil) wrapped the context")
	}
	if ContextWithSpan(ctx, nil) != ctx {
		t.Error("ContextWithSpan(nil) wrapped the context")
	}
	if StartSpan(ctx, "x") != nil {
		t.Error("StartSpan without a trace returned a span")
	}
}

// TestNilTraceZeroAlloc pins the "zero-alloc when disabled" contract:
// the exact obs call sequence the Translate hot path performs — a
// context-lookup StartSpan, attribute records, a conditional context
// wrap and End — must not allocate when no trace is attached.
func TestNilTraceZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := StartSpan(ctx, "translate")
		if sp != nil {
			ctx = ContextWithSpan(ctx, sp)
		}
		sp.Int("width", 900).Int("diags", 0).Bool("error", false)
		sp.Event("tick")
		if RequestIDFrom(ctx) != "" {
			t.Fatal("request ID on a trace-free context")
		}
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocated %.1f times per translation, want 0", allocs)
	}
}

func TestDeterministicIDs(t *testing.T) {
	build := func() *Export {
		tr := NewTrace("req-42")
		root := tr.Start("translate")
		root.StartChild("lad").Int("v", 3).End()
		root.StartChild("sed").End()
		root.StartChild("sed").End() // second occurrence: distinct ID
		root.End()
		return tr.Export()
	}
	a, b := build(), build()
	if len(a.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(a.Spans))
	}
	for i := range a.Spans {
		if a.Spans[i].ID != b.Spans[i].ID || a.Spans[i].Parent != b.Spans[i].Parent {
			t.Errorf("span %d IDs differ across identical runs: %+v vs %+v", i, a.Spans[i], b.Spans[i])
		}
		if a.Spans[i].ID == 0 {
			t.Errorf("span %d has zero ID", i)
		}
	}
	// The two "sed" occurrences must not collide.
	var sedIDs []uint64
	for _, s := range a.Spans {
		if s.Name == "sed" {
			sedIDs = append(sedIDs, s.ID)
		}
	}
	if len(sedIDs) != 2 || sedIDs[0] == sedIDs[1] {
		t.Errorf("repeated span name did not get distinct IDs: %v", sedIDs)
	}
	// A different request ID derives different span IDs.
	other := NewTrace("req-43")
	sp := other.Start("translate")
	sp.End()
	if other.Export().Spans[0].ID == a.Spans[0].ID {
		t.Error("different request IDs produced the same span ID")
	}
}

func TestContextThreading(t *testing.T) {
	tr := NewTrace("ctx")
	ctx := ContextWithTrace(context.Background(), tr)
	root := StartSpan(ctx, "root")
	if root == nil || root.Parent != 0 {
		t.Fatalf("StartSpan on trace context: got %+v, want root span", root)
	}
	ctx = ContextWithSpan(ctx, root)
	child := StartSpan(ctx, "child")
	if child == nil || child.Parent != root.ID {
		t.Fatalf("StartSpan on span context: got %+v, want child of %d", child, root.ID)
	}
	child.End()
	root.End()
	e := tr.Export()
	if len(e.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(e.Spans))
	}
	if e.Span("child").Parent != e.Span("root").ID {
		t.Error("exported parent link broken")
	}
}

// TestExportRoundTrip pins the satellite requirement: export → JSON →
// parse reproduces the identical spans.
func TestExportRoundTrip(t *testing.T) {
	tr := NewTrace("round-trip")
	root := tr.Start("translate")
	time.Sleep(time.Millisecond)
	root.StartChild("lad").Int("v_contours", 7).Int("h_contours", 5).End()
	root.StartChild("sei").Bool("repaired", true).End()
	root.Int("diags", 2).End()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseExport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Export()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round-trip drift:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestParseExportRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		`{`,
		`{"request_id":"x","spans":[{"id":1,"start_ns":0,"dur_ns":5}]}`,  // unnamed span
		`{"request_id":"x","spans":[{"id":1,"name":"a","dur_ns":-5}]}`,   // negative duration
		`{"request_id":"x","spans":[{"id":1,"name":"a","start_ns":-1}]}`, // negative start
	} {
		if _, err := ParseExport([]byte(bad)); err == nil {
			t.Errorf("ParseExport accepted %q", bad)
		}
	}
}

func TestChromeExport(t *testing.T) {
	tr := NewTrace("chrome")
	root := tr.Start("translate")
	root.StartChild("lad").Int("v", 1).End()
	root.End()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TID  int     `json:"tid"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q has phase %q, want X", ev.Name, ev.Ph)
		}
		// A child nested in its parent must share the parent's track.
		if ev.TID != 1 {
			t.Errorf("nested event %q moved to track %d, want 1", ev.Name, ev.TID)
		}
	}
}

// TestConcurrentSpanRecording hammers one shared trace from many
// goroutines — the SED ∥ OCR shape, widened — and is meaningful chiefly
// under -race (ci.sh runs the suite with the race detector).
func TestConcurrentSpanRecording(t *testing.T) {
	tr := NewTrace("concurrent")
	root := tr.Start("translate")
	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := root.StartChild("stage")
				sp.Int("i", int64(i))
				sp.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	e := tr.Export()
	if len(e.Spans) != workers*perWorker+1 {
		t.Fatalf("got %d spans, want %d", len(e.Spans), workers*perWorker+1)
	}
	ids := make(map[uint64]bool, len(e.Spans))
	for _, s := range e.Spans {
		if ids[s.ID] {
			t.Fatalf("duplicate span ID %d under concurrency", s.ID)
		}
		ids[s.ID] = true
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("request IDs %q/%q are not 16 hex chars", a, b)
	}
	if a == b {
		t.Error("two request IDs collided")
	}
}

func TestWithRequestID(t *testing.T) {
	if WithRequestID(nil, "x") != nil {
		t.Error("nil logger did not stay nil")
	}
	var buf bytes.Buffer
	l := WithRequestID(NewLogger(&buf, nil), "abc123")
	l.Info("hello")
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("log line is not JSON: %v", err)
	}
	if line[RequestIDKey] != "abc123" {
		t.Errorf("log line missing request ID: %v", line)
	}
}
