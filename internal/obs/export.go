package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// SpanExport is the serialised form of one finished span. Times are
// nanosecond offsets/durations so the export is integer-exact and
// round-trips losslessly.
type SpanExport struct {
	ID      uint64        `json:"id"`
	Parent  uint64        `json:"parent,omitempty"`
	Name    string        `json:"name"`
	StartNS int64         `json:"start_ns"`
	DurNS   int64         `json:"dur_ns"`
	Attrs   []Attr        `json:"attrs,omitempty"`
	Events  []EventExport `json:"events,omitempty"`
}

// EventExport is the serialised form of one span event.
type EventExport struct {
	Name  string `json:"name"`
	AtNS  int64  `json:"at_ns"`
	Attrs []Attr `json:"attrs,omitempty"`
}

// Export is the plain-JSON form of a trace: the request ID plus every
// finished span, ordered by start offset (ID as tie-break) so the
// encoding is deterministic for a deterministic execution.
type Export struct {
	RequestID string       `json:"request_id"`
	Spans     []SpanExport `json:"spans"`
}

// Export snapshots the trace's finished spans. Nil-safe: a nil trace
// exports nil.
func (t *Trace) Export() *Export {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]SpanExport, len(t.spans))
	for i, s := range t.spans {
		var evs []EventExport
		if len(s.Events) > 0 {
			evs = make([]EventExport, len(s.Events))
			for j, ev := range s.Events {
				evs[j] = EventExport{
					Name:  ev.Name,
					AtNS:  ev.At.Nanoseconds(),
					Attrs: append([]Attr(nil), ev.Attrs...),
				}
			}
		}
		spans[i] = SpanExport{
			ID:      s.ID,
			Parent:  s.Parent,
			Name:    s.Name,
			StartNS: s.Start.Nanoseconds(),
			DurNS:   s.Dur.Nanoseconds(),
			Attrs:   append([]Attr(nil), s.Attrs...),
			Events:  evs,
		}
	}
	t.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].StartNS != spans[j].StartNS {
			return spans[i].StartNS < spans[j].StartNS
		}
		return spans[i].ID < spans[j].ID
	})
	return &Export{RequestID: t.requestID, Spans: spans}
}

// WriteJSON writes the plain JSON export (the `tdmagic -trace` format).
func (t *Trace) WriteJSON(w io.Writer) error {
	e := t.Export()
	if e == nil {
		return fmt.Errorf("obs: nil trace has no export")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// ParseExport decodes a plain JSON export, validating that it is
// structurally a trace (request ID present, every span named). It is
// the inverse of WriteJSON/Export, used by tests and trace-consuming
// tools.
func ParseExport(data []byte) (*Export, error) {
	var e Export
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("obs: parse export: %w", err)
	}
	for i, s := range e.Spans {
		if s.Name == "" {
			return nil, fmt.Errorf("obs: parse export: span %d has no name", i)
		}
		if s.DurNS < 0 || s.StartNS < 0 {
			return nil, fmt.Errorf("obs: parse export: span %q has negative time", s.Name)
		}
	}
	return &e, nil
}

// Span returns the first exported span with the given name, or nil.
func (e *Export) Span(name string) *SpanExport {
	for i := range e.Spans {
		if e.Spans[i].Name == name {
			return &e.Spans[i]
		}
	}
	return nil
}

// chromeEvent is one complete ("ph":"X") event of the Chrome
// trace_event format, loadable in chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat"`
	Ph   string           `json:"ph"`
	TS   float64          `json:"ts"`  // microseconds
	Dur  float64          `json:"dur"` // microseconds
	PID  int              `json:"pid"`
	TID  int              `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

// WriteChrome writes the trace in Chrome trace_event JSON. Spans become
// complete events; concurrent stages (SED ∥ OCR) are placed on separate
// tracks (tid) so their overlap is visible instead of mis-nested.
func (t *Trace) WriteChrome(w io.Writer) error {
	e := t.Export()
	if e == nil {
		return fmt.Errorf("obs: nil trace has no export")
	}
	// Track assignment: nested spans stay on their ancestor's track (the
	// viewer renders containment as depth), while spans that overlap a
	// non-ancestor — the genuinely concurrent stages, SED ∥ OCR — move to
	// the first track where they conflict with nothing. Traces are tiny
	// (tens of spans), so the quadratic scan is irrelevant.
	parentOf := make(map[uint64]uint64, len(e.Spans))
	for _, s := range e.Spans {
		parentOf[s.ID] = s.Parent
	}
	isAncestor := func(anc, id uint64) bool {
		for id != 0 {
			p := parentOf[id]
			if p == anc {
				return true
			}
			id = p
		}
		return false
	}
	type placed struct {
		id         uint64
		start, end int64
	}
	tracks := [][]placed{}
	events := make([]chromeEvent, 0, len(e.Spans))
	for _, s := range e.Spans {
		end := s.StartNS + s.DurNS
		tid := -1
		for i, tr := range tracks {
			ok := true
			for _, p := range tr {
				overlaps := s.StartNS < p.end && p.start < end
				if overlaps && !isAncestor(p.id, s.ID) && !isAncestor(s.ID, p.id) {
					ok = false
					break
				}
			}
			if ok {
				tid = i
				break
			}
		}
		if tid < 0 {
			tid = len(tracks)
			tracks = append(tracks, nil)
		}
		tracks[tid] = append(tracks[tid], placed{id: s.ID, start: s.StartNS, end: end})
		var args map[string]int64
		if len(s.Attrs) > 0 {
			args = make(map[string]int64, len(s.Attrs))
			for _, a := range s.Attrs {
				args[a.Key] = a.Val
			}
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  "pipeline",
			Ph:   "X",
			TS:   float64(s.StartNS) / 1e3,
			Dur:  float64(s.DurNS) / 1e3,
			PID:  1,
			TID:  tid + 1,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{events, "ms"})
}
