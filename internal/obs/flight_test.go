package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func captureNamed(r *Recorder, req, name string, dur time.Duration) {
	tr := NewTrace(req)
	sp := tr.Start(name)
	sp.End()
	sp.Dur = dur // tests steer pinning without sleeping
	// Re-export happens from tr.spans, so patching Dur after End but
	// before Capture is safe single-threaded.
	r.Capture(tr)
}

func TestFlightNilSafety(t *testing.T) {
	var r *Recorder
	r.Capture(NewTrace("x"))
	r.Event("x", "boom")
	if got, pinned := r.Len(); got != 0 || pinned != 0 {
		t.Fatal("nil recorder holds entries")
	}
	d := r.Snapshot(FlightFilter{})
	if d.Entries == nil || d.Pinned == nil || len(d.Entries) != 0 {
		t.Fatalf("nil recorder snapshot: %+v", d)
	}
	if r.SlowThreshold() != 0 {
		t.Fatal("nil recorder has a slow threshold")
	}
	// Enabled recorder must tolerate nil/empty traces.
	rec := NewRecorder(RecorderConfig{})
	rec.Capture(nil)
	rec.Capture(NewTrace("empty"))
	if got, _ := rec.Len(); got != 0 {
		t.Fatal("empty trace was recorded")
	}
}

// TestNilRecorderZeroAlloc pins the disabled path: a request running
// with no recorder and no trace must not allocate in any recorder call.
func TestNilRecorderZeroAlloc(t *testing.T) {
	var r *Recorder
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		tr := TraceFrom(ctx) // nil: no trace attached
		r.Capture(tr)
		r.Event("", "done")
	})
	if allocs != 0 {
		t.Errorf("disabled recorder allocated %.1f times per request, want 0", allocs)
	}
}

func TestFlightRingEvictionByCount(t *testing.T) {
	r := NewRecorder(RecorderConfig{MaxEntries: 4, MaxBytes: 1 << 20, Slow: time.Hour})
	for i := 0; i < 10; i++ {
		captureNamed(r, fmt.Sprintf("req-%d", i), "translate", time.Millisecond)
	}
	d := r.Snapshot(FlightFilter{})
	if len(d.Entries) != 4 {
		t.Fatalf("ring holds %d entries, want 4", len(d.Entries))
	}
	if d.Dropped != 6 {
		t.Errorf("dropped = %d, want 6", d.Dropped)
	}
	// Oldest-first order, most recent retained.
	for i, e := range d.Entries {
		if want := fmt.Sprintf("req-%d", 6+i); e.RequestID != want {
			t.Errorf("entry %d is %q, want %q", i, e.RequestID, want)
		}
	}
	if d.Entries[0].Seq >= d.Entries[3].Seq {
		t.Error("seq not monotone across entries")
	}
}

func TestFlightRingEvictionByBytes(t *testing.T) {
	r := NewRecorder(RecorderConfig{MaxEntries: 1 << 20, MaxBytes: 600, Slow: time.Hour})
	for i := 0; i < 50; i++ {
		r.Event(fmt.Sprintf("req-%d", i), strings.Repeat("e", 40))
	}
	ring, _ := r.Len()
	if ring >= 50 || ring == 0 {
		t.Fatalf("byte cap did not bite: %d entries live", ring)
	}
	// A single entry larger than the whole budget is still admitted,
	// alone — an empty recorder would be useless.
	r2 := NewRecorder(RecorderConfig{MaxBytes: 10, Slow: time.Hour})
	r2.Event("big", strings.Repeat("x", 500))
	r2.Event("big2", strings.Repeat("y", 500))
	if ring, _ := r2.Len(); ring != 1 {
		t.Fatalf("over-budget admission kept %d entries, want exactly 1", ring)
	}
}

func TestFlightSlowPinning(t *testing.T) {
	r := NewRecorder(RecorderConfig{MaxEntries: 2, Slow: 100 * time.Millisecond, MaxPinned: 3})
	captureNamed(r, "slow-1", "translate", 150*time.Millisecond)
	for i := 0; i < 10; i++ {
		captureNamed(r, fmt.Sprintf("fast-%d", i), "translate", time.Millisecond)
	}
	d := r.Snapshot(FlightFilter{})
	if len(d.Pinned) != 1 || d.Pinned[0].RequestID != "slow-1" {
		t.Fatalf("slow trace not pinned past eviction: %+v", d.Pinned)
	}
	if !d.Pinned[0].Pinned {
		t.Error("pinned entry not marked")
	}
	// The pinned list itself is capped, oldest evicted.
	for i := 0; i < 5; i++ {
		captureNamed(r, fmt.Sprintf("slow-%d", 2+i), "translate", time.Second)
	}
	d = r.Snapshot(FlightFilter{})
	if len(d.Pinned) != 3 {
		t.Fatalf("pinned list holds %d, want cap 3", len(d.Pinned))
	}
	if d.Pinned[0].RequestID != "slow-4" {
		t.Errorf("pinned eviction kept %q first, want slow-4", d.Pinned[0].RequestID)
	}
}

func TestFlightFilters(t *testing.T) {
	r := NewRecorder(RecorderConfig{Slow: time.Hour})
	captureNamed(r, "a", "translate", 5*time.Millisecond)
	captureNamed(r, "b", "verify", 50*time.Millisecond)
	captureNamed(r, "b", "translate", time.Millisecond)
	r.Event("job-1", "quarantine", I("attempt", 3))

	if d := r.Snapshot(FlightFilter{RequestID: "b"}); len(d.Entries) != 2 {
		t.Errorf("request-ID filter: got %d, want 2", len(d.Entries))
	}
	if d := r.Snapshot(FlightFilter{Name: "verify"}); len(d.Entries) != 1 || d.Entries[0].RequestID != "b" {
		t.Errorf("name filter: %+v", d.Entries)
	}
	if d := r.Snapshot(FlightFilter{MinDur: 10 * time.Millisecond}); len(d.Entries) != 1 || d.Entries[0].Name != "verify" {
		t.Errorf("min-dur filter: %+v", d.Entries)
	}
	if d := r.Snapshot(FlightFilter{Limit: 2}); len(d.Entries) != 2 || d.Entries[0].RequestID != "b" {
		t.Errorf("limit keeps most recent: %+v", d.Entries)
	}
	d := r.Snapshot(FlightFilter{RequestID: "job-1"})
	if len(d.Entries) != 1 || d.Entries[0].Kind != "event" || len(d.Entries[0].Attrs) != 1 {
		t.Errorf("event entry: %+v", d.Entries)
	}
	// The dump must be plain JSON-serialisable (the /debug/flight shape).
	if _, err := json.Marshal(d); err != nil {
		t.Fatalf("dump not serialisable: %v", err)
	}
}

// TestFlightConcurrentCapture hammers the recorder from many goroutines
// completing spans at once; meaningful chiefly under -race. The ring
// must end exactly at its cap with every admission accounted for.
func TestFlightConcurrentCapture(t *testing.T) {
	r := NewRecorder(RecorderConfig{MaxEntries: 32, MaxBytes: 1 << 20, Slow: time.Hour})
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr := NewTrace(fmt.Sprintf("w%d-%d", w, i))
				sp := tr.Start("translate")
				sp.StartChild("lad").End()
				sp.Event("tick", I("i", int64(i)))
				sp.End()
				r.Capture(tr)
				if i%5 == 0 {
					r.Snapshot(FlightFilter{Limit: 4})
				}
			}
		}(w)
	}
	wg.Wait()
	d := r.Snapshot(FlightFilter{})
	if len(d.Entries) != 32 {
		t.Fatalf("ring holds %d, want 32", len(d.Entries))
	}
	if got := d.Dropped + uint64(len(d.Entries)); got != workers*per {
		t.Fatalf("admissions unaccounted: dropped+live = %d, want %d", got, workers*per)
	}
	for _, e := range d.Entries {
		if len(e.Spans) != 2 {
			t.Fatalf("entry %q carries %d spans, want 2", e.RequestID, len(e.Spans))
		}
	}
}

func TestSpanEventsExport(t *testing.T) {
	tr := NewTrace("ev")
	sp := tr.Start("job.item")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // Event is the one cross-goroutine mutator
		defer wg.Done()
		sp.Event("lease_extend", I("epoch", 2))
	}()
	wg.Wait()
	sp.Event("backoff", I("attempt", 1), I("delay_ns", 1000))
	sp.End()
	e := tr.Export()
	evs := e.Span("job.item").Events
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	byName := map[string][]Attr{}
	for _, ev := range evs {
		if ev.AtNS < 0 {
			t.Errorf("event %q has negative offset", ev.Name)
		}
		byName[ev.Name] = ev.Attrs
	}
	if len(byName["backoff"]) != 2 || byName["backoff"][0] != (Attr{Key: "attempt", Val: 1}) {
		t.Errorf("backoff attrs: %+v", byName["backoff"])
	}
	// Events survive the JSON round trip.
	var buf strings.Builder
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseExport([]byte(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Span("job.item").Events) != 2 {
		t.Error("events lost in round trip")
	}
}
