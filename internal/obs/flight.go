package obs

import (
	"sync"
	"time"
)

// Flight recorder: a bounded in-memory ring of recently completed
// traces and structured events, so "what just happened" survives long
// enough to be asked about. The ring is capped by entry count AND by an
// estimated byte budget, whichever bites first; slow outliers — any
// entry whose root span exceeds the configured threshold — are pinned
// into a separate capped list so a burst of fast traffic cannot evict
// the one trace worth keeping.
//
// A nil *Recorder is the disabled state: every method no-ops without
// allocating, mirroring the nil-span design (TestNilRecorderZeroAlloc
// pins this). Enabled, captures take one short mutex hold; traces are
// exported (snapshot-copied) before the lock so capture cost is
// proportional to the trace, not to the ring.

// maxSpansPerEntry bounds a single captured trace: a 15k-item job trace
// must not swallow the whole byte budget. The earliest spans (by start
// offset) are kept; TruncatedSpans counts the remainder.
const maxSpansPerEntry = 512

// RecorderConfig sizes a Recorder. Zero fields take defaults.
type RecorderConfig struct {
	MaxEntries int           // ring capacity in entries (default 256)
	MaxBytes   int           // ring capacity in estimated bytes (default 1 MiB)
	Slow       time.Duration // root-span duration that pins an entry (default 1s)
	MaxPinned  int           // pinned-list capacity (default 32)
}

// FlightEntry is one recorded item: a completed trace (Kind "trace",
// Spans populated) or a structured event (Kind "event", Attrs
// populated). Seq is a monotone capture counter, so consumers can
// detect eviction gaps.
type FlightEntry struct {
	Seq            uint64       `json:"seq"`
	Time           time.Time    `json:"time"`
	Kind           string       `json:"kind"`
	RequestID      string       `json:"request_id"`
	Name           string       `json:"name"`
	DurNS          int64        `json:"dur_ns"`
	Pinned         bool         `json:"pinned,omitempty"`
	Spans          []SpanExport `json:"spans,omitempty"`
	TruncatedSpans int          `json:"truncated_spans,omitempty"`
	Attrs          []Attr       `json:"attrs,omitempty"`

	bytes int
}

// FlightFilter selects entries for Snapshot. Zero value matches all.
type FlightFilter struct {
	RequestID string        // exact match on RequestID
	Name      string        // exact match on Name (root span or event name)
	MinDur    time.Duration // minimum DurNS
	Limit     int           // most recent N after filtering (0 = all)
}

// FlightDump is the JSON shape of GET /debug/flight.
type FlightDump struct {
	Entries    []FlightEntry `json:"entries"`
	Pinned     []FlightEntry `json:"pinned"`
	Dropped    uint64        `json:"dropped"`
	MaxEntries int           `json:"max_entries"`
	MaxBytes   int           `json:"max_bytes"`
	SlowNS     int64         `json:"slow_ns"`
}

// Recorder is the flight recorder. Construct with NewRecorder; nil is
// the valid disabled value.
type Recorder struct {
	maxEntries int
	maxBytes   int
	slow       time.Duration
	maxPinned  int

	mu        sync.Mutex
	seq       uint64
	ring      []FlightEntry // FIFO, oldest first
	ringBytes int
	pinned    []FlightEntry // FIFO, oldest first
	dropped   uint64        // evicted from either list
}

// NewRecorder builds an enabled recorder. Defaults: 256 entries, 1 MiB,
// 1s slow threshold, 32 pinned.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 256
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 1 << 20
	}
	if cfg.Slow <= 0 {
		cfg.Slow = time.Second
	}
	if cfg.MaxPinned <= 0 {
		cfg.MaxPinned = 32
	}
	return &Recorder{
		maxEntries: cfg.MaxEntries,
		maxBytes:   cfg.MaxBytes,
		slow:       cfg.Slow,
		maxPinned:  cfg.MaxPinned,
	}
}

// SlowThreshold reports the root-span duration that pins an entry
// (0 on nil).
func (r *Recorder) SlowThreshold() time.Duration {
	if r == nil {
		return 0
	}
	return r.slow
}

// estimate approximates the JSON-encoded size of an entry. It only has
// to be consistent and roughly proportional — the byte cap is a memory
// bound, not an accounting ledger.
func estimate(e *FlightEntry) int {
	n := 96 + len(e.RequestID) + len(e.Name) + 32*len(e.Attrs)
	for i := range e.Spans {
		s := &e.Spans[i]
		n += 80 + len(s.Name) + 32*len(s.Attrs)
		for j := range s.Events {
			n += 48 + len(s.Events[j].Name) + 32*len(s.Events[j].Attrs)
		}
	}
	return n
}

// Capture records a completed trace. The entry's Name and DurNS come
// from the longest root span (a cache-hit trace's root is "cache", a
// full translation's is "translate"); entries whose root exceeds the
// slow threshold are pinned past ring eviction. Nil-safe on both the
// recorder and the trace.
func (r *Recorder) Capture(tr *Trace) {
	if r == nil || tr == nil {
		return
	}
	ex := tr.Export()
	if len(ex.Spans) == 0 {
		return
	}
	name, dur := "", int64(0)
	for i := range ex.Spans {
		s := &ex.Spans[i]
		if s.Parent == 0 && (name == "" || s.DurNS > dur) {
			name, dur = s.Name, s.DurNS
		}
	}
	if name == "" { // no root span ended; fall back to the first span
		name, dur = ex.Spans[0].Name, ex.Spans[0].DurNS
	}
	e := FlightEntry{
		Time:      time.Now(),
		Kind:      "trace",
		RequestID: ex.RequestID,
		Name:      name,
		DurNS:     dur,
		Spans:     ex.Spans,
	}
	if len(e.Spans) > maxSpansPerEntry {
		e.TruncatedSpans = len(e.Spans) - maxSpansPerEntry
		e.Spans = e.Spans[:maxSpansPerEntry:maxSpansPerEntry]
	}
	r.add(e, time.Duration(dur) >= r.slow)
}

// Event records a structured point event (job submitted, item
// quarantined, ...) outside any trace. Nil-safe.
func (r *Recorder) Event(requestID, name string, attrs ...Attr) {
	if r == nil {
		return
	}
	r.add(FlightEntry{
		Time:      time.Now(),
		Kind:      "event",
		RequestID: requestID,
		Name:      name,
		Attrs:     attrs,
	}, false)
}

func (r *Recorder) add(e FlightEntry, pin bool) {
	e.bytes = estimate(&e)
	e.Pinned = pin
	r.mu.Lock()
	r.seq++
	e.Seq = r.seq
	if pin {
		if len(r.pinned) >= r.maxPinned {
			drop := len(r.pinned) - r.maxPinned + 1
			r.dropped += uint64(drop)
			r.pinned = append(r.pinned[:0], r.pinned[drop:]...)
		}
		r.pinned = append(r.pinned, e)
		r.mu.Unlock()
		return
	}
	r.ring = append(r.ring, e)
	r.ringBytes += e.bytes
	for len(r.ring) > 1 && (len(r.ring) > r.maxEntries || r.ringBytes > r.maxBytes) {
		r.ringBytes -= r.ring[0].bytes
		r.ring = r.ring[1:]
		r.dropped++
	}
	// A lone over-budget entry stays: an empty recorder answers nothing.
	r.mu.Unlock()
}

func match(e *FlightEntry, f *FlightFilter) bool {
	if f.RequestID != "" && e.RequestID != f.RequestID {
		return false
	}
	if f.Name != "" && e.Name != f.Name {
		return false
	}
	if f.MinDur > 0 && e.DurNS < f.MinDur.Nanoseconds() {
		return false
	}
	return true
}

func filterCopy(src []FlightEntry, f *FlightFilter) []FlightEntry {
	out := make([]FlightEntry, 0, len(src))
	for i := range src {
		if match(&src[i], f) {
			out = append(out, src[i])
		}
	}
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// Snapshot copies the current contents, oldest first, applying the
// filter to both lists. Nil-safe: a nil recorder returns an empty dump.
func (r *Recorder) Snapshot(f FlightFilter) FlightDump {
	if r == nil {
		return FlightDump{Entries: []FlightEntry{}, Pinned: []FlightEntry{}}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return FlightDump{
		Entries:    filterCopy(r.ring, &f),
		Pinned:     filterCopy(r.pinned, &f),
		Dropped:    r.dropped,
		MaxEntries: r.maxEntries,
		MaxBytes:   r.maxBytes,
		SlowNS:     r.slow.Nanoseconds(),
	}
}

// Len reports (ring, pinned) entry counts, for tests and health output.
func (r *Recorder) Len() (ring, pinned int) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring), len(r.pinned)
}
