// Package obs is the pipeline's observability layer: a dependency-free
// span tracer plus a structured (log/slog) logger, shared by the tdmagic
// one-shot CLI and the tdserve HTTP service.
//
// Design constraints, in order:
//
//  1. Zero cost when disabled. Tracing is opt-in per translation; a
//     request without a trace must not allocate or lock anything on the
//     hot path. Every method is nil-safe — StartSpan on a context without
//     a trace returns a nil *Span, and attribute/End calls on a nil span
//     are no-ops — so the pipeline code is written unconditionally and
//     the disabled path compiles down to a context lookup and a nil
//     check. TestNilTraceZeroAlloc pins this with testing.AllocsPerRun.
//
//  2. Deterministic identity. Span IDs are derived from the
//     per-translation request ID plus the span name and its occurrence
//     number, not from a global counter or the clock, so the same
//     request ID over the same picture yields the same span IDs — traces
//     diff cleanly across runs and machines.
//
//  3. Goroutine safety. The perception stages record spans from
//     concurrent goroutines (SED and OCR overlap); collection is a
//     mutex-protected append on the owning Trace.
//
// Durations come from the monotonic clock (time.Since), so a span can
// never be negative or jump under wall-clock adjustment. Span start
// times are stored as offsets from the trace epoch, which makes the
// exported JSON self-contained and comparable.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Attr is one span attribute. Attributes are integer-valued by design
// (counts, sizes, 0/1 flags): every quantity the pipeline records is a
// count, and a fixed value type keeps the export byte-stable and the
// round-trip lossless.
type Attr struct {
	Key string `json:"key"`
	Val int64  `json:"val"`
}

// SpanEvent is one timestamped point event inside a span: a lease
// extension, a backoff sleep, a decode-progress tick. Events carry the
// same integer attributes as spans so the export stays byte-stable.
type SpanEvent struct {
	Name  string        `json:"name"`
	At    time.Duration `json:"-"` // offset from the trace epoch
	Attrs []Attr        `json:"attrs,omitempty"`
}

// Span is one timed operation inside a trace. Fields are exported for
// inspection after collection; mutate spans only through
// Int/Bool/Event/End. Int/Bool/End are single-goroutine (the span
// owner's); Event alone may be called from other goroutines (a
// heartbeat extending a lease while the worker runs) — it serialises
// on the trace mutex.
type Span struct {
	ID     uint64        // deterministic, derived from the request ID
	Parent uint64        // 0 for a root span
	Name   string        // stage or operation name ("lad", "translate", ...)
	Start  time.Duration // offset from the trace epoch (monotonic)
	Dur    time.Duration // set by End
	Attrs  []Attr
	Events []SpanEvent // appended by Event, guarded by tr.mu

	tr    *Trace
	began time.Time
}

// Trace collects the spans of one translation request. Create one per
// request with NewTrace; a nil *Trace is a valid "tracing disabled"
// value on which every method no-ops.
type Trace struct {
	requestID string
	base      uint64 // fnv64a(requestID), the ID derivation root
	epoch     time.Time

	mu    sync.Mutex
	seq   map[string]uint64 // per-name occurrence counters
	spans []*Span           // finished spans, in End order
}

// NewTrace starts an empty trace for one request. The request ID seeds
// the deterministic span-ID derivation; use NewRequestID for serving
// traffic or any stable string (e.g. the input file path) for
// reproducible CLI traces.
func NewTrace(requestID string) *Trace {
	return &Trace{
		requestID: requestID,
		base:      fnv64a(requestID),
		epoch:     time.Now(),
		seq:       make(map[string]uint64),
	}
}

// RequestID returns the ID the trace was created with ("" on nil).
func (t *Trace) RequestID() string {
	if t == nil {
		return ""
	}
	return t.requestID
}

// fnv64a is the FNV-1a hash, inlined so obs stays dependency-free and
// allocation-free.
func fnv64a(s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// spanID derives a deterministic nonzero span ID from the trace base,
// the span name and its occurrence number. Concurrent spans carry
// different names (or different occurrence numbers), so the derivation
// is stable under any goroutine interleaving.
func spanID(base uint64, name string, occurrence uint64) uint64 {
	const prime64 = 1099511628211
	h := base
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	h ^= occurrence
	h *= prime64
	if h == 0 {
		h = 1
	}
	return h
}

// newSpan starts a span under the given parent ID.
func (t *Trace) newSpan(parent uint64, name string) *Span {
	now := time.Now()
	t.mu.Lock()
	n := t.seq[name]
	t.seq[name] = n + 1
	t.mu.Unlock()
	return &Span{
		ID:     spanID(t.base, name, n),
		Parent: parent,
		Name:   name,
		Start:  now.Sub(t.epoch),
		tr:     t,
		began:  now,
	}
}

// Start begins a root-level span. Nil-safe: a nil trace returns a nil
// span.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(0, name)
}

// StartChild begins a child span of s. Nil-safe.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(s.ID, name)
}

// Int records an integer attribute and returns the span for chaining.
// Nil-safe.
func (s *Span) Int(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: v})
	return s
}

// Bool records a 0/1 attribute. Nil-safe.
func (s *Span) Bool(key string, v bool) *Span {
	var n int64
	if v {
		n = 1
	}
	return s.Int(key, n)
}

// Event records a timestamped point event on the span. Unlike
// Int/Bool, Event is safe to call from a goroutine other than the
// span's owner (appends are serialised on the trace mutex), which is
// what lease-extension heartbeats need. Nil-safe.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	ev := SpanEvent{Name: name, At: time.Since(s.tr.epoch), Attrs: attrs}
	s.tr.mu.Lock()
	s.Events = append(s.Events, ev)
	s.tr.mu.Unlock()
}

// I builds one integer attribute, for Event call sites.
func I(key string, v int64) Attr { return Attr{Key: key, Val: v} }

// End stamps the span's duration from the monotonic clock and hands it
// to the trace. A span must be ended exactly once; spans never ended do
// not appear in the export. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Dur = time.Since(s.began)
	t := s.tr
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// ctxKey carries either a *Span (the current parent) or a *Trace (a
// trace with no open parent yet) through a context. A zero-size key
// keeps the disabled-path Value lookup allocation-free.
type ctxKey struct{}

// ContextWithTrace returns ctx carrying t, so the next StartSpan opens
// a root span of t. A nil trace returns ctx unchanged.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// ContextWithSpan returns ctx carrying s as the current parent span. A
// nil span returns ctx unchanged, so callers can thread contexts
// unconditionally.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// StartSpan begins a span under whatever the context carries: a child
// of the current span, a root span of the current trace, or nil when
// the context carries neither (tracing disabled). This is the one call
// the pipeline stages make.
func StartSpan(ctx context.Context, name string) *Span {
	switch v := ctx.Value(ctxKey{}).(type) {
	case *Span:
		return v.StartChild(name)
	case *Trace:
		return v.Start(name)
	}
	return nil
}

// TraceFrom returns the trace the context carries (directly or via its
// current span), or nil. Allocation-free on the disabled path.
func TraceFrom(ctx context.Context) *Trace {
	switch v := ctx.Value(ctxKey{}).(type) {
	case *Span:
		return v.tr
	case *Trace:
		return v
	}
	return nil
}

// RequestIDFrom returns the request ID of the trace the context
// carries, or "" when tracing is disabled. Allocation-free either way,
// so hot paths can call it unconditionally (exemplar recording does).
func RequestIDFrom(ctx context.Context) string {
	return TraceFrom(ctx).RequestID()
}

// NewRequestID returns a fresh 16-hex-character request ID from
// crypto/rand, for correlating serving traffic across logs, headers and
// traces.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively unreachable; degrade to a
		// fixed ID rather than panicking in a request path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}
