package industrial

import (
	"testing"

	"tdmagic/internal/diagram"
	"tdmagic/internal/spo"
)

func TestCorpusStatisticsMatchPaper(t *testing.T) {
	samples, err := Corpus(1)
	if err != nil {
		t.Fatal(err)
	}
	st := ComputeStats(samples)
	if st.TDs != 30 {
		t.Fatalf("TDs = %d, want 30", st.TDs)
	}
	// Paper Sec. VI.1: 6 / 19 / 5 diagrams with 1 / 2 / 3 signals.
	if st.SignalHist[1] != 6 || st.SignalHist[2] != 19 || st.SignalHist[3] != 5 {
		t.Errorf("signal histogram = %v, want 6/19/5", st.SignalHist)
	}
	if st.Signals != 59 {
		t.Errorf("signals = %d, want 59", st.Signals)
	}
	// 14 / 38 / 4 / 3 signals with 1 / 2 / 3 / 4 edges.
	if st.EdgeHist[1] != 14 || st.EdgeHist[2] != 38 || st.EdgeHist[3] != 4 || st.EdgeHist[4] != 3 {
		t.Errorf("edge histogram = %v, want 14/38/4/3", st.EdgeHist)
	}
	if st.MeanW < 800 || st.MeanW > 1020 || st.MeanH < 480 || st.MeanH > 640 {
		t.Errorf("sizes %.0fx%.0f out of expected range", st.MeanW, st.MeanH)
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a, err := Corpus(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Corpus(7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Edges) != len(b[i].Edges) {
			t.Fatalf("TD %d structure differs", i)
		}
		for j := range a[i].Image.Pix {
			if a[i].Image.Pix[j] != b[i].Image.Pix[j] {
				t.Fatalf("TD %d pixels differ", i)
			}
		}
	}
	c, err := Corpus(8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if len(a[i].Image.Pix) != len(c[i].Image.Pix) {
			same = false
			break
		}
		for j := range a[i].Image.Pix {
			if a[i].Image.Pix[j] != c[i].Image.Pix[j] {
				same = false
				break
			}
		}
		if !same {
			break
		}
	}
	if same {
		t.Error("different seeds produced identical corpora")
	}
}

func TestCorpusGroundTruthValid(t *testing.T) {
	samples, err := Corpus(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if err := s.Truth.Validate(); err != nil {
			t.Errorf("%s: invalid SPO: %v", s.Name, err)
		}
		if len(s.Arrows) == 0 {
			t.Errorf("%s: no timing constraints", s.Name)
		}
		if len(s.Arrows) != len(s.Truth.Constraints) {
			t.Errorf("%s: %d arrows vs %d constraints", s.Name, len(s.Arrows), len(s.Truth.Constraints))
		}
		for _, a := range s.Arrows {
			if a.X0 >= a.X1 {
				t.Errorf("%s: arrow not left-to-right: %+v", s.Name, a)
			}
		}
		// Events separated as required.
		if !separated(s, 8) {
			t.Errorf("%s: event columns too close", s.Name)
		}
	}
}

func TestCorpusCornerCasesPresent(t *testing.T) {
	samples, err := Corpus(5)
	if err != nil {
		t.Fatal(err)
	}
	thick, dense, outward := false, false, false
	for i, sp := range specs {
		if sp.thickSteps {
			thick = thick || len(samples[i].Edges) > 0
		}
		if sp.denseThresh {
			// Dense-threshold TDs must have more H-lines than events.
			events := len(samples[i].VLines)
			if len(samples[i].HLines) > events {
				dense = true
			}
		}
		if sp.outward {
			outward = true
		}
	}
	if !thick || !dense || !outward {
		t.Errorf("corner cases missing: thick=%v dense=%v outward=%v", thick, dense, outward)
	}
}

func TestCorpusEdgeTypeVariety(t *testing.T) {
	samples, err := Corpus(11)
	if err != nil {
		t.Fatal(err)
	}
	types := map[spo.EdgeType]int{}
	for _, s := range samples {
		for _, e := range s.Edges {
			types[e.Type]++
		}
	}
	for et := spo.RiseStep; et <= spo.Double; et++ {
		if types[et] == 0 {
			t.Errorf("edge type %v absent from corpus", et)
		}
	}
	total := 0
	for _, n := range types {
		total += n
	}
	if total != 114 { // sum over the spec table's edge counts
		t.Errorf("total edges = %d, want 114", total)
	}
}

func TestArrowRows(t *testing.T) {
	if arrowRows(0) != nil {
		t.Error("0 rows should be nil")
	}
	if r := arrowRows(1); len(r) != 1 || r[0] != 0.45 {
		t.Errorf("1 row = %v", r)
	}
	r := arrowRows(4)
	for i := 1; i < len(r); i++ {
		if r[i] <= r[i-1] {
			t.Error("rows not increasing")
		}
	}
	if r[0] < 0 || r[len(r)-1] > 1 {
		t.Error("rows out of band")
	}
}

func TestEventX(t *testing.T) {
	rise := diagram.Edge{Type: spo.RiseRamp, X0: 0, X1: 1, Threshold: 0.9}
	if x := eventX(rise); x != 0.9 {
		t.Errorf("rise eventX = %v", x)
	}
	fall := diagram.Edge{Type: spo.FallRamp, X0: 0, X1: 1, Threshold: 0.1}
	if x := eventX(fall); x != 0.9 {
		t.Errorf("fall eventX = %v", x)
	}
	step := diagram.Edge{Type: spo.RiseStep, X0: 0.4, X1: 0.6}
	if x := eventX(step); x != 0.5 {
		t.Errorf("step eventX = %v", x)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	st := ComputeStats(nil)
	if st.TDs != 0 || st.MeanW != 0 {
		t.Error("empty stats wrong")
	}
}

func TestSqrt(t *testing.T) {
	if sqrt(-1) != 0 || sqrt(0) != 0 {
		t.Error("nonpositive sqrt")
	}
	if v := sqrt(16); v < 3.999 || v > 4.001 {
		t.Errorf("sqrt(16) = %v", v)
	}
}
