// Package industrial generates the 30-picture extrapolation corpus that
// stands in for the paper's industrial timing diagrams (29 from
// STMicroelectronics / Infineon datasheets plus the hand-drawn Fig. 1).
//
// The corpus reproduces the statistics the paper reports in Sec. VI.1 —
// 6/19/5 diagrams with 1/2/3 signals, and 59 signals of which 14/38/4/3
// carry 1/2/3/4 edges — and deliberately leaves the synthetic training
// distribution in the ways Sec. VI.3 names as error sources: solid vertical
// annotation lines next to thick step edges (Example 3), dense threshold
// annotations (Fig. 7), outward arrows, subscript-heavy timing labels,
// varied stroke widths and text scales, and scanner noise. Extrapolation
// error in the evaluation therefore emerges from genuinely harder inputs,
// not injected randomness.
package industrial

import (
	"fmt"
	"math/rand"

	"tdmagic/internal/dataset"
	"tdmagic/internal/diagram"
	"tdmagic/internal/spo"
)

// tdSpec describes one corpus entry's structure.
type tdSpec struct {
	edges []int // per-signal edge counts
	// corner-case switches
	thickSteps  bool // thick step edges + solid vlines (Example 3)
	denseThresh bool // extra threshold lines (Fig. 7)
	outward     bool // outward arrows on the narrowest span
	noisy       bool // scanner specks
	bigText     bool // text scale 3
	arrows      int  // number of timing constraints to draw
}

// specs is the fixed 30-entry corpus plan. Signal-count histogram: 6 / 19 /
// 5 diagrams with 1 / 2 / 3 signals; edge-count histogram over the 59
// signals: 14 / 38 / 4 / 3 with 1 / 2 / 3 / 4 edges.
var specs = []tdSpec{
	// Six one-signal diagrams.
	{edges: []int{2}, arrows: 1},
	{edges: []int{2}, arrows: 1, bigText: true},
	{edges: []int{3}, arrows: 2},
	{edges: []int{4}, arrows: 3},              // Fig. 1-style double pulse
	{edges: []int{4}, arrows: 3, noisy: true}, // Fig. 1 with scan noise
	{edges: []int{2}, arrows: 1, outward: true},
	// Five three-signal diagrams.
	{edges: []int{2, 1, 2}, arrows: 3},
	{edges: []int{1, 2, 1}, arrows: 2, thickSteps: true},
	{edges: []int{2, 3, 1}, arrows: 4, denseThresh: true},
	{edges: []int{1, 2, 2}, arrows: 3},
	{edges: []int{4, 1, 2}, arrows: 4},
	// Nineteen two-signal diagrams.
	{edges: []int{2, 1}, arrows: 2},
	{edges: []int{2, 1}, arrows: 2, noisy: true},
	{edges: []int{2, 1}, arrows: 1},
	{edges: []int{2, 1}, arrows: 2, outward: true},
	{edges: []int{2, 1}, arrows: 2},
	{edges: []int{2, 1}, arrows: 1, bigText: true},
	{edges: []int{2, 1}, arrows: 2},
	{edges: []int{2, 1}, arrows: 2, thickSteps: true},
	{edges: []int{3, 2}, arrows: 3},
	{edges: []int{3, 2}, arrows: 4, denseThresh: true},
	{edges: []int{2, 2}, arrows: 2},
	{edges: []int{2, 2}, arrows: 2},
	{edges: []int{2, 2}, arrows: 3, noisy: true},
	{edges: []int{2, 2}, arrows: 2, thickSteps: true},
	{edges: []int{2, 2}, arrows: 2},
	{edges: []int{2, 2}, arrows: 3},
	{edges: []int{2, 2}, arrows: 2, bigText: true},
	{edges: []int{2, 2}, arrows: 2, denseThresh: true},
	{edges: []int{2, 2}, arrows: 3},
}

// Industrial vocabulary: overlapping with, but not identical to, the
// synthetic pools — datasheets use house styles.
var (
	namePool = []string{
		"V_{INA}", "V_{OUTA}", "SI", "SCK", "STCP", "SHCP", "MR", "Q_{7S}",
		"CLK", "RESET", "V_{IO}", "TXD", "RXD", "INH", "OUT", "IN",
		"CS", "EN", "V_{BAT}", "WAKE", "NRES", "D_{IN}", "D_{OUT}",
	}
	delayPool = []string{
		"t_{D(on)}", "t_{D(off)}", "t_{s}", "t_{h}", "t_{W}", "t_{r}",
		"t_{f}", "t_{PLH}", "t_{PHL}", "t_{su(D)}", "t_{W(RST)}", "6ns",
		"t_{REC}", "t_{1}", "t_{2}", "t_{3}", "t_{startup}", "t_{to(SIL)}",
	}
)

// Corpus generates the deterministic 30-diagram corpus for a seed.
func Corpus(seed int64) ([]*dataset.Sample, error) {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*dataset.Sample, 0, len(specs))
	for i, sp := range specs {
		s, err := buildTD(rng, i, sp)
		if err != nil {
			return nil, fmt.Errorf("industrial: TD %d: %w", i+1, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// buildTD renders one corpus entry, retrying geometry until event columns
// are separated.
func buildTD(rng *rand.Rand, idx int, sp tdSpec) (*dataset.Sample, error) {
	var last *dataset.Sample
	var err error
	for attempt := 0; attempt < 30; attempt++ {
		d := buildDiagram(rng, idx, sp)
		last, err = d.Render()
		if err != nil {
			continue // layout collision: re-draw
		}
		if separated(last, 8) {
			return last, nil
		}
	}
	if err != nil {
		return nil, err
	}
	return last, nil
}

func separated(s *dataset.Sample, minDX int) bool {
	for i := 0; i < len(s.VLines); i++ {
		for j := i + 1; j < len(s.VLines); j++ {
			dx := s.VLines[i].X - s.VLines[j].X
			if dx < 0 {
				dx = -dx
			}
			if dx < minDX {
				return false
			}
		}
	}
	return true
}

// buildDiagram assembles the abstract diagram for a spec.
func buildDiagram(rng *rand.Rand, idx int, sp tdSpec) *diagram.Diagram {
	st := diagram.DefaultStyle()
	st.Width = 820 + rng.Intn(180)
	st.Height = 500 + rng.Intn(120)
	st.ShowAxes = rng.Float64() < 0.5
	st.Stroke = 2 + rng.Intn(2)
	if sp.bigText {
		st.TextScale = 3
		st.LeftMargin = 150
	}
	if sp.noisy {
		st.NoiseDots = 40 + rng.Intn(60)
		st.NoiseSeed = rng.Int63()
	}
	if sp.thickSteps {
		st.SolidVLines = true
		st.LineStroke = 2
	}
	st.AnnotFrac = 0.14 + 0.08*float64(sp.arrows)
	if st.AnnotFrac > 0.46 {
		st.AnnotFrac = 0.46
	}

	d := &diagram.Diagram{
		Name:  fmt.Sprintf("ind-%02d", idx+1),
		Style: st,
	}

	names := pick(rng, namePool, len(sp.edges))
	for si, n := range sp.edges {
		kind := pickKind(rng, n)
		sig := buildSignal(rng, names[si], kind, n, sp)
		d.Signals = append(d.Signals, sig)
	}
	if rng.Float64() < 0.4 {
		si := rng.Intn(len(d.Signals))
		d.Signals[si].BoundHigh = "V_{CC}"
		d.Signals[si].BoundLow = "GND"
	}

	addArrows(rng, d, sp)
	return d
}

// pickKind draws a signal kind; single-edge signals lean digital (a lone
// reset or enable transition), longer ones lean analog.
func pickKind(rng *rand.Rand, edges int) diagram.SignalKind {
	r := rng.Float64()
	switch {
	case r < 0.55:
		return diagram.Ramp
	case r < 0.85:
		return diagram.Digital
	default:
		if edges > 3 {
			return diagram.Digital // long bus pulses drawn digital
		}
		return diagram.DoubleRamp
	}
}

// buildSignal lays out n alternating edges across the plot width.
func buildSignal(rng *rand.Rand, name string, kind diagram.SignalKind, n int, sp tdSpec) diagram.Signal {
	s := diagram.Signal{Name: name, Kind: kind}
	lo := 0.08 + 0.10*rng.Float64()
	hi := 0.78 + 0.16*rng.Float64()
	riseFirst := rng.Float64() < 0.5
	// Slot layout with jitter.
	left, right := 0.05, 0.95
	slot := (right - left) / float64(n)
	for i := 0; i < n; i++ {
		isRise := riseFirst == (i%2 == 0)
		var w float64
		if kind == diagram.Digital {
			w = 0.012
		} else {
			w = slot * (0.25 + 0.35*rng.Float64())
		}
		x0 := left + slot*float64(i) + slot*0.15*rng.Float64()
		x1 := x0 + w
		if x1 > right {
			x1 = right
		}
		var et spo.EdgeType
		switch kind {
		case diagram.Digital:
			if isRise {
				et = spo.RiseStep
			} else {
				et = spo.FallStep
			}
		case diagram.Ramp:
			if isRise {
				et = spo.RiseRamp
			} else {
				et = spo.FallRamp
			}
		default:
			et = spo.Double
		}
		e := diagram.Edge{Type: et, X0: x0, X1: x1, YLow: lo, YHigh: hi}
		switch et {
		case spo.RiseRamp:
			e.Threshold, e.ThresholdText = pickThreshold(rng, true)
		case spo.FallRamp:
			e.Threshold, e.ThresholdText = pickThreshold(rng, false)
		case spo.Double:
			e.Threshold, e.ThresholdText = 0.5, "50%"
		}
		if sp.thickSteps && et.IsStep() {
			e.Thick = true
		}
		if sp.denseThresh && !et.IsStep() && rng.Float64() < 0.6 {
			e.ExtraThresholds = []diagram.ThresholdMark{
				{Level: 0.28 + 0.1*rng.Float64(), Text: "1V"},
				{Level: 0.62 + 0.1*rng.Float64(), Text: "2V"},
			}
		}
		s.Edges = append(s.Edges, e)
	}
	return s
}

func pickThreshold(rng *rand.Rand, rise bool) (float64, string) {
	riseOpts := []struct {
		f float64
		t string
	}{{0.9, "90%"}, {0.8, "80%"}, {0.5, "50%"}, {0.7, "70%"}}
	fallOpts := []struct {
		f float64
		t string
	}{{0.1, "10%"}, {0.2, "20%"}, {0.5, "50%"}, {0.3, "30%"}}
	if rise {
		o := riseOpts[rng.Intn(len(riseOpts))]
		return o.f, o.t
	}
	o := fallOpts[rng.Intn(len(fallOpts))]
	return o.f, o.t
}

// eventX estimates the abstract x of an edge's event.
func eventX(e diagram.Edge) float64 {
	switch e.Type {
	case spo.RiseRamp:
		return e.X0 + e.Threshold*(e.X1-e.X0)
	case spo.FallRamp:
		return e.X0 + (1-e.Threshold)*(e.X1-e.X0)
	default:
		return (e.X0 + e.X1) / 2
	}
}

// addArrows selects sp.arrows timing constraints among the diagram's
// events, preferring inter-signal pairs, all pointing left to right.
func addArrows(rng *rand.Rand, d *diagram.Diagram, sp tdSpec) {
	type ev struct {
		ref diagram.EventRef
		x   float64
	}
	var events []ev
	for si, s := range d.Signals {
		for ei, e := range s.Edges {
			events = append(events, ev{ref: diagram.EventRef{Signal: si, Edge: ei}, x: eventX(e)})
		}
	}
	type pair struct{ a, b int }
	var inter, intra []pair
	for i := range events {
		for j := range events {
			if events[j].x-events[i].x < 0.04 {
				continue
			}
			p := pair{i, j}
			if events[i].ref.Signal != events[j].ref.Signal {
				inter = append(inter, p)
			} else {
				intra = append(intra, p)
			}
		}
	}
	rng.Shuffle(len(inter), func(i, j int) { inter[i], inter[j] = inter[j], inter[i] })
	rng.Shuffle(len(intra), func(i, j int) { intra[i], intra[j] = intra[j], intra[i] })
	candidates := append(inter, intra...)

	delays := pick(rng, delayPool, sp.arrows)
	rows := arrowRows(sp.arrows)
	used := map[diagram.EventRef]int{} // events already targeted
	n := 0
	outwardLeft := sp.outward
	for _, p := range candidates {
		if n >= sp.arrows {
			break
		}
		// Keep the constraint graph simple: at most two arrows per event
		// and no duplicate pairs.
		if used[events[p.a].ref] >= 2 || used[events[p.b].ref] >= 2 {
			continue
		}
		dup := false
		for _, a := range d.Arrows {
			if a.From == events[p.a].ref && a.To == events[p.b].ref {
				dup = true
			}
		}
		if dup {
			continue
		}
		arrow := diagram.Arrow{
			From:  events[p.a].ref,
			To:    events[p.b].ref,
			Label: delays[n],
			Y:     rows[n],
		}
		if outwardLeft && events[p.b].x-events[p.a].x < 0.16 {
			arrow.Outward = true
			outwardLeft = false
		}
		d.Arrows = append(d.Arrows, arrow)
		used[events[p.a].ref]++
		used[events[p.b].ref]++
		d.Signals[arrow.From.Signal].Edges[arrow.From.Edge].HasEvent = true
		d.Signals[arrow.To.Signal].Edges[arrow.To.Edge].HasEvent = true
		n++
	}
}

// arrowRows spreads n arrow rows over the annotation band.
func arrowRows(n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{0.45}
	}
	rows := make([]float64, n)
	for i := range rows {
		rows[i] = 0.08 + 0.84*float64(i)/float64(n-1)
	}
	return rows
}

// pick draws n distinct entries from pool.
func pick(rng *rand.Rand, pool []string, n int) []string {
	perm := rng.Perm(len(pool))
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = pool[perm[i%len(pool)]]
	}
	return out
}

// Stats summarises a corpus the way the paper's Sec. VI.1 does.
type Stats struct {
	TDs          int
	SignalHist   map[int]int // #signals per TD -> count
	EdgeHist     map[int]int // #edges per signal -> count
	Signals      int
	Constraints  int
	MeanW, MeanH float64
	StdW, StdH   float64
}

// ComputeStats tallies corpus statistics.
func ComputeStats(samples []*dataset.Sample) Stats {
	st := Stats{
		TDs:        len(samples),
		SignalHist: map[int]int{},
		EdgeHist:   map[int]int{},
	}
	var sw, sh, sw2, sh2 float64
	for _, s := range samples {
		perSignal := map[int]int{}
		for _, e := range s.Edges {
			perSignal[e.Signal]++
		}
		st.SignalHist[len(perSignal)]++
		st.Signals += len(perSignal)
		for _, n := range perSignal {
			st.EdgeHist[n]++
		}
		st.Constraints += len(s.Arrows)
		w, h := float64(s.Image.W), float64(s.Image.H)
		sw += w
		sh += h
		sw2 += w * w
		sh2 += h * h
	}
	if st.TDs > 0 {
		n := float64(st.TDs)
		st.MeanW, st.MeanH = sw/n, sh/n
		st.StdW = sqrt(sw2/n - st.MeanW*st.MeanW)
		st.StdH = sqrt(sh2/n - st.MeanH*st.MeanH)
	}
	return st
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 40; i++ {
		x = (x + v/x) / 2
	}
	return x
}
