package tdl

import (
	"strings"
	"testing"

	"tdmagic/internal/diagram"
	"tdmagic/internal/spo"
)

const fig4LeftTD = `
# paper Fig. 4 (left)
name vnh5050a
width 900
height 540
signal V_{INA} digital
  rise 0.10 0.16 *
  fall 0.55 0.61 *
signal V_{OUTA} ramp bounds=V_{CC}/GND
  rise 0.20 0.38 @90% *
  fall 0.65 0.85 @10% *
arrow V_{INA}.1 -> V_{OUTA}.1 t_{D(on)} row=0.3
arrow V_{INA}.2 -> V_{OUTA}.2 t_{D(off)} row=0.7
`

func TestParseFig4Left(t *testing.T) {
	d, err := Parse(fig4LeftTD)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "vnh5050a" {
		t.Errorf("name = %q", d.Name)
	}
	if len(d.Signals) != 2 || len(d.Arrows) != 2 {
		t.Fatalf("parsed %d signals, %d arrows", len(d.Signals), len(d.Arrows))
	}
	ina := d.Signals[0]
	if ina.Kind != diagram.Digital || len(ina.Edges) != 2 || ina.Edges[0].Type != spo.RiseStep {
		t.Errorf("V_INA parsed wrong: %+v", ina)
	}
	outa := d.Signals[1]
	if outa.Kind != diagram.Ramp || outa.BoundHigh != "V_{CC}" || outa.BoundLow != "GND" {
		t.Errorf("V_OUTA parsed wrong: %+v", outa)
	}
	if outa.Edges[0].Threshold != 0.9 || outa.Edges[0].ThresholdText != "90%" {
		t.Errorf("threshold parsed wrong: %+v", outa.Edges[0])
	}
	if !outa.Edges[0].HasEvent || !ina.Edges[1].HasEvent {
		t.Error("events not marked")
	}
	if d.Arrows[0].Label != "t_{D(on)}" || d.Arrows[0].Y != 0.3 {
		t.Errorf("arrow parsed wrong: %+v", d.Arrows[0])
	}
}

func TestParsedDiagramRendersToExample1(t *testing.T) {
	d, err := Parse(fig4LeftTD)
	if err != nil {
		t.Fatal(err)
	}
	sample, err := d.Render()
	if err != nil {
		t.Fatal(err)
	}
	want := "n1 = (V_{INA}, 1, riseStep, None)\n" +
		"n2 = (V_{OUTA}, 1, riseRamp, 90%)\n" +
		"n3 = (V_{INA}, 2, fallStep, None)\n" +
		"n4 = (V_{OUTA}, 2, fallRamp, 10%)\n" +
		"e1 = (n1, t_{D(on)}, n2)\n" +
		"e2 = (n3, t_{D(off)}, n4)\n"
	if got := sample.Truth.SpecText(); got != want {
		t.Errorf("ground truth:\n%s\nwant:\n%s", got, want)
	}
}

func TestParseOptions(t *testing.T) {
	d, err := Parse(`
width 820
height 600
axes
noise 25 9
signal A ramp low=0.2 high=0.8
  rise 0.2 0.4 @0.42:Vth * thick
signal B double
  double 0.5 0.6 *
arrow A.1 -> B.1 6ns row=0.4 outward
`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Style.Width != 820 || d.Style.Height != 600 || !d.Style.ShowAxes {
		t.Error("style directives wrong")
	}
	if d.Style.NoiseDots != 25 || d.Style.NoiseSeed != 9 {
		t.Error("noise directive wrong")
	}
	e := d.Signals[0].Edges[0]
	if e.YLow != 0.2 || e.YHigh != 0.8 || e.Threshold != 0.42 || e.ThresholdText != "Vth" || !e.Thick {
		t.Errorf("edge options wrong: %+v", e)
	}
	if d.Signals[1].Edges[0].Type != spo.Double {
		t.Error("double edge wrong")
	}
	if !d.Arrows[0].Outward {
		t.Error("outward not set")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, text string }{
		{"unknown directive", "wobble 3"},
		{"bad width", "width x"},
		{"negative width", "width -5"},
		{"name arity", "name a b"},
		{"noise arity", "noise 3"},
		{"noise args", "noise a b"},
		{"signal arity", "signal A"},
		{"signal kind", "signal A analogish"},
		{"signal option", "signal A ramp sparkle=1"},
		{"signal option form", "signal A ramp sparkle"},
		{"bad level", "signal A ramp low=x"},
		{"bounds form", "signal A ramp bounds=VCC"},
		{"edge before signal", "rise 0.1 0.2"},
		{"edge arity", "signal A ramp\nrise 0.1"},
		{"edge extent", "signal A ramp\nrise a b"},
		{"edge option", "signal A ramp\nrise 0.1 0.2 shiny"},
		{"double on ramp", "signal A ramp\ndouble 0.1 0.2"},
		{"bad threshold pct", "signal A ramp\nrise 0.1 0.2 @x%"},
		{"bad threshold form", "signal A ramp\nrise 0.1 0.2 @zz"},
		{"bad threshold level", "signal A ramp\nrise 0.1 0.2 @1.5:V"},
		{"arrow arity", "arrow A.1 -> B.1"},
		{"arrow arrow", "arrow A.1 to B.1 t"},
		{"arrow unknown signal", "signal A ramp\nrise 0.1 0.2\narrow A.1 -> B.1 t"},
		{"arrow bad index", "signal A ramp\nrise 0.1 0.2\narrow A.2 -> A.1 t"},
		{"arrow index form", "signal A ramp\nrise 0.1 0.2\narrow A.x -> A.1 t"},
		{"arrow ref form", "signal A ramp\nrise 0.1 0.2\narrow A -> A t"},
		{"arrow bad row", "signal A ramp\nrise 0.1 0.2\nrise 0.3 0.4\narrow A.1 -> A.2 t row=2"},
		{"arrow option", "signal A ramp\nrise 0.1 0.2\nrise 0.3 0.4\narrow A.1 -> A.2 t glitter"},
		{"invalid geometry", "signal A ramp\nrise 0.5 0.2"},
	}
	for _, c := range cases {
		if _, err := Parse(c.text); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestParseComments(t *testing.T) {
	d, err := Parse("# nothing but comments\n\n   # indented\n")
	if err == nil {
		// Empty diagram fails Validate (no signals); accept either error
		// form but never a silent success with signals.
		if len(d.Signals) != 0 {
			t.Error("comments produced signals")
		}
	}
}

func TestParseErrorMentionsLine(t *testing.T) {
	_, err := Parse("width 900\nwobble\n")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error = %v, want line number", err)
	}
}
