// Package tdl implements a compact, line-oriented text language for
// authoring timing diagrams, in the spirit of WaveDrom/wavedrom-style
// waveform descriptions. A .td file parses into a diagram.Diagram, which
// renders into the same labelled pictures the rest of the system consumes —
// so a hand-written description can be rasterised, translated back by the
// pipeline, and the two specifications compared.
//
// Syntax (one directive per line, '#' comments):
//
//	width 900
//	height 540
//	axes
//	noise 40 7
//	signal V_{INA} digital
//	  rise 0.10 0.16 *
//	  fall 0.55 0.61 *
//	signal V_{OUTA} ramp low=0.1 high=0.9 bounds=V_{CC}/GND
//	  rise 0.20 0.38 @90% *
//	  fall 0.65 0.85 @10% *
//	arrow V_{INA}.1 -> V_{OUTA}.1 t_{D(on)} row=0.3
//	arrow V_{INA}.2 -> V_{OUTA}.2 t_{D(off)} row=0.7 outward
//
// Edge directives belong to the most recent signal: rise/fall/double with
// the horizontal extent as fractions of the plot width, an optional
// @-threshold ("@90%" or "@0.42:Vth" for a custom level/text pair), '*' to
// mark the edge as carrying an event, and 'thick' for the thick-stroke
// corner case. Arrows reference events as SIGNAL.EDGEINDEX (1-based).
package tdl

import (
	"bufio"
	"fmt"
	"math"
	"strconv"
	"strings"

	"tdmagic/internal/diagram"
	"tdmagic/internal/spo"
)

// parseFinite is ParseFloat restricted to finite values: "NaN"/"Inf"
// would sail through the diagram's range checks (every comparison against
// NaN is false) and corrupt the layout downstream.
func parseFinite(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite value %q", s)
	}
	return v, nil
}

// parser carries per-parse state: the diagram under construction, the
// index of the current signal, and its default levels.
type parser struct {
	d      *diagram.Diagram
	cur    int // index into d.Signals, -1 before the first signal
	lo, hi float64
}

// Parse reads a .td description into a diagram.
func Parse(text string) (*diagram.Diagram, error) {
	p := &parser{
		d:   &diagram.Diagram{Style: diagram.DefaultStyle(), Name: "tdl"},
		cur: -1,
	}
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.Index(line, "#"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if err := p.directive(strings.Fields(line)); err != nil {
			return nil, fmt.Errorf("tdl: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := p.d.Validate(); err != nil {
		return nil, fmt.Errorf("tdl: %w", err)
	}
	return p.d, nil
}

// directive dispatches one parsed line.
func (p *parser) directive(f []string) error {
	d := p.d
	switch f[0] {
	case "name":
		if len(f) != 2 {
			return fmt.Errorf("name needs one argument")
		}
		d.Name = f[1]
		return nil
	case "width", "height":
		if len(f) != 2 {
			return fmt.Errorf("%s needs one integer", f[0])
		}
		v, err := strconv.Atoi(f[1])
		if err != nil || v <= 0 {
			return fmt.Errorf("bad %s %q", f[0], f[1])
		}
		if f[0] == "width" {
			d.Style.Width = v
		} else {
			d.Style.Height = v
		}
		return nil
	case "axes":
		d.Style.ShowAxes = true
		return nil
	case "noise":
		if len(f) != 3 {
			return fmt.Errorf("noise needs dots and seed")
		}
		dots, err1 := strconv.Atoi(f[1])
		seed, err2 := strconv.ParseInt(f[2], 10, 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad noise arguments")
		}
		d.Style.NoiseDots, d.Style.NoiseSeed = dots, seed
		return nil
	case "signal":
		return p.signalDirective(f)
	case "rise", "fall", "double":
		return p.edgeDirective(f)
	case "arrow":
		return arrowDirective(d, f)
	default:
		return fmt.Errorf("unknown directive %q", f[0])
	}
}

// signalDirective parses `signal NAME KIND [low=F] [high=F] [bounds=H/L]`.
func (p *parser) signalDirective(f []string) error {
	if len(f) < 3 {
		return fmt.Errorf("signal needs a name and a kind")
	}
	s := diagram.Signal{Name: f[1]}
	switch f[2] {
	case "digital":
		s.Kind = diagram.Digital
	case "ramp":
		s.Kind = diagram.Ramp
	case "double":
		s.Kind = diagram.DoubleRamp
	default:
		return fmt.Errorf("unknown signal kind %q", f[2])
	}
	p.lo, p.hi = 0.1, 0.9
	for _, opt := range f[3:] {
		k, v, ok := strings.Cut(opt, "=")
		if !ok {
			return fmt.Errorf("bad signal option %q", opt)
		}
		switch k {
		case "bounds":
			hi, lo, ok := strings.Cut(v, "/")
			if !ok {
				return fmt.Errorf("bounds needs HIGH/LOW")
			}
			s.BoundHigh, s.BoundLow = hi, lo
		case "low", "high":
			fv, err := parseFinite(v)
			if err != nil {
				return fmt.Errorf("bad %s %q", k, v)
			}
			if k == "low" {
				p.lo = fv
			} else {
				p.hi = fv
			}
		default:
			return fmt.Errorf("unknown signal option %q", k)
		}
	}
	p.d.Signals = append(p.d.Signals, s)
	p.cur = len(p.d.Signals) - 1
	return nil
}

// edgeDirective parses `rise|fall|double X0 X1 [@THRESH] [*] [thick]`.
func (p *parser) edgeDirective(f []string) error {
	if p.cur < 0 {
		return fmt.Errorf("%s before any signal", f[0])
	}
	cur := &p.d.Signals[p.cur]
	if len(f) < 3 {
		return fmt.Errorf("%s needs X0 and X1", f[0])
	}
	x0, err1 := parseFinite(f[1])
	x1, err2 := parseFinite(f[2])
	if err1 != nil || err2 != nil {
		return fmt.Errorf("bad extent %q %q", f[1], f[2])
	}
	e := diagram.Edge{X0: x0, X1: x1, YLow: p.lo, YHigh: p.hi}
	switch f[0] {
	case "rise":
		if cur.Kind == diagram.Digital {
			e.Type = spo.RiseStep
		} else {
			e.Type = spo.RiseRamp
		}
	case "fall":
		if cur.Kind == diagram.Digital {
			e.Type = spo.FallStep
		} else {
			e.Type = spo.FallRamp
		}
	case "double":
		if cur.Kind != diagram.DoubleRamp {
			return fmt.Errorf("double edge on non-double signal")
		}
		e.Type = spo.Double
		e.Threshold, e.ThresholdText = 0.5, "50%"
	}
	for _, opt := range f[3:] {
		switch {
		case opt == "*":
			e.HasEvent = true
		case opt == "thick":
			e.Thick = true
		case strings.HasPrefix(opt, "@"):
			frac, text, err := parseThreshold(opt[1:])
			if err != nil {
				return err
			}
			e.Threshold, e.ThresholdText = frac, text
		default:
			return fmt.Errorf("unknown edge option %q", opt)
		}
	}
	cur.Edges = append(cur.Edges, e)
	return nil
}

// parseThreshold handles "90%" and "0.42:Vth".
func parseThreshold(s string) (float64, string, error) {
	if strings.HasSuffix(s, "%") {
		v, err := strconv.Atoi(strings.TrimSuffix(s, "%"))
		if err != nil || v < 0 || v > 100 {
			return 0, "", fmt.Errorf("bad threshold %q", s)
		}
		return float64(v) / 100, s, nil
	}
	frac, text, ok := strings.Cut(s, ":")
	if !ok {
		return 0, "", fmt.Errorf("threshold %q needs %% or level:text", s)
	}
	v, err := parseFinite(frac)
	if err != nil || v < 0 || v > 1 {
		return 0, "", fmt.Errorf("bad threshold level %q", frac)
	}
	return v, text, nil
}

// arrowDirective parses `arrow SIG.I -> SIG.J LABEL [row=F] [outward]`.
func arrowDirective(d *diagram.Diagram, f []string) error {
	if len(f) < 5 || f[2] != "->" {
		return fmt.Errorf("arrow needs SRC -> DST LABEL")
	}
	from, err := resolveEvent(d, f[1])
	if err != nil {
		return err
	}
	to, err := resolveEvent(d, f[3])
	if err != nil {
		return err
	}
	a := diagram.Arrow{From: from, To: to, Label: f[4], Y: 0.5}
	for _, opt := range f[5:] {
		switch {
		case opt == "outward":
			a.Outward = true
		case strings.HasPrefix(opt, "row="):
			v, err := parseFinite(opt[4:])
			if err != nil || v < 0 || v > 1 {
				return fmt.Errorf("bad row %q", opt)
			}
			a.Y = v
		default:
			return fmt.Errorf("unknown arrow option %q", opt)
		}
	}
	d.Signals[from.Signal].Edges[from.Edge].HasEvent = true
	d.Signals[to.Signal].Edges[to.Edge].HasEvent = true
	d.Arrows = append(d.Arrows, a)
	return nil
}

// resolveEvent parses "SIGNAL.INDEX" (1-based edge index).
func resolveEvent(d *diagram.Diagram, ref string) (diagram.EventRef, error) {
	dot := strings.LastIndex(ref, ".")
	if dot < 0 {
		return diagram.EventRef{}, fmt.Errorf("event reference %q needs SIGNAL.INDEX", ref)
	}
	name := ref[:dot]
	idx, err := strconv.Atoi(ref[dot+1:])
	if err != nil || idx < 1 {
		return diagram.EventRef{}, fmt.Errorf("bad edge index in %q", ref)
	}
	for si := range d.Signals {
		if d.Signals[si].Name == name {
			if idx > len(d.Signals[si].Edges) {
				return diagram.EventRef{}, fmt.Errorf("signal %q has %d edges, reference %q", name, len(d.Signals[si].Edges), ref)
			}
			return diagram.EventRef{Signal: si, Edge: idx - 1}, nil
		}
	}
	return diagram.EventRef{}, fmt.Errorf("unknown signal %q", name)
}
