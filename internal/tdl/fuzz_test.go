package tdl

import (
	"math"
	"testing"
)

// FuzzParse feeds arbitrary documents to the TDL parser. The parser must
// never panic, and every diagram it accepts must validate with finite
// geometry — NaN extents sneaking past range checks corrupt the renderer.
func FuzzParse(f *testing.F) {
	f.Add(fig4LeftTD)
	f.Add("signal a digital\nrise 0.1 0.2 *\n")
	f.Add("width 900\nheight 540\naxes\nnoise 40 7\n")
	f.Add("signal a ramp low=0.1 high=0.9 bounds=V/G\nrise 0.2 0.4 @90% *\n")
	f.Add("signal a digital\nrise 0.1 0.2 *\nfall 0.3 0.4 *\narrow a.1 -> a.2 t row=0.5\n")
	f.Add("signal a ramp low=NaN\n")
	f.Add("signal a digital\nrise NaN 0.5\n")
	f.Add("signal a ramp\nrise 0.2 0.4 @Inf:x\n")
	f.Add("# comment only\n")
	f.Fuzz(func(t *testing.T, doc string) {
		d, err := Parse(doc)
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("accepted diagram fails validation: %v", err)
		}
		for si, s := range d.Signals {
			for ei, e := range s.Edges {
				for _, v := range []float64{e.X0, e.X1, e.YLow, e.YHigh, e.Threshold} {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("signal %d edge %d carries non-finite geometry: %+v", si, ei, e)
					}
				}
			}
		}
		for ai, a := range d.Arrows {
			if math.IsNaN(a.Y) || math.IsInf(a.Y, 0) {
				t.Fatalf("arrow %d carries non-finite row: %+v", ai, a)
			}
		}
	})
}
