// Package font provides a self-contained 5×7 bitmap font and a small rich-
// text layout engine used to annotate generated timing diagrams and as the
// glyph reference for the OCR module.
//
// Timing-diagram labels are heavy on subscripts (t_D(on), V_INA, t_s). Rich
// strings therefore support the markup "_{...}": the bracketed part is
// rendered at a reduced scale, shifted below the baseline, mirroring how
// datasheets typeset such labels. A literal underscore can be written as
// "\\_".
package font

import "tdmagic/internal/geom"

// GlyphW and GlyphH are the pixel dimensions of one unscaled glyph cell
// (excluding inter-glyph spacing).
const (
	GlyphW = 5
	GlyphH = 7
	// AdvanceW is the horizontal advance per glyph: cell width plus one
	// column of spacing.
	AdvanceW = GlyphW + 1
)

// Glyph returns the 5-column bitmap of ch (bit 0 of each byte is the top
// row) and whether the font covers ch. Unsupported runes map to the '?'
// glyph with ok == false.
func Glyph(ch rune) ([GlyphW]byte, bool) {
	if ch == 'µ' {
		ch = 'u'
	}
	if ch < 32 || ch > 126 {
		return glyphs['?'-32], false
	}
	return glyphs[ch-32], true
}

// Supported reports whether ch has a real glyph (not the '?' fallback).
func Supported(ch rune) bool {
	if ch == 'µ' {
		return true
	}
	return ch >= 32 && ch <= 126
}

// SetFunc receives ink pixels during rendering.
type SetFunc func(x, y int)

// DrawGlyph renders ch at scale into set, with the glyph-cell origin at
// (x, y). It returns the horizontal advance in pixels.
func DrawGlyph(set SetFunc, x, y int, ch rune, scale int) int {
	if scale < 1 {
		scale = 1
	}
	g, _ := Glyph(ch)
	for col := 0; col < GlyphW; col++ {
		bits := g[col]
		for row := 0; row < GlyphH; row++ {
			if bits&(1<<uint(row)) == 0 {
				continue
			}
			for dy := 0; dy < scale; dy++ {
				for dx := 0; dx < scale; dx++ {
					set(x+col*scale+dx, y+row*scale+dy)
				}
			}
		}
	}
	return AdvanceW * scale
}

// DrawString renders a plain string at scale with the cell origin at (x, y)
// and returns its bounding box (empty for an empty string).
func DrawString(set SetFunc, x, y int, s string, scale int) geom.Rect {
	if scale < 1 {
		scale = 1
	}
	cx := x
	n := 0
	for _, ch := range s {
		cx += DrawGlyph(set, cx, y, ch, scale)
		n++
	}
	if n == 0 {
		return geom.Rect{X0: x, Y0: y, X1: x - 1, Y1: y - 1}
	}
	return geom.Rect{X0: x, Y0: y, X1: cx - scale - 1, Y1: y + GlyphH*scale - 1}
}

// StringWidth returns the pixel width of a plain string at scale.
func StringWidth(s string, scale int) int {
	if scale < 1 {
		scale = 1
	}
	n := 0
	for range s {
		n++
	}
	if n == 0 {
		return 0
	}
	return n*AdvanceW*scale - scale // trailing spacing column removed
}

// StringHeight returns the pixel height of a plain string at scale.
func StringHeight(scale int) int {
	if scale < 1 {
		scale = 1
	}
	return GlyphH * scale
}

// Span is one run of a rich string: consecutive characters at the same
// subscript level.
type Span struct {
	Text string
	Sub  bool // rendered subscripted when true
}

// ParseRich splits a rich string into spans. The markup "_{...}" opens a
// subscript span (no nesting; an unterminated brace extends to the end).
// "\\_" escapes a literal underscore.
func ParseRich(s string) []Span {
	var spans []Span
	var cur []rune
	flush := func(sub bool) {
		if len(cur) > 0 {
			spans = append(spans, Span{Text: string(cur), Sub: sub})
			cur = cur[:0]
		}
	}
	runes := []rune(s)
	for i := 0; i < len(runes); i++ {
		ch := runes[i]
		switch {
		case ch == '\\' && i+1 < len(runes) && runes[i+1] == '_':
			cur = append(cur, '_')
			i++
		case ch == '_' && i+1 < len(runes) && runes[i+1] == '{':
			flush(false)
			i += 2
			for i < len(runes) && runes[i] != '}' {
				cur = append(cur, runes[i])
				i++
			}
			flush(true)
		default:
			cur = append(cur, ch)
		}
	}
	flush(false)
	return spans
}

// SubScale returns the scale used for subscript spans at a base scale.
func SubScale(scale int) int {
	sub := scale * 2 / 3
	if sub < 1 {
		sub = 1
	}
	return sub
}

// subOffset is the downward baseline shift of subscript spans, in unscaled
// glyph rows of the base scale.
func subOffset(scale int) int { return GlyphH * scale * 2 / 5 }

// MeasureRich returns the width and height of a rich string at scale. The
// measurement mirrors DrawRich's cursor advance exactly, so DrawRich's
// bounding box always fits within the measured extent.
func MeasureRich(s string, scale int) (w, h int) {
	if scale < 1 {
		scale = 1
	}
	h = GlyphH * scale
	cx, maxX := 0, 0
	for _, sp := range ParseRich(s) {
		if sp.Text == "" {
			continue
		}
		if sp.Sub {
			sub := SubScale(scale)
			sw := StringWidth(sp.Text, sub)
			if end := cx + sw; end > maxX {
				maxX = end
			}
			cx += sw + sub
			if bottom := subOffset(scale) + GlyphH*sub; bottom > h {
				h = bottom
			}
		} else {
			sw := StringWidth(sp.Text, scale)
			if end := cx + sw; end > maxX {
				maxX = end
			}
			cx += sw + scale
		}
	}
	return maxX, h
}

// DrawRich renders a rich string with the cell origin at (x, y) and returns
// its bounding box.
func DrawRich(set SetFunc, x, y int, s string, scale int) geom.Rect {
	if scale < 1 {
		scale = 1
	}
	spans := ParseRich(s)
	box := geom.Rect{X0: x, Y0: y, X1: x - 1, Y1: y - 1}
	cx := x
	for _, sp := range spans {
		if sp.Text == "" {
			continue
		}
		if sp.Sub {
			sub := SubScale(scale)
			b := DrawString(set, cx, y+subOffset(scale), sp.Text, sub)
			box = box.Union(b)
			cx = b.X1 + 1 + sub
		} else {
			b := DrawString(set, cx, y, sp.Text, scale)
			box = box.Union(b)
			cx = b.X1 + 1 + scale
		}
	}
	return box
}
