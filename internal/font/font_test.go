package font

import (
	"reflect"
	"testing"

	"tdmagic/internal/geom"
	"tdmagic/internal/imgproc"
)

func renderToBinary(w, h int, draw func(set SetFunc)) *imgproc.Binary {
	b := imgproc.NewBinary(w, h)
	draw(func(x, y int) { b.Set(x, y, true) })
	return b
}

func TestGlyphLookup(t *testing.T) {
	if _, ok := Glyph('A'); !ok {
		t.Error("'A' should be supported")
	}
	if _, ok := Glyph('µ'); !ok {
		t.Error("'µ' should map to 'u'")
	}
	g, ok := Glyph('日')
	if ok {
		t.Error("CJK should not be supported")
	}
	q, _ := Glyph('?')
	if g != q {
		t.Error("unsupported rune should fall back to '?'")
	}
	if !Supported('z') || !Supported(' ') || Supported('日') || Supported('\n') {
		t.Error("Supported wrong")
	}
}

func TestGlyphShapes(t *testing.T) {
	// Spot-check structural properties of a few glyphs rather than exact
	// bitmaps: 'I' is vertically symmetric, '-' occupies a single row,
	// '_' occupies the bottom row only.
	dash, _ := Glyph('-')
	for _, col := range dash {
		if col != 0 && col != 0x08 {
			t.Errorf("'-' column %02x not single middle row", col)
		}
	}
	under, _ := Glyph('_')
	for _, col := range under {
		if col != 0x40 {
			t.Errorf("'_' column %02x not bottom row", col)
		}
	}
	sp, _ := Glyph(' ')
	for _, col := range sp {
		if col != 0 {
			t.Error("space glyph has ink")
		}
	}
}

func TestAllGlyphsFitSevenRows(t *testing.T) {
	for ch := rune(32); ch <= 126; ch++ {
		g, _ := Glyph(ch)
		for i, col := range g {
			if col&0x80 != 0 {
				t.Errorf("glyph %q column %d uses bit 7", ch, i)
			}
		}
	}
}

func TestDrawGlyphScale1(t *testing.T) {
	b := renderToBinary(10, 10, func(set SetFunc) {
		adv := DrawGlyph(set, 0, 0, '|', 1)
		if adv != AdvanceW {
			t.Errorf("advance = %d", adv)
		}
	})
	// '|' is a full-height vertical bar in column 2.
	for y := 0; y < GlyphH; y++ {
		if !b.At(2, y) {
			t.Errorf("missing bar pixel at y=%d", y)
		}
	}
	if b.At(0, 0) || b.At(4, 0) {
		t.Error("stray pixels")
	}
}

func TestDrawGlyphScale2(t *testing.T) {
	b1 := renderToBinary(12, 16, func(set SetFunc) { DrawGlyph(set, 0, 0, 'T', 1) })
	b2 := renderToBinary(12, 16, func(set SetFunc) { DrawGlyph(set, 0, 0, 'T', 2) })
	if b2.Count() != 4*b1.Count() {
		t.Errorf("scale-2 ink %d != 4× scale-1 ink %d", b2.Count(), b1.Count())
	}
}

func TestDrawGlyphScaleClamped(t *testing.T) {
	b0 := renderToBinary(10, 10, func(set SetFunc) { DrawGlyph(set, 0, 0, 'A', 0) })
	b1 := renderToBinary(10, 10, func(set SetFunc) { DrawGlyph(set, 0, 0, 'A', 1) })
	for i := range b0.Words {
		if b0.Words[i] != b1.Words[i] {
			t.Fatal("scale 0 should clamp to 1")
		}
	}
}

func TestDrawString(t *testing.T) {
	var box geom.Rect
	b := renderToBinary(60, 12, func(set SetFunc) {
		box = DrawString(set, 2, 1, "AB", 1)
	})
	if b.Count() == 0 {
		t.Fatal("no ink")
	}
	want := geom.Rect{X0: 2, Y0: 1, X1: 2 + 2*AdvanceW - 1 - 1, Y1: 1 + GlyphH - 1}
	if box != want {
		t.Errorf("box = %v, want %v", box, want)
	}
	// Ink must stay inside the reported box.
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			if b.At(x, y) && !(geom.Pt{X: x, Y: y}).In(box) {
				t.Errorf("ink outside box at (%d,%d)", x, y)
			}
		}
	}
}

func TestDrawStringEmpty(t *testing.T) {
	box := DrawString(func(x, y int) { t.Error("ink for empty string") }, 5, 5, "", 1)
	if !box.Empty() {
		t.Errorf("empty string box = %v", box)
	}
}

func TestStringWidthHeight(t *testing.T) {
	if StringWidth("", 1) != 0 {
		t.Error("empty width")
	}
	if got := StringWidth("A", 1); got != GlyphW {
		t.Errorf("width(A) = %d, want %d", got, GlyphW)
	}
	if got := StringWidth("AB", 2); got != (2*AdvanceW-1)*2 {
		t.Errorf("width(AB,2) = %d", got)
	}
	if StringHeight(3) != GlyphH*3 {
		t.Error("height wrong")
	}
	if StringHeight(0) != GlyphH {
		t.Error("height scale clamp wrong")
	}
}

func TestParseRich(t *testing.T) {
	cases := []struct {
		in   string
		want []Span
	}{
		{"plain", []Span{{Text: "plain"}}},
		{"t_{D(on)}", []Span{{Text: "t"}, {Text: "D(on)", Sub: true}}},
		{"V_{INA}", []Span{{Text: "V"}, {Text: "INA", Sub: true}}},
		{"a_{b}c_{d}", []Span{{Text: "a"}, {Text: "b", Sub: true}, {Text: "c"}, {Text: "d", Sub: true}}},
		{"90%", []Span{{Text: "90%"}}},
		{`a\_b`, []Span{{Text: "a_b"}}},
		{"t_{unterminated", []Span{{Text: "t"}, {Text: "unterminated", Sub: true}}},
		{"_x", []Span{{Text: "_x"}}}, // bare underscore not followed by '{'
		{"", nil},
	}
	for _, c := range cases {
		got := ParseRich(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseRich(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestSubScale(t *testing.T) {
	if SubScale(3) != 2 || SubScale(1) != 1 || SubScale(6) != 4 {
		t.Error("SubScale wrong")
	}
}

func TestMeasureRichVsDraw(t *testing.T) {
	for _, s := range []string{"t_{D(on)}", "V_{INA}", "90%", "t_{s}", "6ns", "GND"} {
		for _, scale := range []int{1, 2, 3} {
			w, h := MeasureRich(s, scale)
			var box geom.Rect
			renderToBinary(400, 100, func(set SetFunc) {
				box = DrawRich(set, 0, 0, s, scale)
			})
			if box.W() > w || box.H() > h {
				t.Errorf("%q scale %d: box %dx%d exceeds measure %dx%d",
					s, scale, box.W(), box.H(), w, h)
			}
		}
	}
}

func TestDrawRichSubscriptBelowBaseline(t *testing.T) {
	// In "t_{s}", the subscript ink must start below the top of the base
	// glyph's midline.
	b := renderToBinary(60, 30, func(set SetFunc) {
		DrawRich(set, 0, 0, "t_{s}", 2)
	})
	// Base 't' at scale 2 occupies x in [0,9]; subscript starts after.
	subTop := 30
	for y := 0; y < b.H; y++ {
		for x := 12; x < b.W; x++ {
			if b.At(x, y) && y < subTop {
				subTop = y
			}
		}
	}
	if subTop < GlyphH*2*2/5 {
		t.Errorf("subscript top %d not shifted down", subTop)
	}
}

func TestDrawRichPlainEqualsDrawString(t *testing.T) {
	a := renderToBinary(100, 20, func(set SetFunc) { DrawString(set, 0, 0, "SCK", 2) })
	b := renderToBinary(100, 20, func(set SetFunc) { DrawRich(set, 0, 0, "SCK", 2) })
	for i := range a.Words {
		if a.Words[i] != b.Words[i] {
			t.Fatal("DrawRich on plain text differs from DrawString")
		}
	}
}

func TestRichBoxContainsInk(t *testing.T) {
	for _, s := range []string{"t_{D(on)}", "V_{CC}", "50%"} {
		var box geom.Rect
		b := renderToBinary(300, 60, func(set SetFunc) {
			box = DrawRich(set, 3, 4, s, 2)
		})
		for y := 0; y < b.H; y++ {
			for x := 0; x < b.W; x++ {
				if b.At(x, y) && !(geom.Pt{X: x, Y: y}).In(box) {
					t.Errorf("%q: ink at (%d,%d) outside box %v", s, x, y, box)
				}
			}
		}
	}
}

func TestDistinctGlyphs(t *testing.T) {
	// Characters the OCR must distinguish should have distinct bitmaps.
	critical := "0123456789%()stDVINACKGOnofh"
	seen := map[[GlyphW]byte]rune{}
	for _, ch := range critical {
		g, _ := Glyph(ch)
		if prev, dup := seen[g]; dup {
			t.Errorf("glyphs %q and %q identical", prev, ch)
		}
		seen[g] = ch
	}
}
