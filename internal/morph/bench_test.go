package morph

import (
	"testing"

	"tdmagic/internal/imgproc"
)

// benchDiagram builds a deterministic 900×540 diagram-shaped image: solid
// plateaus, dashed vertical event lines and dashed horizontal arrows — the
// input shape VerticalContours/HorizontalContours see in the LAD stage.
func benchDiagram() *imgproc.Binary {
	b := imgproc.NewBinary(900, 540)
	for y := 30; y < b.H; y += 60 {
		for x := 20; x < b.W-20; x++ {
			b.Set(x, y, true)
		}
	}
	for x := 100; x < b.W; x += 120 {
		for y := 0; y < b.H; y++ {
			if y%8 < 4 {
				b.Set(x, y, true)
			}
		}
	}
	for x := 140; x < 700; x++ {
		if x%9 < 5 {
			b.Set(x, 200, true)
		}
	}
	return b
}

// BenchmarkMorphContours measures the LAD morphology hot path: close/open
// with vertical and horizontal line elements plus component collection, at
// the default contour parameters.
func BenchmarkMorphContours(b *testing.B) {
	img := benchDiagram()
	b.Run("Vertical", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = VerticalContours(img, 9, 30, 10)
		}
	})
	b.Run("Horizontal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = HorizontalContours(img, 9, 25, 10)
		}
	})
	b.Run("ErodeRect", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = Erode(img, Rect(5, 5))
		}
	})
	b.Run("DilateRect", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = Dilate(img, Rect(5, 5))
		}
	})
}
