// Package morph implements the binary mathematical-morphology operations the
// LAD module relies on: erosion, dilation, opening and closing with
// rectangular structuring elements, specialised fast paths for line-shaped
// elements, and contour (run) extraction.
//
// The paper's LAD module "applies vertical contour detection" that
// (1) strengthens vertical structures (turning dashed vertical lines into
// solid lines), (2) filters out all non-vertical elements, and (3) collects
// the surviving vertical contours. In morphology terms that is a closing with
// a vertical line element followed by an opening with a (longer) vertical
// line element; this package provides those building blocks.
//
// All kernels run word-parallel on the bit-packed imgproc.Binary: a line
// erosion/dilation of length n is a logarithmic sequence of shifted word
// ANDs/ORs (the window smear doubles its coverage each pass), so the cost is
// O(W·H/64 · log n) word operations instead of O(W·H) per-pixel probes.
package morph

import (
	"sync"

	"tdmagic/internal/geom"
	"tdmagic/internal/imgproc"
	"tdmagic/internal/parallel"
)

// imgPool recycles the smear scratch images. Every word of a pooled image is
// overwritten before it is read (the shift kernels write their full
// destination), so stale content — including dirty padding bits — never
// leaks. The pool is what keeps a full contour extraction at zero
// steady-state heap growth; it is shared by all goroutines translating
// through one process, matching the pipeline's concurrent-use contract.
var imgPool sync.Pool

// getImage returns an owned, possibly-recycled image of the given geometry
// with undefined content. Callers must fully overwrite it.
func getImage(w, h int) *imgproc.Binary {
	stride := (w + 63) / 64
	need := h * stride
	if v := imgPool.Get(); v != nil {
		b := v.(*imgproc.Binary)
		if cap(b.Words) >= need {
			b.W, b.H, b.Stride = w, h, stride
			b.Words = b.Words[:need]
			return b
		}
	}
	return &imgproc.Binary{W: w, H: h, Stride: stride, Words: make([]uint64, need)}
}

// putImage returns an image to the scratch pool. The caller must not touch
// it afterwards.
func putImage(b *imgproc.Binary) {
	if b != nil {
		imgPool.Put(b)
	}
}

// copyImage returns an owned copy of b from the pool.
func copyImage(b *imgproc.Binary) *imgproc.Binary {
	c := getImage(b.W, b.H)
	copy(c.Words, b.Words)
	return c
}

// forWords fans fn out over contiguous word ranges of an n-word image.
// Chunks are fixed by the worker count and every index is written by exactly
// one chunk, so the result is identical for any worker count; small images
// run inline — the fan-out barrier would cost more than the pass itself.
func forWords(workers, n int, fn func(i0, i1 int)) {
	if workers <= 1 || n < 1<<14 {
		fn(0, n)
		return
	}
	parallel.For(workers, workers, func(i int) {
		fn(i*n/workers, (i+1)*n/workers)
	})
}

// forRows is forWords over row ranges.
func forRows(workers, h, stride int, fn func(y0, y1 int)) {
	if workers <= 1 || h*stride < 1<<14 {
		fn(0, h)
		return
	}
	parallel.For(workers, workers, func(i int) {
		fn(i*h/workers, (i+1)*h/workers)
	})
}

// SE is a flat rectangular structuring element, centred. W and H must be
// >= 1. Even-sized extents are biased toward the top-left: an element of
// width 2 covers offsets {0, +1} during erosion and the mirrored {-1, 0}
// during dilation-equivalent coverage, so odd sizes are preferred.
type SE struct {
	W, H int
}

// HLine returns a horizontal line structuring element of length n.
func HLine(n int) SE { return SE{W: n, H: 1} }

// VLine returns a vertical line structuring element of length n.
func VLine(n int) SE { return SE{W: 1, H: n} }

// Rect returns a w×h rectangular structuring element.
func Rect(w, h int) SE { return SE{W: w, H: h} }

// Dilate returns the dilation of b by se: a pixel is set in the result when
// any pixel under the (centred) element is set in b.
func Dilate(b *imgproc.Binary, se SE) *imgproc.Binary {
	return dilateW(b, se, 1)
}

func dilateW(b *imgproc.Binary, se SE, workers int) *imgproc.Binary {
	// Separable: dilate horizontally then vertically. Line elements skip
	// the unit-length direction — lineOp with n <= 1 is a full-image copy.
	if se.H <= 1 {
		return dilateH(b, se.W, workers) // W <= 1 copies, preserving ownership
	}
	if se.W <= 1 {
		return dilateV(b, se.H, workers)
	}
	tmp := dilateH(b, se.W, workers)
	res := dilateV(tmp, se.H, workers)
	putImage(tmp)
	return res
}

// Erode returns the erosion of b by se: a pixel is set in the result only
// when every pixel under the (centred) element is set in b. Pixels outside
// the image are treated as clear, so erosion shrinks structures touching the
// border.
func Erode(b *imgproc.Binary, se SE) *imgproc.Binary {
	return erodeW(b, se, 1)
}

func erodeW(b *imgproc.Binary, se SE, workers int) *imgproc.Binary {
	if se.H <= 1 {
		return erodeH(b, se.W, workers)
	}
	if se.W <= 1 {
		return erodeV(b, se.H, workers)
	}
	tmp := erodeH(b, se.W, workers)
	res := erodeV(tmp, se.H, workers)
	putImage(tmp)
	return res
}

// Open returns the opening of b by se (erosion then dilation). Opening with a
// vertical line element keeps only structures at least as tall as the
// element.
func Open(b *imgproc.Binary, se SE) *imgproc.Binary {
	return openW(b, se, 1)
}

func openW(b *imgproc.Binary, se SE, workers int) *imgproc.Binary {
	tmp := erodeW(b, se, workers)
	res := dilateW(tmp, se, workers)
	putImage(tmp)
	return res
}

// Close returns the closing of b by se (dilation then erosion). Closing with
// a vertical line element bridges vertical gaps shorter than the element —
// this is what turns dashed annotation lines into solid ones.
func Close(b *imgproc.Binary, se SE) *imgproc.Binary {
	return closeW(b, se, 1)
}

func closeW(b *imgproc.Binary, se SE, workers int) *imgproc.Binary {
	tmp := dilateW(b, se, workers)
	res := erodeW(tmp, se, workers)
	putImage(tmp)
	return res
}

// hLineOp applies the centred length-n horizontal window reduction in a
// single pass over the image. The centred window [x-left, x+right] is the
// forward window [x, x+n-1] evaluated at x-left, so each row is smeared
// forward in a per-worker buffer with logarithmic in-register shift-combines
// (coverage doubles each pass) and then stored through one final shift — one
// load and one store per image word, no intermediate images. The buffer is
// padded with pw leading zero words so the smear also produces the window
// values at negative positions that the shift reads back for pixels near the
// left border. The reduction is OR for dilation (and=false) and AND for
// erosion (and=true); bits beyond the row borders are clear, which gives
// both reference border semantics (OR ignores clipped pixels, AND treats
// them as misses).
func hLineOp(b *imgproc.Binary, n int, and bool, workers int) *imgproc.Binary {
	if n <= 1 {
		return copyImage(b)
	}
	left := (n - 1) / 2
	res := getImage(b.W, b.H)
	stride := b.Stride
	tail := uint(b.W) & 63
	tailMask := ^uint64(0)
	if tail != 0 {
		tailMask = uint64(1)<<tail - 1
	}
	pw := left>>6 + 1 // leading pad words covering positions [-64·pw, 0)
	s := pw*64 - left // dst bit x reads padded smear bit x+s, s >= 1
	ws, bs := s>>6, uint(s)&63
	plen := stride + pw + 1 // one trailing zero word for uniform word-pair reads
	forRows(workers, b.H, stride, func(y0, y1 int) {
		buf := make([]uint64, plen)
		for y := y0; y < y1; y++ {
			for i := 0; i < pw; i++ {
				buf[i] = 0
			}
			copy(buf[pw:], b.Words[y*stride:(y+1)*stride])
			buf[plen-1] = 0
			// The trailing pad word stays zero through the smear: positions
			// at and past the row width reduce over virtual clear pixels
			// only. Shifts by 64 are defined as 0 in Go, so word-aligned
			// offsets need no special path anywhere below.
			rowSmearFwd(buf[:plen-1], n-1, and)
			drow := res.Words[y*stride : (y+1)*stride]
			for j := range drow {
				drow[j] = buf[j+ws]>>bs | buf[j+ws+1]<<(64-bs)
			}
			// The shift can expose smear values in the padding positions;
			// mask to keep the padding-bits-zero invariant.
			drow[stride-1] &= tailMask
		}
	})
	return res
}

// rowSmearFwd reduces each pixel of the packed row over the window
// [x, x+dist], doubling coverage each pass. Pixel x+1 is the next-higher
// bit, so looking forward means combining down-shifted copies.
func rowSmearFwd(row []uint64, dist int, and bool) {
	for cov := 1; cov <= dist; {
		step := cov
		if cov+step > dist+1 {
			step = dist + 1 - cov
		}
		rowShiftDownCombine(row, step, and)
		cov += step
	}
}

// rowShiftDownCombine folds row OP (row >> k bits, carrying across words)
// into row in place, iterating low-to-high.
func rowShiftDownCombine(row []uint64, k int, and bool) {
	ws, bs := k>>6, uint(k)&63
	n := len(row)
	if ws == 0 && n > 0 {
		if and {
			for j := 0; j < n-1; j++ {
				row[j] &= row[j]>>bs | row[j+1]<<(64-bs)
			}
			row[n-1] &= row[n-1] >> bs
		} else {
			for j := 0; j < n-1; j++ {
				row[j] |= row[j]>>bs | row[j+1]<<(64-bs)
			}
			row[n-1] |= row[n-1] >> bs
		}
		return
	}
	hi := max(n-ws-1, 0)
	if and {
		for j := 0; j < hi; j++ {
			row[j] &= row[j+ws]>>bs | row[j+ws+1]<<(64-bs)
		}
		if ws < n {
			row[n-ws-1] &= row[n-1] >> bs
		}
		for j := max(n-ws, 0); j < n; j++ {
			row[j] = 0
		}
	} else {
		for j := 0; j < hi; j++ {
			row[j] |= row[j+ws]>>bs | row[j+ws+1]<<(64-bs)
		}
		if ws < n {
			row[n-ws-1] |= row[n-1] >> bs
		}
	}
}

// vLineOp applies the centred length-n vertical window reduction using the
// van Herk/Gil-Werman sliding-window algorithm per word-column: each padded
// column is split into blocks of n rows, a backward (suffix) and forward
// (prefix) running reduction is computed per block, and every output row is
// then the combine of one suffix and one prefix entry — three passes per
// column word regardless of n, versus O(log n) full-image passes for the
// shift-smear formulation. Virtual rows beyond the image are clear, giving
// the same border semantics as the horizontal kernels.
func vLineOp(b *imgproc.Binary, n int, and bool, workers int) *imgproc.Binary {
	if n <= 1 {
		return copyImage(b)
	}
	res := getImage(b.W, b.H)
	h, stride := b.H, b.Stride
	up := (n - 1) / 2 // window [y-up, y+down]
	pn := h + n - 1   // padded column: index p = y+up, y in [-up, h-1+(n-1-up)]
	nb := (pn + n - 1) / n
	plen := nb * n
	workers = parallel.Resolve(workers)
	if workers > 1 && h*stride < 1<<14 {
		workers = 1
	}
	scratch := make([][]uint64, workers)
	parallel.ForWorker(workers, stride, func(worker, j int) {
		buf := scratch[worker]
		if buf == nil {
			buf = make([]uint64, 3*plen)
			scratch[worker] = buf
		}
		col, suf, pre := buf[:plen], buf[plen:2*plen], buf[2*plen:]
		for i := 0; i < up; i++ {
			col[i] = 0
		}
		for i := up + h; i < plen; i++ {
			col[i] = 0
		}
		for y := 0; y < h; y++ {
			col[up+y] = b.Words[y*stride+j]
		}
		for blk := 0; blk < plen; blk += n {
			end := blk + n - 1
			acc := col[end]
			suf[end] = acc
			if and {
				for i := end - 1; i >= blk; i-- {
					acc &= col[i]
					suf[i] = acc
				}
				acc = col[blk]
				pre[blk] = acc
				for i := blk + 1; i <= end; i++ {
					acc &= col[i]
					pre[i] = acc
				}
			} else {
				for i := end - 1; i >= blk; i-- {
					acc |= col[i]
					suf[i] = acc
				}
				acc = col[blk]
				pre[blk] = acc
				for i := blk + 1; i <= end; i++ {
					acc |= col[i]
					pre[i] = acc
				}
			}
		}
		// Window of y in padded coords is [y, y+n-1]: exactly n wide, so it
		// spans one block (suffix == prefix == window) or two adjacent ones
		// (suffix tail + prefix head partition it exactly).
		if and {
			for y := 0; y < h; y++ {
				res.Words[y*stride+j] = suf[y] & pre[y+n-1]
			}
		} else {
			for y := 0; y < h; y++ {
				res.Words[y*stride+j] = suf[y] | pre[y+n-1]
			}
		}
	})
	return res
}

func dilateH(b *imgproc.Binary, n, workers int) *imgproc.Binary {
	return hLineOp(b, n, false, workers)
}

func dilateV(b *imgproc.Binary, n, workers int) *imgproc.Binary {
	return vLineOp(b, n, false, workers)
}

func erodeH(b *imgproc.Binary, n, workers int) *imgproc.Binary {
	return hLineOp(b, n, true, workers)
}

func erodeV(b *imgproc.Binary, n, workers int) *imgproc.Binary {
	return vLineOp(b, n, true, workers)
}

// VerticalContours extracts vertical structures from b: it first closes with
// a vertical line of length bridge (joining dash gaps), then opens with a
// vertical line of length minLen (removing everything shorter), and finally
// collects each surviving connected component as a vertical segment at the
// component's centre column. Components wider than maxThick are not
// line-shaped (text blobs, filled areas) and are dropped; maxThick <= 0
// disables the filter.
func VerticalContours(b *imgproc.Binary, bridge, minLen, maxThick int) []geom.VSeg {
	return VerticalContoursW(b, bridge, minLen, maxThick, 1)
}

// VerticalContoursW is VerticalContours with the morphology smears and the
// component labelling tiled over workers goroutines (<= 1 runs inline). The
// result is bit-identical for any worker count.
func VerticalContoursW(b *imgproc.Binary, bridge, minLen, maxThick, workers int) []geom.VSeg {
	work := b
	if bridge > 1 {
		work = closeW(b, VLine(bridge), workers)
	}
	opened := openW(work, VLine(minLen), workers)
	if work != b {
		putImage(work)
	}
	regs := imgproc.RegionsW(opened, minLen, workers)
	putImage(opened)
	segs := make([]geom.VSeg, 0, len(regs))
	for _, c := range regs {
		if maxThick > 0 && c.Box.W() > maxThick {
			continue
		}
		segs = append(segs, geom.VSeg{
			X:  c.Box.CenterX(),
			Y0: c.Box.Y0,
			Y1: c.Box.Y1,
		})
	}
	return segs
}

// HorizontalContours is the horizontal counterpart of VerticalContours;
// components taller than maxThick are dropped.
func HorizontalContours(b *imgproc.Binary, bridge, minLen, maxThick int) []geom.HSeg {
	return HorizontalContoursW(b, bridge, minLen, maxThick, 1)
}

// HorizontalContoursW is HorizontalContours tiled over workers goroutines.
func HorizontalContoursW(b *imgproc.Binary, bridge, minLen, maxThick, workers int) []geom.HSeg {
	work := b
	if bridge > 1 {
		work = closeW(b, HLine(bridge), workers)
	}
	opened := openW(work, HLine(minLen), workers)
	if work != b {
		putImage(work)
	}
	regs := imgproc.RegionsW(opened, minLen, workers)
	putImage(opened)
	segs := make([]geom.HSeg, 0, len(regs))
	for _, c := range regs {
		if maxThick > 0 && c.Box.H() > maxThick {
			continue
		}
		segs = append(segs, geom.HSeg{
			Y:  c.Box.CenterY(),
			X0: c.Box.X0,
			X1: c.Box.X1,
		})
	}
	return segs
}
