// Package morph implements the binary mathematical-morphology operations the
// LAD module relies on: erosion, dilation, opening and closing with
// rectangular structuring elements, specialised fast paths for line-shaped
// elements, and contour (run) extraction.
//
// The paper's LAD module "applies vertical contour detection" that
// (1) strengthens vertical structures (turning dashed vertical lines into
// solid lines), (2) filters out all non-vertical elements, and (3) collects
// the surviving vertical contours. In morphology terms that is a closing with
// a vertical line element followed by an opening with a (longer) vertical
// line element; this package provides those building blocks.
package morph

import (
	"tdmagic/internal/geom"
	"tdmagic/internal/imgproc"
)

// SE is a flat rectangular structuring element, centred. W and H must be
// >= 1. Even-sized extents are biased toward the top-left: an element of
// width 2 covers offsets {0, +1} during erosion and the mirrored {-1, 0}
// during dilation-equivalent coverage, so odd sizes are preferred.
type SE struct {
	W, H int
}

// HLine returns a horizontal line structuring element of length n.
func HLine(n int) SE { return SE{W: n, H: 1} }

// VLine returns a vertical line structuring element of length n.
func VLine(n int) SE { return SE{W: 1, H: n} }

// Rect returns a w×h rectangular structuring element.
func Rect(w, h int) SE { return SE{W: w, H: h} }

// Dilate returns the dilation of b by se: a pixel is set in the result when
// any pixel under the (centred) element is set in b.
func Dilate(b *imgproc.Binary, se SE) *imgproc.Binary {
	// Separable: dilate horizontally then vertically.
	tmp := dilateH(b, se.W)
	return dilateV(tmp, se.H)
}

// Erode returns the erosion of b by se: a pixel is set in the result only
// when every pixel under the (centred) element is set in b. Pixels outside
// the image are treated as clear, so erosion shrinks structures touching the
// border.
func Erode(b *imgproc.Binary, se SE) *imgproc.Binary {
	tmp := erodeH(b, se.W)
	return erodeV(tmp, se.H)
}

// Open returns the opening of b by se (erosion then dilation). Opening with a
// vertical line element keeps only structures at least as tall as the
// element.
func Open(b *imgproc.Binary, se SE) *imgproc.Binary {
	return Dilate(Erode(b, se), se)
}

// Close returns the closing of b by se (dilation then erosion). Closing with
// a vertical line element bridges vertical gaps shorter than the element —
// this is what turns dashed annotation lines into solid ones.
func Close(b *imgproc.Binary, se SE) *imgproc.Binary {
	return Erode(Dilate(b, se), se)
}

func dilateH(b *imgproc.Binary, n int) *imgproc.Binary {
	if n <= 1 {
		return b.Clone()
	}
	left := (n - 1) / 2
	right := n - 1 - left
	out := imgproc.NewBinary(b.W, b.H)
	for y := 0; y < b.H; y++ {
		row := b.Pix[y*b.W : (y+1)*b.W]
		orow := out.Pix[y*b.W : (y+1)*b.W]
		// Sliding window count of set pixels in [x-left, x+right].
		cnt := 0
		for x := 0; x < right && x < b.W; x++ {
			if row[x] {
				cnt++
			}
		}
		for x := 0; x < b.W; x++ {
			if x+right < b.W && row[x+right] {
				cnt++
			}
			if x-left-1 >= 0 && row[x-left-1] {
				cnt--
			}
			if cnt > 0 {
				orow[x] = true
			}
		}
	}
	return out
}

func dilateV(b *imgproc.Binary, n int) *imgproc.Binary {
	if n <= 1 {
		return b.Clone()
	}
	up := (n - 1) / 2
	down := n - 1 - up
	out := imgproc.NewBinary(b.W, b.H)
	for x := 0; x < b.W; x++ {
		cnt := 0
		for y := 0; y < down && y < b.H; y++ {
			if b.Pix[y*b.W+x] {
				cnt++
			}
		}
		for y := 0; y < b.H; y++ {
			if y+down < b.H && b.Pix[(y+down)*b.W+x] {
				cnt++
			}
			if y-up-1 >= 0 && b.Pix[(y-up-1)*b.W+x] {
				cnt--
			}
			if cnt > 0 {
				out.Pix[y*b.W+x] = true
			}
		}
	}
	return out
}

func erodeH(b *imgproc.Binary, n int) *imgproc.Binary {
	if n <= 1 {
		return b.Clone()
	}
	left := (n - 1) / 2
	right := n - 1 - left
	out := imgproc.NewBinary(b.W, b.H)
	for y := 0; y < b.H; y++ {
		row := b.Pix[y*b.W : (y+1)*b.W]
		orow := out.Pix[y*b.W : (y+1)*b.W]
		cnt := 0 // count of set pixels in window; need full n for erosion
		for x := 0; x < right && x < b.W; x++ {
			if row[x] {
				cnt++
			}
		}
		for x := 0; x < b.W; x++ {
			if x+right < b.W && row[x+right] {
				cnt++
			}
			if x-left-1 >= 0 && row[x-left-1] {
				cnt--
			}
			// Window may be clipped at the border; clipped pixels count as
			// clear, so a full-count match is impossible there.
			if cnt == n {
				orow[x] = true
			}
		}
	}
	return out
}

func erodeV(b *imgproc.Binary, n int) *imgproc.Binary {
	if n <= 1 {
		return b.Clone()
	}
	up := (n - 1) / 2
	down := n - 1 - up
	out := imgproc.NewBinary(b.W, b.H)
	for x := 0; x < b.W; x++ {
		cnt := 0
		for y := 0; y < down && y < b.H; y++ {
			if b.Pix[y*b.W+x] {
				cnt++
			}
		}
		for y := 0; y < b.H; y++ {
			if y+down < b.H && b.Pix[(y+down)*b.W+x] {
				cnt++
			}
			if y-up-1 >= 0 && b.Pix[(y-up-1)*b.W+x] {
				cnt--
			}
			if cnt == n {
				out.Pix[y*b.W+x] = true
			}
		}
	}
	return out
}

// VerticalContours extracts vertical structures from b: it first closes with
// a vertical line of length bridge (joining dash gaps), then opens with a
// vertical line of length minLen (removing everything shorter), and finally
// collects each surviving connected component as a vertical segment at the
// component's centre column. Components wider than maxThick are not
// line-shaped (text blobs, filled areas) and are dropped; maxThick <= 0
// disables the filter.
func VerticalContours(b *imgproc.Binary, bridge, minLen, maxThick int) []geom.VSeg {
	work := b
	if bridge > 1 {
		work = Close(b, VLine(bridge))
	}
	work = Open(work, VLine(minLen))
	comps := imgproc.Components(work, minLen)
	segs := make([]geom.VSeg, 0, len(comps))
	for _, c := range comps {
		if maxThick > 0 && c.Box.W() > maxThick {
			continue
		}
		segs = append(segs, geom.VSeg{
			X:  c.Box.CenterX(),
			Y0: c.Box.Y0,
			Y1: c.Box.Y1,
		})
	}
	return segs
}

// HorizontalContours is the horizontal counterpart of VerticalContours;
// components taller than maxThick are dropped.
func HorizontalContours(b *imgproc.Binary, bridge, minLen, maxThick int) []geom.HSeg {
	work := b
	if bridge > 1 {
		work = Close(b, HLine(bridge))
	}
	work = Open(work, HLine(minLen))
	comps := imgproc.Components(work, minLen)
	segs := make([]geom.HSeg, 0, len(comps))
	for _, c := range comps {
		if maxThick > 0 && c.Box.H() > maxThick {
			continue
		}
		segs = append(segs, geom.HSeg{
			Y:  c.Box.CenterY(),
			X0: c.Box.X0,
			X1: c.Box.X1,
		})
	}
	return segs
}
