// Package morph implements the binary mathematical-morphology operations the
// LAD module relies on: erosion, dilation, opening and closing with
// rectangular structuring elements, specialised fast paths for line-shaped
// elements, and contour (run) extraction.
//
// The paper's LAD module "applies vertical contour detection" that
// (1) strengthens vertical structures (turning dashed vertical lines into
// solid lines), (2) filters out all non-vertical elements, and (3) collects
// the surviving vertical contours. In morphology terms that is a closing with
// a vertical line element followed by an opening with a (longer) vertical
// line element; this package provides those building blocks.
//
// All kernels run word-parallel on the bit-packed imgproc.Binary: a line
// erosion/dilation of length n is a logarithmic sequence of shifted word
// ANDs/ORs (the window smear doubles its coverage each pass), so the cost is
// O(W·H/64 · log n) word operations instead of O(W·H) per-pixel probes.
package morph

import (
	"tdmagic/internal/geom"
	"tdmagic/internal/imgproc"
)

// SE is a flat rectangular structuring element, centred. W and H must be
// >= 1. Even-sized extents are biased toward the top-left: an element of
// width 2 covers offsets {0, +1} during erosion and the mirrored {-1, 0}
// during dilation-equivalent coverage, so odd sizes are preferred.
type SE struct {
	W, H int
}

// HLine returns a horizontal line structuring element of length n.
func HLine(n int) SE { return SE{W: n, H: 1} }

// VLine returns a vertical line structuring element of length n.
func VLine(n int) SE { return SE{W: 1, H: n} }

// Rect returns a w×h rectangular structuring element.
func Rect(w, h int) SE { return SE{W: w, H: h} }

// Dilate returns the dilation of b by se: a pixel is set in the result when
// any pixel under the (centred) element is set in b.
func Dilate(b *imgproc.Binary, se SE) *imgproc.Binary {
	// Separable: dilate horizontally then vertically.
	tmp := dilateH(b, se.W)
	return dilateV(tmp, se.H)
}

// Erode returns the erosion of b by se: a pixel is set in the result only
// when every pixel under the (centred) element is set in b. Pixels outside
// the image are treated as clear, so erosion shrinks structures touching the
// border.
func Erode(b *imgproc.Binary, se SE) *imgproc.Binary {
	tmp := erodeH(b, se.W)
	return erodeV(tmp, se.H)
}

// Open returns the opening of b by se (erosion then dilation). Opening with a
// vertical line element keeps only structures at least as tall as the
// element.
func Open(b *imgproc.Binary, se SE) *imgproc.Binary {
	return Dilate(Erode(b, se), se)
}

// Close returns the closing of b by se (dilation then erosion). Closing with
// a vertical line element bridges vertical gaps shorter than the element —
// this is what turns dashed annotation lines into solid ones.
func Close(b *imgproc.Binary, se SE) *imgproc.Binary {
	return Erode(Dilate(b, se), se)
}

// shiftColsLeftInto writes src shifted k columns to the left into dst:
// dst(x, y) = src(x+k, y). Pixels pulled from beyond the right border are
// clear. dst and src must have identical geometry and must not alias.
func shiftColsLeftInto(dst, src *imgproc.Binary, k int) {
	ws, bs := k>>6, uint(k)&63
	stride := src.Stride
	for y := 0; y < src.H; y++ {
		srow := src.Words[y*stride : (y+1)*stride]
		drow := dst.Words[y*stride : (y+1)*stride]
		for j := range drow {
			var w uint64
			if j+ws < stride {
				w = srow[j+ws] >> bs
			}
			if bs != 0 && j+ws+1 < stride {
				w |= srow[j+ws+1] << (64 - bs)
			}
			drow[j] = w
		}
	}
	// Source padding bits are zero, so the invariant is preserved.
}

// shiftColsRightInto writes src shifted k columns to the right into dst:
// dst(x, y) = src(x-k, y); pixels pulled from beyond the left border are
// clear. Ink shifted past the right border is masked off.
func shiftColsRightInto(dst, src *imgproc.Binary, k int) {
	ws, bs := k>>6, uint(k)&63
	stride := src.Stride
	for y := 0; y < src.H; y++ {
		srow := src.Words[y*stride : (y+1)*stride]
		drow := dst.Words[y*stride : (y+1)*stride]
		for j := stride - 1; j >= 0; j-- {
			var w uint64
			if j-ws >= 0 {
				w = srow[j-ws] << bs
			}
			if bs != 0 && j-ws-1 >= 0 {
				w |= srow[j-ws-1] >> (64 - bs)
			}
			drow[j] = w
		}
	}
	if tail := uint(src.W) & 63; tail != 0 {
		mask := uint64(1)<<tail - 1
		for y := 0; y < src.H; y++ {
			dst.Words[y*stride+stride-1] &= mask
		}
	}
}

// shiftRowsUpInto writes src shifted k rows up into dst:
// dst(x, y) = src(x, y+k); rows pulled from below the image are clear.
func shiftRowsUpInto(dst, src *imgproc.Binary, k int) {
	stride := src.Stride
	n := (src.H - k) * stride
	if n < 0 {
		n = 0 // element taller than the image: everything shifts out
	}
	copy(dst.Words[:n], src.Words[len(src.Words)-n:])
	for i := n; i < len(dst.Words); i++ {
		dst.Words[i] = 0
	}
}

// shiftRowsDownInto writes src shifted k rows down into dst:
// dst(x, y) = src(x, y-k); rows pulled from above the image are clear.
func shiftRowsDownInto(dst, src *imgproc.Binary, k int) {
	stride := src.Stride
	n := (src.H - k) * stride
	if n < 0 {
		n = 0
	}
	copy(dst.Words[len(dst.Words)-n:], src.Words[:n])
	for i := 0; i < len(dst.Words)-n; i++ {
		dst.Words[i] = 0
	}
}

// smear returns the directed window reduction of b over m consecutive
// pixels including x itself: for fwd smears the window is [x, x+m-1] (bits
// pulled in by shiftColsLeftInto / shiftRowsUpInto), for backward smears it
// is [x-m+1, x] (shiftColsRightInto / shiftRowsDownInto). The reduction is
// OR for dilation (and=false) and AND for erosion (and=true). Coverage
// doubles each pass, so m-wide windows cost ceil(log2 m) shifted word
// combines. Pixels pulled from beyond the border are clear — for OR they
// contribute nothing (the reference dilation ignores clipped pixels), for
// AND they force a miss (the reference erosion treats clipped pixels as
// clear), so both border semantics fall out of the zero fill.
func smear(b *imgproc.Binary, m int, and bool, shift func(dst, src *imgproc.Binary, k int)) *imgproc.Binary {
	res := b.Clone()
	if m <= 1 {
		return res
	}
	tmp := imgproc.NewBinary(b.W, b.H)
	for cov := 1; cov < m; {
		step := cov
		if cov+step > m {
			step = m - cov
		}
		shift(tmp, res, step)
		if and {
			for i, w := range tmp.Words {
				res.Words[i] &= w
			}
		} else {
			for i, w := range tmp.Words {
				res.Words[i] |= w
			}
		}
		cov += step
	}
	return res
}

// lineOp applies a 1D window reduction with the centred element of length n:
// the window [x-left, x+right] splits into a backward smear over
// [x-left, x] and a forward smear over [x, x+right]; their union is the
// window, so combining them (OR or AND — both windows contain x) yields the
// exact per-pixel reference result, border clipping included.
func lineOp(b *imgproc.Binary, n int, and bool, fwd, back func(dst, src *imgproc.Binary, k int)) *imgproc.Binary {
	if n <= 1 {
		return b.Clone()
	}
	left := (n - 1) / 2
	right := n - 1 - left
	res := smear(b, left+1, and, back)
	other := smear(b, right+1, and, fwd)
	if and {
		for i, w := range other.Words {
			res.Words[i] &= w
		}
	} else {
		for i, w := range other.Words {
			res.Words[i] |= w
		}
	}
	return res
}

func dilateH(b *imgproc.Binary, n int) *imgproc.Binary {
	return lineOp(b, n, false, shiftColsLeftInto, shiftColsRightInto)
}

func dilateV(b *imgproc.Binary, n int) *imgproc.Binary {
	return lineOp(b, n, false, shiftRowsUpInto, shiftRowsDownInto)
}

func erodeH(b *imgproc.Binary, n int) *imgproc.Binary {
	return lineOp(b, n, true, shiftColsLeftInto, shiftColsRightInto)
}

func erodeV(b *imgproc.Binary, n int) *imgproc.Binary {
	return lineOp(b, n, true, shiftRowsUpInto, shiftRowsDownInto)
}

// VerticalContours extracts vertical structures from b: it first closes with
// a vertical line of length bridge (joining dash gaps), then opens with a
// vertical line of length minLen (removing everything shorter), and finally
// collects each surviving connected component as a vertical segment at the
// component's centre column. Components wider than maxThick are not
// line-shaped (text blobs, filled areas) and are dropped; maxThick <= 0
// disables the filter.
func VerticalContours(b *imgproc.Binary, bridge, minLen, maxThick int) []geom.VSeg {
	work := b
	if bridge > 1 {
		work = Close(b, VLine(bridge))
	}
	work = Open(work, VLine(minLen))
	comps := imgproc.Components(work, minLen)
	segs := make([]geom.VSeg, 0, len(comps))
	for _, c := range comps {
		if maxThick > 0 && c.Box.W() > maxThick {
			continue
		}
		segs = append(segs, geom.VSeg{
			X:  c.Box.CenterX(),
			Y0: c.Box.Y0,
			Y1: c.Box.Y1,
		})
	}
	return segs
}

// HorizontalContours is the horizontal counterpart of VerticalContours;
// components taller than maxThick are dropped.
func HorizontalContours(b *imgproc.Binary, bridge, minLen, maxThick int) []geom.HSeg {
	work := b
	if bridge > 1 {
		work = Close(b, HLine(bridge))
	}
	work = Open(work, HLine(minLen))
	comps := imgproc.Components(work, minLen)
	segs := make([]geom.HSeg, 0, len(comps))
	for _, c := range comps {
		if maxThick > 0 && c.Box.H() > maxThick {
			continue
		}
		segs = append(segs, geom.HSeg{
			Y:  c.Box.CenterY(),
			X0: c.Box.X0,
			X1: c.Box.X1,
		})
	}
	return segs
}
