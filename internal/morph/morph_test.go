package morph

import (
	"math/rand"
	"testing"

	"tdmagic/internal/imgproc"
)

func binFromRows(rows []string) *imgproc.Binary {
	h := len(rows)
	w := 0
	if h > 0 {
		w = len(rows[0])
	}
	b := imgproc.NewBinary(w, h)
	for y, r := range rows {
		for x, c := range r {
			if c == '#' {
				b.Set(x, y, true)
			}
		}
	}
	return b
}

func binEqual(a, b *imgproc.Binary) bool {
	if a.W != b.W || a.H != b.H {
		return false
	}
	for i := range a.Words {
		if a.Words[i] != b.Words[i] {
			return false
		}
	}
	return true
}

// fillRand sets each pixel with probability 1/denom, reading the rng in
// row-major pixel order.
func fillRand(b *imgproc.Binary, rng *rand.Rand, denom int) {
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			b.Set(x, y, rng.Intn(denom) == 0)
		}
	}
}

func TestStructuringElements(t *testing.T) {
	if HLine(5) != (SE{5, 1}) || VLine(3) != (SE{1, 3}) || Rect(2, 4) != (SE{2, 4}) {
		t.Error("SE constructors wrong")
	}
}

func TestDilateSinglePixel(t *testing.T) {
	b := imgproc.NewBinary(7, 7)
	b.Set(3, 3, true)
	d := Dilate(b, Rect(3, 3))
	if d.Count() != 9 {
		t.Fatalf("3x3 dilation of a point has %d pixels, want 9", d.Count())
	}
	for y := 2; y <= 4; y++ {
		for x := 2; x <= 4; x++ {
			if !d.At(x, y) {
				t.Errorf("pixel (%d,%d) not set", x, y)
			}
		}
	}
}

func TestDilateEvenElement(t *testing.T) {
	b := imgproc.NewBinary(7, 7)
	b.Set(3, 3, true)
	d := Dilate(b, HLine(2))
	// Even element: biased toward the origin side, covers x in {2,3} at y=3.
	if d.Count() != 2 || !d.At(2, 3) || !d.At(3, 3) {
		t.Errorf("HLine(2) dilation wrong: count=%d", d.Count())
	}
}

func TestErodeInverseOfDilateOnBlock(t *testing.T) {
	b := imgproc.NewBinary(11, 11)
	for y := 3; y <= 7; y++ {
		for x := 3; x <= 7; x++ {
			b.Set(x, y, true)
		}
	}
	e := Erode(b, Rect(3, 3))
	if e.Count() != 9 {
		t.Fatalf("erosion of 5x5 block by 3x3 = %d pixels, want 9", e.Count())
	}
	// Erode then dilate (opening) restores a block that survived.
	o := Open(b, Rect(3, 3))
	if !binEqual(o, b) {
		t.Error("opening should restore a block bigger than the element")
	}
}

func TestErodeBorderClipping(t *testing.T) {
	// A full image eroded by a 3x3 element loses its 1-pixel border.
	b := imgproc.NewBinary(5, 5)
	b.Fill(true)
	e := Erode(b, Rect(3, 3))
	if e.Count() != 9 {
		t.Errorf("full 5x5 eroded by 3x3 = %d pixels, want 9", e.Count())
	}
	if e.At(0, 0) || !e.At(2, 2) {
		t.Error("border handling wrong")
	}
}

func TestOpenRemovesSmallNoise(t *testing.T) {
	b := binFromRows([]string{
		".......",
		".#.....",
		".......",
		"..###..",
		"..###..",
		"..###..",
		".......",
	})
	o := Open(b, Rect(3, 3))
	if o.At(1, 1) {
		t.Error("opening kept isolated pixel")
	}
	if !o.At(3, 4) {
		t.Error("opening removed the 3x3 block")
	}
}

func TestCloseBridgesGaps(t *testing.T) {
	// Dashed vertical line: segments with 2-pixel gaps.
	b := imgproc.NewBinary(5, 20)
	for y := 0; y < 20; y++ {
		if y%5 < 3 { // 3 on, 2 off
			b.Set(2, y, true)
		}
	}
	c := Close(b, VLine(5))
	// All gaps interior to the dash pattern should be filled. Border erosion
	// (outside treated as clear) may trim up to 2 rows at each end.
	for y := 2; y <= 17; y++ {
		if !c.At(2, y) {
			t.Errorf("closing left a gap at y=%d", y)
		}
	}
}

func TestIdentityElement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := imgproc.NewBinary(16, 16)
	fillRand(b, rng, 2)
	if !binEqual(Dilate(b, SE{1, 1}), b) || !binEqual(Erode(b, SE{1, 1}), b) {
		t.Error("1x1 element should be identity")
	}
}

func TestDilateErodeDuality(t *testing.T) {
	// On random images: Erode(b) ⊆ b ⊆ Dilate(b) (anti-extensivity /
	// extensivity for centred elements containing the origin).
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		b := imgproc.NewBinary(24, 24)
		fillRand(b, rng, 3)
		se := SE{W: 1 + rng.Intn(3), H: 1 + rng.Intn(3)}
		d := Dilate(b, se)
		e := Erode(b, se)
		for i := range b.Words {
			if e.Words[i]&^b.Words[i] != 0 {
				t.Fatal("erosion grew the image")
			}
			if b.Words[i]&^d.Words[i] != 0 {
				t.Fatal("dilation shrank the image")
			}
		}
	}
}

func TestOpenCloseIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		b := imgproc.NewBinary(20, 20)
		fillRand(b, rng, 3)
		se := Rect(1+rng.Intn(2)*2, 1+rng.Intn(2)*2) // odd sizes
		o1 := Open(b, se)
		o2 := Open(o1, se)
		if !binEqual(o1, o2) {
			t.Fatal("opening not idempotent")
		}
		c1 := Close(b, se)
		c2 := Close(c1, se)
		if !binEqual(c1, c2) {
			t.Fatal("closing not idempotent")
		}
	}
}

func TestVerticalContours(t *testing.T) {
	b := imgproc.NewBinary(40, 40)
	// Solid vertical line at x=10, rows 5..34.
	for y := 5; y <= 34; y++ {
		b.Set(10, y, true)
	}
	// Dashed vertical line at x=25: 4 on, 3 off.
	for y := 5; y <= 34; y++ {
		if y%7 < 4 {
			b.Set(25, y, true)
		}
	}
	// Horizontal line (must be filtered out).
	for x := 0; x < 40; x++ {
		b.Set(x, 38, true)
	}
	// Short vertical tick (must be filtered out by minLen).
	for y := 0; y < 4; y++ {
		b.Set(35, y, true)
	}
	segs := VerticalContours(b, 5, 15, 0)
	if len(segs) != 2 {
		t.Fatalf("got %d vertical contours, want 2: %v", len(segs), segs)
	}
	if segs[0].X != 10 && segs[1].X != 10 {
		t.Error("solid line at x=10 missed")
	}
	foundDashed := false
	for _, s := range segs {
		if s.X == 25 && s.Len() >= 25 {
			foundDashed = true
		}
	}
	if !foundDashed {
		t.Errorf("dashed line not bridged into long contour: %v", segs)
	}
}

func TestHorizontalContours(t *testing.T) {
	b := imgproc.NewBinary(40, 20)
	for x := 3; x <= 36; x++ {
		b.Set(x, 10, true)
	}
	for y := 0; y < 20; y++ {
		b.Set(20, y, true) // vertical line, must be filtered
	}
	segs := HorizontalContours(b, 1, 15, 0)
	if len(segs) != 1 {
		t.Fatalf("got %d horizontal contours, want 1: %v", len(segs), segs)
	}
	s := segs[0]
	if s.Y != 10 || s.X0 > 3 || s.X1 < 36 {
		t.Errorf("contour = %v", s)
	}
}

func TestContoursEmptyImage(t *testing.T) {
	b := imgproc.NewBinary(10, 10)
	if len(VerticalContours(b, 3, 3, 0)) != 0 || len(HorizontalContours(b, 3, 3, 0)) != 0 {
		t.Error("empty image produced contours")
	}
}

// TestTinyImageElements applies elements taller/wider than the image
// itself; erosion must clear everything (border clipping) and dilation
// must stay within bounds, never panic on the short word buffer.
func TestTinyImageElements(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {3, 1}, {1, 3}, {4, 4}} {
		b := imgproc.NewBinary(dims[0], dims[1])
		for y := 0; y < dims[1]; y++ {
			for x := 0; x < dims[0]; x++ {
				b.Set(x, y, true)
			}
		}
		for _, se := range []SE{VLine(9), HLine(9), Rect(9, 9)} {
			if got := Erode(b, se).Count(); got != 0 {
				t.Errorf("%dx%d erode by %dx%d: %d pixels survive, want 0",
					dims[0], dims[1], se.W, se.H, got)
			}
			if got := Dilate(b, se).Count(); got != dims[0]*dims[1] {
				t.Errorf("%dx%d dilate by %dx%d: %d pixels, want full",
					dims[0], dims[1], se.W, se.H, got)
			}
			_ = Open(b, se)
			_ = Close(b, se)
		}
	}
}
