package morph

import (
	"math/rand"
	"testing"

	"tdmagic/internal/imgproc"
)

// Differential tests of the word-parallel kernels against the obvious
// per-pixel reference: for every pixel, probe the full centred window.

// refAt is the out-of-bounds-is-clear probe of the reference semantics.
func refAt(b *imgproc.Binary, x, y int) bool {
	if x < 0 || y < 0 || x >= b.W || y >= b.H {
		return false
	}
	return b.At(x, y)
}

// refDilate sets a pixel when any pixel under the centred element is set.
func refDilate(b *imgproc.Binary, se SE) *imgproc.Binary {
	left := (se.W - 1) / 2
	right := se.W - 1 - left
	up := (se.H - 1) / 2
	down := se.H - 1 - up
	out := imgproc.NewBinary(b.W, b.H)
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			hit := false
			for dy := -up; dy <= down && !hit; dy++ {
				for dx := -left; dx <= right; dx++ {
					if refAt(b, x+dx, y+dy) {
						hit = true
						break
					}
				}
			}
			out.Set(x, y, hit)
		}
	}
	return out
}

// refErode sets a pixel only when every pixel under the centred element is
// set; out-of-image pixels count as clear, so erosion fails near borders.
func refErode(b *imgproc.Binary, se SE) *imgproc.Binary {
	left := (se.W - 1) / 2
	right := se.W - 1 - left
	up := (se.H - 1) / 2
	down := se.H - 1 - up
	out := imgproc.NewBinary(b.W, b.H)
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			all := true
			for dy := -up; dy <= down && all; dy++ {
				for dx := -left; dx <= right; dx++ {
					if !refAt(b, x+dx, y+dy) {
						all = false
						break
					}
				}
			}
			out.Set(x, y, all)
		}
	}
	return out
}

func diffOne(t *testing.T, name string, got, want *imgproc.Binary) {
	t.Helper()
	for y := 0; y < want.H; y++ {
		for x := 0; x < want.W; x++ {
			if got.At(x, y) != want.At(x, y) {
				t.Fatalf("%s: pixel (%d,%d)=%v want %v", name, x, y, got.At(x, y), want.At(x, y))
			}
		}
	}
}

func TestDiffDilateErode(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	// Widths straddling word boundaries; elements covering odd, even, line
	// and rectangular shapes (even sizes exercise the asymmetric split).
	widths := []int{9, 63, 64, 65, 130}
	elements := []SE{
		{1, 1}, {2, 1}, {1, 2}, {3, 3}, {2, 4},
		HLine(5), HLine(8), VLine(5), VLine(8), Rect(5, 3), Rect(7, 7),
	}
	for _, w := range widths {
		b := imgproc.NewBinary(w, 23)
		fillRand(b, rng, 3)
		for _, se := range elements {
			diffOne(t, "dilate", Dilate(b, se), refDilate(b, se))
			diffOne(t, "erode", Erode(b, se), refErode(b, se))
		}
	}
}

// TestDiffWorkerInvariance pins the tiled kernels to the sequential result
// word for word: any worker count must produce bit-identical images and
// contour lists.
func TestDiffWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, dims := range [][2]int{{9, 130}, {130, 9}, {193, 67}} {
		b := imgproc.NewBinary(dims[0], dims[1])
		fillRand(b, rng, 2)
		for _, se := range []SE{HLine(9), VLine(9), Rect(5, 3), Rect(2, 4)} {
			wantD := dilateW(b, se, 1)
			wantE := erodeW(b, se, 1)
			for _, workers := range []int{2, 7, -1} {
				diffOne(t, "dilateW", dilateW(b, se, workers), wantD)
				diffOne(t, "erodeW", erodeW(b, se, workers), wantE)
			}
		}
		wantV := VerticalContours(b, 3, 4, 6)
		wantH := HorizontalContours(b, 3, 4, 6)
		for _, workers := range []int{2, 7, -1} {
			gotV := VerticalContoursW(b, 3, 4, 6, workers)
			if len(gotV) != len(wantV) {
				t.Fatalf("VerticalContoursW(workers=%d): %d segs want %d", workers, len(gotV), len(wantV))
			}
			for i := range gotV {
				if gotV[i] != wantV[i] {
					t.Fatalf("VerticalContoursW(workers=%d)[%d]=%v want %v", workers, i, gotV[i], wantV[i])
				}
			}
			gotH := HorizontalContoursW(b, 3, 4, 6, workers)
			if len(gotH) != len(wantH) {
				t.Fatalf("HorizontalContoursW(workers=%d): %d segs want %d", workers, len(gotH), len(wantH))
			}
			for i := range gotH {
				if gotH[i] != wantH[i] {
					t.Fatalf("HorizontalContoursW(workers=%d)[%d]=%v want %v", workers, i, gotH[i], wantH[i])
				}
			}
		}
	}
}

func TestDiffSparseAndDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, denom := range []int{1, 2, 20} { // solid, half, sparse
		b := imgproc.NewBinary(70, 40)
		fillRand(b, rng, denom)
		for _, se := range []SE{Rect(3, 3), HLine(9), VLine(9)} {
			diffOne(t, "dilate", Dilate(b, se), refDilate(b, se))
			diffOne(t, "erode", Erode(b, se), refErode(b, se))
		}
	}
}
