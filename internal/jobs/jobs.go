// Package jobs is the durable asynchronous job layer over the
// content-addressed artifact store (internal/store) and the per-item
// translation path (internal/batch): submit a corpus once, survive worker
// crashes, process restarts and flaky items, and never redo work the
// store already holds.
//
// A job is a Record — ID, resolved pipeline config hash, and one
// ItemRecord per picture with its own attempt count and state machine —
// journaled to disk under <root>/<id>/job.json with the store's atomic
// tmp+rename discipline. Every state transition checkpoints the journal,
// and the previous generation is kept as job.json.prev, so a torn write
// (power loss mid-rename, an external truncation) falls back to the last
// good checkpoint instead of losing the job.
//
// Execution is lease-based: the scheduler claims a pending item by
// marking it running with a time-bounded lease and a fencing epoch, and
// the worker heartbeats the lease while it translates. A worker that
// stops heartbeating — crashed, stalled, or killed with the process —
// loses the lease; the scheduler reclaims the item, bumps the epoch (so a
// late report from the presumed-dead worker is ignored), and requeues it
// with capped exponential backoff plus deterministic seeded jitter.
// After MaxAttempts failed attempts an item is quarantined with its
// diagnostics instead of wedging the job: the job still reaches a
// terminal state and every other item's result is served.
//
// Crash-safety is end to end: items are translated through
// batch.Process, which persists each artifact to the store atomically
// before the journal records the item done. A process killed at any
// point therefore resumes by re-claiming only items the journal does not
// show done — and any of those whose artifact did land before the kill
// answer from the store byte-identically instead of being retranslated.
package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tdmagic/internal/diag"
	"tdmagic/internal/parallel"
	"tdmagic/internal/spo"
)

// State is a job's lifecycle state.
type State string

const (
	// StateQueued is a submitted job the scheduler has not started.
	StateQueued State = "queued"
	// StateRunning is a job with items being processed (or resumable).
	StateRunning State = "running"
	// StateDone is a terminal job whose every item completed.
	StateDone State = "done"
	// StateFailed is a terminal job with quarantined items, or one that
	// could not run at all (corrupt journal, pipeline config mismatch).
	StateFailed State = "failed"
	// StateCancelled is a terminal job stopped by the client.
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// ItemState is one item's state within a job.
type ItemState string

const (
	// ItemPending is waiting for dispatch (possibly under a backoff gate).
	ItemPending ItemState = "pending"
	// ItemRunning is claimed under a lease by a worker.
	ItemRunning ItemState = "running"
	// ItemDone has its artifact in the store.
	ItemDone ItemState = "done"
	// ItemQuarantined failed MaxAttempts times and is parked with its
	// diagnostics; the job completes without it.
	ItemQuarantined ItemState = "quarantined"
)

// ItemRecord is the journaled state of one item.
type ItemRecord struct {
	// Name is the item's result name (unique within the job).
	Name string `json:"name"`
	// Path is the picture file the item translates.
	Path string `json:"path"`
	// State is the item's current state.
	State ItemState `json:"state"`
	// Attempts counts claims so far (a crash mid-attempt counts: the
	// journal recorded the claim before the worker started).
	Attempts int `json:"attempts,omitempty"`
	// Input is the hex content hash of the decoded picture, recorded when
	// the item completes; (job config × input) addresses its artifact.
	Input string `json:"input,omitempty"`
	// Error is the most recent failure (kept on quarantine).
	Error string `json:"error,omitempty"`
	// Diags carries the diagnostics of the failing attempt.
	Diags []diag.Diagnostic `json:"diags,omitempty"`
	// NotBefore gates the next dispatch (unix nanos; backoff).
	NotBefore int64 `json:"not_before,omitempty"`
	// LeaseUntil is the current lease expiry while running (unix nanos).
	LeaseUntil int64 `json:"lease_until,omitempty"`
}

// Record is the journaled state of one job.
type Record struct {
	// ID names the job and its directory under the service root.
	ID string `json:"id"`
	// Config is the hex pipeline config hash the job was submitted
	// against; artifacts are stored under it, and a service opened with a
	// different pipeline refuses to resume the job.
	Config string `json:"config"`
	// State is the job's lifecycle state.
	State State `json:"state"`
	// Error explains a failed job.
	Error string `json:"error,omitempty"`
	// Submitter is the request ID of the submitting HTTP request, when one
	// was present. It surfaces in snapshots, logs and flight events for
	// correlation but never enters the results stream, which stays
	// byte-identical across resubmissions.
	Submitter string `json:"submitter,omitempty"`
	// Created and Updated are unix-nano journal timestamps.
	Created int64 `json:"created_unix_ns"`
	Updated int64 `json:"updated_unix_ns"`
	// Hits counts items answered from the store, Misses fresh
	// translations, Retries requeues after a failed attempt, Reclaims
	// expired leases taken back from presumed-dead workers. Hits+Misses
	// can exceed the item count across crash-resume cycles.
	Hits     int `json:"hits"`
	Misses   int `json:"misses"`
	Retries  int `json:"retries"`
	Reclaims int `json:"reclaims"`
	// Items is the per-item journal, in submission order.
	Items []ItemRecord `json:"items"`
}

// Stats summarises a job's per-item states plus its cumulative counters.
type Stats struct {
	Total       int `json:"total"`
	Pending     int `json:"pending"`
	Running     int `json:"running"`
	Done        int `json:"done"`
	Quarantined int `json:"quarantined"`
	Hits        int `json:"hits"`
	Misses      int `json:"misses"`
	Retries     int `json:"retries"`
	Reclaims    int `json:"reclaims"`
}

// stats derives the Stats of a record.
func (r *Record) stats() Stats {
	st := Stats{
		Total: len(r.Items),
		Hits:  r.Hits, Misses: r.Misses,
		Retries: r.Retries, Reclaims: r.Reclaims,
	}
	for i := range r.Items {
		switch r.Items[i].State {
		case ItemPending:
			st.Pending++
		case ItemRunning:
			st.Running++
		case ItemDone:
			st.Done++
		case ItemQuarantined:
			st.Quarantined++
		}
	}
	return st
}

// settled reports whether every item reached a terminal item state.
func (r *Record) settled() bool {
	for i := range r.Items {
		if s := r.Items[i].State; s != ItemDone && s != ItemQuarantined {
			return false
		}
	}
	return true
}

// ItemStatus is one item's externally visible status.
type ItemStatus struct {
	Name     string            `json:"name"`
	State    ItemState         `json:"state"`
	Attempts int               `json:"attempts"`
	Error    string            `json:"error,omitempty"`
	Diags    []diag.Diagnostic `json:"diags,omitempty"`
}

// Snapshot is a point-in-time view of a job, safe to hold after the
// service moves on.
type Snapshot struct {
	ID        string `json:"id"`
	State     State  `json:"state"`
	Error     string `json:"error,omitempty"`
	Submitter string `json:"submitter,omitempty"`
	Created   int64  `json:"created_unix_ns"`
	Updated   int64  `json:"updated_unix_ns"`
	Stats     Stats  `json:"stats"`
	// Items is populated only when explicitly requested.
	Items []ItemStatus `json:"items,omitempty"`
}

// ItemResult is one item's entry in the ordered results stream: the
// artifact replayed from the store for done items, the quarantine
// diagnostics for poisoned ones. The encoding carries no run-volatile
// fields (no timestamps, no cache flags), so the streamed results of a
// resumed run are byte-identical to an uninterrupted one.
type ItemResult struct {
	Index int               `json:"index"`
	Name  string            `json:"name"`
	Spec  string            `json:"spec,omitempty"`
	SPO   *spo.SPO          `json:"spo,omitempty"`
	Diags []diag.Diagnostic `json:"diags,omitempty"`
	Error string            `json:"error,omitempty"`
}

// journalFile and journalPrev are the current and previous journal
// generations inside a job directory.
const (
	journalFile = "job.json"
	journalPrev = "job.json.prev"
)

// writeRecord checkpoints rec into dir atomically, keeping the previous
// generation as job.json.prev so a torn write never loses the job: the
// new bytes are staged in a temp file, the old journal is renamed aside,
// and the stage renamed into place — at every instant at least one of
// job.json / job.json.prev is a complete checkpoint.
func writeRecord(dir string, rec *Record) error {
	if FaultHook != nil {
		if err := FaultHook(Fault{Point: FaultJournal, Job: rec.ID}); err != nil {
			return fmt.Errorf("jobs: journal %s: %w", rec.ID, err)
		}
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: journal %s: %w", rec.ID, err)
	}
	f, err := os.CreateTemp(dir, "journal-*")
	if err != nil {
		return fmt.Errorf("jobs: journal %s: %w", rec.ID, err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("jobs: journal %s: %w", rec.ID, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobs: journal %s: %w", rec.ID, err)
	}
	cur := filepath.Join(dir, journalFile)
	if _, err := os.Stat(cur); err == nil {
		_ = os.Rename(cur, filepath.Join(dir, journalPrev))
	}
	if err := os.Rename(tmp, cur); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobs: journal %s: %w", rec.ID, err)
	}
	return nil
}

// loadRecord reads a job directory's journal, falling back to the
// previous generation when the current one is missing or torn.
func loadRecord(dir string) (*Record, error) {
	var firstErr error
	for _, name := range []string{journalFile, journalPrev} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		var rec Record
		if err := json.Unmarshal(data, &rec); err != nil || rec.ID == "" {
			if firstErr == nil {
				firstErr = fmt.Errorf("jobs: %s corrupt", name)
			}
			continue
		}
		return &rec, nil
	}
	if firstErr == nil {
		firstErr = errors.New("jobs: no journal")
	}
	return nil, firstErr
}

// clearStaleJournals removes journal staging files a crash left behind in
// a job directory; none are live across opens.
func clearStaleJournals(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "journal-") {
			_ = os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// Backoff returns the delay before re-dispatching an item that has
// failed `attempt` times: the exponential base<<(attempt-1) capped at
// max, plus a deterministic jitter in [0, delay/2] derived from (jobID,
// item, attempt) through the splitmix64 finalizer. The jitter decorrelates
// a thundering herd of requeued items without consulting the wall clock
// or a shared RNG, so a replayed run produces the identical schedule —
// the property the backoff-determinism tests pin.
func Backoff(base, max time.Duration, jobID, item string, attempt int) time.Duration {
	if base <= 0 {
		base = time.Millisecond
	}
	if max <= 0 {
		max = 30 * time.Second
	}
	if attempt < 1 {
		attempt = 1
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if span := int64(d / 2); span > 0 {
		seed := int64(fnv64(jobID) ^ fnv64(item))
		j := uint64(parallel.Seed(seed, int64(attempt)))
		d += time.Duration(j % uint64(span+1))
	}
	return d
}

// fnv64 is the FNV-1a 64-bit hash, seeding per-item jitter streams.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
