package jobs

import (
	"context"
	"errors"
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tdmagic/internal/obs"
)

// collectEvents drains a subscription until EOF, with a bounded deadline.
func collectEvents(t *testing.T, sub *Subscription) []Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var evs []Event
	for {
		ev, err := sub.Next(ctx)
		if errors.Is(err, io.EOF) {
			return evs
		}
		if err != nil {
			t.Fatalf("next: %v (have %d events)", err, len(evs))
		}
		evs = append(evs, ev)
	}
}

// TestEventsMidJob subscribes right after submission and follows the
// stream to EOF: the snapshot comes first, every item gets a claim and
// exactly one done, the terminal state event closes the stream, and the
// job's trace lands in the flight recorder keyed by the job ID.
func TestEventsMidJob(t *testing.T) {
	pipe := setup(t)
	cfg := fastCfg()
	cfg.Throttle = 20 * time.Millisecond // keep the job alive past subscribe
	cfg.Trace = true
	flight := obs.NewRecorder(obs.RecorderConfig{})
	cfg.Flight = flight
	svc, _, _ := newService(t, pipe, cfg)
	defer closeService(t, svc)

	paths := writeCorpus(t, 4)
	sn, err := svc.Submit(pathSpecs(paths))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := svc.Events(sn.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	evs := collectEvents(t, sub)

	if len(evs) == 0 || evs[0].Type != EventSnapshot {
		t.Fatalf("first event = %+v, want snapshot", evs[0])
	}
	if len(evs[0].Items) != 4 {
		t.Fatalf("snapshot items = %d, want 4 (withItems)", len(evs[0].Items))
	}
	claimed := map[string]int{}
	done := map[string]int{}
	var sawTerminal bool
	var lastSeq uint64
	for _, ev := range evs[1:] {
		if ev.Seq <= lastSeq {
			t.Fatalf("seq not increasing: %d after %d (%s)", ev.Seq, lastSeq, ev.Type)
		}
		lastSeq = ev.Seq
		switch ev.Type {
		case EventClaimed:
			claimed[ev.Item]++
		case EventDone:
			done[ev.Item]++
			if ev.Cached == nil {
				t.Errorf("item_done %s: Cached not set", ev.Item)
			}
		case EventTerminal:
			sawTerminal = true
			if ev.State != StateDone {
				t.Errorf("terminal state = %s (%s)", ev.State, ev.Error)
			}
			if ev.Stats == nil || ev.Stats.Done != 4 {
				t.Errorf("terminal stats = %+v", ev.Stats)
			}
		case EventTruncated:
			t.Errorf("unexpected truncation: dropped %d", ev.Dropped)
		}
	}
	if !sawTerminal {
		t.Error("no terminal state event")
	}
	for _, p := range pathSpecs(paths) {
		if claimed[p.Name] < 1 {
			t.Errorf("item %s: %d claim events, want >= 1", p.Name, claimed[p.Name])
		}
		if done[p.Name] != 1 {
			t.Errorf("item %s: %d done events, want exactly 1", p.Name, done[p.Name])
		}
	}

	// EOF means finish() ran: the trace capture precedes the hub close.
	dump := flight.Snapshot(obs.FlightFilter{RequestID: sn.ID})
	var trace, submitted, finished bool
	for _, lst := range [][]obs.FlightEntry{dump.Entries, dump.Pinned} {
		for _, e := range lst {
			switch {
			case e.Kind == "trace" && e.Name == "job":
				trace = true
				var items int
				for _, s := range e.Spans {
					if s.Name == "job.item" {
						items++
					}
				}
				if items != 4 {
					t.Errorf("job trace has %d job.item spans, want 4", items)
				}
			case e.Name == "job_submitted":
				submitted = true
			case e.Name == "job_done":
				finished = true
			}
		}
	}
	if !trace || !submitted || !finished {
		t.Errorf("flight recorder missing entries: trace=%v submitted=%v done=%v", trace, submitted, finished)
	}
}

// TestEventsRetry fails one item's first attempt and expects the stream
// to carry the retry (with attempt, epoch and backoff delay) before the
// eventual done.
func TestEventsRetry(t *testing.T) {
	pipe := setup(t)
	var failures atomic.Int64
	setFaultHook(t, func(f Fault) error {
		if f.Point == FaultItemStart && f.Item == "img-001" && f.Attempt == 1 {
			failures.Add(1)
			return errors.New("injected failure")
		}
		return nil
	})
	svc, _, _ := newService(t, pipe, fastCfg())
	defer closeService(t, svc)

	sn, err := svc.Submit(pathSpecs(writeCorpus(t, 3)))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := svc.Events(sn.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	var retried, doneAfter bool
	for _, ev := range collectEvents(t, sub) {
		switch ev.Type {
		case EventRetried:
			if ev.Item != "img-001" {
				t.Errorf("retry for %s, want img-001", ev.Item)
			}
			if ev.Attempt != 1 || ev.Error == "" || ev.DelayNS < 0 || ev.Epoch == 0 {
				t.Errorf("retry event = %+v", ev)
			}
			retried = true
		case EventDone:
			if ev.Item == "img-001" && retried {
				doneAfter = true
				if ev.Attempt != 2 {
					t.Errorf("done attempt = %d, want 2", ev.Attempt)
				}
			}
		}
	}
	if failures.Load() == 0 {
		t.Fatal("fault hook never fired")
	}
	if !retried || !doneAfter {
		t.Fatalf("retried=%v doneAfter=%v", retried, doneAfter)
	}
}

// TestEventsTerminalJob subscribes to an already finished job: the
// stream is exactly snapshot-then-EOF.
func TestEventsTerminalJob(t *testing.T) {
	pipe := setup(t)
	svc, _, _ := newService(t, pipe, fastCfg())
	defer closeService(t, svc)

	sn, err := svc.Submit(pathSpecs(writeCorpus(t, 2)))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, svc, sn.ID)

	// The hub closes when the scheduler exits, which can trail the
	// terminal snapshot by one kick; poll briefly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		sub, err := svc.Events(sn.ID, false)
		if err != nil {
			t.Fatal(err)
		}
		evs := collectEventsNoWait(t, sub)
		sub.Close()
		if len(evs) == 1 && evs[0].Type == EventSnapshot && evs[0].State == StateDone {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("events = %+v, want single terminal snapshot", evs)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// collectEventsNoWait drains buffered events and stops at EOF or a
// short timeout (for streams that may not close yet).
func collectEventsNoWait(t *testing.T, sub *Subscription) []Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	var evs []Event
	for {
		ev, err := sub.Next(ctx)
		if err != nil {
			return evs
		}
		evs = append(evs, ev)
	}
}

// TestEventsUnknownJob asks for a stream on a job that does not exist.
func TestEventsUnknownJob(t *testing.T) {
	pipe := setup(t)
	svc, _, _ := newService(t, pipe, fastCfg())
	defer closeService(t, svc)
	if _, err := svc.Events("no-such-job", false); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

// TestEventTruncationMarker exercises the slow-consumer path at the
// subscriber level: overflow drops the newest events, and the marker
// lands exactly at the gap once space reopens (or at the tail when the
// queue drains first).
func TestEventTruncationMarker(t *testing.T) {
	var h eventHub
	raw, _ := h.subscribe()
	sub := &Subscription{hub: &h, sub: raw}

	for i := 0; i < subBuffer+7; i++ {
		h.publish(Event{Type: EventHeartbeat, Job: "j", Index: i})
	}
	// Queue full: 7 newest dropped. Drain two, then publish again — the
	// marker must precede the fresh event.
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		ev, err := sub.Next(ctx)
		if err != nil || ev.Index != i {
			t.Fatalf("event %d: %+v, %v", i, ev, err)
		}
	}
	h.publish(Event{Type: EventCheckpoint, Job: "j"})
	var seen []Event
	for i := 0; i < subBuffer-2+2; i++ {
		ev, err := sub.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		seen = append(seen, ev)
	}
	marker, last := seen[len(seen)-2], seen[len(seen)-1]
	if marker.Type != EventTruncated || marker.Dropped != 7 {
		t.Fatalf("marker = %+v, want truncated{7}", marker)
	}
	if last.Type != EventCheckpoint {
		t.Fatalf("post-gap event = %+v, want checkpoint", last)
	}

	// Tail-gap variant: drop with nothing published after; Next reports
	// the gap in-band once the queue is empty.
	sub.Close()
	raw2, _ := h.subscribe()
	sub2 := &Subscription{hub: &h, sub: raw2}
	for i := 0; i < subBuffer+3; i++ {
		h.publish(Event{Type: EventHeartbeat, Job: "j", Index: i})
	}
	for i := 0; i < subBuffer; i++ {
		if _, err := sub2.Next(ctx); err != nil {
			t.Fatal(err)
		}
	}
	ev, err := sub2.Next(ctx)
	if err != nil || ev.Type != EventTruncated || ev.Dropped != 3 {
		t.Fatalf("tail marker = %+v, %v, want truncated{3}", ev, err)
	}
	h.close()
	if _, err := sub2.Next(ctx); !errors.Is(err, io.EOF) {
		t.Fatalf("after close: %v, want EOF", err)
	}
}

// TestSubmitterPropagation threads a request ID through SubmitRequest:
// it surfaces in snapshots but never reaches the results stream, whose
// bytes stay identical across submitters.
func TestSubmitterPropagation(t *testing.T) {
	pipe := setup(t)
	svc, _, _ := newService(t, pipe, fastCfg())
	defer closeService(t, svc)

	paths := writeCorpus(t, 2)
	sn, err := svc.SubmitRequest("req-abc123", pathSpecs(paths))
	if err != nil {
		t.Fatal(err)
	}
	if sn.Submitter != "req-abc123" {
		t.Fatalf("submitter = %q, want req-abc123", sn.Submitter)
	}
	waitDone(t, svc, sn.ID)
	if lines := resultLines(t, svc, sn.ID); strings.Contains(string(lines), "req-abc123") {
		t.Fatal("request ID leaked into the results stream")
	}

	// Anonymous submissions keep an empty submitter.
	sn2, err := svc.Submit(pathSpecs(paths))
	if err != nil {
		t.Fatal(err)
	}
	if sn2.Submitter != "" {
		t.Fatalf("submitter = %q, want empty", sn2.Submitter)
	}
	waitDone(t, svc, sn2.ID)
}
