package jobs

import "errors"

// FaultPoint names a seam where FaultHook is consulted.
type FaultPoint string

const (
	// FaultItemStart fires at the start of every item attempt, before the
	// picture is touched. The hook's return controls the attempt: nil
	// proceeds normally, ErrPanic panics inside the worker (exercising
	// the recovery path), ErrStall blocks the attempt until its deadline
	// or cancellation, and any other error fails the attempt immediately
	// (a decode error, a flaky filesystem).
	FaultItemStart FaultPoint = "item.start"
	// FaultHeartbeat fires before every lease extension; a non-nil return
	// skips the extension, simulating a worker whose heartbeats stopped —
	// the signal that triggers a lease reclaim.
	FaultHeartbeat FaultPoint = "heartbeat"
	// FaultJournal fires before every journal checkpoint; a non-nil
	// return fails the write (a full or read-only disk). The service
	// keeps running on in-memory state and retries at the next
	// transition.
	FaultJournal FaultPoint = "journal"
)

// Fault describes one hook invocation.
type Fault struct {
	Point   FaultPoint
	Job     string
	Item    string
	Attempt int
}

// FaultHook, when non-nil, is consulted at every fault point. It is the
// build-tag-free fault-injection seam the crash-safety tests drive:
// decode errors, worker panics, deadline stalls, dead heartbeats and
// journal write failures are all injected here, with no test-only code
// in the production paths. Set it only while no service is running.
var FaultHook func(Fault) error

// ErrPanic, returned from FaultHook at FaultItemStart, makes the worker
// panic; the attempt must be recovered and counted as a failure.
var ErrPanic = errors.New("jobs: injected panic")

// ErrStall, returned from FaultHook at FaultItemStart, blocks the
// attempt until its per-item deadline or the job's cancellation —
// deterministic stand-in for a translation that hangs.
var ErrStall = errors.New("jobs: injected stall")
