package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tdmagic/internal/core"
	"tdmagic/internal/eval"
	"tdmagic/internal/store"
	"tdmagic/internal/tdgen"
)

// The suite shares one small trained pipeline; training dominates the
// package's test time otherwise.
var (
	testOnce sync.Once
	testPipe *core.Pipeline
	testErr  error
)

func setup(t *testing.T) *core.Pipeline {
	t.Helper()
	testOnce.Do(func() {
		opts := eval.DefaultOptions()
		opts.TrainG1, opts.TrainG2, opts.TrainG3 = 10, 4, 4
		opts.Validation = 0
		testPipe, testErr = eval.TrainPipeline(opts)
	})
	if testErr != nil {
		t.Fatal(testErr)
	}
	return testPipe
}

// writeCorpus renders n synthetic diagrams as img-%03d.png files and
// returns their paths in name order.
func writeCorpus(t *testing.T, n int) []string {
	t.Helper()
	dir := t.TempDir()
	g := tdgen.NewSeeded(tdgen.DefaultConfig(tdgen.G1), 43)
	paths := make([]string, n)
	for i := 0; i < n; i++ {
		s, err := g.GenerateAt(i)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, fmt.Sprintf("img-%03d.png", i))
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Image.EncodePNG(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		paths[i] = p
	}
	return paths
}

// pathSpecs wraps corpus paths as submission specs.
func pathSpecs(paths []string) []ItemSpec {
	specs := make([]ItemSpec, len(paths))
	for i, p := range paths {
		specs[i] = ItemSpec{
			Name: strings.TrimSuffix(filepath.Base(p), filepath.Ext(p)),
			Path: p,
		}
	}
	return specs
}

// fastCfg returns a test config with tight timings so retries and leases
// play out in milliseconds.
func fastCfg() Config {
	return Config{
		Workers:     2,
		LeaseTTL:    2 * time.Second,
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
		BackoffCap:  5 * time.Millisecond,
		Timeout:     30 * time.Second,
	}
}

// newService opens a service over fresh temp store and journal dirs.
func newService(t *testing.T, pipe *core.Pipeline, cfg Config) (*Service, string, string) {
	t.Helper()
	storeDir, jobsDir := t.TempDir(), t.TempDir()
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := Open(jobsDir, pipe, st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc, storeDir, jobsDir
}

// reopen opens a second service generation over existing dirs.
func reopen(t *testing.T, pipe *core.Pipeline, storeDir, jobsDir string, cfg Config) *Service {
	t.Helper()
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := Open(jobsDir, pipe, st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// closeService drains a service with a bounded deadline.
func closeService(t *testing.T, svc *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// waitDone blocks until the job is terminal and returns its snapshot.
func waitDone(t *testing.T, svc *Service, id string) Snapshot {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	sn, err := svc.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait %s: %v (state %s)", id, err, sn.State)
	}
	return sn
}

// resultLines streams a job's results and returns them as NDJSON bytes —
// the exact encoding the HTTP results endpoint serves, so byte equality
// here is byte equality on the wire.
func resultLines(t *testing.T, svc *Service, id string) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := svc.Results(id, func(r ItemResult) error { return enc.Encode(r) }); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// setFaultHook installs a hook for the duration of the test. Hooks must
// be installed before the service under test opens and cleared only
// after it closes, so tests gate behaviour through atomics the hook
// closure reads rather than swapping the hook mid-run.
func setFaultHook(t *testing.T, hook func(Fault) error) {
	t.Helper()
	FaultHook = hook
	t.Cleanup(func() { FaultHook = nil })
}

// TestJobLifecycle submits a small corpus and follows it to done: every
// item translated exactly once, results streamed in submission order.
func TestJobLifecycle(t *testing.T) {
	pipe := setup(t)
	svc, _, _ := newService(t, pipe, fastCfg())
	defer closeService(t, svc)

	paths := writeCorpus(t, 4)
	sn, err := svc.Submit(pathSpecs(paths))
	if err != nil {
		t.Fatal(err)
	}
	if sn.Stats.Total != 4 {
		t.Fatalf("submitted %d items, want 4", sn.Stats.Total)
	}
	final := waitDone(t, svc, sn.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (%s), want done", final.State, final.Error)
	}
	if final.Stats.Done != 4 || final.Stats.Misses != 4 || final.Stats.Hits != 0 {
		t.Fatalf("stats = %+v", final.Stats)
	}
	var names []string
	if err := svc.Results(sn.ID, func(r ItemResult) error {
		if r.Error != "" || r.Spec == "" {
			t.Errorf("item %d: error=%q spec empty=%v", r.Index, r.Error, r.Spec == "")
		}
		names = append(names, r.Name)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, p := range paths {
		want := strings.TrimSuffix(filepath.Base(p), ".png")
		if names[i] != want {
			t.Errorf("result %d = %s, want %s", i, names[i], want)
		}
	}

	// A second identical submission answers entirely from the store.
	sn2, err := svc.Submit(pathSpecs(paths))
	if err != nil {
		t.Fatal(err)
	}
	final2 := waitDone(t, svc, sn2.ID)
	if final2.Stats.Hits != 4 || final2.Stats.Misses != 0 {
		t.Fatalf("warm stats = %+v, want all hits", final2.Stats)
	}
	if a, b := resultLines(t, svc, sn.ID), resultLines(t, svc, sn2.ID); !bytes.Equal(a, b) {
		t.Fatal("warm job results differ from cold job results")
	}
}

// TestWorkerInvarianceByteIdentical pins the determinism contract at the
// job level: the streamed NDJSON results are byte-identical for any
// worker count, each against a fresh store.
func TestWorkerInvarianceByteIdentical(t *testing.T) {
	pipe := setup(t)
	paths := writeCorpus(t, 6)
	var base []byte
	for _, workers := range []int{1, 2, 7, runtime.GOMAXPROCS(0)} {
		cfg := fastCfg()
		cfg.Workers = workers
		svc, _, _ := newService(t, pipe, cfg)
		sn, err := svc.Submit(pathSpecs(paths))
		if err != nil {
			t.Fatal(err)
		}
		if got := waitDone(t, svc, sn.ID); got.State != StateDone {
			t.Fatalf("workers=%d: state %s (%s)", workers, got.State, got.Error)
		}
		lines := resultLines(t, svc, sn.ID)
		closeService(t, svc)
		if base == nil {
			base = lines
			continue
		}
		if !bytes.Equal(lines, base) {
			t.Errorf("workers=%d: results differ from workers=1", workers)
		}
	}
}

// TestRetryThenSuccess injects transient failures into one item's first
// two attempts and requires the third to succeed, with the retries
// journaled and the backoff schedule respected.
func TestRetryThenSuccess(t *testing.T) {
	pipe := setup(t)
	paths := writeCorpus(t, 2)
	var tries atomic.Int64
	setFaultHook(t, func(f Fault) error {
		if f.Point == FaultItemStart && f.Item == "img-000" {
			if tries.Add(1) <= 2 {
				return errors.New("injected transient failure")
			}
		}
		return nil
	})
	svc, _, _ := newService(t, pipe, fastCfg())
	defer closeService(t, svc)
	sn, err := svc.Submit(pathSpecs(paths))
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, svc, sn.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (%s), want done", final.State, final.Error)
	}
	if final.Stats.Retries != 2 {
		t.Errorf("retries = %d, want 2", final.Stats.Retries)
	}
	got, ok := svc.Get(sn.ID, true)
	if !ok {
		t.Fatal("job vanished")
	}
	if got.Items[0].Attempts != 3 {
		t.Errorf("item attempts = %d, want 3", got.Items[0].Attempts)
	}
	if got.Items[1].Attempts != 1 {
		t.Errorf("healthy item attempts = %d, want 1", got.Items[1].Attempts)
	}
}

// TestPanicRecovered injects a panic into an item's first attempt: the
// worker must recover it into a failed attempt and the retry succeed.
func TestPanicRecovered(t *testing.T) {
	pipe := setup(t)
	paths := writeCorpus(t, 1)
	setFaultHook(t, func(f Fault) error {
		if f.Point == FaultItemStart && f.Attempt == 1 {
			return ErrPanic
		}
		return nil
	})
	svc, _, _ := newService(t, pipe, fastCfg())
	defer closeService(t, svc)
	sn, err := svc.Submit(pathSpecs(paths))
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, svc, sn.ID)
	if final.State != StateDone || final.Stats.Retries != 1 {
		t.Fatalf("state=%s retries=%d, want done/1", final.State, final.Stats.Retries)
	}
}

// TestStallQuarantine injects a stall into every attempt of one item
// under a tight per-item deadline: each attempt must die at the deadline
// and the item quarantine with its diagnostics after MaxAttempts, while
// the healthy item completes and the job reaches failed — not wedged.
func TestStallQuarantine(t *testing.T) {
	pipe := setup(t)
	paths := writeCorpus(t, 2)
	setFaultHook(t, func(f Fault) error {
		if f.Point == FaultItemStart && f.Item == "img-001" {
			return ErrStall
		}
		return nil
	})
	cfg := fastCfg()
	cfg.MaxAttempts = 2
	cfg.Timeout = 150 * time.Millisecond
	svc, _, _ := newService(t, pipe, cfg)
	defer closeService(t, svc)
	sn, err := svc.Submit(pathSpecs(paths))
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, svc, sn.ID)
	if final.State != StateFailed {
		t.Fatalf("state = %s, want failed", final.State)
	}
	if final.Stats.Done != 1 || final.Stats.Quarantined != 1 {
		t.Fatalf("stats = %+v", final.Stats)
	}
	if !strings.Contains(final.Error, "1 of 2 items quarantined") {
		t.Errorf("job error = %q", final.Error)
	}
	seen := 0
	if err := svc.Results(sn.ID, func(r ItemResult) error {
		seen++
		switch r.Name {
		case "img-000":
			if r.Error != "" || r.Spec == "" {
				t.Errorf("healthy item: error=%q", r.Error)
			}
		case "img-001":
			if !strings.Contains(r.Error, "deadline") {
				t.Errorf("quarantined item error = %q, want a deadline error", r.Error)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 2 {
		t.Fatalf("streamed %d results, want 2", seen)
	}
}

// TestDecodeErrorQuarantine submits a poisoned corpus entry — a file
// that is not a PNG — and requires it quarantined with a decode error
// while every healthy item completes.
func TestDecodeErrorQuarantine(t *testing.T) {
	pipe := setup(t)
	paths := writeCorpus(t, 2)
	bad := filepath.Join(filepath.Dir(paths[0]), "poison.png")
	if err := os.WriteFile(bad, []byte("this is not a png"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg()
	cfg.MaxAttempts = 2
	svc, _, _ := newService(t, pipe, cfg)
	defer closeService(t, svc)
	sn, err := svc.Submit(append(pathSpecs(paths), ItemSpec{Name: "poison", Path: bad}))
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, svc, sn.ID)
	if final.State != StateFailed || final.Stats.Quarantined != 1 || final.Stats.Done != 2 {
		t.Fatalf("state=%s stats=%+v", final.State, final.Stats)
	}
	got, _ := svc.Get(sn.ID, true)
	q := got.Items[2]
	if q.State != ItemQuarantined || q.Attempts != 2 || q.Error == "" {
		t.Fatalf("poisoned item = %+v", q)
	}
}

// TestLeaseReclaim kills an attempt the slow way: its heartbeats are
// suppressed and it stalls past the lease, so the scheduler must reclaim
// the item from the presumed-dead worker, fence the worker's late
// report, and the retry must complete the item.
func TestLeaseReclaim(t *testing.T) {
	pipe := setup(t)
	paths := writeCorpus(t, 1)
	setFaultHook(t, func(f Fault) error {
		switch f.Point {
		case FaultHeartbeat:
			return errors.New("heartbeats suppressed")
		case FaultItemStart:
			if f.Attempt == 1 {
				return ErrStall
			}
		}
		return nil
	})
	cfg := fastCfg()
	cfg.LeaseTTL = 80 * time.Millisecond
	cfg.Heartbeat = 20 * time.Millisecond
	cfg.Timeout = 700 * time.Millisecond
	svc, _, _ := newService(t, pipe, cfg)
	defer closeService(t, svc)
	sn, err := svc.Submit(pathSpecs(paths))
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, svc, sn.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (%s), want done", final.State, final.Error)
	}
	if final.Stats.Reclaims < 1 {
		t.Errorf("reclaims = %d, want >= 1", final.Stats.Reclaims)
	}
	got, _ := svc.Get(sn.ID, true)
	if got.Items[0].State != ItemDone {
		t.Fatalf("item = %+v", got.Items[0])
	}
}

// TestJournalFaultsDoNotLoseWork fails every journal checkpoint once the
// job is submitted: the service must keep running on in-memory state and
// finish the job, and a reopened service — resuming from the stale
// journal — must converge to the same results entirely from the store.
func TestJournalFaultsDoNotLoseWork(t *testing.T) {
	pipe := setup(t)
	paths := writeCorpus(t, 3)
	var jfail atomic.Bool
	setFaultHook(t, func(f Fault) error {
		if f.Point == FaultJournal && jfail.Load() {
			return errors.New("injected disk-full")
		}
		return nil
	})
	svc, storeDir, jobsDir := newService(t, pipe, fastCfg())
	sn, err := svc.Submit(pathSpecs(paths))
	if err != nil {
		t.Fatal(err)
	}
	jfail.Store(true)
	final := waitDone(t, svc, sn.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (%s), want done", final.State, final.Error)
	}
	if svc.m.journalErrs.Value() == 0 {
		t.Fatal("no journal errors recorded despite the fault")
	}
	want := resultLines(t, svc, sn.ID)
	closeService(t, svc)
	jfail.Store(false)

	// The stale on-disk journal is behind reality; the store is not. The
	// resumed job must replay every item as a hit.
	svc2 := reopen(t, pipe, storeDir, jobsDir, fastCfg())
	defer closeService(t, svc2)
	final2 := waitDone(t, svc2, sn.ID)
	if final2.State != StateDone {
		t.Fatalf("resumed state = %s (%s)", final2.State, final2.Error)
	}
	if final2.Stats.Misses != 0 {
		t.Errorf("resumed job retranslated %d items; all were in the store", final2.Stats.Misses)
	}
	if got := resultLines(t, svc2, sn.ID); !bytes.Equal(got, want) {
		t.Error("resumed results differ from the original run")
	}
}

// TestDrainResume closes the service mid-job and reopens it: the
// restarted generation must resume the job exactly — no lost items, no
// retranslation of anything whose artifact already landed — and stream
// results byte-identical to an uninterrupted cold run.
func TestDrainResume(t *testing.T) {
	pipe := setup(t)
	paths := writeCorpus(t, 8)

	cfg := fastCfg()
	cfg.Throttle = 25 * time.Millisecond
	svc, storeDir, jobsDir := newService(t, pipe, cfg)
	sn, err := svc.Submit(pathSpecs(paths))
	if err != nil {
		t.Fatal(err)
	}
	// Let it make partial progress, then drain.
	deadline := time.Now().Add(60 * time.Second)
	for {
		got, _ := svc.Get(sn.ID, false)
		if got.Stats.Done >= 2 || got.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no progress before drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	closeService(t, svc)

	rec, err := loadRecord(filepath.Join(jobsDir, sn.ID))
	if err != nil {
		t.Fatal(err)
	}
	doneAtClose := rec.stats().Done
	if rec.State.Terminal() && rec.stats().Done < len(paths) {
		t.Fatalf("drained mid-run into terminal state %s", rec.State)
	}

	resumed := reopen(t, pipe, storeDir, jobsDir, fastCfg())
	defer closeService(t, resumed)
	final := waitDone(t, resumed, sn.ID)
	if final.State != StateDone || final.Stats.Done != len(paths) {
		t.Fatalf("resumed: state=%s stats=%+v", final.State, final.Stats)
	}
	// The hit/miss counters are cumulative across the journal's life: a
	// graceful drain checkpoints exactly, so each item is translated
	// exactly once across the two generations — total misses equal the
	// corpus, and nothing is redone (which would inflate them).
	if final.Stats.Misses != len(paths) || final.Stats.Hits != 0 {
		t.Errorf("misses=%d hits=%d across drain+resume, want %d/0 (done at close: %d)",
			final.Stats.Misses, final.Stats.Hits, len(paths), doneAtClose)
	}
	got := resultLines(t, resumed, sn.ID)

	cold, _, _ := newService(t, pipe, fastCfg())
	defer closeService(t, cold)
	csn, err := cold.Submit(pathSpecs(paths))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, cold, csn.ID)
	if want := resultLines(t, cold, csn.ID); !bytes.Equal(got, want) {
		t.Error("resumed results differ from an uninterrupted cold run")
	}
}

// TestTornJournalFallsBack corrupts the current journal generation of a
// finished job and requires the reopened service to fall back to
// job.json.prev and converge; with both generations corrupt the job must
// surface as failed rather than vanish.
func TestTornJournalFallsBack(t *testing.T) {
	pipe := setup(t)
	paths := writeCorpus(t, 2)
	svc, storeDir, jobsDir := newService(t, pipe, fastCfg())
	sn, err := svc.Submit(pathSpecs(paths))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, svc, sn.ID)
	closeService(t, svc)

	dir := filepath.Join(jobsDir, sn.ID)
	// A torn write: the current generation is half a JSON document.
	if err := os.WriteFile(filepath.Join(dir, journalFile), []byte(`{"id":"`), 0o644); err != nil {
		t.Fatal(err)
	}
	svc2 := reopen(t, pipe, storeDir, jobsDir, fastCfg())
	if _, ok := svc2.Get(sn.ID, false); !ok {
		t.Fatal("job lost after a torn journal write")
	}
	final := waitDone(t, svc2, sn.ID)
	// The previous generation already records both items done with their
	// two cumulative misses; recovery must not redo any work on top.
	if final.State != StateDone || final.Stats.Misses != 2 || final.Stats.Hits != 0 {
		t.Fatalf("recovered job: state=%s stats=%+v (want done, no extra work)", final.State, final.Stats)
	}
	closeService(t, svc2)

	// Both generations corrupt: the job parks as failed with a diagnosis.
	for _, name := range []string{journalFile, journalPrev} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	svc3 := reopen(t, pipe, storeDir, jobsDir, fastCfg())
	defer closeService(t, svc3)
	got, ok := svc3.Get(sn.ID, false)
	if !ok {
		t.Fatal("job vanished with both journal generations corrupt")
	}
	if got.State != StateFailed || !strings.Contains(got.Error, "journal unrecoverable") {
		t.Fatalf("state=%s error=%q", got.State, got.Error)
	}
}

// TestSubmitValidation pins the submission guardrails.
func TestSubmitValidation(t *testing.T) {
	pipe := setup(t)
	cfg := fastCfg()
	cfg.MaxItems = 2
	svc, _, _ := newService(t, pipe, cfg)
	defer closeService(t, svc)

	cases := []struct {
		name  string
		specs []ItemSpec
	}{
		{"empty", nil},
		{"traversal name", []ItemSpec{{Name: "../escape", Path: "x.png"}}},
		{"dot name", []ItemSpec{{Name: "..", Path: "x.png"}}},
		{"duplicate names", []ItemSpec{{Name: "a", Path: "x.png"}, {Name: "a", Path: "y.png"}}},
		{"too many items", []ItemSpec{{Name: "a", Path: "x"}, {Name: "b", Path: "y"}, {Name: "c", Path: "z"}}},
	}
	for _, tc := range cases {
		if _, err := svc.Submit(tc.specs); err == nil {
			t.Errorf("%s: submission accepted", tc.name)
		}
	}
}

// TestCancel stops a running job and requires a terminal cancelled state
// with no further progress and ErrRunning semantics replaced by a
// results stream that marks unexecuted items.
func TestCancel(t *testing.T) {
	pipe := setup(t)
	paths := writeCorpus(t, 6)
	cfg := fastCfg()
	cfg.Workers = 1
	cfg.Throttle = 30 * time.Millisecond
	svc, _, _ := newService(t, pipe, cfg)
	defer closeService(t, svc)
	sn, err := svc.Submit(pathSpecs(paths))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Results(sn.ID, func(ItemResult) error { return nil }); !errors.Is(err, ErrRunning) {
		t.Fatalf("results on a live job = %v, want ErrRunning", err)
	}
	if _, err := svc.Cancel(sn.ID); err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, svc, sn.ID)
	if final.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", final.State)
	}
	unexecuted := 0
	if err := svc.Results(sn.ID, func(r ItemResult) error {
		if strings.Contains(r.Error, "not executed") {
			unexecuted++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if unexecuted == 0 {
		t.Error("cancelled mid-run but every item reports executed")
	}
	if _, err := svc.Cancel("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel of unknown job = %v, want ErrNotFound", err)
	}
}

// TestSubmitCancelRace hammers concurrent submissions, cancellations and
// status reads; run under -race this pins the locking discipline.
func TestSubmitCancelRace(t *testing.T) {
	pipe := setup(t)
	paths := writeCorpus(t, 2)
	cfg := fastCfg()
	cfg.Throttle = 5 * time.Millisecond
	svc, _, _ := newService(t, pipe, cfg)
	defer closeService(t, svc)

	const jobsN = 8
	ids := make([]string, jobsN)
	var wg sync.WaitGroup
	for i := 0; i < jobsN; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sn, err := svc.Submit(pathSpecs(paths))
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = sn.ID
			if i%2 == 0 {
				if _, err := svc.Cancel(sn.ID); err != nil {
					t.Error(err)
				}
			}
			svc.Get(sn.ID, true)
			svc.List()
		}(i)
	}
	wg.Wait()
	for i, id := range ids {
		if id == "" {
			continue
		}
		final := waitDone(t, svc, id)
		if !final.State.Terminal() {
			t.Errorf("job %d not terminal: %s", i, final.State)
		}
		if i%2 == 1 && final.State != StateDone {
			t.Errorf("uncancelled job %d = %s (%s)", i, final.State, final.Error)
		}
	}
}

// TestBackoffDeterministic pins the retry schedule: pure in its inputs,
// monotonically growing to the cap, and decorrelated across items.
func TestBackoffDeterministic(t *testing.T) {
	base, cap := 100*time.Millisecond, 2*time.Second
	for attempt := 1; attempt <= 8; attempt++ {
		a := Backoff(base, cap, "job-1", "item-a", attempt)
		b := Backoff(base, cap, "job-1", "item-a", attempt)
		if a != b {
			t.Fatalf("attempt %d: schedule not deterministic (%v vs %v)", attempt, a, b)
		}
		exp := base << (attempt - 1)
		if exp > cap {
			exp = cap
		}
		if a < exp || a > exp+exp/2 {
			t.Errorf("attempt %d: %v outside [%v, %v]", attempt, a, exp, exp+exp/2)
		}
	}
	// Jitter must decorrelate distinct items somewhere in the schedule.
	diff := false
	for attempt := 1; attempt <= 8 && !diff; attempt++ {
		diff = Backoff(base, cap, "job-1", "item-a", attempt) != Backoff(base, cap, "job-1", "item-b", attempt)
	}
	if !diff {
		t.Error("distinct items share an identical backoff schedule — jitter dead")
	}
}

// TestConfigMismatchRefused reopens a journal directory with a pipeline
// whose config hash differs: the unfinished job must fail loudly, not
// silently mix artifacts from two models.
func TestConfigMismatchRefused(t *testing.T) {
	pipe := setup(t)
	paths := writeCorpus(t, 2)
	cfg := fastCfg()
	cfg.Throttle = 50 * time.Millisecond
	svc, storeDir, jobsDir := newService(t, pipe, cfg)
	sn, err := svc.Submit(pathSpecs(paths))
	if err != nil {
		t.Fatal(err)
	}
	closeService(t, svc) // drain mid-run: job stays resumable

	rec, err := loadRecord(filepath.Join(jobsDir, sn.ID))
	if err != nil {
		t.Fatal(err)
	}
	if rec.State.Terminal() {
		t.Skip("job finished before the drain; nothing to refuse")
	}
	// Forge a config mismatch by rewriting the journaled hash.
	rec.Config = strings.Repeat("ab", 32)
	if err := writeRecord(filepath.Join(jobsDir, sn.ID), rec); err != nil {
		t.Fatal(err)
	}
	svc2 := reopen(t, pipe, storeDir, jobsDir, fastCfg())
	defer closeService(t, svc2)
	got, ok := svc2.Get(sn.ID, false)
	if !ok {
		t.Fatal("job vanished")
	}
	if got.State != StateFailed || !strings.Contains(got.Error, "configuration changed") {
		t.Fatalf("state=%s error=%q", got.State, got.Error)
	}
}

// TestLoggerNoDeadlock runs the full lifecycle with a logger attached.
// The "job finished" and "job cancelled" lines are emitted under j.mu;
// before the snapshotLocked split they re-locked it, wedging the
// scheduler goroutine with the job mutex held — exactly tdserve's
// default (non -quiet) configuration, which no other test exercises.
func TestLoggerNoDeadlock(t *testing.T) {
	pipe := setup(t)
	paths := writeCorpus(t, 3)
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	cfg := fastCfg()
	cfg.Logger = logger
	svc, _, _ := newService(t, pipe, cfg)
	defer closeService(t, svc)
	sn, err := svc.Submit(pathSpecs(paths))
	if err != nil {
		t.Fatal(err)
	}
	final, err := svc.Wait(ctx, sn.ID)
	if err != nil {
		t.Fatalf("wait with logger attached: %v — scheduler deadlocked?", err)
	}
	if final.State != StateDone {
		t.Fatalf("state = %s (%s)", final.State, final.Error)
	}

	// The cancel path logs under the same lock discipline.
	cfg2 := fastCfg()
	cfg2.Workers = 1
	cfg2.Throttle = 20 * time.Millisecond
	cfg2.Logger = logger
	svc2, _, _ := newService(t, pipe, cfg2)
	defer closeService(t, svc2)
	sn2, err := svc2.Submit(pathSpecs(paths))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc2.Cancel(sn2.ID); err != nil {
		t.Fatal(err)
	}
	final2, err := svc2.Wait(ctx, sn2.ID)
	if err != nil {
		t.Fatalf("wait after logged cancel: %v — scheduler deadlocked?", err)
	}
	if final2.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", final2.State)
	}
}

// TestCorruptJournalReleasesWaiters corrupts both journal generations:
// reopen parks the job failed, and Wait must return immediately — the
// terminal channel closes even though the job never gets a scheduler.
func TestCorruptJournalReleasesWaiters(t *testing.T) {
	pipe := setup(t)
	paths := writeCorpus(t, 2)
	svc, storeDir, jobsDir := newService(t, pipe, fastCfg())
	sn, err := svc.Submit(pathSpecs(paths))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, svc, sn.ID)
	closeService(t, svc)

	for _, name := range []string{journalFile, journalPrev} {
		if err := os.WriteFile(filepath.Join(jobsDir, sn.ID, name), []byte(`{"torn`), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	svc2 := reopen(t, pipe, storeDir, jobsDir, fastCfg())
	defer closeService(t, svc2)
	got, ok := svc2.Get(sn.ID, false)
	if !ok {
		t.Fatal("job vanished")
	}
	if got.State != StateFailed || !strings.Contains(got.Error, "journal unrecoverable") {
		t.Fatalf("state=%s error=%q", got.State, got.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := svc2.Wait(ctx, sn.ID); err != nil {
		t.Fatalf("Wait on a journal-corrupt job blocked: %v", err)
	}
}
