package jobs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"tdmagic/internal/core"
	"tdmagic/internal/metrics"
	"tdmagic/internal/store"
)

// The SIGKILL crash test re-execs the test binary as a worker process:
// TestMain diverts to childMain when the marker env var is set, so the
// child runs the job service for real — separate address space, real
// kill -9, no cooperation — while the parent watches its journal.
const (
	childEnv      = "TDJOBS_KILL_CHILD"
	childModel    = "TDJOBS_MODEL"
	childStore    = "TDJOBS_STORE"
	childRoot     = "TDJOBS_ROOT"
	childCorpus   = "TDJOBS_CORPUS"
	childThrottle = "TDJOBS_THROTTLE"
	childSubmit   = "TDJOBS_SUBMIT"
)

func TestMain(m *testing.M) {
	if os.Getenv(childEnv) != "" {
		childMain()
		return
	}
	os.Exit(m.Run())
}

// childMain is the worker process: open the shared store and journal
// root, submit the corpus (first generation) or resume whatever the
// journal holds (second generation), wait for the job, and report how
// many translations this process actually executed.
func childMain() {
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(1)
	}
	pipe, err := core.LoadFile(os.Getenv(childModel))
	if err != nil {
		fail(err)
	}
	reg := metrics.NewRegistry()
	pipe.Metrics = core.NewPipelineMetrics(reg)
	st, err := store.Open(os.Getenv(childStore))
	if err != nil {
		fail(err)
	}
	throttle, _ := time.ParseDuration(os.Getenv(childThrottle))
	svc, err := Open(os.Getenv(childRoot), pipe, st, Config{
		Workers:     2,
		BackoffBase: time.Millisecond,
		BackoffCap:  5 * time.Millisecond,
		Throttle:    throttle,
	})
	if err != nil {
		fail(err)
	}
	var id string
	if os.Getenv(childSubmit) == "1" {
		entries, err := os.ReadDir(os.Getenv(childCorpus))
		if err != nil {
			fail(err)
		}
		var specs []ItemSpec
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), ".png") {
				continue
			}
			specs = append(specs, ItemSpec{
				Name: strings.TrimSuffix(e.Name(), ".png"),
				Path: filepath.Join(os.Getenv(childCorpus), e.Name()),
			})
		}
		sn, err := svc.Submit(specs)
		if err != nil {
			fail(err)
		}
		id = sn.ID
	} else {
		list := svc.List()
		if len(list) != 1 {
			fail(fmt.Errorf("resumed %d jobs, want 1", len(list)))
		}
		id = list[0].ID
	}
	fmt.Printf("job=%s\n", id)
	sn, err := svc.Wait(context.Background(), id)
	if err != nil {
		fail(err)
	}
	// Translations this process ran — the parent asserts the resumed
	// generation redid only the items the journal did not show done.
	fmt.Printf("state=%s translated=%d\n", sn.State, pipe.Metrics.Translations.Value())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = svc.Close(ctx)
	os.Exit(0)
}

// childCmd builds a child worker invocation of this test binary.
func childCmd(t *testing.T, env map[string]string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), childEnv+"=1")
	for k, v := range env {
		cmd.Env = append(cmd.Env, k+"="+v)
	}
	cmd.Stderr = os.Stderr
	return cmd
}

// TestKillNineResume is the end-to-end crash-safety proof: a real child
// process running a throttled job is SIGKILLed mid-run, a second child
// resumes the same journal and store, and the parent asserts that (a)
// the resumed process retranslated only items the journal did not show
// done at the kill, and (b) the final results are byte-identical to an
// uninterrupted cold run of the same corpus.
func TestKillNineResume(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test skipped in -short mode")
	}
	pipe := setup(t)
	model := filepath.Join(t.TempDir(), "model.gob")
	if err := pipe.SaveFile(model); err != nil {
		t.Fatal(err)
	}
	paths := writeCorpus(t, 10)
	corpus := filepath.Dir(paths[0])
	storeDir, jobsDir := t.TempDir(), t.TempDir()

	env := map[string]string{
		childModel:    model,
		childStore:    storeDir,
		childRoot:     jobsDir,
		childCorpus:   corpus,
		childThrottle: "60ms",
		childSubmit:   "1",
	}
	first := childCmd(t, env)
	stdout, err := first.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	var id string
	for sc.Scan() {
		if v, ok := strings.CutPrefix(sc.Text(), "job="); ok {
			id = v
			break
		}
	}
	if id == "" {
		first.Process.Kill()
		first.Wait()
		t.Fatal("child never announced its job")
	}

	// Watch the journal until a few items are done, then kill -9. The
	// journal is written by atomic rename, so a read mid-checkpoint sees
	// the previous complete generation — retry handles the rename gap.
	jobDir := filepath.Join(jobsDir, id)
	doneAtKill := 0
	deadline := time.Now().Add(120 * time.Second)
	for doneAtKill < 3 {
		if time.Now().After(deadline) {
			first.Process.Kill()
			first.Wait()
			t.Fatal("child made no progress")
		}
		if rec, err := loadRecord(jobDir); err == nil {
			doneAtKill = rec.stats().Done
			if rec.State.Terminal() {
				first.Wait()
				t.Skip("job finished before the kill; throttle too low for this machine")
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := first.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	first.Wait()

	// Second generation: same store, same journal, no throttle.
	env[childThrottle] = "0"
	env[childSubmit] = ""
	second := childCmd(t, env)
	out, err := second.Output()
	if err != nil {
		t.Fatalf("resume child: %v\n%s", err, out)
	}
	var state string
	var translated int
	for _, line := range strings.Split(string(out), "\n") {
		if strings.HasPrefix(line, "state=") {
			if _, err := fmt.Sscanf(line, "state=%s translated=%d", &state, &translated); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
		}
	}
	if state != string(StateDone) {
		t.Fatalf("resumed job state = %q, want done\n%s", state, out)
	}
	// The resume invariant: items the journal showed done at the kill are
	// never retranslated (their artifacts answer from the store). Items
	// claimed-but-unfinished at the kill may legitimately rerun.
	if max := len(paths) - doneAtKill; translated > max {
		t.Errorf("resumed process translated %d items, want <= %d (done at kill: %d)",
			translated, max, doneAtKill)
	}
	if translated == 0 {
		t.Error("resumed process translated nothing; the kill window never opened")
	}

	// Byte-identical proof: stream the resumed job's results and compare
	// against an uninterrupted in-process run over a fresh store.
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := Open(jobsDir, pipe, st, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer closeService(t, svc)
	got := resultLines(t, svc, id)

	cold, _, _ := newService(t, pipe, fastCfg())
	defer closeService(t, cold)
	csn, err := cold.Submit(pathSpecs(paths))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, cold, csn.ID)
	want := resultLines(t, cold, csn.ID)

	// The streams may differ in job-independent framing only if the item
	// sets diverge — normalise nothing, require bytes.
	if !bytes.Equal(stripIndexes(t, got), stripIndexes(t, want)) {
		t.Error("crash-resumed results differ from an uninterrupted run")
	}
	if !bytes.Equal(got, want) {
		t.Error("crash-resumed result stream is not byte-identical to the cold run")
	}
}

// stripIndexes re-encodes a result stream without its index fields — a
// diagnostic aid distinguishing "different specs" from "different
// framing" when the byte-identity check fails.
func stripIndexes(t *testing.T, ndjson []byte) []byte {
	t.Helper()
	var out bytes.Buffer
	for _, line := range bytes.Split(bytes.TrimSpace(ndjson), []byte("\n")) {
		var r ItemResult
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatal(err)
		}
		r.Index = 0
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		out.Write(b)
		out.WriteByte('\n')
	}
	return out.Bytes()
}
