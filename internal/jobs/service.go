package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"tdmagic/internal/batch"
	"tdmagic/internal/core"
	"tdmagic/internal/diag"
	"tdmagic/internal/metrics"
	"tdmagic/internal/obs"
	"tdmagic/internal/parallel"
	"tdmagic/internal/store"
)

// Config tunes the job service. The zero value of every field selects a
// sensible default.
type Config struct {
	// Workers bounds concurrently executing item translations across all
	// jobs (<= 0 means GOMAXPROCS).
	Workers int
	// LeaseTTL is how long a claimed item stays owned without a
	// heartbeat before the scheduler reclaims it (default 30s).
	LeaseTTL time.Duration
	// Heartbeat is the lease-extension interval (default LeaseTTL/3).
	Heartbeat time.Duration
	// MaxAttempts quarantines an item after this many failed attempts
	// (default 3).
	MaxAttempts int
	// BackoffBase and BackoffCap shape the retry schedule: delay =
	// min(BackoffCap, BackoffBase<<(attempt-1)) plus deterministic jitter
	// (defaults 250ms / 15s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Timeout bounds each item attempt's wall clock (default 30s).
	Timeout time.Duration
	// Throttle pauses before each attempt — a rate limit for shared
	// replicas, and the knob the crash tests use to widen the kill
	// window (default 0).
	Throttle time.Duration
	// MaxItems caps a single job's item count (default 16384).
	MaxItems int
	// Trace attaches a span trace to every job: a "job" root span with
	// one "job.item" child per attempt (plus the pipeline's stage
	// spans), carrying lease extensions, backoff sleeps, retries and
	// quarantines as span events. Off by default — a 15k-item job's
	// trace is real memory; the flight recorder truncates on capture.
	Trace bool
	// Flight, when non-nil, receives job lifecycle events and (with
	// Trace) each finished job's trace, keyed by the job ID, so
	// GET /debug/flight?request_id=<job> explains a job after the fact.
	Flight *obs.Recorder
	// Registry receives the tdjobs_ metrics; nil creates a private one.
	Registry *metrics.Registry
	// Logger receives job lifecycle events; nil disables logging.
	Logger *slog.Logger
}

func (c *Config) applyDefaults() {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 30 * time.Second
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = c.LeaseTTL / 3
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 250 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 15 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxItems <= 0 {
		c.MaxItems = 16384
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
}

// Exported service errors.
var (
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrRunning reports a results request against a non-terminal job.
	ErrRunning = errors.New("jobs: job still running")
	// ErrClosed reports a submission against a draining service.
	ErrClosed = errors.New("jobs: service closed")
)

// serviceMetrics bundles the tdjobs_ series.
type serviceMetrics struct {
	submitted   *metrics.Counter
	itemsDone   *metrics.Counter
	quarantined *metrics.Counter
	retries     *metrics.Counter
	reclaims    *metrics.Counter
	hits        *metrics.Counter
	misses      *metrics.Counter
	journalErrs *metrics.Counter
	jobsActive  *metrics.Gauge
	inflight    *metrics.Gauge
	itemSeconds *metrics.Histogram
}

// Service is the durable job engine. Open one over a store-backed
// pipeline, Submit jobs, and restart the process at will: unfinished
// jobs resume from their journals with only incomplete items re-claimed.
// All methods are safe for concurrent use.
type Service struct {
	root    string
	pipe    *core.Pipeline
	st      *store.Store
	cfg     Config
	cfgHash store.Hash

	sem chan struct{}

	mu     sync.Mutex
	jobs   map[string]*job
	closed bool
	drain  chan struct{}
	wg     sync.WaitGroup

	m serviceMetrics
}

// job is one tracked job: the journaled record plus the in-memory
// scheduling state (fencing epochs, in-flight count, wake plumbing).
type job struct {
	svc *Service
	id  string
	dir string

	mu       sync.Mutex
	rec      Record
	epoch    []uint64 // per-item fencing token, bumped at claim and reclaim
	inflight int
	dirty    bool // last journal write failed; retry at next checkpoint
	draining bool

	ctx      context.Context
	cancel   context.CancelFunc
	trace    *obs.Trace
	span     *obs.Span     // "job" root span; nil unless Config.Trace
	resumed  bool          // job was recovered from a journal after a restart
	hub      eventHub      // live lifecycle event fan-out
	wake     chan struct{} // buffered(1) scheduler kick
	terminal chan struct{} // closed once rec.State is terminal
	termOnce sync.Once
}

// Open loads (creating if necessary) a job service rooted at dir. Jobs
// the journal shows queued or running are resumed immediately: their
// running items — lease holders died with the previous process — are
// reclaimed to pending and the scheduler restarts. The store is
// mandatory: it is what makes resume incremental.
func Open(dir string, pipe *core.Pipeline, st *store.Store, cfg Config) (*Service, error) {
	if pipe == nil || st == nil {
		return nil, errors.New("jobs: Open requires a pipeline and a store")
	}
	cfg.applyDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: open %s: %w", dir, err)
	}
	reg := cfg.Registry
	s := &Service{
		root:    dir,
		pipe:    pipe,
		st:      st,
		cfg:     cfg,
		cfgHash: pipe.ConfigHash(),
		sem:     make(chan struct{}, workerCount(cfg.Workers)),
		jobs:    map[string]*job{},
		drain:   make(chan struct{}),
		m: serviceMetrics{
			submitted:   reg.Counter("tdjobs_jobs_total", "jobs submitted (including resumed from disk)"),
			itemsDone:   reg.Counter("tdjobs_items_done_total", "items completed"),
			quarantined: reg.Counter("tdjobs_items_quarantined_total", "items parked after exhausting their attempts"),
			retries:     reg.Counter("tdjobs_retries_total", "items requeued after a failed attempt"),
			reclaims:    reg.Counter("tdjobs_lease_reclaims_total", "expired leases taken back from presumed-dead workers"),
			hits:        reg.Counter("tdjobs_store_hits_total", "items answered from the artifact store"),
			misses:      reg.Counter("tdjobs_store_misses_total", "items translated fresh"),
			journalErrs: reg.Counter("tdjobs_journal_errors_total", "failed journal checkpoints (state kept in memory, retried)"),
			jobsActive:  reg.Gauge("tdjobs_jobs_active", "jobs currently scheduled"),
			inflight:    reg.Gauge("tdjobs_items_inflight", "item attempts currently executing"),
			itemSeconds: reg.Histogram("tdjobs_item_seconds", "wall-clock latency of item attempts (exemplar: job ID)", nil),
		},
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

func workerCount(w int) int { return parallel.Resolve(w) }

// MaxItems reports the per-job item limit, so front ends can reject an
// oversized submission while reading it instead of after buffering it.
func (s *Service) MaxItems() int { return s.cfg.MaxItems }

// recover scans the root for journaled jobs and resumes the live ones.
func (s *Service) recover() error {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return fmt.Errorf("jobs: scan %s: %w", s.root, err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		dir := filepath.Join(s.root, id)
		clearStaleJournals(dir)
		rec, err := loadRecord(dir)
		if err != nil {
			if !journalExists(dir) {
				// A submit crashed before its first checkpoint: the job
				// was never acknowledged, so its directory is garbage.
				_ = os.RemoveAll(dir)
				continue
			}
			// Both generations corrupt: park the job as failed rather
			// than guessing at its items.
			rec = &Record{ID: id, State: StateFailed,
				Error:   "journal unrecoverable: " + err.Error(),
				Created: time.Now().UnixNano()}
			_ = writeRecord(dir, rec)
			parked := s.track(rec, dir)
			parked.closeTerminal()
			parked.hub.close()
			continue
		}
		rec.ID = id // the directory is authoritative
		j := s.track(rec, dir)
		if rec.State.Terminal() {
			j.closeTerminal()
			j.hub.close()
			continue
		}
		if rec.Config != s.cfgHash.Hex() {
			j.mu.Lock()
			j.setTerminalLocked(StateFailed, "pipeline configuration changed since submission")
			j.mu.Unlock()
			j.hub.close()
			continue
		}
		// Leases held by the dead process are forfeit: reclaim every
		// running item so the restarted scheduler re-dispatches it. Any
		// whose artifact landed before the crash answers from the store.
		j.resumed = true
		j.span.Bool("resumed", true)
		j.mu.Lock()
		for i := range j.rec.Items {
			if j.rec.Items[i].State == ItemRunning {
				j.rec.Items[i].State = ItemPending
				j.rec.Items[i].LeaseUntil = 0
				j.rec.Items[i].NotBefore = 0
				j.rec.Reclaims++
				s.m.reclaims.Inc()
			}
		}
		j.checkpointLocked()
		st := j.rec.stats()
		j.hub.publish(Event{Type: EventResumed, Job: j.id, State: j.rec.State, Stats: &st})
		j.mu.Unlock()
		s.cfg.Flight.Event(j.id, "job_resumed")
		s.start(j)
		s.logJob(j, "job resumed")
	}
	return nil
}

// journalExists reports whether either journal generation is present.
func journalExists(dir string) bool {
	for _, name := range []string{journalFile, journalPrev} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			return true
		}
	}
	return false
}

// track registers a job in the in-memory map.
func (s *Service) track(rec *Record, dir string) *job {
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		svc: s, id: rec.ID, dir: dir,
		rec:      *rec,
		epoch:    make([]uint64, len(rec.Items)),
		ctx:      ctx,
		cancel:   cancel,
		wake:     make(chan struct{}, 1),
		terminal: make(chan struct{}),
	}
	if s.cfg.Trace {
		j.trace = obs.NewTrace(rec.ID)
		j.span = j.trace.Start("job")
		j.span.Int("items", int64(len(rec.Items)))
		j.ctx = obs.ContextWithSpan(j.ctx, j.span)
	}
	s.mu.Lock()
	s.jobs[rec.ID] = j
	s.mu.Unlock()
	return j
}

// start launches a job's scheduler goroutine.
func (s *Service) start(j *job) {
	s.m.jobsActive.Inc()
	s.wg.Add(1)
	go j.run()
}

// ItemSpec is one item of a submission: either a reference to an
// existing picture file (Path) or uploaded bytes (Data), which Submit
// saves into the job's input directory.
type ItemSpec struct {
	Name string
	Path string
	Data io.Reader
}

// Submit journals a new job over the given items and starts it,
// returning the initial snapshot. Names must be unique, safe single path
// components (batch.SafeName); uploaded items are persisted under the
// job directory before the job is acknowledged, so an accepted
// submission survives an immediate crash.
func (s *Service) Submit(specs []ItemSpec) (Snapshot, error) {
	return s.SubmitRequest("", specs)
}

// SubmitRequest is Submit carrying the X-Request-ID of the HTTP
// submission. The ID is journaled with the job record and surfaces in
// snapshots, logs and flight-recorder events, so a job is correlatable
// with the access-log line that created it. It never enters the
// results stream: item results stay byte-identical across re-runs.
func (s *Service) SubmitRequest(requestID string, specs []ItemSpec) (Snapshot, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return Snapshot{}, ErrClosed
	}
	if len(specs) == 0 {
		return Snapshot{}, errors.New("jobs: empty submission")
	}
	if len(specs) > s.cfg.MaxItems {
		return Snapshot{}, fmt.Errorf("jobs: %d items exceed the %d-item limit", len(specs), s.cfg.MaxItems)
	}
	seen := make(map[string]bool, len(specs))
	for _, sp := range specs {
		if err := batch.SafeName(sp.Name); err != nil {
			return Snapshot{}, err
		}
		if seen[sp.Name] {
			return Snapshot{}, fmt.Errorf("jobs: duplicate item name %q", sp.Name)
		}
		seen[sp.Name] = true
	}

	id := obs.NewRequestID()
	dir := filepath.Join(s.root, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Snapshot{}, fmt.Errorf("jobs: %w", err)
	}
	now := time.Now().UnixNano()
	rec := Record{
		ID: id, Config: s.cfgHash.Hex(), State: StateQueued,
		Submitter: requestID,
		Created:   now, Updated: now,
		Items: make([]ItemRecord, len(specs)),
	}
	for i, sp := range specs {
		path := sp.Path
		if sp.Data != nil {
			path = filepath.Join(dir, "input", sp.Name+".png")
			if err := saveUpload(path, sp.Data); err != nil {
				_ = os.RemoveAll(dir)
				return Snapshot{}, err
			}
		}
		rec.Items[i] = ItemRecord{Name: sp.Name, Path: path, State: ItemPending}
	}
	if err := writeRecord(dir, &rec); err != nil {
		_ = os.RemoveAll(dir)
		return Snapshot{}, err
	}
	j := s.track(&rec, dir)
	s.m.submitted.Inc()
	j.mu.Lock()
	st := j.rec.stats()
	j.hub.publish(Event{Type: EventSubmitted, Job: id, State: j.rec.State, Stats: &st})
	j.mu.Unlock()
	s.cfg.Flight.Event(id, "job_submitted", obs.I("items", int64(len(specs))))
	s.start(j)
	s.logJob(j, "job submitted")
	return j.snapshot(false), nil
}

// saveUpload writes one uploaded picture into the job's input directory.
func saveUpload(path string, r io.Reader) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	_, werr := io.Copy(f, r)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("jobs: save upload: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("jobs: save upload: %w", cerr)
	}
	return nil
}

// Get returns a snapshot of one job; withItems includes per-item status.
func (s *Service) Get(id string, withItems bool) (Snapshot, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Snapshot{}, false
	}
	return j.snapshot(withItems), true
}

// List returns a snapshot of every tracked job, oldest first.
func (s *Service) List() []Snapshot {
	s.mu.Lock()
	js := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		js = append(js, j)
	}
	s.mu.Unlock()
	out := make([]Snapshot, len(js))
	for i, j := range js {
		out[i] = j.snapshot(false)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Created != out[b].Created {
			return out[a].Created < out[b].Created
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// Wait blocks until the job reaches a terminal state (or ctx ends) and
// returns its final snapshot.
func (s *Service) Wait(ctx context.Context, id string) (Snapshot, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	select {
	case <-j.terminal:
		return j.snapshot(false), nil
	case <-ctx.Done():
		return j.snapshot(false), ctx.Err()
	}
}

// Cancel stops a job: in-flight attempts are cancelled cooperatively and
// returned to pending without an attempt penalty, pending items stay
// pending, and the job parks in StateCancelled. Cancelling a terminal
// job is a no-op. The final snapshot is returned.
func (s *Service) Cancel(id string) (Snapshot, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	j.mu.Lock()
	if !j.rec.State.Terminal() {
		j.setTerminalLocked(StateCancelled, "")
		s.logJobLocked(j, "job cancelled")
	}
	j.mu.Unlock()
	j.cancel()
	j.kick()
	return j.snapshot(false), nil
}

// Results streams the terminal job's per-item results to fn in
// submission order: store artifacts for done items, quarantine
// diagnostics for poisoned ones. It fails with ErrRunning while the job
// is live.
func (s *Service) Results(id string, fn func(ItemResult) error) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	j.mu.Lock()
	if !j.rec.State.Terminal() {
		j.mu.Unlock()
		return ErrRunning
	}
	state := j.rec.State
	items := append([]ItemRecord(nil), j.rec.Items...)
	j.mu.Unlock()

	for i := range items {
		it := &items[i]
		r := ItemResult{Index: i, Name: it.Name}
		switch it.State {
		case ItemDone:
			input, err := store.ParseHex(it.Input)
			if err != nil {
				r.Error = "artifact reference corrupt"
				break
			}
			data, ok := s.st.Get(s.cfgHash, input)
			if !ok {
				r.Error = "artifact missing from store"
				break
			}
			var a batch.Artifact
			if json.Unmarshal(data, &a) != nil || a.SPO == nil {
				s.st.NoteCorrupt()
				r.Error = "artifact corrupt"
				break
			}
			r.Spec, r.SPO, r.Diags = a.Spec, a.SPO, a.Diags
		case ItemQuarantined:
			r.Error = it.Error
			r.Diags = it.Diags
		default:
			r.Error = fmt.Sprintf("not executed (job %s)", state)
		}
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// draining reports whether the service drain has begun.
func (s *Service) draining() bool {
	select {
	case <-s.drain:
		return true
	default:
		return false
	}
}

// Close drains the service: no new submissions, no new item dispatches,
// in-flight attempts run to completion (bounded by the per-item
// timeout), and every live job checkpoints its journal so a reopened
// service resumes exactly where this one stopped. ctx bounds the wait.
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.drain)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: drain: %w", ctx.Err())
	}
}

// logJob emits one lifecycle log line. The caller must NOT hold j.mu.
func (s *Service) logJob(j *job, msg string) {
	if s.cfg.Logger == nil {
		return
	}
	s.logSnapshot(j.id, j.snapshot(false), msg)
}

// logJobLocked is logJob for callers already holding j.mu.
func (s *Service) logJobLocked(j *job, msg string) {
	if s.cfg.Logger == nil {
		return
	}
	s.logSnapshot(j.id, j.snapshotLocked(false), msg)
}

func (s *Service) logSnapshot(id string, st Snapshot, msg string) {
	s.cfg.Logger.Info(msg,
		slog.String("job", id),
		slog.String("state", string(st.State)),
		slog.Int("items", st.Stats.Total),
		slog.Int("done", st.Stats.Done),
		slog.Int("quarantined", st.Stats.Quarantined),
	)
}

// ---------------------------------------------------------------------------
// job scheduling

// snapshot builds a point-in-time view.
func (j *job) snapshot(withItems bool) Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked(withItems)
}

// snapshotLocked is snapshot for callers already holding j.mu.
func (j *job) snapshotLocked(withItems bool) Snapshot {
	sn := Snapshot{
		ID: j.rec.ID, State: j.rec.State, Error: j.rec.Error,
		Submitter: j.rec.Submitter,
		Created:   j.rec.Created, Updated: j.rec.Updated,
		Stats: j.rec.stats(),
	}
	if withItems {
		sn.Items = make([]ItemStatus, len(j.rec.Items))
		for i := range j.rec.Items {
			it := &j.rec.Items[i]
			sn.Items[i] = ItemStatus{
				Name: it.Name, State: it.State, Attempts: it.Attempts,
				Error: it.Error, Diags: it.Diags,
			}
		}
	}
	return sn
}

// kick wakes the scheduler without blocking.
func (j *job) kick() {
	select {
	case j.wake <- struct{}{}:
	default:
	}
}

// closeTerminal closes the terminal channel exactly once.
func (j *job) closeTerminal() { j.termOnce.Do(func() { close(j.terminal) }) }

// setTerminalLocked parks the job in a terminal state and checkpoints.
func (j *job) setTerminalLocked(st State, msg string) {
	j.rec.State = st
	j.rec.Error = msg
	j.checkpointLocked()
	stats := j.rec.stats()
	j.hub.publish(Event{Type: EventTerminal, Job: j.id, State: st, Error: msg, Stats: &stats})
	j.svc.cfg.Flight.Event(j.id, "job_"+string(st),
		obs.I("done", int64(stats.Done)), obs.I("quarantined", int64(stats.Quarantined)))
	j.closeTerminal()
}

// checkpointLocked journals the record; a failed write keeps the
// in-memory state authoritative and is retried at the next transition.
func (j *job) checkpointLocked() {
	j.rec.Updated = time.Now().UnixNano()
	if err := writeRecord(j.dir, &j.rec); err != nil {
		j.dirty = true
		j.svc.m.journalErrs.Inc()
		if l := j.svc.cfg.Logger; l != nil {
			l.Warn("journal checkpoint failed", slog.String("job", j.id), slog.String("error", err.Error()))
		}
		return
	}
	j.dirty = false
	j.hub.publish(Event{Type: EventCheckpoint, Job: j.id, State: j.rec.State})
}

// reclaimExpiredLocked takes back items whose lease lapsed: the worker is
// presumed dead, its epoch is fenced, and the attempt counts as failed.
func (j *job) reclaimExpiredLocked(now time.Time) {
	changed := false
	for i := range j.rec.Items {
		it := &j.rec.Items[i]
		if it.State != ItemRunning || it.LeaseUntil == 0 || now.UnixNano() <= it.LeaseUntil {
			continue
		}
		j.epoch[i]++ // a late report from the stale worker is ignored
		j.rec.Reclaims++
		j.svc.m.reclaims.Inc()
		j.failLocked(i, errors.New("jobs: lease expired: worker presumed dead"), nil)
		changed = true
	}
	if changed {
		j.checkpointLocked()
	}
}

// failLocked applies one failed attempt to an item: requeue under
// backoff, or quarantine once the attempts are spent.
func (j *job) failLocked(idx int, err error, ds []diag.Diagnostic) {
	it := &j.rec.Items[idx]
	it.LeaseUntil = 0
	it.Error = err.Error()
	if ds != nil {
		it.Diags = ds
	}
	if it.Attempts >= j.svc.cfg.MaxAttempts {
		it.State = ItemQuarantined
		j.svc.m.quarantined.Inc()
		if j.span != nil {
			j.span.Event("quarantine", obs.I("index", int64(idx)),
				obs.I("attempt", int64(it.Attempts)), obs.I("epoch", int64(j.epoch[idx])))
		}
		j.hub.publish(Event{Type: EventQuarantined, Job: j.id, Item: it.Name,
			Index: idx, Attempt: it.Attempts, Epoch: j.epoch[idx], Error: it.Error})
		j.svc.cfg.Flight.Event(j.id, "item_quarantined",
			obs.I("index", int64(idx)), obs.I("attempt", int64(it.Attempts)))
		if l := j.svc.cfg.Logger; l != nil {
			l.Warn("item quarantined", slog.String("job", j.id),
				slog.String("item", it.Name), slog.Int("attempts", it.Attempts),
				slog.String("error", it.Error))
		}
		return
	}
	it.State = ItemPending
	delay := Backoff(j.svc.cfg.BackoffBase, j.svc.cfg.BackoffCap, j.id, it.Name, it.Attempts)
	it.NotBefore = time.Now().Add(delay).UnixNano()
	j.rec.Retries++
	j.svc.m.retries.Inc()
	if j.span != nil {
		// One event for the retry decision, one for the backoff gate it
		// opens — the trace shows both the failure and the sleep.
		j.span.Event("retry", obs.I("index", int64(idx)),
			obs.I("attempt", int64(it.Attempts)), obs.I("epoch", int64(j.epoch[idx])))
		j.span.Event("backoff", obs.I("index", int64(idx)), obs.I("delay_ns", int64(delay)))
	}
	j.hub.publish(Event{Type: EventRetried, Job: j.id, Item: it.Name,
		Index: idx, Attempt: it.Attempts, Epoch: j.epoch[idx],
		DelayNS: int64(delay), Error: it.Error})
}

// nextReadyLocked picks the lowest-index dispatchable item, or -1 plus
// the next time anything becomes interesting (a backoff gate opening, a
// lease expiring).
func (j *job) nextReadyLocked(now time.Time) (int, time.Time) {
	nowNs := now.UnixNano()
	var next int64
	for i := range j.rec.Items {
		it := &j.rec.Items[i]
		switch it.State {
		case ItemPending:
			if it.NotBefore <= nowNs {
				return i, time.Time{}
			}
			if next == 0 || it.NotBefore < next {
				next = it.NotBefore
			}
		case ItemRunning:
			if it.LeaseUntil > 0 && (next == 0 || it.LeaseUntil < next) {
				next = it.LeaseUntil
			}
		}
	}
	if next == 0 {
		return -1, time.Time{}
	}
	return -1, time.Unix(0, next)
}

// run is the job's scheduler loop: reclaim lapsed leases, dispatch ready
// items onto the shared worker pool, and settle the job when every item
// is terminal. On service drain it stops dispatching, waits for
// in-flight attempts, checkpoints, and leaves the job resumable.
func (j *job) run() {
	defer j.svc.wg.Done()
	defer j.svc.m.jobsActive.Dec()
	for {
		j.mu.Lock()
		now := time.Now()
		j.reclaimExpiredLocked(now)
		if j.ctx.Err() != nil && !j.rec.State.Terminal() {
			j.setTerminalLocked(StateCancelled, "")
		}
		if j.rec.State == StateQueued {
			j.rec.State = StateRunning
			j.checkpointLocked()
		}
		if !j.rec.State.Terminal() && j.rec.settled() {
			if q := j.rec.stats().Quarantined; q > 0 {
				j.setTerminalLocked(StateFailed, fmt.Sprintf("%d of %d items quarantined", q, len(j.rec.Items)))
			} else {
				j.setTerminalLocked(StateDone, "")
			}
			j.svc.logJobLocked(j, "job finished")
		}
		if j.rec.State.Terminal() {
			if j.inflight == 0 {
				if j.dirty {
					j.checkpointLocked()
				}
				j.mu.Unlock()
				j.finish()
				return
			}
			j.mu.Unlock()
			j.waitKick()
			continue
		}
		if j.draining {
			if j.inflight == 0 {
				j.checkpointLocked() // durable resume point
				j.mu.Unlock()
				j.finish()
				return
			}
			j.mu.Unlock()
			j.waitKick()
			continue
		}
		idx, next := j.nextReadyLocked(now)
		j.mu.Unlock()

		if idx < 0 {
			j.sleepUntil(next)
			continue
		}
		// Drain wins over dispatch: once the service is draining, a ready
		// sem slot must not race the drain case (select picks randomly
		// among ready cases), or dispatch would stop only probabilistically.
		select {
		case <-j.svc.drain:
			j.mu.Lock()
			j.draining = true
			j.mu.Unlock()
			continue
		default:
		}
		select {
		case j.svc.sem <- struct{}{}:
			j.claim(idx)
		case <-j.ctx.Done():
		case <-j.svc.drain:
			j.mu.Lock()
			j.draining = true
			j.mu.Unlock()
		}
	}
}

// finish runs once when the scheduler exits — terminal completion or a
// drain pause. It ends the job's root span, captures the trace into the
// flight recorder (so a finished job's per-item timeline survives in
// /debug/flight), and closes the event hub: subscribers drain their
// queues and then see EOF. A drain-paused stream ends the same way; the
// client reconnects after the restart and the snapshot marks resumption.
func (j *job) finish() {
	if j.span != nil {
		j.span.End()
	}
	j.svc.cfg.Flight.Capture(j.trace)
	j.hub.close()
}

// waitKick blocks until a worker reports (or a short safety tick).
func (j *job) waitKick() {
	t := time.NewTimer(50 * time.Millisecond)
	defer t.Stop()
	select {
	case <-j.wake:
	case <-t.C:
	}
}

// sleepUntil blocks until the next scheduling event.
func (j *job) sleepUntil(next time.Time) {
	d := 100 * time.Millisecond
	if !next.IsZero() {
		if until := time.Until(next); until > 0 {
			d = until
		} else {
			d = time.Millisecond
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-j.wake:
	case <-t.C:
	case <-j.ctx.Done():
	case <-j.svc.drain:
		j.mu.Lock()
		j.draining = true
		j.mu.Unlock()
	}
}

// claim marks an item running under a fresh lease and epoch and hands it
// to a worker goroutine. The caller holds a worker-pool slot; claim
// releases it if the item is no longer dispatchable.
func (j *job) claim(idx int) {
	j.mu.Lock()
	it := &j.rec.Items[idx]
	if it.State != ItemPending || j.rec.State.Terminal() || j.draining || j.svc.draining() || j.ctx.Err() != nil {
		j.mu.Unlock()
		<-j.svc.sem
		return
	}
	it.State = ItemRunning
	it.Attempts++
	it.LeaseUntil = time.Now().Add(j.svc.cfg.LeaseTTL).UnixNano()
	j.epoch[idx]++
	ep := j.epoch[idx]
	attempt := it.Attempts
	j.inflight++
	j.hub.publish(Event{Type: EventClaimed, Job: j.id, Item: it.Name,
		Index: idx, Attempt: attempt, Epoch: ep, Resumed: j.resumed})
	j.checkpointLocked()
	j.mu.Unlock()
	j.svc.m.inflight.Inc()
	// Workers join the service WaitGroup (the scheduler holds it > 0, so
	// the Add cannot race a completed Wait): Close returns only after
	// every worker — and its heartbeat — has fully exited.
	j.svc.wg.Add(1)
	go j.worker(idx, ep, attempt)
}

// worker runs one leased attempt: heartbeat the lease, translate through
// batch.Process (store-first), and report under the fencing epoch. A
// panicking attempt is recovered and counted as a failure.
func (j *job) worker(idx int, ep uint64, attempt int) {
	defer j.svc.wg.Done()
	defer func() {
		<-j.svc.sem
		j.svc.m.inflight.Dec()
		j.kick()
	}()
	var sp *obs.Span
	if s := obs.StartSpan(j.ctx, "job.item"); s != nil {
		sp = s.Int("index", int64(idx)).Int("attempt", int64(attempt)).
			Int("epoch", int64(ep)).Bool("resumed", j.resumed)
	}
	hbDone := make(chan struct{})
	hbExited := make(chan struct{})
	go func() {
		defer close(hbExited)
		j.heartbeat(idx, ep, sp, hbDone)
	}()
	start := time.Now()
	res := func() (r batch.Result) {
		defer func() {
			if p := recover(); p != nil {
				r = batch.Result{Err: fmt.Errorf("jobs: item panic: %v", p)}
			}
		}()
		return j.attempt(idx, attempt)
	}()
	j.svc.m.itemSeconds.ObserveExemplar(time.Since(start).Seconds(), j.id)
	if sp != nil {
		sp.Bool("cached", res.Cached).Bool("failed", res.Err != nil)
		sp.End()
	}
	close(hbDone)
	<-hbExited
	j.report(idx, ep, res)
}

// heartbeat extends the item's lease until the attempt returns. A
// heartbeat suppressed by the fault hook — the stand-in for a dead
// worker — lets the lease lapse and the scheduler reclaim the item.
func (j *job) heartbeat(idx int, ep uint64, sp *obs.Span, done <-chan struct{}) {
	t := time.NewTicker(j.svc.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
		}
		if FaultHook != nil {
			j.mu.Lock()
			name := j.rec.Items[idx].Name
			j.mu.Unlock()
			if err := FaultHook(Fault{Point: FaultHeartbeat, Job: j.id, Item: name}); err != nil {
				continue
			}
		}
		j.mu.Lock()
		if j.epoch[idx] == ep && j.rec.Items[idx].State == ItemRunning {
			j.rec.Items[idx].LeaseUntil = time.Now().Add(j.svc.cfg.LeaseTTL).UnixNano()
			j.hub.publish(Event{Type: EventHeartbeat, Job: j.id,
				Item: j.rec.Items[idx].Name, Index: idx, Epoch: ep})
			j.mu.Unlock()
			if sp != nil {
				// Event is the one cross-goroutine-safe span mutator, so the
				// worker's span can record its own lease extensions.
				sp.Event("lease_extend", obs.I("epoch", int64(ep)))
			}
			continue
		}
		j.mu.Unlock()
	}
}

// attempt executes one translation attempt under the per-item deadline.
func (j *job) attempt(idx, attempt int) batch.Result {
	j.mu.Lock()
	name := j.rec.Items[idx].Name
	path := j.rec.Items[idx].Path
	j.mu.Unlock()

	ictx, cancel := context.WithTimeout(j.ctx, j.svc.cfg.Timeout)
	defer cancel()
	if th := j.svc.cfg.Throttle; th > 0 {
		t := time.NewTimer(th)
		select {
		case <-t.C:
		case <-ictx.Done():
			t.Stop()
			return batch.Result{Err: ictx.Err()}
		}
	}
	if FaultHook != nil {
		if err := FaultHook(Fault{Point: FaultItemStart, Job: j.id, Item: name, Attempt: attempt}); err != nil {
			switch {
			case errors.Is(err, ErrPanic):
				panic(err)
			case errors.Is(err, ErrStall):
				<-ictx.Done()
				return batch.Result{Err: ictx.Err()}
			default:
				return batch.Result{Err: err}
			}
		}
	}
	res := batch.Process(ictx, j.svc.pipe, batch.Item{
		Name: name,
		Open: func() (io.ReadCloser, error) { return os.Open(path) },
	}, batch.Options{Store: j.svc.st, Config: j.svc.cfgHash})
	if res.Err == nil && !res.Cached && !j.svc.st.Has(j.svc.cfgHash, res.Input) {
		// Durability before completion: a result that never reached the
		// store cannot be marked done (the journal would point at
		// nothing), so a failed store write is a failed attempt.
		res.Err = errors.New("jobs: artifact not persisted to store")
	}
	return res
}

// report applies an attempt's outcome under the fencing epoch: a stale
// report (the lease was reclaimed while the worker ran) is dropped — the
// reclaim already requeued the item, and the store's idempotent writes
// make the duplicate execution harmless.
func (j *job) report(idx int, ep uint64, res batch.Result) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.inflight--
	if j.epoch[idx] != ep || j.rec.Items[idx].State != ItemRunning {
		return
	}
	it := &j.rec.Items[idx]
	if res.Err != nil {
		if j.ctx.Err() != nil && errors.Is(res.Err, context.Canceled) {
			// Cancelled mid-flight: hand the attempt back without
			// penalty; the item stays runnable if the job resumes.
			it.State = ItemPending
			it.LeaseUntil = 0
			it.Attempts--
			j.checkpointLocked()
			return
		}
		var ds []diag.Diagnostic
		if res.Rep != nil {
			ds = res.Rep.Diags
		}
		j.failLocked(idx, res.Err, ds)
		j.checkpointLocked()
		return
	}
	it.State = ItemDone
	it.LeaseUntil = 0
	it.NotBefore = 0
	it.Error = ""
	it.Diags = nil
	it.Input = res.Input.Hex()
	if res.Cached {
		j.rec.Hits++
		j.svc.m.hits.Inc()
	} else {
		j.rec.Misses++
		j.svc.m.misses.Inc()
	}
	j.svc.m.itemsDone.Inc()
	cached := res.Cached
	j.hub.publish(Event{Type: EventDone, Job: j.id, Item: it.Name,
		Index: idx, Attempt: it.Attempts, Epoch: ep,
		Cached: &cached, Resumed: j.resumed})
	j.checkpointLocked()
}
