package jobs

import (
	"context"
	"io"
	"sync"
	"time"
)

// Live lifecycle event streaming. Every job fans its state transitions
// out to any number of subscribers through per-subscriber bounded
// queues: a late subscriber gets a consistent snapshot first (built
// and registered atomically under the job mutex, which every publisher
// holds), then tails the live feed; a slow subscriber loses the newest
// events and sees an in-band "truncated" marker exactly where the gap
// sits. Memory is bounded per subscriber and zero with none attached.
//
// The publish invariant: publishLocked is only called with j.mu held.
// That makes snapshot+subscribe atomic without a second ordering
// mechanism, and means the hub mutex is always acquired inside j.mu —
// one lock order, no deadlock (the PR-8 logging deadlock was exactly a
// violation of this kind of discipline).

// EventType enumerates the lifecycle event kinds.
type EventType string

// Lifecycle event types, in rough emission order.
const (
	EventSnapshot    EventType = "snapshot"         // first line to every subscriber
	EventSubmitted   EventType = "submitted"        // job accepted and journaled
	EventResumed     EventType = "resumed"          // job picked up after a restart
	EventClaimed     EventType = "item_claimed"     // item leased to a worker
	EventHeartbeat   EventType = "heartbeat"        // lease extended mid-attempt
	EventDone        EventType = "item_done"        // item completed (Cached: store hit/miss)
	EventRetried     EventType = "item_retried"     // failed attempt requeued under backoff
	EventQuarantined EventType = "item_quarantined" // attempts exhausted, item parked
	EventCheckpoint  EventType = "checkpoint"       // journal generation committed
	EventTerminal    EventType = "state"            // job reached a terminal state
	EventTruncated   EventType = "truncated"        // subscriber lost Dropped events here
)

// Event is one NDJSON line of GET /v1/jobs/{id}/events. Item-scoped
// fields are set only on item events; Stats only on snapshot,
// checkpoint and terminal events.
type Event struct {
	Seq    uint64    `json:"seq"`
	TimeNS int64     `json:"time_unix_ns"`
	Type   EventType `json:"type"`
	Job    string    `json:"job"`

	Item    string `json:"item,omitempty"`
	Index   int    `json:"index,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Epoch   uint64 `json:"epoch,omitempty"`
	Cached  *bool  `json:"cached,omitempty"`
	Resumed bool   `json:"resumed,omitempty"` // item ran in a crash-resumed job
	DelayNS int64  `json:"delay_ns,omitempty"`

	State   State        `json:"state,omitempty"`
	Error   string       `json:"error,omitempty"`
	Stats   *Stats       `json:"stats,omitempty"`
	Items   []ItemStatus `json:"items,omitempty"`
	Dropped uint64       `json:"dropped,omitempty"`
}

// subBuffer bounds each subscriber's queue. A job's busiest stretch
// emits a handful of events per item; 1024 rides out a multi-second
// consumer stall before truncation.
const subBuffer = 1024

// eventHub fans a job's events out to its subscribers.
type eventHub struct {
	mu     sync.Mutex
	seq    uint64
	subs   map[*subscriber]struct{}
	closed bool
}

type subscriber struct {
	mu      sync.Mutex
	buf     []Event
	dropped uint64
	closed  bool
	notify  chan struct{}
}

// publish stamps and fans out one event. Callers hold j.mu (see the
// package invariant above); the hub lock nests inside it.
func (h *eventHub) publish(ev Event) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.seq++
	ev.Seq = h.seq
	ev.TimeNS = time.Now().UnixNano()
	for sub := range h.subs {
		sub.push(ev)
	}
	h.mu.Unlock()
}

// subscribe registers a fresh subscriber and returns it with the hub's
// current sequence number, so the caller can stamp its snapshot as
// "everything up to seq". Subscribing to a closed hub yields a
// subscriber that EOFs after draining — a terminal job's stream is
// snapshot-then-EOF.
func (h *eventHub) subscribe() (*subscriber, uint64) {
	sub := &subscriber{notify: make(chan struct{}, 1)}
	h.mu.Lock()
	if h.closed {
		sub.closed = true
	} else {
		if h.subs == nil {
			h.subs = map[*subscriber]struct{}{}
		}
		h.subs[sub] = struct{}{}
	}
	seq := h.seq
	h.mu.Unlock()
	return sub, seq
}

func (h *eventHub) unsubscribe(sub *subscriber) {
	h.mu.Lock()
	delete(h.subs, sub)
	h.mu.Unlock()
	sub.mu.Lock()
	sub.closed = true
	sub.mu.Unlock()
	sub.wake()
}

// close ends the stream for every subscriber after their queued events
// drain. Publishing after close is a silent no-op.
func (h *eventHub) close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	subs := make([]*subscriber, 0, len(h.subs))
	for sub := range h.subs {
		subs = append(subs, sub)
	}
	h.subs = nil
	h.mu.Unlock()
	for _, sub := range subs {
		sub.mu.Lock()
		sub.closed = true
		sub.mu.Unlock()
		sub.wake()
	}
}

func (b *subscriber) wake() {
	select {
	case b.notify <- struct{}{}:
	default:
	}
}

// push enqueues one event, dropping the newest when the queue is full.
// When space reopens after a drop, an in-band truncation marker is
// inserted first, exactly at the gap, so a consumer sees
// [...kept events, truncated{n}, ...newer events] in true order.
func (b *subscriber) push(ev Event) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	if b.dropped > 0 && len(b.buf)+1 < subBuffer {
		b.buf = append(b.buf, Event{
			Type: EventTruncated, Job: ev.Job, Dropped: b.dropped,
			TimeNS: ev.TimeNS,
		})
		b.dropped = 0
	}
	if len(b.buf) >= subBuffer {
		b.dropped++
	} else {
		b.buf = append(b.buf, ev)
	}
	b.mu.Unlock()
	b.wake()
}

// Subscription is one live event stream, produced by Service.Events.
// The first event is always the job snapshot; Close releases the
// subscriber (safe to call at any time, including concurrently with
// Next).
type Subscription struct {
	hub *eventHub
	sub *subscriber
}

// Next returns the next event, blocking until one arrives, ctx ends
// (ctx.Err()), or the job's stream closes after draining (io.EOF).
func (su *Subscription) Next(ctx context.Context) (Event, error) {
	b := su.sub
	for {
		b.mu.Lock()
		if len(b.buf) > 0 {
			ev := b.buf[0]
			b.buf = b.buf[1:]
			if len(b.buf) == 0 {
				b.buf = nil // release the drained backing array
			}
			b.mu.Unlock()
			return ev, nil
		}
		if b.dropped > 0 { // gap at the tail with nothing after it yet
			n := b.dropped
			b.dropped = 0
			b.mu.Unlock()
			return Event{Type: EventTruncated, Dropped: n, TimeNS: time.Now().UnixNano()}, nil
		}
		closed := b.closed
		b.mu.Unlock()
		if closed {
			return Event{}, io.EOF
		}
		select {
		case <-b.notify:
		case <-ctx.Done():
			return Event{}, ctx.Err()
		}
	}
}

// Close releases the subscription.
func (su *Subscription) Close() { su.hub.unsubscribe(su.sub) }

// Events subscribes to a job's live lifecycle stream. The returned
// subscription's first Next yields a snapshot event (with per-item
// states when withItems is set) consistent with the tail that follows:
// registration and snapshot happen atomically under the job lock, so no
// event is missed or duplicated across the boundary. Works on live,
// draining and terminal jobs — a terminal job streams its snapshot and
// then EOF.
func (s *Service) Events(id string, withItems bool) (*Subscription, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	j.mu.Lock()
	sub, seq := j.hub.subscribe()
	sn := j.snapshotLocked(withItems)
	first := Event{
		Seq: seq, TimeNS: time.Now().UnixNano(),
		Type: EventSnapshot, Job: j.id,
		State: sn.State, Error: sn.Error,
		Stats: &sn.Stats, Items: sn.Items,
	}
	// Seed the snapshot into the queue before releasing j.mu: every
	// publisher holds j.mu, so no tail event can slip in ahead of it,
	// and push keeps FIFO order afterwards.
	sub.mu.Lock()
	sub.buf = append(sub.buf, first)
	sub.mu.Unlock()
	j.mu.Unlock()
	sub.wake()
	return &Subscription{hub: &j.hub, sub: sub}, nil
}
