package detect

import (
	"math"
	"testing"

	"tdmagic/internal/geom"
)

func box(x, y, w, h int) geom.Rect { return geom.Rect{X0: x, Y0: y, X1: x + w - 1, Y1: y + h - 1} }

func TestMatchPerfect(t *testing.T) {
	gts := []GroundTruth{
		{Box: box(0, 0, 10, 10), Class: 0},
		{Box: box(50, 50, 10, 10), Class: 1},
	}
	dets := []Detection{
		{Box: box(0, 0, 10, 10), Class: 0, Score: 0.9},
		{Box: box(50, 50, 10, 10), Class: 1, Score: 0.8},
	}
	m := Match(dets, gts, 0.5)
	if m.TP != 2 || m.FP != 0 || m.FN != 0 {
		t.Errorf("match = %+v", m)
	}
	p, r := m.PR()
	if p != 1 || r != 1 {
		t.Errorf("P/R = %v/%v", p, r)
	}
}

func TestMatchClassMismatch(t *testing.T) {
	gts := []GroundTruth{{Box: box(0, 0, 10, 10), Class: 0}}
	dets := []Detection{{Box: box(0, 0, 10, 10), Class: 1, Score: 0.9}}
	m := Match(dets, gts, 0.5)
	if m.TP != 0 || m.FP != 1 || m.FN != 1 {
		t.Errorf("match = %+v", m)
	}
}

func TestMatchImageSeparation(t *testing.T) {
	gts := []GroundTruth{{Box: box(0, 0, 10, 10), Class: 0, Image: 0}}
	dets := []Detection{{Box: box(0, 0, 10, 10), Class: 0, Score: 0.9, Image: 1}}
	m := Match(dets, gts, 0.5)
	if m.TP != 0 {
		t.Error("cross-image match happened")
	}
}

func TestMatchGreedyPrefersHighScore(t *testing.T) {
	gts := []GroundTruth{{Box: box(0, 0, 10, 10), Class: 0}}
	dets := []Detection{
		{Box: box(1, 1, 10, 10), Class: 0, Score: 0.5},
		{Box: box(0, 0, 10, 10), Class: 0, Score: 0.9},
	}
	m := Match(dets, gts, 0.5)
	if m.TP != 1 || m.FP != 1 {
		t.Errorf("match = %+v", m)
	}
	if m.Matched[1] != 0 || m.Matched[0] != -1 {
		t.Errorf("high-score detection should win: %v", m.Matched)
	}
}

func TestMatchIoUThreshold(t *testing.T) {
	gts := []GroundTruth{{Box: box(0, 0, 10, 10), Class: 0}}
	dets := []Detection{{Box: box(5, 0, 10, 10), Class: 0, Score: 0.9}} // IoU = 1/3
	if m := Match(dets, gts, 0.5); m.TP != 0 {
		t.Error("low-IoU match accepted at 0.5")
	}
	if m := Match(dets, gts, 0.3); m.TP != 1 {
		t.Error("match rejected at 0.3")
	}
}

func TestPRConventions(t *testing.T) {
	p, r := (MatchResult{}).PR()
	if p != 1 || r != 1 {
		t.Errorf("empty P/R = %v/%v, want 1/1", p, r)
	}
	p, r = (MatchResult{FP: 3}).PR()
	if p != 0 || r != 1 {
		t.Errorf("FP-only P/R = %v/%v", p, r)
	}
	p, r = (MatchResult{FN: 2}).PR()
	if p != 1 || r != 0 {
		t.Errorf("FN-only P/R = %v/%v", p, r)
	}
}

func TestAPPerfect(t *testing.T) {
	gts := []GroundTruth{
		{Box: box(0, 0, 10, 10), Class: 0},
		{Box: box(30, 0, 10, 10), Class: 0},
	}
	dets := []Detection{
		{Box: box(0, 0, 10, 10), Class: 0, Score: 0.9},
		{Box: box(30, 0, 10, 10), Class: 0, Score: 0.8},
	}
	if ap := AP(dets, gts, 0, 0.5); ap != 1 {
		t.Errorf("AP = %v, want 1", ap)
	}
}

func TestAPHalf(t *testing.T) {
	gts := []GroundTruth{
		{Box: box(0, 0, 10, 10), Class: 0},
		{Box: box(30, 0, 10, 10), Class: 0},
	}
	// One correct detection, one miss: AP = recall 0.5 at precision 1.
	dets := []Detection{{Box: box(0, 0, 10, 10), Class: 0, Score: 0.9}}
	if ap := AP(dets, gts, 0, 0.5); math.Abs(ap-0.5) > 1e-9 {
		t.Errorf("AP = %v, want 0.5", ap)
	}
}

func TestAPFalsePositiveFirst(t *testing.T) {
	gts := []GroundTruth{{Box: box(0, 0, 10, 10), Class: 0}}
	dets := []Detection{
		{Box: box(100, 100, 10, 10), Class: 0, Score: 0.95}, // FP ranked first
		{Box: box(0, 0, 10, 10), Class: 0, Score: 0.90},     // TP second
	}
	// Precision at the TP is 1/2, recall 1. AP = 0.5.
	if ap := AP(dets, gts, 0, 0.5); math.Abs(ap-0.5) > 1e-9 {
		t.Errorf("AP = %v, want 0.5", ap)
	}
}

func TestAPConventions(t *testing.T) {
	if ap := AP(nil, nil, 0, 0.5); ap != 1 {
		t.Errorf("no-GT AP = %v, want 1", ap)
	}
	gts := []GroundTruth{{Box: box(0, 0, 10, 10), Class: 0}}
	if ap := AP(nil, gts, 0, 0.5); ap != 0 {
		t.Errorf("no-detection AP = %v, want 0", ap)
	}
}

func TestMAPAndMAP5095(t *testing.T) {
	gts := []GroundTruth{
		{Box: box(0, 0, 20, 20), Class: 0},
		{Box: box(50, 50, 20, 20), Class: 1},
	}
	dets := []Detection{
		{Box: box(0, 0, 20, 20), Class: 0, Score: 0.9},   // exact
		{Box: box(52, 50, 20, 20), Class: 1, Score: 0.9}, // IoU ~0.82
	}
	m50 := MAP(dets, gts, []int{0, 1}, 0.5)
	if m50 != 1 {
		t.Errorf("mAP@.5 = %v, want 1", m50)
	}
	m5095 := MAP5095(dets, gts, []int{0, 1})
	// Class 0 perfect at all IoUs (1.0); class 1 fails above ~0.8:
	// average must sit strictly between 0.5 and 1.
	if m5095 <= 0.5 || m5095 >= 1 {
		t.Errorf("mAP@.5:.95 = %v, want in (0.5, 1)", m5095)
	}
	if MAP(dets, gts, nil, 0.5) != 0 {
		t.Error("empty class list mAP should be 0")
	}
}

func TestReportShape(t *testing.T) {
	gts := []GroundTruth{
		{Box: box(0, 0, 10, 10), Class: 0},
		{Box: box(30, 0, 10, 10), Class: 1},
		{Box: box(60, 0, 10, 10), Class: 1},
	}
	dets := []Detection{
		{Box: box(0, 0, 10, 10), Class: 0, Score: 0.9},
		{Box: box(30, 0, 10, 10), Class: 1, Score: 0.9},
	}
	rows := Report(dets, gts, []int{0, 1})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Class != -1 || rows[0].Labels != 3 {
		t.Errorf("aggregate row = %+v", rows[0])
	}
	if rows[1].Labels != 1 || rows[2].Labels != 2 {
		t.Errorf("per-class labels: %+v", rows)
	}
	if rows[0].P != 1 {
		t.Errorf("aggregate P = %v", rows[0].P)
	}
	if got := rows[0].R; math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("aggregate R = %v", got)
	}
	if rows[2].MAP50 != 0.5 {
		t.Errorf("class-1 AP = %v", rows[2].MAP50)
	}
}

func TestMAP5095MonotoneInLocalization(t *testing.T) {
	gts := []GroundTruth{{Box: box(0, 0, 20, 20), Class: 0}}
	exact := []Detection{{Box: box(0, 0, 20, 20), Class: 0, Score: 0.9}}
	loose := []Detection{{Box: box(4, 4, 20, 20), Class: 0, Score: 0.9}}
	if MAP5095(exact, gts, []int{0}) <= MAP5095(loose, gts, []int{0}) {
		t.Error("better localisation should yield higher mAP@.5:.95")
	}
}
