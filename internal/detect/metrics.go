// Package detect provides object-detection evaluation: greedy IoU matching,
// per-class precision/recall, average precision, and the mAP@.5 /
// mAP@.5:.95 metrics the paper reports in Tables I and II.
package detect

import (
	"sort"

	"tdmagic/internal/geom"
)

// Detection is one predicted box with class and confidence.
type Detection struct {
	Box   geom.Rect
	Class int
	Score float64
	// Image distinguishes detections from different pictures when scoring
	// a whole dataset at once.
	Image int
}

// GroundTruth is one labelled box.
type GroundTruth struct {
	Box   geom.Rect
	Class int
	Image int
}

// MatchResult is the outcome of matching detections against ground truth at
// one IoU threshold.
type MatchResult struct {
	TP, FP, FN int
	// Matched[i] is the index of the ground-truth box detection i matched,
	// or -1.
	Matched []int
}

// Match greedily assigns detections (highest score first) to unmatched
// ground-truth boxes of the same class and image with IoU >= iouThr.
func Match(dets []Detection, gts []GroundTruth, iouThr float64) MatchResult {
	order := make([]int, len(dets))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return dets[order[a]].Score > dets[order[b]].Score })
	used := make([]bool, len(gts))
	res := MatchResult{Matched: make([]int, len(dets))}
	for i := range res.Matched {
		res.Matched[i] = -1
	}
	for _, di := range order {
		d := dets[di]
		best, bestIoU := -1, iouThr
		for gi, g := range gts {
			if used[gi] || g.Class != d.Class || g.Image != d.Image {
				continue
			}
			if iou := d.Box.IoU(g.Box); iou >= bestIoU {
				best, bestIoU = gi, iou
			}
		}
		if best >= 0 {
			used[best] = true
			res.Matched[di] = best
			res.TP++
		} else {
			res.FP++
		}
	}
	res.FN = len(gts) - res.TP
	return res
}

// PR returns precision and recall of a match result. An empty prediction
// set has precision 1 by convention; an empty ground truth has recall 1.
func (m MatchResult) PR() (precision, recall float64) {
	if m.TP+m.FP == 0 {
		precision = 1
	} else {
		precision = float64(m.TP) / float64(m.TP+m.FP)
	}
	if m.TP+m.FN == 0 {
		recall = 1
	} else {
		recall = float64(m.TP) / float64(m.TP+m.FN)
	}
	return precision, recall
}

// filterClass returns the subset of detections / ground truths of one class.
func filterClass(dets []Detection, gts []GroundTruth, class int) ([]Detection, []GroundTruth) {
	var d []Detection
	var g []GroundTruth
	for _, x := range dets {
		if x.Class == class {
			d = append(d, x)
		}
	}
	for _, x := range gts {
		if x.Class == class {
			g = append(g, x)
		}
	}
	return d, g
}

// AP computes the average precision of one class at one IoU threshold using
// all-point interpolation (area under the precision-recall curve), the
// convention of COCO-style mAP.
func AP(dets []Detection, gts []GroundTruth, class int, iouThr float64) float64 {
	d, g := filterClass(dets, gts, class)
	if len(g) == 0 {
		return 1 // nothing to find: perfect by convention
	}
	if len(d) == 0 {
		return 0
	}
	sort.Slice(d, func(a, b int) bool { return d[a].Score > d[b].Score })
	used := make([]bool, len(g))
	tp := make([]bool, len(d))
	for i, det := range d {
		best, bestIoU := -1, iouThr
		for gi, gt := range g {
			if used[gi] || gt.Image != det.Image {
				continue
			}
			if iou := det.Box.IoU(gt.Box); iou >= bestIoU {
				best, bestIoU = gi, iou
			}
		}
		if best >= 0 {
			used[best] = true
			tp[i] = true
		}
	}
	// Precision-recall curve, then area with precision envelope.
	var curTP, curFP int
	recalls := make([]float64, len(d))
	precisions := make([]float64, len(d))
	for i := range d {
		if tp[i] {
			curTP++
		} else {
			curFP++
		}
		recalls[i] = float64(curTP) / float64(len(g))
		precisions[i] = float64(curTP) / float64(curTP+curFP)
	}
	// Monotone precision envelope from the right.
	for i := len(precisions) - 2; i >= 0; i-- {
		if precisions[i+1] > precisions[i] {
			precisions[i] = precisions[i+1]
		}
	}
	ap := 0.0
	prevR := 0.0
	for i := range d {
		if recalls[i] > prevR {
			ap += (recalls[i] - prevR) * precisions[i]
			prevR = recalls[i]
		}
	}
	return ap
}

// MAP returns the mean AP over the given classes at one IoU threshold.
func MAP(dets []Detection, gts []GroundTruth, classes []int, iouThr float64) float64 {
	if len(classes) == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range classes {
		sum += AP(dets, gts, c, iouThr)
	}
	return sum / float64(len(classes))
}

// MAP5095 returns the COCO-style mean AP averaged over IoU thresholds
// 0.5:0.05:0.95.
func MAP5095(dets []Detection, gts []GroundTruth, classes []int) float64 {
	sum, n := 0.0, 0
	for thr := 0.5; thr < 0.951; thr += 0.05 {
		sum += MAP(dets, gts, classes, thr)
		n++
	}
	return sum / float64(n)
}

// ClassReport is one row of a Table I / Table II style report.
type ClassReport struct {
	Class   int
	Labels  int // number of ground-truth boxes
	P, R    float64
	MAP50   float64
	MAP5095 float64
}

// Report computes per-class and aggregate rows (class -1) at the standard
// 0.5 IoU operating point, in the format of the paper's Table I.
func Report(dets []Detection, gts []GroundTruth, classes []int) []ClassReport {
	var rows []ClassReport
	// Aggregate row first ("all").
	all := Match(dets, gts, 0.5)
	p, r := all.PR()
	rows = append(rows, ClassReport{
		Class: -1, Labels: len(gts), P: p, R: r,
		MAP50:   MAP(dets, gts, classes, 0.5),
		MAP5095: MAP5095(dets, gts, classes),
	})
	for _, c := range classes {
		d, g := filterClass(dets, gts, c)
		m := Match(d, g, 0.5)
		p, r := m.PR()
		rows = append(rows, ClassReport{
			Class: c, Labels: len(g), P: p, R: r,
			MAP50:   AP(dets, gts, c, 0.5),
			MAP5095: ap5095(dets, gts, c),
		})
	}
	return rows
}

func ap5095(dets []Detection, gts []GroundTruth, class int) float64 {
	sum, n := 0.0, 0
	for thr := 0.5; thr < 0.951; thr += 0.05 {
		sum += AP(dets, gts, class, thr)
		n++
	}
	return sum / float64(n)
}
