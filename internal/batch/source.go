package batch

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tdmagic/internal/imgproc"
	"tdmagic/internal/tdgen"
)

// Item is one unit of work flowing through the executor. Exactly one of
// Image, Load or Open should be set (checked in that order); Err marks an
// item the source could enumerate but not prepare — it flows through as a
// per-item failure without stopping the stream.
type Item struct {
	// Index is the item's position in the stream; the executor assigns it
	// and emits results in Index order.
	Index int
	// Name identifies the item in results (file stem, part name, …).
	Name string
	// Image is a pre-decoded picture (in-memory sources).
	Image *imgproc.Gray
	// Load produces the picture on demand; it runs on an executor worker,
	// so expensive decoding or synthesis overlaps across items.
	Load func() (*imgproc.Gray, error)
	// Open streams the picture's encoded bytes (file-backed sources). The
	// executor hashes the raw bytes first and can resolve a warm item
	// through the store's alias index without decoding it at all.
	Open func() (io.ReadCloser, error)
	// Err is a source-level preparation failure for this item.
	Err error
}

// SafeName reports whether an item name is safe to embed as a single
// path component (e.g. "<name>.spec" under an output directory, or an
// uploaded picture file in a job's input directory). Names containing
// path separators, NUL or control bytes, and the directory references "."
// and ".." are rejected — a manifest or multipart item named "../x" must
// never escape the directory it is written into.
func SafeName(name string) error {
	switch name {
	case "":
		return errors.New("batch: empty item name")
	case ".", "..":
		return fmt.Errorf("batch: unsafe item name %q", name)
	}
	for i := 0; i < len(name); i++ {
		switch c := name[i]; {
		case c == '/' || c == '\\' || c < ' ' || c == 0x7f:
			return fmt.Errorf("batch: unsafe item name %q", name)
		}
	}
	return nil
}

// Source enumerates a stream of items. Next returns io.EOF when the
// stream is drained and any other error to abort the whole run. Next is
// always called from a single goroutine, in order.
type Source interface {
	Next() (Item, error)
}

// sliceSource serves a pre-built item list.
type sliceSource struct {
	items []Item
	pos   int
}

func (s *sliceSource) Next() (Item, error) {
	if s.pos >= len(s.items) {
		return Item{}, io.EOF
	}
	it := s.items[s.pos]
	s.pos++
	return it, nil
}

// Items wraps a fixed item list as a Source.
func Items(items []Item) Source { return &sliceSource{items: items} }

// funcSource generates items by index.
type funcSource struct {
	n   int
	fn  func(i int) Item
	pos int
}

func (s *funcSource) Next() (Item, error) {
	if s.pos >= s.n {
		return Item{}, io.EOF
	}
	it := s.fn(s.pos)
	s.pos++
	return it, nil
}

// Func yields n items produced by fn(0..n-1). fn should be cheap — put
// expensive work (decoding, corruption, synthesis) behind the item's Load
// so it runs on the worker pool.
func Func(n int, fn func(i int) Item) Source { return &funcSource{n: n, fn: fn} }

// Dir enumerates every *.png in dir (sorted by name, so runs are
// deterministic) as file-backed items named by their stem. The directory
// listing is the only thing held in memory; file bytes stream through the
// executor one bounded worker at a time.
func Dir(dir string) (Source, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("batch: %w", err)
	}
	var paths []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".png") {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("batch: no .png files in %s", dir)
	}
	return Paths(paths), nil
}

// Paths wraps an explicit file list as a source of file-backed items.
func Paths(paths []string) Source {
	items := make([]Item, len(paths))
	for i, p := range paths {
		p := p
		items[i] = Item{
			Name: strings.TrimSuffix(filepath.Base(p), filepath.Ext(p)),
			Open: func() (io.ReadCloser, error) { return os.Open(p) },
		}
	}
	return Items(items)
}

// Manifest reads newline-separated picture paths from r (blank lines and
// #-comments skipped), resolving relative paths against base.
func Manifest(r io.Reader, base string) (Source, error) {
	var paths []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !filepath.IsAbs(line) && base != "" {
			line = filepath.Join(base, line)
		}
		paths = append(paths, line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("batch: read manifest: %w", err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("batch: empty manifest")
	}
	return Paths(paths), nil
}

// Gen streams n synthetic diagrams from a seeded tdgen generator. Each
// picture is synthesised on an executor worker when its turn comes and
// released after translation, so corpus size never enters resident
// memory — this is the 15k-image-corpus source.
func Gen(g *tdgen.Generator, n int) Source {
	return Func(n, func(i int) Item {
		return Item{
			Name: fmt.Sprintf("gen-%05d", i),
			Load: func() (*imgproc.Gray, error) {
				s, err := g.GenerateAt(i)
				if err != nil {
					return nil, err
				}
				return s.Image, nil
			},
		}
	})
}
