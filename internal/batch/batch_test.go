package batch_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"tdmagic/internal/batch"
	"tdmagic/internal/core"
	"tdmagic/internal/eval"
	"tdmagic/internal/imgproc"
	"tdmagic/internal/store"
	"tdmagic/internal/tdgen"
)

// The suite shares one small trained pipeline; training dominates the
// package's test time otherwise.
var (
	testOnce sync.Once
	testPipe *core.Pipeline
	testErr  error
)

func setup(t *testing.T) *core.Pipeline {
	t.Helper()
	testOnce.Do(func() {
		opts := eval.DefaultOptions()
		opts.TrainG1, opts.TrainG2, opts.TrainG3 = 10, 4, 4
		opts.Validation = 0
		testPipe, testErr = eval.TrainPipeline(opts)
	})
	if testErr != nil {
		t.Fatal(testErr)
	}
	return testPipe
}

// genSource returns a fresh n-item synthetic source; generation happens
// lazily on executor workers.
func genSource(n int) batch.Source {
	return batch.Gen(tdgen.NewSeeded(tdgen.DefaultConfig(tdgen.G1), 41), n)
}

// collect runs the executor and gathers results in emission order.
func collect(t *testing.T, pipe *core.Pipeline, src batch.Source, opts batch.Options) ([]batch.Result, batch.Stats) {
	t.Helper()
	var out []batch.Result
	stats, err := batch.Run(context.Background(), pipe, src, opts, func(r batch.Result) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, stats
}

// TestOrderInvariance pins the determinism contract: the emitted result
// sequence — indices, names and spec text — is identical for any worker
// count, including under the race detector.
func TestOrderInvariance(t *testing.T) {
	pipe := setup(t)
	const n = 12
	base, stats := collect(t, pipe, genSource(n), batch.Options{Workers: 1})
	if stats.Items != n || stats.Errors != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	for i, r := range base {
		if r.Index != i {
			t.Fatalf("result %d has index %d", i, r.Index)
		}
	}
	for _, workers := range []int{2, 7, runtime.GOMAXPROCS(0)} {
		got, _ := collect(t, pipe, genSource(n), batch.Options{Workers: workers})
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(base))
		}
		for i := range base {
			if got[i].Index != base[i].Index || got[i].Name != base[i].Name {
				t.Errorf("workers=%d: result %d is %s/#%d, want %s/#%d",
					workers, i, got[i].Name, got[i].Index, base[i].Name, base[i].Index)
			}
			if got[i].Spec != base[i].Spec {
				t.Errorf("workers=%d: result %d spec differs from workers=1", workers, i)
			}
		}
	}
}

// TestStoreWarmRunByteIdentical runs a corpus cold then warm against one
// store and requires every warm item to be a cache hit replaying the
// cold run's spec text byte for byte.
func TestStoreWarmRunByteIdentical(t *testing.T) {
	pipe := setup(t)
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := batch.Options{Workers: 4, Store: st, Config: pipe.ConfigHash()}
	const n = 8

	cold, stats := collect(t, pipe, genSource(n), opts)
	if stats.Misses != n || stats.Hits != 0 {
		t.Fatalf("cold stats = %+v", stats)
	}
	warm, stats := collect(t, pipe, genSource(n), opts)
	if stats.Hits != n || stats.Misses != 0 {
		t.Fatalf("warm stats = %+v", stats)
	}
	for i := range cold {
		if !warm[i].Cached {
			t.Errorf("warm item %d not served from store", i)
		}
		if warm[i].Spec != cold[i].Spec {
			t.Errorf("item %d: warm spec differs from cold", i)
		}
		if warm[i].Input != cold[i].Input {
			t.Errorf("item %d: input hash differs across runs", i)
		}
	}

	// A different config hash must miss: the store keys on config × input.
	other := opts
	other.Config = store.HashBytes([]byte("other config"))
	_, stats = collect(t, pipe, genSource(n), other)
	if stats.Hits != 0 {
		t.Errorf("foreign config hit the cache: %+v", stats)
	}
}

// writeCorpus renders n synthetic diagrams as PNG files and returns the dir.
func writeCorpus(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	g := tdgen.NewSeeded(tdgen.DefaultConfig(tdgen.G1), 43)
	for i := 0; i < n; i++ {
		s, err := g.GenerateAt(i)
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("img-%03d.png", i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Image.EncodePNG(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return dir
}

// TestCrashResume interrupts a corpus by deleting a subset of artifacts
// (equivalent to a run killed mid-way: atomic renames mean the store holds
// only complete entries) and requires the re-run to translate exactly the
// missing items.
func TestCrashResume(t *testing.T) {
	pipe := setup(t)
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dir := writeCorpus(t, 6)
	opts := batch.Options{Workers: 3, Store: st, Config: pipe.ConfigHash()}

	src, err := batch.Dir(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold, stats := collect(t, pipe, src, opts)
	if stats.Misses != 6 {
		t.Fatalf("cold stats = %+v", stats)
	}

	// "Crash": drop two artifacts. Aliases survive, pointing at the gone
	// objects — the executor must treat those as misses and heal them.
	for _, i := range []int{1, 4} {
		if err := st.Remove(opts.Config, cold[i].Input); err != nil {
			t.Fatal(err)
		}
	}

	src, err = batch.Dir(dir)
	if err != nil {
		t.Fatal(err)
	}
	resumed, stats := collect(t, pipe, src, opts)
	if stats.Misses != 2 || stats.Hits != 4 {
		t.Fatalf("resume stats = %+v, want 2 misses / 4 hits", stats)
	}
	for i := range cold {
		if resumed[i].Spec != cold[i].Spec {
			t.Errorf("item %d: resumed spec differs", i)
		}
		wantCached := i != 1 && i != 4
		if resumed[i].Cached != wantCached {
			t.Errorf("item %d: cached = %v, want %v", i, resumed[i].Cached, wantCached)
		}
	}
	if n, _ := st.Count(opts.Config); n != 6 {
		t.Errorf("store holds %d artifacts after resume, want 6", n)
	}
}

// TestDirWarmRunSkipsDecode pins the alias fast path: a warm run over an
// unchanged directory hits for every file (resolved via the alias index,
// without decoding).
func TestDirWarmRunSkipsDecode(t *testing.T) {
	pipe := setup(t)
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dir := writeCorpus(t, 4)
	opts := batch.Options{Workers: 2, Store: st, Config: pipe.ConfigHash()}

	src, _ := batch.Dir(dir)
	_, stats := collect(t, pipe, src, opts)
	if stats.Misses != 4 {
		t.Fatalf("cold stats = %+v", stats)
	}
	src, _ = batch.Dir(dir)
	warm, stats := collect(t, pipe, src, opts)
	if stats.Hits != 4 {
		t.Fatalf("warm stats = %+v", stats)
	}
	for _, r := range warm {
		if !r.Cached || r.Input.IsZero() {
			t.Errorf("item %s: cached=%v input=%s", r.Name, r.Cached, r.Input.Hex())
		}
	}
}

// TestPerItemErrorsDoNotStopTheRun feeds a corrupt file between two good
// ones; the bad item surfaces as its own Result.Err, the good items
// translate, and nothing is persisted for the failure.
func TestPerItemErrorsDoNotStopTheRun(t *testing.T) {
	pipe := setup(t)
	dir := writeCorpus(t, 2)
	if err := os.WriteFile(filepath.Join(dir, "img-001a-bad.png"), []byte("not a png"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	src, err := batch.Dir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out, stats := collect(t, pipe, src, batch.Options{Workers: 2, Store: st, Config: pipe.ConfigHash()})
	if stats.Items != 3 || stats.Errors != 1 || stats.Misses != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	// Sorted order: img-000, img-001, img-001a-bad.
	if out[2].Err == nil {
		t.Error("corrupt png produced no error")
	}
	if out[0].Err != nil || out[1].Err != nil {
		t.Errorf("good items failed: %v, %v", out[0].Err, out[1].Err)
	}
	if n, _ := st.Count(pipe.ConfigHash()); n != 2 {
		t.Errorf("store holds %d artifacts, want 2 (errors never persisted)", n)
	}
}

// TestEmitErrorCancelsRun: an emit failure stops the stream and is the
// run's error.
func TestEmitErrorCancelsRun(t *testing.T) {
	pipe := setup(t)
	sentinel := errors.New("sink full")
	n := 0
	_, err := batch.Run(context.Background(), pipe, genSource(50), batch.Options{Workers: 2},
		func(r batch.Result) error {
			n++
			if n == 2 {
				return sentinel
			}
			return nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if n != 2 {
		t.Fatalf("emit called %d times after error", n)
	}
}

// TestContextCancellation: a cancelled context ends the run promptly with
// the context's error.
func TestContextCancellation(t *testing.T) {
	pipe := setup(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var runErr error
	go func() {
		defer close(done)
		_, runErr = batch.Run(ctx, pipe, genSource(500), batch.Options{Workers: 2},
			func(r batch.Result) error {
				if r.Index == 1 {
					cancel()
				}
				return nil
			})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("run did not stop after cancellation")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", runErr)
	}
}

// TestSourceErrorAbortsRun: a failing source terminates the whole run.
func TestSourceErrorAbortsRun(t *testing.T) {
	pipe := setup(t)
	boom := errors.New("listing failed")
	src := &flakySource{after: 2, err: boom}
	_, err := batch.Run(context.Background(), pipe, src, batch.Options{Workers: 2}, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want source error", err)
	}
}

type flakySource struct {
	n     int
	after int
	err   error
}

func (s *flakySource) Next() (batch.Item, error) {
	if s.n >= s.after {
		return batch.Item{}, s.err
	}
	s.n++
	return batch.Item{
		Name:  fmt.Sprintf("flaky-%d", s.n),
		Image: imgproc.NewGray(8, 8),
	}, nil
}

// TestManifestSource exercises the manifest parser end to end.
func TestManifestSource(t *testing.T) {
	pipe := setup(t)
	dir := writeCorpus(t, 3)
	manifest := "# corpus\nimg-000.png\n\nimg-002.png\n"
	src, err := batch.Manifest(strings.NewReader(manifest), dir)
	if err != nil {
		t.Fatal(err)
	}
	out, stats := collect(t, pipe, src, batch.Options{Workers: 2})
	if stats.Items != 2 || stats.Errors != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if out[0].Name != "img-000" || out[1].Name != "img-002" {
		t.Errorf("names = %s, %s", out[0].Name, out[1].Name)
	}
}

// TestSafeName pins the item-name guard behind every path the executor's
// results are written to.
func TestSafeName(t *testing.T) {
	for _, name := range []string{"", ".", "..", "a/b", `a\b`, "x\x00y", "ctl\x1f"} {
		if err := batch.SafeName(name); err == nil {
			t.Errorf("SafeName(%q) accepted", name)
		}
	}
	for _, name := range []string{"img-001", "a.b", "spaced name", "..a", "UPPER_case-07"} {
		if err := batch.SafeName(name); err != nil {
			t.Errorf("SafeName(%q) rejected: %v", name, err)
		}
	}
}

// TestFaultHookFailsItems pins the executor's fault-injection seam: a
// hook failing selected items turns exactly those into per-item errors
// without disturbing the rest of the stream or its ordering.
func TestFaultHookFailsItems(t *testing.T) {
	pipe := setup(t)
	batch.FaultHook = func(it batch.Item) error {
		if it.Index%2 == 1 {
			return errors.New("injected item fault")
		}
		return nil
	}
	defer func() { batch.FaultHook = nil }()

	const n = 6
	out, stats := collect(t, pipe, genSource(n), batch.Options{Workers: 3})
	if stats.Errors != n/2 {
		t.Fatalf("errors = %d, want %d", stats.Errors, n/2)
	}
	for i, r := range out {
		if r.Index != i {
			t.Fatalf("result %d has index %d", i, r.Index)
		}
		if i%2 == 1 {
			if r.Err == nil || !strings.Contains(r.Err.Error(), "injected item fault") {
				t.Errorf("item %d: err = %v, want the injected fault", i, r.Err)
			}
		} else if r.Err != nil {
			t.Errorf("item %d failed: %v", i, r.Err)
		}
	}
}
