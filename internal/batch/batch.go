// Package batch is the streaming corpus-scale translation engine: a
// bounded source → decode → translate → persist pipeline with
// backpressure, sharded over workers, with deterministic output order and
// an optional persistent content-addressed result cache (internal/store).
//
// The executor never materialises the corpus: the source is pulled one
// item at a time, at most O(workers) items are decoded or in flight at
// once (an admission window throttles the dispatcher until earlier
// results have been emitted), and results stream to the caller in input
// order regardless of which worker finished first — the same
// ordered-reduction discipline as internal/parallel, extended to streams
// of unknown length. Resident memory is therefore bounded by the worker
// count, not the corpus size.
//
// With a store attached, each item is resolved content-addressed before
// any work happens: file-backed items first try the store's alias index
// (hash of the encoded bytes → input hash), skipping even the PNG decode
// on warm re-runs; otherwise the decoded pixels are hashed
// (store.HashImage, the tdserve LRU scheme) and the artifact looked up
// under (config hash × input hash). A hit skips translation entirely and
// replays the stored SPO, SpecText and diagnostics byte-identically; a
// miss translates and persists the artifact atomically, so an interrupted
// run resumes with only the missing items.
package batch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"tdmagic/internal/core"
	"tdmagic/internal/dataset"
	"tdmagic/internal/diag"
	"tdmagic/internal/geom"
	"tdmagic/internal/imgproc"
	"tdmagic/internal/ocr"
	"tdmagic/internal/parallel"
	"tdmagic/internal/sed"
	"tdmagic/internal/sei"
	"tdmagic/internal/spo"
	"tdmagic/internal/store"
)

// Artifact is the persisted form of one translation result — and, field
// for field, the JSON payload tdserve returns from /v1/translate (the
// serve package aliases its TranslateResponse to it), so a store shared
// between the batch engine and a serving fleet holds one artifact format.
type Artifact struct {
	// SPO is the extracted specification graph.
	SPO *spo.SPO `json:"spo"`
	// Spec is the human-readable specification text (SpecText), stored so
	// a cache hit replays it byte-identically without re-deriving it.
	Spec string `json:"spec"`
	// Diags lists the degradations the pipeline worked around.
	Diags []diag.Diagnostic `json:"diags,omitempty"`
	// Report carries the perception-level detections when the producer
	// ran with Options.PersistReport (the evaluation harness needs them
	// for Table II/III scoring); plain translation consumers leave it
	// out.
	Report *ReportArtifact `json:"report,omitempty"`
}

// ReportArtifact is the persisted subset of core.Report that scoring
// consumers need: detections and classified annotation structure, but not
// the packed binary image or contours (which dwarf everything else).
type ReportArtifact struct {
	Edges  []sed.Detection `json:"edges,omitempty"`
	Texts  []ocr.Result    `json:"texts,omitempty"`
	VLines []geom.VSeg     `json:"vlines,omitempty"`
	HLines []geom.HSeg     `json:"hlines,omitempty"`
	Arrows []dataset.Arrow `json:"arrows,omitempty"`
}

// Result is one item's outcome, delivered to the emit callback in input
// order.
type Result struct {
	Index int
	Name  string
	// SPO and Spec are the translation output (Spec == SPO.SpecText(),
	// byte-identical whether computed or replayed from the store).
	SPO  *spo.SPO
	Spec string
	// Rep is the translation report. On a cache hit it is reconstructed
	// from the artifact: diagnostics always, detections only when the
	// artifact was persisted with a report.
	Rep *core.Report
	// Err is the item's failure (source, decode, deadline, panic). Failed
	// items are never persisted, so a re-run retries them.
	Err error
	// Cached reports that translation was skipped entirely.
	Cached bool
	// Input is the canonical content hash of the picture (zero when the
	// item failed before hashing or a custom Do handled it).
	Input store.Hash
	// Aux carries a consumer-specific payload attached by a custom Do
	// (tdserve rides its per-item HTTP result through here); the default
	// item path leaves it nil.
	Aux any
}

// Stats summarises a run.
type Stats struct {
	// Items counts results emitted; Hits/Misses split them by cache
	// outcome (errors count as neither); Errors counts failed items.
	Items, Hits, Misses, Errors int
}

// Options configures a run.
type Options struct {
	// Workers is the translation fan-out (<= 0 means GOMAXPROCS).
	Workers int
	// Timeout bounds each item's translation wall-clock; one pathological
	// picture surfaces as its own Result.Err instead of stalling the run.
	Timeout time.Duration
	// Store, when non-nil, is the persistent content-addressed result
	// cache; Config must then carry the pipeline's ConfigHash.
	Store  *store.Store
	Config store.Hash
	// PersistReport stores perception detections in each artifact (and
	// refuses to hit on artifacts that lack them), for scoring consumers.
	PersistReport bool
	// Do, when non-nil, replaces the whole per-item path — hash, store
	// lookup, translate, persist — and the executor contributes only the
	// streaming, bounded fan-out and ordered emission. tdserve uses it to
	// route batch items through its own admission gate and LRU.
	Do func(ctx context.Context, it Item) Result
}

// FaultHook, when non-nil, runs at the start of every item processed
// through the default path of Process; a non-nil return fails the item as
// if preparation had failed. It is a build-tag-free fault-injection seam
// for the robustness tests (decode errors, flaky sources) and must only
// be set before any executor is running.
var FaultHook func(it Item) error

// Run pulls items from src, processes them on a bounded worker pool and
// calls emit once per item in input order. It returns when the source is
// drained, the context is cancelled, the source fails, or emit returns an
// error; per-item failures are reported through Result.Err and do not
// stop the run. The emitted result sequence is identical for any worker
// count.
func Run(ctx context.Context, pipe *core.Pipeline, src Source, opts Options, emit func(Result) error) (Stats, error) {
	workers := parallel.Resolve(opts.Workers)
	var stats Stats
	if opts.Store != nil && opts.Config.IsZero() && opts.Do == nil {
		return stats, errors.New("batch: Options.Store set without Options.Config")
	}

	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := make(chan Item, workers)
	results := make(chan Result, workers)
	// The admission window caps items dispatched but not yet emitted, so
	// the reorder buffer — and with it resident memory — stays bounded by
	// the worker count even when item 0 is the slowest of the corpus.
	window := make(chan struct{}, 2*workers)

	srcErr := make(chan error, 1)
	go func() {
		defer close(jobs)
		for i := 0; ; i++ {
			it, err := src.Next()
			if err == io.EOF {
				srcErr <- nil
				return
			}
			if err != nil {
				srcErr <- err
				return
			}
			it.Index = i
			select {
			case window <- struct{}{}:
			case <-rctx.Done():
				srcErr <- rctx.Err()
				return
			}
			select {
			case jobs <- it:
			case <-rctx.Done():
				srcErr <- rctx.Err()
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range jobs {
				r := Process(rctx, pipe, it, opts)
				select {
				case results <- r:
				case <-rctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	pending := make(map[int]Result, 2*workers)
	next := 0
	var emitErr error
	for r := range results {
		pending[r.Index] = r
		for {
			q, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			<-window
			if emitErr != nil {
				continue
			}
			stats.Items++
			switch {
			case q.Err != nil:
				stats.Errors++
			case q.Cached:
				stats.Hits++
			default:
				stats.Misses++
			}
			if emit != nil {
				if err := emit(q); err != nil {
					emitErr = err
					cancel()
				}
			}
		}
	}
	err := <-srcErr
	switch {
	case emitErr != nil:
		return stats, emitErr
	case err != nil && !errors.Is(err, context.Canceled):
		return stats, err
	case ctx.Err() != nil:
		return stats, ctx.Err()
	}
	return stats, nil
}

// Process runs one item through the full per-item path — resolve the
// picture, consult the store, translate on a miss, persist the artifact —
// and returns its Result. Run calls it from the worker pool; the jobs
// service calls it directly for each lease-held attempt, so both
// execution surfaces share one store discipline (alias index, hit
// validation, atomic persist, errors never stored).
func Process(ctx context.Context, pipe *core.Pipeline, it Item, opts Options) Result {
	if opts.Do != nil {
		r := opts.Do(ctx, it)
		r.Index, r.Name = it.Index, it.Name
		return r
	}
	r := Result{Index: it.Index, Name: it.Name}
	if it.Err != nil {
		r.Err = it.Err
		return r
	}
	if FaultHook != nil {
		if err := FaultHook(it); err != nil {
			r.Err = fmt.Errorf("batch: %s: %w", it.Name, err)
			return r
		}
	}

	img := it.Image
	var raw []byte
	if img == nil && it.Load != nil {
		loaded, err := it.Load()
		if err != nil {
			r.Err = fmt.Errorf("batch: %s: %w", it.Name, err)
			return r
		}
		img = loaded
	}
	if img == nil && it.Open != nil {
		rc, err := it.Open()
		if err != nil {
			r.Err = fmt.Errorf("batch: %s: %w", it.Name, err)
			return r
		}
		raw, err = io.ReadAll(rc)
		rc.Close()
		if err != nil {
			r.Err = fmt.Errorf("batch: %s: %w", it.Name, err)
			return r
		}
		// Warm fast path: the alias index maps the encoded bytes straight
		// to the input hash, so an unchanged file resolves to its
		// artifact without being decoded at all.
		if opts.Store != nil {
			rawKey := store.HashBytes(raw)
			if input, ok := opts.Store.GetAlias(rawKey); ok {
				if res, ok := hitResult(r, input, opts); ok {
					return res
				}
			}
			defer func() {
				// Record the alias only once the artifact exists, so the
				// index never points at a missing object.
				if r.Err == nil && !r.Input.IsZero() {
					_ = opts.Store.PutAlias(rawKey, r.Input)
				}
			}()
		}
		img, err = imgproc.DecodePNG(bytes.NewReader(raw))
		raw = nil
		if err != nil {
			r.Err = fmt.Errorf("batch: %s: %w", it.Name, err)
			return r
		}
	}
	if img == nil {
		r.Err = fmt.Errorf("batch: %s: item carries no picture", it.Name)
		return r
	}

	r.Input = store.HashImage(img)
	if opts.Store != nil {
		if res, ok := hitResult(r, r.Input, opts); ok {
			return res
		}
	}

	// A one-item core batch call buys the per-item deadline, cooperative
	// cancellation and panic isolation the batch contract promises.
	out := pipe.TranslateAllCtx(ctx, []*imgproc.Gray{img}, core.BatchOptions{
		Workers: 1,
		Timeout: opts.Timeout,
	})[0]
	r.SPO, r.Rep, r.Err = out.SPO, out.Rep, out.Err
	if r.Err != nil {
		return r
	}
	r.Spec = r.SPO.SpecText()
	if opts.Store != nil {
		a := Artifact{SPO: r.SPO, Spec: r.Spec}
		if r.Rep != nil {
			a.Diags = r.Rep.Diags
			if opts.PersistReport {
				a.Report = &ReportArtifact{
					Edges: r.Rep.Edges,
					Texts: r.Rep.Texts,
				}
				if r.Rep.SEI != nil {
					a.Report.VLines = r.Rep.SEI.VLines
					a.Report.HLines = r.Rep.SEI.HLines
					a.Report.Arrows = r.Rep.SEI.Arrows
				}
			}
		}
		if data, err := json.Marshal(a); err == nil {
			// Best-effort: a full disk must degrade to cold re-runs, not
			// fail the translation that just succeeded.
			_ = opts.Store.Put(opts.Config, r.Input, data)
		}
	}
	return r
}

// hitResult tries to resolve r from the store; ok reports success. A
// corrupt or schema-short artifact (no SPO, or a missing report when the
// consumer needs one) is treated as a miss and overwritten by the re-run.
func hitResult(r Result, input store.Hash, opts Options) (Result, bool) {
	data, ok := opts.Store.Get(opts.Config, input)
	if !ok {
		return r, false
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil || a.SPO == nil {
		opts.Store.NoteCorrupt()
		return r, false
	}
	if opts.PersistReport && a.Report == nil {
		return r, false
	}
	r.Input = input
	r.Cached = true
	r.SPO = a.SPO
	r.Spec = a.Spec
	r.Rep = &core.Report{Diags: a.Diags}
	if a.Report != nil {
		r.Rep.Edges = a.Report.Edges
		r.Rep.Texts = a.Report.Texts
		r.Rep.SEI = &sei.Output{
			SPO:    a.SPO,
			VLines: a.Report.VLines,
			HLines: a.Report.HLines,
			Arrows: a.Report.Arrows,
		}
	}
	return r, true
}
