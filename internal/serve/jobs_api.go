package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"path/filepath"
	"strings"

	"tdmagic/internal/batch"
	"tdmagic/internal/core"
	"tdmagic/internal/jobs"
)

// The durable job API. Where /v1/translate answers inline under a
// deadline, /v1/jobs accepts a corpus, journals it, and answers 202: the
// job service translates it asynchronously with leases, retries and
// crash-safe resume, and the client polls status and streams results.
//
//	POST   /v1/jobs              multipart PNG parts, or JSON {"manifest": [paths]}
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         status snapshot (?items=1 for per-item states)
//	GET    /v1/jobs/{id}/results ordered NDJSON stream, one ItemResult per line
//	DELETE /v1/jobs/{id}         cancel

// jobSubmission is the JSON body of a manifest-style submission.
type jobSubmission struct {
	// Manifest lists picture paths relative to the server's configured
	// manifest root.
	Manifest []string `json:"manifest"`
}

// handleJobs serves the /v1/jobs collection: POST submits, GET lists.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleJobSubmit(w, r)
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Jobs []jobs.Snapshot `json:"jobs"`
		}{s.cfg.Jobs.List()})
	default:
		s.writeError(w, http.StatusMethodNotAllowed, "POST a job or GET the job list", nil)
	}
}

// handleJobSubmit accepts a job as either multipart/form-data (PNG file
// parts, persisted under the job directory) or application/json (a
// manifest of paths under the configured manifest root).
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	mediaType, params, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if err != nil {
		s.badRequests.Inc()
		s.writeError(w, http.StatusBadRequest, "unreadable content type", nil)
		return
	}
	var specs []jobs.ItemSpec
	switch {
	case mediaType == "multipart/form-data":
		// Part bytes accumulate in specs until Submit journals them, so
		// the whole upload is bounded, not just each part: MaxBytesReader
		// fails the read once the body exceeds the job-upload budget.
		body := http.MaxBytesReader(w, r.Body, s.cfg.MaxJobBodyBytes)
		specs, err = s.collectUploadSpecs(multipart.NewReader(body, params["boundary"]))
	case mediaType == "application/json":
		specs, err = s.collectManifestSpecs(r.Body)
	default:
		err = errors.New("content type must be multipart/form-data or application/json")
	}
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.badRequests.Inc()
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("job upload exceeds the %d-byte limit", s.cfg.MaxJobBodyBytes), nil)
			return
		}
		s.badRequests.Inc()
		s.writeError(w, http.StatusBadRequest, err.Error(), nil)
		return
	}
	sn, err := s.cfg.Jobs.SubmitRequest(requestID(r), specs)
	if err != nil {
		if errors.Is(err, jobs.ErrClosed) {
			s.writeError(w, http.StatusServiceUnavailable, "service is draining", nil)
			return
		}
		s.badRequests.Inc()
		s.writeError(w, http.StatusBadRequest, err.Error(), nil)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/jobs/"+sn.ID)
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(sn)
}

// collectUploadSpecs reads multipart PNG parts into item specs. Accepted
// parts stay buffered until Submit journals the job, so the reader
// enforces its limits while reading, before memory is committed: each
// part is size-capped and screened with the same magic + IHDR raster
// check as the synchronous endpoints, the part count is capped at the
// job service's item limit, and the caller bounds the whole body.
func (s *Server) collectUploadSpecs(mr *multipart.Reader) ([]jobs.ItemSpec, error) {
	maxParts := s.cfg.Jobs.MaxItems()
	var specs []jobs.ItemSpec
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			return specs, nil
		}
		if err != nil {
			return nil, fmt.Errorf("read multipart body: %w", err)
		}
		if len(specs) >= maxParts {
			part.Close()
			return nil, fmt.Errorf("job exceeds the %d-item limit", maxParts)
		}
		name := part.FileName()
		if name == "" {
			name = part.FormName()
		}
		name = strings.TrimSuffix(name, filepath.Ext(name))
		if err := batch.SafeName(name); err != nil {
			part.Close()
			return nil, err
		}
		data, err := io.ReadAll(io.LimitReader(part, s.cfg.MaxBodyBytes+1))
		part.Close()
		if err != nil {
			return nil, fmt.Errorf("read part %q: %w", name, err)
		}
		if int64(len(data)) > s.cfg.MaxBodyBytes {
			return nil, fmt.Errorf("part %q exceeds the %d-byte limit", name, s.cfg.MaxBodyBytes)
		}
		if msg := screenPNG(data); msg != "" {
			return nil, fmt.Errorf("part %q: %s", name, msg)
		}
		specs = append(specs, jobs.ItemSpec{Name: name, Data: bytes.NewReader(data)})
	}
}

// screenPNG applies the cheap pre-decode screening (PNG signature, IHDR
// raster bound) to an uploaded job item; full decoding happens on a job
// worker under its own deadline.
func screenPNG(data []byte) string {
	if len(data) < 24 || [8]byte(data[:8]) != pngMagic {
		return "not a PNG"
	}
	width := int64(binary.BigEndian.Uint32(data[16:20]))
	height := int64(binary.BigEndian.Uint32(data[20:24]))
	if width <= 0 || height <= 0 || width*height > core.MaxPixels {
		return fmt.Sprintf("declared %dx%d raster exceeds the %d-pixel limit", width, height, core.MaxPixels)
	}
	return ""
}

// collectManifestSpecs reads a JSON manifest submission, resolving every
// path under the configured manifest root and refusing any that would
// escape it.
func (s *Server) collectManifestSpecs(body io.Reader) ([]jobs.ItemSpec, error) {
	if s.cfg.JobsManifestRoot == "" {
		return nil, errors.New("manifest submissions are not enabled on this server")
	}
	var sub jobSubmission
	dec := json.NewDecoder(io.LimitReader(body, 1<<20))
	if err := dec.Decode(&sub); err != nil {
		return nil, fmt.Errorf("decode submission: %w", err)
	}
	if len(sub.Manifest) == 0 {
		return nil, errors.New("empty manifest")
	}
	specs := make([]jobs.ItemSpec, len(sub.Manifest))
	for i, p := range sub.Manifest {
		if filepath.IsAbs(p) || !filepath.IsLocal(p) {
			return nil, fmt.Errorf("manifest path %q escapes the manifest root", p)
		}
		name := strings.TrimSuffix(filepath.Base(p), filepath.Ext(p))
		if err := batch.SafeName(name); err != nil {
			return nil, err
		}
		specs[i] = jobs.ItemSpec{Name: name, Path: filepath.Join(s.cfg.JobsManifestRoot, p)}
	}
	return specs, nil
}

// handleJob serves one job's resources: GET status, GET results, DELETE.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" || (sub != "" && sub != "results" && sub != "events") {
		s.writeError(w, http.StatusNotFound, "no such resource", nil)
		return
	}
	switch {
	case sub == "results" && r.Method == http.MethodGet:
		s.handleJobResults(w, id)
	case sub == "events" && r.Method == http.MethodGet:
		s.handleJobEvents(w, r, id)
	case sub == "" && r.Method == http.MethodGet:
		sn, ok := s.cfg.Jobs.Get(id, r.URL.Query().Get("items") == "1")
		if !ok {
			s.writeError(w, http.StatusNotFound, "no such job", nil)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(sn)
	case sub == "" && r.Method == http.MethodDelete:
		sn, err := s.cfg.Jobs.Cancel(id)
		if err != nil {
			s.writeError(w, http.StatusNotFound, "no such job", nil)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(sn)
	default:
		s.writeError(w, http.StatusMethodNotAllowed, "GET status or results, DELETE to cancel", nil)
	}
}

// handleJobEvents streams a job's live lifecycle as NDJSON: a snapshot
// line first (?items=1 adds per-item states to it), then every event as
// it happens — claims, heartbeats, retries with backoff delays,
// quarantines, store hit/miss on completion, checkpoints, the terminal
// state — each line flushed immediately. The stream ends (EOF) when the
// job's scheduler exits: terminal completion or a shutdown drain; a
// watcher reconnects after a restart and the fresh snapshot shows the
// resumed position. A subscriber that reads too slowly loses the newest
// events and sees an in-band {"type":"truncated","dropped":N} marker at
// the gap, so a stalled consumer can never wedge the job service.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request, id string) {
	sub, err := s.cfg.Jobs.Events(id, r.URL.Query().Get("items") == "1")
	if err != nil {
		s.writeError(w, http.StatusNotFound, "no such job", nil)
		return
	}
	defer sub.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		ev, err := sub.Next(r.Context())
		if err != nil {
			return // io.EOF (stream closed) or the client went away
		}
		if enc.Encode(ev) != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleJobResults streams a terminal job's ordered results as NDJSON:
// one jobs.ItemResult per line, in submission order, replayed from the
// artifact store. The stream of a resumed job is byte-identical to an
// uninterrupted run — the encoding carries nothing run-volatile.
func (s *Server) handleJobResults(w http.ResponseWriter, id string) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	err := s.cfg.Jobs.Results(id, func(r jobs.ItemResult) error {
		return enc.Encode(r)
	})
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		s.writeError(w, http.StatusNotFound, "no such job", nil)
	case errors.Is(err, jobs.ErrRunning):
		s.writeError(w, http.StatusConflict, "job is still running; poll its status", nil)
	}
}
