package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"

	"tdmagic/internal/obs"
)

// syncBuffer is a goroutine-safe bytes.Buffer: the access log writes from
// server goroutines while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// TestRequestIDHeader pins the correlation contract: every response
// carries an X-Request-ID, a well-formed client ID is echoed back, and a
// garbage one is replaced rather than reflected.
func TestRequestIDHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if id := resp.Header.Get("X-Request-ID"); len(id) != 16 {
		t.Errorf("generated request ID %q, want 16 hex chars", id)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "client-chosen-42")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if id := resp.Header.Get("X-Request-ID"); id != "client-chosen-42" {
		t.Errorf("client request ID not echoed: got %q", id)
	}

	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "evil\tid")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if id := resp.Header.Get("X-Request-ID"); strings.Contains(id, "\t") || id == "evil\tid" {
		t.Errorf("unprintable client request ID reflected: %q", id)
	}
}

// TestDebugTrace pins ?debug=1: the response embeds a trace whose request
// ID matches the X-Request-ID header and which contains every pipeline
// stage span — even when the picture is already cached, because debug
// bypasses the cache read.
func TestDebugTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	_, val := fixture(t)
	png := pngBytes(t, val[0])

	// Warm the cache first so the debug request would hit it if it didn't
	// bypass the read.
	readBody(t, postPNG(t, ts.URL, png))

	resp, err := http.Post(ts.URL+"/v1/translate?debug=1", "image/png", bytes.NewReader(png))
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug request: %d %s", resp.StatusCode, body)
	}
	var payload struct {
		TranslateResponse
		Trace *obs.Export `json:"trace"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatalf("debug response not JSON: %v", err)
	}
	if payload.SPO == nil || payload.Spec == "" {
		t.Errorf("debug response lost the translation payload: %s", body)
	}
	if payload.Trace == nil {
		t.Fatalf("debug response has no trace: %s", body)
	}
	if got, want := payload.Trace.RequestID, resp.Header.Get("X-Request-ID"); got != want {
		t.Errorf("trace request ID %q != response header %q", got, want)
	}
	for _, stage := range []string{"translate", "lad", "sed", "ocr", "sei"} {
		if payload.Trace.Span(stage) == nil {
			t.Errorf("debug trace missing %s span", stage)
		}
	}
	// The inline export must round-trip through the parser.
	raw, err := json.Marshal(payload.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ParseExport(raw); err != nil {
		t.Errorf("inline trace does not re-parse: %v", err)
	}

	// A plain request must not carry a trace.
	body = readBody(t, postPNG(t, ts.URL, png))
	if bytes.Contains(body, []byte(`"trace"`)) {
		t.Errorf("non-debug response leaked a trace: %s", body)
	}
}

// TestVersionEndpoint checks GET /version returns the build identity.
func TestVersionEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/version: %d %s", resp.StatusCode, body)
	}
	var v struct {
		Version   string `json:"version"`
		GoVersion string `json:"go_version"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("/version not JSON: %v", err)
	}
	if v.Version == "" || v.GoVersion == "" {
		t.Errorf("/version incomplete: %s", body)
	}
}

// TestPprofEndpoints checks the profiling handlers are mounted.
func TestPprofEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: %d %s", path, resp.StatusCode, body)
		}
		if len(body) == 0 {
			t.Errorf("%s: empty body", path)
		}
	}
}

// TestMetricsContentTypeAndHitRatio pins the two metrics satellites: the
// full Prometheus text content type and the scrape-time hit-ratio gauge.
func TestMetricsContentTypeAndHitRatio(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, val := fixture(t)
	png := pngBytes(t, val[0])
	readBody(t, postPNG(t, ts.URL, png)) // miss
	readBody(t, postPNG(t, ts.URL, png)) // hit

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := string(readBody(t, resp))
	if got, want := resp.Header.Get("Content-Type"), "text/plain; version=0.0.4; charset=utf-8"; got != want {
		t.Errorf("metrics Content-Type = %q, want %q", got, want)
	}
	if !strings.Contains(body, "tdserve_cache_hit_ratio 0.5\n") {
		t.Errorf("exposition missing hit ratio 0.5:\n%s", body)
	}
	for _, stage := range []string{"lad", "sed", "ocr", "sei"} {
		if !strings.Contains(body, `tdmagic_stage_seconds_count{stage="`+stage+`"} 1`) {
			t.Errorf("exposition missing stage=%s histogram (one uncached translation)", stage)
		}
	}
}

// TestAccessLog checks one structured log line is emitted per request,
// correlated by the response's request ID.
func TestAccessLog(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestServer(t, Config{Workers: 1, Logger: obs.NewLogger(&buf, nil)})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	line := struct {
		Msg       string `json:"msg"`
		RequestID string `json:"request_id"`
		Method    string `json:"method"`
		Path      string `json:"path"`
		Status    int    `json:"status"`
	}{}
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("access log is not one JSON line: %v in %q", err, buf.Bytes())
	}
	if line.Method != "GET" || line.Path != "/healthz" || line.Status != http.StatusOK {
		t.Errorf("access log fields wrong: %+v", line)
	}
	if line.RequestID != resp.Header.Get("X-Request-ID") {
		t.Errorf("access log request ID %q != header %q", line.RequestID, resp.Header.Get("X-Request-ID"))
	}
}
