package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tdmagic/internal/jobs"
	"tdmagic/internal/metrics"
	"tdmagic/internal/store"
)

// newJobsServer builds a server with the durable job API mounted over
// fresh store and journal directories.
func newJobsServer(t *testing.T, jcfg jobs.Config, manifestRoot string) (*Server, *httptest.Server) {
	t.Helper()
	return newJobsServerCfg(t, jcfg, func(c *Config) { c.JobsManifestRoot = manifestRoot })
}

// newJobsServerCfg is newJobsServer with a hook to adjust the serve
// config (upload limits, manifest root) before the server starts.
func newJobsServerCfg(t *testing.T, jcfg jobs.Config, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	pipe, _ := fixture(t)
	pipe.Metrics = nil
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	jcfg.Registry = reg
	if jcfg.BackoffBase == 0 {
		jcfg.BackoffBase = time.Millisecond
	}
	js, err := jobs.Open(t.TempDir(), pipe, st, jcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Workers:  2,
		Store:    st,
		Jobs:     js,
		Registry: reg,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s := New(pipe, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_ = js.Close(ctx)
	})
	return s, ts
}

// multipartJob encodes PNG bodies as a multipart job submission.
func multipartJob(t *testing.T, names []string, bodies [][]byte) (*bytes.Buffer, string) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for i, name := range names {
		part, err := mw.CreateFormFile("file", name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := part.Write(bodies[i]); err != nil {
			t.Fatal(err)
		}
	}
	mw.Close()
	return &buf, mw.FormDataContentType()
}

// pollJob polls a job's status until it is terminal.
func pollJob(t *testing.T, base, id string) jobs.Snapshot {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var sn jobs.Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&sn); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if sn.State.Terminal() {
			return sn
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, sn.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJobsEndToEnd drives the four job endpoints over HTTP: submit a
// multipart corpus, poll to done, stream ordered NDJSON results, and
// list the collection.
func TestJobsEndToEnd(t *testing.T) {
	_, ts := newJobsServer(t, jobs.Config{Workers: 2}, "")
	_, val := fixture(t)

	names := []string{"pic-a.png", "pic-b.png", "pic-c.png"}
	bodies := [][]byte{pngBytes(t, val[0]), pngBytes(t, val[1]), pngBytes(t, val[2])}
	body, ctype := multipartJob(t, names, bodies)
	resp, err := http.Post(ts.URL+"/v1/jobs", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, readBody(t, resp))
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/jobs/") {
		t.Errorf("Location = %q", loc)
	}
	var sn jobs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&sn); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sn.ID == "" || sn.Stats.Total != 3 {
		t.Fatalf("snapshot = %+v", sn)
	}

	final := pollJob(t, ts.URL, sn.ID)
	if final.State != jobs.StateDone || final.Stats.Done != 3 {
		t.Fatalf("final = %+v", final)
	}

	// Ordered NDJSON results, named by upload stem.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + sn.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("results content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	i := 0
	for sc.Scan() {
		var r jobs.ItemResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatal(err)
		}
		want := strings.TrimSuffix(names[i], ".png")
		if r.Index != i || r.Name != want || r.Spec == "" || r.Error != "" {
			t.Errorf("line %d = %+v, want name %s", i, r, want)
		}
		i++
	}
	resp.Body.Close()
	if i != 3 {
		t.Fatalf("streamed %d results, want 3", i)
	}

	// Status with per-item detail, and the collection listing.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + sn.ID + "?items=1")
	if err != nil {
		t.Fatal(err)
	}
	var detailed jobs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&detailed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(detailed.Items) != 3 || detailed.Items[0].State != jobs.ItemDone {
		t.Fatalf("detailed items = %+v", detailed.Items)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Jobs []jobs.Snapshot `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Jobs) != 1 || listing.Jobs[0].ID != sn.ID {
		t.Fatalf("listing = %+v", listing)
	}
}

// TestJobsSubmissionGuardrails pins the rejection paths: traversal part
// names, non-PNG parts, manifest submissions when disabled, and manifest
// paths escaping the root.
func TestJobsSubmissionGuardrails(t *testing.T) {
	_, ts := newJobsServer(t, jobs.Config{Workers: 1}, "")
	_, val := fixture(t)
	png := pngBytes(t, val[0])

	post := func(body *bytes.Buffer, ctype string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs", ctype, body)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// mime/multipart strips directory components from part filenames
	// (RFC 7578), so "../evil.png" cannot arrive whole — but a file
	// literally named "...png" survives that and stems to "..", which the
	// server-side name guard must refuse.
	body, ctype := multipartJob(t, []string{"...png"}, [][]byte{png})
	if got := post(body, ctype); got != http.StatusBadRequest {
		t.Errorf("traversal part name accepted: %d", got)
	}
	body, ctype = multipartJob(t, []string{"ok.png"}, [][]byte{[]byte("not a png")})
	if got := post(body, ctype); got != http.StatusBadRequest {
		t.Errorf("non-PNG part accepted: %d", got)
	}
	if got := post(bytes.NewBufferString(`{"manifest":["a.png"]}`), "application/json"); got != http.StatusBadRequest {
		t.Errorf("manifest accepted with no manifest root: %d", got)
	}
	if got := post(bytes.NewBufferString(`{"manifest":[]}`), "application/json"); got != http.StatusBadRequest {
		t.Errorf("empty submission accepted: %d", got)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/nonexistent")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d", resp.StatusCode)
	}
}

// TestJobsManifestSubmission exercises the manifest path: files under the
// configured root are accepted, escapes are refused.
func TestJobsManifestSubmission(t *testing.T) {
	root := t.TempDir()
	_, val := fixture(t)
	for i := 0; i < 2; i++ {
		if err := os.WriteFile(filepath.Join(root, fmt.Sprintf("d-%d.png", i)), pngBytes(t, val[i]), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, ts := newJobsServer(t, jobs.Config{Workers: 2}, root)

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"manifest":["d-0.png","d-1.png"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("manifest submit = %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var sn jobs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&sn); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if final := pollJob(t, ts.URL, sn.ID); final.State != jobs.StateDone || final.Stats.Done != 2 {
		t.Fatalf("final = %+v", final)
	}

	for _, m := range []string{`{"manifest":["../escape.png"]}`, `{"manifest":["/etc/passwd"]}`} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(m))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("manifest %s accepted: %d", m, resp.StatusCode)
		}
	}
}

// TestJobsCancelAndConflict pins the lifecycle edges over HTTP: results
// of a live job answer 409, DELETE cancels, and a cancelled job's
// results mark unexecuted items.
func TestJobsCancelAndConflict(t *testing.T) {
	_, ts := newJobsServer(t, jobs.Config{Workers: 1, Throttle: 50 * time.Millisecond}, "")
	_, val := fixture(t)
	names := []string{"a.png", "b.png", "c.png", "d.png"}
	bodies := make([][]byte, len(names))
	for i := range names {
		bodies[i] = pngBytes(t, val[i%len(val)])
	}
	body, ctype := multipartJob(t, names, bodies)
	resp, err := http.Post(ts.URL+"/v1/jobs", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	var sn jobs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&sn); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/v1/jobs/" + sn.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("results of a live job = %d, want 409", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sn.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var cancelled jobs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&cancelled); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cancelled.State != jobs.StateCancelled {
		t.Fatalf("after DELETE: %+v", cancelled)
	}
	if final := pollJob(t, ts.URL, sn.ID); final.State != jobs.StateCancelled {
		t.Fatalf("final = %+v", final)
	}
}

// TestJobsUploadLimits pins the streamed-side guards on job uploads.
// Accepted parts stay in memory until Submit, so both limits must trip
// while the body is being read, not after it is buffered: the part count
// is refused at the job service's item limit, and the whole multipart
// body is bounded by MaxJobBodyBytes with a 413.
func TestJobsUploadLimits(t *testing.T) {
	_, val := fixture(t)
	png := pngBytes(t, val[0])
	names := []string{"a.png", "b.png", "c.png", "d.png"}
	bodies := [][]byte{png, png, png, png}

	post := func(ts *httptest.Server) *http.Response {
		t.Helper()
		body, ctype := multipartJob(t, names, bodies)
		resp, err := http.Post(ts.URL+"/v1/jobs", ctype, body)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Four parts against a three-item job service.
	_, ts := newJobsServerCfg(t, jobs.Config{Workers: 1, MaxItems: 3}, nil)
	resp := post(ts)
	msg := string(readBody(t, resp))
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(msg, "3-item limit") {
		t.Errorf("over-count upload: status %d, body %q", resp.StatusCode, msg)
	}

	// A body budget smaller than the four parts: the stream is cut off
	// mid-read with 413 rather than buffered whole.
	_, ts2 := newJobsServerCfg(t, jobs.Config{Workers: 1}, func(c *Config) {
		c.MaxJobBodyBytes = int64(len(png)) + 512
	})
	resp = post(ts2)
	msg = string(readBody(t, resp))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized upload: status %d, body %q, want 413", resp.StatusCode, msg)
	}
}

// TestReadyzLifecycle pins the liveness/readiness split: /readyz answers
// 200 while serving, 503 when the store loses writability, and 503 once
// a drain begins — while /healthz stays 200 throughout.
func TestReadyzLifecycle(t *testing.T) {
	storeDir := t.TempDir()
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Workers: 1, Store: st})

	status := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("/readyz"); got != http.StatusOK {
		t.Fatalf("ready replica /readyz = %d", got)
	}

	// Break the store's staging area: writes can no longer land.
	if err := os.RemoveAll(filepath.Join(storeDir, "tmp")); err != nil {
		t.Fatal(err)
	}
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("unwritable store /readyz = %d, want 503", got)
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Errorf("unwritable store /healthz = %d, want 200 (liveness is not readiness)", got)
	}
	if err := os.MkdirAll(filepath.Join(storeDir, "tmp"), 0o755); err != nil {
		t.Fatal(err)
	}
	if got := status("/readyz"); got != http.StatusOK {
		t.Errorf("healed store /readyz = %d", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("draining /readyz = %d, want 503", got)
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Errorf("draining /healthz = %d, want 200", got)
	}
}

// TestRetryAfterAdaptive pins the 429 hint: with no latency samples it
// falls back to the configured deadline; once the observed mean latency
// is known it scales with the wait-queue depth and stays clamped to
// [1s, Timeout].
func TestRetryAfterAdaptive(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2, Timeout: 10 * time.Second})

	if got := s.retryAfterSeconds(); got != "10" {
		t.Errorf("no samples: Retry-After = %s, want the 10s deadline", got)
	}

	// Mean latency 500ms; an empty queue turns over in under a second.
	s.pipe.Metrics.Latency.Observe(0.5)
	s.pipe.Metrics.Latency.Observe(0.5)
	if got := s.retryAfterSeconds(); got != "1" {
		t.Errorf("idle queue: Retry-After = %s, want 1", got)
	}
	// Six waiters across two workers: ceil(7/2) = 4 turns x 500ms = 2s.
	s.queued.Set(6)
	if got := s.retryAfterSeconds(); got != "2" {
		t.Errorf("deep queue: Retry-After = %s, want 2", got)
	}
	// A pathological queue stays clamped at the deadline.
	s.queued.Set(1000)
	if got := s.retryAfterSeconds(); got != "10" {
		t.Errorf("clamp: Retry-After = %s, want 10", got)
	}
	s.queued.Set(0)
}
