package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"sort"
	"sync"
	"testing"

	"tdmagic/internal/monitor"
	"tdmagic/internal/spo"
	"tdmagic/internal/store"
	"tdmagic/internal/vcd"
)

// vpart is one ordered multipart field of a verify request.
type vpart struct {
	name string
	data []byte
}

// verifyBody assembles a multipart/form-data body with the parts in the
// given wire order (order matters: /v1/verify streams the vcd part).
func verifyBody(t *testing.T, parts []vpart) (*bytes.Buffer, string) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for _, p := range parts {
		var (
			w   io.Writer
			err error
		)
		if p.name == "image" || p.name == "vcd" {
			w, err = mw.CreateFormFile(p.name, p.name)
		} else {
			w, err = mw.CreateFormField(p.name)
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(p.data); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	return &buf, mw.FormDataContentType()
}

// postVerify POSTs an ordered multipart body to /v1/verify.
func postVerify(t *testing.T, url string, parts []vpart) *http.Response {
	t.Helper()
	body, ctype := verifyBody(t, parts)
	resp, err := http.Post(url+"/v1/verify", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// verifyStream is a parsed NDJSON verification response.
type verifyStream struct {
	Spec     verifySpecLine
	Verdicts []monitor.Verdict
	Summary  verifySummaryLine
	Errors   []verifyErrorLine
}

// readVerifyStream decodes the NDJSON lines of a 200 verify response.
func readVerifyStream(t *testing.T, resp *http.Response) verifyStream {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("verify status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q, want application/x-ndjson", ct)
	}
	var out verifyStream
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var typ struct {
			Type string `json:"type"`
		}
		line := sc.Bytes()
		if err := json.Unmarshal(line, &typ); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch typ.Type {
		case "spec":
			if err := json.Unmarshal(line, &out.Spec); err != nil {
				t.Fatal(err)
			}
		case "verdict":
			var v monitor.Verdict
			if err := json.Unmarshal(line, &v); err != nil {
				t.Fatal(err)
			}
			out.Verdicts = append(out.Verdicts, v)
		case "summary":
			if err := json.Unmarshal(line, &out.Summary); err != nil {
				t.Fatal(err)
			}
		case "error":
			var e verifyErrorLine
			if err := json.Unmarshal(line, &e); err != nil {
				t.Fatal(err)
			}
			out.Errors = append(out.Errors, e)
		default:
			t.Fatalf("unknown line type %q", typ.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// goldenSample translates fixture samples until it finds one whose SPO
// SynthesizeTrace can realize (consecutive per-signal edge indices) with
// at least one cross-signal constraint, and returns the encoded PNG plus
// the translated SPO.
func goldenSample(t *testing.T, url string) ([]byte, *spo.SPO, string) {
	t.Helper()
	_, val := fixture(t)
	for _, s := range val {
		png := pngBytes(t, s)
		resp := postPNG(t, url, png)
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			continue
		}
		hash := resp.Header.Get("X-Input-Hash")
		if hash == "" {
			t.Fatal("translate response missing X-Input-Hash")
		}
		var tr TranslateResponse
		if err := json.Unmarshal(body, &tr); err != nil {
			t.Fatal(err)
		}
		p := tr.SPO
		if p == nil || len(p.Constraints) == 0 {
			continue
		}
		if _, err := monitor.SynthesizeTrace(&monitor.Spec{SPO: p}, 0); err != nil {
			continue
		}
		c := p.Constraints[0]
		if p.Nodes[c.Src].Signal == p.Nodes[c.Dst].Signal {
			continue
		}
		return png, p, hash
	}
	t.Skip("no fixture sample translates to a synthesizable SPO")
	return nil, nil, ""
}

// synthVCD renders a satisfying dump for the SPO, optionally shifting one
// signal's waveform by delta seconds.
func synthVCD(t *testing.T, p *spo.SPO, shiftSignal string, delta float64) []byte {
	t.Helper()
	tr, err := monitor.SynthesizeTrace(&monitor.Spec{SPO: p}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if shiftSignal != "" {
		sig := tr.Signal(shiftSignal)
		if sig == nil {
			t.Fatalf("signal %q not in synthesized trace", shiftSignal)
		}
		for i := range sig.Points {
			sig.Points[i].T += delta
		}
	}
	var buf bytes.Buffer
	if err := vcd.Write(&buf, tr, "1us"); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestVerifyGoldenEndToEnd closes the full loop: render a synthetic TD,
// translate it over HTTP, synthesize a satisfying dump from the
// translated spec, verify it cleanly, then perturb exactly one delay in
// the dump and assert exactly that constraint is reported violated with
// the shifted counterexample timestamp. The streamed verdicts must be
// byte-identical to whole-trace monitor.Check over the same dump.
func TestVerifyGoldenEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	defer ts.Close()
	png, p, hash := goldenSample(t, ts.URL)

	c0 := p.Constraints[0]
	label := c0.Delay
	delays, _ := json.Marshal(verifyRequestSpec{
		Delays: map[string]monitor.Bounds{label: {Min: 0.5, Max: 1.5}},
	})
	clean := synthVCD(t, p, "", 0)

	// Clean dump: every constraint passes.
	st := readVerifyStream(t, postVerify(t, ts.URL, []vpart{
		{"image", png}, {"delays", delays}, {"vcd", clean},
	}))
	if len(st.Errors) > 0 {
		t.Fatalf("stream error: %v", st.Errors)
	}
	if !st.Summary.OK || st.Summary.Violations != 0 {
		t.Fatalf("clean dump not OK: %+v verdicts %+v", st.Summary, st.Verdicts)
	}
	if len(st.Verdicts) != len(p.Constraints) {
		t.Fatalf("got %d verdicts, want %d", len(st.Verdicts), len(p.Constraints))
	}
	if st.Spec.LTL == "" || st.Spec.SVA == "" {
		t.Fatalf("spec line missing property texts: %+v", st.Spec)
	}
	if st.Spec.InputHash != hash {
		t.Fatalf("spec line hash %q, want %q", st.Spec.InputHash, hash)
	}

	// Streaming invariance: the streamed verdicts must match whole-trace
	// monitor.Check over the same dump, byte for byte.
	mspec := &monitor.Spec{SPO: p, Delays: map[string]monitor.Bounds{label: {Min: 0.5, Max: 1.5}}}
	wholeTr, err := vcd.Parse(bytes.NewReader(clean))
	if err != nil {
		t.Fatal(err)
	}
	res, err := monitor.Check(mspec, wholeTr)
	if err != nil {
		t.Fatal(err)
	}
	want := monitor.ResultVerdicts(mspec, res)
	got := append([]monitor.Verdict(nil), st.Verdicts...)
	sort.Slice(got, func(i, j int) bool { return got[i].Index < got[j].Index })
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if !bytes.Equal(wb, gb) {
		t.Fatalf("streamed verdicts diverge from monitor.Check:\n  stream: %s\n  check:  %s", gb, wb)
	}

	// Find the clean verdict for constraint 0 so the perturbed run's
	// counterexample timestamps can be predicted exactly.
	var cleanV monitor.Verdict
	for _, v := range st.Verdicts {
		if v.Index == 0 {
			cleanV = v
		}
	}

	// Perturb exactly one delay: shift the constraint's destination signal
	// late enough to leave [0.5, 1.5].
	perturbed := synthVCD(t, p, p.Nodes[c0.Dst].Signal, 2)
	st2 := readVerifyStream(t, postVerify(t, ts.URL, []vpart{
		{"ref", []byte(hash)}, {"delays", delays}, {"vcd", perturbed},
	}))
	if len(st2.Errors) > 0 {
		t.Fatalf("stream error: %v", st2.Errors)
	}
	if st2.Summary.OK {
		t.Fatalf("perturbed dump passed: %+v", st2.Summary)
	}
	var bad []monitor.Verdict
	for _, v := range st2.Verdicts {
		if !v.Pass {
			bad = append(bad, v)
		}
	}
	if len(bad) != 1 || bad[0].Index != 0 {
		t.Fatalf("want exactly constraint 0 violated, got %+v", bad)
	}
	wantMeasured := cleanV.Measured + 2
	if diff := bad[0].Measured - wantMeasured; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("violation measured %g, want %g", bad[0].Measured, wantMeasured)
	}
	wantDst := cleanV.DstTime + 2
	if diff := bad[0].DstTime - wantDst; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("counterexample dst time %g, want %g", bad[0].DstTime, wantDst)
	}
	wantReason := fmt.Sprintf("delay %.4g outside [%.4g, %.4g]", bad[0].Measured, 0.5, 1.5)
	if bad[0].Reason != wantReason {
		t.Fatalf("violation reason %q, want %q", bad[0].Reason, wantReason)
	}
}

// TestVerifyRefSkipsTranslation pins the store-backed reuse: after one
// translation, verifying by ref answers from the artifact cache without
// admitting another translation.
func TestVerifyRefSkipsTranslation(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Workers: 2, Store: st})
	defer ts.Close()
	_, p, hash := goldenSample(t, ts.URL)
	clean := synthVCD(t, p, "", 0)

	translations := s.requests.Value()
	stream := readVerifyStream(t, postVerify(t, ts.URL, []vpart{
		{"ref", []byte(hash)}, {"vcd", clean},
	}))
	if got := s.requests.Value(); got != translations {
		t.Fatalf("ref verify ran %d translations, want 0", got-translations)
	}
	if !stream.Summary.OK {
		t.Fatalf("ref verify failed: %+v", stream.Summary)
	}
	if !stream.Spec.Cached {
		t.Fatal("ref verify not marked cached")
	}

	// The ref survives a cold restart through the persistent store.
	s2, ts2 := newTestServer(t, Config{Workers: 2, Store: st})
	defer ts2.Close()
	before := s2.requests.Value()
	stream2 := readVerifyStream(t, postVerify(t, ts2.URL, []vpart{
		{"ref", []byte(hash)}, {"vcd", clean},
	}))
	if got := s2.requests.Value(); got != before {
		t.Fatalf("restarted ref verify ran %d translations, want 0", got-before)
	}
	if !stream2.Summary.OK {
		t.Fatalf("restarted ref verify failed: %+v", stream2.Summary)
	}
}

// TestVerifyConcurrentSharedPipeline hammers /v1/verify from many
// goroutines sharing one Pipeline and one store — the -race seatbelt for
// the whole verification slice.
func TestVerifyConcurrentSharedPipeline(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 4, Store: st})
	defer ts.Close()
	png, p, hash := goldenSample(t, ts.URL)
	clean := synthVCD(t, p, "", 0)

	const n = 12
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parts := []vpart{{"image", png}, {"vcd", clean}}
			if i%2 == 1 {
				parts[0] = vpart{"ref", []byte(hash)}
			}
			body, ctype := verifyBody(t, parts)
			resp, err := http.Post(ts.URL+"/v1/verify", ctype, body)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, raw)
				return
			}
			if !bytes.Contains(raw, []byte(`"type":"summary"`)) || !bytes.Contains(raw, []byte(`"ok":true`)) {
				errs <- fmt.Errorf("no passing summary in %s", raw)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestVerifyRequestValidation pins the 4xx surface of the endpoint.
func TestVerifyRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	defer ts.Close()
	png, p, _ := goldenSample(t, ts.URL)
	clean := synthVCD(t, p, "", 0)

	cases := []struct {
		name   string
		parts  []vpart
		status int
	}{
		{"missing vcd", []vpart{{"image", png}}, http.StatusBadRequest},
		{"vcd before spec", []vpart{{"vcd", clean}, {"image", png}}, http.StatusBadRequest},
		{"unknown part", []vpart{{"image", png}, {"bogus", []byte("x")}, {"vcd", clean}}, http.StatusBadRequest},
		{"bad ref", []vpart{{"ref", []byte("not-hex")}, {"vcd", clean}}, http.StatusBadRequest},
		{"unknown ref", []vpart{{"ref", []byte("00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff")}, {"vcd", clean}}, http.StatusNotFound},
		{"bad delays", []vpart{{"image", png}, {"delays", []byte("{")}, {"vcd", clean}}, http.StatusBadRequest},
		{"two sources", []vpart{{"image", png}, {"image", png}, {"vcd", clean}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postVerify(t, ts.URL, tc.parts)
			body := readBody(t, resp)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
		})
	}

	t.Run("not multipart", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader([]byte("{}")))
		if err != nil {
			t.Fatal(err)
		}
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400 (%s)", resp.StatusCode, body)
		}
	})
}

// TestVerifyVCDLimitInBand streams a dump past MaxVCDBytes and expects
// the in-band error line (the 200 status is already committed when the
// limit trips).
func TestVerifyVCDLimitInBand(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, MaxVCDBytes: 64})
	defer ts.Close()
	png, p, _ := goldenSample(t, ts.URL)
	clean := synthVCD(t, p, "", 0)
	if len(clean) <= 64 {
		t.Fatalf("dump unexpectedly small: %d bytes", len(clean))
	}

	st := readVerifyStream(t, postVerify(t, ts.URL, []vpart{
		{"image", png}, {"vcd", clean},
	}))
	if len(st.Errors) == 0 {
		t.Fatalf("no in-band error for over-limit dump: %+v", st.Summary)
	}
}
