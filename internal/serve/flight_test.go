package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"tdmagic/internal/jobs"
	"tdmagic/internal/obs"
)

// TestFlightEndpoint pins the happy path of GET /debug/flight: with a
// recorder configured, an ordinary (non-debug) translate request leaves
// a trace in the ring, retrievable and filterable by its request ID.
func TestFlightEndpoint(t *testing.T) {
	rec := obs.NewRecorder(obs.RecorderConfig{})
	_, ts := newTestServer(t, Config{Workers: 1, Flight: rec})
	_, val := fixture(t)
	png := pngBytes(t, val[0])

	resp := postPNG(t, ts.URL, png)
	readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("translate: %d", resp.StatusCode)
	}
	rid := resp.Header.Get("X-Request-ID")

	get := func(query string) obs.FlightDump {
		t.Helper()
		r, err := http.Get(ts.URL + "/debug/flight" + query)
		if err != nil {
			t.Fatal(err)
		}
		body := readBody(t, r)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("/debug/flight%s: %d %s", query, r.StatusCode, body)
		}
		var dump obs.FlightDump
		if err := json.Unmarshal(body, &dump); err != nil {
			t.Fatalf("/debug/flight%s not JSON: %v", query, err)
		}
		return dump
	}

	dump := get("?request_id=" + rid)
	if len(dump.Entries)+len(dump.Pinned) != 1 {
		t.Fatalf("entries for %s = %d ring + %d pinned, want 1 total", rid, len(dump.Entries), len(dump.Pinned))
	}
	all := append(dump.Entries, dump.Pinned...)
	e := all[0]
	if e.Kind != "trace" || e.Name != "translate" || e.RequestID != rid {
		t.Errorf("entry = kind %q name %q rid %q", e.Kind, e.Name, e.RequestID)
	}
	var hasStage bool
	for _, s := range e.Spans {
		if s.Name == "lad" {
			hasStage = true
		}
	}
	if !hasStage {
		t.Errorf("trace entry missing pipeline stage spans: %d spans", len(e.Spans))
	}

	if dump := get("?request_id=no-such-request"); len(dump.Entries)+len(dump.Pinned) != 0 {
		t.Errorf("bogus request_id matched %d entries", len(dump.Entries)+len(dump.Pinned))
	}
	if dump := get("?min_dur=1h"); len(dump.Entries)+len(dump.Pinned) != 0 {
		t.Errorf("min_dur=1h matched %d entries", len(dump.Entries)+len(dump.Pinned))
	}

	// Malformed filters are refused, not ignored.
	r, err := http.Get(ts.URL + "/debug/flight?min_dur=soon")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, r)
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("min_dur=soon: %d, want 400", r.StatusCode)
	}
}

// TestFlightDisabled pins the off state: no recorder, 404 endpoint.
func TestFlightDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/flight without recorder: %d, want 404", resp.StatusCode)
	}
}

// TestFlightSlowPinned drives a deadline-exceeding translation and
// expects its trace pinned in the flight recorder. The 1ns deadline is
// already expired when the translation starts, so the request reliably
// 504s regardless of machine speed, and the matching 1ns slow threshold
// classifies its root span as an outlier worth pinning.
func TestFlightSlowPinned(t *testing.T) {
	rec := obs.NewRecorder(obs.RecorderConfig{Slow: time.Nanosecond})
	_, ts := newTestServer(t, Config{
		Workers: 1,
		Timeout: time.Nanosecond,
		Flight:  rec,
	})
	_, val := fixture(t)

	resp := postPNG(t, ts.URL, pngBytes(t, val[0]))
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("translate under 1ns deadline: %d %s, want 504", resp.StatusCode, body)
	}
	rid := resp.Header.Get("X-Request-ID")

	r, err := http.Get(ts.URL + "/debug/flight?request_id=" + rid)
	if err != nil {
		t.Fatal(err)
	}
	var dump obs.FlightDump
	if err := json.Unmarshal(readBody(t, r), &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Pinned) != 1 {
		t.Fatalf("pinned entries for %s = %d, want 1 (ring %d)", rid, len(dump.Pinned), len(dump.Entries))
	}
	e := dump.Pinned[0]
	if !e.Pinned || e.RequestID != rid {
		t.Errorf("pinned entry = %+v", e)
	}
}

// TestJobEventsEndpoint subscribes to a job's live stream over HTTP
// right after submission and follows it to the end: snapshot first
// (with per-item detail), claim and done lines for every named item,
// and the terminal state line. The throttle keeps the job alive past
// the subscribe so the tail is genuinely live, not a replay.
func TestJobEventsEndpoint(t *testing.T) {
	_, ts := newJobsServerCfg(t, jobs.Config{Workers: 1, Throttle: 50 * time.Millisecond}, nil)
	_, val := fixture(t)

	names := []string{"ev-a.png", "ev-b.png", "ev-c.png"}
	bodies := [][]byte{pngBytes(t, val[0]), pngBytes(t, val[1]), pngBytes(t, val[2])}
	body, ctype := multipartJob(t, names, bodies)
	resp, err := http.Post(ts.URL+"/v1/jobs", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	var sn jobs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&sn); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rid := resp.Header.Get("X-Request-ID"); sn.Submitter != rid {
		t.Errorf("snapshot submitter %q != request ID %q", sn.Submitter, rid)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/" + sn.ID + "/events?items=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content type = %q", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var evs []jobs.Event
	for sc.Scan() {
		var ev jobs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 || evs[0].Type != jobs.EventSnapshot {
		t.Fatalf("first line = %+v, want snapshot", evs)
	}
	if len(evs[0].Items) != 3 {
		t.Errorf("snapshot items = %d, want 3 (?items=1)", len(evs[0].Items))
	}
	claimed, done := map[string]int{}, map[string]int{}
	var terminal bool
	for _, ev := range evs[1:] {
		switch ev.Type {
		case jobs.EventClaimed:
			claimed[ev.Item]++
		case jobs.EventDone:
			done[ev.Item]++
		case jobs.EventTerminal:
			terminal = true
			if ev.State != jobs.StateDone {
				t.Errorf("terminal state = %s (%s)", ev.State, ev.Error)
			}
		}
	}
	for _, n := range []string{"ev-a", "ev-b", "ev-c"} {
		if done[n] != 1 {
			t.Errorf("item %s: %d done events, want exactly 1", n, done[n])
		}
	}
	// The first claim can precede the subscription (it is then covered by
	// the snapshot); with one worker and a 50ms throttle the later items
	// are claimed live, well after the stream attached.
	if len(claimed) < 2 {
		t.Errorf("live claim events for %d items, want >= 2 (%v)", len(claimed), claimed)
	}
	if !terminal {
		t.Error("stream ended without a terminal state line")
	}

	// Unknown job: a clean 404, not a hung stream.
	r404, err := http.Get(ts.URL + "/v1/jobs/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, r404)
	if r404.StatusCode != http.StatusNotFound {
		t.Errorf("events of unknown job: %d, want 404", r404.StatusCode)
	}
}
