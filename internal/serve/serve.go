// Package serve exposes a trained TD-Magic pipeline as a concurrent HTTP
// translation service — the serving surface of the reproduction. One
// shared Pipeline (safe for concurrent Translate calls) sits behind a
// bounded worker pool with explicit backpressure, a content-addressed
// result cache, per-request translation deadlines and a metrics registry
// shared with the batch evaluation path.
//
// Endpoints:
//
//	POST /v1/translate        PNG body in, SPO JSON + diagnostics out
//	POST /v1/translate/batch  multipart/form-data of PNG files, JSON array out
//	POST /v1/verify           TD picture (or cached ref) + delay bounds + VCD
//	                          dump in, NDJSON verdict stream out
//	POST   /v1/jobs              submit a durable async job (multipart or manifest)
//	GET    /v1/jobs/{id}         job status (?items=1 for per-item detail)
//	GET    /v1/jobs/{id}/results ordered NDJSON result stream (terminal jobs)
//	GET    /v1/jobs/{id}/events  live NDJSON lifecycle stream (snapshot, then tail)
//	DELETE /v1/jobs/{id}         cancel a job
//	GET  /healthz             liveness + model summary
//	GET  /readyz              readiness: 503 while draining or store unwritable
//	GET  /metrics             Prometheus text exposition
//	GET  /version             build identity (module version, VCS revision)
//	GET  /debug/flight        flight-recorder dump of recent traces and events
//	GET  /debug/pprof/*       runtime profiles
//
// Observability: every request is tagged with an X-Request-ID (the
// client's, if sent, otherwise generated), echoed on the response and
// carried through the structured access log. POST /v1/translate?debug=1
// additionally runs the translation under a span trace and returns it
// inline in the response, correlating each pipeline stage's latency and
// detector counts with the request ID. With a flight recorder configured
// every translate and verify request runs under a trace that is captured
// into the bounded in-memory ring behind GET /debug/flight — filterable
// by request_id, root-span name and min_dur — with slow outliers pinned
// past ring eviction, so "what did that slow request do" stays
// answerable without a tracing backend.
//
// Backpressure model: at most Workers translations run at once; at most
// QueueDepth further requests wait for a slot. A request that would grow
// the wait queue beyond QueueDepth is rejected immediately with 429 and a
// Retry-After header — the service sheds load instead of accumulating an
// unbounded backlog. Batch items are admitted item-by-item through the
// same gate, so one large batch cannot starve interactive traffic beyond
// the configured queue.
package serve

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"mime"
	"mime/multipart"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"time"

	"sync/atomic"

	"tdmagic/internal/batch"
	"tdmagic/internal/core"
	"tdmagic/internal/diag"
	"tdmagic/internal/imgproc"
	"tdmagic/internal/jobs"
	"tdmagic/internal/metrics"
	"tdmagic/internal/obs"
	"tdmagic/internal/store"
	"tdmagic/internal/version"
)

// Config tunes the service. The zero value of every field selects a
// sensible default.
type Config struct {
	// Workers bounds concurrently executing translations (<= 0 means
	// GOMAXPROCS, capped at 8).
	Workers int
	// QueueDepth bounds requests waiting for a worker slot beyond the
	// Workers in flight (<= 0 means 4x Workers). Overflow is answered
	// with 429 + Retry-After.
	QueueDepth int
	// CacheSize is the LRU result-cache capacity in entries (< 0
	// disables, 0 means 256).
	CacheSize int
	// Timeout is the per-request translation deadline enforced through
	// the pipeline's cooperative-cancellation plumbing (<= 0 means 30s).
	Timeout time.Duration
	// MaxBodyBytes caps an uploaded PNG (and each batch part); larger
	// bodies are refused with 400 (<= 0 means 32 MiB).
	MaxBodyBytes int64
	// MaxBatchParts caps the number of pictures in one batch request
	// (<= 0 means 64).
	MaxBatchParts int
	// MaxJobBodyBytes caps a whole /v1/jobs multipart upload. Job uploads
	// are held in memory until the submission is journaled, so this is
	// the server's memory exposure per job request (<= 0 means 256 MiB).
	MaxJobBodyBytes int64
	// VerifyTimeout is the per-request deadline of /v1/verify, covering
	// translation (or store lookup), property compilation and the full
	// streaming check (<= 0 means 60s). The decoder observes it between
	// events, so a deadline cuts an arbitrarily long dump off mid-stream.
	VerifyTimeout time.Duration
	// MaxVCDBytes caps the VCD part of a /v1/verify request. The dump is
	// streamed, never buffered, so this bounds work, not memory
	// (<= 0 means 1 GiB).
	MaxVCDBytes int64
	// Store, when non-nil, is a persistent content-addressed result store
	// shared with the batch engine (same artifact format, same config ×
	// input keying): it backs the in-memory LRU as a second cache level,
	// and every successful translation is written through to it, so a
	// serving fleet warms the same corpus cache that tdmagic -batch and
	// tdeval read.
	Store *store.Store
	// Jobs, when non-nil, mounts the durable async job API (/v1/jobs) over
	// this service; the job service should share Store and Registry so
	// interactive and corpus traffic warm one cache and one exposition.
	// Shutdown drains it after the HTTP listener.
	Jobs *jobs.Service
	// JobsManifestRoot, when non-empty, permits manifest-style job
	// submissions referencing picture files under this directory (paths are
	// resolved against it and must not escape it). Empty restricts /v1/jobs
	// to multipart uploads.
	JobsManifestRoot string
	// Flight, when non-nil, records every request's completed trace and
	// the job service's lifecycle events into a bounded in-memory ring,
	// served by GET /debug/flight. Nil disables recording (and the
	// endpoint answers 404); the disabled path adds no allocations to the
	// translate hot path.
	Flight *obs.Recorder
	// Registry receives the service and pipeline metrics; nil creates a
	// private registry.
	Registry *metrics.Registry
	// Logger receives one structured access-log line per request,
	// correlated by request ID. Nil disables access logging.
	Logger *slog.Logger
}

func (c *Config) applyDefaults() {
	if c.Workers <= 0 {
		c.Workers = defaultWorkers()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxBatchParts <= 0 {
		c.MaxBatchParts = 64
	}
	if c.MaxJobBodyBytes <= 0 {
		c.MaxJobBodyBytes = 256 << 20
	}
	if c.VerifyTimeout <= 0 {
		c.VerifyTimeout = 60 * time.Second
	}
	if c.MaxVCDBytes <= 0 {
		c.MaxVCDBytes = 1 << 30
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
}

// Server is the HTTP translation service. Create one with New, mount
// Handler on any http.Server (or use Start/Shutdown), and it is ready for
// concurrent traffic.
type Server struct {
	cfg     Config
	pipe    *core.Pipeline
	cache   *lruCache
	cfgHash store.Hash // pipeline ConfigHash, keying the persistent store
	sem     chan struct{}
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in the request-ID/access-log middleware

	httpSrv  *http.Server
	listener net.Listener
	startMu  sync.Mutex
	draining atomic.Bool

	verifyMetrics *core.VerifyMetrics

	requests    *metrics.Counter
	verifyReqs  *metrics.Counter
	batchReqs   *metrics.Counter
	batchImages *metrics.Counter
	cacheHits   *metrics.Counter
	cacheMisses *metrics.Counter
	storeHits   *metrics.Counter
	storePuts   *metrics.Counter
	rejections  *metrics.Counter
	badRequests *metrics.Counter
	inflight    *metrics.Gauge
	queued      *metrics.Gauge
}

// translateHook, when non-nil, runs inside every translation job after the
// worker slot is acquired. It is a test seam for pinning drain and
// backpressure behaviour with a deterministic slow translation.
var translateHook func()

// New builds a Server around a trained pipeline. The pipeline's Metrics
// field is populated from cfg.Registry (unless already set), so serving
// and batch counters share one exposition.
func New(pipe *core.Pipeline, cfg Config) *Server {
	cfg.applyDefaults()
	if pipe.Metrics == nil {
		pipe.Metrics = core.NewPipelineMetrics(cfg.Registry)
	}
	s := &Server{
		cfg:   cfg,
		pipe:  pipe,
		cache: newLRUCache(cfg.CacheSize),
		sem:   make(chan struct{}, cfg.Workers),

		requests:    cfg.Registry.Counter("tdserve_requests_total", "translate requests (single and batch items)"),
		verifyReqs:  cfg.Registry.Counter("tdserve_verify_requests_total", "verification requests"),
		batchReqs:   cfg.Registry.Counter("tdserve_batch_requests_total", "batch translate requests"),
		batchImages: cfg.Registry.Counter("tdserve_batch_images_total", "pictures received in batch requests"),
		cacheHits:   cfg.Registry.Counter("tdserve_cache_hits_total", "translations answered from the result cache"),
		cacheMisses: cfg.Registry.Counter("tdserve_cache_misses_total", "translations that missed the result cache"),
		storeHits:   cfg.Registry.Counter("tdserve_store_hits_total", "translations answered from the persistent artifact store"),
		storePuts:   cfg.Registry.Counter("tdserve_store_puts_total", "artifacts written through to the persistent store"),
		rejections:  cfg.Registry.Counter("tdserve_queue_rejections_total", "requests shed with 429 because the queue was full"),
		badRequests: cfg.Registry.Counter("tdserve_bad_requests_total", "requests refused with 400"),
		inflight:    cfg.Registry.Gauge("tdserve_inflight_translations", "translations currently executing"),
		queued:      cfg.Registry.Gauge("tdserve_queued_requests", "requests waiting for a worker slot"),
	}
	if cfg.Store != nil {
		// The config hash is fixed for the server's lifetime (the pipeline
		// is immutable once serving), so compute it once.
		s.cfgHash = pipe.ConfigHash()
	}
	// The hit ratio is derived from the counters at scrape time, so it can
	// never drift from them.
	cfg.Registry.GaugeFunc("tdserve_cache_hit_ratio",
		"fraction of translations answered from the result cache", func() float64 {
			hits, misses := s.cacheHits.Value(), s.cacheMisses.Value()
			if hits+misses == 0 {
				return 0
			}
			return float64(hits) / float64(hits+misses)
		})
	s.verifyMetrics = core.NewVerifyMetrics(cfg.Registry)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/translate", s.handleTranslate)
	s.mux.HandleFunc("/v1/translate/batch", s.handleBatch)
	s.mux.HandleFunc("/v1/verify", s.handleVerify)
	if cfg.Jobs != nil {
		s.mux.HandleFunc("/v1/jobs", s.handleJobs)
		s.mux.HandleFunc("/v1/jobs/", s.handleJob)
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/version", s.handleVersion)
	s.mux.HandleFunc("/debug/flight", s.handleFlight)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.handler = s.withRequestID(s.mux)
	return s
}

func defaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	return n
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// reqIDKey carries the request ID through a request's context.
type reqIDKey struct{}

// requestID returns the request's correlation ID ("" outside the
// middleware, which only happens in direct handler unit tests).
func requestID(r *http.Request) string {
	id, _ := r.Context().Value(reqIDKey{}).(string)
	return id
}

// sanitizeRequestID accepts a client-proposed X-Request-ID if it is short
// and printable; anything else is replaced by a generated ID so log lines
// and response headers cannot be polluted.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 128 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return ""
		}
	}
	return id
}

// statusWriter records the status code written by a handler for the
// access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// withRequestID tags every request with a correlation ID — the client's
// X-Request-ID when acceptable, otherwise generated — echoes it on the
// response, threads it through the request context, and emits one
// structured access-log line per request when a logger is configured.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := sanitizeRequestID(r.Header.Get("X-Request-ID"))
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		r = r.WithContext(context.WithValue(r.Context(), reqIDKey{}, id))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		if s.cfg.Logger != nil {
			s.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String(obs.RequestIDKey, id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("duration", time.Since(start)),
			)
		}
	})
}

// Registry returns the metrics registry the service records into.
func (s *Server) Registry() *metrics.Registry { return s.cfg.Registry }

// Start listens on addr (host:port; port 0 picks a free port) and serves
// in the background. The bound address is returned so callers that asked
// for a random port can find it.
func (s *Server) Start(addr string) (net.Addr, error) {
	s.startMu.Lock()
	defer s.startMu.Unlock()
	if s.listener != nil {
		return nil, errors.New("serve: already started")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.listener = ln
	s.httpSrv = &http.Server{Handler: s.handler}
	go func() { _ = s.httpSrv.Serve(ln) }()
	return ln.Addr(), nil
}

// Shutdown drains the service gracefully: /readyz flips to 503 (so a
// load balancer stops routing new traffic), the listener stops
// accepting, every in-flight request (including queued translations)
// runs to completion, and the job service — if one is mounted — stops
// dispatching, finishes its in-flight items and checkpoints every job's
// journal for an exact resume. ctx bounds the whole drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.startMu.Lock()
	srv := s.httpSrv
	s.startMu.Unlock()
	var err error
	if srv != nil {
		err = srv.Shutdown(ctx)
	}
	if s.cfg.Jobs != nil {
		if jerr := s.cfg.Jobs.Close(ctx); err == nil {
			err = jerr
		}
	}
	return err
}

// errQueueFull is returned by acquire when the wait queue is at capacity.
var errQueueFull = errors.New("serve: translation queue full")

// acquire claims a worker slot, waiting in the bounded queue if all
// workers are busy. It fails fast with errQueueFull when the queue is at
// capacity — the backpressure signal behind every 429.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		return errQueueFull
	}
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() { <-s.sem }

// TranslateResponse is the success payload of /v1/translate: SPO graph,
// spec text and diagnostics. It is the batch engine's artifact format,
// field for field — the bytes this service serves are the bytes the
// persistent store holds, so the two share one cache without any
// translation layer.
type TranslateResponse = batch.Artifact

// ErrorResponse is the failure payload: a message plus the structured
// diagnostics that explain it, in the same shape the pipeline reports
// degradations everywhere else.
type ErrorResponse struct {
	Error string            `json:"error"`
	Diags []diag.Diagnostic `json:"diags,omitempty"`
}

// ItemResult is one picture's outcome in a batch response.
type ItemResult struct {
	// Name is the multipart part's file name.
	Name string `json:"name"`
	// Status is the HTTP status the picture would have received from the
	// single-translate endpoint.
	Status int `json:"status"`
	// Cached reports whether the result came from the content cache.
	Cached bool `json:"cached"`
	*TranslateResponse
	Error string            `json:"error,omitempty"`
	Diags []diag.Diagnostic `json:"diags,omitempty"`
}

// processResult is the outcome of one translation job.
type processResult struct {
	status    int
	body      []byte // marshalled TranslateResponse or ErrorResponse
	cached    bool
	inputHash string // hex content hash of the picture, "" on failure
}

// process translates one decoded picture through the cache, the bounded
// worker pool and the per-request deadline. It is the shared execution
// path of both endpoints. skipCache bypasses the cache read (debug
// requests want to observe the pipeline stages, and a cache hit would
// record none); the result is still stored for later requests.
func (s *Server) process(ctx context.Context, img *imgproc.Gray, skipCache bool) processResult {
	s.requests.Inc()
	key := store.HashImage(img)
	if !skipCache {
		if body, ok := s.cache.get(key); ok {
			s.cacheHits.Inc()
			if sp := obs.StartSpan(ctx, "cache"); sp != nil {
				sp.Bool("hit", true)
				sp.End()
			}
			return processResult{status: http.StatusOK, body: body, cached: true, inputHash: key.Hex()}
		}
		// Second cache level: the persistent store. A hit promotes the
		// artifact into the LRU so repeats stay off the disk too.
		if s.cfg.Store != nil {
			if body, ok := s.cfg.Store.Get(s.cfgHash, key); ok {
				if validArtifact(body) {
					s.storeHits.Inc()
					s.cache.put(key, body)
					if sp := obs.StartSpan(ctx, "cache"); sp != nil {
						sp.Bool("hit", true).Bool("store", true)
						sp.End()
					}
					return processResult{status: http.StatusOK, body: body, cached: true, inputHash: key.Hex()}
				}
				s.cfg.Store.NoteCorrupt()
			}
		}
	}
	if sp := obs.StartSpan(ctx, "cache"); sp != nil {
		sp.Bool("hit", false).Bool("skipped", skipCache)
		sp.End()
	}
	if err := s.acquire(ctx); err != nil {
		if errors.Is(err, errQueueFull) {
			s.rejections.Inc()
			return errorResult(http.StatusTooManyRequests, "translation queue full", nil)
		}
		return errorResult(statusForCtxErr(err), "request cancelled: "+err.Error(), nil)
	}
	defer s.release()
	s.inflight.Inc()
	defer s.inflight.Dec()
	if translateHook != nil {
		translateHook()
	}

	// One-item batch: reuses the per-item deadline, cooperative
	// cancellation and panic isolation of the batch plumbing, so a
	// pathological upload can neither hang a worker slot past the
	// deadline nor take the process down.
	res := s.pipe.TranslateAllCtx(ctx, []*imgproc.Gray{img}, core.BatchOptions{
		Workers: 1,
		Timeout: s.cfg.Timeout,
	})[0]
	if res.Err != nil {
		status := statusForCtxErr(res.Err)
		msg := "translation failed"
		if errors.Is(res.Err, context.DeadlineExceeded) {
			msg = fmt.Sprintf("translation exceeded the %v deadline", s.cfg.Timeout)
		}
		var ds []diag.Diagnostic
		if res.Rep != nil {
			ds = res.Rep.Diags
		}
		return errorResult(status, msg, ds)
	}
	if core.InputRefused(res.Rep) {
		s.badRequests.Inc()
		return errorResult(http.StatusBadRequest, "picture refused", res.Rep.Diags)
	}
	resp := TranslateResponse{SPO: res.SPO, Spec: res.SPO.SpecText()}
	if res.Rep != nil {
		resp.Diags = res.Rep.Diags
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return errorResult(http.StatusInternalServerError, "encode response: "+err.Error(), nil)
	}
	s.cacheMisses.Inc()
	s.cache.put(key, body)
	if s.cfg.Store != nil {
		// Best-effort write-through: a full or read-only store degrades to
		// recomputation, never to a failed response.
		if s.cfg.Store.Put(s.cfgHash, key, body) == nil {
			s.storePuts.Inc()
		}
	}
	return processResult{status: http.StatusOK, body: body, inputHash: key.Hex()}
}

// validArtifact screens a stored body before serving it: it must be a
// well-formed artifact with an SPO, or the store entry is ignored (and
// later healed by the write-through).
func validArtifact(body []byte) bool {
	var a batch.Artifact
	return json.Unmarshal(body, &a) == nil && a.SPO != nil
}

// statusForCtxErr maps a context/translation error to an HTTP status.
func statusForCtxErr(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusInternalServerError
	}
}

// errorResult marshals an ErrorResponse into a processResult.
func errorResult(status int, msg string, ds []diag.Diagnostic) processResult {
	body, _ := json.Marshal(ErrorResponse{Error: msg, Diags: ds})
	return processResult{status: status, body: body}
}

// handleTranslate serves POST /v1/translate: a PNG body in, one SPO out.
// With ?debug=1 the translation runs under a span trace (bypassing the
// cache read so every stage actually executes) and the response carries
// the trace inline under "trace".
func (s *Server) handleTranslate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST a PNG body", nil)
		return
	}
	img, errStatus, errMsg := s.readPNG(r.Body, r.ContentLength)
	if errMsg != "" {
		s.badRequests.Inc()
		s.writeError(w, errStatus, errMsg, []diag.Diagnostic{
			diag.New(diag.StageInput, diag.Error, "%s", errMsg),
		})
		return
	}
	ctx := r.Context()
	debug := r.URL.Query().Get("debug") == "1"
	var tr *obs.Trace
	if debug || s.cfg.Flight != nil {
		// The flight recorder wants a trace for every request, not just
		// debug ones; only debug bypasses the cache read, so a recorded
		// cache hit is a one-span "cache" trace.
		tr = obs.NewTrace(requestID(r))
		ctx = obs.ContextWithTrace(ctx, tr)
	}
	res := s.process(ctx, img, debug)
	// Capture before answering, errors and timeouts included — the slow
	// trace that exceeded the deadline is exactly the one worth pinning.
	s.cfg.Flight.Capture(tr)
	if debug && res.status == http.StatusOK {
		res = attachTrace(res, tr)
	}
	s.writeResult(w, res)
}

// handleFlight serves GET /debug/flight: a JSON dump of the flight
// recorder's recent traces and events, oldest first, with slow-pinned
// entries listed separately. Query parameters filter the dump:
// request_id (exact; job events carry the job ID here), name (root-span
// or event name), min_dur (Go duration, e.g. 250ms), limit (most recent
// N after filtering).
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Flight == nil {
		s.writeError(w, http.StatusNotFound, "flight recorder disabled", nil)
		return
	}
	q := r.URL.Query()
	f := obs.FlightFilter{RequestID: q.Get("request_id"), Name: q.Get("name")}
	if v := q.Get("min_dur"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "min_dur: "+err.Error(), nil)
			return
		}
		f.MinDur = d
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.writeError(w, http.StatusBadRequest, "limit must be a non-negative integer", nil)
			return
		}
		f.Limit = n
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.cfg.Flight.Snapshot(f))
}

// attachTrace re-encodes a success body with the trace export appended.
// Runs only on ?debug=1 requests, so the double encode stays off the
// serving hot path.
func attachTrace(res processResult, tr *obs.Trace) processResult {
	var resp TranslateResponse
	if err := json.Unmarshal(res.body, &resp); err != nil {
		return res
	}
	body, err := json.Marshal(struct {
		TranslateResponse
		Trace *obs.Export `json:"trace"`
	}{resp, tr.Export()})
	if err != nil {
		return res
	}
	return processResult{status: res.status, body: body, cached: res.cached}
}

// handleBatch serves POST /v1/translate/batch: multipart/form-data where
// every file part is one PNG. Parts stream off the wire one at a time —
// each is decoded through the size-capped streaming reader, never
// buffered wholesale — and flow through the batch executor, whose
// admission window keeps at most O(Workers) decoded pictures resident no
// matter how many parts the upload carries. Items are translated through
// the same cache and worker pool as single requests, and the response
// carries one entry per part, in part order.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST multipart/form-data with PNG file parts", nil)
		return
	}
	s.batchReqs.Inc()
	mediaType, params, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if err != nil || mediaType != "multipart/form-data" {
		s.badRequests.Inc()
		s.writeError(w, http.StatusBadRequest, "content type must be multipart/form-data", nil)
		return
	}
	src := &multipartSource{s: s, mr: multipart.NewReader(r.Body, params["boundary"])}

	var out []ItemResult
	_, err = batch.Run(r.Context(), s.pipe, src, batch.Options{
		Workers: s.cfg.Workers,
		// The custom Do routes every item through s.process — the same
		// admission gate, LRU, persistent store and deadline as a single
		// request — so the executor contributes only streaming, bounded
		// fan-out and ordered emission.
		Do: func(ctx context.Context, it batch.Item) batch.Result {
			var ie *itemError
			if errors.As(it.Err, &ie) {
				return batch.Result{Err: it.Err, Aux: ItemResult{
					Name: it.Name, Status: ie.status, Error: ie.msg,
					Diags: []diag.Diagnostic{diag.New(diag.StageInput, diag.Error, "%s", ie.msg)},
				}}
			}
			res := s.process(ctx, it.Image, false)
			return batch.Result{Cached: res.cached, Aux: itemResultFrom(it.Name, res)}
		},
	}, func(res batch.Result) error {
		out = append(out, res.Aux.(ItemResult))
		return nil
	})
	if err != nil {
		var ab *batchAbort
		if errors.As(err, &ab) {
			s.badRequests.Inc()
			s.writeError(w, ab.status, ab.msg, nil)
		} else {
			s.writeError(w, statusForCtxErr(err), "batch aborted: "+err.Error(), nil)
		}
		return
	}
	s.batchImages.Add(int64(len(out)))

	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Results []ItemResult `json:"results"`
	}{out})
}

// batchAbort is a terminal source failure: the whole batch request is
// refused with its status.
type batchAbort struct {
	status int
	msg    string
}

func (e *batchAbort) Error() string { return e.msg }

// itemError is a per-part preparation failure carried through the
// executor as the item's error.
type itemError struct {
	status int
	msg    string
}

func (e *itemError) Error() string { return e.msg }

// multipartSource streams batch parts as executor items: each Next reads
// exactly one part and decodes it straight off the wire through the
// size-capped streaming reader. The request body is consumed part by part
// under the executor's backpressure — a 500-image upload never has more
// than the in-flight window decoded at once, and the raw bytes are never
// accumulated at all.
type multipartSource struct {
	s     *Server
	mr    *multipart.Reader
	count int
}

func (m *multipartSource) Next() (batch.Item, error) {
	part, err := m.mr.NextPart()
	if err == io.EOF {
		return batch.Item{}, io.EOF
	}
	if err != nil {
		return batch.Item{}, &batchAbort{status: http.StatusBadRequest, msg: "read multipart body: " + err.Error()}
	}
	if m.count >= m.s.cfg.MaxBatchParts {
		part.Close()
		return batch.Item{}, &batchAbort{
			status: http.StatusBadRequest,
			msg:    fmt.Sprintf("batch exceeds %d pictures", m.s.cfg.MaxBatchParts),
		}
	}
	m.count++
	name := part.FileName()
	if name == "" {
		name = part.FormName()
	}
	it := batch.Item{Name: name}
	img, status, msg := m.s.readPNGStream(io.LimitReader(part, m.s.cfg.MaxBodyBytes+1))
	part.Close()
	if msg != "" {
		it.Err = &itemError{status: status, msg: msg}
	} else {
		it.Image = img
	}
	return it, nil
}

// itemResultFrom converts a processResult into a batch item entry by
// unmarshalling the already-encoded body into the matching payload shape.
func itemResultFrom(name string, res processResult) ItemResult {
	item := ItemResult{Name: name, Status: res.status, Cached: res.cached}
	if res.status == http.StatusOK {
		var tr TranslateResponse
		if err := json.Unmarshal(res.body, &tr); err == nil {
			item.TranslateResponse = &tr
		}
		return item
	}
	var er ErrorResponse
	if err := json.Unmarshal(res.body, &er); err == nil {
		item.Error = er.Error
		item.Diags = er.Diags
	}
	return item
}

// handleHealthz serves the liveness probe: the process is up and the
// handler loop responsive. It deliberately stays 200 while draining —
// liveness restarts a dead replica, readiness routes traffic, and
// conflating them makes an orchestrator kill a replica that is merely
// finishing its queue.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"ok","workers":%d,"queue_depth":%d,"cache_entries":%d}%s`,
		s.cfg.Workers, s.cfg.QueueDepth, s.cache.len(), "\n")
}

// handleReadyz serves the readiness probe: 503 while the replica is
// draining (so the balancer routes around a shutting-down instance) and
// 503 when the persistent store stops taking writes — a replica that can
// only recompute is a cache stampede waiting to happen.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	if s.cfg.Store != nil {
		if err := s.cfg.Store.ProbeWritable(); err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(map[string]string{
				"status": "store-unwritable", "error": err.Error(),
			})
			return
		}
	}
	fmt.Fprintln(w, `{"status":"ready"}`)
}

// handleMetrics serves the text exposition of every registered metric,
// under the full Prometheus text-format content type (scrapers key on the
// charset parameter too).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.cfg.Registry.WriteText(w)
}

// handleVersion serves the build identity.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(version.Get())
}

// writeResult writes a processResult, marking cache outcome and — on 429 —
// when to come back.
func (s *Server) writeResult(w http.ResponseWriter, res processResult) {
	w.Header().Set("Content-Type", "application/json")
	if res.cached {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	if res.inputHash != "" {
		// The content address of the uploaded picture: pass it back as the
		// `ref` of a later /v1/verify call to skip re-uploading (and
		// re-translating) the image.
		w.Header().Set("X-Input-Hash", res.inputHash)
	}
	if res.status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", s.retryAfterSeconds())
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
	if res.status == http.StatusOK {
		_, _ = w.Write([]byte("\n"))
	}
}

// retryAfterSeconds estimates when a queue slot will actually be free
// for the rejected caller: the wait queue must drain (queued+1 requests
// ahead of it across Workers slots, each turning over in roughly the
// observed mean translation latency) before a retry can be admitted.
// With no latency samples yet the per-item estimate falls back to the
// configured deadline — the pessimistic bound the old fixed hint used.
// The result is clamped to [1s, Timeout]: never "come back in 0s" under
// a momentary blip, never further out than one worst-case translation.
func (s *Server) retryAfterSeconds() string {
	per := s.cfg.Timeout.Seconds()
	if m := s.pipe.Metrics; m != nil && m.Latency != nil {
		if n := m.Latency.Count(); n > 0 {
			per = m.Latency.Sum() / float64(n)
		}
	}
	turns := (float64(s.queued.Value()+1) + float64(s.cfg.Workers) - 1) / float64(s.cfg.Workers)
	secs := int(math.Ceil(per * turns))
	if secs < 1 {
		secs = 1
	}
	if max := int(s.cfg.Timeout / time.Second); max >= 1 && secs > max {
		secs = max
	}
	return strconv.Itoa(secs)
}

// writeError writes an ErrorResponse with the given status.
func (s *Server) writeError(w http.ResponseWriter, status int, msg string, ds []diag.Diagnostic) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: msg, Diags: ds})
}

// readPNG decodes the request body as a PNG under the body-size cap.
func (s *Server) readPNG(body io.ReadCloser, contentLength int64) (*imgproc.Gray, int, string) {
	if contentLength > s.cfg.MaxBodyBytes {
		return nil, http.StatusBadRequest,
			fmt.Sprintf("body of %d bytes exceeds the %d-byte limit", contentLength, s.cfg.MaxBodyBytes)
	}
	return s.readPNGStream(io.LimitReader(body, s.cfg.MaxBodyBytes+1))
}

// pngMagic is the 8-byte PNG signature.
var pngMagic = [8]byte{0x89, 'P', 'N', 'G', '\r', '\n', 0x1a, '\n'}

// countReader tallies the bytes pulled through it, so the size cap can be
// enforced on a stream without buffering it.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// readPNGStream decodes a PNG straight off r: the 24-byte magic + IHDR
// prefix is peeked (screening out adversarial "small file, enormous
// raster" bombs before committing to a decode), the decoder then pulls
// the compressed stream directly, and the remainder is drained through a
// byte counter to enforce the size cap. Nothing buffers the encoded body
// wholesale — resident cost is the decoded raster plus a small bufio
// window, which is what lets a many-part batch upload stream.
func (s *Server) readPNGStream(r io.Reader) (*imgproc.Gray, int, string) {
	cr := &countReader{r: r}
	br := bufio.NewReader(cr)
	head, err := br.Peek(24)
	if len(head) < 24 {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) || err == nil {
			return nil, http.StatusBadRequest, "body is not a PNG"
		}
		return nil, http.StatusBadRequest, "read body: " + err.Error()
	}
	if [8]byte(head[:8]) != pngMagic {
		return nil, http.StatusBadRequest, "body is not a PNG"
	}
	// IHDR is mandatory and first: width and height live at bytes 16-23.
	width := int64(binary.BigEndian.Uint32(head[16:20]))
	height := int64(binary.BigEndian.Uint32(head[20:24]))
	if width <= 0 || height <= 0 || width*height > core.MaxPixels {
		return nil, http.StatusBadRequest,
			fmt.Sprintf("declared %dx%d raster exceeds the %d-pixel limit", width, height, core.MaxPixels)
	}
	img, err := imgproc.DecodePNG(br)
	// Drain whatever the decoder left (trailing chunks, or the rest of a
	// body it bailed on) so the byte count below covers the full stream.
	_, _ = io.Copy(io.Discard, br)
	if cr.n > s.cfg.MaxBodyBytes {
		return nil, http.StatusBadRequest,
			fmt.Sprintf("body exceeds the %d-byte limit", s.cfg.MaxBodyBytes)
	}
	if err != nil {
		return nil, http.StatusBadRequest, "decode png: " + err.Error()
	}
	return img, 0, ""
}
