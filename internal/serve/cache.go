package serve

import (
	"container/list"
	"sync"

	"tdmagic/internal/store"
)

// The cache is keyed by store.HashImage — the SHA-256 of the decoded
// picture's dimensions and raw pixels. Two uploads of the same diagram —
// even through different PNG encoders, compression levels or ancillary
// chunks — hash to the same key, so the cache is keyed on what the
// pipeline actually sees. The persistent artifact store (internal/store)
// uses the identical scheme, which is what lets the LRU sit as a
// first-level cache in front of it.

// lruCache is a fixed-capacity least-recently-used map from content key to
// a finished response body. Values are immutable once inserted: hits hand
// out the stored slice without copying, which is what makes a cache hit
// byte-identical to the first response.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *cacheEntry
	items map[store.Hash]*list.Element
}

type cacheEntry struct {
	key  store.Hash
	body []byte
}

// newLRUCache returns a cache holding up to capacity entries; capacity <= 0
// disables caching (every get misses, every put is dropped).
func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[store.Hash]*list.Element),
	}
}

// get returns the cached body for key, marking it most recently used.
func (c *lruCache) get(key store.Hash) ([]byte, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores body under key, evicting the least recently used entry when
// full. The caller must not mutate body afterwards.
func (c *lruCache) put(key store.Hash, body []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	for c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
}

// len returns the current entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
