package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"tdmagic/internal/imgproc"
)

// cacheKey identifies a picture by content: the SHA-256 of its dimensions
// and raw pixels. Two uploads of the same diagram — even through different
// PNG encoders, compression levels or ancillary chunks — hash to the same
// key, so the cache is keyed on what the pipeline actually sees.
type cacheKey [sha256.Size]byte

// hashImage computes the content key of a decoded picture.
func hashImage(img *imgproc.Gray) cacheKey {
	h := sha256.New()
	var dims [16]byte
	binary.LittleEndian.PutUint64(dims[0:8], uint64(img.W))
	binary.LittleEndian.PutUint64(dims[8:16], uint64(img.H))
	h.Write(dims[:])
	h.Write(img.Pix)
	var k cacheKey
	h.Sum(k[:0])
	return k
}

// lruCache is a fixed-capacity least-recently-used map from content key to
// a finished response body. Values are immutable once inserted: hits hand
// out the stored slice without copying, which is what makes a cache hit
// byte-identical to the first response.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *cacheEntry
	items map[cacheKey]*list.Element
}

type cacheEntry struct {
	key  cacheKey
	body []byte
}

// newLRUCache returns a cache holding up to capacity entries; capacity <= 0
// disables caching (every get misses, every put is dropped).
func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[cacheKey]*list.Element),
	}
}

// get returns the cached body for key, marking it most recently used.
func (c *lruCache) get(key cacheKey) ([]byte, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores body under key, evicting the least recently used entry when
// full. The caller must not mutate body afterwards.
func (c *lruCache) put(key cacheKey, body []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	for c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
}

// len returns the current entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
