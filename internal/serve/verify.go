// POST /v1/verify: runtime verification as a service. The request is
// multipart/form-data carrying the specification source — either a TD
// picture (`image`, a PNG, translated through the same cache/store/pool
// path as /v1/translate) or `ref`, the hex content hash a previous
// translation returned in X-Input-Hash — an optional `delays` JSON part
// with the admissible bounds per timing parameter, and finally the `vcd`
// part: a Verilog value-change dump of the signals under test.
//
// The dump is streamed straight off the wire through the incremental
// monitor — never buffered, never materialized as a trace — and the
// response streams back as NDJSON: one `spec` line (compiled LTL/SVA
// property texts, input hash), one `verdict` line per constraint the
// moment both of its endpoint events resolve, and a closing `summary`
// line. Memory is bounded by the specification, not the dump, so a
// multi-gigabyte dump verifies in a few kilobytes of monitor state.

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"strings"

	"tdmagic/internal/core"
	"tdmagic/internal/monitor"
	"tdmagic/internal/obs"
	"tdmagic/internal/spo"
	"tdmagic/internal/store"
)

// verifyRequestSpec is the JSON schema of the `delays` part: the
// monitor.Spec fields that come from the datasheet rather than the
// picture.
type verifyRequestSpec struct {
	// Delays maps a constraint's timing-parameter label (e.g. "t_{su}")
	// to its admissible interval. Constraints with no entry are checked
	// for event ordering only.
	Delays map[string]monitor.Bounds `json:"delays"`
	// MinSwingFrac tunes edge extraction (default 0.5).
	MinSwingFrac float64 `json:"min_swing_frac,omitempty"`
	// ThresholdFracs maps non-standard node threshold texts to level
	// fractions; "NN%" thresholds parse automatically.
	ThresholdFracs map[string]float64 `json:"threshold_fracs,omitempty"`
}

// verifySpecLine is the first NDJSON line of a verification response.
type verifySpecLine struct {
	Type string `json:"type"` // "spec"
	// RequestID echoes the request's X-Request-ID into the stream itself,
	// so a saved NDJSON transcript still correlates with the access log
	// and the flight recorder after the response headers are gone.
	RequestID   string `json:"request_id,omitempty"`
	InputHash   string `json:"input_hash,omitempty"`
	Cached      bool   `json:"cached"`
	Nodes       int    `json:"nodes"`
	Constraints int    `json:"constraints"`
	LTL         string `json:"ltl"`
	SVA         string `json:"sva"`
}

// verifyVerdictLine is one constraint's verdict, streamed as soon as it
// is final.
type verifyVerdictLine struct {
	Type string `json:"type"` // "verdict"
	monitor.Verdict
}

// verifySummaryLine closes a verification response.
type verifySummaryLine struct {
	Type       string    `json:"type"` // "summary"
	OK         bool      `json:"ok"`
	Violations int       `json:"violations"`
	TraceBytes int64     `json:"trace_bytes"`
	EventTimes []float64 `json:"event_times"`
}

// verifyErrorLine reports a failure after the stream has started (the
// status line is long gone by then, so the error travels in-band).
type verifyErrorLine struct {
	Type  string `json:"type"` // "error"
	Error string `json:"error"`
}

// handleVerify serves POST /v1/verify. Parts are consumed in wire order;
// the spec source (`image` or `ref`) and `delays` must precede `vcd`,
// because the dump is verified while it streams — by the time its last
// byte arrives the verdicts are already on the wire.
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST multipart/form-data with image|ref, delays and vcd parts", nil)
		return
	}
	s.verifyReqs.Inc()
	mediaType, params, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if err != nil || mediaType != "multipart/form-data" {
		s.badRequests.Inc()
		s.writeError(w, http.StatusBadRequest, "expected multipart/form-data", nil)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.VerifyTimeout)
	defer cancel()
	if s.cfg.Flight != nil {
		// Trace the whole request — translation (or store lookup), property
		// compilation, the streaming check with its progress events — and
		// capture it however the request ends.
		tr := obs.NewTrace(requestID(r))
		ctx = obs.ContextWithTrace(ctx, tr)
		defer s.cfg.Flight.Capture(tr)
	}

	var (
		p         *spo.SPO
		vspec     verifyRequestSpec
		inputHash string
		cached    bool
	)
	mr := multipart.NewReader(r.Body, params["boundary"])
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			s.badRequests.Inc()
			s.writeError(w, http.StatusBadRequest, "read multipart body: "+err.Error(), nil)
			return
		}
		switch name := part.FormName(); name {
		case "image":
			if p != nil {
				s.badRequests.Inc()
				s.writeError(w, http.StatusBadRequest, "duplicate specification source: one image or ref part only", nil)
				return
			}
			img, errStatus, errMsg := s.readPNGStream(io.LimitReader(part, s.cfg.MaxBodyBytes+1))
			if errMsg != "" {
				s.badRequests.Inc()
				s.writeError(w, errStatus, errMsg, nil)
				return
			}
			res := s.process(ctx, img, false)
			if res.status != http.StatusOK {
				s.writeResult(w, res)
				return
			}
			var resp TranslateResponse
			if err := json.Unmarshal(res.body, &resp); err != nil || resp.SPO == nil {
				s.writeError(w, http.StatusInternalServerError, "decode translation artifact", nil)
				return
			}
			p, inputHash, cached = resp.SPO, res.inputHash, res.cached
		case "ref":
			if p != nil {
				s.badRequests.Inc()
				s.writeError(w, http.StatusBadRequest, "duplicate specification source: one image or ref part only", nil)
				return
			}
			raw, err := io.ReadAll(io.LimitReader(part, 256))
			if err != nil {
				s.writeError(w, http.StatusBadRequest, "read ref part: "+err.Error(), nil)
				return
			}
			key, err := store.ParseHex(strings.TrimSpace(string(raw)))
			if err != nil {
				s.badRequests.Inc()
				s.writeError(w, http.StatusBadRequest, "ref is not an input hash: "+err.Error(), nil)
				return
			}
			body, ok := s.lookupArtifact(key)
			if !ok {
				s.writeError(w, http.StatusNotFound, "no cached translation for ref "+key.Hex()+"; POST the image instead", nil)
				return
			}
			var resp TranslateResponse
			if err := json.Unmarshal(body, &resp); err != nil || resp.SPO == nil {
				s.writeError(w, http.StatusInternalServerError, "decode stored artifact", nil)
				return
			}
			p, inputHash, cached = resp.SPO, key.Hex(), true
		case "delays":
			dec := json.NewDecoder(io.LimitReader(part, 1<<20))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&vspec); err != nil {
				s.badRequests.Inc()
				s.writeError(w, http.StatusBadRequest, "decode delays JSON: "+err.Error(), nil)
				return
			}
		case "vcd":
			if p == nil {
				s.badRequests.Inc()
				s.writeError(w, http.StatusBadRequest, "vcd part must follow an image or ref part", nil)
				return
			}
			s.runVerify(ctx, w, part, p, vspec, inputHash, cached, requestID(r))
			return
		default:
			s.badRequests.Inc()
			s.writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown part %q (want image|ref, delays, vcd)", name), nil)
			return
		}
		_ = part.Close()
	}
	s.badRequests.Inc()
	s.writeError(w, http.StatusBadRequest, "missing vcd part", nil)
}

// lookupArtifact resolves a content hash through the LRU and then the
// persistent store, promoting store hits into the LRU — the same
// two-level read path process uses, minus the translation fallback.
func (s *Server) lookupArtifact(key store.Hash) ([]byte, bool) {
	if body, ok := s.cache.get(key); ok {
		s.cacheHits.Inc()
		return body, true
	}
	if s.cfg.Store != nil {
		if body, ok := s.cfg.Store.Get(s.cfgHash, key); ok {
			if validArtifact(body) {
				s.storeHits.Inc()
				s.cache.put(key, body)
				return body, true
			}
			s.cfg.Store.NoteCorrupt()
		}
	}
	return nil, false
}

// runVerify occupies a worker slot and streams the dump through the
// incremental monitor, writing NDJSON lines as verdicts land. The spec
// line goes out before the first dump byte is read, so a client watching
// the stream sees the compiled properties immediately.
func (s *Server) runVerify(ctx context.Context, w http.ResponseWriter, dump io.Reader, p *spo.SPO, vs verifyRequestSpec, inputHash string, cached bool, rid string) {
	spec := &monitor.Spec{
		SPO:            p,
		Delays:         vs.Delays,
		MinSwingFrac:   vs.MinSwingFrac,
		ThresholdFracs: vs.ThresholdFracs,
	}
	ltlText, svaText, err := core.CompileProperties(ctx, spec)
	if err != nil {
		s.badRequests.Inc()
		s.writeError(w, http.StatusBadRequest, "compile properties: "+err.Error(), nil)
		return
	}
	if err := s.acquire(ctx); err != nil {
		if errors.Is(err, errQueueFull) {
			s.rejections.Inc()
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			s.writeError(w, http.StatusTooManyRequests, "translation queue full", nil)
			return
		}
		s.writeError(w, statusForCtxErr(err), "request cancelled: "+err.Error(), nil)
		return
	}
	defer s.release()
	s.inflight.Inc()
	defer s.inflight.Dec()

	w.Header().Set("Content-Type", "application/x-ndjson")
	if inputHash != "" {
		w.Header().Set("X-Input-Hash", inputHash)
	}
	if cached {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	writeLine := func(v any) {
		_ = enc.Encode(v)
		if flusher != nil {
			flusher.Flush()
		}
	}
	writeLine(verifySpecLine{
		Type:        "spec",
		RequestID:   rid,
		InputHash:   inputHash,
		Cached:      cached,
		Nodes:       len(p.Nodes),
		Constraints: len(p.Constraints),
		LTL:         ltlText,
		SVA:         svaText,
	})
	out, err := core.VerifyStream(ctx, spec, io.LimitReader(dump, s.cfg.MaxVCDBytes+1),
		func(v monitor.Verdict) {
			writeLine(verifyVerdictLine{Type: "verdict", Verdict: v})
		}, s.verifyMetrics)
	if err == nil && out.TraceBytes > s.cfg.MaxVCDBytes {
		err = fmt.Errorf("vcd exceeds the %d-byte limit", s.cfg.MaxVCDBytes)
	}
	if err != nil {
		// The 200 status is committed; the failure travels as the stream's
		// final line instead.
		writeLine(verifyErrorLine{Type: "error", Error: err.Error()})
		return
	}
	writeLine(verifySummaryLine{
		Type:       "summary",
		OK:         out.Result.OK(),
		Violations: len(out.Result.Violations),
		TraceBytes: out.TraceBytes,
		EventTimes: out.Result.EventTimes,
	})
}
