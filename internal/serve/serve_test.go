package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tdmagic/internal/core"
	"tdmagic/internal/dataset"
	"tdmagic/internal/diag"
	"tdmagic/internal/store"
	"tdmagic/internal/tdgen"
)

// Shared tiny pipeline + samples, trained once per test binary.
var (
	fixtureOnce sync.Once
	fixturePipe *core.Pipeline
	fixtureVal  []*dataset.Sample
	fixtureErr  error
)

func fixture(t *testing.T) (*core.Pipeline, []*dataset.Sample) {
	t.Helper()
	fixtureOnce.Do(func() {
		gt := tdgen.New(tdgen.DefaultConfig(tdgen.G1), rand.New(rand.NewSource(100)))
		train, err := gt.GenerateN(40)
		if err != nil {
			fixtureErr = err
			return
		}
		fixturePipe, fixtureErr = core.Train(rand.New(rand.NewSource(1)), train, core.DefaultTrainConfig())
		if fixtureErr != nil {
			return
		}
		g := tdgen.New(tdgen.DefaultConfig(tdgen.G1), rand.New(rand.NewSource(300)))
		fixtureVal, fixtureErr = g.GenerateN(6)
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixturePipe, fixtureVal
}

// pngBytes encodes a sample picture.
func pngBytes(t *testing.T, s *dataset.Sample) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Image.EncodePNG(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	pipe, _ := fixture(t)
	// The pipeline is shared across tests but each Server wires its own
	// registry; reset so this server starts from a clean metric bundle.
	pipe.Metrics = nil
	s := New(pipe, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postPNG(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/translate", "image/png", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestTranslateCacheHit pins the cache contract: the second identical
// upload is answered from the content cache with a byte-identical body,
// and the hit/miss counters account for both requests.
func TestTranslateCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	_, val := fixture(t)
	png := pngBytes(t, val[0])

	resp1 := postPNG(t, ts.URL, png)
	body1 := readBody(t, resp1)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first X-Cache = %q, want miss", got)
	}
	var tr TranslateResponse
	if err := json.Unmarshal(body1, &tr); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	if tr.SPO == nil || tr.Spec == "" {
		t.Errorf("response missing spo/spec: %s", body1)
	}

	// Re-encode through a different PNG writer path: same pixels, so the
	// content hash must still hit.
	resp2 := postPNG(t, ts.URL, png)
	body2 := readBody(t, resp2)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second request: %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("cache hit body is not byte-identical to the first response")
	}
	if hits, misses := s.cacheHits.Value(), s.cacheMisses.Value(); hits != 1 || misses != 1 {
		t.Errorf("cache counters hits=%d misses=%d, want 1/1", hits, misses)
	}
}

// TestPersistentStoreSurvivesRestart pins the second cache level: a
// translation written through to the artifact store is answered from it by
// a fresh server process (empty LRU) with a byte-identical body.
func TestPersistentStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1 := newTestServer(t, Config{Workers: 2, Store: st1})
	_, val := fixture(t)
	png := pngBytes(t, val[0])

	resp1 := postPNG(t, ts1.URL, png)
	body1 := readBody(t, resp1)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first X-Cache = %q, want miss", got)
	}
	if puts := s1.storePuts.Value(); puts != 1 {
		t.Errorf("store puts = %d, want 1", puts)
	}

	// "Restart": a new Server over a reopened store, with its own empty LRU.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, ts2 := newTestServer(t, Config{Workers: 2, Store: st2})
	resp2 := postPNG(t, ts2.URL, png)
	body2 := readBody(t, resp2)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second request: %d %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("restarted X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("store hit body is not byte-identical to the original response")
	}
	if hits := s2.storeHits.Value(); hits != 1 {
		t.Errorf("store hits = %d, want 1", hits)
	}
	// The hit was promoted into the LRU, so a third request never touches disk.
	resp3 := postPNG(t, ts2.URL, png)
	readBody(t, resp3)
	if got := resp3.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("third X-Cache = %q, want hit", got)
	}
	if hits := s2.storeHits.Value(); hits != 1 {
		t.Errorf("store hits after LRU promotion = %d, want still 1", hits)
	}
}

// TestQueueOverflow429 fills the single worker slot and the one-deep wait
// queue, then asserts the next request is shed with 429 + Retry-After
// while the admitted requests still complete.
func TestQueueOverflow429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, CacheSize: -1})
	_, val := fixture(t)

	started := make(chan struct{}, 4)
	block := make(chan struct{})
	translateHook = func() {
		started <- struct{}{}
		<-block
	}
	defer func() { translateHook = nil }()

	type result struct {
		status int
		body   []byte
	}
	results := make(chan result, 2)
	post := func(i int) {
		resp := postPNG(t, ts.URL, pngBytes(t, val[i]))
		results <- result{resp.StatusCode, readBody(t, resp)}
	}

	go post(0)
	<-started // worker slot occupied

	go post(1)
	deadline := time.Now().Add(5 * time.Second)
	for s.queued.Value() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue is full: this one must be rejected immediately.
	resp := postPNG(t, ts.URL, pngBytes(t, val[2]))
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		t.Errorf("429 body not an error payload: %s", body)
	}
	if s.rejections.Value() != 1 {
		t.Errorf("rejections = %d, want 1", s.rejections.Value())
	}

	close(block)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.status != http.StatusOK {
			t.Errorf("admitted request finished with %d: %s", r.status, r.body)
		}
	}
}

// TestGracefulDrain starts a real listener, parks a request inside a
// worker, and shuts down: Shutdown must wait for the in-flight request,
// which must complete successfully, and the listener must then be closed.
func TestGracefulDrain(t *testing.T) {
	pipe, val := fixture(t)
	pipe.Metrics = nil
	s := New(pipe, Config{Workers: 1})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + addr.String()

	started := make(chan struct{}, 1)
	block := make(chan struct{})
	translateHook = func() {
		started <- struct{}{}
		<-block
	}
	defer func() { translateHook = nil }()

	type result struct {
		status int
		err    error
	}
	reqDone := make(chan result, 1)
	go func() {
		resp, err := http.Post(url+"/v1/translate", "image/png", bytes.NewReader(pngBytes(t, val[0])))
		if err != nil {
			reqDone <- result{err: err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		reqDone <- result{status: resp.StatusCode}
	}()
	<-started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// Shutdown must not return while the request is still translating.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v before in-flight request finished", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(block)
	if r := <-reqDone; r.err != nil || r.status != http.StatusOK {
		t.Fatalf("in-flight request during drain: status=%d err=%v", r.status, r.err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Post(url+"/v1/translate", "image/png", bytes.NewReader(pngBytes(t, val[1]))); err == nil {
		t.Error("listener still accepting after Shutdown")
	}
}

// fakePNG builds a syntactically plausible PNG prefix declaring the given
// dimensions (signature + IHDR), enough to exercise the header screen.
func fakePNG(w, h uint32) []byte {
	buf := make([]byte, 0, 33)
	buf = append(buf, 0x89, 'P', 'N', 'G', '\r', '\n', 0x1a, '\n')
	ihdr := make([]byte, 13)
	binary.BigEndian.PutUint32(ihdr[0:4], w)
	binary.BigEndian.PutUint32(ihdr[4:8], h)
	ihdr[8] = 8 // bit depth
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], 13)
	buf = append(buf, lenb[:]...)
	buf = append(buf, []byte("IHDR")...)
	buf = append(buf, ihdr...)
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(append([]byte("IHDR"), ihdr...)))
	buf = append(buf, crc[:]...)
	return buf
}

// TestBadInputs400 pins the client-error contract: malformed bodies,
// oversized bodies, pixel bombs and degenerate pictures all return 400
// with a diag-style JSON payload — never a 500.
func TestBadInputs400(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 1 << 20})

	checkError := func(t *testing.T, resp *http.Response, wantStage string) {
		t.Helper()
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d (%s), want 400", resp.StatusCode, body)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatalf("error payload not JSON: %v: %s", err, body)
		}
		if er.Error == "" {
			t.Errorf("empty error message: %s", body)
		}
		if wantStage != "" {
			if len(er.Diags) == 0 || er.Diags[0].Stage != wantStage || er.Diags[0].Severity != diag.Error {
				t.Errorf("missing %s-stage error diagnostic: %s", wantStage, body)
			}
		}
	}

	t.Run("garbage", func(t *testing.T) {
		checkError(t, postPNG(t, ts.URL, []byte("not a png at all")), diag.StageInput)
	})
	t.Run("truncated", func(t *testing.T) {
		checkError(t, postPNG(t, ts.URL, fakePNG(100, 100)), diag.StageInput)
	})
	t.Run("pixel-bomb", func(t *testing.T) {
		// 1 GB declared raster in a tiny body: refused from the header.
		checkError(t, postPNG(t, ts.URL, fakePNG(1<<15, 1<<15)), diag.StageInput)
	})
	t.Run("oversized-body", func(t *testing.T) {
		big := make([]byte, 1<<20+1)
		copy(big, fakePNG(64, 64))
		checkError(t, postPNG(t, ts.URL, big), diag.StageInput)
	})
	t.Run("degenerate-picture", func(t *testing.T) {
		// A real 2x2 PNG decodes fine but the pipeline refuses it; that
		// must surface as 400, not 500 or an empty 200.
		var buf bytes.Buffer
		tiny := fixtureVal[0].Image.Crop(fixtureVal[0].Image.Bounds())
		tiny = tiny.ScaleTo(2, 2)
		if err := tiny.EncodePNG(&buf); err != nil {
			t.Fatal(err)
		}
		checkError(t, postPNG(t, ts.URL, buf.Bytes()), diag.StageInput)
	})
	t.Run("method", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/translate")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET = %d, want 405", resp.StatusCode)
		}
		readBody(t, resp)
	})
	if s.badRequests.Value() == 0 {
		t.Error("bad-request counter never moved")
	}
}

// TestBatchEndpoint posts a multipart batch mixing a valid picture, a
// duplicate (cache hit) and a malformed part, and checks the per-item
// results keep part order and per-item statuses.
func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	_, val := fixture(t)
	png0 := pngBytes(t, val[0])

	buildBatch := func(parts map[string][]byte, order []string) (*bytes.Buffer, string) {
		var buf bytes.Buffer
		mw := multipart.NewWriter(&buf)
		for _, name := range order {
			fw, err := mw.CreateFormFile(name, name+".png")
			if err != nil {
				t.Fatal(err)
			}
			fw.Write(parts[name])
		}
		mw.Close()
		return &buf, mw.FormDataContentType()
	}

	body, ctype := buildBatch(map[string][]byte{
		"a": png0,
		"b": []byte("garbage"),
		"c": pngBytes(t, val[1]),
	}, []string{"a", "b", "c"})
	resp, err := http.Post(ts.URL+"/v1/translate/batch", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	raw := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		Results []ItemResult `json:"results"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("batch response not JSON: %v", err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(out.Results))
	}
	if out.Results[0].Status != http.StatusOK || out.Results[0].TranslateResponse == nil || out.Results[0].SPO == nil {
		t.Errorf("item a: %+v", out.Results[0])
	}
	if out.Results[1].Status != http.StatusBadRequest || out.Results[1].Error == "" {
		t.Errorf("item b: %+v", out.Results[1])
	}
	if out.Results[2].Status != http.StatusOK {
		t.Errorf("item c: %+v", out.Results[2])
	}
	if out.Results[0].Name != "a.png" || out.Results[1].Name != "b.png" {
		t.Errorf("part order/names wrong: %q %q", out.Results[0].Name, out.Results[1].Name)
	}

	// Same picture again: answered from the cache.
	body, ctype = buildBatch(map[string][]byte{"a": png0}, []string{"a"})
	resp, err = http.Post(ts.URL+"/v1/translate/batch", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	raw = readBody(t, resp)
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || !out.Results[0].Cached {
		t.Errorf("repeat batch item not cached: %s", raw)
	}
}

// TestHealthzAndMetrics checks the liveness probe and that one scrape
// carries both the serve-level and the pipeline-level counters.
func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, val := fixture(t)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb := readBody(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(hb), `"status":"ok"`) {
		t.Fatalf("healthz = %d %s", resp.StatusCode, hb)
	}

	readBody(t, postPNG(t, ts.URL, pngBytes(t, val[0])))

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb := string(readBody(t, resp))
	for _, want := range []string{
		"tdserve_requests_total 1",
		"tdserve_cache_misses_total 1",
		"tdmagic_translations_total 1",
		"tdmagic_translate_seconds_bucket",
		"# TYPE tdserve_queued_requests gauge",
	} {
		if !strings.Contains(mb, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestLRUCacheEviction exercises the cache directly: capacity bounds,
// recency order, disabled mode.
func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	k := func(i byte) store.Hash { var key store.Hash; key[0] = i; return key }
	c.put(k(1), []byte("one"))
	c.put(k(2), []byte("two"))
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("k1 missing")
	}
	c.put(k(3), []byte("three")) // evicts k2 (least recently used)
	if _, ok := c.get(k(2)); ok {
		t.Error("k2 not evicted")
	}
	if b, ok := c.get(k(1)); !ok || string(b) != "one" {
		t.Error("k1 lost")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}

	d := newLRUCache(-1)
	d.put(k(9), []byte("x"))
	if _, ok := d.get(k(9)); ok {
		t.Error("disabled cache stored an entry")
	}
}

// TestConcurrentMixedTraffic hammers the service with concurrent repeat
// and unique requests; run under -race this doubles as the data-race check
// on the cache, the pool and the shared pipeline.
func TestConcurrentMixedTraffic(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	_, val := fixture(t)
	pngs := make([][]byte, len(val))
	for i := range val {
		pngs[i] = pngBytes(t, val[i])
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				resp, err := http.Post(ts.URL+"/v1/translate", "image/png",
					bytes.NewReader(pngs[(g+i)%len(pngs)]))
				if err != nil {
					errs <- err.Error()
					return
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("status %d: %s", resp.StatusCode, b)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
