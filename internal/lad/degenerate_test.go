package lad

import (
	"testing"

	"tdmagic/internal/imgproc"
)

// TestDetectDegenerate feeds the line detector the pathological shapes
// that used to be able to reach it only after a corrupted decode: empty,
// single-pixel, single-row/column, and uniform canvases. Detection must
// return a well-formed (possibly empty) result, never panic.
func TestDetectDegenerate(t *testing.T) {
	white := imgproc.NewGray(48, 48)
	for i := range white.Pix {
		white.Pix[i] = 255
	}
	cases := map[string]*imgproc.Gray{
		"0x0":       imgproc.NewGray(0, 0),
		"1x1":       imgproc.NewGray(1, 1),
		"row":       imgproc.NewGray(96, 1),
		"col":       imgproc.NewGray(1, 96),
		"all-white": white,
		"all-black": imgproc.NewGray(48, 48),
	}
	for name, img := range cases {
		t.Run(name, func(t *testing.T) {
			res := Detect(img, DefaultConfig())
			if res == nil || res.BW == nil {
				t.Fatal("nil result")
			}
			if res.BW.W != img.W || res.BW.H != img.H {
				t.Errorf("binary %dx%d != input %dx%d", res.BW.W, res.BW.H, img.W, img.H)
			}
			for _, v := range res.V {
				if v.Seg.Y1 < v.Seg.Y0 || v.Seg.X < 0 || v.Seg.X >= img.W {
					t.Errorf("malformed vertical contour %+v", v)
				}
			}
			for _, h := range res.H {
				if h.Seg.X1 < h.Seg.X0 || h.Seg.Y < 0 || h.Seg.Y >= img.H {
					t.Errorf("malformed horizontal contour %+v", h)
				}
			}
		})
	}
}
