// Package lad implements the paper's LAD (line-and-arrow detection) module:
// it binarises the input picture into the inverse binary image imgBW and
// applies morphological vertical/horizontal contour detection, which
// (1) strengthens dashed structures into solid lines, (2) filters out
// everything not line-shaped, and (3) collects the surviving contours with
// their coordinates.
//
// LAD is purely geometric; deciding which vertical contours are event
// annotation lines, which horizontal contours are threshold lines, and which
// are timing-constraint arrows requires the edge boxes from SED and is the
// job of the SEI module.
package lad

import (
	"context"
	"math/bits"

	"tdmagic/internal/geom"
	"tdmagic/internal/imgproc"
	"tdmagic/internal/morph"
	"tdmagic/internal/parallel"
)

// Config holds the morphology parameters.
type Config struct {
	// Threshold is the binarisation cut; 0 selects Otsu's method.
	Threshold uint8
	// VBridge / HBridge are the closing element lengths that join dash
	// gaps; VMinLen / HMinLen are the opening element lengths that remove
	// everything shorter.
	VBridge, VMinLen int
	HBridge, HMinLen int
	// MaxThick rejects contours thicker than this across their axis —
	// text blobs and filled regions are not lines.
	MaxThick int
	// Workers tiles the binarisation and morphology passes within one
	// picture and runs the vertical/horizontal contour extractions
	// concurrently: 0 or 1 runs sequentially, < 0 uses every core, > 1
	// uses that many goroutines. The result is bit-identical for any
	// value; batch callers that already parallelise across pictures
	// should leave it at 0.
	Workers int
}

// workers resolves cfg.Workers to a concrete count (0 → sequential).
func (cfg Config) workers() int {
	if cfg.Workers == 0 {
		return 1
	}
	return parallel.Resolve(cfg.Workers)
}

// DefaultConfig returns parameters tuned for the generated 900×540 pictures
// (dash pattern 4 on / 4 off).
func DefaultConfig() Config {
	return Config{
		VBridge: 9, VMinLen: 30,
		HBridge: 9, HMinLen: 25,
		MaxThick: 10,
	}
}

// VContour is a detected vertical structure.
type VContour struct {
	Seg geom.VSeg
	// Density is the ink fraction along the contour in the *raw* binary
	// image: ~1 for solid strokes, ~0.5 for dashed annotation lines.
	Density float64
}

// HContour is a detected horizontal structure.
type HContour struct {
	Seg geom.HSeg
	// Density is the raw ink fraction along the contour row.
	Density float64
}

// Result holds LAD's output.
type Result struct {
	BW *imgproc.Binary // the inverse binary image the contours came from
	V  []VContour
	H  []HContour
}

// Detect runs binarisation and contour extraction on img.
func Detect(img *imgproc.Gray, cfg Config) *Result {
	res, _ := DetectCtx(context.Background(), img, cfg)
	return res
}

// DetectCtx is Detect with cooperative cancellation: the context is
// checked between the binarisation and morphology passes and along the
// per-contour density scans, so a pathological picture cannot run past
// its deadline by more than one pass.
func DetectCtx(ctx context.Context, img *imgproc.Gray, cfg Config) (*Result, error) {
	w := cfg.workers()
	thr := cfg.Threshold
	if thr == 0 {
		thr = imgproc.OtsuThresholdW(img, w)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	bw := imgproc.ThresholdW(img, thr, w)
	return DetectBinaryCtx(ctx, bw, cfg)
}

// DetectBinary runs contour extraction on an existing inverse binary image.
func DetectBinary(bw *imgproc.Binary, cfg Config) *Result {
	res, _ := DetectBinaryCtx(context.Background(), bw, cfg)
	return res
}

// DetectBinaryCtx is DetectBinary with cooperative cancellation.
func DetectBinaryCtx(ctx context.Context, bw *imgproc.Binary, cfg Config) (*Result, error) {
	res := &Result{BW: bw}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	w := cfg.workers()
	var hSegs []geom.HSeg
	var hDone chan struct{}
	if w > 1 {
		// Both extractions read bw without mutating it, so with spare
		// workers the horizontal pass overlaps the vertical one. Each
		// result lands in its own variable and the loops below run in the
		// sequential order, so the assembled Result is bit-identical.
		hDone = make(chan struct{})
		go func() {
			defer close(hDone)
			hSegs = morph.HorizontalContoursW(bw, cfg.HBridge, cfg.HMinLen, cfg.MaxThick, w)
		}()
		// An early ctx-error return must not leave the goroutine writing
		// hSegs behind the caller's back.
		defer func() { <-hDone }()
	}
	for i, seg := range morph.VerticalContoursW(bw, cfg.VBridge, cfg.VMinLen, cfg.MaxThick, w) {
		if i&63 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		res.V = append(res.V, VContour{Seg: seg, Density: vDensity(bw, seg)})
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if hDone != nil {
		<-hDone
	} else {
		hSegs = morph.HorizontalContoursW(bw, cfg.HBridge, cfg.HMinLen, cfg.MaxThick, w)
	}
	for i, seg := range hSegs {
		if i&63 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		res.H = append(res.H, HContour{Seg: seg, Density: hDensity(bw, seg)})
	}
	return res, nil
}

// vDensity measures the raw ink fraction along a vertical segment, probing
// one column to each side to tolerate thick or slightly tilted strokes.
func vDensity(bw *imgproc.Binary, s geom.VSeg) float64 {
	if s.Len() <= 0 {
		return 0
	}
	hits := 0
	for y := s.Y0; y <= s.Y1; y++ {
		if bw.RowAny(y, s.X-1, s.X+1) {
			hits++
		}
	}
	return float64(hits) / float64(s.Len())
}

// hDensity measures the raw ink fraction along a horizontal segment. The
// three probed rows are OR-ed word-wise, so the column scan popcounts 64
// pixels at a time.
func hDensity(bw *imgproc.Binary, s geom.HSeg) float64 {
	if s.Len() <= 0 {
		return 0
	}
	x0, x1 := s.X0, s.X1
	if x0 < 0 {
		x0 = 0
	}
	if x1 >= bw.W {
		x1 = bw.W - 1
	}
	if x0 > x1 {
		return 0
	}
	w0, w1 := x0>>6, x1>>6
	m0 := ^uint64(0) << (uint(x0) & 63)
	m1 := ^uint64(0) >> (63 - uint(x1)&63)
	hits := 0
	for j := w0; j <= w1; j++ {
		var w uint64
		for dy := -1; dy <= 1; dy++ {
			if y := s.Y + dy; y >= 0 && y < bw.H {
				w |= bw.Row(y)[j]
			}
		}
		if j == w0 {
			w &= m0
		}
		if j == w1 {
			w &= m1
		}
		hits += bits.OnesCount64(w)
	}
	return float64(hits) / float64(s.Len())
}

// Dashed reports whether a contour density indicates a dashed stroke.
func Dashed(density float64) bool { return density < 0.85 }
