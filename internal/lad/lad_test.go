package lad

import (
	"math/rand"
	"testing"

	"tdmagic/internal/geom"
	"tdmagic/internal/render"
	"tdmagic/internal/tdgen"
)

func TestDetectDashedVerticalLine(t *testing.T) {
	c := render.NewCanvas(200, 200)
	c.DashedLine(geom.Pt{X: 100, Y: 20}, geom.Pt{X: 100, Y: 180}, 1, 4, 4)
	res := Detect(c.Gray(), DefaultConfig())
	if len(res.V) != 1 {
		t.Fatalf("vertical contours = %d, want 1", len(res.V))
	}
	v := res.V[0]
	if v.Seg.X < 98 || v.Seg.X > 102 {
		t.Errorf("contour at x=%d, want ~100", v.Seg.X)
	}
	if v.Seg.Len() < 130 {
		t.Errorf("dashes not bridged: len=%d", v.Seg.Len())
	}
	if !Dashed(v.Density) {
		t.Errorf("dashed line density %v not recognised as dashed", v.Density)
	}
}

func TestDetectSolidVsDashedDensity(t *testing.T) {
	c := render.NewCanvas(200, 200)
	c.Line(geom.Pt{X: 50, Y: 20}, geom.Pt{X: 50, Y: 180}, 2)
	c.DashedLine(geom.Pt{X: 150, Y: 20}, geom.Pt{X: 150, Y: 180}, 1, 4, 4)
	res := Detect(c.Gray(), DefaultConfig())
	if len(res.V) != 2 {
		t.Fatalf("vertical contours = %d, want 2", len(res.V))
	}
	var solid, dashed *VContour
	for i := range res.V {
		if res.V[i].Seg.X < 100 {
			solid = &res.V[i]
		} else {
			dashed = &res.V[i]
		}
	}
	if solid == nil || dashed == nil {
		t.Fatal("contours not found at expected columns")
	}
	if Dashed(solid.Density) {
		t.Errorf("solid density %v classified dashed", solid.Density)
	}
	if !Dashed(dashed.Density) {
		t.Errorf("dashed density %v classified solid", dashed.Density)
	}
}

func TestDetectHorizontalContours(t *testing.T) {
	c := render.NewCanvas(300, 100)
	c.Line(geom.Pt{X: 20, Y: 30}, geom.Pt{X: 280, Y: 30}, 3)             // plateau
	c.DashedLine(geom.Pt{X: 50, Y: 60}, geom.Pt{X: 150, Y: 60}, 1, 4, 4) // threshold
	res := Detect(c.Gray(), DefaultConfig())
	if len(res.H) != 2 {
		t.Fatalf("horizontal contours = %d, want 2", len(res.H))
	}
	for _, h := range res.H {
		switch {
		case h.Seg.Y >= 28 && h.Seg.Y <= 32:
			if Dashed(h.Density) {
				t.Error("plateau classified dashed")
			}
		case h.Seg.Y >= 58 && h.Seg.Y <= 62:
			if !Dashed(h.Density) {
				t.Error("threshold line classified solid")
			}
		default:
			t.Errorf("unexpected contour at y=%d", h.Seg.Y)
		}
	}
}

func TestDetectFiltersTextAndDiagonals(t *testing.T) {
	c := render.NewCanvas(300, 200)
	c.Text(20, 20, "t_{D(on)} 90% V_{INA}", 2)
	c.Line(geom.Pt{X: 50, Y: 180}, geom.Pt{X: 200, Y: 60}, 3) // ramp-like diagonal
	res := Detect(c.Gray(), DefaultConfig())
	if len(res.V) != 0 {
		t.Errorf("text/diagonal produced %d vertical contours", len(res.V))
	}
	// Text rows can survive as short spurious horizontal fragments — the
	// SEI module filters them semantically. LAD must at least keep them
	// short so they can never masquerade as full arrows or threshold lines.
	for _, h := range res.H {
		if h.Seg.Len() >= 45 {
			t.Errorf("text produced long horizontal contour %v", h.Seg)
		}
	}
}

func TestDetectArrowShaft(t *testing.T) {
	c := render.NewCanvas(300, 60)
	c.HArrow(30, 40, 260, 2)
	res := Detect(c.Gray(), DefaultConfig())
	if len(res.H) != 1 {
		t.Fatalf("arrow produced %d horizontal contours, want 1", len(res.H))
	}
	h := res.H[0]
	if h.Seg.X0 > 45 || h.Seg.X1 < 255 {
		t.Errorf("arrow shaft span [%d,%d] too short", h.Seg.X0, h.Seg.X1)
	}
	if len(res.V) != 0 {
		t.Error("arrow heads produced vertical contours")
	}
}

func TestDetectStepEdgeAppearsVertical(t *testing.T) {
	// A solid step edge is genuinely a vertical contour — the paper's
	// Example 3 confusion. LAD must report it (SEI disambiguates later).
	c := render.NewCanvas(100, 200)
	c.Line(geom.Pt{X: 50, Y: 40}, geom.Pt{X: 50, Y: 160}, 3)
	res := Detect(c.Gray(), DefaultConfig())
	if len(res.V) != 1 {
		t.Fatalf("step edge not detected as vertical contour")
	}
	if Dashed(res.V[0].Density) {
		t.Error("solid step edge density should not be dashed")
	}
}

func TestDetectOnGeneratedDiagram(t *testing.T) {
	g := tdgen.New(tdgen.DefaultConfig(tdgen.G1), rand.New(rand.NewSource(3)))
	for i := 0; i < 5; i++ {
		s, err := g.Generate()
		if err != nil {
			t.Fatal(err)
		}
		res := Detect(s.Image, DefaultConfig())
		// Every ground-truth vline must be matched by some vertical
		// contour within 3 px of its column covering most of its span.
		for _, gt := range s.VLines {
			found := false
			for _, v := range res.V {
				if geom.Abs(v.Seg.X-gt.X) <= 3 &&
					v.Seg.Y0 <= gt.Y0+12 && v.Seg.Y1 >= gt.Y1-12 {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("sample %d (%s): ground-truth vline x=%d not detected", i, s.Name, gt.X)
			}
		}
		// Every ground-truth threshold hline must be matched by a dashed
		// horizontal contour.
		for _, gt := range s.HLines {
			found := false
			for _, h := range res.H {
				if geom.Abs(h.Seg.Y-gt.Y) <= 3 && h.Seg.X0 <= gt.X0+12 && h.Seg.X1 >= gt.X1-12 {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("sample %d (%s): ground-truth hline y=%d not detected", i, s.Name, gt.Y)
			}
		}
	}
}

func TestDetectBinaryDirect(t *testing.T) {
	c := render.NewCanvas(100, 100)
	c.Line(geom.Pt{X: 50, Y: 10}, geom.Pt{X: 50, Y: 90}, 1)
	res := DetectBinary(c.Ink(), DefaultConfig())
	if len(res.V) != 1 || res.BW == nil {
		t.Error("DetectBinary failed")
	}
}

func TestDetectEmptyImage(t *testing.T) {
	c := render.NewCanvas(50, 50)
	res := Detect(c.Gray(), DefaultConfig())
	if len(res.V) != 0 || len(res.H) != 0 {
		t.Error("empty image produced contours")
	}
}

func TestDensityDegenerate(t *testing.T) {
	if vDensity(render.NewCanvas(5, 5).Ink(), geom.VSeg{X: 2, Y0: 3, Y1: 2}) != 0 {
		t.Error("degenerate segment density")
	}
	if hDensity(render.NewCanvas(5, 5).Ink(), geom.HSeg{Y: 2, X0: 3, X1: 2}) != 0 {
		t.Error("degenerate segment density")
	}
}
