package vcd

import (
	"math"
	"strings"
	"testing"

	"tdmagic/internal/monitor"
	"tdmagic/internal/spo"
	"tdmagic/internal/trace"
)

const sampleVCD = `$date today $end
$version tdmagic test $end
$timescale 1ns $end
$scope module top $end
$var wire 1 ! VINA $end
$var real 64 " VOUTA $end
$upscope $end
$enddefinitions $end
$dumpvars
0!
r0.0 "
$end
#100
1!
#150
r0.5 "
#200
r1.0 "
#400
0!
#450
r0.5 "
#500
r0.0 "
`

func TestParseSample(t *testing.T) {
	tr, err := Parse(strings.NewReader(sampleVCD))
	if err != nil {
		t.Fatal(err)
	}
	vina := tr.Signal("top.VINA")
	vouta := tr.Signal("top.VOUTA")
	if vina == nil || vouta == nil {
		t.Fatalf("signals missing: %+v", tr.Signals)
	}
	// Timescale 1ns applied: rise at 100 ns.
	cr := vina.Crossings(0.5)
	if len(cr) != 2 {
		t.Fatalf("VINA crossings = %d", len(cr))
	}
	if math.Abs(cr[0].T-100e-9) > 1e-12 || !cr[0].Rising {
		t.Errorf("first crossing = %+v", cr[0])
	}
	if math.Abs(cr[1].T-400e-9) > 1e-12 || cr[1].Rising {
		t.Errorf("second crossing = %+v", cr[1])
	}
	// Analog ramp values interpolate.
	if v := vouta.Value(175e-9); v < 0.5 || v > 1.0 {
		t.Errorf("VOUTA mid-ramp = %v", v)
	}
}

func TestParsedTraceDrivesMonitor(t *testing.T) {
	tr, err := Parse(strings.NewReader(sampleVCD))
	if err != nil {
		t.Fatal(err)
	}
	// Example-1 style spec: VINA rise leads VOUTA 90% crossing.
	p := &spo.SPO{}
	n1 := p.AddNode(spo.Node{Signal: "top.VINA", EdgeIndex: 1, Type: spo.RiseStep})
	n2 := p.AddNode(spo.Node{Signal: "top.VOUTA", EdgeIndex: 1, Type: spo.RiseRamp, Threshold: "90%"})
	_ = p.AddConstraint(n1, n2, "t_{D(on)}")
	spec := &monitor.Spec{
		SPO:    p,
		Delays: map[string]monitor.Bounds{"t_{D(on)}": {Min: 50e-9, Max: 150e-9}},
	}
	res, err := monitor.Check(spec, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Errorf("violations on conforming VCD: %v", res.Violations)
	}
	// Tighten the max below the measured ~90 ns delay: must now violate.
	spec.Delays["t_{D(on)}"] = monitor.Bounds{Min: 1e-9, Max: 50e-9}
	res, err = monitor.Check(spec, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Error("tightened bound not violated")
	}
}

func TestParseVectors(t *testing.T) {
	tr, err := Parse(strings.NewReader(`$timescale 1us $end
$var reg 4 % bus $end
$enddefinitions $end
#0
b0000 %
#10
b1010 %
`))
	if err != nil {
		t.Fatal(err)
	}
	bus := tr.Signal("bus")
	if bus == nil {
		t.Fatal("bus missing")
	}
	if v := bus.Value(10e-6); v != 10 {
		t.Errorf("bus value = %v, want 10", v)
	}
}

func TestParseScopes(t *testing.T) {
	tr, err := Parse(strings.NewReader(`$timescale 1ns $end
$scope module chip $end
$scope module core $end
$var wire 1 ! clk $end
$upscope $end
$upscope $end
$enddefinitions $end
#0
0!
`))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Signal("chip.core.clk") == nil {
		t.Errorf("scoped name missing: %+v", tr.Signals)
	}
}

func TestParseXandZ(t *testing.T) {
	tr, err := Parse(strings.NewReader(`$timescale 1ns $end
$var wire 1 ! w $end
$enddefinitions $end
#0
x!
#5
1!
#9
z!
`))
	if err != nil {
		t.Fatal(err)
	}
	w := tr.Signal("w")
	// Probe just after each change (the exact change instant is the step
	// boundary).
	if w.Value(1e-9) != 0 || w.Value(9.5e-9) != 0 {
		t.Error("x/z should resolve low")
	}
	if w.Value(6e-9) != 1 {
		t.Error("1 lost")
	}
}

func TestParseTimescaleVariants(t *testing.T) {
	cases := map[string]float64{
		"1ns":   1e-9,
		"10 us": 1e-5,
		"100ps": 1e-10,
		"1 s":   1,
	}
	for in, want := range cases {
		got, err := parseTimescale(append(strings.Fields(in), "$end"))
		if err != nil || math.Abs(got-want) > want*1e-9 {
			t.Errorf("parseTimescale(%q) = %v, %v", in, got, err)
		}
	}
	for _, bad := range []string{"ns", "1 fortnights", ""} {
		if _, err := parseTimescale(append(strings.Fields(bad), "$end")); err == nil {
			t.Errorf("parseTimescale(%q) accepted", bad)
		}
	}
}

func TestParseRejectsNonMonotoneTimestamps(t *testing.T) {
	_, err := Parse(strings.NewReader(`$timescale 1ns $end
$var wire 1 ! w $end
$enddefinitions $end
#10
1!
#5
0!
`))
	if err == nil {
		t.Fatal("non-monotone timestamps accepted")
	}
	if !strings.Contains(err.Error(), "vcd: line 6") {
		t.Errorf("error not a line-numbered VCD error: %v", err)
	}
	// Equal timestamps are legal (repeated #t sections).
	if _, err := Parse(strings.NewReader(`$timescale 1ns $end
$var wire 1 ! w $end
$enddefinitions $end
#5
1!
#5
0!
`)); err != nil {
		t.Errorf("equal timestamps rejected: %v", err)
	}
}

func TestParseRejectsInvalidVectorBits(t *testing.T) {
	for _, chg := range []string{"b2 %", "b1O1 %", "b10f0 %"} {
		doc := "$var reg 4 % bus $end\n$enddefinitions $end\n#0\n" + chg + "\n"
		if _, err := Parse(strings.NewReader(doc)); err == nil {
			t.Errorf("invalid vector bits accepted: %q", chg)
		}
	}
	// x/z bits are legal and resolve low: b1x1z = 1010b = 10.
	tr, err := Parse(strings.NewReader(`$var reg 4 % bus $end
$enddefinitions $end
#0
b1x1Z %
`))
	if err != nil {
		t.Fatal(err)
	}
	if v := tr.Signal("bus").Value(0); v != 10 {
		t.Errorf("b1x1Z value = %v, want 10", v)
	}
}

func TestParseRejectsBadTimescaleMagnitude(t *testing.T) {
	for _, ts := range []string{"5ns", "1000 ps", "20us"} {
		doc := "$timescale " + ts + " $end\n$enddefinitions $end\n"
		if _, err := Parse(strings.NewReader(doc)); err == nil {
			t.Errorf("timescale %q accepted; IEEE 1364 allows magnitudes 1/10/100 only", ts)
		}
	}
}

func TestWriteRoundTrip(t *testing.T) {
	in := &trace.Trace{}
	a := in.Add("VINA")
	for _, p := range []trace.Point{{T: 0, V: 0}, {T: 1e-9, V: 0}, {T: 1.5e-9, V: 1}, {T: 4e-9, V: 1}} {
		if err := a.Append(p.T, p.V); err != nil {
			t.Fatal(err)
		}
	}
	b := in.Add("VOUTA")
	for _, p := range []trace.Point{{T: 0, V: 0.1}, {T: 2e-9, V: 0.9}} {
		if err := b.Append(p.T, p.V); err != nil {
			t.Fatal(err)
		}
	}
	var buf strings.Builder
	if err := Write(&buf, in, "1ps"); err != nil {
		t.Fatal(err)
	}
	out, err := Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("round-trip parse: %v\n%s", err, buf.String())
	}
	for _, want := range in.Signals {
		got := out.Signal(want.Name)
		if got == nil {
			t.Fatalf("signal %q lost", want.Name)
		}
		if len(got.Points) != len(want.Points) {
			t.Fatalf("%q: %d points, want %d", want.Name, len(got.Points), len(want.Points))
		}
		for i, p := range want.Points {
			q := got.Points[i]
			if math.Abs(p.T-q.T) > 1e-12 || math.Abs(p.V-q.V) > 1e-12 {
				t.Errorf("%q point %d = %+v, want %+v", want.Name, i, q, p)
			}
		}
	}
	if err := Write(&buf, in, "1 fortnights"); err == nil {
		t.Error("bad timescale accepted")
	}
	bad := &trace.Trace{}
	bad.Add("has space")
	if err := Write(&buf, bad, "1ns"); err == nil {
		t.Error("whitespace signal name accepted")
	}
}

// recordSink captures decoder output for direct streaming assertions.
type recordSink struct {
	names  []string
	binary []bool
	events []struct {
		h    int
		t, v float64
	}
}

func (s *recordSink) Declare(name string, binary bool) int {
	s.names = append(s.names, name)
	s.binary = append(s.binary, binary)
	return len(s.names) - 1
}

func (s *recordSink) Change(h int, t, v float64) error {
	s.events = append(s.events, struct {
		h    int
		t, v float64
	}{h, t, v})
	return nil
}

func TestDecoderStreamsWithHoldPoints(t *testing.T) {
	doc := `$timescale 1ns $end
$var wire 1 ! clk $end
$var real 64 % v $end
$enddefinitions $end
#0
0!
r0.5 %
#10
1!
`
	sink := &recordSink{}
	d := NewDecoder(strings.NewReader(doc), sink)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sink.names) != 2 || !sink.binary[0] || sink.binary[1] {
		t.Fatalf("declares = %v binary = %v", sink.names, sink.binary)
	}
	// clk: 0@0, then hold 0@10ns, then 1@10ns. v: one real sample.
	want := []struct {
		h    int
		t, v float64
	}{{0, 0, 0}, {1, 0, 0.5}, {0, 10e-9, 0}, {0, 10e-9, 1}}
	if len(sink.events) != len(want) {
		t.Fatalf("events = %+v", sink.events)
	}
	for i, w := range want {
		e := sink.events[i]
		if e.h != w.h || math.Abs(e.t-w.t) > 1e-15 || e.v != w.v {
			t.Errorf("event %d = %+v, want %+v", i, e, w)
		}
	}
	if d.Bytes() != int64(len(doc)) {
		t.Errorf("Bytes = %d, want %d", d.Bytes(), len(doc))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, text string }{
		{"bad timestamp", "$enddefinitions $end\n#xyz\n"},
		{"unknown scalar id", "$enddefinitions $end\n#0\n1?\n"},
		{"unknown vector id", "$enddefinitions $end\n#0\nb101 ?\n"},
		{"unknown real id", "$enddefinitions $end\n#0\nr1.5 ?\n"},
		{"vector missing id", "$enddefinitions $end\n#0\nb101\n"},
		{"garbage change", "$enddefinitions $end\n#0\nqqq\n"},
		{"malformed var", "$var wire 1\n$enddefinitions $end\n"},
		{"bare scalar", "$enddefinitions $end\n#0\n1\n"},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.text)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}
