package vcd

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Sink receives decoded value-change events from a Decoder. Declare is
// called once per declared variable before any of its changes; binary is
// true for 1-bit digital variables, whose values can only ever be 0 or 1
// (x/z resolve low). The returned handle identifies the signal in
// subsequent Change calls. Change delivers samples with non-decreasing
// times per handle; digital hold points (the old value re-asserted at the
// change instant) are already expanded by the decoder.
type Sink interface {
	Declare(name string, binary bool) int
	Change(handle int, t, v float64) error
}

// Decoder incrementally parses a VCD document, emitting each decoded
// sample to a Sink as it is read instead of materializing a trace. It
// retains O(declared signals) state, so arbitrarily large dumps stream in
// constant memory per signal.
type Decoder struct {
	sink Sink
	cr   *countReader
	sc   *bufio.Scanner

	ids   map[string]int // var id code -> sink handle
	state map[int]*holdState
}

// holdState tracks the last emitted sample per handle, for digital
// hold-point expansion (VCD step semantics: the old value persists right
// up to the change instant).
type holdState struct {
	t, v float64
	has  bool
}

type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// NewDecoder prepares a streaming decode of r into sink. Call Run to
// consume the document.
func NewDecoder(r io.Reader, sink Sink) *Decoder {
	cr := &countReader{r: r}
	sc := bufio.NewScanner(cr)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	return &Decoder{
		sink:  sink,
		cr:    cr,
		sc:    sc,
		ids:   map[string]int{},
		state: map[int]*holdState{},
	}
}

// Bytes returns the number of input bytes consumed so far.
func (d *Decoder) Bytes() int64 { return d.cr.n }

// Run consumes the whole document, emitting every decoded sample to the
// sink. Errors are positioned: "vcd: line N: ...". Beyond the common
// format core, Run validates what the old whole-trace parser let through
// silently: timestamps must be non-decreasing, vector changes may use only
// the bit characters 0/1/x/z/X/Z, and $timescale magnitudes are restricted
// to 1/10/100 per IEEE 1364.
func (d *Decoder) Run() error {
	var scope []string
	now := 0.0
	scale := 1.0
	inDefs := true
	lineNo := 0

	for d.sc.Scan() {
		lineNo++
		line := strings.TrimSpace(d.sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case inDefs && fields[0] == "$timescale":
			// Either inline ("$timescale 1ns $end") or the value on the
			// next lines; gather tokens until $end.
			toks := fields[1:]
			for !contains(toks, "$end") && d.sc.Scan() {
				lineNo++
				toks = append(toks, strings.Fields(d.sc.Text())...)
			}
			s, err := parseTimescale(toks)
			if err != nil {
				return fmt.Errorf("vcd: line %d: %w", lineNo, err)
			}
			scale = s
		case inDefs && fields[0] == "$scope":
			if len(fields) >= 3 {
				scope = append(scope, fields[2])
			}
		case inDefs && fields[0] == "$upscope":
			if len(scope) > 0 {
				scope = scope[:len(scope)-1]
			}
		case inDefs && fields[0] == "$var":
			// $var <kind> <width> <id> <ref> [indices] $end
			if len(fields) < 5 {
				return fmt.Errorf("vcd: line %d: malformed $var", lineNo)
			}
			kind, width, id, name := fields[1], fields[2], fields[3], fields[4]
			if len(scope) > 0 {
				name = strings.Join(scope, ".") + "." + name
			}
			binary := kind != "real" && width == "1"
			h := d.sink.Declare(name, binary)
			d.ids[id] = h
			if d.state[h] == nil {
				d.state[h] = &holdState{}
			}
		case fields[0] == "$enddefinitions":
			inDefs = false
		case strings.HasPrefix(fields[0], "$"):
			// $comment/$date/$version/$dumpvars/$dumpall/$end...: skip.
		case strings.HasPrefix(fields[0], "#"):
			t, err := strconv.ParseFloat(fields[0][1:], 64)
			// ParseFloat accepts "NaN"/"Inf"; a non-finite or negative
			// timestamp would poison the trace's monotonicity check
			// (NaN compares false against everything), so reject here.
			if err != nil || math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
				return fmt.Errorf("vcd: line %d: bad timestamp %q", lineNo, fields[0])
			}
			nt := t * scale
			if nt < now {
				return fmt.Errorf("vcd: line %d: timestamp %q before previous time", lineNo, fields[0])
			}
			now = nt
		default:
			if err := d.valueChange(now, fields); err != nil {
				return fmt.Errorf("vcd: line %d: %w", lineNo, err)
			}
		}
	}
	if err := d.sc.Err(); err != nil {
		return err
	}
	return nil
}

// valueChange applies one value-change line. Digital changes (scalar and
// vector) follow VCD's hold semantics: the old value persists until the
// change instant, so a hold point is emitted before the new value to keep
// the piecewise-linear signal a step function. Real changes are analog
// samples and interpolate linearly as recorded.
func (d *Decoder) valueChange(now float64, fields []string) error {
	tok := fields[0]
	switch tok[0] {
	case '0', '1', 'x', 'X', 'z', 'Z':
		// Scalar: value and id share the token ("1!").
		if len(tok) < 2 {
			return fmt.Errorf("malformed scalar change %q", tok)
		}
		h, ok := d.ids[tok[1:]]
		if !ok {
			return fmt.Errorf("unknown id %q", tok[1:])
		}
		return d.emitStep(h, now, scalarValue(tok[0]))
	case 'b', 'B':
		if len(fields) < 2 {
			return fmt.Errorf("vector change missing id: %q", tok)
		}
		h, ok := d.ids[fields[1]]
		if !ok {
			return fmt.Errorf("unknown id %q", fields[1])
		}
		v := 0.0
		for _, bit := range tok[1:] {
			v *= 2
			switch bit {
			case '1':
				v++
			case '0', 'x', 'X', 'z', 'Z':
				// x/z resolve low.
			default:
				return fmt.Errorf("invalid bit %q in vector change %q", bit, tok)
			}
		}
		return d.emitStep(h, now, v)
	case 'r', 'R':
		if len(fields) < 2 {
			return fmt.Errorf("real change missing id: %q", tok)
		}
		h, ok := d.ids[fields[1]]
		if !ok {
			return fmt.Errorf("unknown id %q", fields[1])
		}
		v, err := strconv.ParseFloat(tok[1:], 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("bad real value %q", tok)
		}
		return d.emit(h, now, v)
	}
	return fmt.Errorf("unrecognised value change %q", tok)
}

// emitStep records a digital change: the previous value is held right up
// to the change instant.
func (d *Decoder) emitStep(h int, now, v float64) error {
	if st := d.state[h]; st.has && st.v != v && st.t < now {
		if err := d.emit(h, now, st.v); err != nil {
			return err
		}
	}
	return d.emit(h, now, v)
}

func (d *Decoder) emit(h int, t, v float64) error {
	if err := d.sink.Change(h, t, v); err != nil {
		return err
	}
	st := d.state[h]
	st.t, st.v, st.has = t, v, true
	return nil
}

func scalarValue(c byte) float64 {
	if c == '1' {
		return 1
	}
	return 0 // 0, x, z all resolve low
}
