package vcd

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"tdmagic/internal/trace"
)

// Write encodes a trace as a VCD document that Parse round-trips: every
// signal is declared as a real variable (analog samples interpolate
// linearly, preserving ramp shapes), and sample times are expressed in the
// given timescale (e.g. "1ps"). Choose a timescale fine enough for the
// trace: times are rounded to whole ticks, and an error is returned if
// rounding would reorder samples. Signal names containing whitespace
// cannot be encoded.
func Write(w io.Writer, tr *trace.Trace, timescale string) error {
	scale, err := parseTimescale(append(strings.Fields(timescale), "$end"))
	if err != nil {
		return fmt.Errorf("vcd: %w", err)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "$timescale %s $end\n", timescale)
	ids := make([]string, len(tr.Signals))
	for i, sig := range tr.Signals {
		if strings.ContainsAny(sig.Name, " \t\r\n") || sig.Name == "" {
			return fmt.Errorf("vcd: cannot encode signal name %q", sig.Name)
		}
		ids[i] = varID(i)
		fmt.Fprintf(bw, "$var real 64 %s %s $end\n", ids[i], sig.Name)
	}
	fmt.Fprintf(bw, "$enddefinitions $end\n")

	// Merge the per-signal sample streams into one globally ordered dump.
	type sample struct {
		tick int64
		sig  int
		v    float64
	}
	var all []sample
	for i, sig := range tr.Signals {
		prev := int64(-1)
		for _, p := range sig.Points {
			if math.IsNaN(p.V) || math.IsInf(p.V, 0) {
				return fmt.Errorf("vcd: non-finite value in %q", sig.Name)
			}
			tick := int64(math.Round(p.T / scale))
			if tick < 0 {
				return fmt.Errorf("vcd: negative time %v in %q", p.T, sig.Name)
			}
			if tick < prev {
				return fmt.Errorf("vcd: timescale %s too coarse for %q (samples reorder)", timescale, sig.Name)
			}
			prev = tick
			all = append(all, sample{tick: tick, sig: i, v: p.V})
		}
	}
	// Stable-sort by tick so same-instant samples keep per-signal order.
	sort.SliceStable(all, func(a, b int) bool { return all[a].tick < all[b].tick })
	tick := int64(-1)
	for _, s := range all {
		if s.tick != tick {
			fmt.Fprintf(bw, "#%d\n", s.tick)
			tick = s.tick
		}
		fmt.Fprintf(bw, "r%g %s\n", s.v, ids[s.sig])
	}
	return bw.Flush()
}

// varID allocates printable single/multi-char VCD identifier codes
// (ASCII 33..126, excluding '#' and '$' which start other line kinds).
func varID(i int) string {
	const alphabet = "!%&'()*+,-./:;<=>?@[]^_`{|}~" +
		"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
	var b []byte
	for {
		b = append([]byte{alphabet[i%len(alphabet)]}, b...)
		i /= len(alphabet)
		if i == 0 {
			return string(b)
		}
		i--
	}
}
