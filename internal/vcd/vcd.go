// Package vcd parses Value Change Dump files — the standard waveform
// output of Verilog/VHDL simulators (IEEE 1364 §18) — into the trace model,
// so specifications extracted from timing-diagram pictures can be checked
// directly against simulation runs (internal/monitor).
//
// The parser supports the common core of the format: the declaration
// section ($timescale, $scope/$upscope, $var for wire/reg/real/integer
// kinds, $enddefinitions), $dumpvars blocks, timestamps (#NNN), scalar
// value changes (0/1/x/z + id), vector changes (b1010 id) and real changes
// (r1.25 id). Multi-bit vectors are converted to their unsigned numeric
// value; x/z resolve to 0.
package vcd

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"tdmagic/internal/trace"
)

// Parse reads a VCD document into a trace. Signal names are the
// dot-joined scope path plus the declared reference name.
func Parse(r io.Reader) (*trace.Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)

	tr := &trace.Trace{}
	ids := map[string]*trace.Signal{}
	var scope []string
	now := 0.0
	scale := 1.0
	inDefs := true
	lineNo := 0

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case inDefs && fields[0] == "$timescale":
			// Either inline ("$timescale 1ns $end") or the value on the
			// next lines; gather tokens until $end.
			toks := fields[1:]
			for !contains(toks, "$end") && sc.Scan() {
				lineNo++
				toks = append(toks, strings.Fields(sc.Text())...)
			}
			s, err := parseTimescale(toks)
			if err != nil {
				return nil, fmt.Errorf("vcd: line %d: %w", lineNo, err)
			}
			scale = s
		case inDefs && fields[0] == "$scope":
			if len(fields) >= 3 {
				scope = append(scope, fields[2])
			}
		case inDefs && fields[0] == "$upscope":
			if len(scope) > 0 {
				scope = scope[:len(scope)-1]
			}
		case inDefs && fields[0] == "$var":
			// $var <kind> <width> <id> <ref> [indices] $end
			if len(fields) < 5 {
				return nil, fmt.Errorf("vcd: line %d: malformed $var", lineNo)
			}
			id := fields[3]
			name := fields[4]
			if len(scope) > 0 {
				name = strings.Join(scope, ".") + "." + name
			}
			ids[id] = tr.Add(name)
		case fields[0] == "$enddefinitions":
			inDefs = false
		case strings.HasPrefix(fields[0], "$"):
			// $comment/$date/$version/$dumpvars/$dumpall/$end...: skip.
		case strings.HasPrefix(fields[0], "#"):
			t, err := strconv.ParseFloat(fields[0][1:], 64)
			// ParseFloat accepts "NaN"/"Inf"; a non-finite or negative
			// timestamp would poison the trace's monotonicity check
			// (NaN compares false against everything), so reject here.
			if err != nil || math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
				return nil, fmt.Errorf("vcd: line %d: bad timestamp %q", lineNo, fields[0])
			}
			now = t * scale
		default:
			if err := valueChange(ids, now, fields); err != nil {
				return nil, fmt.Errorf("vcd: line %d: %w", lineNo, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}

func contains(toks []string, want string) bool {
	for _, t := range toks {
		if t == want {
			return true
		}
	}
	return false
}

// parseTimescale converts tokens like ["1ns", "$end"] or ["10", "us",
// "$end"] into seconds per time unit.
func parseTimescale(toks []string) (float64, error) {
	joined := ""
	for _, t := range toks {
		if t == "$end" {
			break
		}
		joined += t
	}
	i := 0
	for i < len(joined) && (joined[i] >= '0' && joined[i] <= '9') {
		i++
	}
	if i == 0 {
		return 0, fmt.Errorf("bad timescale %q", joined)
	}
	mag, err := strconv.Atoi(joined[:i])
	if err != nil {
		return 0, err
	}
	unit := strings.TrimSpace(joined[i:])
	mult, ok := map[string]float64{
		"s": 1, "ms": 1e-3, "us": 1e-6, "ns": 1e-9, "ps": 1e-12, "fs": 1e-15,
	}[unit]
	if !ok {
		return 0, fmt.Errorf("unknown timescale unit %q", unit)
	}
	return float64(mag) * mult, nil
}

// valueChange applies one value-change line. Digital changes (scalar and
// vector) follow VCD's hold semantics: the old value persists until the
// change instant, so a hold point is inserted before the new value to keep
// the piecewise-linear trace a step function. Real changes are analog
// samples and interpolate linearly as recorded.
func valueChange(ids map[string]*trace.Signal, now float64, fields []string) error {
	tok := fields[0]
	switch tok[0] {
	case '0', '1', 'x', 'X', 'z', 'Z':
		// Scalar: value and id share the token ("1!").
		if len(tok) < 2 {
			return fmt.Errorf("malformed scalar change %q", tok)
		}
		sig := ids[tok[1:]]
		if sig == nil {
			return fmt.Errorf("unknown id %q", tok[1:])
		}
		return appendStep(sig, now, scalarValue(tok[0]))
	case 'b', 'B':
		if len(fields) < 2 {
			return fmt.Errorf("vector change missing id: %q", tok)
		}
		sig := ids[fields[1]]
		if sig == nil {
			return fmt.Errorf("unknown id %q", fields[1])
		}
		v := 0.0
		for _, bit := range tok[1:] {
			v *= 2
			if bit == '1' {
				v++
			}
		}
		return appendStep(sig, now, v)
	case 'r', 'R':
		if len(fields) < 2 {
			return fmt.Errorf("real change missing id: %q", tok)
		}
		sig := ids[fields[1]]
		if sig == nil {
			return fmt.Errorf("unknown id %q", fields[1])
		}
		v, err := strconv.ParseFloat(tok[1:], 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("bad real value %q", tok)
		}
		return sig.Append(now, v)
	}
	return fmt.Errorf("unrecognised value change %q", tok)
}

func scalarValue(c byte) float64 {
	if c == '1' {
		return 1
	}
	return 0 // 0, x, z all resolve low
}

// appendStep records a digital change: the previous value is held right up
// to the change instant.
func appendStep(sig *trace.Signal, now, v float64) error {
	if n := len(sig.Points); n > 0 {
		last := sig.Points[n-1]
		if last.V != v && last.T < now {
			if err := sig.Append(now, last.V); err != nil {
				return err
			}
		}
	}
	return sig.Append(now, v)
}
