// Package vcd parses Value Change Dump files — the standard waveform
// output of Verilog/VHDL simulators (IEEE 1364 §18) — into the trace model,
// so specifications extracted from timing-diagram pictures can be checked
// directly against simulation runs (internal/monitor).
//
// The parser supports the common core of the format: the declaration
// section ($timescale, $scope/$upscope, $var for wire/reg/real/integer
// kinds, $enddefinitions), $dumpvars blocks, timestamps (#NNN), scalar
// value changes (0/1/x/z + id), vector changes (b1010 id) and real changes
// (r1.25 id). Multi-bit vectors are converted to their unsigned numeric
// value; x/z resolve to 0.
//
// Two entry points share one decode loop: Parse materializes a whole
// trace.Trace, while NewDecoder streams decoded samples to a Sink without
// retaining them — the form the incremental monitor consumes, so dump size
// does not bound memory.
package vcd

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"tdmagic/internal/trace"
)

// Parse reads a VCD document into a trace. Signal names are the
// dot-joined scope path plus the declared reference name.
func Parse(r io.Reader) (*trace.Trace, error) {
	tr := &trace.Trace{}
	if err := NewDecoder(r, &traceSink{tr: tr}).Run(); err != nil {
		return nil, err
	}
	return tr, nil
}

// traceSink materializes decoded samples into a trace.Trace. Distinct var
// ids declaring the same (scoped) name share one signal, and therefore one
// handle, matching the hold semantics of appending to a shared signal.
type traceSink struct {
	tr   *trace.Trace
	sigs []*trace.Signal
}

func (s *traceSink) Declare(name string, binary bool) int {
	sig := s.tr.Add(name)
	for i, have := range s.sigs {
		if have == sig {
			return i
		}
	}
	s.sigs = append(s.sigs, sig)
	return len(s.sigs) - 1
}

func (s *traceSink) Change(h int, t, v float64) error {
	return s.sigs[h].Append(t, v)
}

func contains(toks []string, want string) bool {
	for _, t := range toks {
		if t == want {
			return true
		}
	}
	return false
}

// parseTimescale converts tokens like ["1ns", "$end"] or ["10", "us",
// "$end"] into seconds per time unit. IEEE 1364 allows only magnitudes
// 1, 10 and 100.
func parseTimescale(toks []string) (float64, error) {
	joined := ""
	for _, t := range toks {
		if t == "$end" {
			break
		}
		joined += t
	}
	i := 0
	for i < len(joined) && (joined[i] >= '0' && joined[i] <= '9') {
		i++
	}
	if i == 0 {
		return 0, fmt.Errorf("bad timescale %q", joined)
	}
	mag, err := strconv.Atoi(joined[:i])
	if err != nil {
		return 0, err
	}
	if mag != 1 && mag != 10 && mag != 100 {
		return 0, fmt.Errorf("timescale magnitude %d not 1, 10 or 100", mag)
	}
	unit := strings.TrimSpace(joined[i:])
	mult, ok := map[string]float64{
		"s": 1, "ms": 1e-3, "us": 1e-6, "ns": 1e-9, "ps": 1e-12, "fs": 1e-15,
	}[unit]
	if !ok {
		return 0, fmt.Errorf("unknown timescale unit %q", unit)
	}
	return float64(mag) * mult, nil
}
