package vcd

import (
	"math"
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary documents to the VCD parser. The parser must
// never panic, and every trace it does accept must be well-formed:
// finite, monotonically timestamped samples only.
func FuzzParse(f *testing.F) {
	f.Add(sampleVCD)
	f.Add("$enddefinitions $end\n#0\n")
	f.Add("$timescale 1ns $end\n$var wire 1 ! clk $end\n$enddefinitions $end\n#0\n1!\n#5\n0!\n")
	f.Add("$scope module top $end\n$var real 64 % v $end\n$upscope $end\n$enddefinitions $end\n#0\nr1.25 %\n")
	f.Add("$var wire 8 # bus $end\n$enddefinitions $end\n#0\nb1010 #\n")
	f.Add("#NaN\n")
	f.Add("#-1\n")
	f.Add("#1e400\n")
	f.Add("$timescale 999999999999999999999 ns $end\n")
	// Non-monotone timestamps must be a parse error, not a late trace error.
	f.Add("$var wire 1 ! w $end\n$enddefinitions $end\n#10\n1!\n#5\n0!\n")
	// Vector changes may use only 0/1/x/z/X/Z bit characters.
	f.Add("$var reg 4 % bus $end\n$enddefinitions $end\n#0\nb2foo %\n")
	f.Add("$var reg 4 % bus $end\n$enddefinitions $end\n#0\nb1x0Z %\n")
	// IEEE 1364 restricts timescale magnitudes to 1/10/100.
	f.Add("$timescale 5ns $end\n$enddefinitions $end\n")
	f.Add("$timescale 100 us $end\n$var real 64 ! v $end\n$enddefinitions $end\n#0\nr0.5 !\n")
	f.Fuzz(func(t *testing.T, doc string) {
		tr, err := Parse(strings.NewReader(doc))
		if err != nil {
			return
		}
		for _, sig := range tr.Signals {
			last := math.Inf(-1)
			for _, p := range sig.Points {
				if math.IsNaN(p.T) || math.IsInf(p.T, 0) || math.IsNaN(p.V) || math.IsInf(p.V, 0) {
					t.Fatalf("accepted non-finite sample (%v, %v) in %q", p.T, p.V, sig.Name)
				}
				if p.T < last {
					t.Fatalf("accepted non-monotonic timestamps in %q: %v after %v", sig.Name, p.T, last)
				}
				last = p.T
			}
		}
	})
}
