package spo

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec parses the textual specification format produced by SpecText
// back into an SPO:
//
//	n1 = (V_{INA}, 1, riseStep, None)
//	n2 = (V_{OUTA}, 1, riseRamp, 90%)
//	e1 = (n1, t_{D(on)}, n2)
//
// Blank lines and lines starting with '#' are ignored. Node lines must
// precede the constraint lines that reference them.
func ParseSpec(text string) (*SPO, error) {
	p := &SPO{}
	nodeIdx := map[string]int{}
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, fields, err := splitSpecLine(line)
		if err != nil {
			return nil, fmt.Errorf("spo: line %d: %w", lineNo, err)
		}
		switch {
		case strings.HasPrefix(name, "n"):
			if len(fields) != 4 {
				return nil, fmt.Errorf("spo: line %d: node needs 4 fields, got %d", lineNo, len(fields))
			}
			ei, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("spo: line %d: edge index: %w", lineNo, err)
			}
			et, err := ParseEdgeType(fields[2])
			if err != nil {
				return nil, fmt.Errorf("spo: line %d: %w", lineNo, err)
			}
			if _, dup := nodeIdx[name]; dup {
				return nil, fmt.Errorf("spo: line %d: duplicate node %s", lineNo, name)
			}
			nodeIdx[name] = p.AddNode(Node{
				Signal: fields[0], EdgeIndex: ei, Type: et, Threshold: fields[3],
			})
		case strings.HasPrefix(name, "e"):
			if len(fields) != 3 {
				return nil, fmt.Errorf("spo: line %d: constraint needs 3 fields, got %d", lineNo, len(fields))
			}
			src, ok := nodeIdx[fields[0]]
			if !ok {
				return nil, fmt.Errorf("spo: line %d: unknown node %q", lineNo, fields[0])
			}
			dst, ok := nodeIdx[fields[2]]
			if !ok {
				return nil, fmt.Errorf("spo: line %d: unknown node %q", lineNo, fields[2])
			}
			if err := p.AddConstraint(src, dst, fields[1]); err != nil {
				return nil, fmt.Errorf("spo: line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("spo: line %d: expected nK or eK, got %q", lineNo, name)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// splitSpecLine decomposes `name = (a, b, c)` into the name and the comma-
// separated fields. Commas inside braces or parentheses (subscript markup,
// "t_{D(on)}") do not split.
func splitSpecLine(line string) (name string, fields []string, err error) {
	eq := strings.Index(line, "=")
	if eq < 0 {
		return "", nil, fmt.Errorf("missing '='")
	}
	name = strings.TrimSpace(line[:eq])
	rest := strings.TrimSpace(line[eq+1:])
	if len(rest) < 2 || rest[0] != '(' || rest[len(rest)-1] != ')' {
		return "", nil, fmt.Errorf("expected parenthesised tuple, got %q", rest)
	}
	body := rest[1 : len(rest)-1]
	depth := 0
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '(', '{':
			depth++
		case ')', '}':
			depth--
		case ',':
			if depth == 0 {
				fields = append(fields, strings.TrimSpace(body[start:i]))
				start = i + 1
			}
		}
	}
	fields = append(fields, strings.TrimSpace(body[start:]))
	if depth != 0 {
		return "", nil, fmt.Errorf("unbalanced brackets in %q", rest)
	}
	return name, fields, nil
}
