package spo

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSpecExample1(t *testing.T) {
	text := `
# paper Example 1
n1 = (V_{INA}, 1, riseStep, None)
n2 = (V_{OUTA}, 1, riseRamp, 90%)
n3 = (V_{INA}, 2, fallStep, None)
n4 = (V_{OUTA}, 2, fallRamp, 10%)
e1 = (n1, t_{D(on)}, n2)
e2 = (n3, t_{D(off)}, n4)
`
	p, err := ParseSpec(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Nodes) != 4 || len(p.Constraints) != 2 {
		t.Fatalf("parsed %d nodes, %d constraints", len(p.Nodes), len(p.Constraints))
	}
	want := example1(t)
	if !p.TotalEqual(want) {
		t.Errorf("parsed SPO differs:\n%s", p.SpecText())
	}
}

func TestParseSpecSubscriptCommas(t *testing.T) {
	// The delay label contains markup with parentheses; fields must not
	// split inside them.
	text := "n1 = (A, 1, riseStep, None)\nn2 = (B, 1, fallStep, None)\ne1 = (n1, t_{D(on)}, n2)\n"
	p, err := ParseSpec(text)
	if err != nil {
		t.Fatal(err)
	}
	if p.Constraints[0].Delay != "t_{D(on)}" {
		t.Errorf("delay = %q", p.Constraints[0].Delay)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		name, text string
	}{
		{"no equals", "n1 (A, 1, riseStep, None)"},
		{"no tuple", "n1 = A, 1, riseStep, None"},
		{"bad field count node", "n1 = (A, 1, riseStep)"},
		{"bad edge index", "n1 = (A, x, riseStep, None)"},
		{"bad edge type", "n1 = (A, 1, wiggle, None)"},
		{"duplicate node", "n1 = (A, 1, riseStep, None)\nn1 = (B, 1, riseStep, None)"},
		{"unknown src", "n1 = (A, 1, riseStep, None)\ne1 = (n9, t, n1)"},
		{"unknown dst", "n1 = (A, 1, riseStep, None)\ne1 = (n1, t, n9)"},
		{"bad name", "x1 = (A, 1, riseStep, None)"},
		{"bad constraint arity", "n1 = (A, 1, riseStep, None)\ne1 = (n1, n1)"},
		{"self loop", "n1 = (A, 1, riseStep, None)\ne1 = (n1, t, n1)"},
		{"unbalanced", "n1 = (A, 1, riseStep, None(}"},
		{"cycle", "n1 = (A, 1, riseStep, None)\nn2 = (B, 1, riseStep, None)\ne1 = (n1, t, n2)\ne2 = (n2, t, n1)"},
	}
	for _, c := range cases {
		if _, err := ParseSpec(c.text); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestSpecTextRoundtripProperty: SpecText followed by ParseSpec reproduces
// the SPO exactly on random DAGs.
func TestSpecTextRoundtripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomDAG(rng, 1+rng.Intn(8))
		// Give nodes realistic attributes.
		for i := range p.Nodes {
			p.Nodes[i].Signal = []string{"V_{INA}", "SCK", "X", "t_{odd}"}[rng.Intn(4)]
			if !p.Nodes[i].Type.IsStep() {
				p.Nodes[i].Threshold = []string{"90%", "50%", "10%"}[rng.Intn(3)]
			}
		}
		for i := range p.Constraints {
			p.Constraints[i].Delay = []string{"t_{D(on)}", "t_{s}", "6ns"}[rng.Intn(3)]
		}
		got, err := ParseSpec(p.SpecText())
		if err != nil {
			return false
		}
		return got.TotalEqual(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestParseSpecEmpty(t *testing.T) {
	p, err := ParseSpec("")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Nodes) != 0 {
		t.Error("empty text produced nodes")
	}
}

func TestSplitSpecLine(t *testing.T) {
	name, fields, err := splitSpecLine("e1 = (n1, t_{D(on)}, n2)")
	if err != nil || name != "e1" || len(fields) != 3 || fields[1] != "t_{D(on)}" {
		t.Errorf("split = %q %v %v", name, fields, err)
	}
	if !strings.HasPrefix(fields[0], "n") {
		t.Error("field order wrong")
	}
}
