package spo

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// example1 builds the SPO of the paper's Example 1 (Fig. 4 left).
func example1(t *testing.T) *SPO {
	t.Helper()
	p := &SPO{}
	n1 := p.AddNode(Node{Signal: "V_{INA}", EdgeIndex: 1, Type: RiseStep})
	n2 := p.AddNode(Node{Signal: "V_{OUTA}", EdgeIndex: 1, Type: RiseRamp, Threshold: "90%"})
	n3 := p.AddNode(Node{Signal: "V_{INA}", EdgeIndex: 2, Type: FallStep})
	n4 := p.AddNode(Node{Signal: "V_{OUTA}", EdgeIndex: 2, Type: FallRamp, Threshold: "10%"})
	if err := p.AddConstraint(n1, n2, "t_{D(on)}"); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint(n3, n4, "t_{D(off)}"); err != nil {
		t.Fatal(err)
	}
	return p
}

// example2 builds the SPO of the paper's Example 2 (Fig. 4 right).
func example2(t *testing.T) *SPO {
	t.Helper()
	p := &SPO{}
	n1 := p.AddNode(Node{Signal: "SI", EdgeIndex: 1, Type: Double, Threshold: "50%"})
	n2 := p.AddNode(Node{Signal: "SCK", EdgeIndex: 1, Type: RiseRamp, Threshold: "50%"})
	n3 := p.AddNode(Node{Signal: "SI", EdgeIndex: 2, Type: Double, Threshold: "50%"})
	if err := p.AddConstraint(n1, n2, "t_{s}"); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint(n2, n3, "t_{h}"); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEdgeTypeStrings(t *testing.T) {
	cases := []struct {
		et          EdgeType
		long, short string
	}{
		{RiseStep, "riseStep", "rS"},
		{FallStep, "fallStep", "fS"},
		{RiseRamp, "riseRamp", "rR"},
		{FallRamp, "fallRamp", "fR"},
		{Double, "double", "dbl"},
	}
	for _, c := range cases {
		if c.et.String() != c.long || c.et.Short() != c.short {
			t.Errorf("%v: %q/%q", c.et, c.et.String(), c.et.Short())
		}
		if got, err := ParseEdgeType(c.long); err != nil || got != c.et {
			t.Errorf("ParseEdgeType(%q) = %v, %v", c.long, got, err)
		}
		if got, err := ParseEdgeType(c.short); err != nil || got != c.et {
			t.Errorf("ParseEdgeType(%q) = %v, %v", c.short, got, err)
		}
	}
	if _, err := ParseEdgeType("bogus"); err == nil {
		t.Error("bogus edge type parsed")
	}
	if !strings.Contains(EdgeType(99).String(), "99") || EdgeType(99).Short() != "?" {
		t.Error("unknown edge type formatting")
	}
}

func TestEdgeTypePredicates(t *testing.T) {
	if !RiseStep.IsRise() || !RiseRamp.IsRise() || FallStep.IsRise() || Double.IsRise() {
		t.Error("IsRise wrong")
	}
	if !RiseStep.IsStep() || !FallStep.IsStep() || RiseRamp.IsStep() || Double.IsStep() {
		t.Error("IsStep wrong")
	}
}

func TestNodeString(t *testing.T) {
	n := Node{Signal: "X", EdgeIndex: 1, Type: RiseStep}
	if got := n.String(); got != "(X, 1, riseStep, None)" {
		t.Errorf("Node.String = %q", got)
	}
	n2 := Node{Signal: "Y", EdgeIndex: 2, Type: FallRamp, Threshold: "10%"}
	if got := n2.String(); got != "(Y, 2, fallRamp, 10%)" {
		t.Errorf("Node.String = %q", got)
	}
}

func TestAddNodeDefaultsThreshold(t *testing.T) {
	p := &SPO{}
	i := p.AddNode(Node{Signal: "X", EdgeIndex: 1, Type: RiseStep})
	if p.Nodes[i].Threshold != NoThreshold {
		t.Error("empty threshold not defaulted")
	}
}

func TestAddConstraintRange(t *testing.T) {
	p := &SPO{}
	p.AddNode(Node{Signal: "X", EdgeIndex: 1, Type: RiseStep})
	if err := p.AddConstraint(0, 1, "t"); err == nil {
		t.Error("out-of-range dst accepted")
	}
	if err := p.AddConstraint(-1, 0, "t"); err == nil {
		t.Error("negative src accepted")
	}
}

func TestValidateExamples(t *testing.T) {
	for _, p := range []*SPO{example1(t), example2(t)} {
		if err := p.Validate(); err != nil {
			t.Errorf("valid SPO rejected: %v", err)
		}
	}
}

func TestValidateSelfLoop(t *testing.T) {
	p := &SPO{}
	p.AddNode(Node{Signal: "X", EdgeIndex: 1, Type: RiseStep})
	p.Constraints = append(p.Constraints, Constraint{Src: 0, Dst: 0, Delay: "t"})
	if err := p.Validate(); err == nil {
		t.Error("self-loop accepted")
	}
}

func TestValidateCycle(t *testing.T) {
	p := &SPO{}
	a := p.AddNode(Node{Signal: "X", EdgeIndex: 1, Type: RiseStep})
	b := p.AddNode(Node{Signal: "X", EdgeIndex: 2, Type: FallStep})
	c := p.AddNode(Node{Signal: "Y", EdgeIndex: 1, Type: RiseStep})
	_ = p.AddConstraint(a, b, "t1")
	_ = p.AddConstraint(b, c, "t2")
	_ = p.AddConstraint(c, a, "t3")
	err := p.Validate()
	if !errors.Is(err, ErrCyclic) {
		t.Errorf("cycle not detected: %v", err)
	}
}

func TestValidateOutOfRangeConstraint(t *testing.T) {
	p := &SPO{}
	p.AddNode(Node{Signal: "X", EdgeIndex: 1, Type: RiseStep})
	p.Constraints = append(p.Constraints, Constraint{Src: 0, Dst: 7, Delay: "t"})
	if err := p.Validate(); err == nil {
		t.Error("dangling constraint accepted")
	}
}

func TestTopoOrder(t *testing.T) {
	p := example2(t)
	order, err := p.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	for _, c := range p.Constraints {
		if pos[c.Src] >= pos[c.Dst] {
			t.Errorf("topo order violates constraint %+v", c)
		}
	}
}

func TestTopoOrderIncludesIsolated(t *testing.T) {
	p := &SPO{}
	p.AddNode(Node{Signal: "X", EdgeIndex: 1, Type: RiseStep})
	p.AddNode(Node{Signal: "X", EdgeIndex: 2, Type: FallStep})
	order, err := p.TopoOrder()
	if err != nil || len(order) != 2 {
		t.Errorf("order = %v, err = %v", order, err)
	}
}

func TestLess(t *testing.T) {
	p := example2(t) // n0 -> n1 -> n2
	if !p.Less(0, 1) || !p.Less(1, 2) {
		t.Error("direct constraints not ordered")
	}
	if !p.Less(0, 2) {
		t.Error("transitivity broken")
	}
	if p.Less(2, 0) || p.Less(1, 0) {
		t.Error("asymmetry broken")
	}
	if p.Less(0, 0) {
		t.Error("irreflexivity broken")
	}
	if p.Less(-1, 0) || p.Less(0, 99) {
		t.Error("out-of-range Less true")
	}
	if !p.Comparable(0, 2) {
		t.Error("comparable pair not detected")
	}
	q := example1(t) // two disjoint chains
	if q.Comparable(0, 2) {
		t.Error("events in parallel chains comparable")
	}
}

func TestSpecTextExample1(t *testing.T) {
	got := example1(t).SpecText()
	want := "n1 = (V_{INA}, 1, riseStep, None)\n" +
		"n2 = (V_{OUTA}, 1, riseRamp, 90%)\n" +
		"n3 = (V_{INA}, 2, fallStep, None)\n" +
		"n4 = (V_{OUTA}, 2, fallRamp, 10%)\n" +
		"e1 = (n1, t_{D(on)}, n2)\n" +
		"e2 = (n3, t_{D(off)}, n4)\n"
	if got != want {
		t.Errorf("SpecText:\n%s\nwant:\n%s", got, want)
	}
}

func TestSpecTextDFSOrder(t *testing.T) {
	// Chain with a branch: n0 -> n1, n0 -> n2, n1 -> n3.
	// DFS from n0 should emit (n0,n1), (n1,n3), (n0,n2).
	p := &SPO{}
	for i := 0; i < 4; i++ {
		p.AddNode(Node{Signal: "S", EdgeIndex: i + 1, Type: RiseStep})
	}
	_ = p.AddConstraint(0, 1, "a")
	_ = p.AddConstraint(0, 2, "b")
	_ = p.AddConstraint(1, 3, "c")
	text := p.SpecText()
	ia := strings.Index(text, "e1 = (n1, a, n2)")
	ib := strings.Index(text, "e2 = (n2, c, n4)")
	ic := strings.Index(text, "e3 = (n1, b, n3)")
	if ia < 0 || ib < 0 || ic < 0 || !(ia < ib && ib < ic) {
		t.Errorf("DFS constraint order wrong:\n%s", text)
	}
}

func TestDOT(t *testing.T) {
	d := example2(t).DOT("D")
	for _, want := range []string{"digraph", "n1 -> n2", "t_{s}", "n2 -> n3", "SCK"} {
		if !strings.Contains(d, want) {
			t.Errorf("DOT missing %q:\n%s", want, d)
		}
	}
}

func TestClone(t *testing.T) {
	p := example1(t)
	q := p.Clone()
	q.Nodes[0].Signal = "MUTATED"
	q.Constraints[0].Delay = "MUTATED"
	if p.Nodes[0].Signal == "MUTATED" || p.Constraints[0].Delay == "MUTATED" {
		t.Error("Clone shares storage")
	}
}

func TestTemplateAndTotalEqual(t *testing.T) {
	p := example1(t)
	q := example1(t)
	if !p.TemplateEqual(q) || !q.TemplateEqual(p) {
		t.Error("identical SPOs not template-equal")
	}
	if !p.TotalEqual(q) {
		t.Error("identical SPOs not total-equal")
	}

	// OCR mistake only (paper: structurally correct, textually wrong):
	// threshold misread as 100%.
	r := example1(t)
	r.Nodes[3].Threshold = "100%"
	if !p.TemplateEqual(r) {
		t.Error("text mistake should preserve template equality")
	}
	if p.TotalEqual(r) {
		t.Error("text mistake should break total equality")
	}

	// Structural mistake: missing constraint.
	s := example1(t)
	s.Constraints = s.Constraints[:1]
	if p.TemplateEqual(s) {
		t.Error("missing constraint should break template equality")
	}

	// Structural mistake: wrong edge type.
	u := example1(t)
	u.Nodes[1].Type = RiseStep
	if p.TemplateEqual(u) {
		t.Error("edge-type mistake should break template equality")
	}

	// Wrong delay label only.
	v := example1(t)
	v.Constraints[0].Delay = "t_{X}"
	if !p.TemplateEqual(v) || p.TotalEqual(v) {
		t.Error("delay-label mistake handling wrong")
	}
}

func TestConstraintRecall(t *testing.T) {
	truth := example1(t)
	if got := truth.ConstraintRecall(truth); got != 1 {
		t.Errorf("self recall = %v", got)
	}
	partial := example1(t)
	partial.Constraints = partial.Constraints[:1]
	if got := partial.ConstraintRecall(truth); got != 0.5 {
		t.Errorf("partial recall = %v", got)
	}
	empty := &SPO{}
	if got := empty.ConstraintRecall(truth); got != 0 {
		t.Errorf("empty recall = %v", got)
	}
	if got := empty.ConstraintRecall(&SPO{}); got != 1 {
		t.Errorf("empty-truth recall = %v", got)
	}
}

// randomDAG builds a random DAG whose edges always go from a lower to a
// higher node index, which guarantees acyclicity.
func randomDAG(rng *rand.Rand, n int) *SPO {
	p := &SPO{}
	for i := 0; i < n; i++ {
		p.AddNode(Node{Signal: "S", EdgeIndex: i + 1, Type: EdgeType(rng.Intn(NumEdgeTypes))})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(3) == 0 {
				_ = p.AddConstraint(i, j, "t")
			}
		}
	}
	return p
}

// TestSPOPropertyStrictPartialOrder checks Definition 1 on random DAGs:
// Less is irreflexive, asymmetric and transitive.
func TestSPOPropertyStrictPartialOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomDAG(rng, 2+rng.Intn(7))
		if p.Validate() != nil {
			return false
		}
		n := len(p.Nodes)
		for i := 0; i < n; i++ {
			if p.Less(i, i) {
				return false // irreflexivity
			}
			for j := 0; j < n; j++ {
				if p.Less(i, j) && p.Less(j, i) {
					return false // asymmetry
				}
				for k := 0; k < n; k++ {
					if p.Less(i, j) && p.Less(j, k) && !p.Less(i, k) {
						return false // transitivity
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestTopoOrderProperty checks that topological order respects every
// constraint on random DAGs.
func TestTopoOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomDAG(rng, 2+rng.Intn(8))
		order, err := p.TopoOrder()
		if err != nil || len(order) != len(p.Nodes) {
			return false
		}
		pos := make([]int, len(order))
		for i, v := range order {
			pos[v] = i
		}
		for _, c := range p.Constraints {
			if pos[c.Src] >= pos[c.Dst] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestEqualityProperty: TemplateEqual and TotalEqual are reflexive and
// symmetric on random SPOs, and TotalEqual implies TemplateEqual.
func TestEqualityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomDAG(rng, 1+rng.Intn(6))
		q := randomDAG(rng, 1+rng.Intn(6))
		if !p.TemplateEqual(p) || !p.TotalEqual(p) {
			return false
		}
		if p.TemplateEqual(q) != q.TemplateEqual(p) {
			return false
		}
		if p.TotalEqual(q) && !p.TemplateEqual(q) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
