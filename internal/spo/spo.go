// Package spo implements the formal-specification core of TD-Magic: the
// strict partial order (SPO) over timing-diagram events from Definition 1 of
// the paper.
//
// A node n = (sn, ei, et, th) is an event: the signal name sn, the index ei
// of the edge within that signal, the edge type et, and the threshold th at
// which the event fires ("None" for step edges). Nodes are indexed by their
// global left-to-right occurrence in the diagram. An edge e = (src, td, dst)
// is a timing constraint: the delay td separates the source and destination
// events. The SPO is the transitive closure of the edge relation; it is a
// valid strict partial order exactly when the constraint graph is a DAG with
// no self-loops.
package spo

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// EdgeType classifies a signal edge (paper Sec. III).
type EdgeType int

// The five edge types of the paper: step edges on digital signals, ramp
// edges on analog signals, and the double (ramp-up-then-down crossing) edge.
const (
	RiseStep EdgeType = iota
	FallStep
	RiseRamp
	FallRamp
	Double
	NumEdgeTypes = 5
)

// String returns the paper's long form (riseStep, fallStep, ...).
func (t EdgeType) String() string {
	switch t {
	case RiseStep:
		return "riseStep"
	case FallStep:
		return "fallStep"
	case RiseRamp:
		return "riseRamp"
	case FallRamp:
		return "fallRamp"
	case Double:
		return "double"
	default:
		return fmt.Sprintf("EdgeType(%d)", int(t))
	}
}

// Short returns the paper's Sec. VI abbreviation (rS, fS, rR, fR, dbl).
func (t EdgeType) Short() string {
	switch t {
	case RiseStep:
		return "rS"
	case FallStep:
		return "fS"
	case RiseRamp:
		return "rR"
	case FallRamp:
		return "fR"
	case Double:
		return "dbl"
	default:
		return "?"
	}
}

// ParseEdgeType converts a long or short edge-type name back to the enum.
func ParseEdgeType(s string) (EdgeType, error) {
	switch s {
	case "riseStep", "rS":
		return RiseStep, nil
	case "fallStep", "fS":
		return FallStep, nil
	case "riseRamp", "rR":
		return RiseRamp, nil
	case "fallRamp", "fR":
		return FallRamp, nil
	case "double", "dbl":
		return Double, nil
	}
	return 0, fmt.Errorf("spo: unknown edge type %q", s)
}

// IsRise reports whether the edge increases the signal value.
func (t EdgeType) IsRise() bool { return t == RiseStep || t == RiseRamp }

// IsStep reports whether the edge is instantaneous (digital).
func (t EdgeType) IsStep() bool { return t == RiseStep || t == FallStep }

// NoThreshold is the threshold value of step-edge events.
const NoThreshold = "None"

// Node is an SPO event.
type Node struct {
	Signal    string   // signal name (sn)
	EdgeIndex int      // 1-based index of the edge within its signal (ei)
	Type      EdgeType // edge type (et)
	Threshold string   // crossing threshold, e.g. "90%"; NoThreshold for steps
}

func (n Node) String() string {
	th := n.Threshold
	if th == "" {
		th = NoThreshold
	}
	return fmt.Sprintf("(%s, %d, %s, %s)", n.Signal, n.EdgeIndex, n.Type, th)
}

// Constraint is a timing-annotated order edge between two events, referred
// to by their global node indices.
type Constraint struct {
	Src   int    // index into SPO.Nodes
	Dst   int    // index into SPO.Nodes
	Delay string // timing parameter, e.g. "t_{D(on)}"
}

// NodeProv ties one SPO node back to the detector evidence it was read
// from: indices into the translation report's detection lists (SED edge
// boxes, LAD vertical/horizontal contours, OCR texts). -1 means no
// evidence of that kind contributed — e.g. a node whose vertical line
// carried no edge box. The indices resolve to pixel rectangles through
// core.ResolveProvenance, which is what lets a consumer highlight, for
// any event in the formal specification, the exact ink that produced it.
type NodeProv struct {
	// EdgeBox indexes the SED detection list (the event's edge box).
	EdgeBox int `json:"edge_box"`
	// VLine indexes the LAD vertical contours (the event annotation line).
	VLine int `json:"vline"`
	// HLine indexes the LAD horizontal contours (the threshold line FINDHLINE
	// matched; -1 for step events, which use the box centre).
	HLine int `json:"hline"`
	// NameText indexes the OCR results (the signal-name text).
	NameText int `json:"name_text"`
	// ThresholdText indexes the OCR results (the threshold-value text).
	ThresholdText int `json:"threshold_text"`
}

// ConstraintProv ties one timing constraint back to its evidence: the
// arrow shaft contour(s), the two vertical lines it measures between,
// and the delay-label text. Same index/-1 conventions as NodeProv.
type ConstraintProv struct {
	// SrcVLine / DstVLine index the LAD vertical contours anchoring the
	// arrow's endpoints (source = left).
	SrcVLine int `json:"src_vline"`
	DstVLine int `json:"dst_vline"`
	// HLines indexes the LAD horizontal contours forming the shaft — one
	// entry for a plain arrow, two for the outward-arrow idiom.
	HLines []int `json:"hlines,omitempty"`
	// LabelText indexes the OCR results (the timing-parameter text).
	LabelText int `json:"label_text"`
}

// SPO is a strict partial order over timing-diagram events, represented as
// the DAG of its covering timing constraints. Nodes are ordered by global
// left-to-right occurrence in the diagram.
//
// The provenance slices, when present, run parallel to Nodes and
// Constraints (NodeProv[i] is node i's evidence). They are populated by
// the SEI interpreter; specifications built by hand or parsed from text
// have none. Structural and textual equality (TemplateEqual, TotalEqual)
// deliberately ignore provenance — where a fact was read from does not
// change the fact.
type SPO struct {
	Nodes       []Node
	Constraints []Constraint

	NodeProv       []NodeProv       `json:"node_prov,omitempty"`
	ConstraintProv []ConstraintProv `json:"constraint_prov,omitempty"`
}

// AddNode appends an event and returns its index.
func (p *SPO) AddNode(n Node) int {
	if n.Threshold == "" {
		n.Threshold = NoThreshold
	}
	p.Nodes = append(p.Nodes, n)
	return len(p.Nodes) - 1
}

// AddConstraint appends a timing constraint between existing nodes.
func (p *SPO) AddConstraint(src, dst int, delay string) error {
	if src < 0 || src >= len(p.Nodes) || dst < 0 || dst >= len(p.Nodes) {
		return fmt.Errorf("spo: constraint (%d,%d) references missing node", src, dst)
	}
	p.Constraints = append(p.Constraints, Constraint{Src: src, Dst: dst, Delay: delay})
	return nil
}

// Validate checks that the constraint graph induces a strict partial order:
// node references are in range, there are no self-loops (irreflexivity) and
// no cycles (which guarantees asymmetry and a consistent transitive
// closure).
func (p *SPO) Validate() error {
	for _, c := range p.Constraints {
		if c.Src < 0 || c.Src >= len(p.Nodes) || c.Dst < 0 || c.Dst >= len(p.Nodes) {
			return fmt.Errorf("spo: constraint references node out of range: %+v", c)
		}
		if c.Src == c.Dst {
			return fmt.Errorf("spo: self-loop on node %d violates irreflexivity", c.Src)
		}
	}
	if _, err := p.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// ErrCyclic is returned when the constraint graph contains a cycle.
var ErrCyclic = errors.New("spo: constraint graph is cyclic")

// TopoOrder returns a topological order of the nodes (isolated nodes
// included, ties broken by node index) or ErrCyclic.
func (p *SPO) TopoOrder() ([]int, error) {
	n := len(p.Nodes)
	indeg := make([]int, n)
	adj := make([][]int, n)
	for _, c := range p.Constraints {
		if c.Src < 0 || c.Src >= n || c.Dst < 0 || c.Dst >= n {
			return nil, fmt.Errorf("spo: constraint out of range: %+v", c)
		}
		adj[c.Src] = append(adj[c.Src], c.Dst)
		indeg[c.Dst]++
	}
	// Min-index-first queue for determinism.
	var queue []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	var order []int
	for len(queue) > 0 {
		sort.Ints(queue)
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCyclic
	}
	return order, nil
}

// Less reports whether event i precedes event j in the strict partial order,
// i.e. whether j is reachable from i through one or more constraints.
func (p *SPO) Less(i, j int) bool {
	if i == j || i < 0 || j < 0 || i >= len(p.Nodes) || j >= len(p.Nodes) {
		return false
	}
	adj := make([][]int, len(p.Nodes))
	for _, c := range p.Constraints {
		adj[c.Src] = append(adj[c.Src], c.Dst)
	}
	seen := make([]bool, len(p.Nodes))
	stack := []int{i}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if w == j {
				return true
			}
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false
}

// Comparable reports whether events i and j are ordered either way.
func (p *SPO) Comparable(i, j int) bool { return p.Less(i, j) || p.Less(j, i) }

// SpecText renders the SPO in the paper's textual style (Example 1/2):
// one "nK = (...)" line per node followed by one "eK = (nI, td, nJ)" line
// per constraint, constraints listed in DFS order from the sources of the
// DAG (the paper: "the formal specification of a TD can be extracted through
// a depth-first search from its DAG").
func (p *SPO) SpecText() string {
	var b strings.Builder
	for i, n := range p.Nodes {
		fmt.Fprintf(&b, "n%d = %s\n", i+1, n)
	}
	for k, c := range p.dfsConstraints() {
		fmt.Fprintf(&b, "e%d = (n%d, %s, n%d)\n", k+1, c.Src+1, c.Delay, c.Dst+1)
	}
	return b.String()
}

// dfsConstraints orders constraints by a depth-first search from the roots.
func (p *SPO) dfsConstraints() []Constraint {
	n := len(p.Nodes)
	out := make([][]Constraint, n)
	indeg := make([]int, n)
	for _, c := range p.Constraints {
		if c.Src < 0 || c.Src >= n || c.Dst < 0 || c.Dst >= n {
			continue
		}
		out[c.Src] = append(out[c.Src], c)
		indeg[c.Dst]++
	}
	for i := range out {
		sort.Slice(out[i], func(a, b int) bool { return out[i][a].Dst < out[i][b].Dst })
	}
	var order []Constraint
	visited := make(map[Constraint]bool, len(p.Constraints))
	var dfs func(v int)
	dfs = func(v int) {
		for _, c := range out[v] {
			if visited[c] {
				continue
			}
			visited[c] = true
			order = append(order, c)
			dfs(c.Dst)
		}
	}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			dfs(i)
		}
	}
	// Any constraints unreachable from a root (possible only in cyclic
	// graphs) are appended in declaration order.
	for _, c := range p.Constraints {
		if !visited[c] {
			visited[c] = true
			order = append(order, c)
		}
	}
	return order
}

// DOT renders the SPO as a Graphviz digraph (Fig. 3 of the paper).
func (p *SPO) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", name)
	for i, n := range p.Nodes {
		fmt.Fprintf(&b, "  n%d [label=\"%s\"];\n", i+1, n)
	}
	for _, c := range p.Constraints {
		fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", c.Src+1, c.Dst+1, c.Delay)
	}
	b.WriteString("}\n")
	return b.String()
}

// Clone returns a deep copy of p, provenance included.
func (p *SPO) Clone() *SPO {
	q := &SPO{
		Nodes:       append([]Node(nil), p.Nodes...),
		Constraints: append([]Constraint(nil), p.Constraints...),
		NodeProv:    append([]NodeProv(nil), p.NodeProv...),
	}
	if p.ConstraintProv != nil {
		q.ConstraintProv = make([]ConstraintProv, len(p.ConstraintProv))
		for i, cp := range p.ConstraintProv {
			cp.HLines = append([]int(nil), cp.HLines...)
			q.ConstraintProv[i] = cp
		}
	}
	return q
}

// normalizedConstraints returns the constraint set sorted for comparison.
func (p *SPO) normalizedConstraints() []Constraint {
	cs := append([]Constraint(nil), p.Constraints...)
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Src != cs[j].Src {
			return cs[i].Src < cs[j].Src
		}
		if cs[i].Dst != cs[j].Dst {
			return cs[i].Dst < cs[j].Dst
		}
		return cs[i].Delay < cs[j].Delay
	})
	return cs
}

// TemplateEqual reports whether p and q agree at the paper's "template
// level": same events in the same global order with the same edge types and
// edge indices, and the same constraint structure — ignoring all recognised
// text (signal names, thresholds, delay labels). This is the 76.7% metric of
// Sec. VI.3.
func (p *SPO) TemplateEqual(q *SPO) bool {
	if len(p.Nodes) != len(q.Nodes) || len(p.Constraints) != len(q.Constraints) {
		return false
	}
	for i := range p.Nodes {
		if p.Nodes[i].Type != q.Nodes[i].Type || p.Nodes[i].EdgeIndex != q.Nodes[i].EdgeIndex {
			return false
		}
	}
	pc, qc := p.normalizedConstraints(), q.normalizedConstraints()
	for i := range pc {
		if pc[i].Src != qc[i].Src || pc[i].Dst != qc[i].Dst {
			return false
		}
	}
	return true
}

// TotalEqual reports whether p and q agree at both the structural and
// textual level: TemplateEqual plus equal signal names, thresholds, and
// delay labels. This is the 50.0% metric of Sec. VI.3.
func (p *SPO) TotalEqual(q *SPO) bool {
	if !p.TemplateEqual(q) {
		return false
	}
	for i := range p.Nodes {
		if p.Nodes[i].Signal != q.Nodes[i].Signal || p.Nodes[i].Threshold != q.Nodes[i].Threshold {
			return false
		}
	}
	pc, qc := p.normalizedConstraints(), q.normalizedConstraints()
	for i := range pc {
		if pc[i].Delay != qc[i].Delay {
			return false
		}
	}
	return true
}

// ConstraintRecall returns the fraction of q's constraints that appear in p
// structurally (by src/dst index), a partial-credit score for the "partially
// extract their SPOs" cases of Sec. VI.3. q is the ground truth.
func (p *SPO) ConstraintRecall(q *SPO) float64 {
	if len(q.Constraints) == 0 {
		return 1
	}
	type key struct{ s, d int }
	have := map[key]int{}
	for _, c := range p.Constraints {
		have[key{c.Src, c.Dst}]++
	}
	hit := 0
	for _, c := range q.Constraints {
		k := key{c.Src, c.Dst}
		if have[k] > 0 {
			have[k]--
			hit++
		}
	}
	return float64(hit) / float64(len(q.Constraints))
}
