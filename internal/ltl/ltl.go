// Package ltl exports SPO specifications to a metric-temporal-logic style
// textual formula, bridging TD-Magic's output to the model-checking
// tool-chains the paper's related work translates timing diagrams into
// (e.g. Amla, Emerson & Namjoshi's decompositional model checking over
// regular timing diagrams).
//
// Each timing constraint e = (src, td, dst) becomes a bounded-response
// conjunct: globally, whenever the source event fires, the destination
// event fires within td's bounds. Without bounds the response is only
// ordered (eventually).
package ltl

import (
	"fmt"
	"strings"

	"tdmagic/internal/monitor"
	"tdmagic/internal/spo"
)

// Atom renders the atomic proposition of an SPO event.
func Atom(n spo.Node) string {
	sig := sanitize(n.Signal)
	switch {
	case n.Type == spo.RiseStep:
		return fmt.Sprintf("rise(%s,%d)", sig, n.EdgeIndex)
	case n.Type == spo.FallStep:
		return fmt.Sprintf("fall(%s,%d)", sig, n.EdgeIndex)
	default:
		th := n.Threshold
		if th == "" || th == spo.NoThreshold {
			th = "50%"
		}
		dir := "up"
		if n.Type == spo.FallRamp {
			dir = "down"
		}
		if n.Type == spo.Double {
			dir = "x"
		}
		return fmt.Sprintf("cross_%s(%s,%d,%s)", dir, sig, n.EdgeIndex, th)
	}
}

// sanitize strips rich markup from a signal name for use in an identifier.
func sanitize(s string) string {
	r := strings.NewReplacer("_{", "", "}", "", " ", "_")
	return r.Replace(s)
}

// Formula renders the whole SPO as a conjunction of bounded-response
// properties. delays supplies the interval of each timing parameter; a
// missing entry yields an unbounded eventually.
func Formula(p *spo.SPO, delays map[string]monitor.Bounds) (string, error) {
	if err := p.Validate(); err != nil {
		return "", fmt.Errorf("ltl: invalid SPO: %w", err)
	}
	if len(p.Constraints) == 0 {
		return "true", nil
	}
	var parts []string
	for _, c := range p.Constraints {
		src := Atom(p.Nodes[c.Src])
		dst := Atom(p.Nodes[c.Dst])
		interval := "(0,inf)"
		if b, ok := delays[c.Delay]; ok {
			if b.Max > 0 {
				interval = fmt.Sprintf("[%g,%g]", b.Min, b.Max)
			} else {
				interval = fmt.Sprintf("[%g,inf)", b.Min)
			}
		}
		parts = append(parts, fmt.Sprintf("G( %s -> F_%s %s )", src, interval, dst))
	}
	return strings.Join(parts, "\n& "), nil
}
