package ltl

import (
	"strings"
	"testing"

	"tdmagic/internal/monitor"
	"tdmagic/internal/spo"
)

func TestAtom(t *testing.T) {
	cases := []struct {
		n    spo.Node
		want string
	}{
		{spo.Node{Signal: "V_{INA}", EdgeIndex: 1, Type: spo.RiseStep}, "rise(VINA,1)"},
		{spo.Node{Signal: "X", EdgeIndex: 2, Type: spo.FallStep}, "fall(X,2)"},
		{spo.Node{Signal: "Y", EdgeIndex: 1, Type: spo.RiseRamp, Threshold: "90%"}, "cross_up(Y,1,90%)"},
		{spo.Node{Signal: "Y", EdgeIndex: 2, Type: spo.FallRamp, Threshold: "10%"}, "cross_down(Y,2,10%)"},
		{spo.Node{Signal: "SI", EdgeIndex: 1, Type: spo.Double, Threshold: "50%"}, "cross_x(SI,1,50%)"},
		{spo.Node{Signal: "Z", EdgeIndex: 1, Type: spo.RiseRamp}, "cross_up(Z,1,50%)"},
	}
	for _, c := range cases {
		if got := Atom(c.n); got != c.want {
			t.Errorf("Atom(%v) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestFormulaExample2(t *testing.T) {
	p := &spo.SPO{}
	n1 := p.AddNode(spo.Node{Signal: "SI", EdgeIndex: 1, Type: spo.Double, Threshold: "50%"})
	n2 := p.AddNode(spo.Node{Signal: "SCK", EdgeIndex: 1, Type: spo.RiseRamp, Threshold: "50%"})
	n3 := p.AddNode(spo.Node{Signal: "SI", EdgeIndex: 2, Type: spo.Double, Threshold: "50%"})
	_ = p.AddConstraint(n1, n2, "t_{s}")
	_ = p.AddConstraint(n2, n3, "t_{h}")
	got, err := Formula(p, map[string]monitor.Bounds{
		"t_{s}": {Min: 1, Max: 5},
		"t_{h}": {Min: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"G( cross_x(SI,1,50%) -> F_[1,5] cross_up(SCK,1,50%) )",
		"G( cross_up(SCK,1,50%) -> F_[2,inf) cross_x(SI,2,50%) )",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("formula missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(got, "\n& ") {
		t.Error("conjuncts not joined")
	}
}

func TestFormulaNoBounds(t *testing.T) {
	p := &spo.SPO{}
	a := p.AddNode(spo.Node{Signal: "A", EdgeIndex: 1, Type: spo.RiseStep})
	b := p.AddNode(spo.Node{Signal: "B", EdgeIndex: 1, Type: spo.RiseStep})
	_ = p.AddConstraint(a, b, "t")
	got, err := Formula(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "F_(0,inf)") {
		t.Errorf("unbounded response missing: %s", got)
	}
}

func TestFormulaEmpty(t *testing.T) {
	got, err := Formula(&spo.SPO{}, nil)
	if err != nil || got != "true" {
		t.Errorf("empty formula = %q, %v", got, err)
	}
}

func TestFormulaInvalid(t *testing.T) {
	p := &spo.SPO{}
	a := p.AddNode(spo.Node{Signal: "A", EdgeIndex: 1, Type: spo.RiseStep})
	p.Constraints = append(p.Constraints, spo.Constraint{Src: a, Dst: a})
	if _, err := Formula(p, nil); err == nil {
		t.Error("invalid SPO accepted")
	}
}
