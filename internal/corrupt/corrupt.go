// Package corrupt provides deterministic, seeded image-degradation
// operators for robustness evaluation, ImageNet-C style. Each operator
// is a pure function of (image, severity, seed): it never mutates its
// input, severity 1–5 scales the damage, and the same arguments always
// produce the same output, so corrupted corpora are exactly reproducible.
//
// The operators model the industrial error sources of paper Sec. VI.3:
// scanner speckle (SaltPepper), defocused or low-resolution capture
// (GaussianBlur, Alias), weak toner (ContrastFade), slightly rotated
// sheets (Skew), sensor-line dropout (ScanlineDropout) and over-tight
// cropping that chops the annotation margins (MarginCrop).
package corrupt

import (
	"math"
	"math/rand"

	"tdmagic/internal/geom"
	"tdmagic/internal/imgproc"
)

// MaxSeverity is the strongest supported degradation level.
const MaxSeverity = 5

// Func is a pure degradation operator. Severity <= 0 returns an
// unmodified copy; severities above MaxSeverity clamp.
type Func func(g *imgproc.Gray, severity int, seed int64) *imgproc.Gray

// Op is a named operator plus the geometric transform it applies, so
// evaluation code can keep ground-truth annotations aligned.
type Op struct {
	Name string
	Fn   Func
	// Offset reports the translation (dx, dy) the op applies to picture
	// content at the given severity, for ground-truth realignment. All
	// ops except MarginCrop leave content in place.
	Offset func(severity, w, h int) (dx, dy int)
}

// noOffset is the identity transform shared by the in-place operators.
func noOffset(int, int, int) (int, int) { return 0, 0 }

// Ops returns the operator registry in a fixed, documented order.
func Ops() []Op {
	return []Op{
		{Name: "saltpepper", Fn: SaltPepper, Offset: noOffset},
		{Name: "blur", Fn: GaussianBlur, Offset: noOffset},
		{Name: "contrast", Fn: ContrastFade, Offset: noOffset},
		{Name: "skew", Fn: Skew, Offset: noOffset},
		{Name: "scanline", Fn: ScanlineDropout, Offset: noOffset},
		{Name: "alias", Fn: Alias, Offset: noOffset},
		{Name: "crop", Fn: MarginCrop, Offset: cropOffset},
	}
}

// ByName returns the named operator from the registry.
func ByName(name string) (Op, bool) {
	for _, op := range Ops() {
		if op.Name == name {
			return op, true
		}
	}
	return Op{}, false
}

// clampSeverity normalises a severity to [0, MaxSeverity].
func clampSeverity(s int) int {
	if s < 0 {
		return 0
	}
	if s > MaxSeverity {
		return MaxSeverity
	}
	return s
}

// level picks the per-severity parameter; severity is 1-based.
func level(params [MaxSeverity]float64, severity int) float64 {
	return params[clampSeverity(severity)-1]
}

// rng builds the operator's deterministic random stream.
func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// SaltPepper flips a severity-scaled fraction of pixels to pure ink or
// pure paper — scanner speckle and dust.
func SaltPepper(g *imgproc.Gray, severity int, seed int64) *imgproc.Gray {
	severity = clampSeverity(severity)
	out := g.Clone()
	if severity == 0 || g.W == 0 || g.H == 0 {
		return out
	}
	frac := level([MaxSeverity]float64{0.0005, 0.0015, 0.004, 0.008, 0.015}, severity)
	n := int(frac * float64(g.W*g.H))
	r := rng(seed)
	for i := 0; i < n; i++ {
		x, y := r.Intn(g.W), r.Intn(g.H)
		if r.Intn(2) == 0 {
			out.Set(x, y, 0) // pepper: ink speck
		} else {
			out.Set(x, y, 255) // salt: paper hole
		}
	}
	return out
}

// GaussianBlur convolves with a separable Gaussian whose sigma grows
// with severity — defocused capture and bleeding toner.
func GaussianBlur(g *imgproc.Gray, severity int, seed int64) *imgproc.Gray {
	severity = clampSeverity(severity)
	out := g.Clone()
	if severity == 0 || g.W == 0 || g.H == 0 {
		return out
	}
	sigma := level([MaxSeverity]float64{0.6, 1.0, 1.5, 2.2, 3.0}, severity)
	kernel := gaussKernel(sigma)
	tmp := convolveRows(out, kernel)
	return transposeGray(convolveRows(transposeGray(tmp), kernel))
}

// gaussKernel returns a normalised 1-D Gaussian of radius ceil(3 sigma).
func gaussKernel(sigma float64) []float64 {
	radius := int(math.Ceil(3 * sigma))
	if radius < 1 {
		radius = 1
	}
	k := make([]float64, 2*radius+1)
	sum := 0.0
	for i := range k {
		d := float64(i - radius)
		k[i] = math.Exp(-d * d / (2 * sigma * sigma))
		sum += k[i]
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// convolveRows applies a 1-D kernel along every row with clamped edges.
func convolveRows(g *imgproc.Gray, k []float64) *imgproc.Gray {
	out := imgproc.NewGray(g.W, g.H)
	radius := len(k) / 2
	for y := 0; y < g.H; y++ {
		row := g.Pix[y*g.W : (y+1)*g.W]
		dst := out.Pix[y*g.W : (y+1)*g.W]
		for x := 0; x < g.W; x++ {
			acc := 0.0
			for i, w := range k {
				sx := x + i - radius
				if sx < 0 {
					sx = 0
				} else if sx >= g.W {
					sx = g.W - 1
				}
				acc += w * float64(row[sx])
			}
			dst[x] = uint8(geom.Clamp(int(acc+0.5), 0, 255))
		}
	}
	return out
}

// transposeGray swaps rows and columns, letting the row convolution do
// double duty for the vertical pass.
func transposeGray(g *imgproc.Gray) *imgproc.Gray {
	out := imgproc.NewGray(g.H, g.W)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			out.Pix[x*g.H+y] = g.Pix[y*g.W+x]
		}
	}
	return out
}

// ContrastFade compresses ink toward paper and overlays mild sensor
// noise — a washed-out, weak-toner scan.
func ContrastFade(g *imgproc.Gray, severity int, seed int64) *imgproc.Gray {
	severity = clampSeverity(severity)
	out := g.Clone()
	if severity == 0 {
		return out
	}
	keep := level([MaxSeverity]float64{0.75, 0.58, 0.44, 0.32, 0.22}, severity)
	noise := level([MaxSeverity]float64{4, 8, 12, 18, 25}, severity)
	r := rng(seed)
	for i, v := range out.Pix {
		f := 255 - (255-float64(v))*keep + r.NormFloat64()*noise
		out.Pix[i] = uint8(geom.Clamp(int(f+0.5), 0, 255))
	}
	return out
}

// Skew rotates the picture by a small severity-scaled angle (sign drawn
// from the seed) around its centre, nearest-neighbour, white fill —
// a sheet fed slightly crooked into the scanner.
func Skew(g *imgproc.Gray, severity int, seed int64) *imgproc.Gray {
	severity = clampSeverity(severity)
	if severity == 0 || g.W == 0 || g.H == 0 {
		return g.Clone()
	}
	deg := level([MaxSeverity]float64{0.3, 0.6, 1.0, 1.5, 2.2}, severity)
	if rng(seed).Intn(2) == 0 {
		deg = -deg
	}
	theta := deg * math.Pi / 180
	sin, cos := math.Sin(theta), math.Cos(theta)
	cx, cy := float64(g.W-1)/2, float64(g.H-1)/2
	out := imgproc.NewGray(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			// Inverse map: rotate the destination point back by -theta.
			dx, dy := float64(x)-cx, float64(y)-cy
			sx := int(math.Round(cx + dx*cos + dy*sin))
			sy := int(math.Round(cy - dx*sin + dy*cos))
			out.Pix[y*g.W+x] = g.At(sx, sy) // out of range reads white
		}
	}
	return out
}

// ScanlineDropout whitens a few random 1–2 px horizontal bands — sensor
// line dropout, which can cut edges and dash patterns apart.
func ScanlineDropout(g *imgproc.Gray, severity int, seed int64) *imgproc.Gray {
	severity = clampSeverity(severity)
	out := g.Clone()
	if severity == 0 || g.H == 0 || g.W == 0 {
		return out
	}
	bands := int(level([MaxSeverity]float64{2, 4, 7, 11, 16}, severity))
	r := rng(seed)
	for i := 0; i < bands; i++ {
		y := r.Intn(g.H)
		h := 1 + r.Intn(2)
		for dy := 0; dy < h; dy++ {
			if yy := y + dy; yy < g.H {
				row := out.Pix[yy*g.W : (yy+1)*g.W]
				for x := range row {
					row[x] = 255
				}
			}
		}
	}
	return out
}

// Alias downsamples by a severity-scaled factor and scales back up,
// nearest-neighbour both ways — low-resolution capture, where 1 px
// dashes and thin strokes drop out entirely.
func Alias(g *imgproc.Gray, severity int, seed int64) *imgproc.Gray {
	severity = clampSeverity(severity)
	if severity == 0 || g.W == 0 || g.H == 0 {
		return g.Clone()
	}
	f := level([MaxSeverity]float64{0.85, 0.7, 0.6, 0.5, 0.4}, severity)
	w := int(float64(g.W)*f + 0.5)
	h := int(float64(g.H)*f + 0.5)
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	return g.ScaleTo(w, h).ScaleTo(g.W, g.H)
}

// cropFrac is the per-side crop fraction at each severity.
var cropFrac = [MaxSeverity]float64{0.02, 0.04, 0.06, 0.09, 0.12}

// MarginCrop cuts a severity-scaled margin off every side — over-tight
// cropping that chops signal names and boundary annotations. This is the
// one operator that changes the picture geometry; cropOffset reports the
// content shift.
func MarginCrop(g *imgproc.Gray, severity int, seed int64) *imgproc.Gray {
	severity = clampSeverity(severity)
	if severity == 0 {
		return g.Clone()
	}
	mx, my := cropMargins(severity, g.W, g.H)
	return g.Crop(geom.Rect{X0: mx, Y0: my, X1: g.W - 1 - mx, Y1: g.H - 1 - my})
}

// cropMargins returns the per-side margins cut at a severity.
func cropMargins(severity, w, h int) (mx, my int) {
	f := level(cropFrac, severity)
	mx = int(f * float64(w))
	my = int(f * float64(h))
	if 2*mx >= w {
		mx = 0
	}
	if 2*my >= h {
		my = 0
	}
	return mx, my
}

// cropOffset is MarginCrop's content translation.
func cropOffset(severity, w, h int) (dx, dy int) {
	if clampSeverity(severity) == 0 {
		return 0, 0
	}
	mx, my := cropMargins(severity, w, h)
	return -mx, -my
}
