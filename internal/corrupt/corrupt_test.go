package corrupt

import (
	"bytes"
	"math/rand"
	"testing"

	"tdmagic/internal/imgproc"
)

// testImage builds a reproducible non-trivial grayscale picture.
func testImage(w, h int) *imgproc.Gray {
	g := imgproc.NewGray(w, h)
	r := rand.New(rand.NewSource(7))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if r.Intn(5) == 0 {
				g.Set(x, y, uint8(r.Intn(120)))
			}
		}
	}
	// A few solid strokes so blur/skew have structure to move.
	for x := 10; x < w-10; x++ {
		g.Set(x, h/2, 0)
	}
	for y := 5; y < h-5; y++ {
		g.Set(w/3, y, 0)
	}
	return g
}

func TestOperatorsDeterministic(t *testing.T) {
	img := testImage(120, 80)
	for _, op := range Ops() {
		for sev := 1; sev <= MaxSeverity; sev++ {
			a := op.Fn(img, sev, 42)
			b := op.Fn(img, sev, 42)
			if a.W != b.W || a.H != b.H || !bytes.Equal(a.Pix, b.Pix) {
				t.Errorf("%s severity %d: same seed produced different output", op.Name, sev)
			}
		}
	}
}

func TestSeverityZeroIsIdentity(t *testing.T) {
	img := testImage(100, 60)
	for _, op := range Ops() {
		got := op.Fn(img, 0, 99)
		if got.W != img.W || got.H != img.H || !bytes.Equal(got.Pix, img.Pix) {
			t.Errorf("%s severity 0 is not the identity", op.Name)
		}
		if dx, dy := op.Offset(0, img.W, img.H); dx != 0 || dy != 0 {
			t.Errorf("%s severity 0 offset = (%d,%d), want (0,0)", op.Name, dx, dy)
		}
	}
}

func TestOperatorsDoNotMutateInput(t *testing.T) {
	img := testImage(100, 60)
	orig := img.Clone()
	for _, op := range Ops() {
		op.Fn(img, MaxSeverity, 13)
		if !bytes.Equal(img.Pix, orig.Pix) {
			t.Fatalf("%s mutated its input", op.Name)
		}
	}
}

func TestOperatorsActuallyDegrade(t *testing.T) {
	img := testImage(160, 100)
	for _, op := range Ops() {
		got := op.Fn(img, 3, 5)
		if got.W == img.W && got.H == img.H && bytes.Equal(got.Pix, img.Pix) {
			t.Errorf("%s severity 3 left the picture untouched", op.Name)
		}
	}
}

func TestDimensionsPreservedExceptCrop(t *testing.T) {
	img := testImage(90, 70)
	for _, op := range Ops() {
		got := op.Fn(img, MaxSeverity, 3)
		if op.Name == "crop" {
			if got.W >= img.W || got.H >= img.H {
				t.Errorf("crop did not shrink the picture: %dx%d", got.W, got.H)
			}
			dx, dy := op.Offset(MaxSeverity, img.W, img.H)
			if dx >= 0 || dy >= 0 {
				t.Errorf("crop offset = (%d,%d), want negative", dx, dy)
			}
			continue
		}
		if got.W != img.W || got.H != img.H {
			t.Errorf("%s changed dimensions to %dx%d", op.Name, got.W, got.H)
		}
	}
}

func TestSeverityClamping(t *testing.T) {
	img := testImage(64, 48)
	for _, op := range Ops() {
		hi := op.Fn(img, MaxSeverity+10, 11)
		want := op.Fn(img, MaxSeverity, 11)
		if hi.W != want.W || hi.H != want.H || !bytes.Equal(hi.Pix, want.Pix) {
			t.Errorf("%s: severity beyond max does not clamp", op.Name)
		}
		lo := op.Fn(img, -3, 11)
		if !bytes.Equal(lo.Pix, img.Pix) {
			t.Errorf("%s: negative severity is not the identity", op.Name)
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	for _, dims := range [][2]int{{0, 0}, {1, 1}, {1, 64}, {64, 1}} {
		img := imgproc.NewGray(dims[0], dims[1])
		for _, op := range Ops() {
			for sev := 0; sev <= MaxSeverity; sev++ {
				got := op.Fn(img, sev, 1) // must not panic
				if got == nil {
					t.Fatalf("%s on %dx%d returned nil", op.Name, dims[0], dims[1])
				}
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, op := range Ops() {
		got, ok := ByName(op.Name)
		if !ok || got.Name != op.Name {
			t.Errorf("ByName(%q) failed", op.Name)
		}
	}
	if _, ok := ByName("nonsense"); ok {
		t.Error("ByName accepted an unknown operator")
	}
}
