package metrics

import (
	"bytes"
	"fmt"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"testing"
)

func TestExemplarExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1})
	h.Observe(0.005) // plain observe: no exemplar
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "# EXEMPLAR") {
		t.Fatalf("exemplar block without exemplars:\n%s", buf.String())
	}

	h.ObserveExemplar(0.005, "req-a")
	h.ObserveExemplar(0.006, "req-b") // same bucket: most recent wins
	h.ObserveExemplar(0.05, "")       // empty ref degrades to Observe
	h.ObserveExemplar(5, "job-1")     // +Inf bucket
	buf.Reset()
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# EXEMPLAR lat_seconds_bucket{le=\"0.01\"} req-b 0.006\n",
		"# EXEMPLAR lat_seconds_bucket{le=\"+Inf\"} job-1 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, `le="0.1"} `+"req") || strings.Count(out, "# EXEMPLAR") != 2 {
		t.Errorf("unexpected exemplar lines:\n%s", out)
	}
	// Counts include every observation, exemplared or not.
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	// The block sits after the histogram series and is byte-stable.
	if idx := strings.Index(out, "# EXEMPLAR"); idx < strings.Index(out, "lat_seconds_count") {
		t.Error("exemplar block precedes the histogram series")
	}
	var buf2 bytes.Buffer
	if err := r.WriteText(&buf2); err != nil {
		t.Fatal(err)
	}
	if out != buf2.String() {
		t.Error("two scrapes of unchanged registry differ")
	}
	if e := h.BucketExemplar(0); e == nil || e.Ref != "req-b" {
		t.Errorf("BucketExemplar(0) = %+v", e)
	}
	if h.BucketExemplar(99) != nil || h.BucketExemplar(-1) != nil {
		t.Error("out-of-range bucket returned an exemplar")
	}
}

func TestLabeledHistogramExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.LabeledHistogram("item_seconds", `outcome="ok"`, "", []float64{1})
	h.ObserveExemplar(0.5, "job-7")
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := "# EXEMPLAR item_seconds_bucket{outcome=\"ok\",le=\"1\"} job-7 0.5\n"
	if !strings.Contains(buf.String(), want) {
		t.Errorf("missing %q in:\n%s", want, buf.String())
	}
}

// expositionLine matches one sample of the Prometheus text format.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (?:[0-9.eE+-]+|NaN)$`)

// parseExposition validates the full scrape: every line is a comment of
// a known kind or a well-formed sample, and returns the sample count.
func parseExposition(t *testing.T, out string) int {
	t.Helper()
	samples := 0
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") &&
				!strings.HasPrefix(line, "# EXEMPLAR ") {
				t.Fatalf("unknown comment line %q", line)
			}
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("malformed sample line %q", line)
		}
		samples++
	}
	return samples
}

// TestConcurrentExpositionDeterministic hammers labelled counters and
// histograms from GOMAXPROCS goroutines while scraping concurrently
// (the -race half of the guarantee), then asserts the quiesced
// exposition is parseable, complete and byte-identical across scrapes
// (the determinism half).
func TestConcurrentExpositionDeterministic(t *testing.T) {
	r := NewRegistry()
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	const per = 2000
	outcomes := []string{"hit", "miss", "retry", "quarantine"}
	var writers, scraper sync.WaitGroup
	stop := make(chan struct{})
	scraper.Add(1)
	go func() { // concurrent scraper: output discarded, races caught
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b bytes.Buffer
			if err := r.WriteText(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < per; i++ {
				lbl := fmt.Sprintf("outcome=%q", outcomes[i%len(outcomes)])
				r.LabeledCounter("hammer_total", lbl, "hammered").Inc()
				h := r.LabeledHistogram("hammer_seconds", lbl, "hammered", []float64{0.01, 0.1, 1})
				if i%3 == 0 {
					h.ObserveExemplar(float64(i%200)/100, fmt.Sprintf("w%d", w))
				} else {
					h.Observe(float64(i%200) / 100)
				}
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	scraper.Wait()

	var a, b bytes.Buffer
	if err := r.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("quiesced scrapes differ")
	}
	parseExposition(t, a.String())
	out := a.String()
	total := int64(0)
	for _, o := range outcomes {
		c := r.LabeledCounter("hammer_total", fmt.Sprintf("outcome=%q", o), "")
		total += c.Value()
		if !strings.Contains(out, fmt.Sprintf("hammer_total{outcome=%q} %d", o, c.Value())) {
			t.Errorf("exposition missing counter for %s:\n%s", o, out)
		}
	}
	if total != int64(workers)*per {
		t.Errorf("lost increments: %d, want %d", total, int64(workers)*per)
	}
	if got := strings.Count(out, "# TYPE hammer_seconds histogram"); got != 1 {
		t.Errorf("got %d TYPE headers for the vector, want 1", got)
	}
}
