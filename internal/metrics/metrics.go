// Package metrics provides the lightweight observability layer shared by
// every execution surface of the pipeline: the tdserve HTTP service, the
// batch translation path and the evaluation harness all record into the
// same counter and histogram types, so a number reported by tdeval means
// exactly what the same number means on a serving dashboard.
//
// The package is dependency-free and allocation-free on the hot path:
// counters are single atomics, histograms are fixed-bucket atomic arrays,
// and both are safe for concurrent use without locks. Exposition follows
// the Prometheus text format (one `# TYPE` line per metric, `_bucket`/
// `_sum`/`_count` series for histograms) in deterministic registration
// order, so scrapes are byte-stable for a fixed sequence of observations.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic value that can go up and down (e.g. in-flight
// requests, queue occupancy).
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n and returns the new value, so a gauge can double as the
// atomic occupancy check of a bounded queue.
func (g *Gauge) Add(n int64) int64 { return g.v.Add(n) }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram. Bounds are upper
// bounds in ascending order; an implicit +Inf bucket catches the rest.
// Observations update one bucket counter and a float64 sum encoded in an
// atomic uint64, so concurrent Observe calls never lock.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64  // math.Float64bits of the running sum

	// ex holds the most recent exemplar per bucket (nil until a caller
	// uses ObserveExemplar with a non-empty ref). Plain Observe never
	// touches it, so the exemplar-free hot path stays allocation-free
	// and the exposition stays byte-identical for exemplar-free series.
	ex []atomic.Pointer[Exemplar] // len(bounds)+1, parallel to counts
}

// Exemplar links one recorded observation back to the request or job
// that produced it, so a latency spike in a histogram bucket points at
// a concrete flight-recorder / access-log entry instead of a number.
type Exemplar struct {
	Ref string  // request ID or job ID
	Val float64 // the observed value
}

// DefBuckets are the default latency bounds in seconds, spanning sub-ms
// kernel work to multi-second degraded translations.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// newHistogram builds a histogram with the given ascending upper bounds.
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		bounds: b,
		counts: make([]atomic.Int64, len(b)+1),
		ex:     make([]atomic.Pointer[Exemplar], len(b)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.observe(v)
}

// ObserveExemplar records one value and remembers ref (a request or job
// ID) as the most recent exemplar of the bucket the value lands in. An
// empty ref degrades to a plain Observe, so call sites can pass
// whatever ID the context carries — "" when tracing is disabled.
func (h *Histogram) ObserveExemplar(v float64, ref string) {
	i := h.observe(v)
	if ref != "" {
		h.ex[i].Store(&Exemplar{Ref: ref, Val: v})
	}
}

// BucketExemplar returns the most recent exemplar of bucket i (bounds
// index; len(bounds) is +Inf), or nil.
func (h *Histogram) BucketExemplar(i int) *Exemplar {
	if i < 0 || i >= len(h.ex) {
		return nil
	}
	return h.ex[i].Load()
}

func (h *Histogram) observe(v float64) int {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return i
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metric is one registered series: a name, an optional constant label
// set (rendered inside the braces of every exposed sample), and exactly
// one collector.
type metric struct {
	name, help string
	labels     string // e.g. `stage="lad"`; "" for unlabelled series
	counter    *Counter
	gauge      *Gauge
	hist       *Histogram
	fn         func() float64 // computed-at-scrape gauge
}

// Registry holds named metrics and renders them as text. Registration
// takes a lock; recorded values are read with atomics only.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	byName  map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]int{}}
}

// Counter registers (or returns the existing) counter under name.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byName[name]; ok {
		return r.metrics[i].counter
	}
	c := &Counter{}
	r.byName[name] = len(r.metrics)
	r.metrics = append(r.metrics, metric{name: name, help: help, counter: c})
	return c
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byName[name]; ok {
		return r.metrics[i].gauge
	}
	g := &Gauge{}
	r.byName[name] = len(r.metrics)
	r.metrics = append(r.metrics, metric{name: name, help: help, gauge: g})
	return g
}

// Histogram registers (or returns the existing) histogram under name with
// the given upper bounds (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byName[name]; ok {
		return r.metrics[i].hist
	}
	h := newHistogram(bounds)
	r.byName[name] = len(r.metrics)
	r.metrics = append(r.metrics, metric{name: name, help: help, hist: h})
	return h
}

// LabeledHistogram registers (or returns the existing) histogram under
// name with a constant label set, e.g.
//
//	r.LabeledHistogram("tdmagic_stage_seconds", `stage="lad"`, "…", nil)
//
// Several label sets may share one name; the exposition emits the HELP
// and TYPE header once per name and renders the labels inside every
// sample's braces, merged with the histogram's own le label — the
// Prometheus convention for a histogram vector.
func (r *Registry) LabeledHistogram(name, labels, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := name + "{" + labels + "}"
	if i, ok := r.byName[key]; ok {
		return r.metrics[i].hist
	}
	h := newHistogram(bounds)
	r.byName[key] = len(r.metrics)
	r.metrics = append(r.metrics, metric{name: name, labels: labels, help: help, hist: h})
	return h
}

// LabeledCounter registers (or returns the existing) counter under name
// with a constant label set, e.g.
//
//	r.LabeledCounter("tdverify_verdicts_total", `outcome="pass"`, "…")
//
// Several label sets may share one name — the counter-vector analogue of
// LabeledHistogram: one HELP/TYPE header per name, labels rendered inside
// every sample's braces.
func (r *Registry) LabeledCounter(name, labels, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := name + "{" + labels + "}"
	if i, ok := r.byName[key]; ok {
		return r.metrics[i].counter
	}
	c := &Counter{}
	r.byName[key] = len(r.metrics)
	r.metrics = append(r.metrics, metric{name: name, labels: labels, help: help, counter: c})
	return c
}

// GaugeFunc registers a gauge whose float value is computed at scrape
// time — the natural shape for derived series like a cache hit ratio,
// which would drift if maintained as a stored value next to the
// counters it is computed from.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; ok {
		return
	}
	r.byName[name] = len(r.metrics)
	r.metrics = append(r.metrics, metric{name: name, help: help, fn: fn})
}

// series renders a sample name with the metric's constant labels and an
// optional extra label (the histogram le), e.g.
// `tdmagic_stage_seconds_bucket{stage="lad",le="0.005"}`.
func series(name, suffix, labels, extra string) string {
	full := name + suffix
	switch {
	case labels == "" && extra == "":
		return full
	case labels == "":
		return full + "{" + extra + "}"
	case extra == "":
		return full + "{" + labels + "}"
	default:
		return full + "{" + labels + "," + extra + "}"
	}
}

// WriteText renders every registered metric in the Prometheus text format,
// in registration order. Labelled series sharing one name get a single
// HELP/TYPE header, emitted at the first series' position.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	headed := make(map[string]bool, len(ms))
	for _, m := range ms {
		if !headed[m.name] {
			headed[m.name] = true
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
					return err
				}
			}
			kind := "counter"
			switch {
			case m.gauge != nil || m.fn != nil:
				kind = "gauge"
			case m.hist != nil:
				kind = "histogram"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, kind); err != nil {
				return err
			}
		}
		var err error
		switch {
		case m.counter != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", series(m.name, "", m.labels, ""), m.counter.Value())
		case m.gauge != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", series(m.name, "", m.labels, ""), m.gauge.Value())
		case m.fn != nil:
			_, err = fmt.Fprintf(w, "%s %g\n", series(m.name, "", m.labels, ""), m.fn())
		case m.hist != nil:
			err = writeHistogram(w, m.name, m.labels, m.hist)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders the cumulative _bucket/_sum/_count series,
// then one `# EXEMPLAR` comment line per bucket that has recorded an
// exemplar: the bucket series, the originating request/job ID and the
// observed value. Comments keep the exposition valid for any
// Prometheus text parser while still exposing the metric→trace link;
// the block is deterministic for a fixed sequence of observations
// (most recent exemplar per bucket, buckets in bound order).
func writeHistogram(w io.Writer, name, labels string, h *Histogram) error {
	var cum int64
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		le := fmt.Sprintf("le=%q", formatBound(ub))
		if _, err := fmt.Fprintf(w, "%s %d\n", series(name, "_bucket", labels, le), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s %d\n%s %g\n%s %d\n",
		series(name, "_bucket", labels, `le="+Inf"`), cum,
		series(name, "_sum", labels, ""), h.Sum(),
		series(name, "_count", labels, ""), cum); err != nil {
		return err
	}
	for i := range h.ex {
		e := h.ex[i].Load()
		if e == nil {
			continue
		}
		le := `le="+Inf"`
		if i < len(h.bounds) {
			le = fmt.Sprintf("le=%q", formatBound(h.bounds[i]))
		}
		if _, err := fmt.Fprintf(w, "# EXEMPLAR %s %s %g\n",
			series(name, "_bucket", labels, le), e.Ref, e.Val); err != nil {
			return err
		}
	}
	return nil
}

// formatBound renders a bucket bound the way Prometheus does: shortest
// decimal representation.
func formatBound(v float64) string {
	return fmt.Sprintf("%g", v)
}
