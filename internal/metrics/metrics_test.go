package metrics

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("reqs_total", "requests") != c {
		t.Error("re-registration returned a different counter")
	}
	g := r.Gauge("inflight", "")
	g.Inc()
	g.Inc()
	g.Dec()
	if g.Value() != 1 {
		t.Errorf("gauge = %d, want 1", g.Value())
	}
	g.Set(7)
	if g.Value() != 7 {
		t.Errorf("gauge = %d, want 7", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-2.565) > 1e-9 {
		t.Errorf("sum = %g, want 2.565", got)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Observations on a bound fall into that bound's bucket (le is <=).
	for _, want := range []string{
		`lat_seconds_bucket{le="0.01"} 2`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_sum 2.565",
		"lat_seconds_count 5",
		"# TYPE lat_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteTextDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "second")
	r.Counter("a_total", "first")
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Index(out, "b_total") > strings.Index(out, "a_total") {
		t.Errorf("registration order not preserved:\n%s", out)
	}
	var buf2 bytes.Buffer
	if err := r.WriteText(&buf2); err != nil {
		t.Fatal(err)
	}
	if out != buf2.String() {
		t.Error("two scrapes of unchanged registry differ")
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	h := r.Histogram("v_seconds", "", nil)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if got, want := h.Sum(), float64(workers*per)*0.01; math.Abs(got-want) > 1e-6 {
		t.Errorf("histogram sum = %g, want %g", got, want)
	}
}

func TestLabeledHistogram(t *testing.T) {
	r := NewRegistry()
	lad := r.LabeledHistogram("stage_seconds", `stage="lad"`, "per-stage latency", []float64{0.01, 0.1})
	sed := r.LabeledHistogram("stage_seconds", `stage="sed"`, "per-stage latency", []float64{0.01, 0.1})
	if lad == sed {
		t.Fatal("distinct label sets shared one histogram")
	}
	if r.LabeledHistogram("stage_seconds", `stage="lad"`, "", nil) != lad {
		t.Error("re-registration returned a different histogram")
	}
	lad.Observe(0.005)
	lad.Observe(0.05)
	sed.Observe(0.2)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`stage_seconds_bucket{stage="lad",le="0.01"} 1`,
		`stage_seconds_bucket{stage="lad",le="+Inf"} 2`,
		`stage_seconds_sum{stage="lad"} 0.055`,
		`stage_seconds_count{stage="lad"} 2`,
		`stage_seconds_bucket{stage="sed",le="0.1"} 0`,
		`stage_seconds_count{stage="sed"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// One header per name, not per label set.
	if got := strings.Count(out, "# TYPE stage_seconds histogram"); got != 1 {
		t.Errorf("got %d TYPE headers, want 1:\n%s", got, out)
	}
	if got := strings.Count(out, "# HELP stage_seconds"); got != 1 {
		t.Errorf("got %d HELP headers, want 1:\n%s", got, out)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	hits := r.Counter("hits_total", "")
	misses := r.Counter("misses_total", "")
	r.GaugeFunc("hit_ratio", "hit fraction", func() float64 {
		h, m := hits.Value(), misses.Value()
		if h+m == 0 {
			return 0
		}
		return float64(h) / float64(h+m)
	})
	scrape := func() string {
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if out := scrape(); !strings.Contains(out, "hit_ratio 0\n") {
		t.Errorf("empty ratio exposition wrong:\n%s", out)
	}
	hits.Inc()
	misses.Add(3)
	if out := scrape(); !strings.Contains(out, "hit_ratio 0.25\n") {
		t.Errorf("ratio not recomputed at scrape:\n%s", out)
	}
	if out := scrape(); !strings.Contains(out, "# TYPE hit_ratio gauge") {
		t.Errorf("gauge func missing TYPE line:\n%s", out)
	}
}

func TestHelpLine(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "the x")
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# HELP x_total the x") {
		t.Errorf("missing help line:\n%s", buf.String())
	}
}
